//! Differential tests for the observability payload-determinism
//! contract (DESIGN.md §12): the projection of a trace onto its `det`
//! events' `{kind, name, fields}` must be bit-identical at any thread
//! count. Timestamps, sequence numbers, and span durations are allowed
//! to vary; nothing else is.
//!
//! The traced workload deliberately crosses every instrumented layer:
//! location analysis (parallel workers), embedding (incremental dirty
//! regions), session verification (sweep fast path + SAT counters), and
//! a campaign with a quarantined job.

use odcfp_core::campaign::{run, CampaignEnv, CampaignOptions, Manifest};
use odcfp_core::{Fingerprinter, VerifyPolicy, VerifySession};
use odcfp_netlist::CellLibrary;
use odcfp_synth::benchmarks::random::{random_dag, DagParams};

/// Runs the full instrumented pipeline under a capture sink and returns
/// the deterministic payload projection.
fn traced_pipeline(tag: &str) -> Vec<String> {
    let dir = std::env::temp_dir().join("odcfp-trace-det").join(tag);
    let _ = std::fs::remove_dir_all(&dir);
    let ((), events) = odcfp_obs::capture(|| {
        // Locate + embed + persistent-session verify (strict = untimed:
        // deadline-induced verdicts are the one documented exception to
        // the contract, so the differential avoids time limits). 20
        // inputs puts the design past the exhaustive-simulation cutoff,
        // forcing the SAT sweep fast path to run.
        let base = random_dag(
            CellLibrary::standard(),
            DagParams {
                inputs: 20,
                gates: 120,
                outputs: 8,
                window: 24,
                seed: 42,
            },
        );
        let fp = Fingerprinter::new(base).expect("fingerprinter");
        let mut session = VerifySession::new(fp.base()).expect("verify session");
        for seed in [1u64, 2] {
            let copy = fp.embed_seeded(seed).expect("embed");
            session
                .verify(copy.netlist(), &VerifyPolicy::strict())
                .expect("verify");
        }
        // Incremental location analysis: `engine.dirty_gates` counters.
        let mut es = fp.embed_session().expect("embed session");
        if !fp.locations().is_empty() {
            es.set_bit(0).expect("set bit");
            es.residual_locations().expect("residual locations");
        }
        // A campaign with healthy jobs and a quarantined one.
        let manifest = Manifest::parse(
            "circuit c path:c.v\ncircuit bomb probe:panic\nbuyers 2\nseed 7\nretries 0\n",
        )
        .expect("manifest");
        let env = CampaignEnv {
            load: &|_c| Ok(random_dag(CellLibrary::standard(), DagParams::small(9))),
            emit: &|n| format!("// {} gates\n", n.num_gates()),
        };
        run(&manifest, &dir, &env, &CampaignOptions::default(), &mut |_| {})
            .expect("campaign");
    })
    .expect("no competing sink installed");
    odcfp_obs::payload_lines(&events)
}

#[test]
fn det_payload_bit_identical_across_thread_counts() {
    odcfp_analysis::engine::set_thread_override(Some(1));
    let one = traced_pipeline("threads-1");
    odcfp_analysis::engine::set_thread_override(Some(8));
    let eight = traced_pipeline("threads-8");
    odcfp_analysis::engine::set_thread_override(None);

    // The workload must actually exercise the instrumented layers —
    // an empty projection would make the equality below vacuous.
    for needle in [
        "verify.verdict",
        "verify.fastpath",
        "sat.conflicts",
        "engine.dirty_gates",
        "campaign.job.outcome",
        "campaign.quarantine",
        "campaign.summary",
    ] {
        assert!(
            one.iter().any(|l| l.contains(needle)),
            "payload must contain {needle}:\n{}",
            one.join("\n")
        );
    }
    assert_eq!(
        one, eight,
        "deterministic payload must not depend on the thread count"
    );
}

#[test]
fn quarantine_emits_structured_event_with_panic_payload() {
    let dir = std::env::temp_dir().join("odcfp-trace-det").join("quarantine");
    let _ = std::fs::remove_dir_all(&dir);
    let ((), events) = odcfp_obs::capture(|| {
        let manifest =
            Manifest::parse("circuit bomb probe:panic\nretries 1\n").expect("manifest");
        let env = CampaignEnv {
            load: &|_c| Err("probes never load".into()),
            emit: &|_n| String::new(),
        };
        run(&manifest, &dir, &env, &CampaignOptions::default(), &mut |_| {})
            .expect("campaign survives the poisoned job");
    })
    .expect("no competing sink installed");

    let q = events
        .iter()
        .find(|e| e.name == "campaign.quarantine")
        .expect("quarantine event emitted");
    assert!(q.det, "quarantine outcomes are part of the payload");
    assert_eq!(q.field_str("job"), Some("bomb#0"));
    assert_eq!(q.field_u64("attempts"), Some(2));
    let diagnostic = q.field_str("diagnostic").expect("diagnostic field");
    assert!(
        diagnostic.contains("deliberate panic in job bomb#0"),
        "diagnostic must carry the panic payload: {diagnostic}"
    );
    // Each failed attempt also left a structured breadcrumb.
    let failures = events
        .iter()
        .filter(|e| e.name == "campaign.attempt.failed")
        .count();
    assert_eq!(failures, 2);
}
