//! Robustness: the three text parsers must never panic — any input either
//! parses or returns a structured error. Driven by proptest over both
//! arbitrary bytes and format-shaped fragments.

use proptest::prelude::*;

use odcfp_netlist::genlib::parse_genlib;
use odcfp_netlist::CellLibrary;

/// Fragments that look like the formats, to push the parsers deeper than
/// pure noise would.
fn blif_fragments() -> impl Strategy<Value = String> {
    prop::collection::vec(
        prop_oneof![
            Just(".model m".to_owned()),
            Just(".inputs a b".to_owned()),
            Just(".outputs y".to_owned()),
            Just(".names a b y".to_owned()),
            Just(".names y".to_owned()),
            Just("11 1".to_owned()),
            Just("0- 0".to_owned()),
            Just("1".to_owned()),
            Just(".latch a b".to_owned()),
            Just(".end".to_owned()),
            Just("# comment".to_owned()),
            Just("\\".to_owned()),
            "[ -~]{0,20}",
        ],
        0..12,
    )
    .prop_map(|lines| lines.join("\n"))
}

fn verilog_fragments() -> impl Strategy<Value = String> {
    prop::collection::vec(
        prop_oneof![
            Just("module m (a, y);".to_owned()),
            Just("input a;".to_owned()),
            Just("output y;".to_owned()),
            Just("wire w;".to_owned()),
            Just("INV u1 (.A(a), .Y(y));".to_owned()),
            Just("NAND2 (y, a, w);".to_owned()),
            Just("assign k = 1'b1;".to_owned()),
            Just("endmodule".to_owned()),
            Just("/* block".to_owned()),
            Just("// line".to_owned()),
            "[ -~]{0,20}",
        ],
        0..12,
    )
    .prop_map(|lines| lines.join("\n"))
}

fn genlib_fragments() -> impl Strategy<Value = String> {
    prop::collection::vec(
        prop_oneof![
            Just("GATE X 1 Y=A*B;".to_owned()),
            Just("GATE Y 2 Y=!(A+B);".to_owned()),
            Just("PIN * INV 1 999 1 1 1 1".to_owned()),
            Just("GATE Z 3 Y=".to_owned()),
            Just("LATCH L 1 Q=D;".to_owned()),
            Just("# comment".to_owned()),
            "[ -~]{0,20}",
        ],
        0..10,
    )
    .prop_map(|lines| lines.join("\n"))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn blif_parser_never_panics_on_noise(src in "[ -~\\n\\t]{0,200}") {
        let _ = odcfp_blif::parse_blif(&src);
    }

    #[test]
    fn blif_parser_never_panics_on_fragments(src in blif_fragments()) {
        if let Ok(network) = odcfp_blif::parse_blif(&src) {
            // A parsed network may still be semantically invalid; validation
            // must also not panic.
            let _ = network.validate();
        }
    }

    #[test]
    fn verilog_parser_never_panics_on_noise(src in "[ -~\\n\\t]{0,200}") {
        let _ = odcfp_verilog::parse_verilog(&src, CellLibrary::standard());
    }

    #[test]
    fn verilog_parser_never_panics_on_fragments(src in verilog_fragments()) {
        let _ = odcfp_verilog::parse_verilog(&src, CellLibrary::standard());
    }

    #[test]
    fn genlib_parser_never_panics(src in genlib_fragments()) {
        let _ = parse_genlib(&src, "fuzz");
    }

    #[test]
    fn cube_parser_never_panics(src in "[ -~]{0,32}") {
        let _ = src.parse::<odcfp_logic::Cube>();
    }
}
