//! Fast-path/cold-path agreement suite: the sweep-based SAT rung
//! (strash-proven outputs, cut-point sweeping) and the incremental
//! [`VerifySession`] must return the *same verdict kind* as a naive cold
//! whole-circuit miter on every input we can throw at them — the PR 1
//! fault battery (stuck-at and wrong-cell faults, alone and inside
//! fingerprinted copies) and every malformed-corpus fixture that ever
//! survives the load pipeline. Counterexamples may differ between paths
//! (different solvers walk different models) but each must genuinely
//! witness the inequivalence.
//!
//! CI runs the whole workspace under both `ODCFP_THREADS=1` and
//! `ODCFP_THREADS=8`, so these properties are exercised at both ends of
//! the parallelism matrix.

#[path = "corpus_fixtures.rs"]
mod corpus_fixtures;

use corpus_fixtures::{blif_fixtures, load_blif, load_verilog, verilog_fixtures};
use odcfp_core::faults::FaultInjector;
use odcfp_core::{verify_equivalent_report, Fingerprinter, Verdict, VerifyPolicy, VerifySession};
use odcfp_netlist::{CellLibrary, Netlist};
use odcfp_synth::benchmarks::random::{random_dag, DagParams};

/// A strict policy with the simulation and exhaustive stages disabled,
/// so every verdict — proof *and* refutation — must come from the SAT
/// rung under test rather than the (shared) simulation stages.
fn sat_policy(fast: bool) -> VerifyPolicy {
    VerifyPolicy {
        sim_words: 0,
        exhaustive_max_inputs: 0,
        use_fast_path: fast,
        ..VerifyPolicy::strict()
    }
}

/// Collapses a verdict to its kind and, for refutations, checks the
/// counterexample actually witnesses the functional difference.
fn kind(verdict: &Verdict, golden: &Netlist, candidate: &Netlist, label: &str) -> &'static str {
    match verdict {
        Verdict::Proven => "proven",
        Verdict::Refuted { counterexample } => {
            assert_ne!(
                golden.eval(counterexample),
                candidate.eval(counterexample),
                "{label}: counterexample does not witness the difference"
            );
            "refuted"
        }
        other => panic!("{label}: strict policy must decide, got {other}"),
    }
}

/// The core property: cold miter, one-shot fast path, and incremental
/// session all agree on the verdict kind. Returns that kind.
fn paths_agree(
    session: &mut VerifySession,
    candidate: &Netlist,
    label: &str,
) -> &'static str {
    let golden = session.golden().clone();
    let cold = verify_equivalent_report(&golden, candidate, &sat_policy(false))
        .unwrap_or_else(|e| panic!("{label}: cold path errored: {e}"));
    let fast = verify_equivalent_report(&golden, candidate, &sat_policy(true))
        .unwrap_or_else(|e| panic!("{label}: fast path errored: {e}"));
    let incr = session
        .verify(candidate, &sat_policy(true))
        .unwrap_or_else(|e| panic!("{label}: session errored: {e}"));

    assert!(
        !cold.stats.used_fast_path,
        "{label}: cold baseline took the fast path"
    );
    assert!(
        fast.stats.used_fast_path,
        "{label}: fast policy fell back to the cold miter"
    );

    let cold_kind = kind(&cold.verdict, &golden, candidate, &format!("{label}/cold"));
    let fast_kind = kind(&fast.verdict, &golden, candidate, &format!("{label}/fast"));
    let incr_kind = kind(&incr.verdict, &golden, candidate, &format!("{label}/session"));
    assert_eq!(cold_kind, fast_kind, "{label}: fast path flipped the verdict");
    assert_eq!(cold_kind, incr_kind, "{label}: session flipped the verdict");
    cold_kind
}

fn small_base(seed: u64) -> Netlist {
    random_dag(CellLibrary::standard(), DagParams::small(seed))
}

#[test]
fn stuck_at_battery_verdicts_agree_across_paths() {
    let mut refuted = 0;
    for seed in 0..8 {
        let base = small_base(40 + seed);
        let mut session = VerifySession::new(&base).unwrap();
        let mut inj = FaultInjector::new(seed);
        let (faulty, net, value) = inj.random_stuck_at(&base).unwrap();
        faulty.validate().unwrap();
        let label = format!("stuck-at seed {seed} ({net:?}={value})");
        if paths_agree(&mut session, &faulty, &label) == "refuted" {
            refuted += 1;
        }
    }
    assert!(refuted >= 1, "no stuck-at instance was function-changing");
}

#[test]
fn wrong_cell_battery_verdicts_agree_across_paths() {
    let mut refuted = 0;
    for seed in 0..8 {
        let base = small_base(50 + seed);
        let mut session = VerifySession::new(&base).unwrap();
        let mut inj = FaultInjector::new(seed);
        let (faulty, gate) = inj.random_wrong_cell(&base).unwrap();
        faulty.validate().unwrap();
        let label = format!("wrong-cell seed {seed} ({gate:?})");
        if paths_agree(&mut session, &faulty, &label) == "refuted" {
            refuted += 1;
        }
    }
    assert!(refuted >= 1, "no wrong-cell instance was function-changing");
}

#[test]
fn fingerprinted_copies_prove_equivalent_on_every_path() {
    // The production fast-path workload: many function-preserving buyer
    // variants of one base, verified through a single reused session.
    let fp = Fingerprinter::new(small_base(60)).unwrap();
    let n = fp.locations().len();
    let mut session = VerifySession::new(fp.base()).unwrap();
    for buyer in 0..4u64 {
        let bits: Vec<bool> = (0..n).map(|i| (buyer >> (i % 4)) & 1 == 1).collect();
        let copy = fp.embed(&bits).unwrap();
        let verdict = paths_agree(&mut session, copy.netlist(), &format!("buyer {buyer}"));
        assert_eq!(verdict, "proven", "buyer {buyer}: copy is equivalent by construction");
    }
}

#[test]
fn faults_inside_fingerprinted_copies_agree_across_paths() {
    // A defect inside a *fingerprinted* die — the session's golden stays
    // the unmarked base, candidates mix equivalent and faulty variants.
    let fp = Fingerprinter::new(small_base(62)).unwrap();
    let copy = fp.embed(&vec![true; fp.locations().len()]).unwrap();
    let mut session = VerifySession::new(fp.base()).unwrap();
    let mut inj = FaultInjector::new(63);
    let mut refuted = 0;
    for round in 0..6 {
        let (faulty, _, _) = inj.random_stuck_at(copy.netlist()).unwrap();
        faulty.validate().unwrap();
        if paths_agree(&mut session, &faulty, &format!("copy-fault round {round}")) == "refuted" {
            refuted += 1;
        }
    }
    assert!(refuted >= 1, "no copy fault was function-changing");
}

#[test]
fn interleaved_verdicts_do_not_contaminate_the_session() {
    // Learned clauses from refuted candidates must not leak into later
    // proofs and vice versa: alternate equivalent and faulty candidates
    // through one session and re-check each against a fresh cold run.
    let base = small_base(70);
    let fp = Fingerprinter::new(base.clone()).unwrap();
    let n = fp.locations().len();
    let mut session = VerifySession::new(&base).unwrap();
    let mut inj = FaultInjector::new(71);
    for round in 0..4u64 {
        let copy = fp
            .embed(&(0..n).map(|i| (round + i as u64).is_multiple_of(2)).collect::<Vec<_>>())
            .unwrap();
        let verdict = paths_agree(&mut session, copy.netlist(), &format!("interleave copy {round}"));
        assert_eq!(verdict, "proven");
        let (faulty, _, _) = inj.random_stuck_at(&base).unwrap();
        paths_agree(&mut session, &faulty, &format!("interleave fault {round}"));
    }
}

#[test]
fn corpus_survivors_verify_identically_on_both_paths() {
    // Every malformed fixture is rejected today; this loop is the guard
    // for the day a parser regression lets one through. Any fixture that
    // *loads* must at minimum be provably equivalent to itself on the
    // cold path, the fast path, and a fresh session — a survivor that
    // flips verdicts between paths is two bugs, not one.
    let mut survivors = 0;
    for (name, src, _) in blif_fixtures() {
        if let Ok(netlist) = load_blif(&src) {
            survivors += 1;
            let mut session = VerifySession::new(&netlist).unwrap();
            let verdict = paths_agree(&mut session, &netlist, &format!("blif survivor {name}"));
            assert_eq!(verdict, "proven", "{name}: self-equivalence must hold");
        }
    }
    for (name, src, _) in verilog_fixtures() {
        if let Ok(netlist) = load_verilog(&src) {
            survivors += 1;
            let mut session = VerifySession::new(&netlist).unwrap();
            let verdict = paths_agree(&mut session, &netlist, &format!("verilog survivor {name}"));
            assert_eq!(verdict, "proven", "{name}: self-equivalence must hold");
        }
    }
    assert_eq!(survivors, 0, "corpus fixture unexpectedly parsed — extend this test");
}
