//! Format interoperability: BLIF → mapping → fingerprinting → Verilog →
//! re-parse, with SAT-checked equivalence at every hop.

use odcfp_blif::{parse_blif, write_blif};
use odcfp_core::Fingerprinter;
use odcfp_netlist::CellLibrary;
use odcfp_sat::{check_equivalence, EquivResult};
use odcfp_synth::map_network;
use odcfp_verilog::{parse_verilog, write_verilog};

const ALU_SLICE_BLIF: &str = "\
.model alu_slice
.inputs a b cin s0 s1
.outputs y cout
.names a b axb
10 1
01 1
.names axb cin sum
10 1
01 1
.names a b andab
11 1
.names a b orab
1- 1
-1 1
.names s0 s1 sum andab orab y
001-- 1
01-1- 1
10--1 1
11-11 1
.names a b cin cout
11- 1
1-1 1
-11 1
.end
";

#[test]
fn blif_roundtrips_through_writer() {
    let net = parse_blif(ALU_SLICE_BLIF).unwrap();
    net.validate().unwrap();
    let text = write_blif(&net);
    let back = parse_blif(&text).unwrap();
    assert_eq!(net, back);
}

#[test]
fn mapped_netlist_matches_blif_semantics_exhaustively() {
    let net = parse_blif(ALU_SLICE_BLIF).unwrap();
    let mapped = map_network(&net, CellLibrary::standard()).unwrap();
    for i in 0..(1usize << 5) {
        let bits: Vec<bool> = (0..5).map(|v| (i >> v) & 1 == 1).collect();
        assert_eq!(mapped.eval(&bits), net.eval(&bits), "assignment {i:05b}");
    }
}

#[test]
fn full_flow_blif_to_fingerprinted_verilog_and_back() {
    let net = parse_blif(ALU_SLICE_BLIF).unwrap();
    let mapped = map_network(&net, CellLibrary::standard()).unwrap();
    let fp = Fingerprinter::new(mapped).unwrap();
    assert!(!fp.locations().is_empty());
    let copy = fp.embed_seeded(42).unwrap();

    let verilog = write_verilog(copy.netlist());
    let reread = parse_verilog(&verilog, fp.base().library().clone()).unwrap();
    assert_eq!(
        check_equivalence(fp.base(), &reread, None).unwrap(),
        EquivResult::Equivalent,
        "fingerprinted Verilog must implement the BLIF function"
    );
}

#[test]
fn verilog_roundtrip_preserves_fingerprint_structure() {
    let net = parse_blif(ALU_SLICE_BLIF).unwrap();
    let mapped = map_network(&net, CellLibrary::standard()).unwrap();
    let fp = Fingerprinter::new(mapped).unwrap();
    let marked = fp.embed_seeded(7).unwrap();
    let unmarked = fp
        .embed(&vec![false; fp.locations().len()])
        .unwrap();

    let v_marked = write_verilog(marked.netlist());
    let v_unmarked = write_verilog(unmarked.netlist());
    if marked.bits().iter().any(|&b| b) {
        assert_ne!(
            v_marked, v_unmarked,
            "a set fingerprint bit must be visible in the shipped netlist"
        );
    }
}

#[test]
fn generated_benchmark_survives_verilog_roundtrip() {
    let base =
        odcfp_synth::benchmarks::generate("c432", CellLibrary::standard()).unwrap();
    let text = write_verilog(&base);
    let back = parse_verilog(&text, base.library().clone()).unwrap();
    assert_eq!(back.num_gates(), base.num_gates());
    assert_eq!(
        check_equivalence(&base, &back, None).unwrap(),
        EquivResult::Equivalent
    );
}

#[test]
fn name_based_extraction_after_verilog_roundtrip() {
    // The file-based designer workflow: the base circulates as Verilog, a
    // suspect netlist comes back as Verilog, and extraction must align the
    // two by names rather than arena ids.
    let net = parse_blif(ALU_SLICE_BLIF).unwrap();
    let mapped = map_network(&net, CellLibrary::standard()).unwrap();
    // Normalize the base itself through a write/parse cycle, as a real
    // flow would.
    let base_text = write_verilog(&mapped);
    let base = parse_verilog(&base_text, mapped.library().clone()).unwrap();

    let fp = Fingerprinter::new(base).unwrap();
    let copy = fp.embed_seeded(0x1D).unwrap();
    let suspect_text = write_verilog(copy.netlist());
    let suspect = parse_verilog(&suspect_text, fp.base().library().clone()).unwrap();

    let bits = fp.extract_by_name(&suspect).unwrap();
    assert_eq!(bits, copy.bits());

    // An unrelated netlist without the expected names is rejected.
    let mut foreign = odcfp_netlist::Netlist::new("f", fp.base().library().clone());
    let a = foreign.add_primary_input("zzz");
    foreign.set_primary_output(a);
    assert!(fp.extract_by_name(&foreign).is_err());
}
