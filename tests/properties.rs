//! Property-based tests over the core invariants, driven by proptest.
//!
//! The generators build random circuits / covers / formulas, and the
//! properties assert the paper's three fingerprinting requirements plus the
//! substrate contracts:
//!
//! * **correct functionality** — every enumerated modification (and any
//!   subset of them) preserves the circuit function;
//! * **distinct fingerprints** — different bit strings give structurally
//!   distinguishable copies, and extraction inverts embedding;
//! * **heredity** — extraction is stable under cloning;
//! * mapping preserves BLIF semantics; the SAT solver agrees with brute
//!   force; collusion exposes exactly the differing bits.

use proptest::prelude::*;

use odcfp_analysis::{cones, odc, AnalysisEngine};
use odcfp_core::collusion::analyze_collusion;
use odcfp_core::{find_locations_naive, find_locations_with, Fingerprinter};
use odcfp_logic::{Cube, Sop};
use odcfp_netlist::{CellLibrary, Netlist};
use odcfp_sat::{probably_equivalent, CnfBuilder, Lit, SolveResult, Solver, Var};
use odcfp_synth::benchmarks::random::{random_dag, DagParams};

fn small_dag(seed: u64) -> Netlist {
    random_dag(
        CellLibrary::standard(),
        DagParams {
            inputs: 8,
            gates: 50,
            outputs: 6,
            window: 16,
            seed,
        },
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Requirement 1 (correct functionality): any random subset of
    /// locations embeds into a circuit equivalent to the base.
    #[test]
    fn any_bit_subset_preserves_function(seed in 0u64..5000, pattern in any::<u64>()) {
        let fp = Fingerprinter::new(small_dag(seed)).unwrap();
        let n = fp.locations().len();
        let bits: Vec<bool> = (0..n).map(|i| (pattern >> (i % 64)) & 1 == 1).collect();
        // embed() verifies 1024 random patterns internally and errors on a
        // mismatch, so success IS the property.
        let copy = fp.embed(&bits).unwrap();
        prop_assert!(probably_equivalent(fp.base(), copy.netlist(), 8, seed).unwrap());
    }

    /// Requirement 2 (distinct fingerprints): extraction inverts embedding,
    /// so distinct bit strings are distinguishable.
    #[test]
    fn extraction_inverts_embedding(seed in 0u64..5000, pattern in any::<u64>()) {
        let fp = Fingerprinter::new(small_dag(seed)).unwrap();
        let n = fp.locations().len();
        let bits: Vec<bool> = (0..n).map(|i| (pattern >> (i % 64)) & 1 == 1).collect();
        let copy = fp.embed(&bits).unwrap();
        prop_assert_eq!(fp.extract(copy.netlist()), bits);
    }

    /// Requirement 3 (heredity): cloning a fingerprinted netlist carries
    /// the fingerprint along verbatim.
    #[test]
    fn heredity_under_cloning(seed in 0u64..5000) {
        let fp = Fingerprinter::new(small_dag(seed)).unwrap();
        let copy = fp.embed_seeded(seed ^ 0xFEED).unwrap();
        let cloned = copy.netlist().clone();
        prop_assert_eq!(fp.extract(&cloned), copy.bits());
    }

    /// Collusion exposes exactly the positions where the copies' bits
    /// differ, never the agreeing ones.
    #[test]
    fn collusion_exposes_exactly_the_diff(seed in 0u64..2000, s1 in any::<u64>(), s2 in any::<u64>()) {
        let fp = Fingerprinter::new(small_dag(seed)).unwrap();
        let a = fp.embed_seeded(s1).unwrap();
        let b = fp.embed_seeded(s2).unwrap();
        let report = analyze_collusion(&fp, &[a.netlist(), b.netlist()]);
        for i in 0..fp.locations().len() {
            let differs = a.bits()[i] != b.bits()[i];
            prop_assert_eq!(report.exposed.contains(&i), differs, "location {}", i);
        }
    }

    /// The CDCL solver agrees with brute-force evaluation on random small
    /// formulas.
    #[test]
    fn solver_matches_brute_force(
        clauses in prop::collection::vec(
            prop::collection::vec((0usize..6, any::<bool>()), 1..4),
            1..24
        )
    ) {
        let mut cnf = CnfBuilder::new();
        let vars: Vec<Var> = cnf.new_vars(6);
        for clause in &clauses {
            cnf.add_clause(clause.iter().map(|&(v, pol)| Lit::with_polarity(vars[v], pol)));
        }
        let brute = (0..64usize).any(|m| {
            let assignment: Vec<bool> = (0..6).map(|v| (m >> v) & 1 == 1).collect();
            cnf.eval(&assignment)
        });
        let mut solver = Solver::from_cnf(&cnf);
        match solver.solve() {
            SolveResult::Sat(model) => {
                prop_assert!(brute);
                let assignment: Vec<bool> = (0..6).map(|v| model.value(vars[v])).collect();
                prop_assert!(cnf.eval(&assignment), "model must satisfy the formula");
            }
            SolveResult::Unsat => prop_assert!(!brute),
            SolveResult::Unknown => prop_assert!(false, "no budget was set"),
        }
    }

    /// Random SOP covers map onto the cell library without changing their
    /// semantics.
    #[test]
    fn mapping_preserves_random_covers(
        rows in prop::collection::vec(prop::collection::vec(0u8..3, 4), 1..6),
        onset in any::<bool>()
    ) {
        let cubes: Vec<Cube> = rows.iter().map(|row| {
            let s: String = row.iter().map(|&c| ['0', '1', '-'][c as usize]).collect();
            s.parse().unwrap()
        }).collect();
        let sop = Sop::new(4, cubes, onset);
        let mut network = odcfp_blif::LogicNetwork::new("prop");
        for i in 0..4 {
            network.add_input(format!("x{i}"));
        }
        network.add_output("y");
        network.add_node(odcfp_blif::LogicNode {
            output: "y".into(),
            fanins: (0..4).map(|i| format!("x{i}")).collect(),
            cover: sop.clone(),
        });
        let mapped = odcfp_synth::map_network(&network, CellLibrary::standard()).unwrap();
        for i in 0..16usize {
            let bits: Vec<bool> = (0..4).map(|v| (i >> v) & 1 == 1).collect();
            prop_assert_eq!(mapped.eval(&bits)[0], sop.eval(&bits), "row {}", i);
        }
    }

    /// The parallel analysis engine finds exactly the locations of the
    /// naive reference scan, in the same order, at any worker count.
    #[test]
    fn engine_locations_match_naive_at_any_thread_count(seed in 0u64..5000) {
        let n = small_dag(seed);
        let naive = find_locations_naive(&n);
        let eng = AnalysisEngine::new(&n).unwrap();
        for threads in [1usize, 2, 8] {
            prop_assert_eq!(
                &find_locations_with(&n, &eng, threads),
                &naive,
                "threads = {}",
                threads
            );
        }
    }

    /// The engine's one-sweep dominator construction reproduces the naive
    /// per-root FFC walk and fanin/fanout-exclusivity helpers everywhere.
    #[test]
    fn engine_cones_match_naive(seed in 0u64..5000) {
        let n = small_dag(seed);
        let eng = AnalysisEngine::new(&n).unwrap();
        for (root, _) in n.gates() {
            prop_assert_eq!(eng.ffc_of(root), cones::ffc_of(&n, root), "ffc of {:?}", root);
            let mut scratch = odcfp_netlist::Scratch::default();
            prop_assert_eq!(
                eng.transitive_fanin(root, &mut scratch),
                cones::transitive_fanin(&n, root),
                "tfi of {:?}",
                root
            );
        }
    }

    /// Batched observability equals the per-net calls it replaces.
    #[test]
    fn batched_observability_matches_per_net(seed in 0u64..2000) {
        let n = small_dag(seed);
        let nets: Vec<_> = n.nets().map(|(id, _)| id).collect();
        let batched = odc::simulated_observability_many(&n, &nets, 4, seed);
        for (i, &net) in nets.iter().enumerate() {
            let single = odc::simulated_observability(&n, net, 4, seed);
            prop_assert_eq!(batched[i], single, "net {:?}", net);
        }
    }

    /// Netlist simulation is consistent: bit-parallel words agree with
    /// scalar evaluation on random DAGs.
    #[test]
    fn word_simulation_matches_scalar(seed in 0u64..5000, assignment in any::<u8>()) {
        let n = small_dag(seed);
        let k = n.primary_inputs().len();
        let bits: Vec<bool> = (0..k).map(|v| (assignment >> (v % 8)) & 1 == 1).collect();
        let scalar = n.eval(&bits);
        let patterns: Vec<Vec<u64>> = bits
            .iter()
            .map(|&b| vec![if b { u64::MAX } else { 0 }])
            .collect();
        let values = n.simulate(&patterns);
        for (j, &po) in n.primary_outputs().iter().enumerate() {
            let word = values[po.index()][0];
            prop_assert!(word == 0 || word == u64::MAX, "constant inputs give constant words");
            prop_assert_eq!(word == u64::MAX, scalar[j]);
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Writing any generated netlist to Verilog and parsing it back yields
    /// a behaviourally identical design.
    #[test]
    fn verilog_roundtrip_preserves_random_dags(seed in 0u64..3000) {
        let n = small_dag(seed);
        let text = odcfp_verilog::write_verilog(&n);
        let back = odcfp_verilog::parse_verilog(&text, n.library().clone()).unwrap();
        prop_assert_eq!(back.num_gates(), n.num_gates());
        prop_assert!(probably_equivalent(&n, &back, 8, seed).unwrap());
    }

    /// Writing any generated netlist's BLIF-level behaviour: the optimizer
    /// never changes the function and never grows the design.
    #[test]
    fn optimizer_preserves_random_dags(seed in 0u64..3000) {
        let n = small_dag(seed);
        let (opt, _) = odcfp_synth::opt::optimize(&n);
        prop_assert!(opt.num_gates() <= n.num_gates());
        prop_assert!(probably_equivalent(&n, &opt, 8, seed ^ 1).unwrap());
    }

    /// The flexible (fuse) design programmed with any bit string matches
    /// the directly embedded netlist on random vectors.
    #[test]
    fn fuse_programming_matches_embedding(seed in 0u64..2000, pattern in any::<u64>()) {
        let fp = Fingerprinter::new(small_dag(seed)).unwrap();
        let flexible = odcfp_core::FlexibleDesign::build(&fp).unwrap();
        let n = fp.locations().len();
        let bits: Vec<bool> = (0..n).map(|i| (pattern >> (i % 64)) & 1 == 1).collect();
        let programmed = flexible.program(&bits).unwrap();
        let embedded = fp.embed(&bits).unwrap();
        prop_assert!(probably_equivalent(&programmed, embedded.netlist(), 8, seed ^ 2).unwrap());
    }

    /// Error-correcting fingerprints survive any single flipped location
    /// per SECDED Hamming(8,4) block — and a second flip in a block is
    /// flagged as ambiguous, never silently mis-corrected.
    #[test]
    fn hamming_payload_survives_single_flip_per_block(
        seed in 0u64..2000,
        payload_word in any::<u16>(),
        flip_pos in 0usize..8,
        second_flip in 0usize..8
    ) {
        use odcfp_core::robust::{decode, encode, Code, DecodeStatus};
        let locations = 24; // three blocks
        let payload: Vec<bool> = (0..12).map(|i| (payload_word >> i) & 1 == 1).collect();
        let mut bits = encode(Code::Hamming, &payload, locations).unwrap();
        // Flip one position in every block.
        for block in 0..3 {
            let at = block * 8 + flip_pos;
            bits[at] = !bits[at];
        }
        let decoded = decode(Code::Hamming, &bits, 12);
        prop_assert_eq!(decoded.payload, payload, "seed {}", seed);
        prop_assert_eq!(decoded.tampered_locations.len(), 3);
        prop_assert_eq!(decoded.status, DecodeStatus::Corrected);
        // A second, distinct flip in block 0 exceeds the margin.
        if second_flip != flip_pos {
            bits[second_flip] = !bits[second_flip];
            let double = decode(Code::Hamming, &bits, 12);
            prop_assert_eq!(double.status, DecodeStatus::Ambiguous);
        }
    }
}
