//! Deadline propagation through the verify fast path: a `CancelToken`
//! armed with a short deadline must cut the `SweepEngine`/`SharedMiter`
//! ladder short — returning `Undecided`, promptly — rather than hang on
//! a hard SAT obligation. Exercised at `ODCFP_THREADS` 1 and 8, since
//! interrupt plumbing differs between the serial and parallel engines.
//!
//! All scenarios live in ONE `#[test]`: the thread override is
//! process-global, so the thread counts must run sequentially, not in
//! the test harness's parallel runner.

use std::time::{Duration, Instant};

use odcfp_core::{CancelToken, Fingerprinter, Verdict, VerifyPolicy, VerifySession};
use odcfp_netlist::CellLibrary;

/// A multiplier-class circuit: hard enough that strict verification
/// reaches the SAT rungs and a millisecond-scale deadline fires
/// mid-sweep rather than after a trivial structural proof.
fn hard_pair() -> (Fingerprinter, odcfp_netlist::Netlist) {
    let base = odcfp_synth::benchmarks::generate("c6288", CellLibrary::standard())
        .expect("known benchmark");
    let fp = Fingerprinter::new(base).expect("analysable");
    let copy = fp.embed(&vec![true; fp.locations().len()]).expect("embeddable");
    (fp, copy.into_netlist())
}

#[test]
fn short_deadline_mid_sweep_degrades_to_undecided_at_1_and_8_threads() {
    let (fp, candidate) = hard_pair();
    // Generous bound: orders of magnitude under an un-cancelled c6288
    // proof, far above scheduler noise.
    let grace = Duration::from_secs(10);

    for threads in [1usize, 8] {
        odcfp_analysis::engine::set_thread_override(Some(threads));

        // A fresh session per thread count: the sweep engine caches
        // proofs, and a warm strash hit would dodge the SAT rung this
        // test is aiming at.
        let mut session = VerifySession::new(fp.base()).expect("valid golden");

        // Deadline armed *before* the sweep starts and short enough to
        // fire inside it.
        let token = CancelToken::with_timeout(Duration::from_millis(3));
        let started = Instant::now();
        let report = session
            .verify_cancellable(&candidate, &VerifyPolicy::strict(), &token)
            .expect("cancellation is a verdict, not an error");
        let elapsed = started.elapsed();
        assert!(
            matches!(report.verdict, Verdict::Undecided { .. }),
            "threads={threads}: expected Undecided under a 3ms deadline, got {:?}",
            report.verdict
        );
        assert!(
            elapsed < grace,
            "threads={threads}: deadline did not cut the sweep short ({elapsed:?})"
        );
        assert!(
            token.is_cancelled(),
            "threads={threads}: the deadline should have fired"
        );

        // Pre-cancelled token: the ladder must return immediately.
        let mut session = VerifySession::new(fp.base()).expect("valid golden");
        let token = CancelToken::new();
        token.cancel();
        let started = Instant::now();
        let report = session
            .verify_cancellable(&candidate, &VerifyPolicy::strict(), &token)
            .expect("cancelled verify still reports");
        assert!(
            matches!(report.verdict, Verdict::Undecided { .. }),
            "threads={threads}: pre-cancelled token must yield Undecided, got {:?}",
            report.verdict
        );
        assert!(
            started.elapsed() < grace,
            "threads={threads}: pre-cancelled verify should return at once"
        );
    }

    // Restore the global override for any test that runs after us in
    // the same process.
    odcfp_analysis::engine::set_thread_override(None);

    // Control: with no deadline the same session/candidate pair proves
    // equivalence — the Undecideds above were the token's doing.
    let mut session = VerifySession::new(fp.base()).expect("valid golden");
    let report = session
        .verify_cancellable(&candidate, &VerifyPolicy::strict(), &CancelToken::new())
        .expect("verifies");
    assert!(
        matches!(report.verdict, Verdict::Proven),
        "control run without deadline must prove, got {:?}",
        report.verdict
    );
}
