//! Cross-crate integration tests: benchmark generation → fingerprinting →
//! verification → detection, end to end.

use odcfp_analysis::DesignMetrics;
use odcfp_core::collusion::{analyze_collusion, forge, trace_suspects, ForgeStrategy};
use odcfp_core::heuristics::{reactive_delay_reduction, ReactiveOptions};
use odcfp_core::{Fingerprinter, VerifyLevel};
use odcfp_netlist::{CellLibrary, Netlist};
use odcfp_sat::{check_equivalence, probably_equivalent, EquivResult};
use odcfp_synth::benchmarks;

fn engine(name: &str) -> Fingerprinter {
    let base = benchmarks::generate(name, CellLibrary::standard()).expect("known name");
    Fingerprinter::new(base).expect("valid netlist")
}

#[test]
fn c432_full_embedding_is_sat_equivalent() {
    let fp = engine("c432");
    assert!(fp.locations().len() >= 20, "c432-class should offer many locations");
    let copy = fp
        .embed_verified(&vec![true; fp.locations().len()], VerifyLevel::Sat)
        .expect("equivalence must hold");
    assert_eq!(fp.extract(copy.netlist()), copy.bits());
}

#[test]
fn c880_random_copies_are_equivalent_and_distinct() {
    let fp = engine("c880");
    let a = fp.embed_seeded(1).unwrap();
    let b = fp.embed_seeded(2).unwrap();
    assert!(probably_equivalent(fp.base(), a.netlist(), 32, 5).unwrap());
    assert!(probably_equivalent(a.netlist(), b.netlist(), 32, 5).unwrap());
    assert_ne!(a.bits(), b.bits(), "distinct seeds give distinct fingerprints");
    // Distinctness requirement: the copies are structurally distinguishable.
    assert_ne!(fp.extract(a.netlist()), fp.extract(b.netlist()));
}

#[test]
fn every_benchmark_fingerprints_and_simulates_equivalent() {
    // The full Table II suite: simulation-level equivalence of the maximal
    // embedding (SAT proof for each is covered by targeted tests; this one
    // guards the whole generator + pipeline matrix).
    for name in benchmarks::TABLE2_NAMES {
        let fp = engine(name);
        assert!(
            fp.locations().len() > 10,
            "{name}: too few locations ({})",
            fp.locations().len()
        );
        let copy = fp.embed_all().unwrap_or_else(|e| panic!("{name}: {e}"));
        assert!(
            probably_equivalent(fp.base(), copy.netlist(), 8, 0xE0).unwrap(),
            "{name}: maximal embedding altered the function"
        );
    }
}

#[test]
fn medium_benchmarks_full_embedding_sat_proof() {
    for name in ["c499", "c1355", "c1908"] {
        let fp = engine(name);
        let copy = fp.embed_all().unwrap();
        assert_eq!(
            check_equivalence(fp.base(), copy.netlist(), Some(2_000_000)).unwrap(),
            EquivResult::Equivalent,
            "{name}"
        );
    }
}

#[test]
fn overheads_have_the_papers_shape() {
    // Table II shape: positive area overhead, delay overhead is the
    // dominant cost on the PLA-style circuits.
    let fp = engine("k2");
    let base = DesignMetrics::measure(fp.base());
    let copy = fp.embed_all().unwrap();
    let oh = DesignMetrics::measure(copy.netlist()).overhead_vs(&base);
    assert!(oh.area_pct > 2.0, "area should grow: {}", oh.area_pct);
    assert!(
        oh.delay_pct > oh.area_pct,
        "delay overhead should dominate on k2: {oh}"
    );
}

#[test]
fn heredity_fingerprint_survives_exact_cloning() {
    // The third fingerprinting requirement: a verbatim copy of the netlist
    // carries the same fingerprint.
    let fp = engine("c432");
    let copy = fp.embed_seeded(0xACE).unwrap();
    let clone: Netlist = copy.netlist().clone();
    assert_eq!(fp.extract(&clone), copy.bits());
}

#[test]
fn reactive_constraint_respected_on_real_benchmark() {
    let fp = engine("c499");
    for pct in [10.0, 1.0] {
        let r = reactive_delay_reduction(&fp, pct, ReactiveOptions::default()).unwrap();
        let oh = r.metrics.overhead_vs(&r.base_metrics);
        assert!(oh.delay_pct <= pct + 1e-9, "{pct}%: {}", oh.delay_pct);
        assert!(
            probably_equivalent(fp.base(), r.copy.netlist(), 16, 3).unwrap(),
            "constrained copy must stay equivalent"
        );
    }
}

#[test]
fn collusion_and_tracing_on_real_benchmark() {
    let fp = engine("vda");
    let copies: Vec<_> = (0..6).map(|k| fp.embed_seeded(900 + k).unwrap()).collect();
    let registry: Vec<Vec<bool>> = copies.iter().map(|c| c.bits().to_vec()).collect();
    let held: Vec<&Netlist> = copies[..3].iter().map(|c| c.netlist()).collect();

    let report = analyze_collusion(&fp, &held);
    assert!(!report.exposed.is_empty(), "three copies must differ somewhere");
    assert!(!report.hidden.is_empty(), "residue must remain for tracing");

    let forged = forge(&fp, &held, ForgeStrategy::ClearExposed).unwrap();
    assert!(probably_equivalent(fp.base(), forged.netlist(), 16, 4).unwrap());

    let ranking = trace_suspects(&fp.extract(forged.netlist()), &registry);
    let top3: Vec<usize> = ranking.iter().take(3).map(|&(i, _)| i).collect();
    for colluder in 0..3 {
        assert!(top3.contains(&colluder), "colluder {colluder} not traced: {ranking:?}");
    }
}

#[test]
fn capacity_grows_with_circuit_size() {
    let small = engine("c432").capacity();
    let large = engine("des").capacity();
    assert!(large.num_locations > small.num_locations * 5);
    assert!(large.log2_combinations > small.log2_combinations * 5.0);
}

#[test]
fn configuration_vectors_realize_extra_capacity() {
    // The paper's log2(combinations) counts *which* modification is chosen
    // per location. Exercise several non-default configuration vectors on
    // c432 and prove each one equivalent and re-extractable.
    use odcfp_core::VerifyLevel;
    let fp = engine("c432");
    let n = fp.locations().len();
    let mut rng = odcfp_logic::rng::Xoshiro256::seed_from_u64(0xCF6);
    let mut tried = 0;
    let mut succeeded = 0;
    while succeeded < 3 && tried < 10 {
        tried += 1;
        let configs: Vec<usize> = fp
            .locations()
            .iter()
            .map(|loc| rng.next_below(loc.candidates.len() + 1))
            .collect();
        // Conflicting vectors are rejected, not mis-embedded; retry.
        let Ok(netlist) = fp.embed_configs(&configs, VerifyLevel::Simulation) else {
            continue;
        };
        succeeded += 1;
        assert!(probably_equivalent(fp.base(), &netlist, 16, 0xC0).unwrap());
        let recovered = fp.extract_configs(&netlist);
        assert_eq!(recovered.len(), n);
        // Non-zero selections are detected as applied (possibly as an
        // overlapping smaller candidate); zero selections stay zero unless
        // another location's choice aliased into them, which the engine's
        // conflict rejection prevents for identical literals.
        for (i, (&want, &got)) in configs.iter().zip(&recovered).enumerate() {
            if want == 0 {
                assert_eq!(got, 0, "location {i} should be unmodified");
            } else {
                assert_ne!(got, 0, "location {i} selection must be detected");
            }
        }
    }
    assert!(succeeded >= 3, "only {succeeded} configuration vectors embedded");
}

#[test]
fn out_of_range_configuration_rejected() {
    let fp = engine("c432");
    let mut configs = vec![0usize; fp.locations().len()];
    configs[0] = fp.locations()[0].candidates.len() + 1;
    assert!(matches!(
        fp.embed_configs(&configs, odcfp_core::VerifyLevel::None),
        Err(odcfp_core::FingerprintError::CannotApply { .. })
    ));
}
