//! Integration tests for the companion SDC technique on real benchmark
//! circuits (the gates it finds there are the classic mux-output NANDs
//! whose (0,0) input row is structurally impossible).

use odcfp_core::sdc::{find_sdc_locations, SdcFingerprinter};
use odcfp_core::Fingerprinter;
use odcfp_netlist::CellLibrary;
use odcfp_sat::{check_equivalence, probably_equivalent, EquivResult};
use odcfp_synth::benchmarks;

#[test]
fn c880_mux_nands_are_sdc_locations() {
    let base = benchmarks::generate("c880", CellLibrary::standard()).unwrap();
    let fp = SdcFingerprinter::new(base).unwrap();
    // The ALU generator's 2:1 muxes end in NAND(t0, t1) where t0 = t1 = 0
    // requires s = 0 and s = 1 simultaneously.
    assert!(
        fp.locations().len() >= 32,
        "expected the mux NANDs, got {}",
        fp.locations().len()
    );
    let all = fp.embed(&vec![true; fp.locations().len()]).unwrap();
    assert_eq!(
        check_equivalence(fp.base(), &all, Some(5_000_000)).unwrap(),
        EquivResult::Equivalent,
        "all swaps applied together must preserve the ALU"
    );
    let bits = fp.extract(&all);
    assert!(bits.iter().all(|&b| b));
}

#[test]
fn sdc_swaps_change_no_metric_direction_surprisingly() {
    // Swapping NAND2 -> XOR2 grows area (XOR cells are larger) but never
    // changes behaviour; just sanity-check both.
    use odcfp_analysis::area::total_area;
    let base = benchmarks::generate("vda", CellLibrary::standard()).unwrap();
    let fp = SdcFingerprinter::new(base).unwrap();
    if fp.locations().is_empty() {
        return;
    }
    let marked = fp.embed(&vec![true; fp.locations().len()]).unwrap();
    assert!(probably_equivalent(fp.base(), &marked, 16, 1).unwrap());
    assert!(total_area(&marked) >= total_area(fp.base()));
}

#[test]
fn odc_and_sdc_capacities_stack_on_a_benchmark() {
    // The two techniques mark different structures, so their capacities
    // add: embed SDC swaps first, then ODC wires on top, and verify the
    // combined copy.
    let base = benchmarks::generate("c880", CellLibrary::standard()).unwrap();
    let sdc = SdcFingerprinter::new(base).unwrap();
    let sdc_bits: Vec<bool> = (0..sdc.locations().len()).map(|i| i % 2 == 0).collect();
    let swapped = sdc.embed(&sdc_bits).unwrap();

    let odc = Fingerprinter::new(swapped).unwrap();
    assert!(!odc.locations().is_empty());
    let copy = odc.embed_seeded(5).unwrap();

    // Combined copy is equivalent to the *original* base.
    assert!(probably_equivalent(sdc.base(), copy.netlist(), 16, 9).unwrap());
    // Both marks extract independently.
    assert_eq!(sdc.extract(copy.netlist()), sdc_bits);
    assert_eq!(odc.extract(copy.netlist()), copy.bits());
}

#[test]
fn prefilter_budget_is_sound() {
    // With a tiny conflict budget, locations may be missed but never
    // invented: everything returned still proves UNSAT with a larger
    // budget.
    let base = benchmarks::generate("c880", CellLibrary::standard()).unwrap();
    let tight = find_sdc_locations(&base, 1);
    let loose = find_sdc_locations(&base, 1_000_000);
    for l in &tight {
        assert!(
            loose.contains(l),
            "budgeted result {l:?} missing from full result"
        );
    }
}
