//! Differential property suite for the resynthesis attack transform:
//! every [`ResynthLevel`] must be semantics-preserving on every circuit
//! the attack battery can ever feed it. The battery in
//! `odcfp_core::attack` grades *robustness* and deliberately tolerates
//! lossy verification of minted copies, so this suite is the sole owner
//! of the equivalence invariant — it proves each round-trip
//! `Equivalent` with an unbudgeted SAT miter on the PR 1 fault-battery
//! population: random-DAG bases, stuck-at and wrong-cell mutants of
//! them, and fully fingerprinted copies.
//!
//! The property is checked at `ODCFP_THREADS=1` and `8` inside a single
//! test body (the override is process-global, so the matrix must not
//! race across the harness's test threads). Resynthesis itself is
//! single-threaded; the thread axis exercises the sweep-backed SAT rung
//! the proof runs on.

use odcfp_core::faults::FaultInjector;
use odcfp_core::Fingerprinter;
use odcfp_netlist::{CellLibrary, Netlist};
use odcfp_sat::{check_equivalence, EquivResult};
use odcfp_synth::benchmarks::random::{random_dag, DagParams};
use odcfp_synth::{resynthesize, ResynthLevel};

fn small_base(seed: u64) -> Netlist {
    random_dag(CellLibrary::standard(), DagParams::small(seed))
}

/// Proves `original` equivalent to its resynthesized form at every
/// level, and sanity-checks the rewritten netlist still validates and
/// keeps the interface.
fn assert_levels_preserve_function(original: &Netlist, label: &str) {
    for level in ResynthLevel::ALL {
        let (attacked, stats) = resynthesize(original, level)
            .unwrap_or_else(|e| panic!("{label}/{}: resynthesis failed: {e}", level.name()));
        attacked
            .validate()
            .unwrap_or_else(|e| panic!("{label}/{}: invalid netlist: {e}", level.name()));
        assert_eq!(
            attacked.primary_inputs().len(),
            original.primary_inputs().len(),
            "{label}/{}: input count changed",
            level.name()
        );
        assert_eq!(
            attacked.primary_outputs().len(),
            original.primary_outputs().len(),
            "{label}/{}: output count changed",
            level.name()
        );
        assert!(
            stats.gates_after > 0,
            "{label}/{}: rewrite emptied the netlist",
            level.name()
        );
        let verdict = check_equivalence(original, &attacked, None)
            .unwrap_or_else(|e| panic!("{label}/{}: miter errored: {e}", level.name()));
        assert!(
            matches!(verdict, EquivResult::Equivalent),
            "{label}/{}: resynthesis changed the function: {verdict:?}",
            level.name()
        );
    }
}

/// Runs `body` once per thread setting, restoring the default even when
/// a case panics partway would poison later tests in other files — the
/// override is reset unconditionally at the end.
fn across_thread_matrix(mut body: impl FnMut(usize)) {
    for threads in [1usize, 8] {
        odcfp_analysis::engine::set_thread_override(Some(threads));
        body(threads);
    }
    odcfp_analysis::engine::set_thread_override(None);
}

#[test]
fn resynth_preserves_fault_battery_bases() {
    across_thread_matrix(|threads| {
        for seed in 0..4 {
            let base = small_base(40 + seed);
            assert_levels_preserve_function(&base, &format!("base seed {seed} t{threads}"));
        }
    });
}

#[test]
fn resynth_preserves_stuck_at_mutants() {
    across_thread_matrix(|threads| {
        for seed in 0..4 {
            let base = small_base(40 + seed);
            let mut inj = FaultInjector::new(seed);
            let (faulty, net, value) = inj.random_stuck_at(&base).unwrap();
            faulty.validate().unwrap();
            // The mutant differs from the base; resynthesis must keep it
            // differing in exactly the same way — equivalence is checked
            // against the *mutant*, never the base.
            assert_levels_preserve_function(
                &faulty,
                &format!("stuck-at seed {seed} ({net:?}={value}) t{threads}"),
            );
        }
    });
}

#[test]
fn resynth_preserves_wrong_cell_mutants() {
    across_thread_matrix(|threads| {
        for seed in 0..4 {
            let base = small_base(60 + seed);
            let mut inj = FaultInjector::new(seed);
            let (faulty, gate) = inj.random_wrong_cell(&base).unwrap();
            faulty.validate().unwrap();
            assert_levels_preserve_function(
                &faulty,
                &format!("wrong-cell seed {seed} ({gate:?}) t{threads}"),
            );
        }
    });
}

#[test]
fn resynth_preserves_fingerprinted_copies() {
    across_thread_matrix(|threads| {
        for seed in 0..2 {
            let base = small_base(80 + seed);
            let fp = Fingerprinter::new(base).unwrap();
            let n = fp.locations().len();
            if n == 0 {
                continue;
            }
            // An alternating code plus the all-ones code: the densest
            // copy stresses the rewrite most (every FFC gate widened).
            for (tag, bits) in [
                ("alt", (0..n).map(|i| i % 2 == 0).collect::<Vec<bool>>()),
                ("ones", vec![true; n]),
            ] {
                let copy = fp.embed(&bits).unwrap();
                assert_levels_preserve_function(
                    copy.netlist(),
                    &format!("fingerprinted seed {seed} {tag} t{threads}"),
                );
            }
        }
    });
}
