//! The deterministic malformed-input corpus: named adversarial fixtures
//! that must each produce a *structured error* — a typed `Err` with a
//! useful message — from the full load pipeline. Never a panic, never a
//! silent half-parse.
//!
//! The proptest companion (`parser_robustness.rs`) establishes "no input
//! panics"; this corpus pins down the *interesting* failure shapes —
//! truncation mid-construct, combinational cycles, duplicate
//! definitions, NUL bytes, pathological line lengths — so a parser
//! regression that starts accepting (or crashing on) one of them is
//! caught by name. The same fixtures are driven through the `odcfp`
//! binary in `crates/cli/tests/e2e.rs`.

use odcfp_netlist::CellLibrary;

/// Runs a BLIF source through the whole designer-side load pipeline:
/// parse, network validation, technology mapping, netlist validation.
/// Returns the first structured error message.
fn load_blif(src: &str) -> Result<(), String> {
    let network = odcfp_blif::parse_blif(src).map_err(|e| e.to_string())?;
    network.validate().map_err(|e| e.to_string())?;
    let netlist = odcfp_synth::map_network(&network, CellLibrary::standard())
        .map_err(|e| e.to_string())?;
    netlist.validate().map_err(|e| e.to_string())
}

fn load_verilog(src: &str) -> Result<(), String> {
    let netlist =
        odcfp_verilog::parse_verilog(src, CellLibrary::standard()).map_err(|e| e.to_string())?;
    netlist.validate().map_err(|e| e.to_string())
}

/// Every BLIF fixture: (name, source, substring the error must contain).
pub fn blif_fixtures() -> Vec<(&'static str, String, &'static str)> {
    vec![
        (
            "truncated_mid_cube",
            ".model t\n.inputs a b\n.outputs y\n.names a b y\n11".into(),
            "bad cover row",
        ),
        (
            "combinational_cycle",
            ".model c\n.inputs a\n.outputs y\n.names a x y\n11 1\n.names y x\n1 1\n.end\n"
                .into(),
            "cycle",
        ),
        (
            "duplicate_model",
            ".model m\n.inputs a\n.outputs y\n.names a y\n1 1\n.end\n\
             .model m\n.inputs b\n.outputs z\n.names b z\n1 1\n.end\n"
                .into(),
            "multiple .model",
        ),
        (
            "nul_byte_in_cube",
            ".model n\n.inputs a\n.outputs y\n.names a y\n1\u{0} 1\n.end\n".into(),
            "bad cover row",
        ),
        (
            "cube_width_mismatch",
            ".model w\n.inputs a b\n.outputs y\n.names a b y\n1 1\n.end\n".into(),
            "bad cover row",
        ),
        (
            "invalid_cube_character",
            ".model x\n.inputs a\n.outputs y\n.names a y\nx 1\n.end\n".into(),
            "bad cover row",
        ),
        (
            "sequential_latch",
            ".model l\n.inputs a\n.outputs y\n.latch a y re clk 0\n.end\n".into(),
            "sequential",
        ),
        (
            "no_model_header",
            "# just a comment\n.end\n".into(),
            "no .model",
        ),
        (
            "undriven_output",
            ".model u\n.inputs a\n.outputs y z\n.names a y\n1 1\n.end\n".into(),
            "undefined",
        ),
        (
            // One hundred-megabyte cover row on a single line: the parser
            // must reject it with a bounded, structured error — no OOM
            // from quadratic buffering, no hang, no panic. (The CLI twin
            // of this fixture uses a smaller line to spare CI disk I/O.)
            "hundred_megabyte_line",
            format!(
                ".model big\n.inputs a\n.outputs y\n.names a y\n{} 1\n.end\n",
                "1".repeat(100 * 1024 * 1024)
            ),
            "bad cover row",
        ),
    ]
}

/// Every Verilog fixture: (name, source, substring the error must contain).
pub fn verilog_fixtures() -> Vec<(&'static str, String, &'static str)> {
    const GOOD: &str = "module m (a, y);\ninput a;\noutput y;\nINV u1 (.A(a), .Y(y));\nendmodule\n";
    vec![
        (
            "unterminated_block_comment",
            "module m (a, y); input a; output y; /* oops".into(),
            "unexpected end of input",
        ),
        (
            "unknown_cell",
            "module m (a, y); input a; output y; FROB u1 (.A(a), .Y(y)); endmodule".into(),
            "unknown cell",
        ),
        (
            "undeclared_wire",
            "module m (a, y); input a; output y; INV u1 (.A(w), .Y(y)); endmodule".into(),
            "bad connections",
        ),
        (
            // Concatenated files must not silently half-parse as the
            // first module.
            "second_module",
            format!("{GOOD}module m2 (b, z);\ninput b;\noutput z;\nINV u2 (.A(b), .Y(z));\nendmodule\n"),
            "trailing input after endmodule",
        ),
        (
            "trailing_garbage",
            format!("{GOOD}garbage\n"),
            "trailing input after endmodule",
        ),
        (
            "nul_byte_in_identifier",
            "module m\u{0} (a, y); input a; output y; INV u1 (.A(a), .Y(y)); endmodule".into(),
            "unsupported construct",
        ),
        (
            "truncated_mid_instance",
            "module m (a, y); input a; output y; INV u1 (.A(a), .Y".into(),
            "unexpected end of input",
        ),
        (
            "multiple_drivers",
            "module m (a, y); input a; output y; INV u1 (.A(a), .Y(y)); \
             INV u2 (.A(a), .Y(y)); endmodule"
                .into(),
            "multiple drivers",
        ),
    ]
}

#[test]
fn blif_corpus_yields_structured_errors() {
    for (name, src, needle) in blif_fixtures() {
        let err = load_blif(&src).expect_err(name);
        assert!(
            err.to_lowercase().contains(needle),
            "{name}: expected {needle:?} in {err:?}"
        );
        assert!(!err.is_empty(), "{name}: empty error message");
    }
}

#[test]
fn verilog_corpus_yields_structured_errors() {
    for (name, src, needle) in verilog_fixtures() {
        let err = load_verilog(&src).expect_err(name);
        assert!(
            err.to_lowercase().contains(needle),
            "{name}: expected {needle:?} in {err:?}"
        );
    }
}

#[test]
fn blif_errors_carry_line_numbers() {
    // Parse-stage fixtures must point at the offending line.
    let src = ".model t\n.inputs a b\n.outputs y\n.names a b y\n11";
    let err = odcfp_blif::parse_blif(src).expect_err("truncated cube");
    assert!(err.to_string().contains("line 5"), "{err}");
}

#[test]
fn corpus_rejection_is_fast_even_for_huge_lines() {
    // The 100 MB fixture must fail in time linear in its size: budget a
    // generous wall-clock ceiling to catch accidental quadratic rescans.
    let (_, src, _) = blif_fixtures()
        .into_iter()
        .find(|(name, ..)| *name == "hundred_megabyte_line")
        .expect("fixture present");
    let start = std::time::Instant::now();
    assert!(load_blif(&src).is_err());
    assert!(
        start.elapsed() < std::time::Duration::from_secs(30),
        "100 MB rejection took {:?}",
        start.elapsed()
    );
}
