//! The deterministic malformed-input corpus: named adversarial fixtures
//! that must each produce a *structured error* — a typed `Err` with a
//! useful message — from the full load pipeline. Never a panic, never a
//! silent half-parse.
//!
//! The proptest companion (`parser_robustness.rs`) establishes "no input
//! panics"; this corpus pins down the *interesting* failure shapes —
//! truncation mid-construct, combinational cycles, duplicate
//! definitions, NUL bytes, pathological line lengths — so a parser
//! regression that starts accepting (or crashing on) one of them is
//! caught by name. The same fixtures are driven through the `odcfp`
//! binary in `crates/cli/tests/e2e.rs`, and through both verification
//! paths in `verify_fastpath.rs`.

#[path = "corpus_fixtures.rs"]
mod corpus_fixtures;

use corpus_fixtures::{blif_fixtures, load_blif, load_verilog, verilog_fixtures};

#[test]
fn blif_corpus_yields_structured_errors() {
    for (name, src, needle) in blif_fixtures() {
        let err = load_blif(&src).map(|_| ()).expect_err(name);
        assert!(
            err.to_lowercase().contains(needle),
            "{name}: expected {needle:?} in {err:?}"
        );
        assert!(!err.is_empty(), "{name}: empty error message");
    }
}

#[test]
fn verilog_corpus_yields_structured_errors() {
    for (name, src, needle) in verilog_fixtures() {
        let err = load_verilog(&src).map(|_| ()).expect_err(name);
        assert!(
            err.to_lowercase().contains(needle),
            "{name}: expected {needle:?} in {err:?}"
        );
    }
}

#[test]
fn blif_errors_carry_line_numbers() {
    // Parse-stage fixtures must point at the offending line.
    let src = ".model t\n.inputs a b\n.outputs y\n.names a b y\n11";
    let err = odcfp_blif::parse_blif(src).expect_err("truncated cube");
    assert!(err.to_string().contains("line 5"), "{err}");
}

#[test]
fn corpus_rejection_is_fast_even_for_huge_lines() {
    // The 100 MB fixture must fail in time linear in its size: budget a
    // generous wall-clock ceiling to catch accidental quadratic rescans.
    let (_, src, _) = blif_fixtures()
        .into_iter()
        .find(|(name, ..)| *name == "hundred_megabyte_line")
        .expect("fixture present");
    let start = std::time::Instant::now();
    assert!(load_blif(&src).is_err());
    assert!(
        start.elapsed() < std::time::Duration::from_secs(30),
        "100 MB rejection took {:?}",
        start.elapsed()
    );
}
