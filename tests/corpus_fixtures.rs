//! The deterministic malformed-input corpus fixtures, shared between the
//! structured-error suite (`malformed_corpus.rs`) and the verification
//! fast-path agreement suite (`verify_fastpath.rs`). Include with
//! `#[path = "corpus_fixtures.rs"] mod corpus_fixtures;` — integration
//! tests are separate crates and cannot link each other directly.

use odcfp_netlist::{CellLibrary, Netlist};

/// Runs a BLIF source through the whole designer-side load pipeline:
/// parse, network validation, technology mapping, netlist validation.
/// Returns the mapped netlist or the first structured error message.
pub fn load_blif(src: &str) -> Result<Netlist, String> {
    let network = odcfp_blif::parse_blif(src).map_err(|e| e.to_string())?;
    network.validate().map_err(|e| e.to_string())?;
    let netlist = odcfp_synth::map_network(&network, CellLibrary::standard())
        .map_err(|e| e.to_string())?;
    netlist.validate().map_err(|e| e.to_string())?;
    Ok(netlist)
}

/// The Verilog twin of [`load_blif`].
pub fn load_verilog(src: &str) -> Result<Netlist, String> {
    let netlist =
        odcfp_verilog::parse_verilog(src, CellLibrary::standard()).map_err(|e| e.to_string())?;
    netlist.validate().map_err(|e| e.to_string())?;
    Ok(netlist)
}

/// Every BLIF fixture: (name, source, substring the error must contain).
pub fn blif_fixtures() -> Vec<(&'static str, String, &'static str)> {
    vec![
        (
            "truncated_mid_cube",
            ".model t\n.inputs a b\n.outputs y\n.names a b y\n11".into(),
            "bad cover row",
        ),
        (
            "combinational_cycle",
            ".model c\n.inputs a\n.outputs y\n.names a x y\n11 1\n.names y x\n1 1\n.end\n"
                .into(),
            "cycle",
        ),
        (
            "duplicate_model",
            ".model m\n.inputs a\n.outputs y\n.names a y\n1 1\n.end\n\
             .model m\n.inputs b\n.outputs z\n.names b z\n1 1\n.end\n"
                .into(),
            "multiple .model",
        ),
        (
            "nul_byte_in_cube",
            ".model n\n.inputs a\n.outputs y\n.names a y\n1\u{0} 1\n.end\n".into(),
            "bad cover row",
        ),
        (
            "cube_width_mismatch",
            ".model w\n.inputs a b\n.outputs y\n.names a b y\n1 1\n.end\n".into(),
            "bad cover row",
        ),
        (
            "invalid_cube_character",
            ".model x\n.inputs a\n.outputs y\n.names a y\nx 1\n.end\n".into(),
            "bad cover row",
        ),
        (
            "sequential_latch",
            ".model l\n.inputs a\n.outputs y\n.latch a y re clk 0\n.end\n".into(),
            "sequential",
        ),
        (
            "no_model_header",
            "# just a comment\n.end\n".into(),
            "no .model",
        ),
        (
            "undriven_output",
            ".model u\n.inputs a\n.outputs y z\n.names a y\n1 1\n.end\n".into(),
            "undefined",
        ),
        (
            // One hundred-megabyte cover row on a single line: the parser
            // must reject it with a bounded, structured error — no OOM
            // from quadratic buffering, no hang, no panic. (The CLI twin
            // of this fixture uses a smaller line to spare CI disk I/O.)
            "hundred_megabyte_line",
            format!(
                ".model big\n.inputs a\n.outputs y\n.names a y\n{} 1\n.end\n",
                "1".repeat(100 * 1024 * 1024)
            ),
            "bad cover row",
        ),
    ]
}

/// Every Verilog fixture: (name, source, substring the error must contain).
pub fn verilog_fixtures() -> Vec<(&'static str, String, &'static str)> {
    const GOOD: &str = "module m (a, y);\ninput a;\noutput y;\nINV u1 (.A(a), .Y(y));\nendmodule\n";
    vec![
        (
            "unterminated_block_comment",
            "module m (a, y); input a; output y; /* oops".into(),
            "unexpected end of input",
        ),
        (
            "unknown_cell",
            "module m (a, y); input a; output y; FROB u1 (.A(a), .Y(y)); endmodule".into(),
            "unknown cell",
        ),
        (
            "undeclared_wire",
            "module m (a, y); input a; output y; INV u1 (.A(w), .Y(y)); endmodule".into(),
            "bad connections",
        ),
        (
            // Concatenated files must not silently half-parse as the
            // first module.
            "second_module",
            format!("{GOOD}module m2 (b, z);\ninput b;\noutput z;\nINV u2 (.A(b), .Y(z));\nendmodule\n"),
            "trailing input after endmodule",
        ),
        (
            "trailing_garbage",
            format!("{GOOD}garbage\n"),
            "trailing input after endmodule",
        ),
        (
            "nul_byte_in_identifier",
            "module m\u{0} (a, y); input a; output y; INV u1 (.A(a), .Y(y)); endmodule".into(),
            "unsupported construct",
        ),
        (
            "truncated_mid_instance",
            "module m (a, y); input a; output y; INV u1 (.A(a), .Y".into(),
            "unexpected end of input",
        ),
        (
            "multiple_drivers",
            "module m (a, y); input a; output y; INV u1 (.A(a), .Y(y)); \
             INV u2 (.A(a), .Y(y)); endmodule"
                .into(),
            "multiple drivers",
        ),
    ]
}
