//! CNF formula construction.

use crate::{Lit, Var};

/// An incrementally built CNF formula.
///
/// Trivially satisfied clauses (containing `l` and `!l`) are dropped and
/// duplicate literals within a clause are merged at insertion, so the
/// [`crate::Solver`] only ever sees clean clauses.
#[derive(Debug, Clone, Default)]
pub struct CnfBuilder {
    num_vars: usize,
    clauses: Vec<Vec<Lit>>,
}

impl CnfBuilder {
    /// Creates an empty formula.
    pub fn new() -> Self {
        CnfBuilder::default()
    }

    /// Allocates a fresh variable.
    pub fn new_var(&mut self) -> Var {
        let v = Var::from_index(self.num_vars);
        self.num_vars += 1;
        v
    }

    /// Allocates `n` fresh variables.
    pub fn new_vars(&mut self, n: usize) -> Vec<Var> {
        (0..n).map(|_| self.new_var()).collect()
    }

    /// Adds a clause (a disjunction of literals).
    ///
    /// An empty clause makes the formula unsatisfiable. Tautological
    /// clauses are silently dropped; repeated literals are deduplicated.
    ///
    /// # Panics
    ///
    /// Panics if a literal references an unallocated variable.
    pub fn add_clause(&mut self, lits: impl IntoIterator<Item = Lit>) {
        let mut clause: Vec<Lit> = lits.into_iter().collect();
        for l in &clause {
            assert!(
                l.var().index() < self.num_vars,
                "literal {l} references an unallocated variable"
            );
        }
        clause.sort_unstable();
        clause.dedup();
        // Tautology: `l` and `!l` are adjacent after sorting by code.
        if clause.windows(2).any(|w| w[0] == !w[1]) {
            return;
        }
        self.clauses.push(clause);
    }

    /// The number of allocated variables.
    pub fn num_vars(&self) -> usize {
        self.num_vars
    }

    /// The number of clauses.
    pub fn num_clauses(&self) -> usize {
        self.clauses.len()
    }

    /// The clauses added so far.
    pub fn clauses(&self) -> &[Vec<Lit>] {
        &self.clauses
    }

    /// Evaluates the formula under a full assignment (for testing against
    /// brute force).
    ///
    /// # Panics
    ///
    /// Panics if `assignment.len() < num_vars`.
    pub fn eval(&self, assignment: &[bool]) -> bool {
        assert!(assignment.len() >= self.num_vars);
        self.clauses
            .iter()
            .all(|c| c.iter().any(|l| l.eval(assignment[l.var().index()])))
    }

    /// Emits the formula in DIMACS `cnf` format.
    pub fn to_dimacs(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        let _ = writeln!(out, "p cnf {} {}", self.num_vars, self.clauses.len());
        for c in &self.clauses {
            for l in c {
                let v = l.var().index() as i64 + 1;
                let _ = write!(out, "{} ", if l.is_neg() { -v } else { v });
            }
            out.push_str("0\n");
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dedup_and_tautology() {
        let mut cnf = CnfBuilder::new();
        let a = cnf.new_var();
        let b = cnf.new_var();
        cnf.add_clause([Lit::pos(a), Lit::pos(a), Lit::pos(b)]);
        assert_eq!(cnf.clauses()[0].len(), 2);
        cnf.add_clause([Lit::pos(a), Lit::neg(a)]);
        assert_eq!(cnf.num_clauses(), 1, "tautology dropped");
    }

    #[test]
    fn eval_formula() {
        let mut cnf = CnfBuilder::new();
        let a = cnf.new_var();
        let b = cnf.new_var();
        cnf.add_clause([Lit::pos(a), Lit::pos(b)]);
        cnf.add_clause([Lit::neg(a), Lit::pos(b)]);
        assert!(cnf.eval(&[true, true]));
        assert!(cnf.eval(&[false, true]));
        assert!(!cnf.eval(&[true, false]));
        assert!(!cnf.eval(&[false, false]));
    }

    #[test]
    fn dimacs_format() {
        let mut cnf = CnfBuilder::new();
        let a = cnf.new_var();
        let b = cnf.new_var();
        cnf.add_clause([Lit::neg(a), Lit::pos(b)]);
        let text = cnf.to_dimacs();
        assert!(text.starts_with("p cnf 2 1\n"));
        assert!(text.contains("-1 2 0"));
    }

    #[test]
    #[should_panic(expected = "unallocated")]
    fn unallocated_var_panics() {
        let mut cnf = CnfBuilder::new();
        cnf.add_clause([Lit::pos(Var::from_index(3))]);
    }
}
