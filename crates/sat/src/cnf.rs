//! CNF formula construction.

use crate::{Lit, Var};

/// An incrementally built CNF formula.
///
/// Trivially satisfied clauses (containing `l` and `!l`) are dropped and
/// duplicate literals within a clause are merged at insertion, so the
/// [`crate::Solver`] only ever sees clean clauses.
///
/// Clauses are stored in a single flat literal arena indexed by an offset
/// table rather than one heap allocation per clause: large miters build
/// hundreds of thousands of short clauses, and the arena keeps insertion
/// allocation-free in the steady state and the literals cache-contiguous
/// when [`crate::Solver::from_cnf`] walks them.
#[derive(Debug, Clone)]
pub struct CnfBuilder {
    num_vars: usize,
    /// All literals of all clauses, concatenated.
    lits: Vec<Lit>,
    /// Clause `i` spans `lits[offsets[i] as usize..offsets[i + 1] as usize]`.
    /// Always non-empty; the last entry equals `lits.len()`.
    offsets: Vec<u32>,
}

impl Default for CnfBuilder {
    fn default() -> Self {
        CnfBuilder::new()
    }
}

impl CnfBuilder {
    /// Creates an empty formula.
    pub fn new() -> Self {
        CnfBuilder {
            num_vars: 0,
            lits: Vec::new(),
            offsets: vec![0],
        }
    }

    /// Allocates a fresh variable.
    pub fn new_var(&mut self) -> Var {
        let v = Var::from_index(self.num_vars);
        self.num_vars += 1;
        v
    }

    /// Allocates `n` fresh variables.
    pub fn new_vars(&mut self, n: usize) -> Vec<Var> {
        (0..n).map(|_| self.new_var()).collect()
    }

    /// Adds a clause (a disjunction of literals).
    ///
    /// An empty clause makes the formula unsatisfiable. Tautological
    /// clauses are silently dropped; repeated literals are deduplicated.
    ///
    /// # Panics
    ///
    /// Panics if a literal references an unallocated variable, or if the
    /// arena exceeds `u32::MAX` literals.
    pub fn add_clause(&mut self, lits: impl IntoIterator<Item = Lit>) {
        let start = self.lits.len();
        debug_assert_eq!(start as u32, *self.offsets.last().unwrap_or(&0));
        self.lits.extend(lits);
        for l in &self.lits[start..] {
            assert!(
                l.var().index() < self.num_vars,
                "literal {l} references an unallocated variable"
            );
        }
        let tail = &mut self.lits[start..];
        tail.sort_unstable();
        // Tautology: `l` and `!l` are adjacent after sorting by code.
        if tail.windows(2).any(|w| w[0] == !w[1]) {
            self.lits.truncate(start);
            return;
        }
        // Deduplicate the tail only — earlier clauses are final, and a
        // global dedup could merge literals across a clause boundary.
        let mut write = start;
        for read in start..self.lits.len() {
            if write == start || self.lits[write - 1] != self.lits[read] {
                self.lits[write] = self.lits[read];
                write += 1;
            }
        }
        self.lits.truncate(write);
        assert!(
            self.lits.len() <= u32::MAX as usize,
            "clause arena overflow"
        );
        self.offsets.push(self.lits.len() as u32);
    }

    /// The number of allocated variables.
    pub fn num_vars(&self) -> usize {
        self.num_vars
    }

    /// The number of clauses.
    pub fn num_clauses(&self) -> usize {
        self.offsets.len() - 1
    }

    /// The literals of clause `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i >= num_clauses()`.
    pub fn clause(&self, i: usize) -> &[Lit] {
        let start = self.offsets[i] as usize;
        let end = self.offsets[i + 1] as usize;
        &self.lits[start..end]
    }

    /// Iterates over the clauses added so far, each as a literal slice
    /// into the flat arena.
    pub fn clauses(&self) -> impl Iterator<Item = &[Lit]> + '_ {
        self.offsets
            .windows(2)
            .map(|w| &self.lits[w[0] as usize..w[1] as usize])
    }

    /// Evaluates the formula under a full assignment (for testing against
    /// brute force).
    ///
    /// # Panics
    ///
    /// Panics if `assignment.len() < num_vars`.
    pub fn eval(&self, assignment: &[bool]) -> bool {
        assert!(assignment.len() >= self.num_vars);
        self.clauses()
            .all(|c| c.iter().any(|l| l.eval(assignment[l.var().index()])))
    }

    /// Emits the formula in DIMACS `cnf` format.
    pub fn to_dimacs(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        let _ = writeln!(out, "p cnf {} {}", self.num_vars, self.num_clauses());
        for c in self.clauses() {
            for l in c {
                let v = l.var().index() as i64 + 1;
                let _ = write!(out, "{} ", if l.is_neg() { -v } else { v });
            }
            out.push_str("0\n");
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dedup_and_tautology() {
        let mut cnf = CnfBuilder::new();
        let a = cnf.new_var();
        let b = cnf.new_var();
        cnf.add_clause([Lit::pos(a), Lit::pos(a), Lit::pos(b)]);
        assert_eq!(cnf.clause(0).len(), 2);
        cnf.add_clause([Lit::pos(a), Lit::neg(a)]);
        assert_eq!(cnf.num_clauses(), 1, "tautology dropped");
    }

    #[test]
    fn arena_layout_survives_dropped_clauses() {
        // A dropped tautology must not leave stale literals behind: the
        // next accepted clause starts exactly where the last one ended.
        let mut cnf = CnfBuilder::new();
        let a = cnf.new_var();
        let b = cnf.new_var();
        cnf.add_clause([Lit::pos(a)]);
        cnf.add_clause([Lit::pos(b), Lit::neg(b)]); // dropped
        cnf.add_clause([Lit::neg(a), Lit::pos(b)]);
        assert_eq!(cnf.num_clauses(), 2);
        assert_eq!(cnf.clause(0), [Lit::pos(a)]);
        assert_eq!(cnf.clause(1), [Lit::neg(a), Lit::pos(b)]);
        let collected: Vec<&[Lit]> = cnf.clauses().collect();
        assert_eq!(collected.len(), 2);
        assert_eq!(collected[1], cnf.clause(1));
    }

    #[test]
    fn eval_formula() {
        let mut cnf = CnfBuilder::new();
        let a = cnf.new_var();
        let b = cnf.new_var();
        cnf.add_clause([Lit::pos(a), Lit::pos(b)]);
        cnf.add_clause([Lit::neg(a), Lit::pos(b)]);
        assert!(cnf.eval(&[true, true]));
        assert!(cnf.eval(&[false, true]));
        assert!(!cnf.eval(&[true, false]));
        assert!(!cnf.eval(&[false, false]));
    }

    #[test]
    fn dimacs_format() {
        let mut cnf = CnfBuilder::new();
        let a = cnf.new_var();
        let b = cnf.new_var();
        cnf.add_clause([Lit::neg(a), Lit::pos(b)]);
        let text = cnf.to_dimacs();
        assert!(text.starts_with("p cnf 2 1\n"));
        assert!(text.contains("-1 2 0"));
    }

    #[test]
    #[should_panic(expected = "unallocated")]
    fn unallocated_var_panics() {
        let mut cnf = CnfBuilder::new();
        cnf.add_clause([Lit::pos(Var::from_index(3))]);
    }
}
