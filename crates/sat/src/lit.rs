//! Variables and literals.

use std::fmt;

/// A propositional variable, numbered from 0.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Var(pub(crate) u32);

impl Var {
    /// The variable's zero-based index.
    pub fn index(self) -> usize {
        self.0 as usize
    }

    /// Builds a variable from its index.
    pub fn from_index(index: usize) -> Self {
        Var(u32::try_from(index).expect("variable index exceeds u32"))
    }
}

impl fmt::Debug for Var {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "x{}", self.0)
    }
}

impl fmt::Display for Var {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "x{}", self.0)
    }
}

/// A literal: a variable or its negation, packed as `var << 1 | sign`.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Lit(pub(crate) u32);

impl Lit {
    /// The positive literal of `v`.
    pub fn pos(v: Var) -> Self {
        Lit(v.0 << 1)
    }

    /// The negative literal of `v`.
    pub fn neg(v: Var) -> Self {
        Lit(v.0 << 1 | 1)
    }

    /// A literal of `v` with the given polarity (`true` = positive).
    pub fn with_polarity(v: Var, polarity: bool) -> Self {
        if polarity {
            Lit::pos(v)
        } else {
            Lit::neg(v)
        }
    }

    /// The literal's variable.
    pub fn var(self) -> Var {
        Var(self.0 >> 1)
    }

    /// True if the literal is negated.
    pub fn is_neg(self) -> bool {
        self.0 & 1 == 1
    }

    /// The packed code, usable as a dense array index.
    pub fn code(self) -> usize {
        self.0 as usize
    }

    /// True iff the literal is satisfied when its variable has `value`.
    pub fn eval(self, value: bool) -> bool {
        value != self.is_neg()
    }
}

impl std::ops::Not for Lit {
    type Output = Lit;
    fn not(self) -> Lit {
        Lit(self.0 ^ 1)
    }
}

impl fmt::Debug for Lit {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_neg() {
            write!(f, "!x{}", self.0 >> 1)
        } else {
            write!(f, "x{}", self.0 >> 1)
        }
    }
}

impl fmt::Display for Lit {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Debug::fmt(self, f)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn packing() {
        let v = Var::from_index(5);
        let p = Lit::pos(v);
        let n = Lit::neg(v);
        assert_eq!(p.var(), v);
        assert_eq!(n.var(), v);
        assert!(!p.is_neg());
        assert!(n.is_neg());
        assert_eq!(!p, n);
        assert_eq!(!n, p);
        assert_eq!(p.code(), 10);
        assert_eq!(n.code(), 11);
    }

    #[test]
    fn polarity_and_eval() {
        let v = Var::from_index(0);
        assert_eq!(Lit::with_polarity(v, true), Lit::pos(v));
        assert_eq!(Lit::with_polarity(v, false), Lit::neg(v));
        assert!(Lit::pos(v).eval(true));
        assert!(!Lit::pos(v).eval(false));
        assert!(Lit::neg(v).eval(false));
    }

    #[test]
    fn display() {
        let v = Var::from_index(3);
        assert_eq!(format!("{}", Lit::pos(v)), "x3");
        assert_eq!(format!("{}", Lit::neg(v)), "!x3");
        assert_eq!(format!("{v}"), "x3");
    }
}
