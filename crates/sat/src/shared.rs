//! One persistent solver checking many fingerprinted variants of a base
//! circuit, via per-variant activation literals.
//!
//! A campaign verifies dozens of buyer copies against the same base
//! netlist. A cold [`Miter`](crate::Miter) per buyer re-encodes the base
//! circuit (the overwhelming majority of every miter) and re-learns the
//! same clauses N times. The [`SharedMiter`] instead Tseitin-encodes the
//! base **once**, unguarded, and encodes only each variant's *delta* —
//! nets whose drivers differ from the base — under a fresh activation
//! literal `act_i`:
//!
//! * every delta clause and output-difference clause of variant `i` is
//!   extended with `¬act_i`, so it is vacuously satisfied (inactive)
//!   unless `act_i` is assumed;
//! * [`SharedMiter::check`] solves under the single assumption `act_i`:
//!   UNSAT means variant `i` is equivalent to the base, SAT yields a
//!   concrete counterexample from the base input variables;
//! * clauses learnt from the shared base cone while checking one buyer
//!   remain valid for every other buyer — assumptions never taint learnt
//!   clauses — so later checks get faster;
//! * [`SharedMiter::retire`] adds the unit `¬act_i`, permanently
//!   deactivating a checked variant so its delta clauses satisfy trivially.
//!
//! Nets are matched to the base structurally: a variant net is *shared*
//! (reuses the base CNF variable, no new clauses) when it has the same net
//! index, the same driver shape, and all its fanin already resolved to base
//! variables. Fingerprinted copies are clones of the base with a few gates
//! widened, so almost every net is shared and a variant's marginal CNF is
//! a handful of clauses.

use std::time::Instant;

use odcfp_logic::PrimitiveFn;
use odcfp_netlist::{GateId, NetDriver, Netlist};

use crate::equiv::{EquivError, MiterOutcome};
use crate::tseitin::{encode_gate, encode_netlist, ClauseSink};
use crate::{backend_from_cnf, CnfBuilder, Lit, SatBackend, SolveResult, SolverConfig, SolverStats, Var};

/// Handle to a variant registered with [`SharedMiter::add_variant`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct VariantId(usize);

/// One gate input of a selectable variant whose *presence* is governed by
/// a selector group (see [`SharedMiter::add_selectable_variant`]).
///
/// When the group's selector is false the input is replaced by `neutral`
/// — the identity element of the gate's plane (`true` for AND/NAND,
/// `false` for OR/NOR/XOR/XNOR) — so the gate computes exactly what it
/// would compute without the widening.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SelectableInput {
    /// The widened gate in the variant netlist.
    pub gate: GateId,
    /// Input position within that gate (0-based).
    pub position: usize,
    /// Selector group controlling this input.
    pub group: usize,
    /// Value the input takes when the group is unselected.
    pub neutral: bool,
}

/// Handle to a variant registered with
/// [`SharedMiter::add_selectable_variant`]: the ordinary [`VariantId`]
/// plus one selector variable per group.
#[derive(Debug, Clone)]
pub struct SelectableVariant {
    id: VariantId,
    selectors: Vec<Var>,
}

impl SelectableVariant {
    /// The underlying variant handle; [`SharedMiter::check`] on it solves
    /// with **all selectors free** — UNSAT proves every one of the
    /// `2^groups` codes equivalent to the base in a single call.
    pub fn id(&self) -> VariantId {
        self.id
    }

    /// Number of selector groups.
    pub fn num_groups(&self) -> usize {
        self.selectors.len()
    }
}

/// The driver shape of one base net, for structural matching.
#[derive(Debug, Clone, PartialEq, Eq)]
enum NetShape {
    PrimaryInput,
    Const(bool),
    Gate(PrimitiveFn, Vec<u32>),
}

#[derive(Debug)]
struct Variant {
    act: Var,
    /// No output ever differed structurally: equivalent without solving.
    trivial: bool,
    retired: bool,
}

/// A clause sink that guards every emitted clause with `¬act`, making the
/// clauses conditional on the variant's activation literal.
struct GuardedSink<'a> {
    solver: &'a mut dyn SatBackend,
    guard: Lit,
}

impl ClauseSink for GuardedSink<'_> {
    fn fresh_var(&mut self) -> Var {
        self.solver.new_var()
    }
    fn emit(&mut self, lits: &[Lit]) {
        let mut clause: Vec<Lit> = Vec::with_capacity(lits.len() + 1);
        clause.push(self.guard);
        clause.extend_from_slice(lits);
        self.solver.add_clause(&clause);
    }
}

/// An incremental multi-variant equivalence miter over one base netlist.
///
/// # Example
///
/// ```
/// use odcfp_netlist::{CellLibrary, Netlist};
/// use odcfp_sat::{MiterOutcome, SharedMiter};
/// use odcfp_logic::PrimitiveFn;
///
/// let lib = CellLibrary::standard();
/// let build = |f: PrimitiveFn| {
///     let mut n = Netlist::new("m", lib.clone());
///     let a = n.add_primary_input("a");
///     let b = n.add_primary_input("b");
///     let c = n.library().cell_for(f, 2).unwrap();
///     let g = n.add_gate("g", c, &[a, b]);
///     n.set_primary_output(n.gate_output(g));
///     n
/// };
/// let base = build(PrimitiveFn::Nand);
/// let mut shared = SharedMiter::build(&base);
/// let same = shared.add_variant(&build(PrimitiveFn::Nand))?;
/// let diff = shared.add_variant(&build(PrimitiveFn::Nor))?;
/// assert_eq!(shared.check(same, None, None), MiterOutcome::Equivalent);
/// assert!(matches!(
///     shared.check(diff, None, None),
///     MiterOutcome::Counterexample(_)
/// ));
/// # Ok::<(), odcfp_sat::EquivError>(())
/// ```
#[derive(Debug)]
pub struct SharedMiter {
    solver: Box<dyn SatBackend>,
    /// CNF variable of each base net, by net index.
    base_vars: Vec<Var>,
    /// Driver shape of each base net, for structural delta detection.
    base_shapes: Vec<NetShape>,
    /// Base primary-input variables, by position (counterexample order).
    input_vars: Vec<Var>,
    /// Base primary-output variables, by position.
    output_vars: Vec<Var>,
    num_pis: usize,
    num_pos: usize,
    variants: Vec<Variant>,
}

impl SharedMiter {
    /// Tseitin-encodes `base` once into a fresh persistent backend running
    /// the default [`SolverConfig`].
    ///
    /// # Panics
    ///
    /// Panics if `base` has undriven nets or a combinational cycle
    /// (validate first).
    pub fn build(base: &Netlist) -> SharedMiter {
        SharedMiter::build_with(base, SolverConfig::default())
    }

    /// Tseitin-encodes `base` once into a fresh persistent backend running
    /// `config`.
    ///
    /// # Panics
    ///
    /// Panics if `base` has undriven nets or a combinational cycle
    /// (validate first).
    pub fn build_with(base: &Netlist, config: SolverConfig) -> SharedMiter {
        let mut cnf = CnfBuilder::new();
        let enc = encode_netlist(&mut cnf, base);
        let base_vars: Vec<Var> = (0..base.num_nets())
            .map(|i| enc.var(odcfp_netlist::NetId::from_index(i)))
            .collect();
        let base_shapes = base
            .nets()
            .map(|(_, net)| match net.driver() {
                NetDriver::PrimaryInput => NetShape::PrimaryInput,
                NetDriver::Const(v) => NetShape::Const(v),
                NetDriver::Gate(g) => {
                    let gate = base.gate(g);
                    NetShape::Gate(
                        base.library().cell(gate.cell()).function(),
                        gate.inputs().iter().map(|n| n.index() as u32).collect(),
                    )
                }
                NetDriver::None => panic!("undriven net cannot be encoded"),
            })
            .collect();
        SharedMiter {
            solver: backend_from_cnf(&cnf, config),
            base_vars,
            base_shapes,
            input_vars: base.primary_inputs().iter().map(|&p| enc.var(p)).collect(),
            output_vars: base.primary_outputs().iter().map(|&p| enc.var(p)).collect(),
            num_pis: base.primary_inputs().len(),
            num_pos: base.primary_outputs().len(),
            variants: Vec::new(),
        }
    }

    /// Encodes `variant`'s delta against the base under a fresh activation
    /// literal and returns its handle.
    ///
    /// # Errors
    ///
    /// Returns an error if the variant's interface doesn't match the base.
    ///
    /// # Panics
    ///
    /// Panics if `variant` has undriven nets or a combinational cycle
    /// (validate first).
    pub fn add_variant(&mut self, variant: &Netlist) -> Result<VariantId, EquivError> {
        self.add_variant_inner(variant, &[], 0).map(|sv| sv.id)
    }

    /// Encodes a *superposed* variant — the base with every fingerprint
    /// modification applied at once — where each widened input is guarded
    /// by a per-group selector variable that defaults the input to its
    /// plane-neutral value when unselected.
    ///
    /// The encoding is exact for the whole code space: assigning the
    /// selectors to a code `c` makes the variant cone compute precisely
    /// the netlist that applies exactly the modifications in `c` (a
    /// neutral literal is the identity of its plane), so
    ///
    /// * [`SharedMiter::check`] on [`SelectableVariant::id`] solves with
    ///   all selectors **free**: UNSAT proves all `2^groups` codes
    ///   equivalent to the base at once;
    /// * [`SharedMiter::check_code`] pins the selectors to one code and
    ///   decides that single buyer.
    ///
    /// # Errors
    ///
    /// Returns an error if the variant's interface doesn't match the base.
    ///
    /// # Panics
    ///
    /// Panics if `variant` has undriven nets or a combinational cycle, or
    /// if `selectable` names an out-of-range gate/position/group or lists
    /// the same input twice — the caller builds the list programmatically
    /// from the modifications it just applied, so these are logic errors.
    pub fn add_selectable_variant(
        &mut self,
        variant: &Netlist,
        selectable: &[SelectableInput],
        groups: usize,
    ) -> Result<SelectableVariant, EquivError> {
        self.add_variant_inner(variant, selectable, groups)
    }

    fn add_variant_inner(
        &mut self,
        variant: &Netlist,
        selectable: &[SelectableInput],
        groups: usize,
    ) -> Result<SelectableVariant, EquivError> {
        if variant.primary_inputs().len() != self.num_pis {
            return Err(EquivError::InputCountMismatch {
                left: self.num_pis,
                right: variant.primary_inputs().len(),
            });
        }
        if variant.primary_outputs().len() != self.num_pos {
            return Err(EquivError::OutputCountMismatch {
                left: self.num_pos,
                right: variant.primary_outputs().len(),
            });
        }
        let act = self.solver.new_var();
        let guard = Lit::neg(act);
        let selectors: Vec<Var> = (0..groups).map(|_| self.solver.new_var()).collect();
        // (gate index, position) -> (selector, neutral), validated.
        let mut gated: std::collections::HashMap<(usize, usize), (Var, bool)> =
            std::collections::HashMap::with_capacity(selectable.len());
        for s in selectable {
            assert!(s.group < groups, "selector group {} out of range", s.group);
            assert!(
                s.position < variant.gate(s.gate).inputs().len(),
                "selectable position {} out of range for gate {:?}",
                s.position,
                s.gate
            );
            let prev = gated.insert((s.gate.index(), s.position), (selectors[s.group], s.neutral));
            assert!(
                prev.is_none(),
                "selectable input listed twice: gate {:?} position {}",
                s.gate,
                s.position
            );
        }

        // Resolve each variant net to a CNF variable: shared nets reuse the
        // base variable, delta nets get fresh guarded clauses.
        let mut var_of = vec![None::<Var>; variant.num_nets()];
        for (k, &pi) in variant.primary_inputs().iter().enumerate() {
            var_of[pi.index()] = Some(self.input_vars[k]);
        }
        for (id, net) in variant.nets() {
            if let NetDriver::Const(v) = net.driver() {
                let i = id.index();
                if i < self.base_shapes.len() && self.base_shapes[i] == NetShape::Const(v) {
                    var_of[i] = Some(self.base_vars[i]);
                } else {
                    let fresh = self.solver.new_var();
                    var_of[i] = Some(fresh);
                    self.solver
                        .add_clause(&[guard, Lit::with_polarity(fresh, v)]);
                }
            }
        }
        let order = variant
            .cached_topo()
            .expect("cyclic netlist cannot be added (validate first)");
        let mut ins: Vec<Var> = Vec::new();
        for &g in order {
            let gate = variant.gate(g);
            let f = variant.library().cell(gate.cell()).function();
            ins.clear();
            for &n in gate.inputs() {
                ins.push(var_of[n.index()].expect("topological order resolves fanin first"));
            }
            if !gated.is_empty() {
                for (pos, v) in ins.iter_mut().enumerate() {
                    let Some(&(sel, neutral)) = gated.get(&(g.index(), pos)) else {
                        continue;
                    };
                    // e <-> if sel then x else neutral, guarded like every
                    // other delta clause. With neutral = true that is
                    // e <-> (x | !sel); with neutral = false, e <-> (x & sel).
                    let x = *v;
                    let e = self.solver.new_var();
                    if neutral {
                        self.solver.add_clause(&[guard, Lit::neg(x), Lit::pos(e)]);
                        self.solver.add_clause(&[guard, Lit::pos(sel), Lit::pos(e)]);
                        self.solver.add_clause(&[
                            guard,
                            Lit::neg(e),
                            Lit::pos(x),
                            Lit::neg(sel),
                        ]);
                    } else {
                        self.solver.add_clause(&[guard, Lit::neg(e), Lit::pos(x)]);
                        self.solver.add_clause(&[guard, Lit::neg(e), Lit::pos(sel)]);
                        self.solver.add_clause(&[
                            guard,
                            Lit::pos(e),
                            Lit::neg(x),
                            Lit::neg(sel),
                        ]);
                    }
                    *v = e;
                }
            }
            let out = gate.output().index();
            let shared = out < self.base_shapes.len()
                && match &self.base_shapes[out] {
                    NetShape::Gate(bf, b_ins) => {
                        *bf == f
                            && b_ins.len() == ins.len()
                            && b_ins
                                .iter()
                                .zip(&ins)
                                .all(|(&bn, &v)| self.base_vars[bn as usize] == v)
                    }
                    _ => false,
                };
            if shared {
                var_of[out] = Some(self.base_vars[out]);
            } else {
                let fresh = self.solver.new_var();
                var_of[out] = Some(fresh);
                let mut sink = GuardedSink {
                    solver: &mut *self.solver,
                    guard,
                };
                encode_gate(&mut sink, f, fresh, &ins);
            }
        }

        // diff_j <-> (base_out_j XOR variant_out_j), guarded; assert that
        // some output differs — all under act.
        let mut diffs: Vec<Lit> = vec![guard];
        for (k, &po) in variant.primary_outputs().iter().enumerate() {
            let a = self.output_vars[k];
            let b = var_of[po.index()].expect("outputs are driven");
            if a == b {
                continue; // structurally identical output: can never differ
            }
            let d = self.solver.new_var();
            self.solver.add_clause(&[guard, Lit::neg(d), Lit::pos(a), Lit::pos(b)]);
            self.solver.add_clause(&[guard, Lit::neg(d), Lit::neg(a), Lit::neg(b)]);
            self.solver.add_clause(&[guard, Lit::pos(d), Lit::pos(a), Lit::neg(b)]);
            self.solver.add_clause(&[guard, Lit::pos(d), Lit::neg(a), Lit::pos(b)]);
            diffs.push(Lit::pos(d));
        }
        let trivial = diffs.len() == 1;
        if !trivial {
            self.solver.add_clause(&diffs);
        }
        // New variant clauses are problem clauses, not learnt ones.
        self.solver.rebase_problem_clauses();
        let id = VariantId(self.variants.len());
        self.variants.push(Variant {
            act,
            trivial,
            retired: false,
        });
        Ok(SelectableVariant { id, selectors })
    }

    /// Decides one code of a selectable variant: solves under the
    /// activation literal plus the selectors pinned to `code`.
    ///
    /// UNSAT means the netlist carrying exactly the modifications in
    /// `code` is equivalent to the base; SAT yields a counterexample over
    /// the base inputs, exactly as [`SharedMiter::check`].
    ///
    /// # Panics
    ///
    /// Panics if `code` length differs from the variant's group count or
    /// the variant was retired.
    pub fn check_code(
        &mut self,
        sv: &SelectableVariant,
        code: &[bool],
        conflict_budget: Option<u64>,
        deadline: Option<Instant>,
    ) -> MiterOutcome {
        assert_eq!(
            code.len(),
            sv.selectors.len(),
            "code length must match selector groups"
        );
        let v = &self.variants[sv.id.0];
        assert!(!v.retired, "variant {} was retired", sv.id.0);
        if v.trivial {
            return MiterOutcome::Equivalent;
        }
        let mut assumptions: Vec<Lit> = Vec::with_capacity(code.len() + 1);
        assumptions.push(Lit::pos(v.act));
        for (k, &bit) in code.iter().enumerate() {
            assumptions.push(Lit::with_polarity(sv.selectors[k], bit));
        }
        self.solver.clear_limits();
        if let Some(b) = conflict_budget {
            self.solver.set_conflict_budget(b);
        }
        if let Some(d) = deadline {
            self.solver.set_deadline(d);
        }
        match self.solver.solve_under(&assumptions) {
            SolveResult::Unsat => MiterOutcome::Equivalent,
            SolveResult::Sat(model) => MiterOutcome::Counterexample(
                self.input_vars.iter().map(|&v| model.value(v)).collect(),
            ),
            SolveResult::Unknown => MiterOutcome::Undecided,
        }
    }

    /// Checks one variant against the base, under an optional conflict
    /// budget and wall-clock deadline.
    ///
    /// On [`MiterOutcome::Undecided`] the solver state (learnt clauses
    /// included) is preserved; calling `check` again continues the search.
    ///
    /// # Panics
    ///
    /// Panics if the variant was [retired](SharedMiter::retire).
    pub fn check(
        &mut self,
        id: VariantId,
        conflict_budget: Option<u64>,
        deadline: Option<Instant>,
    ) -> MiterOutcome {
        if !odcfp_obs::enabled() {
            return self.check_inner(id, conflict_budget, deadline);
        }
        let mut span = odcfp_obs::span("shared.check");
        let before = self.solver.stats().conflicts;
        let outcome = self.check_inner(id, conflict_budget, deadline);
        span.field("variant", id.0);
        span.field(
            "outcome",
            match outcome {
                MiterOutcome::Equivalent => "equivalent",
                MiterOutcome::Counterexample(_) => "counterexample",
                MiterOutcome::Undecided => "undecided",
            },
        );
        span.field("conflicts", self.solver.stats().conflicts - before);
        outcome
    }

    fn check_inner(
        &mut self,
        id: VariantId,
        conflict_budget: Option<u64>,
        deadline: Option<Instant>,
    ) -> MiterOutcome {
        let v = &self.variants[id.0];
        assert!(!v.retired, "variant {} was retired", id.0);
        if v.trivial {
            return MiterOutcome::Equivalent;
        }
        let act = v.act;
        self.solver.clear_limits();
        if let Some(b) = conflict_budget {
            self.solver.set_conflict_budget(b);
        }
        if let Some(d) = deadline {
            self.solver.set_deadline(d);
        }
        match self.solver.solve_under(&[Lit::pos(act)]) {
            SolveResult::Unsat => MiterOutcome::Equivalent,
            SolveResult::Sat(model) => MiterOutcome::Counterexample(
                self.input_vars.iter().map(|&v| model.value(v)).collect(),
            ),
            SolveResult::Unknown => MiterOutcome::Undecided,
        }
    }

    /// Permanently deactivates a checked variant: the unit clause `¬act`
    /// lets the solver satisfy all its delta clauses by propagation.
    /// Checking a retired variant panics.
    pub fn retire(&mut self, id: VariantId) {
        let v = &mut self.variants[id.0];
        if !v.retired {
            v.retired = true;
            let act = v.act;
            self.solver.add_clause(&[Lit::neg(act)]);
        }
    }

    /// Number of variants registered so far.
    pub fn num_variants(&self) -> usize {
        self.variants.len()
    }

    /// Search statistics of the shared solver, accumulated over all checks.
    pub fn stats(&self) -> SolverStats {
        self.solver.stats()
    }

    /// The number of variables in the shared solver (base + all deltas).
    pub fn num_vars(&self) -> usize {
        self.solver.num_vars()
    }

    /// Arms a cooperative interrupt on the shared solver: when `flag`
    /// reads `true` at a conflict point, the running check aborts with
    /// [`MiterOutcome::Undecided`]. Stays armed until
    /// [`SharedMiter::clear_interrupt`].
    pub fn set_interrupt(&mut self, flag: std::sync::Arc<std::sync::atomic::AtomicBool>) {
        self.solver.set_interrupt(flag);
    }

    /// Disarms the cooperative interrupt.
    pub fn clear_interrupt(&mut self) {
        self.solver.clear_interrupt();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use odcfp_netlist::CellLibrary;

    fn fig1(redundant: bool) -> Netlist {
        let lib = CellLibrary::standard();
        let mut n = Netlist::new("fig1", lib);
        let a = n.add_primary_input("A");
        let b = n.add_primary_input("B");
        let c = n.add_primary_input("C");
        let d = n.add_primary_input("D");
        let and2 = n.library().cell_for(PrimitiveFn::And, 2).unwrap();
        let and3 = n.library().cell_for(PrimitiveFn::And, 3).unwrap();
        let or2 = n.library().cell_for(PrimitiveFn::Or, 2).unwrap();
        let y = n.add_gate("gy", or2, &[c, d]);
        let x = if redundant {
            n.add_gate("gx", and3, &[a, b, n.gate_output(y)])
        } else {
            n.add_gate("gx", and2, &[a, b])
        };
        let f = n.add_gate("gf", and2, &[n.gate_output(x), n.gate_output(y)]);
        n.set_primary_output(n.gate_output(f));
        n
    }

    #[test]
    fn identical_variant_is_trivially_equivalent() {
        let base = fig1(false);
        let clone = fig1(false);
        let mut sm = SharedMiter::build(&base);
        let vars_before = sm.num_vars();
        let id = sm.add_variant(&clone).unwrap();
        assert_eq!(sm.check(id, None, None), MiterOutcome::Equivalent);
        // Every net shared: only the activation literal was allocated.
        assert_eq!(sm.num_vars(), vars_before + 1);
        assert_eq!(sm.stats().conflicts, 0);
    }

    #[test]
    fn odc_variant_delta_is_small_and_equivalent() {
        let base = fig1(false);
        let marked = fig1(true);
        let mut sm = SharedMiter::build(&base);
        let vars_before = sm.num_vars();
        let id = sm.add_variant(&marked).unwrap();
        assert_eq!(sm.check(id, None, None), MiterOutcome::Equivalent);
        // Only gx's cone changed: act + new gx var + new gf var + diff var.
        let delta_vars = sm.num_vars() - vars_before;
        assert!(delta_vars <= 5, "delta too large: {delta_vars} fresh vars");
    }

    #[test]
    fn many_variants_one_solver_with_counterexamples() {
        let base = fig1(false);
        let mut sm = SharedMiter::build(&base);
        let good = sm.add_variant(&fig1(true)).unwrap();

        let lib = base.library().clone();
        let mut wrong = Netlist::new("wrong", lib);
        let a = wrong.add_primary_input("A");
        let b = wrong.add_primary_input("B");
        let _c = wrong.add_primary_input("C");
        let d = wrong.add_primary_input("D");
        let and2 = wrong.library().cell_for(PrimitiveFn::And, 2).unwrap();
        let or2 = wrong.library().cell_for(PrimitiveFn::Or, 2).unwrap();
        let x = wrong.add_gate("gx", and2, &[a, b]);
        let f = wrong.add_gate("gf", or2, &[wrong.gate_output(x), d]);
        wrong.set_primary_output(wrong.gate_output(f));
        let bad = sm.add_variant(&wrong).unwrap();

        assert_eq!(sm.check(good, None, None), MiterOutcome::Equivalent);
        match sm.check(bad, None, None) {
            MiterOutcome::Counterexample(inputs) => {
                assert_eq!(inputs.len(), 4);
                assert_ne!(base.eval(&inputs), wrong.eval(&inputs));
            }
            other => panic!("expected counterexample, got {other:?}"),
        }
        // A bad variant must not poison its siblings.
        assert_eq!(sm.check(good, None, None), MiterOutcome::Equivalent);
        sm.retire(bad);
        assert_eq!(sm.check(good, None, None), MiterOutcome::Equivalent);
    }

    #[test]
    fn starved_check_resumes() {
        // Structurally disjoint XOR associations force real search.
        let build = |reversed: bool| {
            let lib = CellLibrary::standard();
            let mut n = Netlist::new("xors", lib);
            let mut pis: Vec<_> = (0..10)
                .map(|i| n.add_primary_input(format!("i{i}")))
                .collect();
            if reversed {
                pis.reverse();
            }
            let xor2 = n.library().cell_for(PrimitiveFn::Xor, 2).unwrap();
            let mut acc = pis[0];
            for (k, &pi) in pis.iter().enumerate().skip(1) {
                let g = n.add_gate(format!("x{k}"), xor2, &[acc, pi]);
                acc = n.gate_output(g);
            }
            n.set_primary_output(acc);
            n
        };
        let base = build(false);
        let mut sm = SharedMiter::build(&base);
        let id = sm.add_variant(&build(true)).unwrap();
        assert_eq!(sm.check(id, Some(0), None), MiterOutcome::Undecided);
        assert_eq!(sm.check(id, None, None), MiterOutcome::Equivalent);
    }

    /// fig1 with gx widened to AND4(A, B, Y, D): input 2 (Y) is the ODC
    /// modification — redundant for every code — while input 3 (D) is a
    /// genuine functional change when selected.
    fn superposed() -> (Netlist, GateId) {
        let lib = CellLibrary::standard();
        let mut n = Netlist::new("fig1", lib);
        let a = n.add_primary_input("A");
        let b = n.add_primary_input("B");
        let c = n.add_primary_input("C");
        let d = n.add_primary_input("D");
        let and2 = n.library().cell_for(PrimitiveFn::And, 2).unwrap();
        let and4 = n.library().cell_for(PrimitiveFn::And, 4).unwrap();
        let or2 = n.library().cell_for(PrimitiveFn::Or, 2).unwrap();
        let y = n.add_gate("gy", or2, &[c, d]);
        let x = n.add_gate("gx", and4, &[a, b, n.gate_output(y), d]);
        let f = n.add_gate("gf", and2, &[n.gate_output(x), n.gate_output(y)]);
        n.set_primary_output(n.gate_output(f));
        (n, x)
    }

    #[test]
    fn selectable_all_codes_proven_when_every_literal_is_redundant() {
        let base = fig1(false);
        // The ODC widening alone: AND3(A, B, Y).
        let lib = base.library().clone();
        let mut n = Netlist::new("fig1", lib);
        let a = n.add_primary_input("A");
        let b = n.add_primary_input("B");
        let c = n.add_primary_input("C");
        let d = n.add_primary_input("D");
        let and2 = n.library().cell_for(PrimitiveFn::And, 2).unwrap();
        let and3 = n.library().cell_for(PrimitiveFn::And, 3).unwrap();
        let or2 = n.library().cell_for(PrimitiveFn::Or, 2).unwrap();
        let y = n.add_gate("gy", or2, &[c, d]);
        let x = n.add_gate("gx", and3, &[a, b, n.gate_output(y)]);
        let f = n.add_gate("gf", and2, &[n.gate_output(x), n.gate_output(y)]);
        n.set_primary_output(n.gate_output(f));

        let mut sm = SharedMiter::build(&base);
        let sv = sm
            .add_selectable_variant(
                &n,
                &[SelectableInput {
                    gate: x,
                    position: 2,
                    group: 0,
                    neutral: true,
                }],
                1,
            )
            .unwrap();
        // One solve covers both codes.
        assert_eq!(sm.check(sv.id(), None, None), MiterOutcome::Equivalent);
        assert_eq!(sm.check_code(&sv, &[false], None, None), MiterOutcome::Equivalent);
        assert_eq!(sm.check_code(&sv, &[true], None, None), MiterOutcome::Equivalent);
    }

    #[test]
    fn selectable_code_check_isolates_the_bad_bit() {
        let base = fig1(false);
        let (sup, gx) = superposed();
        let mut sm = SharedMiter::build(&base);
        let sel = [
            SelectableInput {
                gate: gx,
                position: 2,
                group: 0,
                neutral: true,
            },
            SelectableInput {
                gate: gx,
                position: 3,
                group: 1,
                neutral: true,
            },
        ];
        let sv = sm.add_selectable_variant(&sup, &sel, 2).unwrap();
        // Some code differs (any with bit 1 set), so the free solve is SAT.
        assert!(matches!(
            sm.check(sv.id(), None, None),
            MiterOutcome::Counterexample(_)
        ));
        // Codes without the bad bit are equivalent; codes with it are not.
        for (code, equivalent) in [
            (&[false, false][..], true),
            (&[true, false][..], true),
            (&[false, true][..], false),
            (&[true, true][..], false),
        ] {
            let outcome = sm.check_code(&sv, code, None, None);
            if equivalent {
                assert_eq!(outcome, MiterOutcome::Equivalent, "{code:?}");
            } else {
                match outcome {
                    MiterOutcome::Counterexample(inputs) => {
                        // The witness must separate base from the netlist
                        // carrying exactly this code: AND(A,B[,Y][,D]).
                        let sim = |with_d: bool| {
                            let a = inputs[0] && inputs[1];
                            let y = inputs[2] || inputs[3];
                            let x = if with_d { a && y && inputs[3] } else { a && y };
                            x && y
                        };
                        assert_ne!(sim(false), sim(true), "{code:?}: {inputs:?}");
                    }
                    other => panic!("expected counterexample for {code:?}, got {other:?}"),
                }
            }
        }
    }

    #[test]
    fn selectable_or_plane_neutral_is_false() {
        // gy widened to OR3(C, D, A): selecting A changes the function,
        // deselecting must restore OR2(C, D) via the neutral 0.
        let base = fig1(false);
        let lib = base.library().clone();
        let mut n = Netlist::new("fig1", lib);
        let a = n.add_primary_input("A");
        let b = n.add_primary_input("B");
        let c = n.add_primary_input("C");
        let d = n.add_primary_input("D");
        let and2 = n.library().cell_for(PrimitiveFn::And, 2).unwrap();
        let or3 = n.library().cell_for(PrimitiveFn::Or, 3).unwrap();
        let y = n.add_gate("gy", or3, &[c, d, a]);
        let x = n.add_gate("gx", and2, &[a, b]);
        let f = n.add_gate("gf", and2, &[n.gate_output(x), n.gate_output(y)]);
        n.set_primary_output(n.gate_output(f));

        let mut sm = SharedMiter::build(&base);
        let sv = sm
            .add_selectable_variant(
                &n,
                &[SelectableInput {
                    gate: y,
                    position: 2,
                    group: 0,
                    neutral: false,
                }],
                1,
            )
            .unwrap();
        assert_eq!(sm.check_code(&sv, &[false], None, None), MiterOutcome::Equivalent);
        assert!(matches!(
            sm.check_code(&sv, &[true], None, None),
            MiterOutcome::Counterexample(_)
        ));
    }

    #[test]
    fn interface_mismatch_is_an_error() {
        let base = fig1(false);
        let lib = base.library().clone();
        let mut tiny = Netlist::new("tiny", lib);
        let a = tiny.add_primary_input("a");
        tiny.set_primary_output(a);
        let mut sm = SharedMiter::build(&base);
        assert!(matches!(
            sm.add_variant(&tiny),
            Err(EquivError::InputCountMismatch { .. })
        ));
    }
}
