//! Deterministic portfolio racing for hard obligations.
//!
//! When a single backend exhausts its conflict budget on a hard miter,
//! [`race`] loads the same CNF into N differently-configured backends
//! (see [`SolverConfig::portfolio_member`]) and runs them in parallel.
//! The first definitive verdict wins and the remaining racers are
//! cancelled.
//!
//! # Determinism contract
//!
//! The verdict — and the winning racer, its witness model, and the
//! number of rounds — depend only on the formula, the assumptions and
//! the [`RaceOptions`], never on thread scheduling or machine speed.
//! This holds because the race is run in *synchronized conflict-chunk
//! rounds*:
//!
//! 1. every live racer searches for at most `chunk_conflicts` conflicts,
//! 2. all racers join at a barrier,
//! 3. the winner is the **lowest-index** racer holding a definitive
//!    result.
//!
//! A racer that finds a verdict mid-round only interrupts *higher*-index
//! racers, so every racer at an index ≤ the eventual winner always runs
//! its full deterministic chunk. What *is* timing-dependent: the
//! conflict counts of interrupted losers, and everything after an
//! external cancellation or deadline expiry (the same escape hatches a
//! single solver has). Those per-racer numbers are emitted as
//! `nondet` obs events so replay-stable payloads stay byte-identical.
//!
//! The external cancel flag (typically `CancelToken::flag()` from
//! `odcfp-analysis`) is **read-only** here: the race forwards it into
//! its racers' private interrupt flags but never stores to it, so a
//! losing racer's cancellation cannot poison the caller's token for
//! subsequent obligations.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread;
use std::time::{Duration, Instant};

use crate::{CnfBuilder, Lit, SolveResult, Solver, SolverConfig, SolverStats};

/// How often the watcher thread polls the external cancel flag while a
/// round is in flight.
const EXTERNAL_POLL: Duration = Duration::from_micros(200);

/// Shape of a portfolio race.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RaceOptions {
    /// Number of racers. Clamped to at least 1.
    pub width: usize,
    /// Configuration raced at position 0; later positions are derived
    /// via [`SolverConfig::portfolio_member`].
    pub base: SolverConfig,
    /// Conflicts each racer may spend per synchronized round. Clamped to
    /// at least 1. Larger chunks reduce barrier overhead; smaller chunks
    /// cancel losers sooner.
    pub chunk_conflicts: u64,
}

impl RaceOptions {
    /// A race of `width` members of the default portfolio.
    pub fn new(width: usize) -> RaceOptions {
        RaceOptions {
            width,
            base: SolverConfig::default(),
            chunk_conflicts: 4096,
        }
    }

    /// Replaces the position-0 configuration.
    pub fn with_base(mut self, base: SolverConfig) -> RaceOptions {
        self.base = base;
        self
    }

    /// Replaces the per-round conflict chunk.
    pub fn with_chunk(mut self, chunk_conflicts: u64) -> RaceOptions {
        self.chunk_conflicts = chunk_conflicts;
        self
    }
}

/// What one racer did during a race.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RacerReport {
    /// Backend name (e.g. `"cdcl-glucose"`).
    pub backend: &'static str,
    /// Phase seed the racer ran with.
    pub seed: u64,
    /// How the racer ended: `"sat"`, `"unsat"`, `"exhausted"` (budget
    /// drained), `"cancelled"` (interrupted) or `"unknown"`.
    pub outcome: &'static str,
    /// The racer's solver statistics. Deterministic for the winner and
    /// for budget-exhausted racers; timing-dependent for interrupted
    /// losers.
    pub stats: SolverStats,
}

/// The outcome of a [`race`], alongside the [`SolveResult`] itself.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RaceReport {
    /// Index of the winning racer, if any produced a definitive verdict.
    pub winner: Option<usize>,
    /// Backend name of the winning racer.
    pub winner_backend: Option<&'static str>,
    /// Synchronized rounds executed.
    pub rounds: u64,
    /// Total conflicts across all racers (timing-dependent when losers
    /// were interrupted mid-chunk).
    pub conflicts: u64,
    /// Whether the race stopped because the external flag fired or the
    /// deadline passed.
    pub cancelled: bool,
    /// Per-racer breakdown, in racer order.
    pub racers: Vec<RacerReport>,
}

struct Racer {
    solver: Solver,
    flag: Arc<AtomicBool>,
    budget_left: Option<u64>,
    result: Option<SolveResult>,
    interrupted: bool,
}

/// Races `opts.width` backends on `cnf` under `assumptions`; the first
/// definitive verdict wins (ties broken by lowest racer index, which
/// makes the outcome deterministic — see the module docs).
///
/// `per_racer_budget` bounds the total conflicts *each* racer may spend
/// across all rounds; when every racer has drained its budget without a
/// verdict the race returns [`SolveResult::Unknown`]. `deadline` and
/// `external` are cooperative escape hatches: `external` is only ever
/// read, never written.
pub fn race(
    cnf: &CnfBuilder,
    assumptions: &[Lit],
    opts: &RaceOptions,
    per_racer_budget: Option<u64>,
    deadline: Option<Instant>,
    external: Option<Arc<AtomicBool>>,
) -> (SolveResult, RaceReport) {
    let width = opts.width.max(1);
    let chunk = opts.chunk_conflicts.max(1);

    let mut racers: Vec<Racer> = (0..width)
        .map(|i| {
            let config = SolverConfig::portfolio_member(opts.base, i);
            let mut solver = Solver::from_cnf_with(cnf, config);
            let flag = Arc::new(AtomicBool::new(false));
            solver.set_interrupt(Arc::clone(&flag));
            if let Some(d) = deadline {
                solver.set_deadline(d);
            }
            Racer {
                solver,
                flag,
                budget_left: per_racer_budget,
                result: None,
                interrupted: false,
            }
        })
        .collect();

    odcfp_obs::point("sat.race.start")
        .field("width", width)
        .field("chunk", chunk)
        .field("budget", per_racer_budget.unwrap_or(0))
        .emit();

    let mut rounds = 0u64;
    let mut cancelled = false;
    loop {
        if external
            .as_ref()
            .is_some_and(|f| f.load(Ordering::Acquire))
            || deadline.is_some_and(|d| Instant::now() >= d)
        {
            cancelled = true;
            break;
        }
        let live: Vec<bool> = racers
            .iter()
            .map(|r| r.result.is_none() && r.budget_left != Some(0))
            .collect();
        if !live.iter().any(|&l| l) {
            break;
        }
        rounds += 1;
        for racer in &mut racers {
            racer.flag.store(false, Ordering::Release);
        }
        let flags: Vec<Arc<AtomicBool>> = racers.iter().map(|r| Arc::clone(&r.flag)).collect();
        let round_done = AtomicBool::new(false);
        thread::scope(|s| {
            if let Some(ext) = external.as_ref() {
                let ext = Arc::clone(ext);
                let watcher_flags = flags.clone();
                let round_done = &round_done;
                s.spawn(move || {
                    while !round_done.load(Ordering::Acquire) {
                        if ext.load(Ordering::Acquire) {
                            for f in &watcher_flags {
                                f.store(true, Ordering::Release);
                            }
                            return;
                        }
                        thread::sleep(EXTERNAL_POLL);
                    }
                });
            }
            let handles: Vec<_> = racers
                .iter_mut()
                .enumerate()
                .filter(|(i, _)| live[*i])
                .map(|(i, racer)| {
                    let flags = &flags;
                    s.spawn(move || {
                        let spend = match racer.budget_left {
                            Some(left) => chunk.min(left),
                            None => chunk,
                        };
                        racer.solver.set_conflict_budget(spend);
                        let res = racer.solver.solve_under(assumptions);
                        if let Some(left) = &mut racer.budget_left {
                            *left = left.saturating_sub(spend);
                        }
                        match res {
                            SolveResult::Sat(_) | SolveResult::Unsat => {
                                racer.result = Some(res);
                                for f in flags.iter().skip(i + 1) {
                                    f.store(true, Ordering::Release);
                                }
                            }
                            SolveResult::Unknown => {
                                if racer.flag.load(Ordering::Acquire) {
                                    racer.interrupted = true;
                                }
                            }
                        }
                    })
                })
                .collect();
            for handle in handles {
                handle.join().expect("portfolio racer thread panicked");
            }
            round_done.store(true, Ordering::Release);
        });
        if racers.iter().any(|r| r.result.is_some()) {
            break;
        }
    }

    let winner = racers.iter().position(|r| r.result.is_some());
    let verdict = match winner {
        Some(i) => racers[i]
            .result
            .take()
            .expect("winner index points at a definitive result"),
        None => SolveResult::Unknown,
    };

    let reports: Vec<RacerReport> = racers
        .iter()
        .enumerate()
        .map(|(i, r)| RacerReport {
            backend: r.solver.config().backend_name(),
            seed: r.solver.config().seed,
            outcome: if winner == Some(i) {
                match verdict {
                    SolveResult::Sat(_) => "sat",
                    SolveResult::Unsat => "unsat",
                    SolveResult::Unknown => "unknown",
                }
            } else if r.interrupted {
                "cancelled"
            } else if r.budget_left == Some(0) {
                "exhausted"
            } else {
                "unknown"
            },
            stats: r.solver.stats(),
        })
        .collect();
    let report = RaceReport {
        winner,
        winner_backend: winner.map(|i| reports[i].backend),
        rounds,
        conflicts: reports.iter().map(|r| r.stats.conflicts).sum(),
        cancelled,
        racers: reports,
    };

    if odcfp_obs::enabled() {
        match report.winner {
            Some(i) => odcfp_obs::point("sat.race.win")
                .field("racer", i)
                .field(
                    "backend",
                    report.winner_backend.unwrap_or("cdcl-custom"),
                )
                .field("rounds", report.rounds)
                .emit(),
            None => odcfp_obs::point("sat.race.exhausted")
                .field("rounds", report.rounds)
                .field("cancelled", report.cancelled)
                .emit(),
        }
        for (i, r) in report.racers.iter().enumerate() {
            odcfp_obs::point("sat.race.racer")
                .nondet()
                .field("racer", i)
                .field("backend", r.backend)
                .field("outcome", r.outcome)
                .field("conflicts", r.stats.conflicts)
                .emit();
        }
    }

    (verdict, report)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Var;

    /// Two reversed xor chains over the same inputs, constrained to
    /// differ: UNSAT, and hard enough to need real search at width `n`.
    fn xor_miter(width: usize) -> CnfBuilder {
        let mut cnf = CnfBuilder::new();
        let inputs: Vec<Var> = (0..width).map(|_| cnf.new_var()).collect();
        let chain = |cnf: &mut CnfBuilder, order: &[Var]| -> Var {
            let mut acc = order[0];
            for &x in &order[1..] {
                let out = cnf.new_var();
                // out = acc xor x
                cnf.add_clause([Lit::neg(out), Lit::pos(acc), Lit::pos(x)]);
                cnf.add_clause([Lit::neg(out), Lit::neg(acc), Lit::neg(x)]);
                cnf.add_clause([Lit::pos(out), Lit::neg(acc), Lit::pos(x)]);
                cnf.add_clause([Lit::pos(out), Lit::pos(acc), Lit::neg(x)]);
                acc = out;
            }
            acc
        };
        let a = chain(&mut cnf, &inputs);
        let rev: Vec<Var> = inputs.iter().rev().copied().collect();
        let b = chain(&mut cnf, &rev);
        // a != b
        cnf.add_clause([Lit::pos(a), Lit::pos(b)]);
        cnf.add_clause([Lit::neg(a), Lit::neg(b)]);
        cnf
    }

    fn sat_instance() -> CnfBuilder {
        let mut cnf = CnfBuilder::new();
        let vars: Vec<Var> = (0..8).map(|_| cnf.new_var()).collect();
        for w in vars.windows(2) {
            cnf.add_clause([Lit::pos(w[0]), Lit::pos(w[1])]);
        }
        cnf
    }

    #[test]
    fn race_proves_unsat_and_reports_a_winner() {
        let cnf = xor_miter(24);
        let opts = RaceOptions::new(3).with_chunk(64);
        let (verdict, report) = race(&cnf, &[], &opts, None, None, None);
        assert_eq!(verdict, SolveResult::Unsat);
        let winner = report.winner.expect("a racer must win");
        assert_eq!(report.winner_backend, Some(report.racers[winner].backend));
        assert!(report.rounds >= 1);
        assert!(!report.cancelled);
        assert_eq!(report.racers.len(), 3);
    }

    #[test]
    fn race_is_deterministic_across_repeats() {
        let cnf = xor_miter(20);
        let opts = RaceOptions::new(4).with_chunk(32);
        let (v1, r1) = race(&cnf, &[], &opts, None, None, None);
        let (v2, r2) = race(&cnf, &[], &opts, None, None, None);
        assert_eq!(v1, SolveResult::Unsat);
        assert_eq!(v1, v2);
        assert_eq!(r1.winner, r2.winner);
        assert_eq!(r1.winner_backend, r2.winner_backend);
        assert_eq!(r1.rounds, r2.rounds);
    }

    #[test]
    fn race_finds_models_deterministically() {
        let cnf = sat_instance();
        let opts = RaceOptions::new(3).with_chunk(16);
        let (v1, r1) = race(&cnf, &[], &opts, None, None, None);
        let (v2, r2) = race(&cnf, &[], &opts, None, None, None);
        assert!(matches!(v1, SolveResult::Sat(_)));
        assert_eq!(v1, v2, "winner model must be deterministic");
        assert_eq!(r1.winner, r2.winner);
    }

    #[test]
    fn race_respects_assumptions() {
        let mut cnf = CnfBuilder::new();
        let x = cnf.new_var();
        let y = cnf.new_var();
        cnf.add_clause([Lit::pos(x), Lit::pos(y)]);
        let opts = RaceOptions::new(2);
        let (v, _) = race(
            &cnf,
            &[Lit::neg(x), Lit::neg(y)],
            &opts,
            None,
            None,
            None,
        );
        assert_eq!(v, SolveResult::Unsat);
        // ...and the same racers would find the relaxed instance SAT.
        let (v, _) = race(&cnf, &[Lit::neg(x)], &opts, None, None, None);
        assert!(matches!(v, SolveResult::Sat(_)));
    }

    #[test]
    fn exhausted_budget_returns_unknown_with_deterministic_rounds() {
        let cnf = xor_miter(40);
        let opts = RaceOptions::new(2).with_chunk(4);
        let (v1, r1) = race(&cnf, &[], &opts, Some(8), None, None);
        let (v2, r2) = race(&cnf, &[], &opts, Some(8), None, None);
        assert_eq!(v1, SolveResult::Unknown);
        assert_eq!(v2, SolveResult::Unknown);
        assert_eq!(r1.winner, None);
        assert_eq!(r1.rounds, r2.rounds);
        assert!(r1.racers.iter().all(|r| r.outcome == "exhausted"));
    }

    #[test]
    fn external_flag_stops_the_race_and_is_never_written() {
        let cnf = xor_miter(60);
        let flag = Arc::new(AtomicBool::new(true)); // already cancelled
        let opts = RaceOptions::new(2);
        let (v, report) = race(&cnf, &[], &opts, None, None, Some(Arc::clone(&flag)));
        assert_eq!(v, SolveResult::Unknown);
        assert!(report.cancelled);
        assert_eq!(report.rounds, 0);
        assert!(flag.load(Ordering::Acquire), "flag still set by caller only");

        // A completed race must never have stored to the caller's flag.
        let clean = Arc::new(AtomicBool::new(false));
        let small = xor_miter(10);
        let (v, _) = race(
            &small,
            &[],
            &RaceOptions::new(3),
            None,
            None,
            Some(Arc::clone(&clean)),
        );
        assert_eq!(v, SolveResult::Unsat);
        assert!(
            !clean.load(Ordering::Acquire),
            "race must not poison the external cancel flag"
        );
    }

    #[test]
    fn width_one_race_matches_plain_solver() {
        let cnf = xor_miter(16);
        let base = SolverConfig::modern();
        let opts = RaceOptions {
            width: 1,
            base,
            chunk_conflicts: 4096,
        };
        let (v, report) = race(&cnf, &[], &opts, None, None, None);
        let mut solo = Solver::from_cnf_with(&cnf, base);
        assert_eq!(v, solo.solve());
        assert_eq!(report.winner, Some(0));
    }
}
