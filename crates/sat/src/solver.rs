//! The CDCL solver.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Instant;

use crate::heap::VarHeap;
use crate::{CnfBuilder, Lit, Var};

/// The outcome of [`Solver::solve`].
#[derive(Debug, Clone, PartialEq)]
pub enum SolveResult {
    /// The formula is satisfiable; a model is attached.
    Sat(Model),
    /// The formula is unsatisfiable.
    Unsat,
    /// The conflict budget or deadline was exhausted before a decision was
    /// reached.
    Unknown,
}

/// A satisfying assignment.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Model {
    values: Vec<bool>,
}

impl Model {
    /// The value of `v` in the model (variables never constrained default to
    /// `false`).
    pub fn value(&self, v: Var) -> bool {
        self.values.get(v.index()).copied().unwrap_or(false)
    }

    /// True iff the literal is satisfied by the model.
    pub fn satisfies(&self, l: Lit) -> bool {
        l.eval(self.value(l.var()))
    }
}

/// Search statistics exposed for benchmarking and diagnostics.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SolverStats {
    /// Number of conflicts encountered.
    pub conflicts: u64,
    /// Number of branching decisions.
    pub decisions: u64,
    /// Number of literal propagations.
    pub propagations: u64,
    /// Number of restarts performed.
    pub restarts: u64,
    /// Number of learnt clauses currently stored.
    pub learnt_clauses: usize,
}

#[derive(Debug, Clone)]
struct Clause {
    lits: Vec<Lit>,
}

#[derive(Debug, Clone, Copy)]
struct Watch {
    clause: u32,
    blocker: Lit,
}

const UNASSIGNED: i8 = -1;

/// A conflict-driven clause-learning SAT solver.
///
/// Implements the MiniSat architecture: two-literal watching, VSIDS
/// activities with an indexed heap, phase saving, first-UIP conflict
/// analysis and Luby-sequence restarts. See the
/// [crate documentation](crate) for an example.
#[derive(Debug, Clone)]
pub struct Solver {
    clauses: Vec<Clause>,
    watches: Vec<Vec<Watch>>,
    /// Per-variable assignment: `UNASSIGNED`, 0 (false) or 1 (true).
    assign: Vec<i8>,
    level: Vec<u32>,
    reason: Vec<Option<u32>>,
    trail: Vec<Lit>,
    trail_lim: Vec<usize>,
    qhead: usize,
    activity: Vec<f64>,
    var_inc: f64,
    order: VarHeap,
    phase: Vec<bool>,
    seen: Vec<bool>,
    ok: bool,
    first_learnt: usize,
    stats: SolverStats,
    max_conflicts: Option<u64>,
    deadline: Option<Instant>,
    interrupt: Option<Arc<AtomicBool>>,
}

impl Solver {
    /// Creates an empty solver with no variables.
    pub fn new() -> Self {
        Solver {
            clauses: Vec::new(),
            watches: Vec::new(),
            assign: Vec::new(),
            level: Vec::new(),
            reason: Vec::new(),
            trail: Vec::new(),
            trail_lim: Vec::new(),
            qhead: 0,
            activity: Vec::new(),
            var_inc: 1.0,
            order: VarHeap::with_vars(0),
            phase: Vec::new(),
            seen: Vec::new(),
            ok: true,
            first_learnt: 0,
            stats: SolverStats::default(),
            max_conflicts: None,
            deadline: None,
            interrupt: None,
        }
    }

    /// Builds a solver loaded with the formula in `cnf`.
    pub fn from_cnf(cnf: &CnfBuilder) -> Self {
        let mut s = Solver::new();
        s.reserve_vars(cnf.num_vars());
        for clause in cnf.clauses() {
            s.add_clause(clause.iter().copied());
        }
        s.first_learnt = s.clauses.len();
        s
    }

    /// Limits the search to `conflicts` conflicts; [`SolveResult::Unknown`]
    /// is returned when exceeded. The budget applies per
    /// [`Solver::solve`]/[`Solver::solve_under`] call.
    pub fn set_conflict_budget(&mut self, conflicts: u64) {
        self.max_conflicts = Some(conflicts);
    }

    /// Aborts the search with [`SolveResult::Unknown`] once `deadline`
    /// passes. Checked at conflict points, so a pathological propagation
    /// may overrun slightly; combine with a conflict budget for hard caps.
    pub fn set_deadline(&mut self, deadline: Instant) {
        self.deadline = Some(deadline);
    }

    /// Removes any conflict budget and deadline: subsequent calls run to
    /// completion. An armed [interrupt flag](Solver::set_interrupt) is
    /// *not* cleared — it models external cancellation, not a per-call
    /// budget.
    pub fn clear_limits(&mut self) {
        self.max_conflicts = None;
        self.deadline = None;
    }

    /// Arms a cooperative interrupt: when `flag` reads `true` at a
    /// conflict point, the search aborts with [`SolveResult::Unknown`].
    /// The flag is shared (typically the cancel flag of a batch job) and
    /// stays armed across [`Solver::solve`] calls until
    /// [`Solver::clear_interrupt`].
    pub fn set_interrupt(&mut self, flag: Arc<AtomicBool>) {
        self.interrupt = Some(flag);
    }

    /// Disarms the cooperative interrupt flag.
    pub fn clear_interrupt(&mut self) {
        self.interrupt = None;
    }

    /// Search statistics so far.
    pub fn stats(&self) -> SolverStats {
        let mut s = self.stats;
        s.learnt_clauses = self.clauses.len().saturating_sub(self.first_learnt);
        s
    }

    /// The number of allocated variables.
    pub fn num_vars(&self) -> usize {
        self.assign.len()
    }

    /// The number of problem (non-learnt) clauses loaded.
    pub fn num_problem_clauses(&self) -> usize {
        self.first_learnt
    }

    /// Marks every clause added so far as a problem clause, so stats
    /// report only clauses learnt *after* this point. Incremental callers
    /// ([`crate::SharedMiter`]) use this after encoding a new variant.
    pub fn rebase_problem_clauses(&mut self) {
        self.first_learnt = self.clauses.len();
    }

    /// Ensures variables `0..n` exist.
    pub fn reserve_vars(&mut self, n: usize) {
        while self.assign.len() < n {
            let v = Var::from_index(self.assign.len());
            self.assign.push(UNASSIGNED);
            self.level.push(0);
            self.reason.push(None);
            self.activity.push(0.0);
            self.phase.push(false);
            self.seen.push(false);
            self.watches.push(Vec::new());
            self.watches.push(Vec::new());
            self.order.grow(n);
            self.order.insert(v, &self.activity);
        }
    }

    /// Adds a clause; an empty clause makes the instance trivially UNSAT.
    ///
    /// Clauses may be added while the solver is at decision level zero —
    /// i.e. before the first solve or between [`Solver::solve_under`]
    /// calls — making the solver incrementally usable for families of
    /// related queries.
    ///
    /// # Panics
    ///
    /// Panics if called mid-search or on unallocated variables.
    pub fn add_clause(&mut self, lits: impl IntoIterator<Item = Lit>) {
        assert!(
            self.trail_lim.is_empty(),
            "clauses must be added before solving"
        );
        let mut clause: Vec<Lit> = lits.into_iter().collect();
        clause.sort_unstable();
        clause.dedup();
        if clause.windows(2).any(|w| w[0] == !w[1]) {
            return; // tautology
        }
        for l in &clause {
            assert!(
                l.var().index() < self.assign.len(),
                "literal {l} references an unallocated variable"
            );
        }
        // Simplify against the permanent level-0 assignment. This is load-
        // bearing for incremental use: a literal that was falsified (and
        // propagated) before this clause arrived will never be visited
        // again by the watch scheme, so watching it would leave the clause
        // dormant and let later models violate it.
        if clause.iter().any(|&l| self.value(l) == Some(true)) {
            return; // already satisfied forever
        }
        clause.retain(|&l| self.value(l).is_none());
        match clause.len() {
            0 => self.ok = false,
            1 => {
                // Unit at level 0.
                match self.value(clause[0]) {
                    Some(false) => self.ok = false,
                    Some(true) => {}
                    None => self.enqueue(clause[0], None),
                }
            }
            _ => {
                let ci = self.clauses.len() as u32;
                self.watch(clause[0], ci, clause[1]);
                self.watch(clause[1], ci, clause[0]);
                self.clauses.push(Clause { lits: clause });
            }
        }
    }

    fn watch(&mut self, l: Lit, clause: u32, blocker: Lit) {
        self.watches[l.code()].push(Watch { clause, blocker });
    }

    fn value(&self, l: Lit) -> Option<bool> {
        match self.assign[l.var().index()] {
            UNASSIGNED => None,
            v => Some(l.eval(v == 1)),
        }
    }

    fn decision_level(&self) -> u32 {
        self.trail_lim.len() as u32
    }

    fn enqueue(&mut self, l: Lit, reason: Option<u32>) {
        debug_assert_eq!(self.value(l), None);
        let v = l.var().index();
        self.assign[v] = i8::from(!l.is_neg());
        self.level[v] = self.decision_level();
        self.reason[v] = reason;
        self.trail.push(l);
    }

    /// Propagates all enqueued assignments; returns a conflicting clause
    /// index if one arises.
    fn propagate(&mut self) -> Option<u32> {
        while self.qhead < self.trail.len() {
            let p = self.trail[self.qhead];
            self.qhead += 1;
            self.stats.propagations += 1;
            let false_lit = !p;
            // Visit clauses watching the literal that just became false.
            let mut ws = std::mem::take(&mut self.watches[false_lit.code()]);
            let mut keep = 0usize;
            let mut conflict = None;
            let mut i = 0usize;
            while i < ws.len() {
                let w = ws[i];
                i += 1;
                if self.value(w.blocker) == Some(true) {
                    ws[keep] = w;
                    keep += 1;
                    continue;
                }
                let ci = w.clause as usize;
                // Normalize: the false literal goes to position 1.
                {
                    let lits = &mut self.clauses[ci].lits;
                    if lits[0] == false_lit {
                        lits.swap(0, 1);
                    }
                    debug_assert_eq!(lits[1], false_lit);
                }
                let first = self.clauses[ci].lits[0];
                if first != w.blocker && self.value(first) == Some(true) {
                    ws[keep] = Watch {
                        clause: w.clause,
                        blocker: first,
                    };
                    keep += 1;
                    continue;
                }
                // Look for a replacement watch.
                let mut replaced = false;
                for k in 2..self.clauses[ci].lits.len() {
                    let cand = self.clauses[ci].lits[k];
                    if self.value(cand) != Some(false) {
                        self.clauses[ci].lits.swap(1, k);
                        self.watch(cand, w.clause, first);
                        replaced = true;
                        break;
                    }
                }
                if replaced {
                    continue;
                }
                // Clause is unit or conflicting.
                ws[keep] = w;
                keep += 1;
                if self.value(first) == Some(false) {
                    // Conflict: retain remaining watches and bail out.
                    while i < ws.len() {
                        ws[keep] = ws[i];
                        keep += 1;
                        i += 1;
                    }
                    self.qhead = self.trail.len();
                    conflict = Some(w.clause);
                } else {
                    self.enqueue(first, Some(w.clause));
                }
            }
            ws.truncate(keep);
            self.watches[false_lit.code()] = ws;
            if conflict.is_some() {
                return conflict;
            }
        }
        None
    }

    fn bump_var(&mut self, v: Var) {
        self.activity[v.index()] += self.var_inc;
        if self.activity[v.index()] > 1e100 {
            for a in &mut self.activity {
                *a *= 1e-100;
            }
            self.var_inc *= 1e-100;
        }
        self.order.update(v, &self.activity);
    }

    fn decay_activities(&mut self) {
        self.var_inc /= 0.95;
    }

    /// First-UIP conflict analysis; returns the learnt clause (asserting
    /// literal first) and the backtrack level.
    fn analyze(&mut self, conflict: u32) -> (Vec<Lit>, u32) {
        let mut learnt: Vec<Lit> = vec![Lit(0)]; // slot 0 = asserting literal
        let mut path = 0usize;
        let mut p: Option<Lit> = None;
        let mut index = self.trail.len();
        let mut confl = conflict;
        loop {
            let start = usize::from(p.is_some());
            let lits: Vec<Lit> = self.clauses[confl as usize].lits[start..].to_vec();
            for q in lits {
                let v = q.var();
                if !self.seen[v.index()] && self.level[v.index()] > 0 {
                    self.seen[v.index()] = true;
                    self.bump_var(v);
                    if self.level[v.index()] >= self.decision_level() {
                        path += 1;
                    } else {
                        learnt.push(q);
                    }
                }
            }
            // Find the next marked literal on the trail.
            let pl = loop {
                index -= 1;
                let cand = self.trail[index];
                if self.seen[cand.var().index()] {
                    break cand;
                }
            };
            self.seen[pl.var().index()] = false;
            path -= 1;
            p = Some(pl);
            if path == 0 {
                break;
            }
            confl = self.reason[pl.var().index()].expect("non-decision must have a reason");
        }
        learnt[0] = !p.expect("analysis visits at least one literal");
        for l in &learnt[1..] {
            self.seen[l.var().index()] = false;
        }
        // Backtrack level: highest level among the non-asserting literals.
        let bt = if learnt.len() == 1 {
            0
        } else {
            // Move the max-level literal to slot 1 (it becomes the second watch).
            let mut max_i = 1;
            for i in 2..learnt.len() {
                if self.level[learnt[i].var().index()]
                    > self.level[learnt[max_i].var().index()]
                {
                    max_i = i;
                }
            }
            learnt.swap(1, max_i);
            self.level[learnt[1].var().index()]
        };
        (learnt, bt)
    }

    fn backtrack_to(&mut self, level: u32) {
        while self.decision_level() > level {
            let lim = self.trail_lim.pop().expect("level > 0");
            while self.trail.len() > lim {
                let l = self.trail.pop().expect("trail nonempty");
                let v = l.var();
                self.phase[v.index()] = !l.is_neg();
                self.assign[v.index()] = UNASSIGNED;
                self.reason[v.index()] = None;
                self.order.insert(v, &self.activity);
            }
        }
        // Clamp, don't jump: when nothing was popped (e.g. the defensive
        // backtrack at the start of a solve), pending level-0 enqueues must
        // still be propagated.
        self.qhead = self.qhead.min(self.trail.len());
    }

    fn record_learnt(&mut self, learnt: Vec<Lit>) {
        if learnt.len() == 1 {
            self.enqueue(learnt[0], None);
            return;
        }
        let ci = self.clauses.len() as u32;
        self.watch(learnt[0], ci, learnt[1]);
        self.watch(learnt[1], ci, learnt[0]);
        let asserting = learnt[0];
        self.clauses.push(Clause { lits: learnt });
        self.enqueue(asserting, Some(ci));
    }

    fn pick_branch(&mut self) -> Option<Var> {
        while let Some(v) = self.order.pop_max(&self.activity) {
            if self.assign[v.index()] == UNASSIGNED {
                return Some(v);
            }
        }
        None
    }

    /// Runs the CDCL search to completion (or to the conflict budget).
    ///
    /// Equivalent to [`Solver::solve_under`] with no assumptions. Note
    /// that once this returns `Unsat` the formula itself is contradictory
    /// and every later call also returns `Unsat`.
    pub fn solve(&mut self) -> SolveResult {
        self.solve_under(&[])
    }

    /// Runs the CDCL search under `assumptions`: literals forced true for
    /// this call only.
    ///
    /// The solver is reusable across calls — clauses learnt in one call
    /// are implied by the clause database alone and stay valid for
    /// different assumption sets, which makes repeated reachability
    /// queries (e.g. the SDC scan) incremental. `Unsat` here means
    /// *unsatisfiable together with the assumptions*; the solver stays
    /// usable afterwards unless the formula itself was refuted.
    ///
    /// The conflict budget, when set, applies per call.
    ///
    /// # Panics
    ///
    /// Panics if an assumption references an unallocated variable.
    pub fn solve_under(&mut self, assumptions: &[Lit]) -> SolveResult {
        if !odcfp_obs::enabled() {
            return self.solve_under_inner(assumptions);
        }
        let mut span = odcfp_obs::span("sat.solve");
        let before = self.stats.conflicts;
        let result = self.solve_under_inner(assumptions);
        let delta = self.stats.conflicts - before;
        span.field("conflicts", delta);
        span.field(
            "result",
            match result {
                SolveResult::Sat(_) => "sat",
                SolveResult::Unsat => "unsat",
                SolveResult::Unknown => "unknown",
            },
        );
        odcfp_obs::count("sat.conflicts", delta);
        result
    }

    fn solve_under_inner(&mut self, assumptions: &[Lit]) -> SolveResult {
        if !self.ok {
            return SolveResult::Unsat;
        }
        for a in assumptions {
            assert!(
                a.var().index() < self.assign.len(),
                "assumption {a} references an unallocated variable"
            );
        }
        self.backtrack_to(0);
        let start_conflicts = self.stats.conflicts;
        let mut luby_index = 0u32;
        let mut conflicts_until_restart = 100 * luby(luby_index);
        loop {
            if let Some(confl) = self.propagate() {
                self.stats.conflicts += 1;
                if self.decision_level() == 0 {
                    self.ok = false;
                    return SolveResult::Unsat;
                }
                let (learnt, bt) = self.analyze(confl);
                self.backtrack_to(bt);
                self.record_learnt(learnt);
                self.decay_activities();
                if let Some(budget) = self.max_conflicts {
                    if self.stats.conflicts - start_conflicts >= budget {
                        self.backtrack_to(0);
                        return SolveResult::Unknown;
                    }
                }
                // Amortize clock reads and interrupt polls over a batch
                // of conflicts.
                if (self.stats.conflicts - start_conflicts).is_multiple_of(64) {
                    let deadline_hit =
                        self.deadline.is_some_and(|d| Instant::now() >= d);
                    let interrupted = self
                        .interrupt
                        .as_ref()
                        .is_some_and(|f| f.load(Ordering::Acquire));
                    if deadline_hit || interrupted {
                        self.backtrack_to(0);
                        return SolveResult::Unknown;
                    }
                }
                if conflicts_until_restart > 0 {
                    conflicts_until_restart -= 1;
                } else {
                    self.stats.restarts += 1;
                    luby_index += 1;
                    conflicts_until_restart = 100 * luby(luby_index);
                    self.backtrack_to(0);
                }
            } else if (self.decision_level() as usize) < assumptions.len() {
                // Seat the next assumption as a decision.
                let a = assumptions[self.decision_level() as usize];
                match self.value(a) {
                    Some(true) => {
                        // Already implied: open an empty level so indexing
                        // into `assumptions` by decision level stays aligned.
                        self.trail_lim.push(self.trail.len());
                    }
                    Some(false) => {
                        // The database (plus earlier assumptions) refutes
                        // this assumption.
                        self.backtrack_to(0);
                        return SolveResult::Unsat;
                    }
                    None => {
                        self.trail_lim.push(self.trail.len());
                        self.enqueue(a, None);
                    }
                }
            } else {
                match self.pick_branch() {
                    None => {
                        let values = self.assign.iter().map(|&a| a == 1).collect();
                        self.backtrack_to(0);
                        return SolveResult::Sat(Model { values });
                    }
                    Some(v) => {
                        self.stats.decisions += 1;
                        self.trail_lim.push(self.trail.len());
                        let phase = self.phase[v.index()];
                        self.enqueue(Lit::with_polarity(v, phase), None);
                    }
                }
            }
        }
    }
}

impl Default for Solver {
    fn default() -> Self {
        Solver::new()
    }
}

/// The Luby restart sequence: 1, 1, 2, 1, 1, 2, 4, ...
fn luby(i: u32) -> u64 {
    // Find the finite subsequence containing index i and its position.
    let mut k = 1u32;
    loop {
        if i + 1 == (1 << k) - 1 {
            return 1u64 << (k - 1);
        }
        if i + 1 < (1 << k) - 1 {
            return luby(i + 1 - (1 << (k - 1)));
        }
        k += 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn lit(i: i64) -> Lit {
        let v = Var::from_index((i.unsigned_abs() - 1) as usize);
        if i < 0 {
            Lit::neg(v)
        } else {
            Lit::pos(v)
        }
    }

    fn solver_with(num_vars: usize, clauses: &[&[i64]]) -> Solver {
        let mut s = Solver::new();
        s.reserve_vars(num_vars);
        for c in clauses {
            s.add_clause(c.iter().map(|&i| lit(i)));
        }
        s
    }

    #[test]
    fn luby_sequence() {
        let expect = [1u64, 1, 2, 1, 1, 2, 4, 1, 1, 2, 1, 1, 2, 4, 8];
        let got: Vec<u64> = (0..15).map(luby).collect();
        assert_eq!(got, expect);
    }

    #[test]
    fn trivial_sat_and_unsat() {
        let mut s = solver_with(1, &[&[1]]);
        assert!(matches!(s.solve(), SolveResult::Sat(_)));
        let mut s = solver_with(1, &[&[1], &[-1]]);
        assert_eq!(s.solve(), SolveResult::Unsat);
    }

    #[test]
    fn empty_formula_is_sat() {
        let mut s = solver_with(3, &[]);
        assert!(matches!(s.solve(), SolveResult::Sat(_)));
    }

    #[test]
    fn unit_chain_propagation() {
        // 1, 1->2, 2->3, 3->4 forces all true.
        let mut s = solver_with(4, &[&[1], &[-1, 2], &[-2, 3], &[-3, 4]]);
        match s.solve() {
            SolveResult::Sat(m) => {
                for i in 0..4 {
                    assert!(m.value(Var::from_index(i)), "x{i}");
                }
            }
            other => panic!("expected SAT: {other:?}"),
        }
    }

    #[test]
    fn model_satisfies_all_clauses() {
        let clauses: &[&[i64]] = &[
            &[1, 2, -3],
            &[-1, 3],
            &[-2, -3],
            &[2, 3],
            &[-1, -2, 3],
        ];
        let mut s = solver_with(3, clauses);
        match s.solve() {
            SolveResult::Sat(m) => {
                for c in clauses {
                    assert!(
                        c.iter().any(|&i| m.satisfies(lit(i))),
                        "clause {c:?} unsatisfied"
                    );
                }
            }
            other => panic!("expected SAT: {other:?}"),
        }
    }

    #[test]
    fn pigeonhole_3_into_2_unsat() {
        // p_{i,j}: pigeon i in hole j. Vars 1..=6 as (i*2 + j + 1).
        let p = |i: i64, j: i64| i * 2 + j + 1;
        let mut clauses: Vec<Vec<i64>> = Vec::new();
        for i in 0..3 {
            clauses.push(vec![p(i, 0), p(i, 1)]);
        }
        for j in 0..2 {
            for a in 0..3 {
                for b in (a + 1)..3 {
                    clauses.push(vec![-p(a, j), -p(b, j)]);
                }
            }
        }
        let refs: Vec<&[i64]> = clauses.iter().map(Vec::as_slice).collect();
        let mut s = solver_with(6, &refs);
        assert_eq!(s.solve(), SolveResult::Unsat);
    }

    #[test]
    fn pigeonhole_5_into_4_unsat() {
        let n = 5i64;
        let h = 4i64;
        let p = |i: i64, j: i64| i * h + j + 1;
        let mut clauses: Vec<Vec<i64>> = Vec::new();
        for i in 0..n {
            clauses.push((0..h).map(|j| p(i, j)).collect());
        }
        for j in 0..h {
            for a in 0..n {
                for b in (a + 1)..n {
                    clauses.push(vec![-p(a, j), -p(b, j)]);
                }
            }
        }
        let refs: Vec<&[i64]> = clauses.iter().map(Vec::as_slice).collect();
        let mut s = solver_with((n * h) as usize, &refs);
        assert_eq!(s.solve(), SolveResult::Unsat);
        assert!(s.stats().conflicts > 0);
    }

    #[test]
    fn random_3sat_matches_brute_force() {
        use odcfp_logic::rng::Xoshiro256;
        let mut rng = Xoshiro256::seed_from_u64(2024);
        for round in 0..60 {
            let num_vars = 3 + rng.next_below(8); // 3..=10
            let num_clauses = 2 + rng.next_below(5 * num_vars);
            let mut cnf = CnfBuilder::new();
            let vars = cnf.new_vars(num_vars);
            let mut raw: Vec<Vec<Lit>> = Vec::new();
            for _ in 0..num_clauses {
                let len = 1 + rng.next_below(3);
                let mut c = Vec::new();
                for _ in 0..len {
                    let v = vars[rng.next_below(num_vars)];
                    c.push(Lit::with_polarity(v, rng.next_bool()));
                }
                raw.push(c.clone());
                cnf.add_clause(c);
            }
            let brute_sat = (0..(1usize << num_vars)).any(|m| {
                let assignment: Vec<bool> =
                    (0..num_vars).map(|v| (m >> v) & 1 == 1).collect();
                cnf.eval(&assignment)
            });
            let mut s = Solver::from_cnf(&cnf);
            match s.solve() {
                SolveResult::Sat(model) => {
                    assert!(brute_sat, "round {round}: solver SAT, brute UNSAT");
                    for c in &raw {
                        assert!(
                            c.iter().any(|&l| model.satisfies(l)),
                            "round {round}: model violates {c:?}"
                        );
                    }
                }
                SolveResult::Unsat => {
                    assert!(!brute_sat, "round {round}: solver UNSAT, brute SAT");
                }
                SolveResult::Unknown => panic!("no budget set"),
            }
        }
    }

    #[test]
    fn conflict_budget_returns_unknown() {
        // A pigeonhole instance large enough to need > 1 conflict.
        let n = 6i64;
        let h = 5i64;
        let p = |i: i64, j: i64| i * h + j + 1;
        let mut clauses: Vec<Vec<i64>> = Vec::new();
        for i in 0..n {
            clauses.push((0..h).map(|j| p(i, j)).collect());
        }
        for j in 0..h {
            for a in 0..n {
                for b in (a + 1)..n {
                    clauses.push(vec![-p(a, j), -p(b, j)]);
                }
            }
        }
        let refs: Vec<&[i64]> = clauses.iter().map(Vec::as_slice).collect();
        let mut s = solver_with((n * h) as usize, &refs);
        s.set_conflict_budget(1);
        assert_eq!(s.solve(), SolveResult::Unknown);
    }

    #[test]
    fn decisions_counted_and_model_defaults() {
        let mut s = solver_with(4, &[&[1, 2], &[3, 4]]);
        match s.solve() {
            SolveResult::Sat(m) => {
                // Unconstrained extra variable defaults to false.
                assert!(!m.value(Var::from_index(100)));
            }
            other => panic!("{other:?}"),
        }
        assert!(s.stats().decisions > 0);
    }

    #[test]
    fn assumptions_restrict_without_poisoning() {
        // x1 free; assume !x1 then x1: both SAT; assume both -> caught.
        let mut s = solver_with(2, &[&[1, 2]]);
        assert!(matches!(s.solve_under(&[lit(-1)]), SolveResult::Sat(_)));
        assert!(matches!(s.solve_under(&[lit(1)]), SolveResult::Sat(_)));
        assert_eq!(s.solve_under(&[lit(1), lit(-1)]), SolveResult::Unsat);
        // The solver is still usable and the formula still satisfiable.
        assert!(matches!(s.solve(), SolveResult::Sat(_)));
    }

    #[test]
    fn unsat_under_assumptions_is_not_global_unsat() {
        // Formula forces x1; assuming !x1 is Unsat but only under the
        // assumption.
        let mut s = solver_with(2, &[&[1], &[-1, 2]]);
        assert_eq!(s.solve_under(&[lit(-1)]), SolveResult::Unsat);
        match s.solve() {
            SolveResult::Sat(m) => {
                assert!(m.value(Var::from_index(0)));
                assert!(m.value(Var::from_index(1)));
            }
            other => panic!("{other:?}"),
        }
        // Assumptions consistent with the formula succeed.
        assert!(matches!(s.solve_under(&[lit(2)]), SolveResult::Sat(_)));
    }

    #[test]
    fn repeated_assumption_queries_match_brute_force() {
        use odcfp_logic::rng::Xoshiro256;
        let mut rng = Xoshiro256::seed_from_u64(777);
        for round in 0..25 {
            let num_vars = 4 + rng.next_below(5);
            let num_clauses = 3 + rng.next_below(4 * num_vars);
            let mut cnf = CnfBuilder::new();
            let vars = cnf.new_vars(num_vars);
            for _ in 0..num_clauses {
                let len = 1 + rng.next_below(3);
                let mut c = Vec::new();
                for _ in 0..len {
                    c.push(Lit::with_polarity(
                        vars[rng.next_below(num_vars)],
                        rng.next_bool(),
                    ));
                }
                cnf.add_clause(c);
            }
            // One solver instance, many assumption queries.
            let mut solver = Solver::from_cnf(&cnf);
            for q in 0..8 {
                let k = rng.next_below(3);
                let mut assumptions = Vec::new();
                let mut used = Vec::new();
                for _ in 0..k {
                    let v = rng.next_below(num_vars);
                    if used.contains(&v) {
                        continue;
                    }
                    used.push(v);
                    assumptions.push(Lit::with_polarity(vars[v], rng.next_bool()));
                }
                let brute = (0..(1usize << num_vars)).any(|m| {
                    let assignment: Vec<bool> =
                        (0..num_vars).map(|v| (m >> v) & 1 == 1).collect();
                    cnf.eval(&assignment)
                        && assumptions.iter().all(|l| l.eval(assignment[l.var().index()]))
                });
                match solver.solve_under(&assumptions) {
                    SolveResult::Sat(model) => {
                        assert!(brute, "round {round} query {q}: solver SAT, brute UNSAT");
                        for a in &assumptions {
                            assert!(model.satisfies(*a), "assumption {a} violated");
                        }
                        let assignment: Vec<bool> =
                            (0..num_vars).map(|v| model.value(vars[v])).collect();
                        assert!(cnf.eval(&assignment), "model violates formula");
                    }
                    SolveResult::Unsat => {
                        assert!(!brute, "round {round} query {q}: solver UNSAT, brute SAT");
                    }
                    SolveResult::Unknown => panic!("no budget set"),
                }
            }
        }
    }

    #[test]
    fn clauses_added_after_solving_are_simplified_against_level_zero() {
        // Regression: a clause added between solves whose watched literal
        // was already falsified (and propagated) at level 0 must not go
        // dormant — the remaining literal has to propagate. Here x1 is
        // forced false by a unit; the late clause (x1 | x2) must force x2.
        let mut s = solver_with(3, &[&[-1]]);
        assert!(matches!(s.solve(), SolveResult::Sat(_)));
        s.add_clause([lit(1), lit(2)]);
        match s.solve() {
            SolveResult::Sat(m) => {
                assert!(!m.value(Var::from_index(0)));
                assert!(m.value(Var::from_index(1)), "late clause went dormant");
            }
            other => panic!("{other:?}"),
        }
        // And a late clause contradicting level 0 refutes the instance.
        s.add_clause([lit(1)]);
        assert_eq!(s.solve(), SolveResult::Unsat);
    }

    #[test]
    fn stats_populated() {
        let mut s = solver_with(3, &[&[1, 2], &[-1, 2], &[1, -2], &[-1, -2, 3]]);
        let _ = s.solve();
        let st = s.stats();
        assert!(st.propagations > 0);
    }
}
