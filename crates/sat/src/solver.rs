//! The CDCL solver.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Instant;

use crate::config::{splitmix64, SolverConfig};
use crate::heap::VarHeap;
use crate::{CnfBuilder, Lit, Var};

/// Learnt clauses with LBD at or below this are "core" tier: kept forever.
const CORE_LBD: u32 = 2;
/// Learnt clauses with LBD at or below this are "mid" tier: they get one
/// reprieve before a reduction may delete them.
const MID_LBD: u32 = 6;
/// First learnt-DB reduction fires once this many live learnt clauses
/// accumulate; the limit then grows by [`REDUCE_GROWTH`] per reduction.
const REDUCE_BASE: u64 = 2000;
/// Learnt-DB growth allowance added after every reduction.
const REDUCE_GROWTH: u64 = 300;
/// Conflicts between rephasings (the interval then grows geometrically).
const REPHASE_BASE: u64 = 1000;
/// A backjump discarding more than this many decision levels backtracks
/// chronologically (one level) instead, keeping the trail prefix warm.
const CHRONO_JUMP: u32 = 100;

/// The outcome of [`Solver::solve`].
#[derive(Debug, Clone, PartialEq)]
pub enum SolveResult {
    /// The formula is satisfiable; a model is attached.
    Sat(Model),
    /// The formula is unsatisfiable.
    Unsat,
    /// The conflict budget or deadline was exhausted before a decision was
    /// reached.
    Unknown,
}

/// A satisfying assignment.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Model {
    values: Vec<bool>,
}

impl Model {
    /// The value of `v` in the model (variables never constrained default to
    /// `false`).
    pub fn value(&self, v: Var) -> bool {
        self.values.get(v.index()).copied().unwrap_or(false)
    }

    /// True iff the literal is satisfied by the model.
    pub fn satisfies(&self, l: Lit) -> bool {
        l.eval(self.value(l.var()))
    }
}

/// Search statistics exposed for benchmarking and diagnostics.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SolverStats {
    /// Number of conflicts encountered.
    pub conflicts: u64,
    /// Number of branching decisions.
    pub decisions: u64,
    /// Number of literal propagations.
    pub propagations: u64,
    /// Number of restarts performed.
    pub restarts: u64,
    /// Number of learnt clauses currently stored (live, excluding any
    /// deleted by DB reduction).
    pub learnt_clauses: usize,
    /// Sum of literal-block-distances over all scored learnt clauses
    /// (zero unless LBD tracking or DB reduction is enabled).
    pub lbd_sum: u64,
    /// Number of learnt clauses scored with an LBD.
    pub lbd_samples: u64,
    /// Number of learnt-DB reductions performed.
    pub db_reductions: u64,
    /// Number of learnt clauses deleted by DB reductions.
    pub learnt_deleted: u64,
    /// Number of rephasings performed.
    pub rephases: u64,
    /// Number of conflicts resolved with a chronological (one-level)
    /// backtrack instead of a full backjump.
    pub chrono_backtracks: u64,
}

impl SolverStats {
    /// Mean literal-block-distance of scored learnt clauses, or 0 when
    /// none were scored.
    pub fn avg_lbd(&self) -> f64 {
        if self.lbd_samples == 0 {
            0.0
        } else {
            self.lbd_sum as f64 / self.lbd_samples as f64
        }
    }
}

#[derive(Debug, Clone)]
struct Clause {
    lits: Vec<Lit>,
    /// Literal-block-distance at learn time; 0 for problem clauses and
    /// for learnt clauses when LBD scoring is off.
    lbd: u32,
    /// Mid-tier reprieve: set the first time a reduction would have
    /// deleted this clause; a later reduction may then delete it.
    protected: bool,
}

#[derive(Debug, Clone, Copy)]
struct Watch {
    clause: u32,
    blocker: Lit,
}

const UNASSIGNED: i8 = -1;

/// A conflict-driven clause-learning SAT solver.
///
/// Implements the MiniSat architecture — two-literal watching, VSIDS
/// activities with an indexed heap, phase saving, first-UIP conflict
/// analysis and Luby-sequence restarts — plus a modern-CDCL feature set
/// (glucose-style LBD scoring, tiered learnt-DB reduction, best-phase
/// rephasing, chronological backtracking) gated per-feature by a
/// [`SolverConfig`]. See the [crate documentation](crate) for an example.
#[derive(Debug, Clone)]
pub struct Solver {
    config: SolverConfig,
    clauses: Vec<Clause>,
    watches: Vec<Vec<Watch>>,
    /// Per-variable assignment: `UNASSIGNED`, 0 (false) or 1 (true).
    assign: Vec<i8>,
    level: Vec<u32>,
    reason: Vec<Option<u32>>,
    trail: Vec<Lit>,
    trail_lim: Vec<usize>,
    qhead: usize,
    activity: Vec<f64>,
    var_inc: f64,
    order: VarHeap,
    phase: Vec<bool>,
    seen: Vec<bool>,
    ok: bool,
    first_learnt: usize,
    /// Deleted (tombstoned) clauses at indices `>= first_learnt`.
    learnt_tombstones: usize,
    /// Live learnt-clause count that triggers the next DB reduction.
    reduce_limit: u64,
    /// Cumulative conflict count that triggers the next rephasing.
    next_rephase: u64,
    rephase_interval: u64,
    rephase_count: u64,
    /// Saved phases at the deepest trail seen (target phasing source).
    best_phase: Vec<bool>,
    best_trail: usize,
    /// The most recent satisfying assignment, for [`Solver::model_value`].
    last_model: Option<Model>,
    stats: SolverStats,
    max_conflicts: Option<u64>,
    deadline: Option<Instant>,
    interrupt: Option<Arc<AtomicBool>>,
}

impl Solver {
    /// Creates an empty solver with no variables, using the default
    /// ([modern](SolverConfig::modern)) configuration.
    pub fn new() -> Self {
        Solver::with_config(SolverConfig::default())
    }

    /// Creates an empty solver with the given configuration.
    pub fn with_config(config: SolverConfig) -> Self {
        Solver {
            config,
            clauses: Vec::new(),
            watches: Vec::new(),
            assign: Vec::new(),
            level: Vec::new(),
            reason: Vec::new(),
            trail: Vec::new(),
            trail_lim: Vec::new(),
            qhead: 0,
            activity: Vec::new(),
            var_inc: 1.0,
            order: VarHeap::with_vars(0),
            phase: Vec::new(),
            seen: Vec::new(),
            ok: true,
            first_learnt: 0,
            learnt_tombstones: 0,
            reduce_limit: REDUCE_BASE,
            next_rephase: REPHASE_BASE,
            rephase_interval: REPHASE_BASE,
            rephase_count: 0,
            best_phase: Vec::new(),
            best_trail: 0,
            last_model: None,
            stats: SolverStats::default(),
            max_conflicts: None,
            deadline: None,
            interrupt: None,
        }
    }

    /// Builds a solver loaded with the formula in `cnf`, using the
    /// default configuration.
    pub fn from_cnf(cnf: &CnfBuilder) -> Self {
        Solver::from_cnf_with(cnf, SolverConfig::default())
    }

    /// Builds a solver loaded with the formula in `cnf` under `config`.
    pub fn from_cnf_with(cnf: &CnfBuilder, config: SolverConfig) -> Self {
        let mut s = Solver::with_config(config);
        s.reserve_vars(cnf.num_vars());
        for clause in cnf.clauses() {
            s.add_clause(clause.iter().copied());
        }
        s.first_learnt = s.clauses.len();
        s
    }

    /// The configuration this solver runs under.
    pub fn config(&self) -> &SolverConfig {
        &self.config
    }

    /// Limits the search to `conflicts` conflicts; [`SolveResult::Unknown`]
    /// is returned when exceeded. The budget applies per
    /// [`Solver::solve`]/[`Solver::solve_under`] call.
    pub fn set_conflict_budget(&mut self, conflicts: u64) {
        self.max_conflicts = Some(conflicts);
    }

    /// Aborts the search with [`SolveResult::Unknown`] once `deadline`
    /// passes. Checked at conflict points, so a pathological propagation
    /// may overrun slightly; combine with a conflict budget for hard caps.
    pub fn set_deadline(&mut self, deadline: Instant) {
        self.deadline = Some(deadline);
    }

    /// Removes any conflict budget and deadline: subsequent calls run to
    /// completion. An armed [interrupt flag](Solver::set_interrupt) is
    /// *not* cleared — it models external cancellation, not a per-call
    /// budget.
    pub fn clear_limits(&mut self) {
        self.max_conflicts = None;
        self.deadline = None;
    }

    /// Arms a cooperative interrupt: when `flag` reads `true` at a
    /// conflict point, the search aborts with [`SolveResult::Unknown`].
    /// The flag is shared (typically the cancel flag of a batch job) and
    /// stays armed across [`Solver::solve`] calls until
    /// [`Solver::clear_interrupt`].
    pub fn set_interrupt(&mut self, flag: Arc<AtomicBool>) {
        self.interrupt = Some(flag);
    }

    /// Disarms the cooperative interrupt flag.
    pub fn clear_interrupt(&mut self) {
        self.interrupt = None;
    }

    /// Search statistics so far.
    pub fn stats(&self) -> SolverStats {
        let mut s = self.stats;
        s.learnt_clauses = self
            .clauses
            .len()
            .saturating_sub(self.first_learnt)
            .saturating_sub(self.learnt_tombstones);
        s
    }

    /// The value `v` took in the most recent satisfying assignment, or
    /// `None` when no `Sat` result has been produced yet. Variables never
    /// constrained default to `false` (like [`Model::value`]).
    pub fn model_value(&self, v: Var) -> Option<bool> {
        self.last_model.as_ref().map(|m| m.value(v))
    }

    /// The number of allocated variables.
    pub fn num_vars(&self) -> usize {
        self.assign.len()
    }

    /// The number of problem (non-learnt) clauses loaded.
    pub fn num_problem_clauses(&self) -> usize {
        self.first_learnt
    }

    /// Marks every clause added so far as a problem clause, so stats
    /// report only clauses learnt *after* this point. Incremental callers
    /// ([`crate::SharedMiter`]) use this after encoding a new variant.
    pub fn rebase_problem_clauses(&mut self) {
        self.first_learnt = self.clauses.len();
        // Everything before the new base — including any tombstones — is
        // now problem territory the reducer never revisits.
        self.learnt_tombstones = 0;
    }

    /// Ensures variables `0..n` exist.
    pub fn reserve_vars(&mut self, n: usize) {
        while self.assign.len() < n {
            let v = Var::from_index(self.assign.len());
            // A nonzero seed scatters initial phases so differently-seeded
            // portfolio racers explore different trajectories; seed 0 keeps
            // the legacy all-false start.
            let init_phase = self.config.seed != 0
                && splitmix64(self.config.seed ^ v.index() as u64) & 1 == 1;
            self.assign.push(UNASSIGNED);
            self.level.push(0);
            self.reason.push(None);
            self.activity.push(0.0);
            self.phase.push(init_phase);
            self.best_phase.push(init_phase);
            self.seen.push(false);
            self.watches.push(Vec::new());
            self.watches.push(Vec::new());
            self.order.grow(n);
            self.order.insert(v, &self.activity);
        }
    }

    /// Adds a clause; an empty clause makes the instance trivially UNSAT.
    ///
    /// Clauses may be added while the solver is at decision level zero —
    /// i.e. before the first solve or between [`Solver::solve_under`]
    /// calls — making the solver incrementally usable for families of
    /// related queries.
    ///
    /// # Panics
    ///
    /// Panics if called mid-search or on unallocated variables.
    pub fn add_clause(&mut self, lits: impl IntoIterator<Item = Lit>) {
        assert!(
            self.trail_lim.is_empty(),
            "clauses must be added before solving"
        );
        let mut clause: Vec<Lit> = lits.into_iter().collect();
        clause.sort_unstable();
        clause.dedup();
        if clause.windows(2).any(|w| w[0] == !w[1]) {
            return; // tautology
        }
        for l in &clause {
            assert!(
                l.var().index() < self.assign.len(),
                "literal {l} references an unallocated variable"
            );
        }
        // Simplify against the permanent level-0 assignment. This is load-
        // bearing for incremental use: a literal that was falsified (and
        // propagated) before this clause arrived will never be visited
        // again by the watch scheme, so watching it would leave the clause
        // dormant and let later models violate it.
        if clause.iter().any(|&l| self.value(l) == Some(true)) {
            return; // already satisfied forever
        }
        clause.retain(|&l| self.value(l).is_none());
        match clause.len() {
            0 => self.ok = false,
            1 => {
                // Unit at level 0.
                match self.value(clause[0]) {
                    Some(false) => self.ok = false,
                    Some(true) => {}
                    None => self.enqueue(clause[0], None),
                }
            }
            _ => {
                let ci = self.clauses.len() as u32;
                self.watch(clause[0], ci, clause[1]);
                self.watch(clause[1], ci, clause[0]);
                self.clauses.push(Clause {
                    lits: clause,
                    lbd: 0,
                    protected: false,
                });
            }
        }
    }

    fn watch(&mut self, l: Lit, clause: u32, blocker: Lit) {
        self.watches[l.code()].push(Watch { clause, blocker });
    }

    fn value(&self, l: Lit) -> Option<bool> {
        match self.assign[l.var().index()] {
            UNASSIGNED => None,
            v => Some(l.eval(v == 1)),
        }
    }

    fn decision_level(&self) -> u32 {
        self.trail_lim.len() as u32
    }

    fn enqueue(&mut self, l: Lit, reason: Option<u32>) {
        debug_assert_eq!(self.value(l), None);
        let v = l.var().index();
        self.assign[v] = i8::from(!l.is_neg());
        self.level[v] = self.decision_level();
        self.reason[v] = reason;
        self.trail.push(l);
    }

    /// Propagates all enqueued assignments; returns a conflicting clause
    /// index if one arises.
    fn propagate(&mut self) -> Option<u32> {
        while self.qhead < self.trail.len() {
            let p = self.trail[self.qhead];
            self.qhead += 1;
            self.stats.propagations += 1;
            let false_lit = !p;
            // Visit clauses watching the literal that just became false.
            let mut ws = std::mem::take(&mut self.watches[false_lit.code()]);
            let mut keep = 0usize;
            let mut conflict = None;
            let mut i = 0usize;
            while i < ws.len() {
                let w = ws[i];
                i += 1;
                if self.value(w.blocker) == Some(true) {
                    ws[keep] = w;
                    keep += 1;
                    continue;
                }
                let ci = w.clause as usize;
                // Normalize: the false literal goes to position 1.
                {
                    let lits = &mut self.clauses[ci].lits;
                    if lits[0] == false_lit {
                        lits.swap(0, 1);
                    }
                    debug_assert_eq!(lits[1], false_lit);
                }
                let first = self.clauses[ci].lits[0];
                if first != w.blocker && self.value(first) == Some(true) {
                    ws[keep] = Watch {
                        clause: w.clause,
                        blocker: first,
                    };
                    keep += 1;
                    continue;
                }
                // Look for a replacement watch.
                let mut replaced = false;
                for k in 2..self.clauses[ci].lits.len() {
                    let cand = self.clauses[ci].lits[k];
                    if self.value(cand) != Some(false) {
                        self.clauses[ci].lits.swap(1, k);
                        self.watch(cand, w.clause, first);
                        replaced = true;
                        break;
                    }
                }
                if replaced {
                    continue;
                }
                // Clause is unit or conflicting.
                ws[keep] = w;
                keep += 1;
                if self.value(first) == Some(false) {
                    // Conflict: retain remaining watches and bail out.
                    while i < ws.len() {
                        ws[keep] = ws[i];
                        keep += 1;
                        i += 1;
                    }
                    self.qhead = self.trail.len();
                    conflict = Some(w.clause);
                } else {
                    self.enqueue(first, Some(w.clause));
                }
            }
            ws.truncate(keep);
            self.watches[false_lit.code()] = ws;
            if conflict.is_some() {
                return conflict;
            }
        }
        None
    }

    fn bump_var(&mut self, v: Var) {
        self.activity[v.index()] += self.var_inc;
        if self.activity[v.index()] > 1e100 {
            for a in &mut self.activity {
                *a *= 1e-100;
            }
            self.var_inc *= 1e-100;
        }
        self.order.update(v, &self.activity);
    }

    fn decay_activities(&mut self) {
        self.var_inc /= 0.95;
    }

    /// First-UIP conflict analysis; returns the learnt clause (asserting
    /// literal first) and the backtrack level.
    fn analyze(&mut self, conflict: u32) -> (Vec<Lit>, u32) {
        let mut learnt: Vec<Lit> = vec![Lit(0)]; // slot 0 = asserting literal
        let mut path = 0usize;
        let mut p: Option<Lit> = None;
        let mut index = self.trail.len();
        let mut confl = conflict;
        loop {
            let start = usize::from(p.is_some());
            let lits: Vec<Lit> = self.clauses[confl as usize].lits[start..].to_vec();
            for q in lits {
                let v = q.var();
                if !self.seen[v.index()] && self.level[v.index()] > 0 {
                    self.seen[v.index()] = true;
                    self.bump_var(v);
                    if self.level[v.index()] >= self.decision_level() {
                        path += 1;
                    } else {
                        learnt.push(q);
                    }
                }
            }
            // Find the next marked literal on the trail.
            let pl = loop {
                index -= 1;
                let cand = self.trail[index];
                if self.seen[cand.var().index()] {
                    break cand;
                }
            };
            self.seen[pl.var().index()] = false;
            path -= 1;
            p = Some(pl);
            if path == 0 {
                break;
            }
            confl = self.reason[pl.var().index()].expect("non-decision must have a reason");
        }
        learnt[0] = !p.expect("analysis visits at least one literal");
        for l in &learnt[1..] {
            self.seen[l.var().index()] = false;
        }
        // Backtrack level: highest level among the non-asserting literals.
        let bt = if learnt.len() == 1 {
            0
        } else {
            // Move the max-level literal to slot 1 (it becomes the second watch).
            let mut max_i = 1;
            for i in 2..learnt.len() {
                if self.level[learnt[i].var().index()]
                    > self.level[learnt[max_i].var().index()]
                {
                    max_i = i;
                }
            }
            learnt.swap(1, max_i);
            self.level[learnt[1].var().index()]
        };
        (learnt, bt)
    }

    fn backtrack_to(&mut self, level: u32) {
        while self.decision_level() > level {
            let lim = self.trail_lim.pop().expect("level > 0");
            while self.trail.len() > lim {
                let l = self.trail.pop().expect("trail nonempty");
                let v = l.var();
                self.phase[v.index()] = !l.is_neg();
                self.assign[v.index()] = UNASSIGNED;
                self.reason[v.index()] = None;
                self.order.insert(v, &self.activity);
            }
        }
        // Clamp, don't jump: when nothing was popped (e.g. the defensive
        // backtrack at the start of a solve), pending level-0 enqueues must
        // still be propagated.
        self.qhead = self.qhead.min(self.trail.len());
    }

    fn record_learnt(&mut self, learnt: Vec<Lit>, lbd: u32) {
        if learnt.len() == 1 {
            self.enqueue(learnt[0], None);
            return;
        }
        let ci = self.clauses.len() as u32;
        self.watch(learnt[0], ci, learnt[1]);
        self.watch(learnt[1], ci, learnt[0]);
        let asserting = learnt[0];
        self.clauses.push(Clause {
            lits: learnt,
            lbd,
            protected: false,
        });
        self.enqueue(asserting, Some(ci));
    }

    /// Literal-block-distance of `lits`: the number of distinct decision
    /// levels its literals span. Computed at learn time, before
    /// backtracking.
    fn compute_lbd(&self, lits: &[Lit]) -> u32 {
        let mut levels: Vec<u32> =
            lits.iter().map(|l| self.level[l.var().index()]).collect();
        levels.sort_unstable();
        levels.dedup();
        levels.len() as u32
    }

    /// `true` when the clause is the reason of a currently assigned
    /// literal — deleting it would leave a dangling reason.
    fn is_locked(&self, ci: u32) -> bool {
        let lits = &self.clauses[ci as usize].lits;
        if lits.is_empty() {
            return false;
        }
        self.value(lits[0]) == Some(true)
            && self.reason[lits[0].var().index()] == Some(ci)
    }

    /// Deletes the worst half of the deletable learnt clauses (tiered
    /// retention). Must run at decision level 0 so no reason above the
    /// permanent trail can reference a deleted clause; locked clauses are
    /// skipped regardless.
    ///
    /// Tiers: LBD <= [`CORE_LBD`] is kept forever; LBD <= [`MID_LBD`]
    /// gets one reprieve (marked `protected` instead of deleted, fair
    /// game next time); everything else is deletable immediately, worst
    /// (highest-LBD, then oldest) first. Deletion tombstones the clause
    /// (clears its literals) and filters the watch lists — indices are
    /// never reused, so reasons and watches elsewhere stay valid.
    fn reduce_db(&mut self) {
        debug_assert_eq!(self.decision_level(), 0);
        let mut cands: Vec<(u32, u32)> = Vec::new();
        for ci in self.first_learnt..self.clauses.len() {
            let c = &self.clauses[ci];
            if c.lits.is_empty() || c.lbd <= CORE_LBD || self.is_locked(ci as u32) {
                continue;
            }
            cands.push((c.lbd, ci as u32));
        }
        // Worst first: highest LBD, oldest within a tie.
        cands.sort_unstable_by(|a, b| b.0.cmp(&a.0).then(a.1.cmp(&b.1)));
        let target = cands.len() / 2;
        let mut deleted = 0usize;
        for &(lbd, ci) in &cands {
            if deleted >= target {
                break;
            }
            let c = &mut self.clauses[ci as usize];
            if lbd <= MID_LBD && !c.protected {
                c.protected = true;
                continue;
            }
            c.lits = Vec::new();
            deleted += 1;
        }
        if deleted > 0 {
            self.learnt_tombstones += deleted;
            let clauses = &self.clauses;
            for ws in &mut self.watches {
                ws.retain(|w| !clauses[w.clause as usize].lits.is_empty());
            }
        }
        self.stats.db_reductions += 1;
        self.stats.learnt_deleted += deleted as u64;
    }

    /// Re-seeds saved phases, cycling through four modes: the best-trail
    /// snapshot (target phasing), no change (let the search drift), the
    /// inverted snapshot, and a seed-derived random assignment.
    fn rephase(&mut self) {
        self.stats.rephases += 1;
        let mode = self.rephase_count % 4;
        self.rephase_count += 1;
        match mode {
            0 => self.phase.copy_from_slice(&self.best_phase),
            1 => {}
            2 => {
                for (p, &b) in self.phase.iter_mut().zip(&self.best_phase) {
                    *p = !b;
                }
            }
            _ => {
                let round = self.rephase_count;
                for (i, p) in self.phase.iter_mut().enumerate() {
                    *p = splitmix64(
                        self.config.seed ^ (round << 32) ^ i as u64,
                    ) & 1
                        == 1;
                }
            }
        }
    }

    fn pick_branch(&mut self) -> Option<Var> {
        while let Some(v) = self.order.pop_max(&self.activity) {
            if self.assign[v.index()] == UNASSIGNED {
                return Some(v);
            }
        }
        None
    }

    /// Runs the CDCL search to completion (or to the conflict budget).
    ///
    /// Equivalent to [`Solver::solve_under`] with no assumptions. Note
    /// that once this returns `Unsat` the formula itself is contradictory
    /// and every later call also returns `Unsat`.
    pub fn solve(&mut self) -> SolveResult {
        self.solve_under(&[])
    }

    /// Runs the CDCL search under `assumptions`: literals forced true for
    /// this call only.
    ///
    /// The solver is reusable across calls — clauses learnt in one call
    /// are implied by the clause database alone and stay valid for
    /// different assumption sets, which makes repeated reachability
    /// queries (e.g. the SDC scan) incremental. `Unsat` here means
    /// *unsatisfiable together with the assumptions*; the solver stays
    /// usable afterwards unless the formula itself was refuted.
    ///
    /// The conflict budget, when set, applies per call.
    ///
    /// # Panics
    ///
    /// Panics if an assumption references an unallocated variable.
    pub fn solve_under(&mut self, assumptions: &[Lit]) -> SolveResult {
        if !odcfp_obs::enabled() {
            return self.solve_under_inner(assumptions);
        }
        let mut span = odcfp_obs::span("sat.solve");
        let before = self.stats.conflicts;
        let result = self.solve_under_inner(assumptions);
        let delta = self.stats.conflicts - before;
        span.field("conflicts", delta);
        span.field(
            "result",
            match result {
                SolveResult::Sat(_) => "sat",
                SolveResult::Unsat => "unsat",
                SolveResult::Unknown => "unknown",
            },
        );
        odcfp_obs::count("sat.conflicts", delta);
        result
    }

    fn solve_under_inner(&mut self, assumptions: &[Lit]) -> SolveResult {
        if !self.ok {
            return SolveResult::Unsat;
        }
        for a in assumptions {
            assert!(
                a.var().index() < self.assign.len(),
                "assumption {a} references an unallocated variable"
            );
        }
        self.backtrack_to(0);
        // The deepest-trail snapshot is assumption-relative; start fresh
        // each call (the snapshot itself carries over as a warm start).
        self.best_trail = 0;
        let start_conflicts = self.stats.conflicts;
        let mut luby_index = 0u32;
        let mut conflicts_until_restart = 100 * luby(luby_index);
        loop {
            if let Some(confl) = self.propagate() {
                self.stats.conflicts += 1;
                if self.decision_level() == 0 {
                    self.ok = false;
                    return SolveResult::Unsat;
                }
                // Target-phase snapshot: remember the polarities of the
                // deepest trail reached — the closest the search came to a
                // full assignment — as the rephasing anchor.
                if self.config.rephasing && self.trail.len() > self.best_trail {
                    self.best_trail = self.trail.len();
                    for (i, &a) in self.assign.iter().enumerate() {
                        if a != UNASSIGNED {
                            self.best_phase[i] = a == 1;
                        }
                    }
                }
                let (learnt, bt) = self.analyze(confl);
                let lbd = if self.config.lbd_tracking || self.config.db_reduction {
                    let d = self.compute_lbd(&learnt);
                    self.stats.lbd_sum += u64::from(d);
                    self.stats.lbd_samples += 1;
                    d
                } else {
                    0
                };
                // Chronological backtracking: when the backjump would
                // discard a long suffix of still-useful levels, step back
                // one level instead. The learnt clause is still unit there
                // (every non-asserting literal sits at a level <= bt), so
                // the asserting literal propagates exactly as it would
                // after the full jump. Unit learnts always go to level 0 —
                // a reason-less literal above level 0 would be
                // unanalyzable.
                let target = if self.config.chrono_backtrack
                    && learnt.len() >= 2
                    && self.decision_level() - bt > CHRONO_JUMP
                {
                    self.stats.chrono_backtracks += 1;
                    self.decision_level() - 1
                } else {
                    bt
                };
                self.backtrack_to(target);
                self.record_learnt(learnt, lbd);
                self.decay_activities();
                if let Some(budget) = self.max_conflicts {
                    if self.stats.conflicts - start_conflicts >= budget {
                        self.backtrack_to(0);
                        return SolveResult::Unknown;
                    }
                }
                // Amortize clock reads and interrupt polls over a batch
                // of conflicts.
                if (self.stats.conflicts - start_conflicts).is_multiple_of(64) {
                    let deadline_hit =
                        self.deadline.is_some_and(|d| Instant::now() >= d);
                    let interrupted = self
                        .interrupt
                        .as_ref()
                        .is_some_and(|f| f.load(Ordering::Acquire));
                    if deadline_hit || interrupted {
                        self.backtrack_to(0);
                        return SolveResult::Unknown;
                    }
                }
                if conflicts_until_restart > 0 {
                    conflicts_until_restart -= 1;
                } else {
                    self.stats.restarts += 1;
                    luby_index += 1;
                    conflicts_until_restart = 100 * luby(luby_index);
                    self.backtrack_to(0);
                    // Restart points are the safe moments for database
                    // maintenance: the trail holds only the permanent
                    // level-0 prefix.
                    if self.config.db_reduction {
                        let live = self
                            .clauses
                            .len()
                            .saturating_sub(self.first_learnt)
                            .saturating_sub(self.learnt_tombstones)
                            as u64;
                        if live >= self.reduce_limit {
                            self.reduce_db();
                            self.reduce_limit += REDUCE_GROWTH;
                        }
                    }
                    if self.config.rephasing && self.stats.conflicts >= self.next_rephase
                    {
                        self.rephase();
                        self.rephase_interval += self.rephase_interval / 2;
                        self.next_rephase = self.stats.conflicts + self.rephase_interval;
                    }
                }
            } else if (self.decision_level() as usize) < assumptions.len() {
                // Seat the next assumption as a decision.
                let a = assumptions[self.decision_level() as usize];
                match self.value(a) {
                    Some(true) => {
                        // Already implied: open an empty level so indexing
                        // into `assumptions` by decision level stays aligned.
                        self.trail_lim.push(self.trail.len());
                    }
                    Some(false) => {
                        // The database (plus earlier assumptions) refutes
                        // this assumption.
                        self.backtrack_to(0);
                        return SolveResult::Unsat;
                    }
                    None => {
                        self.trail_lim.push(self.trail.len());
                        self.enqueue(a, None);
                    }
                }
            } else {
                match self.pick_branch() {
                    None => {
                        let values = self.assign.iter().map(|&a| a == 1).collect();
                        self.backtrack_to(0);
                        let model = Model { values };
                        self.last_model = Some(model.clone());
                        return SolveResult::Sat(model);
                    }
                    Some(v) => {
                        self.stats.decisions += 1;
                        self.trail_lim.push(self.trail.len());
                        let phase = self.phase[v.index()];
                        self.enqueue(Lit::with_polarity(v, phase), None);
                    }
                }
            }
        }
    }
}

impl Default for Solver {
    fn default() -> Self {
        Solver::new()
    }
}

/// The Luby restart sequence: 1, 1, 2, 1, 1, 2, 4, ...
fn luby(i: u32) -> u64 {
    // Find the finite subsequence containing index i and its position.
    let mut k = 1u32;
    loop {
        if i + 1 == (1 << k) - 1 {
            return 1u64 << (k - 1);
        }
        if i + 1 < (1 << k) - 1 {
            return luby(i + 1 - (1 << (k - 1)));
        }
        k += 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn lit(i: i64) -> Lit {
        let v = Var::from_index((i.unsigned_abs() - 1) as usize);
        if i < 0 {
            Lit::neg(v)
        } else {
            Lit::pos(v)
        }
    }

    fn solver_with(num_vars: usize, clauses: &[&[i64]]) -> Solver {
        let mut s = Solver::new();
        s.reserve_vars(num_vars);
        for c in clauses {
            s.add_clause(c.iter().map(|&i| lit(i)));
        }
        s
    }

    #[test]
    fn luby_sequence() {
        let expect = [1u64, 1, 2, 1, 1, 2, 4, 1, 1, 2, 1, 1, 2, 4, 8];
        let got: Vec<u64> = (0..15).map(luby).collect();
        assert_eq!(got, expect);
    }

    #[test]
    fn trivial_sat_and_unsat() {
        let mut s = solver_with(1, &[&[1]]);
        assert!(matches!(s.solve(), SolveResult::Sat(_)));
        let mut s = solver_with(1, &[&[1], &[-1]]);
        assert_eq!(s.solve(), SolveResult::Unsat);
    }

    #[test]
    fn empty_formula_is_sat() {
        let mut s = solver_with(3, &[]);
        assert!(matches!(s.solve(), SolveResult::Sat(_)));
    }

    #[test]
    fn unit_chain_propagation() {
        // 1, 1->2, 2->3, 3->4 forces all true.
        let mut s = solver_with(4, &[&[1], &[-1, 2], &[-2, 3], &[-3, 4]]);
        match s.solve() {
            SolveResult::Sat(m) => {
                for i in 0..4 {
                    assert!(m.value(Var::from_index(i)), "x{i}");
                }
            }
            other => panic!("expected SAT: {other:?}"),
        }
    }

    #[test]
    fn model_satisfies_all_clauses() {
        let clauses: &[&[i64]] = &[
            &[1, 2, -3],
            &[-1, 3],
            &[-2, -3],
            &[2, 3],
            &[-1, -2, 3],
        ];
        let mut s = solver_with(3, clauses);
        match s.solve() {
            SolveResult::Sat(m) => {
                for c in clauses {
                    assert!(
                        c.iter().any(|&i| m.satisfies(lit(i))),
                        "clause {c:?} unsatisfied"
                    );
                }
            }
            other => panic!("expected SAT: {other:?}"),
        }
    }

    #[test]
    fn pigeonhole_3_into_2_unsat() {
        // p_{i,j}: pigeon i in hole j. Vars 1..=6 as (i*2 + j + 1).
        let p = |i: i64, j: i64| i * 2 + j + 1;
        let mut clauses: Vec<Vec<i64>> = Vec::new();
        for i in 0..3 {
            clauses.push(vec![p(i, 0), p(i, 1)]);
        }
        for j in 0..2 {
            for a in 0..3 {
                for b in (a + 1)..3 {
                    clauses.push(vec![-p(a, j), -p(b, j)]);
                }
            }
        }
        let refs: Vec<&[i64]> = clauses.iter().map(Vec::as_slice).collect();
        let mut s = solver_with(6, &refs);
        assert_eq!(s.solve(), SolveResult::Unsat);
    }

    #[test]
    fn pigeonhole_5_into_4_unsat() {
        let n = 5i64;
        let h = 4i64;
        let p = |i: i64, j: i64| i * h + j + 1;
        let mut clauses: Vec<Vec<i64>> = Vec::new();
        for i in 0..n {
            clauses.push((0..h).map(|j| p(i, j)).collect());
        }
        for j in 0..h {
            for a in 0..n {
                for b in (a + 1)..n {
                    clauses.push(vec![-p(a, j), -p(b, j)]);
                }
            }
        }
        let refs: Vec<&[i64]> = clauses.iter().map(Vec::as_slice).collect();
        let mut s = solver_with((n * h) as usize, &refs);
        assert_eq!(s.solve(), SolveResult::Unsat);
        assert!(s.stats().conflicts > 0);
    }

    #[test]
    fn random_3sat_matches_brute_force() {
        use odcfp_logic::rng::Xoshiro256;
        let mut rng = Xoshiro256::seed_from_u64(2024);
        for round in 0..60 {
            let num_vars = 3 + rng.next_below(8); // 3..=10
            let num_clauses = 2 + rng.next_below(5 * num_vars);
            let mut cnf = CnfBuilder::new();
            let vars = cnf.new_vars(num_vars);
            let mut raw: Vec<Vec<Lit>> = Vec::new();
            for _ in 0..num_clauses {
                let len = 1 + rng.next_below(3);
                let mut c = Vec::new();
                for _ in 0..len {
                    let v = vars[rng.next_below(num_vars)];
                    c.push(Lit::with_polarity(v, rng.next_bool()));
                }
                raw.push(c.clone());
                cnf.add_clause(c);
            }
            let brute_sat = (0..(1usize << num_vars)).any(|m| {
                let assignment: Vec<bool> =
                    (0..num_vars).map(|v| (m >> v) & 1 == 1).collect();
                cnf.eval(&assignment)
            });
            let mut s = Solver::from_cnf(&cnf);
            match s.solve() {
                SolveResult::Sat(model) => {
                    assert!(brute_sat, "round {round}: solver SAT, brute UNSAT");
                    for c in &raw {
                        assert!(
                            c.iter().any(|&l| model.satisfies(l)),
                            "round {round}: model violates {c:?}"
                        );
                    }
                }
                SolveResult::Unsat => {
                    assert!(!brute_sat, "round {round}: solver UNSAT, brute SAT");
                }
                SolveResult::Unknown => panic!("no budget set"),
            }
        }
    }

    #[test]
    fn conflict_budget_returns_unknown() {
        // A pigeonhole instance large enough to need > 1 conflict.
        let n = 6i64;
        let h = 5i64;
        let p = |i: i64, j: i64| i * h + j + 1;
        let mut clauses: Vec<Vec<i64>> = Vec::new();
        for i in 0..n {
            clauses.push((0..h).map(|j| p(i, j)).collect());
        }
        for j in 0..h {
            for a in 0..n {
                for b in (a + 1)..n {
                    clauses.push(vec![-p(a, j), -p(b, j)]);
                }
            }
        }
        let refs: Vec<&[i64]> = clauses.iter().map(Vec::as_slice).collect();
        let mut s = solver_with((n * h) as usize, &refs);
        s.set_conflict_budget(1);
        assert_eq!(s.solve(), SolveResult::Unknown);
    }

    #[test]
    fn decisions_counted_and_model_defaults() {
        let mut s = solver_with(4, &[&[1, 2], &[3, 4]]);
        match s.solve() {
            SolveResult::Sat(m) => {
                // Unconstrained extra variable defaults to false.
                assert!(!m.value(Var::from_index(100)));
            }
            other => panic!("{other:?}"),
        }
        assert!(s.stats().decisions > 0);
    }

    #[test]
    fn assumptions_restrict_without_poisoning() {
        // x1 free; assume !x1 then x1: both SAT; assume both -> caught.
        let mut s = solver_with(2, &[&[1, 2]]);
        assert!(matches!(s.solve_under(&[lit(-1)]), SolveResult::Sat(_)));
        assert!(matches!(s.solve_under(&[lit(1)]), SolveResult::Sat(_)));
        assert_eq!(s.solve_under(&[lit(1), lit(-1)]), SolveResult::Unsat);
        // The solver is still usable and the formula still satisfiable.
        assert!(matches!(s.solve(), SolveResult::Sat(_)));
    }

    #[test]
    fn unsat_under_assumptions_is_not_global_unsat() {
        // Formula forces x1; assuming !x1 is Unsat but only under the
        // assumption.
        let mut s = solver_with(2, &[&[1], &[-1, 2]]);
        assert_eq!(s.solve_under(&[lit(-1)]), SolveResult::Unsat);
        match s.solve() {
            SolveResult::Sat(m) => {
                assert!(m.value(Var::from_index(0)));
                assert!(m.value(Var::from_index(1)));
            }
            other => panic!("{other:?}"),
        }
        // Assumptions consistent with the formula succeed.
        assert!(matches!(s.solve_under(&[lit(2)]), SolveResult::Sat(_)));
    }

    #[test]
    fn repeated_assumption_queries_match_brute_force() {
        use odcfp_logic::rng::Xoshiro256;
        let mut rng = Xoshiro256::seed_from_u64(777);
        for round in 0..25 {
            let num_vars = 4 + rng.next_below(5);
            let num_clauses = 3 + rng.next_below(4 * num_vars);
            let mut cnf = CnfBuilder::new();
            let vars = cnf.new_vars(num_vars);
            for _ in 0..num_clauses {
                let len = 1 + rng.next_below(3);
                let mut c = Vec::new();
                for _ in 0..len {
                    c.push(Lit::with_polarity(
                        vars[rng.next_below(num_vars)],
                        rng.next_bool(),
                    ));
                }
                cnf.add_clause(c);
            }
            // One solver instance, many assumption queries.
            let mut solver = Solver::from_cnf(&cnf);
            for q in 0..8 {
                let k = rng.next_below(3);
                let mut assumptions = Vec::new();
                let mut used = Vec::new();
                for _ in 0..k {
                    let v = rng.next_below(num_vars);
                    if used.contains(&v) {
                        continue;
                    }
                    used.push(v);
                    assumptions.push(Lit::with_polarity(vars[v], rng.next_bool()));
                }
                let brute = (0..(1usize << num_vars)).any(|m| {
                    let assignment: Vec<bool> =
                        (0..num_vars).map(|v| (m >> v) & 1 == 1).collect();
                    cnf.eval(&assignment)
                        && assumptions.iter().all(|l| l.eval(assignment[l.var().index()]))
                });
                match solver.solve_under(&assumptions) {
                    SolveResult::Sat(model) => {
                        assert!(brute, "round {round} query {q}: solver SAT, brute UNSAT");
                        for a in &assumptions {
                            assert!(model.satisfies(*a), "assumption {a} violated");
                        }
                        let assignment: Vec<bool> =
                            (0..num_vars).map(|v| model.value(vars[v])).collect();
                        assert!(cnf.eval(&assignment), "model violates formula");
                    }
                    SolveResult::Unsat => {
                        assert!(!brute, "round {round} query {q}: solver UNSAT, brute SAT");
                    }
                    SolveResult::Unknown => panic!("no budget set"),
                }
            }
        }
    }

    #[test]
    fn clauses_added_after_solving_are_simplified_against_level_zero() {
        // Regression: a clause added between solves whose watched literal
        // was already falsified (and propagated) at level 0 must not go
        // dormant — the remaining literal has to propagate. Here x1 is
        // forced false by a unit; the late clause (x1 | x2) must force x2.
        let mut s = solver_with(3, &[&[-1]]);
        assert!(matches!(s.solve(), SolveResult::Sat(_)));
        s.add_clause([lit(1), lit(2)]);
        match s.solve() {
            SolveResult::Sat(m) => {
                assert!(!m.value(Var::from_index(0)));
                assert!(m.value(Var::from_index(1)), "late clause went dormant");
            }
            other => panic!("{other:?}"),
        }
        // And a late clause contradicting level 0 refutes the instance.
        s.add_clause([lit(1)]);
        assert_eq!(s.solve(), SolveResult::Unsat);
    }

    #[test]
    fn stats_populated() {
        let mut s = solver_with(3, &[&[1, 2], &[-1, 2], &[1, -2], &[-1, -2, 3]]);
        let _ = s.solve();
        let st = s.stats();
        assert!(st.propagations > 0);
    }

    /// Hand-built xor-chain miter CNF: two parity chains over the same
    /// inputs (one reversed), outputs constrained to differ — UNSAT, and
    /// proving it takes real search.
    fn xor_miter_cnf(width: usize) -> CnfBuilder {
        fn chain(cnf: &mut CnfBuilder, order: &[Var]) -> Var {
            let mut acc = order[0];
            for &x in &order[1..] {
                let t = cnf.new_var();
                cnf.add_clause([Lit::neg(t), Lit::pos(acc), Lit::pos(x)]);
                cnf.add_clause([Lit::neg(t), Lit::neg(acc), Lit::neg(x)]);
                cnf.add_clause([Lit::pos(t), Lit::pos(acc), Lit::neg(x)]);
                cnf.add_clause([Lit::pos(t), Lit::neg(acc), Lit::pos(x)]);
                acc = t;
            }
            acc
        }
        let mut cnf = CnfBuilder::new();
        let xs = cnf.new_vars(width);
        let a = chain(&mut cnf, &xs);
        let rev: Vec<Var> = xs.iter().rev().copied().collect();
        let b = chain(&mut cnf, &rev);
        cnf.add_clause([Lit::pos(a), Lit::pos(b)]);
        cnf.add_clause([Lit::neg(a), Lit::neg(b)]);
        cnf
    }

    #[test]
    fn every_profile_matches_brute_force_on_random_3sat() {
        use odcfp_logic::rng::Xoshiro256;
        let mut rng = Xoshiro256::seed_from_u64(4242);
        for round in 0..20 {
            let num_vars = 3 + rng.next_below(8);
            let num_clauses = 2 + rng.next_below(5 * num_vars);
            let mut cnf = CnfBuilder::new();
            let vars = cnf.new_vars(num_vars);
            for _ in 0..num_clauses {
                let len = 1 + rng.next_below(3);
                let mut c = Vec::new();
                for _ in 0..len {
                    c.push(Lit::with_polarity(
                        vars[rng.next_below(num_vars)],
                        rng.next_bool(),
                    ));
                }
                cnf.add_clause(c);
            }
            let brute_sat = (0..(1usize << num_vars)).any(|m| {
                let assignment: Vec<bool> =
                    (0..num_vars).map(|v| (m >> v) & 1 == 1).collect();
                cnf.eval(&assignment)
            });
            for (name, config) in SolverConfig::profiles() {
                for seed in [0u64, 7] {
                    let mut s =
                        Solver::from_cnf_with(&cnf, config.with_seed(seed));
                    match s.solve() {
                        SolveResult::Sat(model) => {
                            assert!(
                                brute_sat,
                                "round {round} {name} seed {seed}: SAT vs brute UNSAT"
                            );
                            let assignment: Vec<bool> = (0..num_vars)
                                .map(|v| model.value(vars[v]))
                                .collect();
                            assert!(cnf.eval(&assignment), "model violates formula");
                            // model_value reports the same assignment.
                            for (k, &v) in vars.iter().enumerate() {
                                assert_eq!(s.model_value(v), Some(assignment[k]));
                            }
                        }
                        SolveResult::Unsat => assert!(
                            !brute_sat,
                            "round {round} {name} seed {seed}: UNSAT vs brute SAT"
                        ),
                        SolveResult::Unknown => panic!("no budget set"),
                    }
                }
            }
        }
    }

    #[test]
    fn db_reduction_fires_and_search_stays_sound() {
        let cnf = xor_miter_cnf(40);
        let mut s = Solver::from_cnf_with(&cnf, SolverConfig::glucose());
        s.reduce_limit = 1; // force a reduction at every restart
        // Starve it first so the reduced database must survive a resume.
        s.set_conflict_budget(200);
        assert_eq!(s.solve(), SolveResult::Unknown);
        s.clear_limits();
        assert_eq!(s.solve(), SolveResult::Unsat);
        let st = s.stats();
        assert!(st.db_reductions > 0, "reduction never fired: {st:?}");
        assert!(st.learnt_deleted > 0, "nothing deleted: {st:?}");
        assert!(st.lbd_samples > 0 && st.avg_lbd() > 0.0);
    }

    #[test]
    fn rephasing_fires_and_search_stays_sound() {
        let cnf = xor_miter_cnf(12);
        let mut s = Solver::from_cnf_with(&cnf, SolverConfig::phased());
        s.next_rephase = 1;
        s.rephase_interval = 1;
        assert_eq!(s.solve(), SolveResult::Unsat);
        assert!(s.stats().rephases > 0, "rephasing never fired");
    }

    #[test]
    fn chrono_profile_agrees_on_deep_instances() {
        // Wide xor miters build trails deep enough for chronological
        // backtracking to be reachable; whatever it does, the verdict
        // must not change.
        for width in [12usize, 40, 120] {
            let cnf = xor_miter_cnf(width);
            let mut s = Solver::from_cnf_with(&cnf, SolverConfig::chrono());
            assert_eq!(s.solve(), SolveResult::Unsat, "width {width}");
        }
    }

    #[test]
    fn legacy_profile_reproduces_original_search_exactly() {
        // The legacy profile must be byte-identical to the pre-profile
        // solver: same conflicts, decisions, propagations, restarts on a
        // nontrivial proof.
        let cnf = xor_miter_cnf(11);
        let mut a = Solver::from_cnf_with(&cnf, SolverConfig::legacy());
        let mut b = Solver::from_cnf_with(&cnf, SolverConfig::legacy());
        assert_eq!(a.solve(), SolveResult::Unsat);
        assert_eq!(b.solve(), SolveResult::Unsat);
        assert_eq!(a.stats(), b.stats());
        let st = a.stats();
        assert_eq!(st.lbd_samples, 0, "legacy must not score LBD");
        assert_eq!(st.db_reductions, 0);
        assert_eq!(st.rephases, 0);
        assert_eq!(st.chrono_backtracks, 0);
    }
}
