//! Named solver configurations ("profiles").
//!
//! Every modern-CDCL heuristic the native backend implements is
//! independently switchable, so a configuration is a point in a small
//! feature cube plus a seed. Named profiles pin the points we care
//! about: `legacy` is the original MiniSat-1.x-era search (byte-for-byte
//! identical to the pre-profile solver), `modern` turns everything on
//! and is the default. The portfolio racer derives diverse members from
//! these profiles by varying the seed.

/// A native-backend configuration: which CDCL heuristics run, plus a
/// seed that perturbs initial phases for portfolio diversity.
///
/// `seed == 0` means "no perturbation" (all phases start `false`, like
/// the original solver); any other seed assigns pseudo-random initial
/// phases. All search behavior is a deterministic function of the
/// configuration and the formula.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct SolverConfig {
    /// Initial-phase seed (`0` = all-false phases, the legacy choice).
    pub seed: u64,
    /// Compute glucose-style literal-block-distance for learnt clauses.
    pub lbd_tracking: bool,
    /// Periodically delete low-value learnt clauses (tiered retention;
    /// implies LBD scoring of learnt clauses).
    pub db_reduction: bool,
    /// Periodically re-seed saved phases from the best-trail snapshot,
    /// its inverse, or the seed stream (target/best-phase rephasing).
    pub rephasing: bool,
    /// Backtrack chronologically (one level) instead of jumping when the
    /// computed backjump would discard more than a threshold of levels.
    pub chrono_backtrack: bool,
}

impl SolverConfig {
    /// The original solver: VSIDS + Luby restarts + phase saving only.
    /// Search is byte-for-byte identical to the pre-profile solver.
    pub const fn legacy() -> SolverConfig {
        SolverConfig {
            seed: 0,
            lbd_tracking: false,
            db_reduction: false,
            rephasing: false,
            chrono_backtrack: false,
        }
    }

    /// Every heuristic on: LBD tracking, tiered DB reduction, rephasing
    /// and chronological backtracking. The default profile.
    pub const fn modern() -> SolverConfig {
        SolverConfig {
            seed: 0,
            lbd_tracking: true,
            db_reduction: true,
            rephasing: true,
            chrono_backtrack: true,
        }
    }

    /// LBD tracking + tiered DB reduction only (the glucose core).
    pub const fn glucose() -> SolverConfig {
        SolverConfig {
            lbd_tracking: true,
            db_reduction: true,
            ..SolverConfig::legacy()
        }
    }

    /// Rephasing only, on top of the legacy search.
    pub const fn phased() -> SolverConfig {
        SolverConfig {
            rephasing: true,
            ..SolverConfig::legacy()
        }
    }

    /// Chronological backtracking only, on top of the legacy search.
    pub const fn chrono() -> SolverConfig {
        SolverConfig {
            chrono_backtrack: true,
            ..SolverConfig::legacy()
        }
    }

    /// Returns this config with a different phase seed.
    pub const fn with_seed(mut self, seed: u64) -> SolverConfig {
        self.seed = seed;
        self
    }

    /// Every named profile, for differential testing: verdicts must be
    /// identical across all of them on any formula.
    pub fn profiles() -> [(&'static str, SolverConfig); 5] {
        [
            ("legacy", SolverConfig::legacy()),
            ("modern", SolverConfig::modern()),
            ("glucose", SolverConfig::glucose()),
            ("phased", SolverConfig::phased()),
            ("chrono", SolverConfig::chrono()),
        ]
    }

    /// Looks a profile up by name (the `--solver-profile` values).
    pub fn from_profile(name: &str) -> Option<SolverConfig> {
        SolverConfig::profiles()
            .into_iter()
            .find(|(n, _)| *n == name)
            .map(|(_, c)| c)
    }

    /// The profile name this configuration matches (ignoring the seed),
    /// or `"custom"`.
    pub fn profile_name(&self) -> &'static str {
        let unseeded = self.with_seed(0);
        SolverConfig::profiles()
            .into_iter()
            .find(|(_, c)| *c == unseeded)
            .map(|(n, _)| n)
            .unwrap_or("custom")
    }

    /// The native-backend name this configuration reports through
    /// [`SatBackend::backend_name`](crate::SatBackend::backend_name).
    pub fn backend_name(&self) -> &'static str {
        match self.profile_name() {
            "legacy" => "cdcl-legacy",
            "modern" => "cdcl-modern",
            "glucose" => "cdcl-glucose",
            "phased" => "cdcl-phased",
            "chrono" => "cdcl-chrono",
            _ => "cdcl-custom",
        }
    }

    /// The member configuration for position `index` of a portfolio:
    /// position 0 races the base configuration unchanged, later positions
    /// cycle through the named profiles with distinct phase seeds so the
    /// racers explore genuinely different search trajectories.
    pub fn portfolio_member(base: SolverConfig, index: usize) -> SolverConfig {
        if index == 0 {
            return base;
        }
        let rotation = [
            SolverConfig::modern(),
            SolverConfig::glucose(),
            SolverConfig::chrono(),
            SolverConfig::phased(),
            SolverConfig::legacy(),
        ];
        let profile = rotation[(index - 1) % rotation.len()];
        profile.with_seed(splitmix64(index as u64))
    }
}

impl Default for SolverConfig {
    fn default() -> SolverConfig {
        SolverConfig::modern()
    }
}

/// The splitmix64 finalizer: a cheap, high-quality 64-bit mixer used to
/// derive phase bits and portfolio seeds deterministically.
pub(crate) fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn profiles_round_trip_by_name() {
        for (name, config) in SolverConfig::profiles() {
            assert_eq!(SolverConfig::from_profile(name), Some(config));
            assert_eq!(config.profile_name(), name);
        }
        assert_eq!(SolverConfig::from_profile("no-such-profile"), None);
    }

    #[test]
    fn default_is_modern() {
        assert_eq!(SolverConfig::default(), SolverConfig::modern());
        assert_eq!(SolverConfig::default().profile_name(), "modern");
    }

    #[test]
    fn seeded_profile_keeps_its_name() {
        let seeded = SolverConfig::glucose().with_seed(42);
        assert_eq!(seeded.profile_name(), "glucose");
        assert_eq!(seeded.seed, 42);
    }

    #[test]
    fn portfolio_members_are_diverse_and_deterministic() {
        let base = SolverConfig::modern();
        assert_eq!(SolverConfig::portfolio_member(base, 0), base);
        let members: Vec<SolverConfig> =
            (0..6).map(|i| SolverConfig::portfolio_member(base, i)).collect();
        let again: Vec<SolverConfig> =
            (0..6).map(|i| SolverConfig::portfolio_member(base, i)).collect();
        assert_eq!(members, again, "member derivation must be deterministic");
        for pair in members.windows(2) {
            assert_ne!(pair[0], pair[1], "adjacent members must differ");
        }
    }

    #[test]
    fn splitmix_spreads_small_inputs() {
        let a = splitmix64(1);
        let b = splitmix64(2);
        assert_ne!(a, b);
        assert_ne!(a & 1, 0xFFFF_FFFF_FFFF_FFFF); // smoke: not constant
    }
}
