//! Indexed max-heap over variable activities (the VSIDS order).

use crate::Var;

/// A binary max-heap of variables keyed by external activity scores, with
/// O(log n) insert/remove and O(1) membership tests.
#[derive(Debug, Clone, Default)]
pub(crate) struct VarHeap {
    /// Heap array of variable indices.
    heap: Vec<u32>,
    /// `position[v]` = index of `v` in `heap`, or `usize::MAX` if absent.
    position: Vec<usize>,
}

const ABSENT: usize = usize::MAX;

impl VarHeap {
    pub(crate) fn with_vars(n: usize) -> Self {
        VarHeap {
            heap: Vec::with_capacity(n),
            position: vec![ABSENT; n],
        }
    }

    #[cfg(test)]
    pub(crate) fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }

    pub(crate) fn contains(&self, v: Var) -> bool {
        self.position
            .get(v.index())
            .is_some_and(|&p| p != ABSENT)
    }

    pub(crate) fn grow(&mut self, n: usize) {
        if self.position.len() < n {
            self.position.resize(n, ABSENT);
        }
    }

    pub(crate) fn insert(&mut self, v: Var, activity: &[f64]) {
        if self.contains(v) {
            return;
        }
        self.grow(v.index() + 1);
        let i = self.heap.len();
        self.heap.push(v.0);
        self.position[v.index()] = i;
        self.sift_up(i, activity);
    }

    pub(crate) fn pop_max(&mut self, activity: &[f64]) -> Option<Var> {
        if self.heap.is_empty() {
            return None;
        }
        let top = self.heap[0];
        let last = self.heap.pop().expect("nonempty");
        self.position[top as usize] = ABSENT;
        if !self.heap.is_empty() {
            self.heap[0] = last;
            self.position[last as usize] = 0;
            self.sift_down(0, activity);
        }
        Some(Var(top))
    }

    /// Restores heap order for `v` after its activity increased.
    pub(crate) fn update(&mut self, v: Var, activity: &[f64]) {
        if let Some(&p) = self.position.get(v.index()) {
            if p != ABSENT {
                self.sift_up(p, activity);
            }
        }
    }

    fn sift_up(&mut self, mut i: usize, activity: &[f64]) {
        while i > 0 {
            let parent = (i - 1) / 2;
            if activity[self.heap[i] as usize] > activity[self.heap[parent] as usize] {
                self.swap(i, parent);
                i = parent;
            } else {
                break;
            }
        }
    }

    fn sift_down(&mut self, mut i: usize, activity: &[f64]) {
        loop {
            let l = 2 * i + 1;
            let r = 2 * i + 2;
            let mut best = i;
            if l < self.heap.len()
                && activity[self.heap[l] as usize] > activity[self.heap[best] as usize]
            {
                best = l;
            }
            if r < self.heap.len()
                && activity[self.heap[r] as usize] > activity[self.heap[best] as usize]
            {
                best = r;
            }
            if best == i {
                break;
            }
            self.swap(i, best);
            i = best;
        }
    }

    fn swap(&mut self, a: usize, b: usize) {
        self.heap.swap(a, b);
        self.position[self.heap[a] as usize] = a;
        self.position[self.heap[b] as usize] = b;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pops_in_activity_order() {
        let activity = [3.0, 1.0, 4.0, 1.5, 9.0];
        let mut h = VarHeap::with_vars(5);
        for i in 0..5 {
            h.insert(Var::from_index(i), &activity);
        }
        let order: Vec<usize> = std::iter::from_fn(|| h.pop_max(&activity))
            .map(Var::index)
            .collect();
        assert_eq!(order, vec![4, 2, 0, 3, 1]);
        assert!(h.is_empty());
    }

    #[test]
    fn reinsert_is_idempotent() {
        let activity = [1.0, 2.0];
        let mut h = VarHeap::with_vars(2);
        let v = Var::from_index(1);
        h.insert(v, &activity);
        h.insert(v, &activity);
        assert_eq!(h.pop_max(&activity), Some(v));
        assert_ne!(h.pop_max(&activity), Some(v));
    }

    #[test]
    fn update_after_bump() {
        let mut activity = [1.0, 2.0, 3.0];
        let mut h = VarHeap::with_vars(3);
        for i in 0..3 {
            h.insert(Var::from_index(i), &activity);
        }
        activity[0] = 10.0;
        h.update(Var::from_index(0), &activity);
        assert_eq!(h.pop_max(&activity), Some(Var::from_index(0)));
    }

    #[test]
    fn contains_tracks_membership() {
        let activity = [1.0];
        let mut h = VarHeap::with_vars(1);
        let v = Var::from_index(0);
        assert!(!h.contains(v));
        h.insert(v, &activity);
        assert!(h.contains(v));
        h.pop_max(&activity);
        assert!(!h.contains(v));
    }
}
