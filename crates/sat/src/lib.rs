//! A CDCL SAT solver and combinational equivalence checking.
//!
//! The fingerprinting method's central safety claim is that every
//! modification leaves the circuit function unchanged. This crate provides
//! the machinery to *prove* that claim for each fingerprinted copy:
//!
//! * [`Solver`] — a conflict-driven clause-learning SAT solver with
//!   two-literal watching, VSIDS branching, phase saving, first-UIP clause
//!   learning and Luby restarts;
//! * [`tseitin`] — Tseitin encoding of a gate-level
//!   [`Netlist`](odcfp_netlist::Netlist) into CNF;
//! * [`check_equivalence`] — miter-based combinational equivalence checking
//!   between two netlists, returning either a proof of equivalence or a
//!   concrete counterexample input assignment;
//! * [`probably_equivalent`] — the fast 64-way random-simulation pre-check
//!   used before invoking the full decision procedure.
//!
//! # Example
//!
//! ```
//! use odcfp_sat::{CnfBuilder, Lit, Solver, SolveResult};
//!
//! let mut cnf = CnfBuilder::new();
//! let a = cnf.new_var();
//! let b = cnf.new_var();
//! cnf.add_clause([Lit::pos(a), Lit::pos(b)]);
//! cnf.add_clause([Lit::neg(a)]);
//! let mut solver = Solver::from_cnf(&cnf);
//! match solver.solve() {
//!     SolveResult::Sat(model) => {
//!         assert!(!model.value(a));
//!         assert!(model.value(b));
//!     }
//!     other => panic!("expected SAT, got {other:?}"),
//! }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod backend;
mod cnf;
mod config;
mod dimacs;
mod equiv;
mod heap;
mod lit;
pub mod portfolio;
pub mod shared;
mod solver;
pub mod sweep;
pub mod tseitin;

pub use backend::{backend_from_cnf, build_backend, SatBackend};
pub use cnf::CnfBuilder;
pub use config::SolverConfig;
pub use dimacs::{parse_dimacs, ParseDimacsError};
pub use equiv::{check_equivalence, probably_equivalent, EquivError, EquivResult, Miter, MiterOutcome};
pub use lit::{Lit, Var};
pub use portfolio::{RaceOptions, RaceReport, RacerReport};
pub use shared::{SelectableInput, SelectableVariant, SharedMiter, VariantId};
pub use solver::{Model, SolveResult, Solver, SolverStats};
pub use sweep::{SweepEngine, SweepOptions, SweepReport};
