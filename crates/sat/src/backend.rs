//! The pluggable incremental-SAT backend interface.
//!
//! Every equivalence question in the workspace — the verify ladder's
//! cold miter, [`SweepEngine`](crate::SweepEngine) cut-point validation,
//! [`SharedMiter`](crate::SharedMiter) buyer probes and code-space
//! proofs — bottoms out in one incremental solver. [`SatBackend`] is the
//! seam between those consumers and the solver implementation: a small
//! incremental interface (fresh variables, clause addition, solving
//! under assumptions, model readback, budgets and cancellation) that the
//! native CDCL [`Solver`] implements for every [`SolverConfig`] profile,
//! and that alternative backends can slot into without touching the
//! consumers.

use std::fmt::Debug;
use std::sync::atomic::AtomicBool;
use std::sync::Arc;
use std::time::Instant;

use crate::tseitin::ClauseSink;
use crate::{CnfBuilder, Lit, SolveResult, Solver, SolverConfig, SolverStats, Var};

/// An incremental SAT solver usable by the miter, sweep and shared-miter
/// engines.
///
/// The contract mirrors the solver it abstracts: clauses may be added at
/// decision level zero between [`solve_under`](SatBackend::solve_under)
/// calls, learnt knowledge persists across calls, `Unsat` under
/// assumptions does not poison later queries, and budgets apply per
/// call. Verdicts must depend only on the formula and the assumptions —
/// never on wall-clock time or thread scheduling — except through the
/// explicitly non-deterministic escape hatches (deadline, interrupt).
pub trait SatBackend: Debug + Send {
    /// A short name identifying the backend and its configuration
    /// (e.g. `"cdcl-modern"`), surfaced by portfolio racing and
    /// `verify --stats`.
    fn backend_name(&self) -> &'static str;

    /// The configuration this backend runs under.
    fn config(&self) -> &SolverConfig;

    /// Allocates and returns a fresh variable.
    fn new_var(&mut self) -> Var;

    /// Ensures variables `0..n` exist.
    fn reserve_vars(&mut self, n: usize);

    /// The number of allocated variables.
    fn num_vars(&self) -> usize;

    /// The number of problem (non-learnt) clauses loaded.
    fn num_problem_clauses(&self) -> usize;

    /// Marks every clause added so far as a problem clause (see
    /// [`Solver::rebase_problem_clauses`]).
    fn rebase_problem_clauses(&mut self);

    /// Adds a clause over already-allocated variables.
    fn add_clause(&mut self, lits: &[Lit]);

    /// Runs the search under `assumptions` (forced true for this call
    /// only).
    fn solve_under(&mut self, assumptions: &[Lit]) -> SolveResult;

    /// The value `v` took in the most recent satisfying assignment, or
    /// `None` when no `Sat` result has been produced yet.
    fn model_value(&self, v: Var) -> Option<bool>;

    /// Limits the next solve calls to `conflicts` conflicts each.
    fn set_conflict_budget(&mut self, conflicts: u64);

    /// Aborts solve calls once `deadline` passes.
    fn set_deadline(&mut self, deadline: Instant);

    /// Removes any conflict budget and deadline (the interrupt flag stays
    /// armed).
    fn clear_limits(&mut self);

    /// Arms a cooperative interrupt flag (see [`Solver::set_interrupt`]).
    fn set_interrupt(&mut self, flag: Arc<AtomicBool>);

    /// Disarms the cooperative interrupt flag.
    fn clear_interrupt(&mut self);

    /// Search statistics so far.
    fn stats(&self) -> SolverStats;

    /// Runs the search with no assumptions.
    fn solve(&mut self) -> SolveResult {
        self.solve_under(&[])
    }
}

impl SatBackend for Solver {
    fn backend_name(&self) -> &'static str {
        self.config().backend_name()
    }

    fn config(&self) -> &SolverConfig {
        Solver::config(self)
    }

    fn new_var(&mut self) -> Var {
        let n = Solver::num_vars(self);
        Solver::reserve_vars(self, n + 1);
        Var::from_index(n)
    }

    fn reserve_vars(&mut self, n: usize) {
        Solver::reserve_vars(self, n);
    }

    fn num_vars(&self) -> usize {
        Solver::num_vars(self)
    }

    fn num_problem_clauses(&self) -> usize {
        Solver::num_problem_clauses(self)
    }

    fn rebase_problem_clauses(&mut self) {
        Solver::rebase_problem_clauses(self);
    }

    fn add_clause(&mut self, lits: &[Lit]) {
        Solver::add_clause(self, lits.iter().copied());
    }

    fn solve_under(&mut self, assumptions: &[Lit]) -> SolveResult {
        Solver::solve_under(self, assumptions)
    }

    fn model_value(&self, v: Var) -> Option<bool> {
        Solver::model_value(self, v)
    }

    fn set_conflict_budget(&mut self, conflicts: u64) {
        Solver::set_conflict_budget(self, conflicts);
    }

    fn set_deadline(&mut self, deadline: Instant) {
        Solver::set_deadline(self, deadline);
    }

    fn clear_limits(&mut self) {
        Solver::clear_limits(self);
    }

    fn set_interrupt(&mut self, flag: Arc<AtomicBool>) {
        Solver::set_interrupt(self, flag);
    }

    fn clear_interrupt(&mut self) {
        Solver::clear_interrupt(self);
    }

    fn stats(&self) -> SolverStats {
        Solver::stats(self)
    }
}

/// Tseitin clauses can be emitted straight into any backend.
impl ClauseSink for dyn SatBackend + '_ {
    fn fresh_var(&mut self) -> Var {
        self.new_var()
    }
    fn emit(&mut self, lits: &[Lit]) {
        self.add_clause(lits);
    }
}

/// Builds an empty backend for `config` (the native CDCL solver — the
/// only backend implementation today, but the one seam consumers go
/// through).
pub fn build_backend(config: SolverConfig) -> Box<dyn SatBackend> {
    Box::new(Solver::with_config(config))
}

/// Builds a backend for `config` loaded with the formula in `cnf`.
pub fn backend_from_cnf(cnf: &CnfBuilder, config: SolverConfig) -> Box<dyn SatBackend> {
    Box::new(Solver::from_cnf_with(cnf, config))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn backend_round_trips_a_tiny_formula() {
        let mut b = build_backend(SolverConfig::modern());
        let x = b.new_var();
        let y = b.new_var();
        b.add_clause(&[Lit::pos(x), Lit::pos(y)]);
        b.add_clause(&[Lit::neg(x)]);
        assert_eq!(b.num_vars(), 2);
        assert_eq!(b.backend_name(), "cdcl-modern");
        match b.solve() {
            SolveResult::Sat(m) => {
                assert!(!m.value(x));
                assert!(m.value(y));
            }
            other => panic!("expected SAT: {other:?}"),
        }
        assert_eq!(b.model_value(x), Some(false));
        assert_eq!(b.model_value(y), Some(true));
        // Unsat under an assumption does not poison the instance.
        assert_eq!(b.solve_under(&[Lit::pos(x)]), SolveResult::Unsat);
        assert!(matches!(b.solve(), SolveResult::Sat(_)));
    }

    #[test]
    fn backend_as_clause_sink_allocates_and_emits() {
        let mut b = build_backend(SolverConfig::legacy());
        let sink: &mut dyn SatBackend = &mut *b;
        let v = ClauseSink::fresh_var(sink);
        ClauseSink::emit(sink, &[Lit::pos(v)]);
        assert_eq!(b.num_vars(), 1);
        assert!(matches!(b.solve(), SolveResult::Sat(_)));
        assert_eq!(b.model_value(v), Some(true));
    }
}
