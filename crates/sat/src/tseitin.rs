//! Tseitin encoding of gate-level netlists into CNF.

use odcfp_logic::PrimitiveFn;
use odcfp_netlist::{NetDriver, NetId, Netlist};

use crate::{CnfBuilder, Lit, Solver, Var};

/// A receiver of Tseitin clauses: either an offline [`CnfBuilder`] or a
/// live incremental [`Solver`] (used by the SAT-sweeping engine and the
/// shared per-buyer miter, which encode straight into a running solver).
pub trait ClauseSink {
    /// Allocates a fresh variable.
    fn fresh_var(&mut self) -> Var;
    /// Adds a clause.
    fn emit(&mut self, lits: &[Lit]);
}

impl ClauseSink for CnfBuilder {
    fn fresh_var(&mut self) -> Var {
        self.new_var()
    }
    fn emit(&mut self, lits: &[Lit]) {
        self.add_clause(lits.iter().copied());
    }
}

impl ClauseSink for Solver {
    fn fresh_var(&mut self) -> Var {
        let n = self.num_vars();
        self.reserve_vars(n + 1);
        Var::from_index(n)
    }
    fn emit(&mut self, lits: &[Lit]) {
        self.add_clause(lits.iter().copied());
    }
}

impl<S: ClauseSink + ?Sized> ClauseSink for &mut S {
    fn fresh_var(&mut self) -> Var {
        (**self).fresh_var()
    }
    fn emit(&mut self, lits: &[Lit]) {
        (**self).emit(lits);
    }
}

impl<S: ClauseSink + ?Sized> ClauseSink for Box<S> {
    fn fresh_var(&mut self) -> Var {
        (**self).fresh_var()
    }
    fn emit(&mut self, lits: &[Lit]) {
        (**self).emit(lits);
    }
}

/// The CNF image of a netlist: one variable per net.
#[derive(Debug, Clone)]
pub struct Encoding {
    /// `vars[net.index()]` is the CNF variable carrying that net's value.
    vars: Vec<Var>,
}

impl Encoding {
    /// The variable encoding `net`.
    pub fn var(&self, net: NetId) -> Var {
        self.vars[net.index()]
    }
}

/// Encodes every gate of `netlist` into `cnf`, allocating one variable per
/// net. Constant nets become unit clauses; primary inputs are left
/// unconstrained.
///
/// Gates are emitted in the netlist's memoized topological order
/// ([`Netlist::cached_topo`]) so repeated encodings — one miter per buyer
/// in a campaign — do not re-run Kahn's algorithm, and the clause order
/// follows data flow (definitions precede uses) for better solver locality.
/// Variable numbering is unaffected: variables are allocated per net, in
/// net-id order, before any gate clause is added.
///
/// # Panics
///
/// Panics if the netlist contains an undriven net or a combinational cycle
/// (validate first).
pub fn encode_netlist(cnf: &mut CnfBuilder, netlist: &Netlist) -> Encoding {
    let vars: Vec<Var> = (0..netlist.num_nets()).map(|_| cnf.new_var()).collect();
    let enc = Encoding { vars };
    for (id, net) in netlist.nets() {
        match net.driver() {
            NetDriver::PrimaryInput => {}
            NetDriver::Const(v) => {
                cnf.add_clause([Lit::with_polarity(enc.var(id), v)]);
            }
            NetDriver::Gate(_) => {}
            NetDriver::None => panic!("undriven net {id} cannot be encoded"),
        }
    }
    let order = netlist.cached_topo().expect("cyclic netlist");
    let mut ins: Vec<Var> = Vec::new();
    for &g in order {
        let gate = netlist.gate(g);
        let f = netlist.library().cell(gate.cell()).function();
        let out = enc.var(gate.output());
        ins.clear();
        ins.extend(gate.inputs().iter().map(|&n| enc.var(n)));
        encode_gate(cnf, f, out, &ins);
    }
    enc
}

/// Adds clauses asserting `out == f(ins)`.
///
/// # Panics
///
/// Panics if `ins.len()` is not a legal arity for `f`.
pub fn encode_gate<S: ClauseSink>(sink: &mut S, f: PrimitiveFn, out: Var, ins: &[Var]) {
    assert!(ins.len() >= f.min_arity(), "arity too small for {f}");
    match f {
        PrimitiveFn::Buf => {
            sink.emit(&[Lit::neg(out), Lit::pos(ins[0])]);
            sink.emit(&[Lit::pos(out), Lit::neg(ins[0])]);
        }
        PrimitiveFn::Inv => {
            sink.emit(&[Lit::neg(out), Lit::neg(ins[0])]);
            sink.emit(&[Lit::pos(out), Lit::pos(ins[0])]);
        }
        PrimitiveFn::And => encode_and_plane(sink, out, ins, false),
        PrimitiveFn::Nand => encode_and_plane(sink, out, ins, true),
        PrimitiveFn::Or => encode_or_plane(sink, out, ins, false),
        PrimitiveFn::Nor => encode_or_plane(sink, out, ins, true),
        PrimitiveFn::Xor => encode_parity(sink, out, ins, false),
        PrimitiveFn::Xnor => encode_parity(sink, out, ins, true),
    }
}

/// `out == AND(ins)` (or NAND when `invert`).
fn encode_and_plane<S: ClauseSink>(sink: &mut S, out: Var, ins: &[Var], invert: bool) {
    let o = |polarity: bool| Lit::with_polarity(out, polarity != invert);
    // out -> each input.
    for &i in ins {
        sink.emit(&[o(false), Lit::pos(i)]);
    }
    // all inputs -> out.
    let mut big: Vec<Lit> = ins.iter().map(|&i| Lit::neg(i)).collect();
    big.push(o(true));
    sink.emit(&big);
}

/// `out == OR(ins)` (or NOR when `invert`).
fn encode_or_plane<S: ClauseSink>(sink: &mut S, out: Var, ins: &[Var], invert: bool) {
    let o = |polarity: bool| Lit::with_polarity(out, polarity != invert);
    // each input -> out.
    for &i in ins {
        sink.emit(&[o(true), Lit::neg(i)]);
    }
    // out -> some input.
    let mut big: Vec<Lit> = ins.iter().map(|&i| Lit::pos(i)).collect();
    big.push(o(false));
    sink.emit(&big);
}

/// `out == XOR(ins)` (or XNOR when `invert`), chaining pairwise through
/// auxiliary variables.
fn encode_parity<S: ClauseSink>(sink: &mut S, out: Var, ins: &[Var], invert: bool) {
    // XNOR(x1..xn) = (!x1) ^ x2 ^ ... ^ xn, so complement the accumulator on
    // the final link when inverting.
    let mut acc = ins[0];
    for (k, &b) in ins.iter().enumerate().skip(1) {
        let is_last = k + 1 == ins.len();
        let target = if is_last { out } else { sink.fresh_var() };
        encode_xor2(sink, target, acc, invert && is_last, b);
        acc = target;
    }
}

/// `t == a ^ b`, with `a` complemented when `a_inv`.
fn encode_xor2<S: ClauseSink>(sink: &mut S, t: Var, a: Var, a_inv: bool, b: Var) {
    let la = |pol: bool| Lit::with_polarity(a, pol != a_inv);
    sink.emit(&[Lit::neg(t), la(true), Lit::pos(b)]);
    sink.emit(&[Lit::neg(t), la(false), Lit::neg(b)]);
    sink.emit(&[Lit::pos(t), la(true), Lit::neg(b)]);
    sink.emit(&[Lit::pos(t), la(false), Lit::pos(b)]);
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{SolveResult, Solver};
    use odcfp_netlist::CellLibrary;

    /// Exhaustively checks that the CNF relation {out, ins} matches `f`.
    fn check_gate(f: PrimitiveFn, arity: usize) {
        for row in 0..(1usize << arity) {
            let ins_bits: Vec<bool> = (0..arity).map(|v| (row >> v) & 1 == 1).collect();
            let expect = f.eval(&ins_bits);
            for out_bit in [false, true] {
                let mut cnf = CnfBuilder::new();
                let out = cnf.new_var();
                let ins = cnf.new_vars(arity);
                encode_gate(&mut cnf, f, out, &ins);
                for (v, &bit) in ins.iter().zip(&ins_bits) {
                    cnf.add_clause([Lit::with_polarity(*v, bit)]);
                }
                cnf.add_clause([Lit::with_polarity(out, out_bit)]);
                let mut s = Solver::from_cnf(&cnf);
                let sat = matches!(s.solve(), SolveResult::Sat(_));
                assert_eq!(
                    sat,
                    out_bit == expect,
                    "{f} arity {arity} row {row} out {out_bit}"
                );
            }
        }
    }

    #[test]
    fn all_gate_encodings_correct() {
        for f in PrimitiveFn::ALL {
            let arities: &[usize] = if f.is_single_input() {
                &[1]
            } else {
                &[2, 3, 4, 5]
            };
            for &n in arities {
                check_gate(f, n);
            }
        }
    }

    #[test]
    fn netlist_encoding_matches_simulation() {
        let lib = CellLibrary::standard();
        let mut n = Netlist::new("enc", lib);
        let a = n.add_primary_input("a");
        let b = n.add_primary_input("b");
        let c = n.add_primary_input("c");
        let one = n.add_constant("one", true);
        let and2 = n.library().cell_for(PrimitiveFn::And, 2).unwrap();
        let xor2 = n.library().cell_for(PrimitiveFn::Xor, 2).unwrap();
        let nor2 = n.library().cell_for(PrimitiveFn::Nor, 2).unwrap();
        let g1 = n.add_gate("g1", and2, &[a, one]);
        let g2 = n.add_gate("g2", xor2, &[n.gate_output(g1), b]);
        let g3 = n.add_gate("g3", nor2, &[n.gate_output(g2), c]);
        n.set_primary_output(n.gate_output(g3));
        n.validate().unwrap();

        for row in 0..8usize {
            let bits: Vec<bool> = (0..3).map(|v| (row >> v) & 1 == 1).collect();
            let expect = n.eval(&bits)[0];
            let mut cnf = CnfBuilder::new();
            let enc = encode_netlist(&mut cnf, &n);
            for (k, &pi) in n.primary_inputs().iter().enumerate() {
                cnf.add_clause([Lit::with_polarity(enc.var(pi), bits[k])]);
            }
            let po = n.primary_outputs()[0];
            // Assert the *wrong* output value: must be UNSAT.
            cnf.add_clause([Lit::with_polarity(enc.var(po), !expect)]);
            let mut s = Solver::from_cnf(&cnf);
            assert_eq!(s.solve(), SolveResult::Unsat, "row {row}");
        }
    }
}
