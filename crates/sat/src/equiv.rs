//! Miter-based combinational equivalence checking.

use std::fmt;
use std::time::Instant;

use odcfp_logic::rng::Xoshiro256;
use odcfp_logic::sim;
use odcfp_netlist::Netlist;

use crate::portfolio::{self, RaceOptions, RaceReport};
use crate::tseitin::encode_netlist;
use crate::{backend_from_cnf, CnfBuilder, Lit, SatBackend, SolveResult, SolverConfig, Var};

/// Why two netlists could not be compared.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum EquivError {
    /// The primary input counts differ.
    InputCountMismatch {
        /// PI count of the left netlist.
        left: usize,
        /// PI count of the right netlist.
        right: usize,
    },
    /// The primary output counts differ.
    OutputCountMismatch {
        /// PO count of the left netlist.
        left: usize,
        /// PO count of the right netlist.
        right: usize,
    },
    /// The SAT solver exhausted its conflict budget.
    BudgetExhausted,
}

impl fmt::Display for EquivError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EquivError::InputCountMismatch { left, right } => {
                write!(f, "primary input counts differ: {left} vs {right}")
            }
            EquivError::OutputCountMismatch { left, right } => {
                write!(f, "primary output counts differ: {left} vs {right}")
            }
            EquivError::BudgetExhausted => write!(f, "SAT conflict budget exhausted"),
        }
    }
}

impl std::error::Error for EquivError {}

/// The verdict of [`check_equivalence`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum EquivResult {
    /// The circuits compute identical functions (proved by UNSAT).
    Equivalent,
    /// A concrete primary-input assignment on which the outputs differ.
    Counterexample(Vec<bool>),
}

/// Proves or refutes combinational equivalence of two netlists by building a
/// miter (shared inputs by position, XOR-compared outputs by position) and
/// solving it.
///
/// Primary inputs and outputs are matched **by position**, which is the
/// natural convention here: fingerprinted copies are clones of a base
/// netlist, so positions always agree.
///
/// # Errors
///
/// Returns an error if the interfaces don't match or `conflict_budget`
/// (if `Some`) is exhausted before a verdict.
///
/// # Example
///
/// ```
/// use odcfp_netlist::{CellLibrary, Netlist};
/// use odcfp_sat::{check_equivalence, EquivResult};
/// use odcfp_logic::PrimitiveFn;
///
/// let lib = CellLibrary::standard();
/// let mut build = |f: PrimitiveFn| {
///     let mut n = Netlist::new("m", lib.clone());
///     let a = n.add_primary_input("a");
///     let b = n.add_primary_input("b");
///     let c = n.library().cell_for(f, 2).unwrap();
///     let g = n.add_gate("g", c, &[a, b]);
///     n.set_primary_output(n.gate_output(g));
///     n
/// };
/// let nand = build(PrimitiveFn::Nand);
/// let also_nand = build(PrimitiveFn::Nand);
/// let nor = build(PrimitiveFn::Nor);
/// assert_eq!(check_equivalence(&nand, &also_nand, None)?, EquivResult::Equivalent);
/// assert!(matches!(
///     check_equivalence(&nand, &nor, None)?,
///     EquivResult::Counterexample(_)
/// ));
/// # Ok::<(), odcfp_sat::EquivError>(())
/// ```
pub fn check_equivalence(
    left: &Netlist,
    right: &Netlist,
    conflict_budget: Option<u64>,
) -> Result<EquivResult, EquivError> {
    let mut miter = Miter::build(left, right)?;
    match miter.solve(conflict_budget, None) {
        MiterOutcome::Equivalent => Ok(EquivResult::Equivalent),
        MiterOutcome::Counterexample(inputs) => Ok(EquivResult::Counterexample(inputs)),
        MiterOutcome::Undecided => Err(EquivError::BudgetExhausted),
    }
}

/// The outcome of one [`Miter::solve`] attempt.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum MiterOutcome {
    /// The circuits compute identical functions (proved by UNSAT).
    Equivalent,
    /// A concrete primary-input assignment on which the outputs differ.
    Counterexample(Vec<bool>),
    /// The budget or deadline ran out; call [`Miter::solve`] again with a
    /// larger budget to continue where the search left off.
    Undecided,
}

/// An incremental equivalence miter: built once, solvable repeatedly under
/// escalating conflict budgets.
///
/// Learnt clauses are retained inside the embedded [`SatBackend`](crate::SatBackend) across
/// [`Miter::solve`] calls, so a retry with a larger budget resumes from the
/// accumulated knowledge of earlier attempts rather than starting over.
/// This is the engine behind budget-escalation verification policies.
///
/// # Example
///
/// ```
/// use odcfp_netlist::{CellLibrary, Netlist};
/// use odcfp_sat::{Miter, MiterOutcome};
/// use odcfp_logic::PrimitiveFn;
///
/// let lib = CellLibrary::standard();
/// let build = || {
///     let mut n = Netlist::new("m", lib.clone());
///     let a = n.add_primary_input("a");
///     let b = n.add_primary_input("b");
///     let c = n.library().cell_for(PrimitiveFn::Nand, 2).unwrap();
///     let g = n.add_gate("g", c, &[a, b]);
///     n.set_primary_output(n.gate_output(g));
///     n
/// };
/// let (left, right) = (build(), build());
/// let mut miter = Miter::build(&left, &right)?;
/// assert_eq!(miter.solve(None, None), MiterOutcome::Equivalent);
/// # Ok::<(), odcfp_sat::EquivError>(())
/// ```
#[derive(Debug)]
pub struct Miter {
    solver: Box<dyn SatBackend>,
    /// The miter formula, kept so [`Miter::race`] can load fresh portfolio
    /// backends on the exact same CNF.
    cnf: CnfBuilder,
    input_vars: Vec<Var>,
    trivially_equivalent: bool,
    conflicts_spent: u64,
    race_conflicts: u64,
    last_race: Option<RaceReport>,
}

impl Miter {
    /// Builds the miter with the default [`SolverConfig`]; see
    /// [`Miter::build_with`].
    ///
    /// # Errors
    ///
    /// Returns an error if the interfaces don't match.
    pub fn build(left: &Netlist, right: &Netlist) -> Result<Self, EquivError> {
        Miter::build_with(left, right, SolverConfig::default())
    }

    /// Builds the miter CNF over `left` and `right` (shared inputs by
    /// position, XOR-compared outputs by position) on a backend running
    /// `config`.
    ///
    /// Primary inputs and outputs are matched **by position**, which is the
    /// natural convention here: fingerprinted copies are clones of a base
    /// netlist, so positions always agree.
    ///
    /// # Errors
    ///
    /// Returns an error if the interfaces don't match.
    pub fn build_with(
        left: &Netlist,
        right: &Netlist,
        config: SolverConfig,
    ) -> Result<Self, EquivError> {
        if left.primary_inputs().len() != right.primary_inputs().len() {
            return Err(EquivError::InputCountMismatch {
                left: left.primary_inputs().len(),
                right: right.primary_inputs().len(),
            });
        }
        if left.primary_outputs().len() != right.primary_outputs().len() {
            return Err(EquivError::OutputCountMismatch {
                left: left.primary_outputs().len(),
                right: right.primary_outputs().len(),
            });
        }

        let mut cnf = CnfBuilder::new();
        let enc_l = encode_netlist(&mut cnf, left);
        let enc_r = encode_netlist(&mut cnf, right);
        // Tie the inputs together.
        for (&pl, &pr) in left.primary_inputs().iter().zip(right.primary_inputs()) {
            let a = enc_l.var(pl);
            let b = enc_r.var(pr);
            cnf.add_clause([Lit::neg(a), Lit::pos(b)]);
            cnf.add_clause([Lit::pos(a), Lit::neg(b)]);
        }
        // diff_i <-> (out_l_i XOR out_r_i); assert OR(diff_i).
        let mut diffs = Vec::new();
        for (&ol, &or) in left.primary_outputs().iter().zip(right.primary_outputs()) {
            let d = cnf.new_var();
            let a = enc_l.var(ol);
            let b = enc_r.var(or);
            cnf.add_clause([Lit::neg(d), Lit::pos(a), Lit::pos(b)]);
            cnf.add_clause([Lit::neg(d), Lit::neg(a), Lit::neg(b)]);
            cnf.add_clause([Lit::pos(d), Lit::pos(a), Lit::neg(b)]);
            cnf.add_clause([Lit::pos(d), Lit::neg(a), Lit::pos(b)]);
            diffs.push(Lit::pos(d));
        }
        let trivially_equivalent = diffs.is_empty();
        if !trivially_equivalent {
            cnf.add_clause(diffs);
        }
        let input_vars = left
            .primary_inputs()
            .iter()
            .map(|&pi| enc_l.var(pi))
            .collect();
        Ok(Miter {
            solver: backend_from_cnf(&cnf, config),
            cnf,
            input_vars,
            trivially_equivalent,
            conflicts_spent: 0,
            race_conflicts: 0,
            last_race: None,
        })
    }

    /// Attempts to decide the miter under an optional conflict budget and
    /// wall-clock deadline.
    ///
    /// On [`MiterOutcome::Undecided`], the solver state (including learnt
    /// clauses) is preserved; calling `solve` again continues the search.
    pub fn solve(
        &mut self,
        conflict_budget: Option<u64>,
        deadline: Option<Instant>,
    ) -> MiterOutcome {
        if self.trivially_equivalent {
            return MiterOutcome::Equivalent;
        }
        self.solver.clear_limits();
        if let Some(b) = conflict_budget {
            self.solver.set_conflict_budget(b);
        }
        if let Some(d) = deadline {
            self.solver.set_deadline(d);
        }
        let result = self.solver.solve();
        self.conflicts_spent = self.solver.stats().conflicts + self.race_conflicts;
        match result {
            SolveResult::Unsat => MiterOutcome::Equivalent,
            SolveResult::Sat(model) => MiterOutcome::Counterexample(
                self.input_vars.iter().map(|&v| model.value(v)).collect(),
            ),
            SolveResult::Unknown => MiterOutcome::Undecided,
        }
    }

    /// Races `width` differently-configured portfolio backends on the
    /// miter CNF (see [`crate::portfolio::race`]): the first definitive
    /// verdict wins, with ties broken deterministically by racer index.
    ///
    /// Each racer starts from the original formula (not the incremental
    /// solver state accumulated by [`Miter::solve`] attempts), so the
    /// outcome depends only on the formula and the race shape.
    /// `per_racer_budget` bounds the conflicts each racer may spend;
    /// `external` is a read-only cancellation flag (typically a
    /// `CancelToken`'s) that is forwarded to the racers but never written.
    pub fn race(
        &mut self,
        width: usize,
        per_racer_budget: Option<u64>,
        deadline: Option<Instant>,
        external: Option<std::sync::Arc<std::sync::atomic::AtomicBool>>,
    ) -> MiterOutcome {
        if self.trivially_equivalent {
            return MiterOutcome::Equivalent;
        }
        let opts = RaceOptions::new(width).with_base(*self.solver.config());
        let (result, report) =
            portfolio::race(&self.cnf, &[], &opts, per_racer_budget, deadline, external);
        self.race_conflicts += report.conflicts;
        self.conflicts_spent = self.solver.stats().conflicts + self.race_conflicts;
        self.last_race = Some(report);
        match result {
            SolveResult::Unsat => MiterOutcome::Equivalent,
            SolveResult::Sat(model) => MiterOutcome::Counterexample(
                self.input_vars.iter().map(|&v| model.value(v)).collect(),
            ),
            SolveResult::Unknown => MiterOutcome::Undecided,
        }
    }

    /// The report of the most recent [`Miter::race`], if one ran.
    pub fn last_race(&self) -> Option<&RaceReport> {
        self.last_race.as_ref()
    }

    /// Total conflicts spent across all [`Miter::solve`] and
    /// [`Miter::race`] calls so far (racing counts every racer's
    /// conflicts).
    pub fn conflicts_spent(&self) -> u64 {
        self.conflicts_spent
    }

    /// Search statistics of the embedded solver, accumulated across all
    /// [`Miter::solve`] calls.
    pub fn stats(&self) -> crate::SolverStats {
        self.solver.stats()
    }

    /// Arms a cooperative interrupt on the embedded solver: when `flag`
    /// reads `true` at a conflict point, the running [`Miter::solve`]
    /// aborts with [`MiterOutcome::Undecided`]. Stays armed across solve
    /// attempts — batch runners set it once from their job cancel flag.
    pub fn set_interrupt(&mut self, flag: std::sync::Arc<std::sync::atomic::AtomicBool>) {
        self.solver.set_interrupt(flag);
    }
}

/// Fast probabilistic pre-check: simulates both netlists on `num_words * 64`
/// seeded random patterns and compares the primary outputs.
///
/// `false` means the circuits *definitely* differ (a witness exists among
/// the simulated patterns); `true` means no difference was observed. Use
/// [`check_equivalence`] for proof.
///
/// # Errors
///
/// Returns an error if the interfaces don't match.
pub fn probably_equivalent(
    left: &Netlist,
    right: &Netlist,
    num_words: usize,
    seed: u64,
) -> Result<bool, EquivError> {
    if left.primary_inputs().len() != right.primary_inputs().len() {
        return Err(EquivError::InputCountMismatch {
            left: left.primary_inputs().len(),
            right: right.primary_inputs().len(),
        });
    }
    if left.primary_outputs().len() != right.primary_outputs().len() {
        return Err(EquivError::OutputCountMismatch {
            left: left.primary_outputs().len(),
            right: right.primary_outputs().len(),
        });
    }
    let mut rng = Xoshiro256::seed_from_u64(seed);
    let patterns: Vec<Vec<u64>> = (0..left.primary_inputs().len())
        .map(|_| sim::random_words(&mut rng, num_words))
        .collect();
    let vl = left.simulate(&patterns);
    let vr = right.simulate(&patterns);
    for (&ol, &or) in left.primary_outputs().iter().zip(right.primary_outputs()) {
        if vl[ol.index()] != vr[or.index()] {
            return Ok(false);
        }
    }
    Ok(true)
}

#[cfg(test)]
mod tests {
    use super::*;
    use odcfp_logic::PrimitiveFn;
    use odcfp_netlist::CellLibrary;

    fn fig1(redundant: bool) -> Netlist {
        let lib = CellLibrary::standard();
        let mut n = Netlist::new("fig1", lib);
        let a = n.add_primary_input("A");
        let b = n.add_primary_input("B");
        let c = n.add_primary_input("C");
        let d = n.add_primary_input("D");
        let and2 = n.library().cell_for(PrimitiveFn::And, 2).unwrap();
        let and3 = n.library().cell_for(PrimitiveFn::And, 3).unwrap();
        let or2 = n.library().cell_for(PrimitiveFn::Or, 2).unwrap();
        let y = n.add_gate("gy", or2, &[c, d]);
        let x = if redundant {
            n.add_gate("gx", and3, &[a, b, n.gate_output(y)])
        } else {
            n.add_gate("gx", and2, &[a, b])
        };
        let f = n.add_gate("gf", and2, &[n.gate_output(x), n.gate_output(y)]);
        n.set_primary_output(n.gate_output(f));
        n
    }

    #[test]
    fn paper_fig1_circuits_equivalent() {
        let base = fig1(false);
        let marked = fig1(true);
        assert_eq!(
            check_equivalence(&base, &marked, None).unwrap(),
            EquivResult::Equivalent
        );
        assert!(probably_equivalent(&base, &marked, 4, 1).unwrap());
    }

    #[test]
    fn inequivalent_detected_with_valid_counterexample() {
        let base = fig1(false);
        let lib = base.library().clone();
        let mut wrong = Netlist::new("wrong", lib);
        let a = wrong.add_primary_input("A");
        let b = wrong.add_primary_input("B");
        let _c = wrong.add_primary_input("C");
        let d = wrong.add_primary_input("D");
        let and2 = wrong.library().cell_for(PrimitiveFn::And, 2).unwrap();
        let or2 = wrong.library().cell_for(PrimitiveFn::Or, 2).unwrap();
        let x = wrong.add_gate("gx", and2, &[a, b]);
        // Mistake: OR over (A&B, D) instead of the AND with (C|D).
        let f = wrong.add_gate("gf", or2, &[wrong.gate_output(x), d]);
        wrong.set_primary_output(wrong.gate_output(f));

        match check_equivalence(&base, &wrong, None).unwrap() {
            EquivResult::Counterexample(inputs) => {
                assert_ne!(base.eval(&inputs), wrong.eval(&inputs));
            }
            EquivResult::Equivalent => panic!("must differ"),
        }
        assert!(!probably_equivalent(&base, &wrong, 4, 1).unwrap());
    }

    #[test]
    fn interface_mismatch_errors() {
        let base = fig1(false);
        let lib = base.library().clone();
        let mut tiny = Netlist::new("tiny", lib);
        let a = tiny.add_primary_input("a");
        tiny.set_primary_output(a);
        assert!(matches!(
            check_equivalence(&base, &tiny, None),
            Err(EquivError::InputCountMismatch { .. })
        ));
        assert!(matches!(
            probably_equivalent(&base, &tiny, 1, 0),
            Err(EquivError::InputCountMismatch { .. })
        ));
    }

    /// XOR chain over `width` inputs, associated left-to-right or
    /// right-to-left; the two orders are equivalent but proving it takes
    /// real search, which makes the pair a good budget-starvation fixture.
    fn xor_chain(width: usize, reversed: bool) -> Netlist {
        let lib = CellLibrary::standard();
        let mut n = Netlist::new("xors", lib);
        let mut pis: Vec<_> = (0..width)
            .map(|i| n.add_primary_input(format!("i{i}")))
            .collect();
        if reversed {
            pis.reverse();
        }
        let xor2 = n.library().cell_for(PrimitiveFn::Xor, 2).unwrap();
        let mut acc = pis[0];
        for (k, &pi) in pis.iter().enumerate().skip(1) {
            let g = n.add_gate(format!("x{k}"), xor2, &[acc, pi]);
            acc = n.gate_output(g);
        }
        n.set_primary_output(acc);
        n
    }

    #[test]
    fn miter_resumes_after_starved_budget() {
        let left = xor_chain(10, false);
        let right = xor_chain(10, true);
        let mut miter = Miter::build(&left, &right).unwrap();
        // A zero conflict budget aborts at the first conflict.
        assert_eq!(miter.solve(Some(0), None), MiterOutcome::Undecided);
        let spent_early = miter.conflicts_spent();
        // Resuming without a budget finishes the proof on the same solver.
        assert_eq!(miter.solve(None, None), MiterOutcome::Equivalent);
        assert!(miter.conflicts_spent() >= spent_early);
    }

    #[test]
    fn repeated_solve_does_not_reencode() {
        let left = xor_chain(10, false);
        let right = xor_chain(10, true);
        let mut miter = Miter::build(&left, &right).unwrap();
        let vars_before = miter.solver.num_vars();
        let problem_before = miter.solver.num_problem_clauses();
        assert_eq!(miter.solve(Some(0), None), MiterOutcome::Undecided);
        assert_eq!(miter.solve(Some(5), None), MiterOutcome::Undecided);
        assert_eq!(miter.solve(None, None), MiterOutcome::Equivalent);
        assert_eq!(
            miter.solver.num_vars(),
            vars_before,
            "re-solving must not allocate fresh variables"
        );
        assert_eq!(
            miter.solver.num_problem_clauses(),
            problem_before,
            "re-solving must not re-encode the CNF"
        );
        assert!(miter.stats().conflicts > 0);
    }

    #[test]
    fn miter_expired_deadline_is_undecided() {
        let left = xor_chain(10, false);
        let right = xor_chain(10, true);
        let mut miter = Miter::build(&left, &right).unwrap();
        let past = Instant::now() - std::time::Duration::from_secs(1);
        assert_eq!(miter.solve(None, Some(past)), MiterOutcome::Undecided);
        // Limits do not stick: the next call runs to completion.
        assert_eq!(miter.solve(None, None), MiterOutcome::Equivalent);
    }

    #[test]
    fn miter_counterexample_is_concrete() {
        let base = fig1(false);
        let lib = base.library().clone();
        let mut wrong = Netlist::new("wrong", lib);
        let a = wrong.add_primary_input("A");
        let b = wrong.add_primary_input("B");
        let _c = wrong.add_primary_input("C");
        let _d = wrong.add_primary_input("D");
        let and2 = wrong.library().cell_for(PrimitiveFn::And, 2).unwrap();
        let x = wrong.add_gate("gx", and2, &[a, b]);
        wrong.set_primary_output(wrong.gate_output(x));

        let mut miter = Miter::build(&base, &wrong).unwrap();
        match miter.solve(None, None) {
            MiterOutcome::Counterexample(inputs) => {
                assert_eq!(inputs.len(), base.primary_inputs().len());
                assert_ne!(base.eval(&inputs), wrong.eval(&inputs));
            }
            other => panic!("expected counterexample, got {other:?}"),
        }
    }

    #[test]
    fn race_decides_a_budget_starved_miter() {
        let left = xor_chain(14, false);
        let right = xor_chain(14, true);
        let mut miter = Miter::build(&left, &right).unwrap();
        // Starve the single backend, then let the portfolio finish the job.
        assert_eq!(miter.solve(Some(0), None), MiterOutcome::Undecided);
        assert_eq!(miter.race(3, None, None, None), MiterOutcome::Equivalent);
        let report = miter.last_race().expect("race ran");
        assert!(report.winner.is_some());
        assert!(miter.conflicts_spent() > 0);
    }

    #[test]
    fn race_counterexample_is_concrete_and_deterministic() {
        let base = fig1(false);
        let lib = base.library().clone();
        let mut wrong = Netlist::new("wrong", lib);
        let a = wrong.add_primary_input("A");
        let b = wrong.add_primary_input("B");
        let _c = wrong.add_primary_input("C");
        let _d = wrong.add_primary_input("D");
        let and2 = wrong.library().cell_for(PrimitiveFn::And, 2).unwrap();
        let x = wrong.add_gate("gx", and2, &[a, b]);
        wrong.set_primary_output(wrong.gate_output(x));

        let run = || {
            let mut miter = Miter::build(&base, &wrong).unwrap();
            miter.race(4, None, None, None)
        };
        let (first, second) = (run(), run());
        match &first {
            MiterOutcome::Counterexample(inputs) => {
                assert_ne!(base.eval(inputs), wrong.eval(inputs));
            }
            other => panic!("expected counterexample, got {other:?}"),
        }
        assert_eq!(first, second, "race witness must be deterministic");
    }

    #[test]
    fn build_with_profile_reaches_same_verdicts() {
        let left = xor_chain(10, false);
        let right = xor_chain(10, true);
        for (name, config) in SolverConfig::profiles() {
            let mut miter = Miter::build_with(&left, &right, config).unwrap();
            assert_eq!(
                miter.solve(None, None),
                MiterOutcome::Equivalent,
                "profile {name}"
            );
        }
    }

    #[test]
    fn const_nets_in_miter() {
        let lib = CellLibrary::standard();
        let build = |tie: bool| {
            let mut n = Netlist::new("k", lib.clone());
            let a = n.add_primary_input("a");
            let second = if tie {
                n.add_constant("one", true)
            } else {
                // Equivalent: a AND a.
                a
            };
            let and2 = n.library().cell_for(PrimitiveFn::And, 2).unwrap();
            let g = n.add_gate("g", and2, &[a, second]);
            n.set_primary_output(n.gate_output(g));
            n
        };
        assert_eq!(
            check_equivalence(&build(true), &build(false), None).unwrap(),
            EquivResult::Equivalent
        );
    }
}
