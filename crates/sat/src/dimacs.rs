//! DIMACS CNF parsing, making the solver usable as a standalone tool and
//! letting test cases be exchanged with other solvers.

use std::fmt;

use crate::{CnfBuilder, Lit, Var};

/// A DIMACS parse failure with its 1-based line.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseDimacsError {
    /// 1-based line number.
    pub line: usize,
    /// What went wrong.
    pub message: String,
}

impl fmt::Display for ParseDimacsError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "DIMACS parse error at line {}: {}", self.line, self.message)
    }
}

impl std::error::Error for ParseDimacsError {}

/// Parses DIMACS `cnf` text into a [`CnfBuilder`].
///
/// Accepts comments (`c ...`), the `p cnf <vars> <clauses>` header, and
/// clauses terminated by `0` (possibly spanning lines). Variables beyond
/// the header's count are an error; a missing final `0` is tolerated for
/// compatibility with sloppy generators.
///
/// # Errors
///
/// Returns a [`ParseDimacsError`] on malformed headers or literals.
///
/// # Example
///
/// ```
/// use odcfp_sat::{parse_dimacs, SolveResult, Solver};
///
/// let cnf = parse_dimacs("p cnf 2 2\n1 -2 0\n2 0\n")?;
/// let mut solver = Solver::from_cnf(&cnf);
/// assert!(matches!(solver.solve(), SolveResult::Sat(_)));
/// # Ok::<(), odcfp_sat::ParseDimacsError>(())
/// ```
pub fn parse_dimacs(src: &str) -> Result<CnfBuilder, ParseDimacsError> {
    let mut cnf = CnfBuilder::new();
    let mut declared_vars: Option<usize> = None;
    let mut clause: Vec<Lit> = Vec::new();
    for (i, raw) in src.lines().enumerate() {
        let line_no = i + 1;
        let line = raw.trim();
        if line.is_empty() || line.starts_with('c') || line.starts_with('%') {
            continue;
        }
        if let Some(rest) = line.strip_prefix('p') {
            if declared_vars.is_some() {
                return Err(ParseDimacsError {
                    line: line_no,
                    message: "duplicate problem header".into(),
                });
            }
            let toks: Vec<&str> = rest.split_whitespace().collect();
            if toks.len() != 3 || toks[0] != "cnf" {
                return Err(ParseDimacsError {
                    line: line_no,
                    message: format!("bad header {line:?}"),
                });
            }
            let nv: usize = toks[1].parse().map_err(|_| ParseDimacsError {
                line: line_no,
                message: "bad variable count".into(),
            })?;
            cnf.new_vars(nv);
            declared_vars = Some(nv);
            continue;
        }
        let nv = declared_vars.ok_or(ParseDimacsError {
            line: line_no,
            message: "clause before 'p cnf' header".into(),
        })?;
        for tok in line.split_whitespace() {
            let v: i64 = tok.parse().map_err(|_| ParseDimacsError {
                line: line_no,
                message: format!("bad literal {tok:?}"),
            })?;
            if v == 0 {
                cnf.add_clause(clause.drain(..));
            } else {
                let index = v.unsigned_abs() as usize - 1;
                if index >= nv {
                    return Err(ParseDimacsError {
                        line: line_no,
                        message: format!("literal {v} exceeds declared variables"),
                    });
                }
                clause.push(Lit::with_polarity(Var::from_index(index), v > 0));
            }
        }
    }
    if !clause.is_empty() {
        cnf.add_clause(clause.drain(..));
    }
    Ok(cnf)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{SolveResult, Solver};

    #[test]
    fn roundtrip_with_writer() {
        let mut cnf = CnfBuilder::new();
        let vars = cnf.new_vars(3);
        cnf.add_clause([Lit::pos(vars[0]), Lit::neg(vars[1])]);
        cnf.add_clause([Lit::pos(vars[2])]);
        let text = cnf.to_dimacs();
        let back = parse_dimacs(&text).unwrap();
        assert_eq!(back.num_vars(), 3);
        assert_eq!(back.num_clauses(), 2);
        assert_eq!(back.to_dimacs(), text);
    }

    #[test]
    fn comments_and_multiline_clauses() {
        let src = "\
c a comment
p cnf 4 2
1 -2
3 0
-1 4 0
";
        let cnf = parse_dimacs(src).unwrap();
        assert_eq!(cnf.num_clauses(), 2);
        assert_eq!(cnf.clause(0).len(), 3, "clause spans two lines");
        let mut s = Solver::from_cnf(&cnf);
        assert!(matches!(s.solve(), SolveResult::Sat(_)));
    }

    #[test]
    fn missing_trailing_zero_tolerated() {
        let cnf = parse_dimacs("p cnf 2 1\n1 2\n").unwrap();
        assert_eq!(cnf.num_clauses(), 1);
    }

    #[test]
    fn unsat_instance_solves_unsat() {
        let src = "p cnf 1 2\n1 0\n-1 0\n";
        let cnf = parse_dimacs(src).unwrap();
        let mut s = Solver::from_cnf(&cnf);
        assert_eq!(s.solve(), SolveResult::Unsat);
    }

    #[test]
    fn errors_reported() {
        assert!(parse_dimacs("1 2 0\n").is_err());
        assert!(parse_dimacs("p cnf x 1\n").is_err());
        assert!(parse_dimacs("p cnf 1 1\np cnf 1 1\n").is_err());
        let e = parse_dimacs("p cnf 2 1\n5 0\n").unwrap_err();
        assert_eq!(e.line, 2);
        assert!(parse_dimacs("p cnf 2 1\nfoo 0\n").is_err());
    }
}
