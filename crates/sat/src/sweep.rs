//! Cone-local SAT sweeping with structural hashing (strash).
//!
//! An ODC-fingerprinted variant differs from its base netlist in a handful
//! of fanout-free-cone-local regions; everything else is gate-for-gate
//! identical. A cold miter re-encodes and re-proves that identical 99%
//! from scratch for every buyer. The [`SweepEngine`] instead hash-conses
//! *both* netlists into one shared node store:
//!
//! 1. **Structural hashing** — gates are interned into canonical nodes
//!    (commutative children sorted, `Buf`/double-`Inv` collapsed, trivial
//!    parity cancellation), so every unchanged region of a variant maps to
//!    the very nodes of the base circuit. A primary-output pair whose
//!    cones hash to the same node is proven equivalent with **no SAT call**.
//! 2. **Cut-point sweeping** — interior node pairs with equal
//!    64-word simulation signatures are equivalence candidates. They are
//!    SAT-validated **innermost-first** (ascending logic depth) on a
//!    persistent incremental solver; each proven pair is merged in a
//!    congruence-closed union-find, which re-hashes the fanout and usually
//!    collapses the remaining output pairs structurally. Only the changed
//!    region and its transitive fanout are ever Tseitin-encoded
//!    (cone-of-influence reduction), and merged classes share one CNF
//!    variable, so the miter the solver sees is tiny.
//! 3. **Counterexample feedback** — a SAT model from a failed candidate is
//!    replayed through the whole node store and appended to the signature
//!    pool, so one counterexample falsifies every other candidate pair it
//!    distinguishes.
//!
//! The engine is built once per golden netlist and checked against many
//! candidates; node merges, learnt clauses, and counterexample patterns
//! all persist across checks, so per-buyer marginal cost in a campaign
//! shrinks as the solver learns the base circuit.

use std::collections::HashMap;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Instant;

use odcfp_logic::rng::Xoshiro256;
use odcfp_logic::sim::{gather_block, Block, BLOCK_LANES};
use odcfp_logic::PrimitiveFn;
use odcfp_netlist::{NetDriver, Netlist};

use crate::equiv::{EquivError, MiterOutcome};
use crate::tseitin::encode_gate;
use crate::{build_backend, Lit, SatBackend, SolveResult, SolverConfig, SolverStats, Var};

/// The semantic class of a strash node.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
enum NodeKind {
    /// A constant.
    Const(bool),
    /// Primary input by position (shared between golden and candidates).
    Input(u32),
    /// A gate over child nodes (canonicalized; see [`SweepEngine`] docs).
    Gate(PrimitiveFn),
}

/// Result of canonicalizing a would-be gate node.
enum Canon {
    /// Collapsed onto an existing node (e.g. `Buf(x)` → `x`).
    Existing(u32),
    /// Collapsed to a constant (e.g. `Xor(x, x)` → `false`).
    ConstVal(bool),
    /// A genuine new shape: canonical kind + canonical child classes.
    Key(NodeKind, Vec<u32>),
}

/// Outcome of a single SAT query on a node pair.
enum Query {
    Equal,
    Distinct(Vec<bool>),
    Unknown,
}

/// Tuning knobs for [`SweepEngine`].
#[derive(Debug, Clone)]
pub struct SweepOptions {
    /// Random 64-bit pattern words per node signature (the cut-point
    /// grouping key). More words mean fewer false candidates.
    pub sim_words: usize,
    /// Seed for the signature pattern generator.
    pub seed: u64,
    /// Per-candidate-pair conflict budget for interior cut-point queries.
    /// A pair whose query exceeds this is skipped, never mis-merged.
    pub cut_conflicts: u64,
    /// Cap on candidate pairs drawn from one signature group, guarding
    /// against quadratic blowup on degenerate signatures.
    pub max_pairs_per_group: usize,
    /// Configuration of the persistent backend answering the SAT queries.
    pub solver: SolverConfig,
}

impl Default for SweepOptions {
    fn default() -> Self {
        SweepOptions {
            sim_words: 64,
            seed: 0x0DCF_5EED,
            cut_conflicts: 2_000,
            max_pairs_per_group: 8,
            solver: SolverConfig::default(),
        }
    }
}

/// What one [`SweepEngine::check`] call did and decided.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SweepReport {
    /// The equivalence verdict for this candidate.
    pub outcome: MiterOutcome,
    /// Primary-output pairs proven by structural hashing alone (same node
    /// class before any SAT query of this check).
    pub strash_proven: usize,
    /// Interior cut-point pairs proven equal and merged by SAT this check.
    pub cut_points_proven: usize,
    /// Candidate pairs refuted by a SAT model (each fed back into the
    /// signature pool).
    pub cut_points_refuted: usize,
    /// Candidate pairs skipped because their query exceeded the per-pair
    /// conflict budget.
    pub cut_points_skipped: usize,
    /// SAT conflicts spent by this check.
    pub conflicts: u64,
}

/// A persistent SAT-sweeping equivalence checker for one golden netlist.
///
/// Build once with [`SweepEngine::new`], then [`SweepEngine::check`] each
/// candidate. All state — strash nodes, proven merges, learnt clauses,
/// counterexample patterns — persists across checks.
///
/// # Example
///
/// ```
/// use odcfp_netlist::{CellLibrary, Netlist};
/// use odcfp_sat::{MiterOutcome, SweepEngine, SweepOptions};
/// use odcfp_logic::PrimitiveFn;
///
/// let lib = CellLibrary::standard();
/// let build = || {
///     let mut n = Netlist::new("m", lib.clone());
///     let a = n.add_primary_input("a");
///     let b = n.add_primary_input("b");
///     let c = n.library().cell_for(PrimitiveFn::Nand, 2).unwrap();
///     let g = n.add_gate("g", c, &[a, b]);
///     n.set_primary_output(n.gate_output(g));
///     n
/// };
/// let (golden, candidate) = (build(), build());
/// let mut engine = SweepEngine::new(&golden, SweepOptions::default());
/// let report = engine.check(&candidate, None, None)?;
/// assert_eq!(report.outcome, MiterOutcome::Equivalent);
/// assert_eq!(report.strash_proven, 1); // proved with zero SAT conflicts
/// assert_eq!(report.conflicts, 0);
/// # Ok::<(), odcfp_sat::EquivError>(())
/// ```
#[derive(Debug)]
pub struct SweepEngine {
    opts: SweepOptions,
    // ---- node store (struct of arrays, indexed by node id) ----
    kind: Vec<NodeKind>,
    /// Flat child arena: node `i`'s children are
    /// `child_arena[child_off[i] as usize..child_off[i + 1] as usize]`.
    child_off: Vec<u32>,
    child_arena: Vec<u32>,
    /// Logic depth at creation (0 for inputs and constants).
    depth: Vec<u32>,
    /// Simulation signature (random words then counterexample words);
    /// freed when a node is retired into another class.
    sig: Vec<Vec<u64>>,
    /// CNF variable of the node's class, allocated lazily on first encode.
    var: Vec<Option<Var>>,
    /// Union-find parent (class representative = smallest node id).
    parent: Vec<u32>,
    /// Nodes that list this node among their children (congruence uses).
    uses: Vec<Vec<u32>>,
    /// Hash-consing map from canonical shape to node id.
    canon: HashMap<(NodeKind, Vec<u32>), u32>,
    /// Counterexample patterns appended to every signature so far.
    cex_count: usize,
    // ---- golden interface ----
    num_pis: usize,
    num_pos: usize,
    /// Node id of each primary input, by position.
    input_nodes: Vec<u32>,
    /// Node id of each golden primary output, by position.
    golden_pos: Vec<u32>,
    // ---- solving ----
    solver: Box<dyn SatBackend>,
    interrupt: Option<Arc<AtomicBool>>,
    rng: Xoshiro256,
}

impl SweepEngine {
    /// Hash-conses `golden` and prepares the persistent solver.
    ///
    /// # Panics
    ///
    /// Panics if `golden` has undriven nets or a combinational cycle
    /// (validate first), or if `opts.sim_words` is zero.
    pub fn new(golden: &Netlist, opts: SweepOptions) -> SweepEngine {
        assert!(opts.sim_words > 0, "signatures need at least one word");
        let solver = build_backend(opts.solver);
        let mut eng = SweepEngine {
            rng: Xoshiro256::seed_from_u64(opts.seed),
            opts,
            kind: Vec::new(),
            child_off: vec![0],
            child_arena: Vec::new(),
            depth: Vec::new(),
            sig: Vec::new(),
            var: Vec::new(),
            parent: Vec::new(),
            uses: Vec::new(),
            canon: HashMap::new(),
            cex_count: 0,
            num_pis: golden.primary_inputs().len(),
            num_pos: golden.primary_outputs().len(),
            input_nodes: Vec::new(),
            golden_pos: Vec::new(),
            solver,
            interrupt: None,
        };
        eng.input_nodes = (0..eng.num_pis)
            .map(|k| eng.intern_leaf(NodeKind::Input(k as u32)))
            .collect();
        {
            let mut span = odcfp_obs::span("sweep.strash");
            eng.golden_pos = eng.strash(golden);
            span.field("nodes", eng.kind.len());
        }
        eng
    }

    /// Arms a cooperative interrupt: when `flag` reads `true`, the running
    /// check aborts with [`MiterOutcome::Undecided`]. Stays armed across
    /// checks until [`SweepEngine::clear_interrupt`].
    pub fn set_interrupt(&mut self, flag: Arc<AtomicBool>) {
        self.interrupt = Some(flag.clone());
        self.solver.set_interrupt(flag);
    }

    /// Disarms the cooperative interrupt.
    pub fn clear_interrupt(&mut self) {
        self.interrupt = None;
        self.solver.clear_interrupt();
    }

    /// Statistics of the persistent solver, accumulated over all checks.
    pub fn solver_stats(&self) -> SolverStats {
        self.solver.stats()
    }

    /// Number of strash nodes interned so far (golden plus all deltas).
    pub fn num_nodes(&self) -> usize {
        self.kind.len()
    }

    /// Checks `candidate` against the golden netlist.
    ///
    /// `conflict_budget` caps the total SAT conflicts of this check;
    /// `deadline` is a wall-clock cutoff. Exceeding either yields an honest
    /// [`MiterOutcome::Undecided`] — partial progress (merges, learnt
    /// clauses, counterexample patterns) is kept for the next call.
    ///
    /// # Errors
    ///
    /// Returns an error if the candidate's interface doesn't match the
    /// golden netlist.
    ///
    /// # Panics
    ///
    /// Panics if `candidate` has undriven nets or a combinational cycle
    /// (validate first).
    pub fn check(
        &mut self,
        candidate: &Netlist,
        conflict_budget: Option<u64>,
        deadline: Option<Instant>,
    ) -> Result<SweepReport, EquivError> {
        if !odcfp_obs::enabled() {
            return self.check_inner(candidate, conflict_budget, deadline);
        }
        let mut span = odcfp_obs::span("sweep.check");
        let result = self.check_inner(candidate, conflict_budget, deadline);
        if let Ok(report) = &result {
            span.field(
                "outcome",
                match report.outcome {
                    MiterOutcome::Equivalent => "equivalent",
                    MiterOutcome::Counterexample(_) => "counterexample",
                    MiterOutcome::Undecided => "undecided",
                },
            );
            span.field("strash_proven", report.strash_proven);
            span.field("cut_points_proven", report.cut_points_proven);
            span.field("conflicts", report.conflicts);
            odcfp_obs::count("sweep.strash_proven", report.strash_proven as u64);
            odcfp_obs::count("sweep.cutpoints_proven", report.cut_points_proven as u64);
            odcfp_obs::count("sweep.cutpoints_refuted", report.cut_points_refuted as u64);
            odcfp_obs::count("sweep.cutpoints_skipped", report.cut_points_skipped as u64);
        }
        result
    }

    fn check_inner(
        &mut self,
        candidate: &Netlist,
        conflict_budget: Option<u64>,
        deadline: Option<Instant>,
    ) -> Result<SweepReport, EquivError> {
        if candidate.primary_inputs().len() != self.num_pis {
            return Err(EquivError::InputCountMismatch {
                left: self.num_pis,
                right: candidate.primary_inputs().len(),
            });
        }
        if candidate.primary_outputs().len() != self.num_pos {
            return Err(EquivError::OutputCountMismatch {
                left: self.num_pos,
                right: candidate.primary_outputs().len(),
            });
        }
        let cand_pos = self.strash(candidate);
        let start_conflicts = self.solver.stats().conflicts;
        let golden_pos = self.golden_pos.clone();
        let unproven: Vec<(u32, u32)> = golden_pos
            .iter()
            .zip(&cand_pos)
            .map(|(&l, &r)| (l, r))
            .filter(|&(l, r)| self.find(l) != self.find(r))
            .collect();
        let mut report = SweepReport {
            outcome: MiterOutcome::Equivalent,
            strash_proven: self.num_pos - unproven.len(),
            cut_points_proven: 0,
            cut_points_refuted: 0,
            cut_points_skipped: 0,
            conflicts: 0,
        };
        if unproven.is_empty() {
            return Ok(report);
        }

        // Interior cut points: signature-equal node classes within the
        // unresolved cones, validated innermost-first.
        for (a, b) in self.cut_candidates(&unproven) {
            if self.cancelled(deadline) {
                break;
            }
            let (ra, rb) = (self.find(a), self.find(b));
            if ra == rb || self.sig[ra as usize] != self.sig[rb as usize] {
                continue; // merged or falsified since pairing
            }
            let spent = self.solver.stats().conflicts - start_conflicts;
            let pair_budget = match conflict_budget {
                Some(total) if spent >= total => break,
                Some(total) => self.opts.cut_conflicts.min(total - spent),
                None => self.opts.cut_conflicts,
            };
            match self.prove_distinct(ra, rb, Some(pair_budget), deadline) {
                Query::Equal => {
                    self.union(ra, rb);
                    report.cut_points_proven += 1;
                }
                Query::Distinct(cex) => {
                    self.append_cex(&cex);
                    report.cut_points_refuted += 1;
                }
                Query::Unknown => report.cut_points_skipped += 1,
            }
        }

        // Whatever sweeping left unresolved gets a direct output query.
        for &(l, r) in &unproven {
            let (rl, rr) = (self.find(l), self.find(r));
            if rl == rr {
                continue; // collapsed by a cut-point merge upstream
            }
            if self.cancelled(deadline) {
                report.outcome = MiterOutcome::Undecided;
                break;
            }
            let spent = self.solver.stats().conflicts - start_conflicts;
            let po_budget = match conflict_budget {
                Some(total) if spent >= total => {
                    report.outcome = MiterOutcome::Undecided;
                    break;
                }
                Some(total) => Some(total - spent),
                None => None,
            };
            match self.prove_distinct(rl, rr, po_budget, deadline) {
                Query::Equal => self.union(rl, rr),
                Query::Distinct(cex) => {
                    self.append_cex(&cex);
                    report.outcome = MiterOutcome::Counterexample(cex);
                    break;
                }
                Query::Unknown => {
                    report.outcome = MiterOutcome::Undecided;
                    break;
                }
            }
        }
        report.conflicts = self.solver.stats().conflicts - start_conflicts;
        Ok(report)
    }

    // ------------------------------------------------------------------
    // Structural hashing
    // ------------------------------------------------------------------

    /// Interns every net of `netlist` and returns the primary-output node
    /// ids, by position.
    fn strash(&mut self, netlist: &Netlist) -> Vec<u32> {
        let net_node = self.strash_nets(netlist);
        netlist
            .primary_outputs()
            .iter()
            .map(|&po| {
                let node = net_node[po.index()];
                assert!(node != u32::MAX, "undriven output (validate first)");
                node
            })
            .collect()
    }

    /// Interns every net of `netlist` and returns, for each net (indexed
    /// by `NetId` position), its current class representative.
    ///
    /// This runs only the hash-consing front half of the sweep — no SAT
    /// queries are issued and no solver state is created — so the call is
    /// cheap and fully deterministic. Two nets carry equal representatives
    /// iff the engine considers them structurally equivalent: identical up
    /// to the canonicalizer's rewrites (buffer/inverter collapse,
    /// commutative sorting and deduplication, constant folding, XOR pair
    /// cancellation) or merged by a proof from an earlier
    /// [`SweepEngine::check`] on this engine. Representatives are only
    /// meaningful *within* one engine, but they are comparable across
    /// calls on the same engine, which is what makes this usable as a
    /// structural matcher: intern two netlists and intersect their class
    /// sets to find logic that survives a rewrite.
    ///
    /// Undriven nets (possible only in unvalidated netlists) map to
    /// `u32::MAX`, which never names a class.
    ///
    /// # Panics
    ///
    /// Panics if `netlist` has more primary inputs than the golden
    /// netlist or contains a combinational cycle (validate first).
    pub fn net_classes(&mut self, netlist: &Netlist) -> Vec<u32> {
        assert!(
            netlist.primary_inputs().len() <= self.input_nodes.len(),
            "candidate has more primary inputs than the golden netlist"
        );
        let net_node = self.strash_nets(netlist);
        net_node
            .iter()
            .map(|&n| if n == u32::MAX { n } else { self.find(n) })
            .collect()
    }

    /// Interns every net of `netlist`; returns the interned node id per
    /// net (indexed by `NetId` position).
    fn strash_nets(&mut self, netlist: &Netlist) -> Vec<u32> {
        let mut net_node = vec![u32::MAX; netlist.num_nets()];
        for (k, &pi) in netlist.primary_inputs().iter().enumerate() {
            net_node[pi.index()] = self.input_nodes[k];
        }
        for (id, net) in netlist.nets() {
            if let NetDriver::Const(v) = net.driver() {
                net_node[id.index()] = self.intern_leaf(NodeKind::Const(v));
            }
        }
        let order = netlist
            .cached_topo()
            .expect("cyclic netlist cannot be swept (validate first)");
        let mut children: Vec<u32> = Vec::new();
        for &g in order {
            let gate = netlist.gate(g);
            let f = netlist.library().cell(gate.cell()).function();
            children.clear();
            for &n in gate.inputs() {
                let node = net_node[n.index()];
                assert!(node != u32::MAX, "undriven net (validate first)");
                children.push(node);
            }
            net_node[gate.output().index()] = self.intern_gate(f, &children);
        }
        net_node
    }

    /// Interns a childless node (constant or primary input).
    fn intern_leaf(&mut self, kind: NodeKind) -> u32 {
        let key = (kind, Vec::new());
        if let Some(&q) = self.canon.get(&key) {
            return self.find(q);
        }
        let id = self.create_node(kind, Vec::new());
        self.canon.insert(key, id);
        id
    }

    /// Interns a gate node over existing children, canonicalizing first.
    fn intern_gate(&mut self, f: PrimitiveFn, children: &[u32]) -> u32 {
        let mapped: Vec<u32> = children.iter().map(|&c| self.find(c)).collect();
        match self.canonicalize(f, mapped) {
            Canon::Existing(t) => self.find(t),
            Canon::ConstVal(v) => self.intern_leaf(NodeKind::Const(v)),
            Canon::Key(kind, ch) => {
                let key = (kind, ch);
                if let Some(&q) = self.canon.get(&key) {
                    return self.find(q);
                }
                let id = self.create_node(key.0, key.1.clone());
                self.canon.insert(key, id);
                id
            }
        }
    }

    /// Reduces `(f, children)` to canonical shape. `children` must already
    /// be class representatives. Rules: `Buf` collapses; `Inv(Inv(x))`
    /// collapses to `x`; commutative children are sorted; idempotent
    /// functions are deduplicated; parity pairs cancel. Deeper semantic
    /// simplification (e.g. constant folding) is deliberately left to the
    /// signature + SAT stages.
    fn canonicalize(&self, f: PrimitiveFn, mut ch: Vec<u32>) -> Canon {
        use PrimitiveFn::{And, Buf, Inv, Nand, Nor, Or, Xnor, Xor};
        match f {
            Buf => Canon::Existing(ch[0]),
            Inv => self.make_inv(ch[0]),
            And | Or | Nand | Nor => {
                ch.sort_unstable();
                ch.dedup();
                if ch.len() == 1 {
                    match f {
                        And | Or => Canon::Existing(ch[0]),
                        _ => self.make_inv(ch[0]),
                    }
                } else {
                    Canon::Key(NodeKind::Gate(f), ch)
                }
            }
            Xor | Xnor => {
                ch.sort_unstable();
                // x ^ x = 0: equal pairs cancel without flipping parity.
                let mut out: Vec<u32> = Vec::with_capacity(ch.len());
                let mut i = 0;
                while i < ch.len() {
                    if i + 1 < ch.len() && ch[i] == ch[i + 1] {
                        i += 2;
                    } else {
                        out.push(ch[i]);
                        i += 1;
                    }
                }
                match (out.len(), f) {
                    (0, _) => Canon::ConstVal(f == Xnor),
                    (1, Xor) => Canon::Existing(out[0]),
                    (1, _) => self.make_inv(out[0]),
                    _ => Canon::Key(NodeKind::Gate(f), out),
                }
            }
        }
    }

    /// Canonical `Inv(c)`: collapses a double inversion.
    fn make_inv(&self, c: u32) -> Canon {
        let r = self.find(c);
        if self.kind[r as usize] == NodeKind::Gate(PrimitiveFn::Inv) {
            Canon::Existing(self.find(self.children(r)[0]))
        } else {
            Canon::Key(NodeKind::Gate(PrimitiveFn::Inv), vec![r])
        }
    }

    fn create_node(&mut self, kind: NodeKind, children: Vec<u32>) -> u32 {
        let id = self.kind.len() as u32;
        let (sig, depth) = match kind {
            NodeKind::Const(v) => {
                let mut s = vec![if v { u64::MAX } else { 0 }; self.sig_len()];
                self.mask_partial(&mut s);
                (s, 0)
            }
            NodeKind::Input(_) => {
                // Random signature; counterexample words start empty-masked.
                let len = self.sig_len();
                let mut s: Vec<u64> = Vec::with_capacity(len);
                for w in 0..len {
                    s.push(if w < self.opts.sim_words {
                        self.rng.next_u64()
                    } else {
                        0
                    });
                }
                (s, 0)
            }
            NodeKind::Gate(f) => {
                let d = 1 + children
                    .iter()
                    .map(|&c| self.depth[self.find(c) as usize])
                    .max()
                    .unwrap_or(0);
                (self.gate_sig(f, &children), d)
            }
        };
        self.kind.push(kind);
        self.depth.push(depth);
        self.sig.push(sig);
        self.var.push(None);
        self.parent.push(id);
        self.uses.push(Vec::new());
        let mut last = u32::MAX;
        for &c in &children {
            if c != last {
                self.uses[c as usize].push(id);
                last = c;
            }
        }
        self.child_arena.extend_from_slice(&children);
        self.child_off.push(self.child_arena.len() as u32);
        id
    }

    fn children(&self, n: u32) -> &[u32] {
        let s = self.child_off[n as usize] as usize;
        let e = self.child_off[n as usize + 1] as usize;
        &self.child_arena[s..e]
    }

    /// Union-find lookup (no path compression: merge chains stay short
    /// because every link joins two roots).
    fn find(&self, mut n: u32) -> u32 {
        while self.parent[n as usize] != n {
            n = self.parent[n as usize];
        }
        n
    }

    // ------------------------------------------------------------------
    // Signatures
    // ------------------------------------------------------------------

    /// Current signature length: random words plus accumulated
    /// counterexample words.
    fn sig_len(&self) -> usize {
        self.opts.sim_words + self.cex_count.div_ceil(64)
    }

    /// Zeroes the unused high bits of a partially filled counterexample
    /// word, so freshly computed signatures compare equal to incrementally
    /// maintained ones.
    fn mask_partial(&self, sig: &mut [u64]) {
        let bits = self.cex_count % 64;
        if self.cex_count > 0 && bits != 0 {
            if let Some(last) = sig.last_mut() {
                *last &= (1u64 << bits) - 1;
            }
        }
    }

    /// Evaluates a gate's signature from its children's, 256 bits at a
    /// time through the widened kernel.
    fn gate_sig(&self, f: PrimitiveFn, children: &[u32]) -> Vec<u64> {
        let total = self.sig_len();
        let mut out = vec![0u64; total];
        let full = total / BLOCK_LANES * BLOCK_LANES;
        let mut blk_ins: Vec<Block> = Vec::with_capacity(children.len());
        let mut w = 0;
        while w < full {
            blk_ins.clear();
            blk_ins.extend(
                children
                    .iter()
                    .map(|&c| gather_block(&self.sig[self.find(c) as usize], w)),
            );
            out[w..w + BLOCK_LANES].copy_from_slice(&f.eval_blocks(&blk_ins));
            w += BLOCK_LANES;
        }
        let mut word_ins: Vec<u64> = Vec::with_capacity(children.len());
        let reps: Vec<usize> = children.iter().map(|&c| self.find(c) as usize).collect();
        for (w, slot) in out.iter_mut().enumerate().skip(full) {
            word_ins.clear();
            word_ins.extend(reps.iter().map(|&r| self.sig[r][w]));
            *slot = f.eval_words(&word_ins);
        }
        self.mask_partial(&mut out);
        out
    }

    /// Replays one counterexample assignment through every live node and
    /// appends the resulting bit to each signature.
    fn append_cex(&mut self, assignment: &[bool]) {
        let bit = self.cex_count % 64;
        self.cex_count += 1;
        let mut ins: Vec<bool> = Vec::new();
        for i in 0..self.kind.len() {
            if self.find(i as u32) != i as u32 {
                continue; // retired; the class representative carries bits
            }
            if bit == 0 {
                self.sig[i].push(0);
            }
            let value = match self.kind[i] {
                NodeKind::Const(v) => v,
                NodeKind::Input(k) => assignment[k as usize],
                NodeKind::Gate(f) => {
                    ins.clear();
                    let (s, e) = (
                        self.child_off[i] as usize,
                        self.child_off[i + 1] as usize,
                    );
                    for idx in s..e {
                        // Representatives have smaller ids than their
                        // members, so the child's bit is already computed.
                        let c = self.find(self.child_arena[idx]) as usize;
                        let word = self.sig[c][self.sig[c].len() - 1];
                        ins.push((word >> bit) & 1 == 1);
                    }
                    f.eval(&ins)
                }
            };
            if value {
                let last = self.sig[i].len() - 1;
                self.sig[i][last] |= 1u64 << bit;
            }
        }
    }

    // ------------------------------------------------------------------
    // Merging (congruence-closed union-find)
    // ------------------------------------------------------------------

    /// Merges two proven-equal classes, ties their CNF variables, and
    /// congruence-closes: parents of the retired class are re-hashed under
    /// the new map, cascading merges through the fanout.
    fn union(&mut self, a: u32, b: u32) {
        let mut queue = vec![(a, b)];
        while let Some((a, b)) = queue.pop() {
            let (ra, rb) = (self.find(a), self.find(b));
            if ra == rb {
                continue;
            }
            let (keep, retire) = if ra < rb { (ra, rb) } else { (rb, ra) };
            self.parent[retire as usize] = keep;
            match (self.var[keep as usize], self.var[retire as usize]) {
                (Some(vk), Some(vr)) => {
                    // Both classes already encoded: tie them in the solver.
                    self.solver.add_clause(&[Lit::neg(vk), Lit::pos(vr)]);
                    self.solver.add_clause(&[Lit::pos(vk), Lit::neg(vr)]);
                }
                (None, Some(vr)) => self.var[keep as usize] = Some(vr),
                _ => {}
            }
            // The representative carries the (identical) signature on.
            self.sig[retire as usize] = Vec::new();
            let moved = std::mem::take(&mut self.uses[retire as usize]);
            for &p in &moved {
                let rp = self.find(p);
                if let NodeKind::Gate(f) = self.kind[p as usize] {
                    let mapped: Vec<u32> =
                        self.children(p).iter().map(|&c| self.find(c)).collect();
                    match self.canonicalize(f, mapped) {
                        Canon::Existing(t) => queue.push((rp, t)),
                        Canon::ConstVal(v) => {
                            let t = self.intern_leaf(NodeKind::Const(v));
                            queue.push((rp, t));
                        }
                        Canon::Key(kind, ch) => {
                            let key = (kind, ch);
                            if let Some(&q) = self.canon.get(&key) {
                                if self.find(q) != rp {
                                    queue.push((rp, q));
                                }
                            } else {
                                self.canon.insert(key, p);
                            }
                        }
                    }
                }
            }
            self.uses[keep as usize].extend(moved);
        }
    }

    // ------------------------------------------------------------------
    // SAT queries
    // ------------------------------------------------------------------

    /// Collects candidate cut-point pairs for the unresolved output cones:
    /// signature-equal class pairs, innermost (shallowest) first.
    fn cut_candidates(&self, unproven: &[(u32, u32)]) -> Vec<(u32, u32)> {
        let mut visited = vec![false; self.kind.len()];
        let mut stack: Vec<u32> = Vec::new();
        for &(l, r) in unproven {
            stack.push(self.find(l));
            stack.push(self.find(r));
        }
        let mut cone: Vec<u32> = Vec::new();
        while let Some(n) = stack.pop() {
            if visited[n as usize] {
                continue;
            }
            visited[n as usize] = true;
            cone.push(n);
            for &c in self.children(n) {
                let rc = self.find(c);
                if !visited[rc as usize] {
                    stack.push(rc);
                }
            }
        }
        // Group by signature: sort, then pair each run's anchor with the
        // rest (capped), deterministic in node-id order.
        cone.sort_unstable_by(|&x, &y| {
            self.sig[x as usize]
                .cmp(&self.sig[y as usize])
                .then(x.cmp(&y))
        });
        let mut pairs: Vec<(u32, u32)> = Vec::new();
        let mut run_start = 0;
        for i in 1..=cone.len() {
            let run_ends = i == cone.len()
                || self.sig[cone[i] as usize] != self.sig[cone[run_start] as usize];
            if run_ends {
                let anchor = cone[run_start];
                for &other in cone[run_start + 1..i]
                    .iter()
                    .take(self.opts.max_pairs_per_group)
                {
                    pairs.push((anchor, other));
                }
                run_start = i;
            }
        }
        pairs.sort_by_key(|&(x, y)| {
            (
                self.depth[x as usize].max(self.depth[y as usize]),
                x,
                y,
            )
        });
        pairs
    }

    /// Lazily Tseitin-encodes a node class (and its cone) into the
    /// persistent solver, returning the class variable.
    fn encode(&mut self, node: u32) -> Var {
        let root = self.find(node);
        let mut stack: Vec<u32> = vec![root];
        let mut pending: Vec<u32> = Vec::new();
        while let Some(&top) = stack.last() {
            let n = self.find(top);
            if self.var[n as usize].is_some() {
                stack.pop();
                continue;
            }
            pending.clear();
            for i in 0..self.children(n).len() {
                let c = self.find(self.children(n)[i]);
                if self.var[c as usize].is_none() {
                    pending.push(c);
                }
            }
            if !pending.is_empty() {
                stack.extend_from_slice(&pending);
                continue;
            }
            let v = self.solver.new_var();
            self.var[n as usize] = Some(v);
            match self.kind[n as usize] {
                NodeKind::Input(_) => {}
                NodeKind::Const(val) => {
                    self.solver.add_clause(&[Lit::with_polarity(v, val)]);
                }
                NodeKind::Gate(f) => {
                    let ins: Vec<Var> = (0..self.children(n).len())
                        .map(|i| {
                            let c = self.find(self.children(n)[i]);
                            self.var[c as usize].expect("children encoded before parent")
                        })
                        .collect();
                    encode_gate(&mut self.solver, f, v, &ins);
                }
            }
            stack.pop();
        }
        self.var[self.find(root) as usize].expect("root encoded")
    }

    /// One incremental SAT query: are classes `a` and `b` distinguishable?
    fn prove_distinct(
        &mut self,
        a: u32,
        b: u32,
        conflict_budget: Option<u64>,
        deadline: Option<Instant>,
    ) -> Query {
        let va = self.encode(a);
        let vb = self.encode(b);
        if va == vb {
            return Query::Equal;
        }
        let d = self.solver.new_var();
        encode_gate(&mut self.solver, PrimitiveFn::Xor, d, &[va, vb]);
        self.solver.clear_limits();
        if let Some(budget) = conflict_budget {
            self.solver.set_conflict_budget(budget);
        }
        if let Some(dl) = deadline {
            self.solver.set_deadline(dl);
        }
        match self.solver.solve_under(&[Lit::pos(d)]) {
            SolveResult::Unsat => {
                // Retire the query variable; equality is recorded by union.
                self.solver.add_clause(&[Lit::neg(d)]);
                Query::Equal
            }
            SolveResult::Sat(model) => {
                let inputs = self
                    .input_nodes
                    .iter()
                    .map(|&inp| {
                        let r = self.find(inp);
                        self.var[r as usize].is_some_and(|v| model.value(v))
                    })
                    .collect();
                Query::Distinct(inputs)
            }
            SolveResult::Unknown => Query::Unknown,
        }
    }

    fn cancelled(&self, deadline: Option<Instant>) -> bool {
        deadline.is_some_and(|d| Instant::now() >= d)
            || self
                .interrupt
                .as_ref()
                .is_some_and(|f| f.load(Ordering::Acquire))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use odcfp_netlist::CellLibrary;

    /// Fig. 1 of the paper: base circuit and its ODC-fingerprinted copy
    /// (`X = A·B` widened to `X' = A·B·Y` where `Y = C+D` masks the cone).
    fn fig1(redundant: bool) -> Netlist {
        let lib = CellLibrary::standard();
        let mut n = Netlist::new("fig1", lib);
        let a = n.add_primary_input("A");
        let b = n.add_primary_input("B");
        let c = n.add_primary_input("C");
        let d = n.add_primary_input("D");
        let and2 = n.library().cell_for(PrimitiveFn::And, 2).unwrap();
        let and3 = n.library().cell_for(PrimitiveFn::And, 3).unwrap();
        let or2 = n.library().cell_for(PrimitiveFn::Or, 2).unwrap();
        let y = n.add_gate("gy", or2, &[c, d]);
        let x = if redundant {
            n.add_gate("gx", and3, &[a, b, n.gate_output(y)])
        } else {
            n.add_gate("gx", and2, &[a, b])
        };
        let f = n.add_gate("gf", and2, &[n.gate_output(x), n.gate_output(y)]);
        n.set_primary_output(n.gate_output(f));
        n
    }

    #[test]
    fn net_classes_match_structure_across_netlists() {
        let golden = fig1(false);
        let marked = fig1(true);
        let mut eng = SweepEngine::new(&golden, SweepOptions::default());
        let base = eng.net_classes(&golden);
        let fp = eng.net_classes(&marked);

        // Same-shape logic lands in the same class: the Y = C+D gate is
        // untouched by the fingerprint, so its output nets agree.
        let y_of = |n: &Netlist, cls: &[u32]| {
            let g = n.gates().find(|(_, g)| g.name() == "gy").unwrap().0;
            cls[n.gate_output(g).index()]
        };
        assert_eq!(y_of(&golden, &base), y_of(&marked, &fp));

        // The widened X' = A·B·Y is a new structure: its class appears in
        // the fingerprinted copy but nowhere in the base netlist.
        let x_of = |n: &Netlist, cls: &[u32]| {
            let g = n.gates().find(|(_, g)| g.name() == "gx").unwrap().0;
            cls[n.gate_output(g).index()]
        };
        let xp = x_of(&marked, &fp);
        assert!(!base.contains(&xp), "widened gate must form a fresh class");
        // Re-interning is idempotent: same classes on a second pass.
        assert_eq!(eng.net_classes(&marked), fp);
    }

    #[test]
    fn identical_clone_is_strash_proven() {
        let golden = fig1(false);
        let clone = fig1(false);
        let mut eng = SweepEngine::new(&golden, SweepOptions::default());
        let report = eng.check(&clone, None, None).unwrap();
        assert_eq!(report.outcome, MiterOutcome::Equivalent);
        assert_eq!(report.strash_proven, 1);
        assert_eq!(report.conflicts, 0, "no SAT needed for a clone");
    }

    #[test]
    fn odc_variant_proven_by_cut_points() {
        let golden = fig1(false);
        let marked = fig1(true);
        let mut eng = SweepEngine::new(&golden, SweepOptions::default());
        let report = eng.check(&marked, None, None).unwrap();
        assert_eq!(report.outcome, MiterOutcome::Equivalent);
        // X vs X' differ (signatures split them), but F vs F' converge.
        assert_eq!(report.strash_proven, 0);
        assert!(report.cut_points_proven >= 1, "{report:?}");

        // Second check of the same variant: the merge persisted, so the
        // output pair is now structurally proven with zero conflicts.
        let again = eng.check(&marked, None, None).unwrap();
        assert_eq!(again.outcome, MiterOutcome::Equivalent);
        assert_eq!(again.strash_proven, 1);
        assert_eq!(again.conflicts, 0);
    }

    #[test]
    fn inequivalent_candidate_yields_concrete_counterexample() {
        let golden = fig1(false);
        let lib = golden.library().clone();
        let mut wrong = Netlist::new("wrong", lib);
        let a = wrong.add_primary_input("A");
        let b = wrong.add_primary_input("B");
        let _c = wrong.add_primary_input("C");
        let d = wrong.add_primary_input("D");
        let and2 = wrong.library().cell_for(PrimitiveFn::And, 2).unwrap();
        let or2 = wrong.library().cell_for(PrimitiveFn::Or, 2).unwrap();
        let x = wrong.add_gate("gx", and2, &[a, b]);
        let f = wrong.add_gate("gf", or2, &[wrong.gate_output(x), d]);
        wrong.set_primary_output(wrong.gate_output(f));

        let mut eng = SweepEngine::new(&golden, SweepOptions::default());
        match eng.check(&wrong, None, None).unwrap().outcome {
            MiterOutcome::Counterexample(inputs) => {
                assert_eq!(inputs.len(), 4);
                assert_ne!(golden.eval(&inputs), wrong.eval(&inputs));
            }
            other => panic!("expected counterexample, got {other:?}"),
        }
    }

    #[test]
    fn structurally_different_but_equal_uses_output_query() {
        // XOR chains associated in opposite orders: no strash match, no
        // interior signature-equal pairs, so the proof lands on the final
        // output query of the shared incremental solver.
        let build = |reversed: bool| {
            let lib = CellLibrary::standard();
            let mut n = Netlist::new("xors", lib);
            let mut pis: Vec<_> = (0..8)
                .map(|i| n.add_primary_input(format!("i{i}")))
                .collect();
            if reversed {
                pis.reverse();
            }
            let xor2 = n.library().cell_for(PrimitiveFn::Xor, 2).unwrap();
            let mut acc = pis[0];
            for (k, &pi) in pis.iter().enumerate().skip(1) {
                let g = n.add_gate(format!("x{k}"), xor2, &[acc, pi]);
                acc = n.gate_output(g);
            }
            n.set_primary_output(acc);
            n
        };
        let golden = build(false);
        let cand = build(true);
        let mut eng = SweepEngine::new(&golden, SweepOptions::default());
        let report = eng.check(&cand, None, None).unwrap();
        assert_eq!(report.outcome, MiterOutcome::Equivalent);
        assert!(report.conflicts > 0, "a real proof was required");
        // Once proven, the classes stay merged for the next check.
        let again = eng.check(&cand, None, None).unwrap();
        assert_eq!(again.strash_proven, 1);
        assert_eq!(again.conflicts, 0);
    }

    #[test]
    fn budget_exhaustion_is_honest_undecided() {
        let build = |reversed: bool| {
            let lib = CellLibrary::standard();
            let mut n = Netlist::new("xors", lib);
            let mut pis: Vec<_> = (0..12)
                .map(|i| n.add_primary_input(format!("i{i}")))
                .collect();
            if reversed {
                pis.reverse();
            }
            let xor2 = n.library().cell_for(PrimitiveFn::Xor, 2).unwrap();
            let mut acc = pis[0];
            for (k, &pi) in pis.iter().enumerate().skip(1) {
                let g = n.add_gate(format!("x{k}"), xor2, &[acc, pi]);
                acc = n.gate_output(g);
            }
            n.set_primary_output(acc);
            n
        };
        let golden = build(false);
        let cand = build(true);
        let mut eng = SweepEngine::new(&golden, SweepOptions::default());
        let starved = eng.check(&cand, Some(0), None).unwrap();
        assert_eq!(starved.outcome, MiterOutcome::Undecided);
        // Progress persists: an unbounded retry completes the proof.
        let done = eng.check(&cand, None, None).unwrap();
        assert_eq!(done.outcome, MiterOutcome::Equivalent);
    }

    #[test]
    fn interface_mismatch_is_an_error() {
        let golden = fig1(false);
        let lib = golden.library().clone();
        let mut tiny = Netlist::new("tiny", lib);
        let a = tiny.add_primary_input("a");
        tiny.set_primary_output(a);
        let mut eng = SweepEngine::new(&golden, SweepOptions::default());
        assert!(matches!(
            eng.check(&tiny, None, None),
            Err(EquivError::InputCountMismatch { .. })
        ));
    }

    #[test]
    fn buf_and_double_inv_collapse() {
        let lib = CellLibrary::standard();
        let golden = {
            let mut n = Netlist::new("plain", lib.clone());
            let a = n.add_primary_input("a");
            let b = n.add_primary_input("b");
            let and2 = n.library().cell_for(PrimitiveFn::And, 2).unwrap();
            let g = n.add_gate("g", and2, &[a, b]);
            n.set_primary_output(n.gate_output(g));
            n
        };
        let cand = {
            let mut n = Netlist::new("buffy", lib);
            let a = n.add_primary_input("a");
            let b = n.add_primary_input("b");
            let buf = n.library().cell_for(PrimitiveFn::Buf, 1).unwrap();
            let inv = n.library().cell_for(PrimitiveFn::Inv, 1).unwrap();
            let and2 = n.library().cell_for(PrimitiveFn::And, 2).unwrap();
            let ab = n.add_gate("ab", buf, &[a]);
            let n1 = n.add_gate("n1", inv, &[n.gate_output(ab)]);
            let n2 = n.add_gate("n2", inv, &[n.gate_output(n1)]);
            // AND(b, inv(inv(buf(a)))) with swapped children.
            let g = n.add_gate("g", and2, &[b, n.gate_output(n2)]);
            n.set_primary_output(n.gate_output(g));
            n
        };
        let mut eng = SweepEngine::new(&golden, SweepOptions::default());
        let report = eng.check(&cand, None, None).unwrap();
        assert_eq!(report.outcome, MiterOutcome::Equivalent);
        assert_eq!(report.strash_proven, 1, "canonicalization alone suffices");
        assert_eq!(report.conflicts, 0);
    }
}
