//! Differential suite for the solver tier: every [`SolverConfig`]
//! profile and every portfolio width must return the **same verdict** on
//! the same formula. The heuristics (LBD tracking, DB reduction,
//! rephasing, chronological backtracking, racing) may only change how the
//! search runs, never what it concludes — this is the determinism
//! contract `odcfp verify --solver-profile/--portfolio` relies on.

use odcfp_sat::portfolio::{self, RaceOptions};
use odcfp_sat::{parse_dimacs, CnfBuilder, SolveResult, Solver, SolverConfig};

/// The DIMACS corpus: inline instances mirroring the fixtures in
/// `crates/sat/src/dimacs.rs`, spanning trivially SAT, trivially UNSAT,
/// propagation-only, and search-requiring formulas.
const CORPUS: &[(&str, &str)] = &[
    ("unit_sat", "p cnf 2 2\n1 -2 0\n2 0\n"),
    ("unit_unsat", "p cnf 1 2\n1 0\n-1 0\n"),
    (
        "chain_sat",
        "p cnf 5 5\n1 2 0\n-1 3 0\n-3 4 0\n-4 5 0\n-5 -2 0\n",
    ),
    (
        "tiny_unsat",
        "p cnf 3 8\n1 2 3 0\n1 2 -3 0\n1 -2 3 0\n1 -2 -3 0\n\
         -1 2 3 0\n-1 2 -3 0\n-1 -2 3 0\n-1 -2 -3 0\n",
    ),
    (
        "pigeonhole_3_2",
        // 3 pigeons, 2 holes: p_ij = pigeon i in hole j. UNSAT.
        "p cnf 6 9\n1 2 0\n3 4 0\n5 6 0\n\
         -1 -3 0\n-1 -5 0\n-3 -5 0\n-2 -4 0\n-2 -6 0\n-4 -6 0\n",
    ),
];

/// An UNSAT xor-chain miter over `width` inputs: forward vs reversed
/// association with the difference asserted. Needs genuine CDCL search.
fn xor_miter(width: usize) -> CnfBuilder {
    use odcfp_sat::Lit;
    let mut cnf = CnfBuilder::new();
    let inputs = cnf.new_vars(width);
    let xor2 = |cnf: &mut CnfBuilder, a, b| {
        let t = cnf.new_var();
        cnf.add_clause([Lit::neg(t), Lit::pos(a), Lit::pos(b)]);
        cnf.add_clause([Lit::neg(t), Lit::neg(a), Lit::neg(b)]);
        cnf.add_clause([Lit::pos(t), Lit::neg(a), Lit::pos(b)]);
        cnf.add_clause([Lit::pos(t), Lit::pos(a), Lit::neg(b)]);
        t
    };
    let mut acc = inputs[0];
    for &i in &inputs[1..] {
        acc = xor2(&mut cnf, acc, i);
    }
    let mut rev = inputs[width - 1];
    for &i in inputs[..width - 1].iter().rev() {
        rev = xor2(&mut cnf, rev, i);
    }
    let diff = xor2(&mut cnf, acc, rev);
    cnf.add_clause([Lit::pos(diff)]);
    cnf
}

/// The full instance set: the DIMACS corpus plus generated hard miters.
fn instances() -> Vec<(String, CnfBuilder)> {
    let mut all: Vec<(String, CnfBuilder)> = CORPUS
        .iter()
        .map(|(name, text)| ((*name).to_string(), parse_dimacs(text).expect("corpus parses")))
        .collect();
    for width in [8, 16, 24] {
        all.push((format!("xor_miter_{width}"), xor_miter(width)));
    }
    all
}

/// SAT models differ across profiles; compare verdict kinds, and check
/// any model against the formula itself instead of against a reference.
fn verdict_kind(result: &SolveResult, cnf: &CnfBuilder, label: &str) -> &'static str {
    match result {
        SolveResult::Sat(model) => {
            for i in 0..cnf.num_clauses() {
                assert!(
                    cnf.clause(i).iter().any(|&l| model.satisfies(l)),
                    "{label}: model violates clause {i}"
                );
            }
            "sat"
        }
        SolveResult::Unsat => "unsat",
        SolveResult::Unknown => "unknown",
    }
}

#[test]
fn every_profile_reaches_the_same_verdict_on_the_corpus() {
    for (name, cnf) in instances() {
        let mut reference: Option<&'static str> = None;
        for (profile, config) in SolverConfig::profiles() {
            let mut solver = Solver::from_cnf_with(&cnf, config);
            let kind = verdict_kind(&solver.solve(), &cnf, &format!("{name}/{profile}"));
            assert_ne!(kind, "unknown", "{name}/{profile}: unbounded solve decided");
            match reference {
                None => reference = Some(kind),
                Some(expect) => {
                    assert_eq!(kind, expect, "{name}: profile {profile} disagrees")
                }
            }
        }
    }
}

#[test]
fn every_portfolio_width_reaches_the_same_verdict_on_the_corpus() {
    for (name, cnf) in instances() {
        let mut solo = Solver::from_cnf(&cnf);
        let expect = verdict_kind(&solo.solve(), &cnf, &name);
        for width in [1, 2, 3, 5] {
            let opts = RaceOptions::new(width);
            let (result, report) = portfolio::race(&cnf, &[], &opts, None, None, None);
            let kind = verdict_kind(&result, &cnf, &format!("{name}/width{width}"));
            assert_eq!(kind, expect, "{name}: portfolio width {width} disagrees");
            assert_eq!(report.racers.len(), width);
            assert!(report.winner.is_some(), "{name}/width{width}: someone won");
        }
    }
}

#[test]
fn race_winner_and_verdict_are_stable_across_repeats() {
    // The portfolio's synchronized-round design makes the winner (and
    // therefore any witness) a pure function of the formula — re-running
    // the same race must reproduce it exactly, regardless of OS thread
    // scheduling.
    for (name, cnf) in instances() {
        let opts = RaceOptions::new(4);
        let (first_result, first) = portfolio::race(&cnf, &[], &opts, None, None, None);
        for _ in 0..3 {
            let (result, report) = portfolio::race(&cnf, &[], &opts, None, None, None);
            assert_eq!(report.winner, first.winner, "{name}: winner changed");
            assert_eq!(
                report.winner_backend, first.winner_backend,
                "{name}: winning backend changed"
            );
            assert_eq!(report.rounds, first.rounds, "{name}: round count changed");
            match (&result, &first_result) {
                (SolveResult::Sat(a), SolveResult::Sat(b)) => {
                    let vars = (0..cnf.num_vars()).map(odcfp_sat::Var::from_index);
                    for v in vars {
                        assert_eq!(a.value(v), b.value(v), "{name}: witness changed");
                    }
                }
                (a, b) => assert_eq!(
                    std::mem::discriminant(a),
                    std::mem::discriminant(b),
                    "{name}: verdict changed"
                ),
            }
        }
    }
}
