//! Technology mapping and benchmark circuit generation.
//!
//! The paper's experimental setup runs MCNC / ISCAS'85 BLIF benchmarks
//! through Berkeley ABC "with a library of gate cells" to obtain mapped
//! Verilog netlists. This crate is that stage of the flow, built from
//! scratch:
//!
//! * [`map_network`] — maps a technology-independent
//!   [`LogicNetwork`](odcfp_blif::LogicNetwork) (e.g. parsed from BLIF)
//!   onto a [`CellLibrary`](odcfp_netlist::CellLibrary), decomposing SOP
//!   covers into balanced AND/OR/NAND/NOR/INV/XOR trees;
//! * [`builder::CircuitBuilder`] — an ergonomic layer for writing
//!   generators (gate helpers, adders, multiplexers);
//! * [`benchmarks`] — deterministic generators reproducing the *class and
//!   size* of every Table II benchmark row (see `DESIGN.md` §3–4 for the
//!   substitution rationale: the original MCNC/ISCAS BLIF files are not
//!   redistributable here, and the fingerprinting method depends on
//!   structural properties — gate mix, FFC structure, depth — which the
//!   generators match).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod benchmarks;
pub mod builder;
mod map;
pub mod opt;
pub mod resynth;

pub use map::{map_network, MapError};
pub use resynth::{resynthesize, unmap, ResynthError, ResynthLevel, ResynthStats};
