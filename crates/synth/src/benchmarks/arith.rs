//! Arithmetic circuit generators: ripple-carry adders and the C6288-class
//! array multiplier.

use std::sync::Arc;

use odcfp_netlist::{CellLibrary, NetId, Netlist};

use crate::builder::CircuitBuilder;

/// How full adders inside generated arithmetic circuits are implemented.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AdderStyle {
    /// XOR2/AND2/OR2 cells (5 gates per full adder).
    Compact,
    /// NAND2-only expansion (the ISCAS'85 C6288 is famously built from
    /// 2-input NOR/NAND modules; this reproduces that gate-count profile).
    NandExpanded,
}

fn full_adder(
    b: &mut CircuitBuilder,
    style: AdderStyle,
    x: NetId,
    y: NetId,
    cin: NetId,
) -> (NetId, NetId) {
    match style {
        AdderStyle::Compact => b.full_adder(x, y, cin),
        AdderStyle::NandExpanded => b.full_adder_nand(x, y, cin),
    }
}

fn half_adder(b: &mut CircuitBuilder, style: AdderStyle, x: NetId, y: NetId) -> (NetId, NetId) {
    match style {
        AdderStyle::Compact => b.half_adder(x, y),
        AdderStyle::NandExpanded => {
            let s = b.xor2_nand(x, y);
            let t = b.nand2(x, y);
            let c = b.not(t);
            (s, c)
        }
    }
}

/// An n-bit ripple-carry adder with carry-in and carry-out.
///
/// Inputs `a0..`, `b0..`, `cin`; outputs `s0..`, `cout`.
pub fn ripple_adder(library: Arc<CellLibrary>, bits: usize, style: AdderStyle) -> Netlist {
    let mut b = CircuitBuilder::new(format!("add{bits}"), library);
    let xs = b.inputs("a", bits);
    let ys = b.inputs("b", bits);
    let mut carry = b.input("cin");
    for i in 0..bits {
        let (s, c) = full_adder(&mut b, style, xs[i], ys[i], carry);
        b.output(s);
        carry = c;
    }
    b.output(carry);
    b.finish()
}

/// An n×n array multiplier (the C6288 class: C6288 is a 16×16 array
/// multiplier).
///
/// Inputs `a0..`, `b0..`; outputs `p0..p{2n-1}`. The array forms n² partial
/// products with AND2 gates and reduces them with rows of half/full adders,
/// exactly the carry-save structure of the original benchmark.
pub fn array_multiplier(library: Arc<CellLibrary>, n: usize, style: AdderStyle) -> Netlist {
    assert!(n >= 2, "multiplier needs at least 2 bits");
    let mut b = CircuitBuilder::new(format!("mul{n}x{n}"), library);
    let xs = b.inputs("a", n);
    let ys = b.inputs("b", n);
    // Partial products pp[i][j] = a_i & b_j contributes to output bit i+j.
    // One spare column absorbs structural carries out of bit 2n-1 (they are
    // semantically zero for an n×n product).
    let mut columns: Vec<Vec<NetId>> = vec![Vec::new(); 2 * n + 1];
    for i in 0..n {
        for j in 0..n {
            let pp = b.and2(xs[i], ys[j]);
            columns[i + j].push(pp);
        }
    }
    // Carry-save reduction, column by column. The spare top column is left
    // unreduced; its (semantically zero) bits stay internal.
    for col in 0..(2 * n) {
        while columns[col].len() > 1 {
            let bits_here = std::mem::take(&mut columns[col]);
            let mut kept: Vec<NetId> = Vec::new();
            let mut iter = bits_here.into_iter();
            loop {
                match (iter.next(), iter.next(), iter.next()) {
                    (Some(x), Some(y), Some(z)) => {
                        let (s, c) = full_adder(&mut b, style, x, y, z);
                        kept.push(s);
                        columns[col + 1].push(c);
                    }
                    (Some(x), Some(y), None) => {
                        let (s, c) = half_adder(&mut b, style, x, y);
                        kept.push(s);
                        columns[col + 1].push(c);
                        break;
                    }
                    (Some(x), None, None) => {
                        kept.push(x);
                        break;
                    }
                    _ => break,
                }
            }
            columns[col] = kept;
        }
    }
    for col in columns.iter().take(2 * n) {
        match col.first() {
            Some(&bit) => b.output(bit),
            None => {
                let zero = b.constant(false);
                b.output(zero);
            }
        }
    }
    b.finish()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn eval_num(n: &Netlist, inputs: &[bool]) -> u64 {
        n.eval(inputs)
            .iter()
            .enumerate()
            .map(|(i, &b)| (b as u64) << i)
            .sum()
    }

    #[test]
    fn adder_adds() {
        for style in [AdderStyle::Compact, AdderStyle::NandExpanded] {
            let n = ripple_adder(CellLibrary::standard(), 4, style);
            for a in 0..16u64 {
                for bv in [0u64, 3, 9, 15] {
                    for cin in [0u64, 1] {
                        let mut bits = Vec::new();
                        for i in 0..4 {
                            bits.push((a >> i) & 1 == 1);
                        }
                        for i in 0..4 {
                            bits.push((bv >> i) & 1 == 1);
                        }
                        bits.push(cin == 1);
                        assert_eq!(
                            eval_num(&n, &bits),
                            a + bv + cin,
                            "{style:?} {a}+{bv}+{cin}"
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn multiplier_multiplies() {
        for style in [AdderStyle::Compact, AdderStyle::NandExpanded] {
            let n = array_multiplier(CellLibrary::standard(), 4, style);
            assert_eq!(n.primary_outputs().len(), 8);
            for a in [0u64, 1, 5, 9, 15] {
                for bv in [0u64, 2, 7, 11, 15] {
                    let mut bits = Vec::new();
                    for i in 0..4 {
                        bits.push((a >> i) & 1 == 1);
                    }
                    for i in 0..4 {
                        bits.push((bv >> i) & 1 == 1);
                    }
                    assert_eq!(eval_num(&n, &bits), a * bv, "{style:?} {a}*{bv}");
                }
            }
        }
    }

    #[test]
    fn c6288_class_size() {
        let n = array_multiplier(CellLibrary::standard(), 16, AdderStyle::NandExpanded);
        let gates = n.num_gates();
        assert!(
            (2500..3600).contains(&gates),
            "16x16 NAND multiplier gate count {gates} out of C6288 range"
        );
    }
}
