//! Single-error-correction circuits: the C499/C1355/C1908 class.
//!
//! The ISCAS'85 C499 (and its NAND-expanded twin C1355) is a 32-bit
//! single-error-correcting network; C1908 is a 16-bit SEC/DED translator.
//! The generator computes syndrome bits as XOR trees over data groups,
//! compares them with check-bit inputs, decodes the syndrome with per-bit
//! AND trees and corrects the data word with a final XOR stage — the same
//! three-stage XOR-heavy structure, which is what matters to ODC analysis
//! (XOR gates have no ODCs; the decode ANDs do).

use std::sync::Arc;

use odcfp_netlist::{CellLibrary, NetId, Netlist};

use crate::builder::CircuitBuilder;

/// Parameters of [`sec_circuit`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SecParams {
    /// Number of data bits.
    pub data_bits: usize,
    /// Number of syndrome (check) bits.
    pub syndrome_bits: usize,
    /// Expand the syndrome-tree XOR2s into four NAND2 gates each.
    pub expand_syndrome: bool,
    /// Expand the correction-stage XOR2s into four NAND2 gates each (the
    /// C1355 trick applied to the output stage).
    pub expand_correction: bool,
    /// Add a double-error-detect parity output over all data bits.
    pub ded_parity: bool,
}

impl SecParams {
    /// The 32-bit SEC profile matching C499's size (paper: 409 gates).
    pub fn c499_like() -> Self {
        SecParams {
            data_bits: 32,
            syndrome_bits: 9,
            expand_syndrome: false,
            expand_correction: false,
            ded_parity: false,
        }
    }

    /// C1355: the C499 function with NAND-expanded XOR stages (paper: 412
    /// gates after mapping — ABC re-extracts most XORs, so only the output
    /// stage stays expanded here to keep the circuits distinct but
    /// near-equal in size).
    pub fn c1355_like() -> Self {
        SecParams {
            data_bits: 32,
            syndrome_bits: 7,
            expand_syndrome: false,
            expand_correction: true,
            ded_parity: false,
        }
    }

    /// C1908: 16-bit SEC/DED (paper: 395 gates).
    pub fn c1908_like() -> Self {
        SecParams {
            data_bits: 16,
            syndrome_bits: 8,
            expand_syndrome: true,
            expand_correction: false,
            ded_parity: true,
        }
    }
}

fn xor2(b: &mut CircuitBuilder, expanded: bool, x: NetId, y: NetId) -> NetId {
    if expanded {
        b.xor2_nand(x, y)
    } else {
        b.xor2(x, y)
    }
}

fn xor_tree(b: &mut CircuitBuilder, expanded: bool, ins: &[NetId]) -> NetId {
    let mut level = ins.to_vec();
    assert!(!level.is_empty());
    while level.len() > 1 {
        let mut next = Vec::with_capacity(level.len().div_ceil(2));
        for chunk in level.chunks(2) {
            if chunk.len() == 1 {
                next.push(chunk[0]);
            } else {
                next.push(xor2(b, expanded, chunk[0], chunk[1]));
            }
        }
        level = next;
    }
    level[0]
}

/// Membership of data bit `d` in syndrome group `s`, for a code over
/// `data_bits` data bits: the low groups use the Hamming pattern of `d + 1`
/// (distinct and nonzero per bit), and any surplus high groups test
/// complemented address bits so every group has members. The per-bit
/// patterns stay distinct because their low parts already are.
fn in_group(d: usize, s: usize, data_bits: usize) -> bool {
    let nb = usize::BITS as usize - data_bits.leading_zeros() as usize;
    if s < nb {
        ((d + 1) >> s) & 1 == 1
    } else {
        (d >> (s - nb)) & 1 == 0
    }
}

/// Generates a single-error-correcting circuit.
///
/// Inputs: `d0..` data bits, then `c0..` received check bits. Outputs: the
/// corrected data word (and a DED parity flag when configured).
pub fn sec_circuit(library: Arc<CellLibrary>, p: SecParams) -> Netlist {
    assert!(p.syndrome_bits >= 2, "need at least two syndrome bits");
    assert!(
        p.data_bits >= 4 && p.data_bits < (1 << p.syndrome_bits),
        "syndrome must address every data bit"
    );
    let mut b = CircuitBuilder::new("sec", library);
    let data = b.inputs("d", p.data_bits);
    let checks = b.inputs("c", p.syndrome_bits);

    // Stage 1: recomputed parities and syndrome = parity XOR check.
    let syndromes: Vec<NetId> = (0..p.syndrome_bits)
        .map(|s| {
            let members: Vec<NetId> = (0..p.data_bits)
                .filter(|&d| in_group(d, s, p.data_bits))
                .map(|d| data[d])
                .collect();
            let parity = xor_tree(&mut b, p.expand_syndrome, &members);
            xor2(&mut b, p.expand_syndrome, parity, checks[s])
        })
        .collect();

    // Stage 2: per-data-bit decode — AND over syndrome literals.
    let inverted: Vec<NetId> = syndromes.iter().map(|&s| b.not(s)).collect();
    let flips: Vec<NetId> = (0..p.data_bits)
        .map(|d| {
            let lits: Vec<NetId> = (0..p.syndrome_bits)
                .map(|s| {
                    if in_group(d, s, p.data_bits) {
                        syndromes[s]
                    } else {
                        inverted[s]
                    }
                })
                .collect();
            // 2-input AND tree: the deep decode cones of the original.
            let mut level = lits;
            while level.len() > 1 {
                let mut next = Vec::new();
                for chunk in level.chunks(2) {
                    if chunk.len() == 1 {
                        next.push(chunk[0]);
                    } else {
                        next.push(b.and2(chunk[0], chunk[1]));
                    }
                }
                level = next;
            }
            level[0]
        })
        .collect();

    // Stage 3: correction.
    for d in 0..p.data_bits {
        let corrected = xor2(&mut b, p.expand_correction, data[d], flips[d]);
        b.output(corrected);
    }
    if p.ded_parity {
        let mut all: Vec<NetId> = data.clone();
        all.extend(&checks);
        let parity = xor_tree(&mut b, p.expand_correction, &all);
        b.output(parity);
    }
    b.finish()
}

#[cfg(test)]
mod tests {
    use super::*;
    use odcfp_logic::rng::Xoshiro256;

    /// Computes the check bits the circuit expects for a data word.
    fn encode(p: &SecParams, data: u64) -> Vec<bool> {
        (0..p.syndrome_bits)
            .map(|s| {
                (0..p.data_bits)
                    .filter(|&d| in_group(d, s, p.data_bits))
                    .fold(false, |acc, d| acc ^ ((data >> d) & 1 == 1))
            })
            .collect()
    }

    fn run(p: &SecParams, n: &Netlist, data: u64, checks: &[bool]) -> u64 {
        let mut bits: Vec<bool> = (0..p.data_bits).map(|d| (data >> d) & 1 == 1).collect();
        bits.extend_from_slice(checks);
        n.eval(&bits)
            .iter()
            .take(p.data_bits)
            .enumerate()
            .map(|(i, &v)| (v as u64) << i)
            .sum()
    }

    #[test]
    fn clean_words_pass_through() {
        let p = SecParams {
            data_bits: 8,
            syndrome_bits: 4,
            expand_syndrome: false,
            expand_correction: false,
            ded_parity: false,
        };
        let n = sec_circuit(CellLibrary::standard(), p);
        let mut rng = Xoshiro256::seed_from_u64(5);
        for _ in 0..50 {
            let data = rng.next_u64() & 0xFF;
            let checks = encode(&p, data);
            assert_eq!(run(&p, &n, data, &checks), data);
        }
    }

    #[test]
    fn single_bit_errors_corrected() {
        let p = SecParams {
            data_bits: 8,
            syndrome_bits: 4,
            expand_syndrome: true,
            expand_correction: true,
            ded_parity: false,
        };
        let n = sec_circuit(CellLibrary::standard(), p);
        let mut rng = Xoshiro256::seed_from_u64(6);
        for _ in 0..30 {
            let data = rng.next_u64() & 0xFF;
            let checks = encode(&p, data);
            let flip = rng.next_below(8);
            let corrupted = data ^ (1 << flip);
            assert_eq!(
                run(&p, &n, corrupted, &checks),
                data,
                "data {data:08b} flip {flip}"
            );
        }
    }

    #[test]
    fn sizes_land_in_benchmark_range() {
        let lib = CellLibrary::standard();
        let c499 = sec_circuit(lib.clone(), SecParams::c499_like());
        let c1355 = sec_circuit(lib.clone(), SecParams::c1355_like());
        let c1908 = sec_circuit(lib, SecParams::c1908_like());
        // Calibration targets: paper gate counts 409 / 412 / 395.
        for (n, target) in [(&c499, 409usize), (&c1355, 412), (&c1908, 395)] {
            let g = n.num_gates();
            let lo = target * 60 / 100;
            let hi = target * 170 / 100;
            assert!(
                (lo..hi).contains(&g),
                "{}: {g} gates vs target {target}",
                n.name()
            );
        }
    }

    #[test]
    fn ded_parity_output_present() {
        let p = SecParams::c1908_like();
        let n = sec_circuit(CellLibrary::standard(), p);
        assert_eq!(n.primary_outputs().len(), p.data_bits + 1);
    }
}
