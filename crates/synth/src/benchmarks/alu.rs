//! ALU-class and priority-controller generators (C880/C3540/dalu/C432).

use std::sync::Arc;

use odcfp_netlist::{CellLibrary, NetId, Netlist};

use crate::builder::CircuitBuilder;

/// Parameters of [`alu`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AluParams {
    /// Datapath width in bits.
    pub width: usize,
    /// Number of operation-select inputs (the ALU offers `2^select_bits`
    /// operations).
    pub select_bits: usize,
    /// Number of cascaded ALU stages (a second stage models
    /// accumulator-style dedicated ALUs).
    pub stages: usize,
    /// Append a BCD correction stage per nibble (the C3540 flavour).
    pub bcd: bool,
    /// Emit carry, zero and parity flags.
    pub flags: bool,
}

impl AluParams {
    /// The 8-bit ALU profile of C880 (paper: 255 gates).
    pub fn c880_like() -> Self {
        AluParams {
            width: 8,
            select_bits: 3,
            stages: 1,
            bcd: false,
            flags: true,
        }
    }

    /// The 8-bit ALU-with-BCD profile of C3540 (paper: 851 gates).
    pub fn c3540_like() -> Self {
        AluParams {
            width: 12,
            select_bits: 3,
            stages: 2,
            bcd: true,
            flags: true,
        }
    }

    /// The dedicated-ALU profile of dalu (paper: 836 gates).
    pub fn dalu_like() -> Self {
        AluParams {
            width: 13,
            select_bits: 3,
            stages: 2,
            bcd: false,
            flags: true,
        }
    }
}

/// One ALU stage over operand vectors `a` and `b`: per-bit logic units, a
/// ripple adder, and a per-bit mux tree steered by `sel`.
fn alu_stage(
    b: &mut CircuitBuilder,
    a_bits: &[NetId],
    b_bits: &[NetId],
    sel: &[NetId],
    cin: NetId,
) -> (Vec<NetId>, NetId) {
    use odcfp_logic::PrimitiveFn as F;
    let width = a_bits.len();
    let num_ops = 1usize << sel.len();
    // Adder chain.
    let mut carry = cin;
    let mut sums = Vec::with_capacity(width);
    for i in 0..width {
        let (s, c) = b.full_adder(a_bits[i], b_bits[i], carry);
        sums.push(s);
        carry = c;
    }
    let mut outs = Vec::with_capacity(width);
    for i in 0..width {
        // Operation table; truncated to num_ops.
        let mut ops: Vec<NetId> = Vec::with_capacity(num_ops);
        ops.push(sums[i]);
        ops.push(b.gate(F::And, &[a_bits[i], b_bits[i]]));
        ops.push(b.gate(F::Or, &[a_bits[i], b_bits[i]]));
        ops.push(b.gate(F::Xor, &[a_bits[i], b_bits[i]]));
        if num_ops > 4 {
            ops.push(b.gate(F::Nor, &[a_bits[i], b_bits[i]]));
            ops.push(b.gate(F::Nand, &[a_bits[i], b_bits[i]]));
            // Shift left (bit 0 pulls in the carry-in as a serial input).
            ops.push(if i == 0 { cin } else { a_bits[i - 1] });
            ops.push(b_bits[i]);
        }
        ops.truncate(num_ops);
        // Mux tree over the select bits.
        let mut level = ops;
        for &s in sel.iter().take(usize::BITS as usize) {
            if level.len() == 1 {
                break;
            }
            let mut next = Vec::with_capacity(level.len() / 2);
            for pair in level.chunks(2) {
                if pair.len() == 2 {
                    next.push(b.mux2(s, pair[0], pair[1]));
                } else {
                    next.push(pair[0]);
                }
            }
            level = next;
        }
        outs.push(level[0]);
    }
    (outs, carry)
}

/// A BCD correction stage: for each 4-bit nibble, add 6 when the nibble
/// exceeds 9 (the decimal-adjust step of a BCD ALU).
fn bcd_correct(b: &mut CircuitBuilder, bits: &[NetId]) -> Vec<NetId> {
    let mut out = Vec::with_capacity(bits.len());
    for nibble in bits.chunks(4) {
        if nibble.len() < 4 {
            out.extend_from_slice(nibble);
            continue;
        }
        // gt9 = n3 & (n2 | n1).
        let t = b.or2(nibble[2], nibble[1]);
        let gt9 = b.and2(nibble[3], t);
        // n + 6 = n + 0b0110 (ripple through bits 1..3).
        let zero = b.constant(false);
        let (s1, c1) = b.full_adder(nibble[1], gt9, zero);
        let (s2, c2) = b.full_adder(nibble[2], gt9, c1);
        let (s3, _c3) = b.full_adder(nibble[3], zero, c2);
        out.push(nibble[0]);
        for (raw, adj) in [(nibble[1], s1), (nibble[2], s2), (nibble[3], s3)] {
            let chosen = b.mux2(gt9, raw, adj);
            out.push(chosen);
        }
    }
    out
}

/// Generates an ALU benchmark: see [`AluParams`].
///
/// Inputs: `a0..`, `b0..`, `s0..` (select), `cin`. Outputs: the result word
/// plus flags when configured.
pub fn alu(library: Arc<CellLibrary>, p: AluParams) -> Netlist {
    assert!(p.width >= 2 && p.select_bits >= 1 && p.stages >= 1);
    let mut b = CircuitBuilder::new("alu", library);
    let a_bits = b.inputs("a", p.width);
    let b_bits = b.inputs("b", p.width);
    let sel = b.inputs("s", p.select_bits);
    let cin = b.input("cin");

    let (mut result, mut carry) = alu_stage(&mut b, &a_bits, &b_bits, &sel, cin);
    for _ in 1..p.stages {
        let (r, c) = alu_stage(&mut b, &result, &b_bits, &sel, carry);
        result = r;
        carry = c;
    }
    if p.bcd {
        result = bcd_correct(&mut b, &result);
    }
    for &bit in &result {
        b.output(bit);
    }
    if p.flags {
        b.output(carry);
        // zero = NOR over the result word (tree of ORs + final NOR).
        let or_all = b.tree(odcfp_logic::PrimitiveFn::Or, &result);
        let zero = b.not(or_all);
        b.output(zero);
        let parity = b.xor_tree(&result);
        b.output(parity);
    }
    b.finish()
}

/// Generates a C432-class priority interrupt controller: `channels` request
/// lines split into `groups` groups with in-group and cross-group priority,
/// per-group enable inputs, an encoded grant index and a valid flag.
pub fn priority_controller(
    library: Arc<CellLibrary>,
    channels: usize,
    groups: usize,
) -> Netlist {
    assert!(groups >= 1 && channels >= groups && channels.is_multiple_of(groups));
    let per_group = channels / groups;
    let mut b = CircuitBuilder::new("prio", library);
    let requests = b.inputs("req", channels);
    let enables = b.inputs("en", groups * 3);

    // In-group priority: grant_i = req_i & !(req_0 | .. | req_{i-1}).
    let mut grants: Vec<NetId> = Vec::with_capacity(channels);
    let mut group_any: Vec<NetId> = Vec::with_capacity(groups);
    for g in 0..groups {
        let base = g * per_group;
        let mut prefix: Option<NetId> = None;
        for i in 0..per_group {
            let req = requests[base + i];
            let grant = match prefix {
                None => req,
                Some(p) => {
                    let np = b.not(p);
                    b.and2(req, np)
                }
            };
            grants.push(grant);
            prefix = Some(match prefix {
                None => req,
                Some(p) => b.or2(p, req),
            });
        }
        // Group enable: majority of its three enable pins.
        let e = &enables[g * 3..g * 3 + 3];
        let m1 = b.and2(e[0], e[1]);
        let m2 = b.and2(e[0], e[2]);
        let m3 = b.and2(e[1], e[2]);
        let t = b.or2(m1, m2);
        let en = b.or2(t, m3);
        let any = b.and2(prefix.expect("per_group >= 1"), en);
        group_any.push(any);
    }

    // Cross-group priority: group g wins iff no lower-indexed group is any.
    let mut group_sel: Vec<NetId> = Vec::with_capacity(groups);
    let mut prefix: Option<NetId> = None;
    for &any in &group_any {
        let sel = match prefix {
            None => any,
            Some(p) => {
                let np = b.not(p);
                b.and2(any, np)
            }
        };
        group_sel.push(sel);
        prefix = Some(match prefix {
            None => any,
            Some(p) => b.or2(p, any),
        });
    }

    // Final per-channel grant gated by its group's selection.
    let final_grants: Vec<NetId> = grants
        .iter()
        .enumerate()
        .map(|(i, &gr)| b.and2(gr, group_sel[i / per_group]))
        .collect();

    // Encoded grant index: bit k = OR of grants whose index has bit k set.
    let code_bits = usize::BITS as usize - (channels - 1).leading_zeros() as usize;
    for k in 0..code_bits {
        let members: Vec<NetId> = final_grants
            .iter()
            .enumerate()
            .filter(|(i, _)| (i >> k) & 1 == 1)
            .map(|(_, &n)| n)
            .collect();
        let bit = b.tree(odcfp_logic::PrimitiveFn::Or, &members);
        b.output(bit);
    }
    let valid = b.tree(odcfp_logic::PrimitiveFn::Or, &group_sel);
    b.output(valid);
    // A daisy-chain acknowledge parity line (keeps the output count at the
    // original's seven and adds the XOR column the real controller has).
    let parity = b.xor_tree(&final_grants);
    b.output(parity);
    b.finish()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn eval_bits(n: &Netlist, bits: &[bool]) -> Vec<bool> {
        n.eval(bits)
    }

    #[test]
    fn alu_operations_correct() {
        let p = AluParams {
            width: 4,
            select_bits: 2,
            stages: 1,
            bcd: false,
            flags: true,
        };
        let n = alu(CellLibrary::standard(), p);
        // inputs: a0..3, b0..3, s0..1, cin
        let run = |a: u64, bv: u64, op: usize| -> (u64, bool) {
            let mut bits = Vec::new();
            for i in 0..4 {
                bits.push((a >> i) & 1 == 1);
            }
            for i in 0..4 {
                bits.push((bv >> i) & 1 == 1);
            }
            bits.push(op & 1 == 1);
            bits.push(op & 2 == 2);
            bits.push(false); // cin
            let out = eval_bits(&n, &bits);
            let word: u64 = out[..4]
                .iter()
                .enumerate()
                .map(|(i, &v)| (v as u64) << i)
                .sum();
            (word, out[4]) // (result, carry)
        };
        for a in [0u64, 3, 9, 15] {
            for bv in [0u64, 5, 10, 15] {
                assert_eq!(run(a, bv, 0).0, (a + bv) & 0xF, "add {a} {bv}");
                assert_eq!(run(a, bv, 0).1, a + bv > 15, "carry {a} {bv}");
                assert_eq!(run(a, bv, 1).0, a & bv, "and");
                assert_eq!(run(a, bv, 2).0, a | bv, "or");
                assert_eq!(run(a, bv, 3).0, a ^ bv, "xor");
            }
        }
    }

    #[test]
    fn alu_zero_flag() {
        let p = AluParams {
            width: 4,
            select_bits: 2,
            stages: 1,
            bcd: false,
            flags: true,
        };
        let n = alu(CellLibrary::standard(), p);
        // a=0, b=0, op=and -> result 0, zero flag set.
        let mut bits = vec![false; 4 + 4];
        bits.push(true); // s0 -> op 1 = and
        bits.push(false);
        bits.push(false);
        let out = n.eval(&bits);
        assert!(out[5], "zero flag expected (output order: word, carry, zero, parity)");
    }

    #[test]
    fn bcd_stage_adjusts() {
        // Isolate bcd_correct through a tiny ALU: width 4, add, a=7, b=6
        // -> raw 13 -> BCD 0b0011 with the gt9 mux taking the adjusted path.
        let p = AluParams {
            width: 4,
            select_bits: 1,
            stages: 1,
            bcd: true,
            flags: false,
        };
        let n = alu(CellLibrary::standard(), p);
        let mut bits = Vec::new();
        for i in 0..4 {
            bits.push((7u64 >> i) & 1 == 1);
        }
        for i in 0..4 {
            bits.push((6u64 >> i) & 1 == 1);
        }
        bits.push(false); // s0 = add
        bits.push(false); // cin
        let out = n.eval(&bits);
        let word: u64 = out[..4]
            .iter()
            .enumerate()
            .map(|(i, &v)| (v as u64) << i)
            .sum();
        assert_eq!(word, 3, "13 decimal-adjusted is 3 (plus dropped carry)");
    }

    #[test]
    fn priority_controller_grants_highest_priority() {
        let n = priority_controller(CellLibrary::standard(), 9, 3);
        let channels = 9;
        // All enables on (majority needs 2 of 3).
        let run = |reqs: &[usize]| -> (u64, bool) {
            let mut bits = vec![false; channels];
            for &r in reqs {
                bits[r] = true;
            }
            bits.extend(std::iter::repeat_n(true, 9)); // enables
            let out = n.eval(&bits);
            // Outputs: code bits, valid, parity.
            let code: u64 = out[..out.len() - 2]
                .iter()
                .enumerate()
                .map(|(i, &v)| (v as u64) << i)
                .sum();
            (code, out[out.len() - 2])
        };
        assert_eq!(run(&[4]), (4, true));
        assert_eq!(run(&[7, 4]), (4, true), "lower channel wins");
        assert_eq!(run(&[8, 2, 5]), (2, true));
        assert_eq!(run(&[]), (0, false), "no request, no valid");
    }

    #[test]
    fn disabled_group_yields_to_next() {
        let n = priority_controller(CellLibrary::standard(), 9, 3);
        // Request on channel 1 (group 0) and channel 6 (group 2), but group
        // 0's enables are off.
        let mut bits = vec![false; 9];
        bits[1] = true;
        bits[6] = true;
        let mut enables = vec![true; 9];
        enables[0] = false;
        enables[1] = false;
        enables[2] = false;
        bits.extend(enables);
        let out = n.eval(&bits);
        let code: u64 = out[..out.len() - 2]
            .iter()
            .enumerate()
            .map(|(i, &v)| (v as u64) << i)
            .sum();
        assert_eq!(code, 6);
        assert!(out[out.len() - 2], "valid flag");
    }

    #[test]
    fn benchmark_sizes() {
        let lib = CellLibrary::standard();
        let c880 = alu(lib.clone(), AluParams::c880_like());
        let c432 = priority_controller(lib, 27, 3);
        // Calibration corridors around the paper's 255 / 166.
        let g880 = c880.num_gates();
        let g432 = c432.num_gates();
        assert!((150..450).contains(&g880), "c880-like: {g880}");
        assert!((100..280).contains(&g432), "c432-like: {g432}");
    }
}
