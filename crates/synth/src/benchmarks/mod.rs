//! Deterministic benchmark circuit generators.
//!
//! The paper evaluates on 14 MCNC / ISCAS'85 circuits (Table II). Those BLIF
//! files cannot be redistributed here, so this module generates circuits of
//! the same *class* and *size* for each row — see `DESIGN.md` §3–4. The
//! fingerprinting method reads only structural properties (gate functions
//! with controlling values, fanout-free cones, depth), so matching class,
//! gate count and gate mix reproduces the experimental shape.
//!
//! All generators are pure functions of their parameters and seeds.

pub mod alu;
pub mod arith;
pub mod ecc;
pub mod pla;
pub mod random;

use std::sync::Arc;

use odcfp_netlist::{CellLibrary, Netlist};

/// The benchmark names of the paper's Table II, in row order.
pub const TABLE2_NAMES: [&str; 14] = [
    "c432", "c499", "c880", "c1355", "c1908", "c3540", "c6288", "des", "k2", "t481", "i10",
    "i8", "dalu", "vda",
];

/// Generates the workspace's stand-in for a Table II benchmark by name
/// (case-insensitive). Returns `None` for unknown names.
///
/// Every circuit is deterministic: repeated calls produce identical
/// netlists.
///
/// # Example
///
/// ```
/// use odcfp_netlist::CellLibrary;
/// use odcfp_synth::benchmarks;
///
/// let c432 = benchmarks::generate("c432", CellLibrary::standard()).unwrap();
/// assert!(c432.num_gates() > 100);
/// ```
pub fn generate(name: &str, library: Arc<CellLibrary>) -> Option<Netlist> {
    let n = match name.to_ascii_lowercase().as_str() {
        "c432" => alu::priority_controller(library, 27, 3),
        "c499" => ecc::sec_circuit(library, ecc::SecParams::c499_like()),
        "c880" => alu::alu(library, alu::AluParams::c880_like()),
        "c1355" => ecc::sec_circuit(library, ecc::SecParams::c1355_like()),
        "c1908" => ecc::sec_circuit(library, ecc::SecParams::c1908_like()),
        "c3540" => alu::alu(library, alu::AluParams::c3540_like()),
        "c6288" => arith::array_multiplier(library, 16, arith::AdderStyle::NandExpanded),
        "des" => pla::sbox_network(library, pla::SboxParams::des_like()),
        "k2" => pla::two_level(library, pla::PlaParams::k2_like()),
        "t481" => pla::two_level(library, pla::PlaParams::t481_like()),
        "i10" => random::random_dag(library, random::DagParams::i10_like()),
        "i8" => pla::two_level(library, pla::PlaParams::i8_like()),
        "dalu" => alu::alu(library, alu::AluParams::dalu_like()),
        "vda" => pla::two_level(library, pla::PlaParams::vda_like()),
        _ => return None,
    };
    let mut n = n;
    n.set_name(name.to_ascii_lowercase());
    Some(n)
}

/// Generates the full Table II suite in row order.
pub fn table2_suite(library: Arc<CellLibrary>) -> Vec<Netlist> {
    TABLE2_NAMES
        .iter()
        .map(|n| generate(n, library.clone()).expect("known name"))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_names_generate_and_validate() {
        let lib = CellLibrary::standard();
        for name in TABLE2_NAMES {
            let n = generate(name, lib.clone()).unwrap();
            n.validate().unwrap_or_else(|e| panic!("{name}: {e}"));
            assert!(n.num_gates() > 50, "{name} too small: {}", n.num_gates());
            assert!(!n.primary_outputs().is_empty(), "{name} has no outputs");
        }
    }

    #[test]
    fn unknown_name_is_none() {
        assert!(generate("s27", CellLibrary::standard()).is_none());
    }

    #[test]
    fn generation_is_deterministic() {
        let lib = CellLibrary::standard();
        let a = generate("k2", lib.clone()).unwrap();
        let b = generate("k2", lib).unwrap();
        assert_eq!(a.num_gates(), b.num_gates());
        assert_eq!(a.num_nets(), b.num_nets());
        // Spot-check behaviour.
        let bits = vec![true; a.primary_inputs().len()];
        assert_eq!(a.eval(&bits), b.eval(&bits));
    }

    #[test]
    fn case_insensitive_lookup() {
        let lib = CellLibrary::standard();
        assert!(generate("C432", lib).is_some());
    }
}
