//! PLA-style two-level benchmark generators (k2/t481/i8/vda class) and the
//! S-box substitution network standing in for `des`.
//!
//! These go through the real BLIF-network + technology-mapping path
//! ([`crate::map_network`]), exactly like the paper's MCNC circuits went
//! through ABC.

use std::sync::Arc;

use odcfp_blif::{LogicNetwork, LogicNode};
use odcfp_logic::rng::Xoshiro256;
use odcfp_logic::{Cube, CubeLit, Sop};
use odcfp_netlist::{CellLibrary, NetId, Netlist};

use crate::builder::CircuitBuilder;
use crate::map_network;

/// Parameters of [`two_level`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PlaParams {
    /// Number of primary inputs.
    pub inputs: usize,
    /// Number of outputs (one SOP node each).
    pub outputs: usize,
    /// Fanin signals drawn per output.
    pub fanin_per_output: usize,
    /// Product terms per output.
    pub cubes_per_output: usize,
    /// Tested literals per product term.
    pub lits_per_cube: usize,
    /// Generator seed.
    pub seed: u64,
}

impl PlaParams {
    /// Profile for the MCNC `k2` row (paper: 1206 gates).
    pub fn k2_like() -> Self {
        PlaParams {
            inputs: 45,
            outputs: 45,
            fanin_per_output: 16,
            cubes_per_output: 8,
            lits_per_cube: 7,
            seed: 0x6B32,
        }
    }

    /// Profile for the MCNC `t481` row (paper: 826 gates).
    pub fn t481_like() -> Self {
        PlaParams {
            inputs: 16,
            outputs: 32,
            fanin_per_output: 14,
            cubes_per_output: 7,
            lits_per_cube: 7,
            seed: 0x7481,
        }
    }

    /// Profile for the MCNC `i8` row (paper: 1211 gates).
    pub fn i8_like() -> Self {
        PlaParams {
            inputs: 133,
            outputs: 81,
            fanin_per_output: 14,
            cubes_per_output: 4,
            lits_per_cube: 6,
            seed: 0x0108,
        }
    }

    /// Profile for the MCNC `vda` row (paper: 635 gates).
    pub fn vda_like() -> Self {
        PlaParams {
            inputs: 17,
            outputs: 39,
            fanin_per_output: 13,
            cubes_per_output: 5,
            lits_per_cube: 6,
            seed: 0x0DA,
        }
    }
}

fn random_cube(rng: &mut Xoshiro256, width: usize, lits: usize) -> Cube {
    let mut cube = vec![CubeLit::DontCare; width];
    let mut positions: Vec<usize> = (0..width).collect();
    rng.shuffle(&mut positions);
    for &p in positions.iter().take(lits.min(width)) {
        cube[p] = if rng.next_bool() {
            CubeLit::One
        } else {
            CubeLit::Zero
        };
    }
    Cube::new(cube)
}

/// Generates a random two-level (PLA-style) circuit and technology-maps it.
///
/// Deterministic in `p` (including `p.seed`).
pub fn two_level(library: Arc<CellLibrary>, p: PlaParams) -> Netlist {
    assert!(p.fanin_per_output <= p.inputs, "fanin exceeds input count");
    let mut rng = Xoshiro256::seed_from_u64(p.seed);
    let mut net = LogicNetwork::new("pla");
    let input_names: Vec<String> = (0..p.inputs).map(|i| format!("x{i}")).collect();
    for n in &input_names {
        net.add_input(n.clone());
    }
    for o in 0..p.outputs {
        let mut pool = input_names.clone();
        rng.shuffle(&mut pool);
        let fanins: Vec<String> = pool.into_iter().take(p.fanin_per_output).collect();
        let cubes: Vec<Cube> = (0..p.cubes_per_output)
            .map(|_| random_cube(&mut rng, p.fanin_per_output, p.lits_per_cube))
            .collect();
        let name = format!("y{o}");
        net.add_node(LogicNode {
            output: name.clone(),
            fanins,
            cover: Sop::new(p.fanin_per_output, cubes, true),
        });
        net.add_output(name);
    }
    map_network(&net, library).expect("generated network is valid")
}

/// Parameters of [`sbox_network`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SboxParams {
    /// Block width in bits (split into two halves Feistel-style).
    pub block_bits: usize,
    /// Round-key input bits per round.
    pub key_bits: usize,
    /// Number of S-boxes per round (each 6 → 4).
    pub sboxes: usize,
    /// Product terms per S-box output.
    pub cubes_per_output: usize,
    /// Number of Feistel rounds.
    pub rounds: usize,
    /// Generator seed.
    pub seed: u64,
}

impl SboxParams {
    /// The profile standing in for the MCNC `des` row (paper: 3544 gates).
    pub fn des_like() -> Self {
        SboxParams {
            block_bits: 64,
            key_bits: 48,
            sboxes: 8,
            cubes_per_output: 19,
            rounds: 3,
            seed: 0xDE5,
        }
    }
}

/// One 6→4 S-box as a mapped two-level block over existing nets.
fn sbox(
    b: &mut CircuitBuilder,
    rng: &mut Xoshiro256,
    ins: &[NetId; 6],
    cubes_per_output: usize,
) -> Vec<NetId> {
    use odcfp_logic::PrimitiveFn as F;
    (0..4)
        .map(|_| {
            let cube_nets: Vec<NetId> = (0..cubes_per_output)
                .map(|_| {
                    let lits: Vec<NetId> = ins
                        .iter()
                        .filter_map(|&n| match rng.next_below(3) {
                            0 => Some(n),
                            1 => Some(b.not(n)),
                            _ => None,
                        })
                        .collect();
                    if lits.is_empty() {
                        // Degenerate all-don't-care draw: pin to one literal.
                        ins[rng.next_below(6)]
                    } else {
                        b.tree(F::And, &lits)
                    }
                })
                .collect();
            b.tree(F::Or, &cube_nets)
        })
        .collect()
}

/// Generates a Feistel-style substitution/permutation network: per round,
/// the right half is expanded, XORed with round-key inputs, pushed through
/// random 6→4 S-boxes, permuted and XORed into the left half — the
/// structural shape of the MCNC `des` combinational benchmark.
pub fn sbox_network(library: Arc<CellLibrary>, p: SboxParams) -> Netlist {
    assert!(p.block_bits.is_multiple_of(2), "block splits into halves");
    assert_eq!(
        p.sboxes * 6,
        p.key_bits,
        "each round key bit feeds one S-box input"
    );
    assert!(
        p.sboxes * 4 <= p.block_bits / 2,
        "S-box outputs must fit the half block"
    );
    let mut rng = Xoshiro256::seed_from_u64(p.seed);
    let mut b = CircuitBuilder::new("feistel", library);
    let half = p.block_bits / 2;
    let mut left: Vec<NetId> = b.inputs("l", half);
    let mut right: Vec<NetId> = b.inputs("r", half);

    for round in 0..p.rounds {
        let keys = b.inputs(&format!("k{round}_"), p.key_bits);
        // Expansion: pick 6 right-half bits per S-box and XOR with key bits.
        let mut sbox_outs: Vec<NetId> = Vec::with_capacity(p.sboxes * 4);
        for s in 0..p.sboxes {
            let mut ins = [right[0]; 6];
            for (j, slot) in ins.iter_mut().enumerate() {
                let r = right[rng.next_below(half)];
                *slot = b.xor2(r, keys[s * 6 + j]);
            }
            sbox_outs.extend(sbox(&mut b, &mut rng, &ins, p.cubes_per_output));
        }
        // Permute S-box outputs across the half block and fold into left.
        let mut perm: Vec<usize> = (0..half).collect();
        rng.shuffle(&mut perm);
        let new_right: Vec<NetId> = (0..half)
            .map(|i| {
                let f_bit = sbox_outs[perm[i] % sbox_outs.len()];
                b.xor2(left[i], f_bit)
            })
            .collect();
        left = right;
        right = new_right;
    }
    for &bit in left.iter().chain(&right) {
        b.output(bit);
    }
    b.finish()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn two_level_deterministic_and_sized() {
        let lib = CellLibrary::standard();
        let p = PlaParams::vda_like();
        let a = two_level(lib.clone(), p);
        let c = two_level(lib, p);
        assert_eq!(a.num_gates(), c.num_gates());
        assert_eq!(a.primary_outputs().len(), p.outputs);
        assert_eq!(a.primary_inputs().len(), p.inputs);
        assert!(a.num_gates() > 100);
    }

    #[test]
    fn different_seeds_differ() {
        let lib = CellLibrary::standard();
        let mut p1 = PlaParams::vda_like();
        let a = two_level(lib.clone(), p1);
        p1.seed ^= 1;
        let b = two_level(lib, p1);
        // Same shape parameters, different covers: behaviour should differ.
        let bits = vec![true; a.primary_inputs().len()];
        let ra = a.eval(&bits);
        let rb = b.eval(&bits);
        assert!(ra != rb || a.num_gates() != b.num_gates());
    }

    #[test]
    fn sbox_network_valid_and_deterministic() {
        let lib = CellLibrary::standard();
        let p = SboxParams {
            block_bits: 16,
            key_bits: 12,
            sboxes: 2,
            cubes_per_output: 4,
            rounds: 2,
            seed: 77,
        };
        let a = sbox_network(lib.clone(), p);
        let c = sbox_network(lib, p);
        assert_eq!(a.num_gates(), c.num_gates());
        assert_eq!(a.primary_outputs().len(), 16);
        // Changing a key bit changes some output.
        let n_in = a.primary_inputs().len();
        let zeros = vec![false; n_in];
        let mut flipped = zeros.clone();
        flipped[16] = true; // first key bit of round 0
        assert_ne!(a.eval(&zeros), a.eval(&flipped));
    }

    #[test]
    fn feistel_rounds_mix_left_and_right() {
        let lib = CellLibrary::standard();
        let p = SboxParams {
            block_bits: 16,
            key_bits: 12,
            sboxes: 2,
            cubes_per_output: 4,
            rounds: 2,
            seed: 3,
        };
        let n = sbox_network(lib, p);
        // Flipping a left-half input changes outputs.
        let n_in = n.primary_inputs().len();
        let zeros = vec![false; n_in];
        let mut l0 = zeros.clone();
        l0[0] = true;
        assert_ne!(n.eval(&zeros), n.eval(&l0));
    }
}
