//! Seeded random-DAG circuits (the `i10` row and general-purpose test
//! fodder for the fingerprinting pipeline).

use std::sync::Arc;

use odcfp_logic::rng::Xoshiro256;
use odcfp_logic::PrimitiveFn;
use odcfp_netlist::{CellLibrary, NetId, Netlist};

use crate::builder::CircuitBuilder;

/// Parameters of [`random_dag`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DagParams {
    /// Number of primary inputs.
    pub inputs: usize,
    /// Number of gates to generate.
    pub gates: usize,
    /// Number of explicitly chosen primary outputs (all dangling gate
    /// outputs additionally become outputs so nothing is unobservable).
    pub outputs: usize,
    /// Fanin locality window: inputs are drawn from the most recent
    /// `window` signals, which controls circuit depth.
    pub window: usize,
    /// Generator seed.
    pub seed: u64,
}

impl DagParams {
    /// Profile for the MCNC `i10` row (paper: 1600 gates).
    pub fn i10_like() -> Self {
        DagParams {
            inputs: 257,
            gates: 1600,
            outputs: 224,
            window: 180,
            seed: 0x0110,
        }
    }

    /// A small profile convenient for tests.
    pub fn small(seed: u64) -> Self {
        DagParams {
            inputs: 8,
            gates: 60,
            outputs: 6,
            window: 20,
            seed,
        }
    }
}

/// Weighted gate-function mix modelled on mapped MCNC circuits: NAND/NOR
/// heavy, with AND/OR, sparse XOR and inverters.
fn pick_function(rng: &mut Xoshiro256) -> (PrimitiveFn, usize) {
    match rng.next_below(100) {
        0..=29 => (PrimitiveFn::Nand, 2 + rng.next_below(3)),
        30..=49 => (PrimitiveFn::Nor, 2 + rng.next_below(2)),
        50..=64 => (PrimitiveFn::And, 2 + rng.next_below(3)),
        65..=79 => (PrimitiveFn::Or, 2 + rng.next_below(2)),
        80..=89 => (PrimitiveFn::Xor, 2),
        90..=94 => (PrimitiveFn::Xnor, 2),
        _ => (PrimitiveFn::Inv, 1),
    }
}

/// Generates a seeded random combinational DAG.
///
/// Gates draw their fanins from a sliding window of recently created
/// signals, so depth grows with `gates / window`. Deterministic in the
/// parameters.
pub fn random_dag(library: Arc<CellLibrary>, p: DagParams) -> Netlist {
    assert!(p.inputs >= 2 && p.gates >= 1 && p.window >= 2);
    let mut rng = Xoshiro256::seed_from_u64(p.seed);
    let mut b = CircuitBuilder::new("rdag", library);
    let mut signals: Vec<NetId> = b.inputs("x", p.inputs);

    for _ in 0..p.gates {
        let (f, arity) = pick_function(&mut rng);
        let lo = signals.len().saturating_sub(p.window);
        let mut ins: Vec<NetId> = Vec::with_capacity(arity);
        let mut tries = 0;
        while ins.len() < arity {
            let pick = signals[lo + rng.next_below(signals.len() - lo)];
            // Distinct fanins preferred; give up after a few collisions.
            if !ins.contains(&pick) || tries > 8 {
                ins.push(pick);
            }
            tries += 1;
        }
        let out = b.gate(f, &ins);
        signals.push(out);
    }

    // Chosen outputs from the latest signals, plus every dangling gate
    // output so the whole circuit is observable.
    let n_signals = signals.len();
    for k in 0..p.outputs.min(n_signals) {
        b.output(signals[n_signals - 1 - k]);
    }
    let dangling: Vec<NetId> = b
        .netlist()
        .gates()
        .map(|(_, g)| g.output())
        .filter(|&o| b.netlist().net(o).fanout() == 0)
        .collect();
    for o in dangling {
        b.output(o);
    }
    b.finish()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic() {
        let lib = CellLibrary::standard();
        let a = random_dag(lib.clone(), DagParams::small(9));
        let c = random_dag(lib, DagParams::small(9));
        assert_eq!(a.num_gates(), c.num_gates());
        let bits = vec![true; a.primary_inputs().len()];
        assert_eq!(a.eval(&bits), c.eval(&bits));
    }

    #[test]
    fn no_dangling_outputs() {
        let lib = CellLibrary::standard();
        let n = random_dag(lib, DagParams::small(4));
        for (_, g) in n.gates() {
            assert!(
                n.net(g.output()).fanout() > 0,
                "gate {} dangles",
                g.name()
            );
        }
    }

    #[test]
    fn gate_count_matches_request() {
        let lib = CellLibrary::standard();
        let p = DagParams::small(11);
        let n = random_dag(lib, p);
        assert_eq!(n.num_gates(), p.gates);
    }

    #[test]
    fn window_bounds_depth() {
        let lib = CellLibrary::standard();
        let deep = random_dag(
            lib.clone(),
            DagParams {
                inputs: 4,
                gates: 120,
                outputs: 4,
                window: 3,
                seed: 5,
            },
        );
        let shallow = random_dag(
            lib,
            DagParams {
                inputs: 64,
                gates: 120,
                outputs: 4,
                window: 150,
                seed: 5,
            },
        );
        let d1 = deep.stats().max_depth;
        let d2 = shallow.stats().max_depth;
        assert!(d1 > d2, "narrow window should be deeper: {d1} vs {d2}");
    }
}
