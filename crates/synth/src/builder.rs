//! An ergonomic construction layer over [`Netlist`] used by the technology
//! mapper and the benchmark generators.

use std::collections::HashMap;
use std::sync::Arc;

use odcfp_logic::PrimitiveFn;
use odcfp_netlist::{CellId, CellLibrary, NetId, Netlist};

/// Builds gate-level circuits with automatic naming, inverter caching and
/// wide-gate tree decomposition.
///
/// # Example
///
/// A full adder in five gates:
///
/// ```
/// use odcfp_netlist::CellLibrary;
/// use odcfp_synth::builder::CircuitBuilder;
///
/// let mut b = CircuitBuilder::new("fa", CellLibrary::standard());
/// let a = b.input("a");
/// let c = b.input("b");
/// let cin = b.input("cin");
/// let (sum, cout) = b.full_adder(a, c, cin);
/// b.output(sum);
/// b.output(cout);
/// let n = b.finish();
/// assert_eq!(n.num_gates(), 5);
/// assert_eq!(n.eval(&[true, true, true]), vec![true, true]);
/// ```
#[derive(Debug)]
pub struct CircuitBuilder {
    netlist: Netlist,
    counter: usize,
    inv_cache: HashMap<NetId, NetId>,
}

impl CircuitBuilder {
    /// Starts a new circuit over `library`.
    pub fn new(name: impl Into<String>, library: Arc<CellLibrary>) -> Self {
        CircuitBuilder {
            netlist: Netlist::new(name, library),
            counter: 0,
            inv_cache: HashMap::new(),
        }
    }

    /// Access to the netlist under construction.
    pub fn netlist(&self) -> &Netlist {
        &self.netlist
    }

    /// Adds a primary input.
    pub fn input(&mut self, name: impl Into<String>) -> NetId {
        self.netlist.add_primary_input(name)
    }

    /// Adds `n` primary inputs named `prefix0..prefix{n-1}`.
    pub fn inputs(&mut self, prefix: &str, n: usize) -> Vec<NetId> {
        (0..n).map(|i| self.input(format!("{prefix}{i}"))).collect()
    }

    /// Marks a net as primary output.
    pub fn output(&mut self, net: NetId) {
        self.netlist.set_primary_output(net);
    }

    /// A constant-valued net.
    pub fn constant(&mut self, value: bool) -> NetId {
        self.counter += 1;
        self.netlist
            .add_constant(format!("const{}_{}", u8::from(value), self.counter), value)
    }

    fn cell(&self, f: PrimitiveFn, arity: usize) -> CellId {
        self.netlist
            .library()
            .cell_for(f, arity)
            .unwrap_or_else(|| panic!("library lacks {f} at arity {arity}"))
    }

    /// Instantiates one gate of function `f` over `ins`, returning its
    /// output net.
    ///
    /// # Panics
    ///
    /// Panics if the library has no cell of that function/arity.
    pub fn gate(&mut self, f: PrimitiveFn, ins: &[NetId]) -> NetId {
        let cell = self.cell(f, ins.len());
        self.counter += 1;
        let g = self
            .netlist
            .add_gate(format!("{}_{}", f, self.counter), cell, ins);
        self.netlist.gate_output(g)
    }

    /// An inverter, cached per source net (repeated complements share one
    /// INV).
    pub fn not(&mut self, a: NetId) -> NetId {
        if let Some(&n) = self.inv_cache.get(&a) {
            return n;
        }
        let out = self.gate(PrimitiveFn::Inv, &[a]);
        self.inv_cache.insert(a, out);
        out
    }

    /// 2-input AND.
    pub fn and2(&mut self, a: NetId, b: NetId) -> NetId {
        self.gate(PrimitiveFn::And, &[a, b])
    }

    /// 2-input OR.
    pub fn or2(&mut self, a: NetId, b: NetId) -> NetId {
        self.gate(PrimitiveFn::Or, &[a, b])
    }

    /// 2-input XOR.
    pub fn xor2(&mut self, a: NetId, b: NetId) -> NetId {
        self.gate(PrimitiveFn::Xor, &[a, b])
    }

    /// 2-input NAND.
    pub fn nand2(&mut self, a: NetId, b: NetId) -> NetId {
        self.gate(PrimitiveFn::Nand, &[a, b])
    }

    /// 2-input NOR.
    pub fn nor2(&mut self, a: NetId, b: NetId) -> NetId {
        self.gate(PrimitiveFn::Nor, &[a, b])
    }

    /// A balanced tree of `f` cells (AND or OR) over any number of inputs,
    /// using the widest available cells.
    ///
    /// # Panics
    ///
    /// Panics if `ins` is empty or `f` is not AND/OR.
    pub fn tree(&mut self, f: PrimitiveFn, ins: &[NetId]) -> NetId {
        assert!(
            matches!(f, PrimitiveFn::And | PrimitiveFn::Or),
            "tree supports AND/OR only"
        );
        assert!(!ins.is_empty(), "tree needs at least one input");
        let max = self
            .netlist
            .library()
            .max_arity(f)
            .expect("library has the function");
        let mut level: Vec<NetId> = ins.to_vec();
        while level.len() > 1 {
            let mut next = Vec::with_capacity(level.len().div_ceil(max));
            for chunk in level.chunks(max) {
                if chunk.len() == 1 {
                    next.push(chunk[0]);
                } else {
                    next.push(self.gate(f, chunk));
                }
            }
            level = next;
        }
        level[0]
    }

    /// A tree of XOR2 cells over any number of inputs (odd parity).
    ///
    /// # Panics
    ///
    /// Panics if `ins` is empty.
    pub fn xor_tree(&mut self, ins: &[NetId]) -> NetId {
        assert!(!ins.is_empty(), "xor tree needs at least one input");
        let mut level: Vec<NetId> = ins.to_vec();
        while level.len() > 1 {
            let mut next = Vec::with_capacity(level.len().div_ceil(2));
            for chunk in level.chunks(2) {
                if chunk.len() == 1 {
                    next.push(chunk[0]);
                } else {
                    next.push(self.xor2(chunk[0], chunk[1]));
                }
            }
            level = next;
        }
        level[0]
    }

    /// An XOR of two signals expanded into four NAND2 gates (no XOR cell) —
    /// the classic trick that turns a C499-style circuit into its
    /// C1355-style equivalent.
    pub fn xor2_nand(&mut self, a: NetId, b: NetId) -> NetId {
        let t = self.nand2(a, b);
        let u = self.nand2(a, t);
        let v = self.nand2(b, t);
        self.nand2(u, v)
    }

    /// A 2:1 multiplexer `sel ? a1 : a0` in three NAND2 + one INV.
    pub fn mux2(&mut self, sel: NetId, a0: NetId, a1: NetId) -> NetId {
        let ns = self.not(sel);
        let t0 = self.nand2(ns, a0);
        let t1 = self.nand2(sel, a1);
        self.nand2(t0, t1)
    }

    /// A half adder: returns `(sum, carry)`.
    pub fn half_adder(&mut self, a: NetId, b: NetId) -> (NetId, NetId) {
        (self.xor2(a, b), self.and2(a, b))
    }

    /// A full adder in 5 gates: returns `(sum, carry)`.
    pub fn full_adder(&mut self, a: NetId, b: NetId, cin: NetId) -> (NetId, NetId) {
        let p = self.xor2(a, b);
        let sum = self.xor2(p, cin);
        let g1 = self.and2(a, b);
        let g2 = self.and2(p, cin);
        let cout = self.or2(g1, g2);
        (sum, cout)
    }

    /// A full adder built only from NAND2/INV (9 gates + shared inverters),
    /// the NOR/NAND-heavy style of the ISCAS'85 multiplier.
    pub fn full_adder_nand(&mut self, a: NetId, b: NetId, cin: NetId) -> (NetId, NetId) {
        let p = self.xor2_nand(a, b);
        let sum = self.xor2_nand(p, cin);
        let t1 = self.nand2(a, b);
        let t2 = self.nand2(p, cin);
        let cout = self.nand2(t1, t2);
        (sum, cout)
    }

    /// Finalizes and returns the netlist.
    ///
    /// # Panics
    ///
    /// Panics if the constructed netlist fails validation — generator bugs
    /// should fail loudly.
    pub fn finish(self) -> Netlist {
        self.netlist
            .validate()
            .unwrap_or_else(|e| panic!("generated netlist invalid: {e}"));
        self.netlist
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn builder(name: &str) -> CircuitBuilder {
        CircuitBuilder::new(name, CellLibrary::standard())
    }

    #[test]
    fn full_adder_truth_table() {
        for style_nand in [false, true] {
            let mut b = builder("fa");
            let x = b.input("x");
            let y = b.input("y");
            let c = b.input("c");
            let (s, co) = if style_nand {
                b.full_adder_nand(x, y, c)
            } else {
                b.full_adder(x, y, c)
            };
            b.output(s);
            b.output(co);
            let n = b.finish();
            for i in 0..8usize {
                let bits: Vec<bool> = (0..3).map(|v| (i >> v) & 1 == 1).collect();
                let ones = bits.iter().filter(|&&x| x).count();
                assert_eq!(
                    n.eval(&bits),
                    vec![ones % 2 == 1, ones >= 2],
                    "style_nand={style_nand} i={i}"
                );
            }
        }
    }

    #[test]
    fn mux_selects() {
        let mut b = builder("mux");
        let s = b.input("s");
        let a0 = b.input("a0");
        let a1 = b.input("a1");
        let y = b.mux2(s, a0, a1);
        b.output(y);
        let n = b.finish();
        for i in 0..8usize {
            let bits: Vec<bool> = (0..3).map(|v| (i >> v) & 1 == 1).collect();
            let expect = if bits[0] { bits[2] } else { bits[1] };
            assert_eq!(n.eval(&bits), vec![expect], "i={i}");
        }
    }

    #[test]
    fn trees_compute_wide_ops() {
        for f in [PrimitiveFn::And, PrimitiveFn::Or] {
            let mut b = builder("tree");
            let ins = b.inputs("x", 9);
            let y = b.tree(f, &ins);
            b.output(y);
            let n = b.finish();
            for i in [0usize, 1, 0x1FF, 0x155, 0x80] {
                let bits: Vec<bool> = (0..9).map(|v| (i >> v) & 1 == 1).collect();
                let expect = match f {
                    PrimitiveFn::And => bits.iter().all(|&x| x),
                    _ => bits.iter().any(|&x| x),
                };
                assert_eq!(n.eval(&bits), vec![expect], "{f} i={i:x}");
            }
        }
    }

    #[test]
    fn xor_tree_is_parity() {
        let mut b = builder("parity");
        let ins = b.inputs("x", 7);
        let y = b.xor_tree(&ins);
        b.output(y);
        let n = b.finish();
        for i in 0..128usize {
            let bits: Vec<bool> = (0..7).map(|v| (i >> v) & 1 == 1).collect();
            assert_eq!(n.eval(&bits), vec![i.count_ones() % 2 == 1]);
        }
    }

    #[test]
    fn xor_nand_expansion_matches_xor() {
        let mut b = builder("xn");
        let x = b.input("x");
        let y = b.input("y");
        let out = b.xor2_nand(x, y);
        b.output(out);
        let n = b.finish();
        assert_eq!(n.num_gates(), 4);
        for i in 0..4usize {
            let bits: Vec<bool> = (0..2).map(|v| (i >> v) & 1 == 1).collect();
            assert_eq!(n.eval(&bits), vec![bits[0] ^ bits[1]]);
        }
    }

    #[test]
    fn inverter_cache_shares() {
        let mut b = builder("inv");
        let a = b.input("a");
        let n1 = b.not(a);
        let n2 = b.not(a);
        assert_eq!(n1, n2);
        b.output(n1);
        assert_eq!(b.finish().num_gates(), 1);
    }

    #[test]
    fn single_input_tree_is_wire() {
        let mut b = builder("t1");
        let a = b.input("a");
        let t = b.tree(PrimitiveFn::And, &[a]);
        assert_eq!(t, a);
        b.output(t);
        assert_eq!(b.finish().num_gates(), 0);
    }
}
