//! Resynthesis round-trips: un-mapping a gate-level netlist back into a
//! technology-independent SOP network and pushing it through the mapper
//! and optimizer again.
//!
//! This models the classic fingerprint-removal attack (the threat framed
//! by the universal-circuits security analysis in PAPERS.md): an adversary
//! who buys a fingerprinted netlist does not have to ship it verbatim —
//! they can re-synthesize it, hoping the tool restructures the redundant
//! ODC wires away. The round-trip here is the strongest such transform the
//! in-tree flow offers: [`unmap`] dissolves every gate into its SOP cover
//! (erasing cell choices), [`map_network`] re-makes
//! cell choices from scratch (with NAND/NOR/XOR peepholes), and
//! [`optimize`] folds constants and sweeps dead
//! logic on both sides.
//!
//! Every pass is semantics-preserving by construction, and
//! `tests/resynth_equivalence.rs` checks that invariant differentially
//! against the verify ladder on the fault-battery circuits.

use std::fmt;

use odcfp_blif::{LogicNetwork, LogicNode};
use odcfp_logic::{Cube, CubeLit, PrimitiveFn, Sop};
use odcfp_netlist::{NetDriver, Netlist};

use crate::opt::{optimize, OptStats};
use crate::{map_network, MapError};

/// Reserved prefix for signal names synthesized by [`unmap`] for internal
/// nets. Primary inputs keep their own names, so they must not use it.
const RESERVED: &str = "__rs";

/// Why a netlist could not be resynthesized.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum ResynthError {
    /// The netlist contains a combinational cycle.
    Cyclic,
    /// A primary input uses the reserved internal-name prefix.
    ReservedName {
        /// The offending input name.
        name: String,
    },
    /// Re-mapping the un-mapped network failed.
    Map(MapError),
}

impl fmt::Display for ResynthError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ResynthError::Cyclic => write!(f, "netlist has a combinational cycle"),
            ResynthError::ReservedName { name } => {
                write!(f, "primary input {name:?} collides with the reserved {RESERVED} prefix")
            }
            ResynthError::Map(e) => write!(f, "remap failed: {e}"),
        }
    }
}

impl std::error::Error for ResynthError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ResynthError::Map(e) => Some(e),
            _ => None,
        }
    }
}

impl From<MapError> for ResynthError {
    fn from(e: MapError) -> Self {
        ResynthError::Map(e)
    }
}

/// The effort level of a resynthesis round-trip.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum ResynthLevel {
    /// Level 1: constant folding and dead-logic sweep only.
    Opt,
    /// Level 2: optimize, un-map to SOP, re-map, optimize again.
    Remap,
    /// Level 3: two full un-map/re-map round-trips.
    RemapTwice,
}

impl ResynthLevel {
    /// All levels, in escalating order.
    pub const ALL: [ResynthLevel; 3] =
        [ResynthLevel::Opt, ResynthLevel::Remap, ResynthLevel::RemapTwice];

    /// Stable lowercase name (used in traces, scorecards, and the CLI).
    pub fn name(self) -> &'static str {
        match self {
            ResynthLevel::Opt => "opt",
            ResynthLevel::Remap => "remap",
            ResynthLevel::RemapTwice => "remap2",
        }
    }

    /// Parses a level from its [`name`](ResynthLevel::name) or its 1-based
    /// number.
    pub fn parse(s: &str) -> Option<ResynthLevel> {
        match s {
            "opt" | "1" => Some(ResynthLevel::Opt),
            "remap" | "2" => Some(ResynthLevel::Remap),
            "remap2" | "3" => Some(ResynthLevel::RemapTwice),
            _ => None,
        }
    }

    /// How many un-map/re-map round-trips the level performs.
    pub fn round_trips(self) -> usize {
        match self {
            ResynthLevel::Opt => 0,
            ResynthLevel::Remap => 1,
            ResynthLevel::RemapTwice => 2,
        }
    }
}

/// What a resynthesis pass did to the circuit.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ResynthStats {
    /// Un-map/re-map round-trips performed.
    pub round_trips: usize,
    /// Gates folded to constants, summed over every optimize pass.
    pub gates_folded: usize,
    /// Constant pins pruned, summed over every optimize pass.
    pub pins_pruned: usize,
    /// Dead gates swept, summed over every optimize pass.
    pub dead_gates_removed: usize,
    /// Gate count before the first pass.
    pub gates_before: usize,
    /// Gate count after the last pass.
    pub gates_after: usize,
}

impl ResynthStats {
    fn absorb(&mut self, o: &OptStats) {
        self.gates_folded += o.gates_folded;
        self.pins_pruned += o.pins_pruned;
        self.dead_gates_removed += o.dead_gates_removed;
    }
}

/// The canonical SOP cover of a primitive cell function at a given arity.
fn primitive_cover(f: PrimitiveFn, arity: usize) -> Sop {
    let lit = |pos: usize, v: CubeLit| {
        let mut lits = vec![CubeLit::DontCare; arity];
        lits[pos] = v;
        Cube::new(lits)
    };
    match f {
        PrimitiveFn::Buf => Sop::new(arity, vec![lit(0, CubeLit::One)], true),
        PrimitiveFn::Inv => Sop::new(arity, vec![lit(0, CubeLit::Zero)], true),
        PrimitiveFn::And => {
            Sop::new(arity, vec![Cube::new(vec![CubeLit::One; arity])], true)
        }
        PrimitiveFn::Nand => {
            Sop::new(arity, vec![Cube::new(vec![CubeLit::One; arity])], false)
        }
        PrimitiveFn::Or => {
            Sop::new(arity, (0..arity).map(|i| lit(i, CubeLit::One)).collect(), true)
        }
        PrimitiveFn::Nor => {
            Sop::new(arity, (0..arity).map(|i| lit(i, CubeLit::One)).collect(), false)
        }
        PrimitiveFn::Xor | PrimitiveFn::Xnor => {
            // Minterm expansion of odd parity; the mapper's XOR-detection
            // peephole recovers a balanced XOR2 tree from exactly this
            // shape, so the round-trip stays compact.
            let cubes = (0..1usize << arity)
                .filter(|m| m.count_ones() % 2 == 1)
                .map(|m| {
                    Cube::new(
                        (0..arity)
                            .map(|b| {
                                if (m >> b) & 1 == 1 {
                                    CubeLit::One
                                } else {
                                    CubeLit::Zero
                                }
                            })
                            .collect(),
                    )
                })
                .collect();
            Sop::new(arity, cubes, f == PrimitiveFn::Xor)
        }
    }
}

/// Dissolves a gate-level netlist back into a technology-independent
/// [`LogicNetwork`]: one SOP node per gate, carrying exactly the gate's
/// primitive function. Primary inputs and outputs keep their order (and
/// inputs their names), so the result maps back to an interface-compatible
/// netlist.
///
/// # Errors
///
/// Returns [`ResynthError::Cyclic`] on a cyclic netlist and
/// [`ResynthError::ReservedName`] if a primary input collides with the
/// reserved internal prefix.
pub fn unmap(netlist: &Netlist) -> Result<LogicNetwork, ResynthError> {
    let mut out = LogicNetwork::new(netlist.name());
    let mut names: Vec<String> = (0..netlist.num_nets())
        .map(|i| format!("{RESERVED}{i}"))
        .collect();
    for &pi in netlist.primary_inputs() {
        let name = netlist.net(pi).name().to_string();
        if name.starts_with(RESERVED) {
            return Err(ResynthError::ReservedName { name });
        }
        names[pi.index()] = name.clone();
        out.add_input(name);
    }
    for (id, net) in netlist.nets() {
        if let NetDriver::Const(v) = net.driver() {
            out.add_node(LogicNode {
                output: names[id.index()].clone(),
                fanins: Vec::new(),
                cover: Sop::constant(0, v),
            });
        }
    }
    let order = netlist.topo_order().map_err(|_| ResynthError::Cyclic)?;
    for g in order {
        let gate = netlist.gate(g);
        out.add_node(LogicNode {
            output: names[gate.output().index()].clone(),
            fanins: gate
                .inputs()
                .iter()
                .map(|n| names[n.index()].clone())
                .collect(),
            cover: primitive_cover(netlist.gate_fn(g), gate.inputs().len()),
        });
    }
    for &po in netlist.primary_outputs() {
        out.add_output(names[po.index()].clone());
    }
    Ok(out)
}

/// Runs a full resynthesis pass at the given effort level and returns the
/// rewritten netlist (same library, same primary-input/-output interface,
/// same function) plus what the pass did.
///
/// Deterministic: every stage is a pure function of the input netlist, so
/// equal inputs produce byte-equal outputs at any thread count.
///
/// # Errors
///
/// Propagates [`unmap`] and [`map_network`] failures;
/// a validated netlist over the standard library cannot fail.
pub fn resynthesize(
    netlist: &Netlist,
    level: ResynthLevel,
) -> Result<(Netlist, ResynthStats), ResynthError> {
    let mut span = odcfp_obs::span("synth.resynth");
    span.field("level", level.name());
    let lib = netlist.library().clone();
    let mut stats = ResynthStats {
        gates_before: netlist.num_gates(),
        ..ResynthStats::default()
    };
    let (mut cur, first) = optimize(netlist);
    stats.absorb(&first);
    for _ in 0..level.round_trips() {
        let network = unmap(&cur)?;
        let mapped = map_network(&network, lib.clone())?;
        let (opt, o) = optimize(&mapped);
        stats.absorb(&o);
        stats.round_trips += 1;
        cur = opt;
    }
    stats.gates_after = cur.num_gates();
    span.field("gates_before", stats.gates_before);
    span.field("gates_after", stats.gates_after);
    Ok((cur, stats))
}

#[cfg(test)]
mod tests {
    use super::*;
    use odcfp_netlist::CellLibrary;

    /// Exhaustively compares a netlist against its resynthesized form.
    fn assert_same_function(a: &Netlist, b: &Netlist) {
        let n = a.primary_inputs().len();
        assert!(n <= 12, "exhaustive check only for small circuits");
        for m in 0..1u64 << n {
            let inputs: Vec<bool> = (0..n).map(|i| (m >> i) & 1 == 1).collect();
            assert_eq!(a.eval(&inputs), b.eval(&inputs), "inputs {inputs:?}");
        }
    }

    fn sample() -> Netlist {
        let lib = CellLibrary::standard();
        let mut n = Netlist::new("sample", lib);
        let a = n.add_primary_input("a");
        let b = n.add_primary_input("b");
        let c = n.add_primary_input("c");
        let d = n.add_primary_input("d");
        let and2 = n.library().cell_for(PrimitiveFn::And, 2).unwrap();
        let nor2 = n.library().cell_for(PrimitiveFn::Nor, 2).unwrap();
        let xor2 = n.library().cell_for(PrimitiveFn::Xor, 2).unwrap();
        let inv = n.library().cell_for(PrimitiveFn::Inv, 1).unwrap();
        let g1 = n.add_gate("g1", and2, &[a, b]);
        let g2 = n.add_gate("g2", nor2, &[c, d]);
        let g3 = n.add_gate("g3", xor2, &[n.gate_output(g1), n.gate_output(g2)]);
        let g4 = n.add_gate("g4", inv, &[n.gate_output(g3)]);
        n.set_primary_output(n.gate_output(g3));
        n.set_primary_output(n.gate_output(g4));
        n
    }

    #[test]
    fn primitive_covers_match_truth_tables() {
        for f in PrimitiveFn::ALL {
            let arity = match f {
                PrimitiveFn::Buf | PrimitiveFn::Inv => 1,
                _ => 3,
            };
            let cover = primitive_cover(f, arity);
            for m in 0..1u64 << arity {
                let bits: Vec<bool> = (0..arity).map(|i| (m >> i) & 1 == 1).collect();
                assert_eq!(cover.eval(&bits), f.eval(&bits), "{f:?} at {bits:?}");
            }
        }
    }

    #[test]
    fn unmap_remap_preserves_function_and_interface() {
        let n = sample();
        let network = unmap(&n).unwrap();
        network.validate().unwrap();
        let back = map_network(&network, n.library().clone()).unwrap();
        assert_eq!(back.primary_inputs().len(), n.primary_inputs().len());
        assert_eq!(back.primary_outputs().len(), n.primary_outputs().len());
        assert_same_function(&n, &back);
    }

    #[test]
    fn every_level_preserves_function() {
        let n = sample();
        for level in ResynthLevel::ALL {
            let (out, stats) = resynthesize(&n, level).unwrap();
            assert_eq!(stats.round_trips, level.round_trips());
            assert_same_function(&n, &out);
        }
    }

    #[test]
    fn resynthesis_is_deterministic() {
        let n = sample();
        let (a, _) = resynthesize(&n, ResynthLevel::Remap).unwrap();
        let (b, _) = resynthesize(&n, ResynthLevel::Remap).unwrap();
        assert_eq!(
            odcfp_verilog::write_verilog(&a),
            odcfp_verilog::write_verilog(&b)
        );
    }

    #[test]
    fn level_names_round_trip() {
        for level in ResynthLevel::ALL {
            assert_eq!(ResynthLevel::parse(level.name()), Some(level));
        }
        assert_eq!(ResynthLevel::parse("4"), None);
    }
}
