//! Post-mapping netlist cleanup: constant folding and dead-logic removal.
//!
//! Two places in the flow produce netlists with embedded constants: BLIF
//! models with constant nodes, and post-silicon fuse programming
//! (`FlexibleDesign::program` in `odcfp-core`'s `silicon` module ties fuse nets to
//! 0/1). This pass propagates those constants through the logic
//! (controlling values annihilate gates; neutral values drop pins) and
//! removes everything no primary output observes, producing the netlist a
//! production flow would actually tape out.

use std::collections::HashMap;

use odcfp_logic::PrimitiveFn;
use odcfp_netlist::{GateId, NetDriver, NetId, Netlist};

/// Statistics of one [`optimize`] run.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct OptStats {
    /// Gates whose output folded to a constant.
    pub gates_folded: usize,
    /// Constant input pins removed from surviving gates.
    pub pins_pruned: usize,
    /// Gates removed because no primary output observes them.
    pub dead_gates_removed: usize,
}

/// The signal classes the folding pass tracks.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Value {
    Const(bool),
    /// A live signal, represented by a net in the output netlist.
    Net(NetId),
}

/// Folds constants and sweeps unobservable logic, returning the cleaned
/// netlist and what was removed.
///
/// Semantic guarantee: the result computes the same primary-output
/// functions as the input (covered by SAT-based tests). Primary inputs and
/// outputs are preserved in order and by name, including inputs that end
/// up unused.
///
/// # Panics
///
/// Panics if the netlist is invalid (validate first).
pub fn optimize(netlist: &Netlist) -> (Netlist, OptStats) {
    let order = netlist.topo_order().expect("validated netlist");
    let mut out = Netlist::new(netlist.name(), netlist.library().clone());
    let mut stats = OptStats::default();

    // Pass 1: fold, building gates lazily only when live.
    let mut values: HashMap<NetId, Value> = HashMap::new();
    for (id, net) in netlist.nets() {
        match net.driver() {
            NetDriver::PrimaryInput => {
                let new = out.add_primary_input(net.name());
                values.insert(id, Value::Net(new));
            }
            NetDriver::Const(v) => {
                values.insert(id, Value::Const(v));
            }
            _ => {}
        }
    }

    for g in order {
        let gate = netlist.gate(g);
        let f = netlist.gate_fn(g);
        let ins: Vec<Value> = gate
            .inputs()
            .iter()
            .map(|i| *values.get(i).expect("topological order"))
            .collect();
        let folded = fold_gate(&mut out, gate.name(), f, &ins, &mut stats);
        values.insert(gate.output(), folded);
    }

    // Primary outputs: materialize constants as constant nets; keep names.
    for &po in netlist.primary_outputs() {
        let name = netlist.net(po).name();
        let id = match values[&po] {
            Value::Const(v) => out.add_constant(name, v),
            Value::Net(n) => n,
        };
        out.set_primary_output(id);
    }

    // Pass 2: drop gates that drive nothing observable. `out` was built
    // lazily, but fanout-free chains can remain; rebuild keeping only the
    // observed cone.
    let (swept, dead) = sweep_dead(&out);
    stats.dead_gates_removed = dead;
    swept.validate().expect("optimizer output is valid");
    (swept, stats)
}

/// Simplifies one gate given folded input values; emits a gate into `out`
/// only when the result stays symbolic.
fn fold_gate(
    out: &mut Netlist,
    name: &str,
    f: PrimitiveFn,
    ins: &[Value],
    stats: &mut OptStats,
) -> Value {
    // Controlling constant ⇒ constant output.
    if let (Some(c), Some(o)) = (f.controlling_value(), f.controlled_output()) {
        if ins.contains(&Value::Const(c)) {
            stats.gates_folded += 1;
            return Value::Const(o);
        }
    }
    // Partition: XOR-family folds constants into an output inversion;
    // AND/OR-family drops neutral constants.
    match f {
        PrimitiveFn::Buf | PrimitiveFn::Inv => match ins[0] {
            Value::Const(v) => {
                stats.gates_folded += 1;
                Value::Const(v != matches!(f, PrimitiveFn::Inv))
            }
            Value::Net(n) => emit(out, name, f, &[n]),
        },
        PrimitiveFn::Xor | PrimitiveFn::Xnor => {
            let mut invert = matches!(f, PrimitiveFn::Xnor);
            let mut live: Vec<NetId> = Vec::new();
            for v in ins {
                match v {
                    Value::Const(true) => invert = !invert,
                    Value::Const(false) => {}
                    Value::Net(n) => live.push(*n),
                }
            }
            if live.len() < ins.len() {
                stats.pins_pruned += ins.len() - live.len();
            }
            match live.len() {
                0 => {
                    stats.gates_folded += 1;
                    Value::Const(invert)
                }
                1 => {
                    let f1 = if invert {
                        PrimitiveFn::Inv
                    } else {
                        PrimitiveFn::Buf
                    };
                    emit(out, name, f1, &live)
                }
                _ => {
                    let fx = if invert {
                        PrimitiveFn::Xnor
                    } else {
                        PrimitiveFn::Xor
                    };
                    emit(out, name, fx, &live)
                }
            }
        }
        PrimitiveFn::And | PrimitiveFn::Or | PrimitiveFn::Nand | PrimitiveFn::Nor => {
            let neutral = f.neutral_input_value().expect("plane functions");
            let inverting = f.is_inverting();
            let live: Vec<NetId> = ins
                .iter()
                .filter_map(|v| match v {
                    Value::Const(c) => {
                        debug_assert_eq!(*c, neutral, "controlling handled above");
                        None
                    }
                    Value::Net(n) => Some(*n),
                })
                .collect();
            if live.len() < ins.len() {
                stats.pins_pruned += ins.len() - live.len();
            }
            match live.len() {
                0 => {
                    // All-neutral inputs: AND()≡1, OR()≡0, inverted forms flip.
                    stats.gates_folded += 1;
                    let base = matches!(f, PrimitiveFn::And | PrimitiveFn::Nand);
                    Value::Const(base != inverting)
                }
                1 => {
                    let f1 = if inverting {
                        PrimitiveFn::Inv
                    } else {
                        PrimitiveFn::Buf
                    };
                    emit(out, name, f1, &live)
                }
                _ => emit(out, name, f, &live),
            }
        }
    }
}

fn emit(out: &mut Netlist, name: &str, f: PrimitiveFn, ins: &[NetId]) -> Value {
    let cell = out
        .library()
        .cell_for(f, ins.len())
        .unwrap_or_else(|| panic!("library lacks {f} at arity {}", ins.len()));
    let g = out.add_gate(name, cell, ins);
    Value::Net(out.gate_output(g))
}

/// Rebuilds `netlist` keeping only gates in the transitive fanin of a
/// primary output; returns the swept netlist and the dead-gate count.
fn sweep_dead(netlist: &Netlist) -> (Netlist, usize) {
    let mut live = vec![false; netlist.num_gates()];
    let mut stack: Vec<GateId> = netlist
        .primary_outputs()
        .iter()
        .filter_map(|&po| match netlist.net(po).driver() {
            NetDriver::Gate(g) => Some(g),
            _ => None,
        })
        .collect();
    while let Some(g) = stack.pop() {
        if live[g.index()] {
            continue;
        }
        live[g.index()] = true;
        for &i in netlist.gate(g).inputs() {
            if let NetDriver::Gate(src) = netlist.net(i).driver() {
                stack.push(src);
            }
        }
    }
    let dead = live.iter().filter(|&&l| !l).count();
    if dead == 0 {
        return (netlist.clone(), 0);
    }
    let mut out = Netlist::new(netlist.name(), netlist.library().clone());
    let mut net_map: HashMap<NetId, NetId> = HashMap::new();
    for (id, net) in netlist.nets() {
        match net.driver() {
            NetDriver::PrimaryInput => {
                net_map.insert(id, out.add_primary_input(net.name()));
            }
            NetDriver::Const(v) => {
                net_map.insert(id, out.add_constant(net.name(), v));
            }
            NetDriver::Gate(g) if live[g.index()] => {
                net_map.insert(id, out.add_net(net.name()));
            }
            _ => {}
        }
    }
    for (g, gate) in netlist.gates() {
        if !live[g.index()] {
            continue;
        }
        let ins: Vec<NetId> = gate.inputs().iter().map(|i| net_map[i]).collect();
        out.add_gate_driving(gate.name(), gate.cell(), &ins, net_map[&gate.output()]);
    }
    for &po in netlist.primary_outputs() {
        out.set_primary_output(net_map[&po]);
    }
    (out, dead)
}

#[cfg(test)]
mod tests {
    use super::*;
    use odcfp_netlist::CellLibrary;
    use odcfp_sat::{check_equivalence, EquivResult};

    fn lib() -> std::sync::Arc<CellLibrary> {
        CellLibrary::standard()
    }

    #[test]
    fn controlling_constants_annihilate() {
        let mut n = Netlist::new("ctl", lib());
        let a = n.add_primary_input("a");
        let zero = n.add_constant("zero", false);
        let and2 = n.library().cell_for(PrimitiveFn::And, 2).unwrap();
        let inv = n.library().cell_for(PrimitiveFn::Inv, 1).unwrap();
        let g = n.add_gate("g", and2, &[a, zero]);
        let h = n.add_gate("h", inv, &[n.gate_output(g)]);
        n.set_primary_output(n.gate_output(h));
        let (opt, stats) = optimize(&n);
        assert_eq!(opt.num_gates(), 0, "everything folds to constant 1");
        assert_eq!(stats.gates_folded, 2);
        assert_eq!(opt.eval(&[false]), vec![true]);
        assert_eq!(opt.eval(&[true]), vec![true]);
    }

    #[test]
    fn neutral_constants_prune_pins() {
        let mut n = Netlist::new("neu", lib());
        let a = n.add_primary_input("a");
        let b = n.add_primary_input("b");
        let one = n.add_constant("one", true);
        let and3 = n.library().cell_for(PrimitiveFn::And, 3).unwrap();
        let g = n.add_gate("g", and3, &[a, b, one]);
        n.set_primary_output(n.gate_output(g));
        let (opt, stats) = optimize(&n);
        assert_eq!(opt.num_gates(), 1);
        assert_eq!(stats.pins_pruned, 1);
        assert_eq!(opt.gate_fn(GateId::from_index(0)), PrimitiveFn::And);
        assert_eq!(
            opt.gate(GateId::from_index(0)).inputs().len(),
            2,
            "AND3 narrowed to AND2"
        );
        for i in 0..4usize {
            let bits = vec![i & 1 == 1, i & 2 == 2];
            assert_eq!(opt.eval(&bits), n.eval(&bits));
        }
    }

    #[test]
    fn xor_constants_fold_to_inversion() {
        let mut n = Netlist::new("xf", lib());
        let a = n.add_primary_input("a");
        let one = n.add_constant("one", true);
        let xor2 = n.library().cell_for(PrimitiveFn::Xor, 2).unwrap();
        let g = n.add_gate("g", xor2, &[a, one]);
        n.set_primary_output(n.gate_output(g));
        let (opt, _) = optimize(&n);
        assert_eq!(opt.num_gates(), 1);
        assert_eq!(opt.gate_fn(GateId::from_index(0)), PrimitiveFn::Inv);
        assert_eq!(opt.eval(&[true]), vec![false]);
    }

    #[test]
    fn single_live_pin_on_inverting_plane_becomes_inv() {
        let mut n = Netlist::new("ni", lib());
        let a = n.add_primary_input("a");
        let one = n.add_constant("one", true);
        let nand2 = n.library().cell_for(PrimitiveFn::Nand, 2).unwrap();
        let g = n.add_gate("g", nand2, &[a, one]);
        n.set_primary_output(n.gate_output(g));
        let (opt, _) = optimize(&n);
        assert_eq!(opt.gate_fn(GateId::from_index(0)), PrimitiveFn::Inv);
        assert_eq!(opt.eval(&[true]), vec![false]);
        assert_eq!(opt.eval(&[false]), vec![true]);
    }

    #[test]
    fn dead_logic_swept() {
        let mut n = Netlist::new("dead", lib());
        let a = n.add_primary_input("a");
        let b = n.add_primary_input("b");
        let and2 = n.library().cell_for(PrimitiveFn::And, 2).unwrap();
        let or2 = n.library().cell_for(PrimitiveFn::Or, 2).unwrap();
        let keep = n.add_gate("keep", and2, &[a, b]);
        let _dead = n.add_gate("dead", or2, &[a, b]);
        n.set_primary_output(n.gate_output(keep));
        let (opt, stats) = optimize(&n);
        assert_eq!(opt.num_gates(), 1);
        assert_eq!(stats.dead_gates_removed, 1);
        assert!(opt.gate_by_name("keep").is_some());
        assert!(opt.gate_by_name("dead").is_none());
    }

    #[test]
    fn constant_primary_output_materialized() {
        let mut n = Netlist::new("cpo", lib());
        let _a = n.add_primary_input("a");
        let zero = n.add_constant("z", false);
        let inv = n.library().cell_for(PrimitiveFn::Inv, 1).unwrap();
        let g = n.add_gate("g", inv, &[zero]);
        n.set_primary_output(n.gate_output(g));
        let (opt, _) = optimize(&n);
        assert_eq!(opt.num_gates(), 0);
        assert_eq!(opt.eval(&[true]), vec![true]);
    }

    #[test]
    fn programmed_fuse_netlist_shrinks_back_to_embedded_size() {
        // The flagship use: program the flexible design's fuses, optimize,
        // and land near the plain embedded netlist — while staying
        // SAT-equivalent.
        use odcfp_core::{FlexibleDesign, Fingerprinter};
        use odcfp_synth_test_helpers::small_dag;
        let base = small_dag(77);
        let fp = Fingerprinter::new(base).unwrap();
        let flexible = FlexibleDesign::build(&fp).unwrap();
        let bits: Vec<bool> = (0..fp.locations().len()).map(|i| i % 2 == 0).collect();
        let programmed = flexible.program(&bits).unwrap();
        let embedded = fp.embed(&bits).unwrap();
        let (opt, stats) = optimize(&programmed);
        assert!(stats.gates_folded > 0, "fuse gates must fold");
        assert_eq!(
            check_equivalence(&opt, embedded.netlist(), None).unwrap(),
            EquivResult::Equivalent
        );
        // Within a few gates of the direct embedding (inverter sharing
        // differs slightly).
        let diff = opt.num_gates().abs_diff(embedded.netlist().num_gates());
        assert!(
            diff <= fp.locations().len(),
            "optimized {} vs embedded {}",
            opt.num_gates(),
            embedded.netlist().num_gates()
        );
    }

    #[test]
    fn random_circuits_stay_equivalent_after_optimize() {
        use odcfp_synth_test_helpers::small_dag_with_constants;
        for seed in 0..8u64 {
            let n = small_dag_with_constants(seed);
            let (opt, _) = optimize(&n);
            assert_eq!(
                check_equivalence(&n, &opt, None).unwrap(),
                EquivResult::Equivalent,
                "seed {seed}"
            );
            assert!(opt.num_gates() <= n.num_gates());
        }
    }
}

/// Small helpers shared by the optimizer tests (kept out of the public
/// API).
#[cfg(test)]
mod odcfp_synth_test_helpers {
    use odcfp_logic::rng::Xoshiro256;
    use odcfp_netlist::{CellLibrary, Netlist};

    pub fn small_dag(seed: u64) -> Netlist {
        crate::benchmarks::random::random_dag(
            CellLibrary::standard(),
            crate::benchmarks::random::DagParams {
                inputs: 8,
                gates: 60,
                outputs: 6,
                window: 16,
                seed,
            },
        )
    }

    /// A random DAG with constant nets spliced into some gate inputs.
    pub fn small_dag_with_constants(seed: u64) -> Netlist {
        use odcfp_logic::PrimitiveFn;
        let lib = CellLibrary::standard();
        let mut rng = Xoshiro256::seed_from_u64(seed ^ 0xC0);
        let mut n = Netlist::new("cmix", lib);
        let mut signals: Vec<_> = (0..6).map(|i| n.add_primary_input(format!("x{i}"))).collect();
        signals.push(n.add_constant("c0", false));
        signals.push(n.add_constant("c1", true));
        for k in 0..40 {
            let f = *rng
                .choose(&[
                    PrimitiveFn::And,
                    PrimitiveFn::Or,
                    PrimitiveFn::Nand,
                    PrimitiveFn::Nor,
                    PrimitiveFn::Xor,
                ])
                .unwrap();
            let a = signals[rng.next_below(signals.len())];
            let mut bsig = signals[rng.next_below(signals.len())];
            let mut tries = 0;
            while bsig == a && tries < 4 {
                bsig = signals[rng.next_below(signals.len())];
                tries += 1;
            }
            if bsig == a {
                continue;
            }
            let cell = n.library().cell_for(f, 2).unwrap();
            let g = n.add_gate(format!("g{k}"), cell, &[a, bsig]);
            signals.push(n.gate_output(g));
        }
        for s in signals.iter().rev().take(5) {
            n.set_primary_output(*s);
        }
        n
    }
}
