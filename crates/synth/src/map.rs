//! Technology mapping: SOP logic networks onto the standard-cell library.

use std::collections::{HashMap, HashSet};
use std::fmt;
use std::sync::Arc;

use odcfp_blif::{LogicNetwork, NetworkError};
use odcfp_logic::{CubeLit, PrimitiveFn, Sop};
use odcfp_netlist::{CellLibrary, NetId, Netlist};

use crate::builder::CircuitBuilder;

/// Why a network could not be mapped.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum MapError {
    /// The input network is semantically invalid.
    Network(NetworkError),
}

impl fmt::Display for MapError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MapError::Network(e) => write!(f, "invalid logic network: {e}"),
        }
    }
}

impl std::error::Error for MapError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            MapError::Network(e) => Some(e),
        }
    }
}

impl From<NetworkError> for MapError {
    fn from(e: NetworkError) -> Self {
        MapError::Network(e)
    }
}

/// Maximum node fanin for which exact truth-table pattern matching (XOR
/// detection) is attempted.
const DETECT_LIMIT: usize = 12;

/// Maps a validated [`LogicNetwork`] onto `library`, producing a gate-level
/// [`Netlist`] that computes the same function.
///
/// Each SOP node becomes a two-level AND/OR structure over balanced trees of
/// the widest available cells, with these peepholes:
///
/// * buffer/inverter covers map to `BUF`/`INV` cells;
/// * constant covers become constant nets;
/// * single-cube covers with complemented output map to a `NAND` when it
///   fits one cell;
/// * multi-cube single-literal covers with complemented output map to `NOR`;
/// * nodes whose truth table is exact n-ary parity map to `XOR2` trees
///   (plus a final `INV` for XNOR), which keeps ECC-style circuits compact.
///
/// Input inverters are cached per signal.
///
/// # Errors
///
/// Returns [`MapError::Network`] if the network fails validation.
pub fn map_network(
    network: &LogicNetwork,
    library: Arc<CellLibrary>,
) -> Result<Netlist, MapError> {
    network.validate()?;
    let mut b = CircuitBuilder::new(network.name(), library);
    let mut signals: HashMap<&str, NetId> = HashMap::new();
    for name in network.inputs() {
        let id = b.input(name.clone());
        signals.insert(name.as_str(), id);
    }
    for &node_index in &network.topo_order()? {
        let node = &network.nodes()[node_index];
        let fanins: Vec<NetId> = node
            .fanins
            .iter()
            .map(|f| *signals.get(f.as_str()).expect("validated"))
            .collect();
        let out = map_node(&mut b, &node.cover, &fanins);
        signals.insert(node.output.as_str(), out);
    }
    let mut emitted: HashSet<NetId> = HashSet::new();
    for name in network.outputs() {
        let mut id = *signals.get(name.as_str()).expect("validated");
        // Sharing (the inverter cache, aliased covers) can resolve two
        // output signals to the same net, but a net carries at most one
        // primary-output marking — split duplicates through a buffer so
        // the mapped netlist keeps the network's output arity.
        if !emitted.insert(id) {
            id = b.gate(PrimitiveFn::Buf, &[id]);
            emitted.insert(id);
        }
        b.output(id);
    }
    Ok(b.finish())
}

fn map_node(b: &mut CircuitBuilder, cover: &Sop, fanins: &[NetId]) -> NetId {
    let value = cover.output_value();
    // Constant covers.
    if cover.cubes().is_empty() {
        return b.constant(!value);
    }
    if cover
        .cubes()
        .iter()
        .any(|c| c.lits().iter().all(|l| matches!(l, CubeLit::DontCare)))
    {
        return b.constant(value);
    }
    // Buffer / inverter.
    if fanins.len() == 1 && cover.num_cubes() == 1 {
        let lit = cover.cubes()[0].lits()[0];
        let positive = matches!(lit, CubeLit::One) == value;
        return if positive {
            b.gate(PrimitiveFn::Buf, &[fanins[0]])
        } else {
            b.not(fanins[0])
        };
    }
    // Exact parity detection.
    if fanins.len() >= 2 && fanins.len() <= DETECT_LIMIT {
        let tt = cover.truth_table();
        if tt == PrimitiveFn::Xor.truth_table(fanins.len()) {
            return b.xor_tree(fanins);
        }
        if tt == PrimitiveFn::Xnor.truth_table(fanins.len()) {
            let x = b.xor_tree(fanins);
            return b.not(x);
        }
    }
    // Generic two-level structure.
    let max_and = b
        .netlist()
        .library()
        .max_arity(PrimitiveFn::Nand)
        .unwrap_or(4);
    let max_or = b
        .netlist()
        .library()
        .max_arity(PrimitiveFn::Nor)
        .unwrap_or(4);
    let cube_literals = |b: &mut CircuitBuilder, cube: &odcfp_logic::Cube| -> Vec<NetId> {
        cube.lits()
            .iter()
            .zip(fanins)
            .filter_map(|(l, &net)| match l {
                CubeLit::One => Some(net),
                CubeLit::Zero => Some(b.not(net)),
                CubeLit::DontCare => None,
            })
            .collect()
    };

    if cover.num_cubes() == 1 {
        let lits = cube_literals(b, &cover.cubes()[0]);
        debug_assert!(!lits.is_empty(), "all-don't-care cube handled above");
        if value {
            return b.tree(PrimitiveFn::And, &lits);
        }
        // Complemented single cube.
        if lits.len() == 1 {
            return b.not(lits[0]);
        }
        if lits.len() <= max_and {
            return b.gate(PrimitiveFn::Nand, &lits);
        }
        let t = b.tree(PrimitiveFn::And, &lits);
        return b.not(t);
    }

    let cube_nets: Vec<NetId> = cover
        .cubes()
        .iter()
        .map(|cube| {
            let lits = cube_literals(b, cube);
            debug_assert!(!lits.is_empty(), "all-don't-care cube handled above");
            b.tree(PrimitiveFn::And, &lits)
        })
        .collect();
    if value {
        b.tree(PrimitiveFn::Or, &cube_nets)
    } else if cube_nets.len() <= max_or {
        b.gate(PrimitiveFn::Nor, &cube_nets)
    } else {
        let or = b.tree(PrimitiveFn::Or, &cube_nets);
        b.not(or)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use odcfp_blif::parse_blif;
    use odcfp_logic::rng::Xoshiro256;
    use odcfp_logic::Cube;
    use odcfp_blif::LogicNode;

    fn assert_matches_network(net: &LogicNetwork, mapped: &Netlist) {
        let k = net.inputs().len();
        assert!(k <= 14, "test helper is exhaustive");
        for i in 0..(1usize << k) {
            let bits: Vec<bool> = (0..k).map(|v| (i >> v) & 1 == 1).collect();
            assert_eq!(
                mapped.eval(&bits),
                net.eval(&bits),
                "{} assignment {i:b}",
                net.name()
            );
        }
    }

    #[test]
    fn maps_majority() {
        let src = "\
.model maj
.inputs a b c
.outputs m
.names a b c m
11- 1
1-1 1
-11 1
.end
";
        let net = parse_blif(src).unwrap();
        let mapped = map_network(&net, CellLibrary::standard()).unwrap();
        assert_matches_network(&net, &mapped);
    }

    #[test]
    fn nand_nor_peepholes() {
        let src = "\
.model nn
.inputs a b c d
.outputs x y
.names a b x
11 0
.names c d y
1- 0
-1 0
.end
";
        let net = parse_blif(src).unwrap();
        let mapped = map_network(&net, CellLibrary::standard()).unwrap();
        assert_matches_network(&net, &mapped);
        // x is one NAND2, y is one NOR2: two gates total.
        assert_eq!(mapped.num_gates(), 2);
    }

    #[test]
    fn xor_detection_is_compact() {
        // 4-input parity as 8 minterm cubes.
        let mut cubes = Vec::new();
        for i in 0..16usize {
            if (i as u32).count_ones() % 2 == 1 {
                let s: String = (0..4)
                    .map(|v| if (i >> v) & 1 == 1 { '1' } else { '0' })
                    .collect();
                cubes.push(s.parse::<Cube>().unwrap());
            }
        }
        let mut net = LogicNetwork::new("par");
        for i in 0..4 {
            net.add_input(format!("x{i}"));
        }
        net.add_output("p");
        net.add_node(LogicNode {
            output: "p".into(),
            fanins: (0..4).map(|i| format!("x{i}")).collect(),
            cover: Sop::new(4, cubes, true),
        });
        let mapped = map_network(&net, CellLibrary::standard()).unwrap();
        assert_matches_network(&net, &mapped);
        assert_eq!(mapped.num_gates(), 3, "three XOR2 cells expected");
    }

    #[test]
    fn constants_and_buffers() {
        let src = "\
.model cb
.inputs a
.outputs one zero same flip
.names one
1
.names zero
.names a same
1 1
.names a flip
1 0
.end
";
        let net = parse_blif(src).unwrap();
        let mapped = map_network(&net, CellLibrary::standard()).unwrap();
        assert_matches_network(&net, &mapped);
    }

    #[test]
    fn passthrough_output() {
        let src = ".model p\n.inputs a\n.outputs a\n.end\n";
        let net = parse_blif(src).unwrap();
        let mapped = map_network(&net, CellLibrary::standard()).unwrap();
        assert_eq!(mapped.eval(&[true]), vec![true]);
        assert_eq!(mapped.num_gates(), 0);
    }

    #[test]
    fn invalid_network_rejected() {
        let mut net = LogicNetwork::new("bad");
        net.add_output("ghost");
        assert!(matches!(
            map_network(&net, CellLibrary::standard()),
            Err(MapError::Network(_))
        ));
    }

    #[test]
    fn random_networks_map_correctly() {
        let mut rng = Xoshiro256::seed_from_u64(99);
        for round in 0..25 {
            let num_inputs = 2 + rng.next_below(5);
            let num_nodes = 1 + rng.next_below(6);
            let mut net = LogicNetwork::new(format!("r{round}"));
            let mut signals: Vec<String> = (0..num_inputs)
                .map(|i| {
                    let s = format!("i{i}");
                    net.add_input(&s);
                    s
                })
                .collect();
            for k in 0..num_nodes {
                let nf = 1 + rng.next_below(3.min(signals.len()));
                let mut fanins = Vec::new();
                let mut pool = signals.clone();
                for _ in 0..nf {
                    let at = rng.next_below(pool.len());
                    fanins.push(pool.swap_remove(at));
                }
                let ncubes = 1 + rng.next_below(4);
                let cubes: Vec<Cube> = (0..ncubes)
                    .map(|_| {
                        let s: String = (0..nf)
                            .map(|_| ['0', '1', '-'][rng.next_below(3)])
                            .collect();
                        s.parse().unwrap()
                    })
                    .collect();
                let name = format!("n{k}");
                net.add_node(LogicNode {
                    output: name.clone(),
                    fanins,
                    cover: Sop::new(nf, cubes, rng.next_bool()),
                });
                signals.push(name);
            }
            let last = signals.last().unwrap().clone();
            net.add_output(last);
            let mapped = map_network(&net, CellLibrary::standard()).unwrap();
            assert_matches_network(&net, &mapped);
        }
    }
}
