//! The `odcfp serve`, `odcfp client`, and `odcfp loadgen` subcommands:
//! the resident engine (crates/serve), a thin protocol client, and a
//! deterministic load generator.
//!
//! `serve` binds, prints a parseable `odcfp serve listening on <addr>`
//! line, and runs until SIGTERM/SIGINT or a protocol `shutdown`
//! request, then drains gracefully. `client` speaks one request per
//! invocation: it inlines local design files into the request (the
//! server never needs the client's filesystem), reads *frames* until
//! the terminal reply — reassembling and digest-checking `chunk`/`done`
//! streams — prints the payload, and maps verdicts onto the same exit
//! codes the batch commands use. A connection closed before the
//! terminal reply is a structured `connection-closed` error with a
//! nonzero exit, never a hang. `loadgen` drives a server open-loop at a
//! target request rate over a fixed connection count with a seeded
//! op/tenant mix, and reports a latency histogram (docs/SERVING.md §5).

use std::collections::HashMap;
use std::io::{BufRead, BufReader, Write as _};
use std::net::TcpStream;
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

use odcfp_logic::rng::Xoshiro256;
use odcfp_netlist::CellLibrary;
use odcfp_serve::proto::{payload_digest, request_line, FieldValue, Frame};
use odcfp_serve::{signal, ConnMode, Reply, Server, ServerConfig};
use odcfp_synth::benchmarks::random::{random_dag, DagParams};
use odcfp_verilog::write_verilog;

use crate::{usage, CliError, Options};

fn fail(msg: impl Into<String>) -> CliError {
    CliError(msg.into(), 1)
}

/// `odcfp serve`: run the resident engine until drained.
pub fn run_serve(o: &Options, out: &mut impl std::io::Write) -> Result<i32, CliError> {
    let defaults = ServerConfig::default();
    let config = ServerConfig {
        listen: o.listen.clone().unwrap_or_else(|| "127.0.0.1:7333".into()),
        mode: if o.threaded {
            ConnMode::Threaded
        } else {
            ConnMode::Reactor
        },
        workers: o.workers.unwrap_or(2),
        queue_depth: o.queue_depth.unwrap_or(64),
        max_conns: o.max_conns.unwrap_or(defaults.max_conns),
        cache_budget: o.cache_budget_mb.unwrap_or(64) * 1024 * 1024,
        drain_deadline: Duration::from_secs_f64(o.drain_secs.unwrap_or(5.0)),
        max_line: defaults.max_line,
        batch_window: o
            .batch_window_ms
            .map(Duration::from_secs_f64_ms)
            .unwrap_or(defaults.batch_window),
        batch_max: o.batch_max.unwrap_or(defaults.batch_max),
        stream_threshold: o.stream_threshold.unwrap_or(defaults.stream_threshold),
        stream_chunk: defaults.stream_chunk,
        root: PathBuf::from(o.root.clone().unwrap_or_else(|| ".".into())),
    };
    signal::install();
    let server = Server::bind(config).map_err(|e| fail(format!("cannot bind: {e}")))?;
    let addr = server.local_addr().map_err(CliError::from)?;
    // Parsed by supervisors and the e2e tests; keep the format stable.
    writeln!(out, "odcfp serve listening on {addr}")?;
    out.flush()?;
    let summary = server.run().map_err(CliError::from)?;
    writeln!(
        out,
        "odcfp serve drained: {} served, {} rejected, {} panics",
        summary.served, summary.rejected, summary.panics
    )?;
    Ok(0)
}

/// Millisecond-flavoured constructor, kept local to avoid fp drift.
trait FromMs {
    fn from_secs_f64_ms(ms: f64) -> Duration;
}
impl FromMs for Duration {
    fn from_secs_f64_ms(ms: f64) -> Duration {
        Duration::from_secs_f64(ms / 1000.0)
    }
}

/// Builds the op-specific request fields for `odcfp client`.
fn client_request(o: &Options, op: &str, rest: &[String]) -> Result<String, CliError> {
    let mut args: Vec<(&str, FieldValue)> = Vec::new();
    let read = |path: &String| -> Result<String, CliError> {
        std::fs::read_to_string(path).map_err(|e| fail(format!("cannot read {path}: {e}")))
    };
    let design_format = |path: &str| {
        if path.ends_with(".blif") {
            "blif"
        } else {
            "v"
        }
    };
    match op {
        "ping" | "shutdown" => {}
        "locations" | "embed" => {
            let [path] = rest else {
                return Err(usage(format!("client {op} needs <design file>")));
            };
            args.push(("design_text", read(path)?.into()));
            args.push(("design_format", design_format(path).into()));
            if op == "embed" {
                match (&o.bits, o.seed) {
                    (Some(bits), _) => args.push(("bits", bits.as_str().into())),
                    (None, Some(seed)) => args.push(("seed", seed.into())),
                    (None, None) => return Err(usage("client embed needs --seed or --bits")),
                }
                if let Some(policy) = &o.policy {
                    args.push(("policy", policy.as_str().into()));
                }
            }
        }
        "verify" => {
            // Either a candidate netlist file, or --bits for a
            // code-shape check against the golden's code space.
            match (rest, &o.bits) {
                ([golden], Some(bits)) => {
                    args.push(("golden_text", read(golden)?.into()));
                    args.push(("golden_format", design_format(golden).into()));
                    args.push(("candidate_bits", bits.as_str().into()));
                }
                ([golden, candidate], None) => {
                    args.push(("golden_text", read(golden)?.into()));
                    args.push(("golden_format", design_format(golden).into()));
                    args.push(("candidate_text", read(candidate)?.into()));
                    args.push(("candidate_format", design_format(candidate).into()));
                }
                _ => {
                    return Err(usage(
                        "client verify needs <golden> <candidate> or <golden> --bits S",
                    ))
                }
            }
            if let Some(policy) = &o.policy {
                args.push(("policy", policy.as_str().into()));
            }
        }
        "campaign" => {
            let [manifest] = rest else {
                return Err(usage("client campaign needs <manifest file>"));
            };
            let out_dir = o
                .out_dir
                .as_deref()
                .ok_or_else(|| usage("client campaign needs --out-dir (server-relative)"))?;
            args.push(("manifest", read(manifest)?.into()));
            args.push(("out_dir", out_dir.into()));
            if o.resume {
                args.push(("resume", true.into()));
            }
        }
        "report" => {
            let [trace] = rest else {
                return Err(usage("client report needs <trace path> (server-relative)"));
            };
            args.push(("trace_path", trace.as_str().into()));
        }
        "probe" => {
            // Optional design: the fault is attributed to that circuit
            // (a panic probe then drives its quarantine ladder).
            let (mode, design) = match rest {
                [mode] => (mode, None),
                [mode, design] => (mode, Some(design)),
                _ => return Err(usage("client probe needs panic|spin [design file]")),
            };
            args.push(("mode", mode.as_str().into()));
            if let Some(path) = design {
                args.push(("design_text", read(path)?.into()));
                args.push(("design_format", design_format(path).into()));
            }
        }
        other => return Err(usage(format!("unknown client op {other:?}"))),
    }
    let tenant = o.tenant.as_deref().unwrap_or("cli");
    Ok(request_line("cli-1", tenant, o.deadline_ms, op, &args))
}

/// Reads frames until the terminal reply for one request, reassembling
/// chunked streams and verifying the `done` digest.
///
/// A closed connection before the terminal frame returns
/// `Err(ReadError::ConnectionClosed)` — the caller reports it as a
/// structured error and exits nonzero instead of looping forever.
enum ReadError {
    ConnectionClosed,
    Protocol(String),
    Io(std::io::Error),
}

fn read_terminal_reply(reader: &mut impl BufRead) -> Result<Reply, ReadError> {
    let mut assembled = String::new();
    let mut next_seq: u64 = 0;
    loop {
        let mut line = String::new();
        let n = reader.read_line(&mut line).map_err(ReadError::Io)?;
        if n == 0 {
            // EOF. Pre-v2 clients looped on this forever; it is a
            // terminal condition: the server (or the network) hung up
            // before completing the reply.
            return Err(ReadError::ConnectionClosed);
        }
        let trimmed = line.trim_end();
        if trimmed.is_empty() {
            continue;
        }
        let frame = Frame::parse_line(trimmed)
            .ok_or_else(|| ReadError::Protocol(format!("unparseable reply: {trimmed:?}")))?;
        match frame {
            Frame::Reply(reply) => return Ok(reply),
            Frame::Chunk { seq, data, .. } => {
                if seq != next_seq {
                    return Err(ReadError::Protocol(format!(
                        "chunk out of order: got seq {seq}, expected {next_seq}"
                    )));
                }
                next_seq += 1;
                assembled.push_str(&data);
            }
            Frame::Done {
                reply,
                stream,
                chunks,
                bytes,
                digest,
            } => {
                if chunks != next_seq {
                    return Err(ReadError::Protocol(format!(
                        "stream truncated: done after {next_seq} chunks, expected {chunks}"
                    )));
                }
                if bytes as usize != assembled.len()
                    || payload_digest(assembled.as_bytes()) != digest
                {
                    return Err(ReadError::Protocol(format!(
                        "stream digest mismatch on field {stream:?} ({} bytes)",
                        assembled.len()
                    )));
                }
                return Ok(reply.field(&stream, std::mem::take(&mut assembled)));
            }
        }
    }
}

/// `odcfp client <addr> <op> [args]`: one request, one (possibly
/// chunked) reply.
pub fn run_client(o: &Options, out: &mut impl std::io::Write) -> Result<i32, CliError> {
    let [addr, op, rest @ ..] = o.positional.as_slice() else {
        return Err(usage(
            "client needs <addr> and <op> (ping|locations|embed|verify|campaign|report|probe|shutdown)",
        ));
    };
    let line = client_request(o, op, rest)?;
    let stream = TcpStream::connect(addr).map_err(|e| fail(format!("cannot connect {addr}: {e}")))?;
    let mut writer = stream.try_clone().map_err(CliError::from)?;
    writer.write_all(line.as_bytes())?;
    writer.write_all(b"\n")?;
    writer.flush()?;
    let mut reader = BufReader::new(stream);
    let reply = match read_terminal_reply(&mut reader) {
        Ok(reply) => reply,
        Err(ReadError::ConnectionClosed) => {
            eprintln!(
                "error (connection-closed): server closed the connection before a complete reply"
            );
            return Ok(1);
        }
        Err(ReadError::Protocol(message)) => return Err(fail(message)),
        Err(ReadError::Io(e)) => return Err(CliError::from(e)),
    };

    if !reply.ok {
        let code = reply.error.as_deref().unwrap_or("error");
        let message = reply.message.as_deref().unwrap_or("");
        eprintln!("error ({code}): {message}");
        // Shed/cancelled requests are operational outcomes, not usage
        // mistakes: `deadline` maps onto the batch `undecided` code.
        return Ok(if code == "deadline" { 4 } else { 1 });
    }
    // Large payloads go to -o / stdout; scalar fields print as key=value.
    let mut code = 0;
    for (key, value) in &reply.fields {
        match value {
            FieldValue::Str(s) if key == "netlist" || key == "summary" => {
                match &o.output {
                    Some(path) => {
                        std::fs::write(path, s)
                            .map_err(|e| fail(format!("cannot write {path}: {e}")))?;
                        eprintln!("wrote {path}");
                    }
                    None => write!(out, "{s}")?,
                }
            }
            FieldValue::Str(s) => {
                writeln!(out, "{key}={s}")?;
                if key == "verdict" {
                    code = match s.as_str() {
                        "proven" => 0,
                        "refuted" => 3,
                        "undecided" => 4,
                        _ => 5,
                    };
                }
            }
            FieldValue::U64(n) => writeln!(out, "{key}={n}")?,
            FieldValue::Bool(b) => writeln!(out, "{key}={b}")?,
        }
    }
    if reply.fields.is_empty() {
        writeln!(out, "ok ({})", reply.op.as_deref().unwrap_or("?"))?;
    }
    Ok(code)
}

/// Aggregated loadgen accounting, shared across connection threads.
#[derive(Default)]
struct LoadStats {
    latencies_us: Mutex<Vec<u64>>,
    sent: AtomicU64,
    ok: AtomicU64,
    errors: AtomicU64,
    /// Replies carrying `batched=true` (coalesced verification).
    batched: AtomicU64,
    /// Error replies by structured code (`overloaded`, `deadline`, …) —
    /// the troubleshooting table in docs/SERVING.md is keyed by these.
    error_codes: Mutex<HashMap<String, u64>>,
}

/// `odcfp loadgen <addr>`: open-loop load at a target rate.
///
/// Deterministic by construction: the op/tenant mix on each connection
/// is drawn from a `Xoshiro256` stream seeded with `--seed` plus the
/// connection index, so two runs against the same server issue the
/// identical request sequence. Open-loop means requests are sent on
/// schedule regardless of outstanding replies — measured latency
/// includes queueing, which is what capacity planning needs.
pub fn run_loadgen(o: &Options, out: &mut impl std::io::Write) -> Result<i32, CliError> {
    let [addr] = o.positional.as_slice() else {
        return Err(usage("loadgen needs <addr>"));
    };
    let rps = o.rps.unwrap_or(200.0);
    let duration = Duration::from_secs_f64(o.duration_secs.unwrap_or(5.0));
    let conns = o.conns.unwrap_or(4);
    let seed = o.seed.unwrap_or(7);
    let mix = parse_mix(o.mix.as_deref().unwrap_or("ping:1,locations:1,embed:1,verify:1"))?;

    // One deterministic design shared by every design-bearing request,
    // so the server answers from its warm cache and verify requests are
    // batchable (same golden, same policy).
    let design = write_verilog(&random_dag(CellLibrary::standard(), DagParams::small(seed)));
    let stats = Arc::new(LoadStats::default());
    let start = Instant::now();
    let handles: Vec<_> = (0..conns)
        .map(|c| {
            let addr = addr.clone();
            let mix = mix.clone();
            let design = design.clone();
            let stats = Arc::clone(&stats);
            let per_conn_rps = rps / conns as f64;
            std::thread::spawn(move || {
                conn_loop(&addr, c, seed, per_conn_rps, duration, &mix, &design, &stats)
            })
        })
        .collect();
    let mut conn_errors = 0usize;
    for h in handles {
        if h.join().map_or(true, |r| r.is_err()) {
            conn_errors += 1;
        }
    }
    let elapsed = start.elapsed();

    let mut latencies = stats
        .latencies_us
        .lock()
        .unwrap_or_else(std::sync::PoisonError::into_inner)
        .clone();
    latencies.sort_unstable();
    let pct = |p: f64| -> u64 {
        if latencies.is_empty() {
            return 0;
        }
        let idx = ((latencies.len() as f64 - 1.0) * p).round() as usize;
        latencies[idx.min(latencies.len() - 1)]
    };
    let sent = stats.sent.load(Ordering::SeqCst);
    let ok = stats.ok.load(Ordering::SeqCst);
    let errors = stats.errors.load(Ordering::SeqCst);
    let batched = stats.batched.load(Ordering::SeqCst);
    let achieved = ok as f64 / elapsed.as_secs_f64();

    // Power-of-two latency histogram (bucket upper bounds in µs).
    let mut histogram: Vec<(u64, u64)> = Vec::new();
    let mut bound = 64u64;
    let mut idx = 0usize;
    while idx < latencies.len() {
        let count = latencies[idx..].iter().take_while(|&&l| l <= bound).count();
        if count > 0 || bound <= pct(1.0) {
            histogram.push((bound, count as u64));
        }
        idx += count;
        bound = bound.saturating_mul(2);
        if bound == 0 {
            break;
        }
    }

    writeln!(
        out,
        "loadgen: {sent} sent, {ok} ok, {errors} errors, {batched} batched over {:.2}s ({achieved:.1} rps achieved, {rps:.1} targeted)",
        elapsed.as_secs_f64()
    )?;
    writeln!(
        out,
        "latency: p50={}us p90={}us p99={}us max={}us",
        pct(0.50),
        pct(0.90),
        pct(0.99),
        pct(1.0)
    )?;
    let mut by_code: Vec<(String, u64)> = stats
        .error_codes
        .lock()
        .unwrap_or_else(std::sync::PoisonError::into_inner)
        .iter()
        .map(|(k, v)| (k.clone(), *v))
        .collect();
    by_code.sort();
    for (code, n) in &by_code {
        writeln!(out, "error breakdown: {code}={n}")?;
    }
    if conn_errors > 0 {
        writeln!(out, "warning: {conn_errors} connection(s) failed")?;
    }

    if let Some(path) = &o.output {
        let mut json = String::from("{\n");
        json.push_str(&format!("  \"target_rps\": {rps},\n"));
        json.push_str(&format!("  \"achieved_rps\": {achieved:.2},\n"));
        json.push_str(&format!("  \"duration_secs\": {:.3},\n", elapsed.as_secs_f64()));
        json.push_str(&format!("  \"conns\": {conns},\n"));
        json.push_str(&format!("  \"seed\": {seed},\n"));
        json.push_str(&format!("  \"sent\": {sent},\n"));
        json.push_str(&format!("  \"ok\": {ok},\n"));
        json.push_str(&format!("  \"errors\": {errors},\n"));
        let codes: Vec<String> = by_code
            .iter()
            .map(|(code, n)| format!("\"{code}\": {n}"))
            .collect();
        json.push_str(&format!("  \"error_codes\": {{{}}},\n", codes.join(", ")));
        json.push_str(&format!("  \"batched\": {batched},\n"));
        json.push_str(&format!(
            "  \"p50_us\": {}, \"p90_us\": {}, \"p99_us\": {}, \"max_us\": {},\n",
            pct(0.50),
            pct(0.90),
            pct(0.99),
            pct(1.0)
        ));
        json.push_str("  \"histogram_le_us\": [");
        let buckets: Vec<String> = histogram
            .iter()
            .map(|(le, n)| format!("[{le},{n}]"))
            .collect();
        json.push_str(&buckets.join(","));
        json.push_str("]\n}\n");
        std::fs::write(path, json).map_err(|e| fail(format!("cannot write {path}: {e}")))?;
        eprintln!("wrote {path}");
    }
    Ok(if errors > 0 || conn_errors > 0 { 1 } else { 0 })
}

/// Parses `op:weight,op:weight` into a cumulative-weight table.
fn parse_mix(spec: &str) -> Result<Vec<(String, f64)>, CliError> {
    let mut mix = Vec::new();
    for part in spec.split(',') {
        let Some((op, weight)) = part.split_once(':') else {
            return Err(usage(format!("--mix entries are op:weight; got {part:?}")));
        };
        if !matches!(op, "ping" | "locations" | "embed" | "verify") {
            return Err(usage(format!(
                "--mix op must be ping|locations|embed|verify; got {op:?}"
            )));
        }
        let w: f64 = weight
            .parse()
            .map_err(|_| usage(format!("--mix weight must be a number; got {weight:?}")))?;
        if !w.is_finite() || w < 0.0 {
            return Err(usage("--mix weights must be non-negative"));
        }
        mix.push((op.to_owned(), w));
    }
    if mix.iter().map(|(_, w)| w).sum::<f64>() <= 0.0 {
        return Err(usage("--mix weights must sum to a positive value"));
    }
    Ok(mix)
}

/// One loadgen connection: sends on schedule (open loop), reads frames
/// opportunistically between sends, and drains stragglers at the end.
#[allow(clippy::too_many_arguments)]
fn conn_loop(
    addr: &str,
    conn_idx: usize,
    seed: u64,
    rps: f64,
    duration: Duration,
    mix: &[(String, f64)],
    design: &str,
    stats: &LoadStats,
) -> Result<(), ()> {
    let stream = TcpStream::connect(addr).map_err(|_| ())?;
    stream
        .set_read_timeout(Some(Duration::from_millis(2)))
        .map_err(|_| ())?;
    let _ = stream.set_nodelay(true);
    let mut writer = stream.try_clone().map_err(|_| ())?;
    let mut reader = BufReader::new(stream);
    let mut rng = Xoshiro256::seed_from_u64(seed.wrapping_add(conn_idx as u64 + 1));
    let total: f64 = mix.iter().map(|(_, w)| w).sum();
    let interval = Duration::from_secs_f64(1.0 / rps.max(0.001));
    let start = Instant::now();
    let mut next_send = start;
    let mut sent_count: u64 = 0;
    let mut pending: HashMap<String, Instant> = HashMap::new();
    // Partial line carried across read timeouts.
    let mut line = String::new();

    loop {
        let now = Instant::now();
        let sending = now < start + duration;
        if !sending && pending.is_empty() {
            break;
        }
        if !sending && now > start + duration + Duration::from_secs(10) {
            // Straggler grace expired; count the rest as errors.
            stats.errors.fetch_add(pending.len() as u64, Ordering::SeqCst);
            break;
        }
        if sending && now >= next_send {
            // Open loop: send on schedule even with replies outstanding.
            let id = format!("lg{conn_idx}-{sent_count}");
            let tenant = format!("tenant-{}", rng.next_below(4));
            let mut pick = rng.next_f64() * total;
            let mut op = mix[0].0.as_str();
            for (name, w) in mix {
                if pick < *w {
                    op = name;
                    break;
                }
                pick -= w;
            }
            let mut args: Vec<(&str, FieldValue)> = Vec::new();
            match op {
                "ping" => {}
                "locations" => {
                    args.push(("design_text", design.into()));
                    args.push(("design_format", "v".into()));
                }
                "embed" => {
                    args.push(("design_text", design.into()));
                    args.push(("design_format", "v".into()));
                    // Wire integers are i64; keep seeds in range.
                    args.push(("seed", rng.next_below(1 << 32).into()));
                    args.push(("policy", "quick".into()));
                }
                _ => {
                    args.push(("golden_text", design.into()));
                    args.push(("golden_format", "v".into()));
                    args.push(("candidate_text", design.into()));
                    args.push(("candidate_format", "v".into()));
                    args.push(("policy", "strict".into()));
                }
            }
            let request = request_line(&id, &tenant, None, op, &args);
            if writer.write_all(request.as_bytes()).is_err()
                || writer.write_all(b"\n").is_err()
            {
                stats
                    .errors
                    .fetch_add(pending.len() as u64 + 1, Ordering::SeqCst);
                return Err(());
            }
            stats.sent.fetch_add(1, Ordering::SeqCst);
            pending.insert(id, now);
            sent_count += 1;
            next_send += interval;
            continue;
        }
        match reader.read_line(&mut line) {
            Ok(0) => {
                // Server hung up with replies outstanding.
                stats.errors.fetch_add(pending.len() as u64, Ordering::SeqCst);
                return Err(());
            }
            Ok(_) => {
                let trimmed = line.trim_end();
                if let Some(Frame::Reply(reply)) =
                    (!trimmed.is_empty()).then(|| Frame::parse_line(trimmed)).flatten()
                {
                    if let Some(sent_at) = pending.remove(&reply.id) {
                        let us = sent_at.elapsed().as_micros() as u64;
                        stats
                            .latencies_us
                            .lock()
                            .unwrap_or_else(std::sync::PoisonError::into_inner)
                            .push(us);
                        if reply.ok {
                            stats.ok.fetch_add(1, Ordering::SeqCst);
                            if reply.field_bool("batched") == Some(true) {
                                stats.batched.fetch_add(1, Ordering::SeqCst);
                            }
                        } else {
                            stats.errors.fetch_add(1, Ordering::SeqCst);
                            let code = reply.error.clone().unwrap_or_else(|| "?".into());
                            *stats
                                .error_codes
                                .lock()
                                .unwrap_or_else(std::sync::PoisonError::into_inner)
                                .entry(code)
                                .or_insert(0) += 1;
                        }
                    }
                }
                // Chunk/done frames are ignored: loadgen payloads stay
                // under the stream threshold by construction.
                line.clear();
            }
            Err(e)
                if matches!(
                    e.kind(),
                    std::io::ErrorKind::WouldBlock
                        | std::io::ErrorKind::TimedOut
                        | std::io::ErrorKind::Interrupted
                ) => {}
            Err(_) => {
                stats.errors.fetch_add(pending.len() as u64, Ordering::SeqCst);
                return Err(());
            }
        }
    }
    Ok(())
}
