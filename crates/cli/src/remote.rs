//! The `odcfp serve` and `odcfp client` subcommands: the resident
//! engine (crates/serve) and a thin protocol client, proving the batch
//! subcommands can become clients of one long-lived process.
//!
//! `serve` binds, prints a parseable `odcfp serve listening on <addr>`
//! line, and runs until SIGTERM/SIGINT or a protocol `shutdown`
//! request, then drains gracefully. `client` speaks one request per
//! invocation: it inlines local design files into the request (the
//! server never needs the client's filesystem), prints the reply's
//! payload, and maps verdicts onto the same exit codes the batch
//! commands use.

use std::io::{BufRead, BufReader, Write as _};
use std::net::TcpStream;
use std::path::PathBuf;
use std::time::Duration;

use odcfp_serve::proto::{request_line, FieldValue};
use odcfp_serve::{signal, Reply, Server, ServerConfig};

use crate::{usage, CliError, Options};

fn fail(msg: impl Into<String>) -> CliError {
    CliError(msg.into(), 1)
}

/// `odcfp serve`: run the resident engine until drained.
pub fn run_serve(o: &Options, out: &mut impl std::io::Write) -> Result<i32, CliError> {
    let config = ServerConfig {
        listen: o.listen.clone().unwrap_or_else(|| "127.0.0.1:7333".into()),
        workers: o.workers.unwrap_or(2),
        queue_depth: o.queue_depth.unwrap_or(64),
        cache_budget: o.cache_budget_mb.unwrap_or(64) * 1024 * 1024,
        drain_deadline: Duration::from_secs_f64(o.drain_secs.unwrap_or(5.0)),
        root: PathBuf::from(o.root.clone().unwrap_or_else(|| ".".into())),
    };
    signal::install();
    let server = Server::bind(config).map_err(|e| fail(format!("cannot bind: {e}")))?;
    let addr = server.local_addr().map_err(CliError::from)?;
    // Parsed by supervisors and the e2e tests; keep the format stable.
    writeln!(out, "odcfp serve listening on {addr}")?;
    out.flush()?;
    let summary = server.run().map_err(CliError::from)?;
    writeln!(
        out,
        "odcfp serve drained: {} served, {} rejected, {} panics",
        summary.served, summary.rejected, summary.panics
    )?;
    Ok(0)
}

/// Builds the op-specific request fields for `odcfp client`.
fn client_request(o: &Options, op: &str, rest: &[String]) -> Result<String, CliError> {
    let mut args: Vec<(&str, FieldValue)> = Vec::new();
    let read = |path: &String| -> Result<String, CliError> {
        std::fs::read_to_string(path).map_err(|e| fail(format!("cannot read {path}: {e}")))
    };
    let design_format = |path: &str| {
        if path.ends_with(".blif") {
            "blif"
        } else {
            "v"
        }
    };
    match op {
        "ping" | "shutdown" => {}
        "locations" | "embed" => {
            let [path] = rest else {
                return Err(usage(format!("client {op} needs <design file>")));
            };
            args.push(("design_text", read(path)?.into()));
            args.push(("design_format", design_format(path).into()));
            if op == "embed" {
                match (&o.bits, o.seed) {
                    (Some(bits), _) => args.push(("bits", bits.as_str().into())),
                    (None, Some(seed)) => args.push(("seed", seed.into())),
                    (None, None) => return Err(usage("client embed needs --seed or --bits")),
                }
                if let Some(policy) = &o.policy {
                    args.push(("policy", policy.as_str().into()));
                }
            }
        }
        "verify" => {
            let [golden, candidate] = rest else {
                return Err(usage("client verify needs <golden> and <candidate>"));
            };
            args.push(("golden_text", read(golden)?.into()));
            args.push(("golden_format", design_format(golden).into()));
            args.push(("candidate_text", read(candidate)?.into()));
            args.push(("candidate_format", design_format(candidate).into()));
            if let Some(policy) = &o.policy {
                args.push(("policy", policy.as_str().into()));
            }
        }
        "campaign" => {
            let [manifest] = rest else {
                return Err(usage("client campaign needs <manifest file>"));
            };
            let out_dir = o
                .out_dir
                .as_deref()
                .ok_or_else(|| usage("client campaign needs --out-dir (server-relative)"))?;
            args.push(("manifest", read(manifest)?.into()));
            args.push(("out_dir", out_dir.into()));
            if o.resume {
                args.push(("resume", true.into()));
            }
        }
        "report" => {
            let [trace] = rest else {
                return Err(usage("client report needs <trace path> (server-relative)"));
            };
            args.push(("trace_path", trace.as_str().into()));
        }
        "probe" => {
            let [mode] = rest else {
                return Err(usage("client probe needs panic|spin"));
            };
            args.push(("mode", mode.as_str().into()));
        }
        other => return Err(usage(format!("unknown client op {other:?}"))),
    }
    let tenant = o.tenant.as_deref().unwrap_or("cli");
    Ok(request_line("cli-1", tenant, o.deadline_ms, op, &args))
}

/// `odcfp client <addr> <op> [args]`: one request, one reply.
pub fn run_client(o: &Options, out: &mut impl std::io::Write) -> Result<i32, CliError> {
    let [addr, op, rest @ ..] = o.positional.as_slice() else {
        return Err(usage(
            "client needs <addr> and <op> (ping|locations|embed|verify|campaign|report|probe|shutdown)",
        ));
    };
    let line = client_request(o, op, rest)?;
    let stream = TcpStream::connect(addr).map_err(|e| fail(format!("cannot connect {addr}: {e}")))?;
    let mut writer = stream.try_clone().map_err(CliError::from)?;
    writer.write_all(line.as_bytes())?;
    writer.write_all(b"\n")?;
    writer.flush()?;
    let mut reply_line = String::new();
    BufReader::new(stream).read_line(&mut reply_line)?;
    let reply = Reply::parse_line(reply_line.trim_end())
        .ok_or_else(|| fail(format!("unparseable reply: {reply_line:?}")))?;

    if !reply.ok {
        let code = reply.error.as_deref().unwrap_or("error");
        let message = reply.message.as_deref().unwrap_or("");
        eprintln!("error ({code}): {message}");
        // Shed/cancelled requests are operational outcomes, not usage
        // mistakes: `deadline` maps onto the batch `undecided` code.
        return Ok(if code == "deadline" { 4 } else { 1 });
    }
    // Large payloads go to -o / stdout; scalar fields print as key=value.
    let mut code = 0;
    for (key, value) in &reply.fields {
        match value {
            FieldValue::Str(s) if key == "netlist" || key == "summary" => {
                match &o.output {
                    Some(path) => {
                        std::fs::write(path, s)
                            .map_err(|e| fail(format!("cannot write {path}: {e}")))?;
                        eprintln!("wrote {path}");
                    }
                    None => write!(out, "{s}")?,
                }
            }
            FieldValue::Str(s) => {
                writeln!(out, "{key}={s}")?;
                if key == "verdict" {
                    code = match s.as_str() {
                        "proven" => 0,
                        "refuted" => 3,
                        "undecided" => 4,
                        _ => 5,
                    };
                }
            }
            FieldValue::U64(n) => writeln!(out, "{key}={n}")?,
            FieldValue::Bool(b) => writeln!(out, "{key}={b}")?,
        }
    }
    if reply.fields.is_empty() {
        writeln!(out, "ok ({})", reply.op.as_deref().unwrap_or("?"))?;
    }
    Ok(code)
}
