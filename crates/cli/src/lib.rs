//! Implementation of the `odcfp` command-line tool.
//!
//! The binary wires the whole flow together for files on disk:
//!
//! ```text
//! odcfp stats      <design.(blif|v)>             design statistics + metrics
//! odcfp map        <in.blif> -o <out.v>          technology mapping
//! odcfp locations  <in.(blif|v)>                 fingerprint locations + capacity
//! odcfp embed      <in.(blif|v)> -o <out.v>      embed a fingerprint
//!                  (--seed N | --bits 0101..) [--verify none|sim|sat]
//! odcfp extract    <base.(blif|v)> <suspect.v>   recover a fingerprint
//! odcfp verify     <golden.(blif|v)> <candidate.(blif|v)>
//!                  [--verify-budget N] [--verify-timeout SECS] [--stats]
//!                  [--solver-profile P] [--portfolio N]
//! odcfp solve      <in.dimacs>                    decide one DIMACS CNF
//!                  [--solver-profile P] [--portfolio N] (debug tool;
//!                  exit codes 0 sat / 1 unsat / 2 undecided)
//! odcfp constrain  <in.(blif|v)> -o <out.v>      delay-constrained embedding
//!                  --delay-pct P [--method reactive|proactive]
//! odcfp dot        <in.(blif|v)> -o <out.dot>    Graphviz export
//! odcfp bench      <name>                        generate a Table II benchmark
//!                  -o <out.v>
//! odcfp attack     <in.(blif|v)> | --manifest <m> adversary battery scorecard
//!                  [--seed N] [--buyers N] [--copies N] [--coalitions 2,4,8]
//!                  [--resynth-levels opt,remap,remap2] [--power-words N]
//!                  [--detect-threshold X] [--survival-out <file>] [-o out.json]
//! odcfp campaign   <manifest> --out-dir <dir>    journaled batch embed+verify
//!                  [--resume] [--max-jobs N]
//! odcfp report     <trace.jsonl>                 summarize an observability trace
//! odcfp serve      [--listen ADDR] [--root DIR]  resident multi-tenant engine
//!                  [--workers N] [--queue-depth N] [--cache-budget-mb N]
//!                  [--drain-secs S] [--threaded] [--max-conns N]
//!                  [--batch-window-ms MS] [--batch-max N]
//!                  [--stream-threshold BYTES]
//!                  (protocol: docs/PROTOCOL.md; operations: docs/SERVING.md)
//! odcfp client     <addr> <op> [args]            one request against a server
//!                  [--tenant NAME] [--deadline-ms N]
//! odcfp loadgen    <addr> [--rps R] [--conns N]  deterministic open-loop load
//!                  [--duration-secs S] [--mix op:W,..] [-o hist.json]
//! ```
//!
//! Every command accepts `--genlib <file>` to use a custom cell library
//! instead of the built-in one, and `--threads N` to pin the analysis
//! worker count (results are bit-identical at any setting; the
//! `ODCFP_THREADS` environment variable is the lower-precedence
//! equivalent). BLIF inputs are technology-mapped on the fly.
//!
//! Every command also accepts `--trace-out <path>` (or the
//! `ODCFP_TRACE` environment variable) to record a structured JSONL
//! trace of the run — spans, counters, verdicts — which `odcfp report
//! <trace.jsonl>` turns into a per-stage breakdown (see
//! docs/OBSERVABILITY.md).
//!
//! # Exit codes
//!
//! `run` reports the process exit code for the outcome: `0` success (and
//! `verify`'s *proven equivalent*), `1` runtime error, `2` usage error,
//! `3` *refuted*, `4` *undecided* (budget or deadline exhausted), `5`
//! *probably equivalent* (simulation only, no proof), `6` campaign
//! completed with quarantined jobs.
//!
//! A broken stdout pipe (`odcfp ... | head`) is not an error: the run is
//! cut short and the process exits `0`, like a well-behaved Unix filter.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod remote;

use std::fmt;
use std::fs;
use std::path::{Path, PathBuf};
use std::sync::Arc;
use std::time::{Duration, Instant};

use odcfp_analysis::DesignMetrics;
use odcfp_core::campaign::{
    self, CampaignEnv, CampaignError, CampaignOptions, CircuitSource, JobEvent, Manifest,
    ManifestCircuit,
};
use odcfp_core::attack::{run_battery, AttackOptions, SurvivalStats};
use odcfp_core::heuristics::{
    proactive_delay_embedding, proactive_robust_embedding, reactive_delay_reduction,
    ReactiveOptions,
};
use odcfp_core::{
    verify_equivalent_report, Fingerprinter, Verdict, VerifyLevel, VerifyPolicy, VerifyStats,
};
use odcfp_netlist::{genlib, CellLibrary, Netlist};
use odcfp_sat::{
    backend_from_cnf, parse_dimacs, portfolio, RaceOptions, RaceReport, SolveResult, SolverConfig,
    SolverStats, Var,
};
use odcfp_verilog::{parse_verilog, write_verilog};

/// A CLI failure: message already formatted for the user, plus the process
/// exit code (`1` runtime error, `2` usage error).
#[derive(Debug)]
pub struct CliError(pub String, pub i32);

impl CliError {
    /// The process exit code this failure maps to.
    pub fn exit_code(&self) -> i32 {
        self.1
    }

    /// `true` for the benign "stdout reader went away" condition
    /// (`odcfp ... | head`). The caller should exit `0` without printing
    /// an error.
    pub fn is_broken_pipe(&self) -> bool {
        self.1 == 0
    }
}

impl fmt::Display for CliError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for CliError {}

macro_rules! from_error {
    ($($ty:ty),* $(,)?) => {
        $(impl From<$ty> for CliError {
            fn from(e: $ty) -> Self {
                CliError(e.to_string(), 1)
            }
        })*
    };
}

impl From<std::io::Error> for CliError {
    fn from(e: std::io::Error) -> Self {
        // EPIPE on stdout is the reader closing early (`| head`), not a
        // failure: surface it with exit code 0 so `run` unwinds cleanly
        // and the process exits like any Unix filter would.
        if e.kind() == std::io::ErrorKind::BrokenPipe {
            CliError("broken pipe".into(), 0)
        } else {
            CliError(e.to_string(), 1)
        }
    }
}

from_error!(
    odcfp_blif::ParseBlifError,
    odcfp_verilog::ParseVerilogError,
    odcfp_synth::MapError,
    odcfp_core::FingerprintError,
    odcfp_netlist::NetlistError,
    genlib::ParseGenlibError,
);

fn fail(msg: impl Into<String>) -> CliError {
    CliError(msg.into(), 1)
}

/// A usage mistake (bad flags / arguments): exit code 2.
fn usage(msg: impl Into<String>) -> CliError {
    CliError(msg.into(), 2)
}

/// The process exit code a [`Verdict`] maps to.
pub fn verdict_exit_code(verdict: &Verdict) -> i32 {
    match verdict {
        Verdict::Proven => 0,
        Verdict::Refuted { .. } => 3,
        Verdict::Undecided { .. } => 4,
        Verdict::ProbablyEquivalent { .. } => 5,
    }
}

/// Parsed global options.
struct Options {
    positional: Vec<String>,
    output: Option<String>,
    genlib: Option<String>,
    seed: Option<u64>,
    bits: Option<String>,
    verify: VerifyLevel,
    verify_budget: Option<u64>,
    verify_timeout: Option<f64>,
    stats: bool,
    delay_pct: Option<f64>,
    method: String,
    threads: Option<usize>,
    out_dir: Option<String>,
    resume: bool,
    max_jobs: Option<usize>,
    trace_out: Option<String>,
    // serve / client / loadgen (see `remote`).
    listen: Option<String>,
    workers: Option<usize>,
    queue_depth: Option<usize>,
    cache_budget_mb: Option<u64>,
    drain_secs: Option<f64>,
    root: Option<String>,
    tenant: Option<String>,
    deadline_ms: Option<u64>,
    policy: Option<String>,
    threaded: bool,
    max_conns: Option<usize>,
    batch_window_ms: Option<f64>,
    batch_max: Option<usize>,
    stream_threshold: Option<usize>,
    rps: Option<f64>,
    duration_secs: Option<f64>,
    conns: Option<usize>,
    mix: Option<String>,
    // attack / constrain --robust-locations.
    manifest: Option<String>,
    buyers: Option<usize>,
    copies: Option<usize>,
    coalitions: Option<String>,
    resynth_levels: Option<String>,
    power_words: Option<usize>,
    detect_threshold: Option<f64>,
    survival_out: Option<String>,
    robust_locations: Option<String>,
    // solver tier (verify / solve).
    solver_profile: Option<String>,
    portfolio: Option<usize>,
}

impl Options {
    /// The SAT backend configuration `--solver-profile` names (default
    /// profile when the flag is absent).
    fn solver_config(&self) -> Result<SolverConfig, CliError> {
        match &self.solver_profile {
            None => Ok(SolverConfig::default()),
            Some(name) => SolverConfig::from_profile(name).ok_or_else(|| {
                usage(format!(
                    "unknown solver profile {name:?} (expected one of: {})",
                    SolverConfig::profiles()
                        .into_iter()
                        .map(|(n, _)| n)
                        .collect::<Vec<_>>()
                        .join(", ")
                ))
            }),
        }
    }

    /// The equivalence-checking policy the flags ask for: `--verify-budget`
    /// overrides `base`, `--verify-timeout` adds a deadline, and
    /// `--solver-profile` / `--portfolio` configure the SAT tier.
    fn verify_policy(&self, base: VerifyPolicy) -> Result<VerifyPolicy, CliError> {
        let mut policy = match self.verify_budget {
            Some(budget) => VerifyPolicy::budgeted(budget),
            None => base,
        };
        if let Some(secs) = self.verify_timeout {
            policy = policy.with_time_limit(Duration::from_secs_f64(secs));
        }
        policy.solver = self.solver_config()?;
        if let Some(width) = self.portfolio {
            policy.portfolio = width;
        }
        Ok(policy)
    }
}

fn parse_options(args: &[String]) -> Result<Options, CliError> {
    let mut o = Options {
        positional: Vec::new(),
        output: None,
        genlib: None,
        seed: None,
        bits: None,
        verify: VerifyLevel::Simulation,
        verify_budget: None,
        verify_timeout: None,
        stats: false,
        delay_pct: None,
        method: "reactive".into(),
        threads: None,
        out_dir: None,
        resume: false,
        max_jobs: None,
        trace_out: None,
        listen: None,
        workers: None,
        queue_depth: None,
        cache_budget_mb: None,
        drain_secs: None,
        root: None,
        tenant: None,
        deadline_ms: None,
        policy: None,
        threaded: false,
        max_conns: None,
        batch_window_ms: None,
        batch_max: None,
        stream_threshold: None,
        rps: None,
        duration_secs: None,
        conns: None,
        mix: None,
        manifest: None,
        buyers: None,
        copies: None,
        coalitions: None,
        resynth_levels: None,
        power_words: None,
        detect_threshold: None,
        survival_out: None,
        robust_locations: None,
        solver_profile: None,
        portfolio: None,
    };
    let mut it = args.iter();
    while let Some(a) = it.next() {
        let mut take = |name: &str| -> Result<String, CliError> {
            it.next()
                .cloned()
                .ok_or_else(|| usage(format!("{name} needs a value")))
        };
        match a.as_str() {
            "-o" | "--output" => o.output = Some(take("-o")?),
            "--genlib" => o.genlib = Some(take("--genlib")?),
            "--seed" => {
                o.seed = Some(
                    take("--seed")?
                        .parse()
                        .map_err(|_| usage("--seed needs an integer"))?,
                )
            }
            "--bits" => o.bits = Some(take("--bits")?),
            "--verify" => {
                o.verify = match take("--verify")?.as_str() {
                    "none" => VerifyLevel::None,
                    "sim" => VerifyLevel::Simulation,
                    "sat" => VerifyLevel::Sat,
                    other => return Err(usage(format!("unknown verify level {other:?}"))),
                }
            }
            "--verify-budget" => {
                o.verify_budget = Some(
                    take("--verify-budget")?
                        .parse()
                        .map_err(|_| usage("--verify-budget needs a conflict count"))?,
                )
            }
            "--verify-timeout" => {
                let secs: f64 = take("--verify-timeout")?
                    .parse()
                    .map_err(|_| usage("--verify-timeout needs seconds"))?;
                if !secs.is_finite() || secs < 0.0 {
                    return Err(usage("--verify-timeout needs non-negative seconds"));
                }
                o.verify_timeout = Some(secs);
            }
            "--stats" => o.stats = true,
            "--delay-pct" => {
                o.delay_pct = Some(
                    take("--delay-pct")?
                        .parse()
                        .map_err(|_| usage("--delay-pct needs a number"))?,
                )
            }
            "--method" => o.method = take("--method")?,
            "--out-dir" => o.out_dir = Some(take("--out-dir")?),
            "--trace-out" => o.trace_out = Some(take("--trace-out")?),
            "--resume" => o.resume = true,
            "--max-jobs" => {
                let n: usize = take("--max-jobs")?
                    .parse()
                    .map_err(|_| usage("--max-jobs needs a positive integer"))?;
                if n == 0 {
                    return Err(usage("--max-jobs needs a positive integer"));
                }
                o.max_jobs = Some(n);
            }
            "--listen" => o.listen = Some(take("--listen")?),
            "--workers" => {
                let n: usize = take("--workers")?
                    .parse()
                    .map_err(|_| usage("--workers needs a positive integer"))?;
                if n == 0 {
                    return Err(usage("--workers needs a positive integer"));
                }
                o.workers = Some(n);
            }
            "--queue-depth" => {
                let n: usize = take("--queue-depth")?
                    .parse()
                    .map_err(|_| usage("--queue-depth needs a positive integer"))?;
                if n == 0 {
                    return Err(usage("--queue-depth needs a positive integer"));
                }
                o.queue_depth = Some(n);
            }
            "--cache-budget-mb" => {
                o.cache_budget_mb = Some(
                    take("--cache-budget-mb")?
                        .parse()
                        .map_err(|_| usage("--cache-budget-mb needs a size in MiB"))?,
                )
            }
            "--drain-secs" => {
                let secs: f64 = take("--drain-secs")?
                    .parse()
                    .map_err(|_| usage("--drain-secs needs seconds"))?;
                if !secs.is_finite() || secs < 0.0 {
                    return Err(usage("--drain-secs needs non-negative seconds"));
                }
                o.drain_secs = Some(secs);
            }
            "--root" => o.root = Some(take("--root")?),
            "--tenant" => o.tenant = Some(take("--tenant")?),
            "--deadline-ms" => {
                o.deadline_ms = Some(
                    take("--deadline-ms")?
                        .parse()
                        .map_err(|_| usage("--deadline-ms needs milliseconds"))?,
                )
            }
            "--policy" => o.policy = Some(take("--policy")?),
            "--threaded" => o.threaded = true,
            "--max-conns" => {
                let n: usize = take("--max-conns")?
                    .parse()
                    .map_err(|_| usage("--max-conns needs a positive integer"))?;
                if n == 0 {
                    return Err(usage("--max-conns needs a positive integer"));
                }
                o.max_conns = Some(n);
            }
            "--batch-window-ms" => {
                let ms: f64 = take("--batch-window-ms")?
                    .parse()
                    .map_err(|_| usage("--batch-window-ms needs milliseconds"))?;
                if !ms.is_finite() || ms < 0.0 {
                    return Err(usage("--batch-window-ms needs non-negative milliseconds"));
                }
                o.batch_window_ms = Some(ms);
            }
            "--batch-max" => {
                let n: usize = take("--batch-max")?
                    .parse()
                    .map_err(|_| usage("--batch-max needs a positive integer"))?;
                if n == 0 {
                    return Err(usage("--batch-max needs a positive integer"));
                }
                o.batch_max = Some(n);
            }
            "--stream-threshold" => {
                o.stream_threshold = Some(
                    take("--stream-threshold")?
                        .parse()
                        .map_err(|_| usage("--stream-threshold needs a byte count"))?,
                )
            }
            "--rps" => {
                let rps: f64 = take("--rps")?
                    .parse()
                    .map_err(|_| usage("--rps needs a rate"))?;
                if !rps.is_finite() || rps <= 0.0 {
                    return Err(usage("--rps needs a positive rate"));
                }
                o.rps = Some(rps);
            }
            "--duration-secs" => {
                let secs: f64 = take("--duration-secs")?
                    .parse()
                    .map_err(|_| usage("--duration-secs needs seconds"))?;
                if !secs.is_finite() || secs <= 0.0 {
                    return Err(usage("--duration-secs needs positive seconds"));
                }
                o.duration_secs = Some(secs);
            }
            "--conns" => {
                let n: usize = take("--conns")?
                    .parse()
                    .map_err(|_| usage("--conns needs a positive integer"))?;
                if n == 0 {
                    return Err(usage("--conns needs a positive integer"));
                }
                o.conns = Some(n);
            }
            "--mix" => o.mix = Some(take("--mix")?),
            "--manifest" => o.manifest = Some(take("--manifest")?),
            "--buyers" => {
                let n: usize = take("--buyers")?
                    .parse()
                    .map_err(|_| usage("--buyers needs a positive integer"))?;
                if n == 0 {
                    return Err(usage("--buyers needs a positive integer"));
                }
                o.buyers = Some(n);
            }
            "--copies" => {
                let n: usize = take("--copies")?
                    .parse()
                    .map_err(|_| usage("--copies needs a positive integer"))?;
                if n == 0 {
                    return Err(usage("--copies needs a positive integer"));
                }
                o.copies = Some(n);
            }
            "--coalitions" => o.coalitions = Some(take("--coalitions")?),
            "--resynth-levels" => o.resynth_levels = Some(take("--resynth-levels")?),
            "--power-words" => {
                let n: usize = take("--power-words")?
                    .parse()
                    .map_err(|_| usage("--power-words needs a positive integer"))?;
                if n == 0 {
                    return Err(usage("--power-words needs a positive integer"));
                }
                o.power_words = Some(n);
            }
            "--detect-threshold" => {
                let t: f64 = take("--detect-threshold")?
                    .parse()
                    .map_err(|_| usage("--detect-threshold needs a number"))?;
                if !t.is_finite() || t < 0.0 {
                    return Err(usage("--detect-threshold needs a non-negative number"));
                }
                o.detect_threshold = Some(t);
            }
            "--survival-out" => o.survival_out = Some(take("--survival-out")?),
            "--solver-profile" => o.solver_profile = Some(take("--solver-profile")?),
            "--portfolio" => {
                let n: usize = take("--portfolio")?
                    .parse()
                    .map_err(|_| usage("--portfolio needs a racer count"))?;
                o.portfolio = Some(n);
            }
            "--robust-locations" => o.robust_locations = Some(take("--robust-locations")?),
            "--threads" => {
                let n: usize = take("--threads")?
                    .parse()
                    .map_err(|_| usage("--threads needs a positive integer"))?;
                if n == 0 {
                    return Err(usage("--threads needs a positive integer"));
                }
                o.threads = Some(n);
            }
            flag if flag.starts_with('-') => {
                return Err(usage(format!("unknown flag {flag:?}")))
            }
            _ => o.positional.push(a.clone()),
        }
    }
    Ok(o)
}

fn load_library(o: &Options) -> Result<Arc<CellLibrary>, CliError> {
    match &o.genlib {
        None => Ok(CellLibrary::standard()),
        Some(path) => {
            let text = fs::read_to_string(path)
                .map_err(|e| fail(format!("cannot read {path}: {e}")))?;
            let report = genlib::parse_genlib(&text, path.clone())?;
            for (gate, reason) in &report.skipped {
                eprintln!("note: skipped genlib gate {gate}: {reason}");
            }
            Ok(report.library)
        }
    }
}

/// Loads a design: `.blif` files are parsed and technology-mapped, `.v`
/// files are parsed directly.
fn load_design(path: &str, library: Arc<CellLibrary>) -> Result<Netlist, CliError> {
    let text =
        fs::read_to_string(path).map_err(|e| fail(format!("cannot read {path}: {e}")))?;
    let ext = Path::new(path)
        .extension()
        .and_then(|e| e.to_str())
        .unwrap_or("");
    match ext {
        "blif" => {
            let network = odcfp_blif::parse_blif(&text)?;
            Ok(odcfp_synth::map_network(&network, library)?)
        }
        "v" | "verilog" => Ok(parse_verilog(&text, library)?),
        other => Err(fail(format!(
            "unknown input extension {other:?} (expected .blif or .v)"
        ))),
    }
}

fn write_output(
    o: &Options,
    text: &str,
    out: &mut impl std::io::Write,
) -> Result<(), CliError> {
    match &o.output {
        Some(path) => {
            fs::write(path, text).map_err(|e| fail(format!("cannot write {path}: {e}")))?;
            eprintln!("wrote {path}");
            Ok(())
        }
        None => {
            write!(out, "{text}")?;
            Ok(())
        }
    }
}

fn required_input<'a>(o: &'a Options, what: &str) -> Result<&'a str, CliError> {
    o.positional
        .first()
        .map(String::as_str)
        .ok_or_else(|| usage(format!("missing {what}")))
}

/// Runs one subcommand with its arguments; `out` receives report text.
///
/// Returns the process exit code for the outcome (`0` except for `verify`
/// verdicts and unverified embeddings — see the crate docs).
///
/// # Errors
///
/// Returns a formatted error for any user or I/O problem.
pub fn run(command: &str, args: &[String], out: &mut impl std::io::Write) -> Result<i32, CliError> {
    let o = parse_options(args)?;
    if o.threads.is_some() {
        odcfp_analysis::engine::set_thread_override(o.threads);
    }
    // Dropped at the end of this call: flushes and detaches the trace.
    let _trace_guard = install_trace(&o)?;
    let library = load_library(&o)?;
    match command {
        "stats" => {
            let design = load_design(required_input(&o, "input design")?, library)?;
            let metrics = DesignMetrics::measure(&design);
            writeln!(out, "{}", design.stats())?;
            writeln!(out, "{metrics}")?;
            let timing = odcfp_analysis::sta::analyze(&design)
                .map_err(|e| fail(e.to_string()))?;
            writeln!(out, "{}", timing.report(&design))?;
            Ok(0)
        }
        "map" => {
            let design = load_design(required_input(&o, "input design")?, library)?;
            write_output(&o, &write_verilog(&design), out)?;
            Ok(0)
        }
        "locations" => {
            let design = load_design(required_input(&o, "input design")?, library)?;
            let fp = Fingerprinter::new(design)?;
            writeln!(out, "{}", fp.capacity())?;
            for (loc, m) in fp.locations().iter().zip(fp.selected_modifications()) {
                writeln!(
                    out,
                    "primary {} ({} options) -> default {m:?}",
                    fp.base().gate(loc.primary_gate).name(),
                    loc.candidates.len()
                )?;
            }
            Ok(0)
        }
        "embed" => {
            let design = load_design(required_input(&o, "input design")?, library)?;
            let fp = Fingerprinter::new(design)?;
            let bits: Vec<bool> = match (&o.bits, o.seed) {
                (Some(s), _) => s
                    .chars()
                    .map(|c| match c {
                        '0' => Ok(false),
                        '1' => Ok(true),
                        other => Err(usage(format!("bad bit {other:?}"))),
                    })
                    .collect::<Result<_, _>>()?,
                (None, Some(seed)) => {
                    let mut rng = odcfp_logic::rng::Xoshiro256::seed_from_u64(seed);
                    (0..fp.locations().len()).map(|_| rng.next_bool()).collect()
                }
                (None, None) => return Err(usage("embed needs --bits or --seed")),
            };
            let mut code = 0;
            let copy = match o.verify.policy() {
                None => fp.embed_verified(&bits, VerifyLevel::None)?,
                Some(level_policy) => {
                    let (copy, verdict) =
                        fp.embed_with_policy(&bits, &o.verify_policy(level_policy)?)?;
                    if let Verdict::Undecided { .. } = verdict {
                        eprintln!("warning: equivalence {verdict}; output is unverified");
                        code = verdict_exit_code(&verdict);
                    }
                    copy
                }
            };
            writeln!(out, "embedded {} bits: {}", bits.len(), copy.bit_string())?;
            write_output(&o, &write_verilog(copy.netlist()), out)?;
            Ok(code)
        }
        "extract" => {
            if o.positional.len() != 2 {
                return Err(usage("extract needs <base> and <suspect>"));
            }
            let base = load_design(&o.positional[0], library.clone())?;
            let suspect = load_design(&o.positional[1], library)?;
            let fp = Fingerprinter::new(base)?;
            let bits = fp.extract_by_name(&suspect)?;
            let s: String = bits.iter().map(|&b| if b { '1' } else { '0' }).collect();
            writeln!(out, "{s}")?;
            Ok(0)
        }
        "verify" => {
            if o.positional.len() != 2 {
                return Err(usage("verify needs <golden> and <candidate>"));
            }
            let golden = load_design(&o.positional[0], library.clone())?;
            let candidate = load_design(&o.positional[1], library)?;
            let report = verify_equivalent_report(
                &golden,
                &candidate,
                &o.verify_policy(VerifyPolicy::strict())?,
            )?;
            writeln!(out, "{}", report.verdict)?;
            if o.stats {
                write_verify_stats(out, &report.stats)?;
            }
            Ok(verdict_exit_code(&report.verdict))
        }
        "solve" => run_solve(&o, out),
        "constrain" => {
            let design = load_design(required_input(&o, "input design")?, library)?;
            let pct = o
                .delay_pct
                .ok_or_else(|| usage("constrain needs --delay-pct"))?;
            let fp = Fingerprinter::new(design)?;
            let result = match (&o.robust_locations, o.method.as_str()) {
                // --robust-locations always uses the survival-aware
                // proactive method: the feedback rule is a location
                // ordering, which the reactive (removal) method has no
                // place for.
                (Some(path), _) => {
                    let text = fs::read_to_string(path)
                        .map_err(|e| fail(format!("cannot read {path}: {e}")))?;
                    let (_, stats) =
                        SurvivalStats::from_text(&text).map_err(|e| fail(format!("{path}: {e}")))?;
                    if stats.len() != fp.locations().len() {
                        return Err(fail(format!(
                            "{path}: survival file describes {} locations but the \
                             design has {} — re-run `odcfp attack --survival-out` \
                             on this design",
                            stats.len(),
                            fp.locations().len()
                        )));
                    }
                    proactive_robust_embedding(&fp, pct, &stats)?
                }
                (None, "reactive") => {
                    reactive_delay_reduction(&fp, pct, ReactiveOptions::default())?
                }
                (None, "proactive") => proactive_delay_embedding(&fp, pct)?,
                (None, other) => return Err(usage(format!("unknown method {other:?}"))),
            };
            writeln!(
                out,
                "kept {}/{} locations; overhead: {}",
                result.kept_locations(),
                fp.locations().len(),
                result.metrics.overhead_vs(&result.base_metrics)
            )?;
            write_output(&o, &write_verilog(result.copy.netlist()), out)?;
            Ok(0)
        }
        "report" => {
            let path = required_input(&o, "input design")?;
            // `.jsonl` inputs are observability traces, not designs:
            // summarize per-stage timing, counters, and campaign outcomes.
            if path.ends_with(".jsonl") {
                return report_trace(&o, path, out);
            }
            let design = load_design(path, library)?;
            let metrics = DesignMetrics::measure(&design);
            let timing = odcfp_analysis::sta::analyze(&design)
                .map_err(|e| fail(e.to_string()))?;
            let fp = Fingerprinter::new(design.clone())?;
            let cap = fp.capacity();
            let marked = fp.embed_all()?;
            let oh = DesignMetrics::measure(marked.netlist()).overhead_vs(&metrics);
            let mut text = String::new();
            use std::fmt::Write as _;
            let _ = writeln!(text, "# Design report: {}", design.name());
            let _ = writeln!(text, "\nSource: `{path}`\n");
            let _ = writeln!(text, "## Statistics\n\n```\n{}```\n", design.stats());
            let _ = writeln!(text, "## Metrics\n\n{metrics}\n");
            let _ = writeln!(text, "## Timing\n\n```\n{}```\n", timing.report(&design));
            let _ = writeln!(text, "## Fingerprint capacity\n\n{cap}\n");
            let _ = writeln!(
                text,
                "Full embedding overhead: {oh}\n\nEvery embedded copy is verified \
                 functionally equivalent (1024-pattern simulation; SAT on demand)."
            );
            write_output(&o, &text, out)?;
            Ok(0)
        }
        "optimize" => {
            let design = load_design(required_input(&o, "input design")?, library)?;
            let before = design.num_gates();
            let (opt, stats) = odcfp_synth::opt::optimize(&design);
            writeln!(
                out,
                "{before} -> {} gates (folded {}, pruned {} pins, swept {} dead)",
                opt.num_gates(),
                stats.gates_folded,
                stats.pins_pruned,
                stats.dead_gates_removed
            )?;
            write_output(&o, &write_verilog(&opt), out)?;
            Ok(0)
        }
        "dot" => {
            let design = load_design(required_input(&o, "input design")?, library)?;
            write_output(&o, &odcfp_netlist::dot::to_dot(&design, &[]), out)?;
            Ok(0)
        }
        "bench" => {
            let name = required_input(&o, "benchmark name")?;
            let design = odcfp_synth::benchmarks::generate(name, library)
                .ok_or_else(|| fail(format!("unknown benchmark {name:?}")))?;
            write_output(&o, &write_verilog(&design), out)?;
            Ok(0)
        }
        "attack" => run_attack(&o, library, out),
        "campaign" => run_campaign(&o, library, out),
        "serve" => remote::run_serve(&o, out),
        "client" => remote::run_client(&o, out),
        "loadgen" => remote::run_loadgen(&o, out),
        other => Err(usage(format!("unknown command {other:?}\n{USAGE}"))),
    }
}

/// The `attack` subcommand: run the adversary battery (resynthesis,
/// collusion averaging, side-channel detectability) against one design
/// or a manifest of designs, emitting a deterministic JSON scorecard
/// (see `odcfp_core::attack` and DESIGN.md §15).
fn run_attack(
    o: &Options,
    library: Arc<CellLibrary>,
    out: &mut impl std::io::Write,
) -> Result<i32, CliError> {
    let mut opts = AttackOptions::default();
    if let Some(seed) = o.seed {
        opts.seed = seed;
    }
    if let Some(buyers) = o.buyers {
        opts.buyers = buyers;
    }
    if let Some(copies) = o.copies {
        opts.minted_copies = copies;
    }
    if let Some(words) = o.power_words {
        opts.power_words = words;
    }
    if let Some(t) = o.detect_threshold {
        opts.detectability_threshold = t;
    }
    if let Some(list) = &o.coalitions {
        opts.coalition_sizes = list
            .split(',')
            .map(|s| {
                match s.trim().parse::<usize>() {
                    Ok(0) | Err(_) => Err(usage(format!("--coalitions: bad size {s:?}"))),
                    Ok(n) => Ok(n),
                }
            })
            .collect::<Result<_, _>>()?;
    }
    if let Some(list) = &o.resynth_levels {
        opts.resynth_levels = list
            .split(',')
            .map(|s| {
                odcfp_synth::ResynthLevel::parse(s.trim()).ok_or_else(|| {
                    usage(format!(
                        "--resynth-levels: unknown level {s:?} \
                         (expected opt|remap|remap2 or 1|2|3)"
                    ))
                })
            })
            .collect::<Result<_, _>>()?;
    }

    // Targets: every non-comment manifest line, or the one positional
    // input. A target naming a file is loaded from disk; anything else is
    // a built-in Table II benchmark.
    let targets: Vec<String> = match &o.manifest {
        Some(path) => {
            let text = fs::read_to_string(path)
                .map_err(|e| fail(format!("cannot read {path}: {e}")))?;
            let lines: Vec<String> = text
                .lines()
                .map(str::trim)
                .filter(|l| !l.is_empty() && !l.starts_with('#'))
                .map(String::from)
                .collect();
            if lines.is_empty() {
                return Err(usage(format!("{path}: manifest lists no targets")));
            }
            lines
        }
        None => vec![required_input(o, "input design (or --manifest)")?.to_string()],
    };
    if o.survival_out.is_some() && targets.len() != 1 {
        return Err(usage(
            "--survival-out needs exactly one target (it is per-circuit)",
        ));
    }

    let token = odcfp_core::CancelToken::new();
    let mut cards = Vec::with_capacity(targets.len());
    for target in &targets {
        let design = if Path::new(target).extension().is_some() {
            load_design(target, Arc::clone(&library))?
        } else {
            odcfp_synth::benchmarks::generate(target, Arc::clone(&library))
                .ok_or_else(|| fail(format!("unknown benchmark {target:?}")))?
        };
        let card = run_battery(&design, &opts, &token).map_err(|e| fail(e.to_string()))?;
        for r in &card.resynth {
            eprintln!(
                "{}: resynth {:7} survival {}/{} ({:.1}%), verdict {}",
                card.circuit,
                r.level.name(),
                r.wires_surviving,
                r.wires_identifiable,
                r.survival_rate * 100.0,
                r.outcome.name(),
            );
        }
        let convicted_cells = card
            .collusion
            .iter()
            .filter(|c| c.colluders_convicted > 0)
            .count();
        let framed: usize = card.collusion.iter().map(|c| c.innocents_accused).sum();
        eprintln!(
            "{}: collusion {}/{} cells convicted a colluder, {} innocents accused; \
             side-channel {}/{} copies detectable",
            card.circuit,
            convicted_cells,
            card.collusion.len(),
            framed,
            card.side_channel.detectable,
            card.side_channel.copies,
        );
        cards.push(card);
    }

    if let Some(path) = &o.survival_out {
        let text = cards[0].survival.to_text(&cards[0].circuit);
        fs::write(path, text).map_err(|e| fail(format!("cannot write {path}: {e}")))?;
        eprintln!("wrote {path}");
    }

    // One scorecard object for a single target, a JSON array for a
    // manifest — byte-identical across runs and thread counts.
    let json = if o.manifest.is_none() {
        cards[0].to_json()
    } else {
        let mut s = String::from("[\n");
        for (i, card) in cards.iter().enumerate() {
            s.push_str(&card.to_json());
            if i + 1 < cards.len() {
                s.pop(); // trailing newline
                s.push_str(",\n");
            }
        }
        s.push_str("]\n");
        s
    };
    write_output(o, &json, out)?;
    Ok(0)
}

/// The `campaign` subcommand: a journaled, crash-safe batch run (see
/// `odcfp_core::campaign` and DESIGN.md §10).
fn run_campaign(
    o: &Options,
    library: Arc<CellLibrary>,
    out: &mut impl std::io::Write,
) -> Result<i32, CliError> {
    let manifest_path = required_input(o, "campaign manifest")?;
    let out_dir = o
        .out_dir
        .as_deref()
        .ok_or_else(|| usage("campaign needs --out-dir <dir>"))?;
    let text = fs::read_to_string(manifest_path)
        .map_err(|e| fail(format!("cannot read {manifest_path}: {e}")))?;
    let manifest = Manifest::parse(&text).map_err(|e| fail(e.to_string()))?;

    // `path:` sources resolve relative to the manifest file, so a
    // manifest can live next to its designs and be invoked from anywhere.
    let manifest_dir = Path::new(manifest_path)
        .parent()
        .map(Path::to_path_buf)
        .unwrap_or_default();
    let load = move |c: &ManifestCircuit| -> Result<Netlist, String> {
        let CircuitSource::Path(p) = &c.source else {
            return Err("internal: loader called for a probe source".into());
        };
        let resolved = if Path::new(p).is_absolute() {
            PathBuf::from(p)
        } else {
            manifest_dir.join(p)
        };
        load_design(&resolved.to_string_lossy(), Arc::clone(&library)).map_err(|e| e.to_string())
    };
    let emit = |n: &Netlist| write_verilog(n);
    let env = CampaignEnv {
        load: &load,
        emit: &emit,
    };
    let options = CampaignOptions {
        resume: o.resume,
        stop_after: o.max_jobs,
    };
    let mut on_event = |e: &JobEvent| match e {
        JobEvent::Started { job, attempt } if *attempt > 1 => {
            eprintln!("job {job}: retry (attempt {attempt})");
        }
        JobEvent::Started { .. } => {}
        JobEvent::Completed { job, verdict, millis } => {
            eprintln!("job {job}: {verdict} ({millis} ms)");
        }
        JobEvent::Skipped { job } => eprintln!("job {job}: already complete (resumed)"),
        JobEvent::SkippedPoisoned { job } => {
            eprintln!("job {job}: quarantined by a previous run");
        }
        JobEvent::StaleArtifact { job } => {
            eprintln!("job {job}: artifact missing or corrupt — re-minting");
        }
        JobEvent::AttemptFailed { job, attempt, error } => {
            eprintln!("job {job}: attempt {attempt} failed: {error}");
        }
        JobEvent::Poisoned { job, diagnostic } => {
            eprintln!("job {job}: QUARANTINED: {diagnostic}");
        }
        // Large campaigns batch progress (one line per few hundred jobs)
        // instead of the per-job chatter above.
        JobEvent::Progress { done, total } => {
            eprintln!("progress: {done}/{total} jobs");
        }
        JobEvent::GoldenMinted { circuit, locations } => {
            eprintln!("circuit {circuit}: golden artifact minted ({locations} locations)");
        }
        JobEvent::CodeSpaceProven { circuit, conflicts, millis } => {
            eprintln!(
                "circuit {circuit}: code space proven in one solve \
                 ({conflicts} conflicts, {millis} ms) — all buyers proven"
            );
        }
        JobEvent::CodeSpaceFallback { circuit, reason } => {
            eprintln!(
                "circuit {circuit}: no code-space proof ({reason}) — \
                 verifying buyers individually"
            );
        }
        JobEvent::WindowCompleted { circuit, from, to } => {
            eprintln!("circuit {circuit}: buyers {from}..{to} durable");
        }
    };
    let summary = campaign::run(&manifest, Path::new(out_dir), &env, &options, &mut on_event)
        .map_err(|e| match e {
            // Journal/manifest misuse is a usage problem, not a crash.
            CampaignError::JournalExists(_) | CampaignError::ManifestMismatch { .. } => {
                usage(e.to_string())
            }
            e => fail(e.to_string()),
        })?;
    write!(out, "{summary}")?;
    Ok(if summary.poisoned.is_empty() { 0 } else { 6 })
}

/// Installs the JSONL trace sink `--trace-out` (or the lower-precedence
/// `ODCFP_TRACE` environment variable) asks for. The returned guard
/// flushes and detaches the sink on drop. A resumed campaign
/// (`--resume`) appends to an existing trace; every other invocation
/// truncates.
fn install_trace(o: &Options) -> Result<Option<odcfp_obs::SinkGuard>, CliError> {
    let path = o
        .trace_out
        .clone()
        .or_else(|| std::env::var("ODCFP_TRACE").ok().filter(|p| !p.is_empty()));
    let Some(path) = path else {
        return Ok(None);
    };
    let guard = odcfp_obs::install_jsonl(Path::new(&path), o.resume).map_err(fail)?;
    Ok(Some(guard))
}

/// The `report <trace.jsonl>` form: summarize an observability trace.
///
/// Degrades gracefully — an empty or entirely torn trace prints a
/// warning and exits `0` (a trace cut short by a kill is still a valid
/// object to inspect).
fn report_trace(
    o: &Options,
    path: &str,
    out: &mut impl std::io::Write,
) -> Result<i32, CliError> {
    let trace = odcfp_obs::read_trace(Path::new(path))
        .map_err(|e| fail(format!("cannot read {path}: {e}")))?;
    if trace.skipped_lines > 0 {
        // Same tolerance as the campaign journal: a trailing line torn
        // by a kill or a full disk is discarded, not fatal.
        eprintln!(
            "warning: {path}: skipped {} torn/unparseable line{}",
            trace.skipped_lines,
            if trace.skipped_lines == 1 { "" } else { "s" }
        );
    }
    if trace.events.is_empty() {
        eprintln!("warning: {path}: no parseable events");
    }
    write_output(o, &odcfp_obs::summarize(&trace), out)?;
    Ok(0)
}

/// The `solve` subcommand: decide one DIMACS CNF file with the configured
/// backend (`--solver-profile`), optionally as a portfolio race
/// (`--portfolio N`), bounded by `--verify-budget` conflicts and
/// `--verify-timeout` seconds.
///
/// This is a solver debug tool, so unlike the netlist commands it uses
/// the SAT-competition exit-code convention: `0` satisfiable, `1`
/// unsatisfiable, `2` undecided (budget or deadline exhausted).
fn run_solve(o: &Options, out: &mut impl std::io::Write) -> Result<i32, CliError> {
    let path = required_input(o, "input .dimacs file")?;
    let text =
        fs::read_to_string(path).map_err(|e| fail(format!("cannot read {path}: {e}")))?;
    let cnf = parse_dimacs(&text).map_err(|e| fail(format!("{path}: {e}")))?;
    let config = o.solver_config()?;
    let budget = o.verify_budget;
    let deadline = o
        .verify_timeout
        .map(|secs| Instant::now() + Duration::from_secs_f64(secs));
    let width = o.portfolio.unwrap_or(1);
    let (result, stats, race) = if width >= 2 {
        let opts = RaceOptions::new(width).with_base(config);
        let (result, report) = portfolio::race(&cnf, &[], &opts, budget, deadline, None);
        let stats = report
            .winner
            .map(|w| report.racers[w].stats)
            .unwrap_or_default();
        (result, stats, Some(report))
    } else {
        let mut backend = backend_from_cnf(&cnf, config);
        if let Some(b) = budget {
            backend.set_conflict_budget(b);
        }
        if let Some(d) = deadline {
            backend.set_deadline(d);
        }
        let result = backend.solve();
        let stats = backend.stats();
        (result, stats, None)
    };
    let code = match &result {
        SolveResult::Sat(model) => {
            writeln!(out, "s SATISFIABLE")?;
            let lits: Vec<String> = (0..cnf.num_vars())
                .map(|i| {
                    let v = i + 1;
                    if model.value(Var::from_index(i)) {
                        v.to_string()
                    } else {
                        format!("-{v}")
                    }
                })
                .collect();
            writeln!(out, "v {} 0", lits.join(" "))?;
            0
        }
        SolveResult::Unsat => {
            writeln!(out, "s UNSATISFIABLE")?;
            1
        }
        SolveResult::Unknown => {
            writeln!(out, "s UNKNOWN")?;
            2
        }
    };
    if o.stats {
        write_solver_line(out, &stats)?;
        if let Some(report) = &race {
            write_race_lines(out, report)?;
        }
    }
    Ok(code)
}

/// Prints the one-line solver block: classic counters plus the modern-CDCL
/// heuristics accounting (learnt-DB reductions, average LBD, rephasings,
/// chronological backtracks).
fn write_solver_line(
    out: &mut impl std::io::Write,
    s: &SolverStats,
) -> Result<(), CliError> {
    writeln!(
        out,
        "solver: conflicts={} decisions={} propagations={} restarts={} learnt={}",
        s.conflicts, s.decisions, s.propagations, s.restarts, s.learnt_clauses,
    )?;
    writeln!(
        out,
        "heuristics: avg-lbd={:.2} db-reductions={} learnt-deleted={} rephases={} \
         chrono-backtracks={}",
        s.avg_lbd(),
        s.db_reductions,
        s.learnt_deleted,
        s.rephases,
        s.chrono_backtracks,
    )?;
    Ok(())
}

/// Prints the portfolio-race block: the deterministic winner line plus one
/// line per racer (racer conflict counts are timing-dependent — see
/// `odcfp_sat::portfolio`).
fn write_race_lines(
    out: &mut impl std::io::Write,
    report: &RaceReport,
) -> Result<(), CliError> {
    match (report.winner, report.winner_backend) {
        (Some(idx), Some(backend)) => writeln!(
            out,
            "race: winner=#{idx} backend={backend} rounds={} conflicts={}",
            report.rounds, report.conflicts,
        )?,
        _ => writeln!(
            out,
            "race: no winner (rounds={} conflicts={}{})",
            report.rounds,
            report.conflicts,
            if report.cancelled { ", cancelled" } else { "" },
        )?,
    }
    for (idx, racer) in report.racers.iter().enumerate() {
        writeln!(
            out,
            "race[{idx}]: backend={} seed={:#x} outcome={} conflicts={} restarts={}",
            racer.backend, racer.seed, racer.outcome, racer.stats.conflicts, racer.stats.restarts,
        )?;
    }
    Ok(())
}

/// Prints the `--stats` effort-accounting block after a verify verdict.
fn write_verify_stats(
    out: &mut impl std::io::Write,
    stats: &VerifyStats,
) -> Result<(), CliError> {
    writeln!(
        out,
        "stats: path={} patterns={} strash-proven={} cut-points={} conflicts={} elapsed={:.2?}",
        if stats.used_fast_path { "fast" } else { "cold" },
        stats.patterns_simulated,
        stats.strash_proven_outputs,
        stats.cut_points_proven,
        stats.sat_conflicts,
        stats.elapsed,
    )?;
    if stats.used_fast_path {
        // The sweep layer's own accounting: structural merges and the
        // fate of every cut point (refutations are simulation
        // counterexamples at interior cut points).
        writeln!(
            out,
            "sweep: strash-proven={} cut-points proven={} refuted={} skipped={}",
            stats.strash_proven_outputs,
            stats.cut_points_proven,
            stats.cut_points_refuted,
            stats.cut_points_skipped,
        )?;
    }
    if let Some(s) = &stats.solver {
        // A fast-path proof that never reached SAT has an all-zero
        // solver block; say so instead of printing zeros that read as
        // "the solver ran and did nothing".
        if s.conflicts == 0 && s.decisions == 0 && s.propagations == 0 {
            writeln!(out, "solver: no SAT calls (proved structurally)")?;
        } else {
            write_solver_line(out, s)?;
        }
    }
    if let Some(report) = &stats.race {
        write_race_lines(out, report)?;
    }
    Ok(())
}

/// The usage banner.
pub const USAGE: &str = "\
usage: odcfp <command> [options]
commands:
  stats     <in.(blif|v)>                       design statistics and metrics
  map       <in.blif> [-o out.v]                technology mapping
  locations <in.(blif|v)>                       fingerprint locations + capacity
  embed     <in.(blif|v)> (--seed N | --bits S) [-o out.v] [--verify none|sim|sat]
  extract   <base.(blif|v)> <suspect.v>         recover a fingerprint
  verify    <golden.(blif|v)> <candidate.(blif|v)>   equivalence check
            [--verify-budget N] [--verify-timeout SECS] [--stats]
            [--solver-profile legacy|modern|glucose|phased|chrono]
            [--portfolio N] (race N configured backends when an attempt
             stalls; verdicts are identical at any width)
  solve     <in.dimacs>                         decide one DIMACS CNF (debug)
            [--solver-profile P] [--portfolio N] [--verify-budget N]
            [--verify-timeout SECS] [--stats]
            (SAT-competition exit codes: 0 sat, 1 unsat, 2 undecided)
  constrain <in.(blif|v)> --delay-pct P         delay-constrained embedding
            [--method reactive|proactive] [-o out.v]
            [--robust-locations <survival-file>] (survival-aware selection:
             skips proven-strippable wires, tries survivors first)
  attack    <in.(blif|v)> | --manifest <m>      adversary battery scorecard
            [--seed N] [--buyers N] [--copies N] [--coalitions 2,4,8]
            [--resynth-levels opt,remap,remap2] [--power-words N]
            [--detect-threshold X] [--survival-out <file>] [-o out.json]
            (resynthesis survival, n-way collusion averaging, side-channel
             detectability; deterministic at any --threads setting)
  report    <in.(blif|v)> [-o out.md]           full markdown design report
  optimize  <in.(blif|v)> [-o out.v]            constant folding + dead sweep
  dot       <in.(blif|v)> [-o out.dot]          Graphviz export
  bench     <name> [-o out.v]                   generate a Table II benchmark
  campaign  <manifest> --out-dir <dir>          journaled batch embed+verify
            [--resume] [--max-jobs N]           (crash-safe; resumable)
            (manifest `artifacts delta` + `window N` mint delta codebooks
             with one-shot batch verification; see docs/POPULATION.md)
  report    <trace.jsonl>                       summarize an observability trace
  serve     [--listen ADDR] [--workers N]       resident multi-tenant engine
            [--queue-depth N] [--cache-budget-mb N] [--drain-secs S] [--root DIR]
            [--threaded] [--max-conns N] [--batch-window-ms MS] [--batch-max N]
            [--stream-threshold BYTES]
            (event-driven multiplexing with streaming replies and batched
             verification; protocol spec in docs/PROTOCOL.md, operations
             guide in docs/SERVING.md)
  client    <addr> <op> [args]                  one request against a server
            ops: ping locations embed verify campaign report probe shutdown
            [--tenant NAME] [--deadline-ms N] [--policy quick|strict|budgeted:N]
            (verify accepts <golden> <candidate> or <golden> --bits S)
  loadgen   <addr>                              deterministic open-loop load
            [--rps R] [--duration-secs S] [--conns N] [--seed N]
            [--mix ping:W,locations:W,embed:W,verify:W] [-o hist.json]
options: --genlib <file> to use a custom cell library
         --threads N to pin the analysis worker count (default: all cores,
                     or ODCFP_THREADS; results are identical at any setting)
         --trace-out <path> records a structured JSONL trace of the run
                     (ODCFP_TRACE is the lower-precedence equivalent)
         --verify-budget / --verify-timeout bound SAT effort (embed, verify)
         --solver-profile picks the CDCL heuristics profile (verify, solve)
         --portfolio N races N backends on stalled obligations (verify, solve)
         --stats prints verification effort accounting (verify)
exit codes: 0 ok/proven, 1 error, 2 usage,
            3 refuted, 4 undecided, 5 probably-equivalent,
            6 campaign completed with quarantined jobs";

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp(name: &str, content: &str) -> String {
        let dir = std::env::temp_dir().join("odcfp-cli-tests");
        fs::create_dir_all(&dir).unwrap();
        let path = dir.join(name);
        fs::write(&path, content).unwrap();
        path.to_string_lossy().into_owned()
    }

    const BLIF: &str = "\
.model tiny
.inputs a b c d
.outputs f
.names a b x
11 1
.names c d y
1- 1
-1 1
.names x y f
11 1
.end
";

    fn run_ok(command: &str, args: &[String]) -> String {
        let mut out = Vec::new();
        run(command, args, &mut out).unwrap();
        String::from_utf8(out).unwrap()
    }

    #[test]
    fn stats_on_blif() {
        let input = tmp("s.blif", BLIF);
        let text = run_ok("stats", &[input]);
        assert!(text.contains("gates:"));
        assert!(text.contains("area"));
    }

    #[test]
    fn map_to_verilog_file() {
        let input = tmp("m.blif", BLIF);
        let output = tmp("m.v", "");
        run_ok("map", &[input, "-o".into(), output.clone()]);
        let v = fs::read_to_string(&output).unwrap();
        assert!(v.contains("module tiny"));
    }

    #[test]
    fn locations_listing() {
        let input = tmp("l.blif", BLIF);
        let text = run_ok("locations", &[input]);
        assert!(text.contains("locations"));
    }

    #[test]
    fn embed_extract_cycle() {
        let base_blif = tmp("e.blif", BLIF);
        let base_v = tmp("e_base.v", "");
        run_ok("map", &[base_blif.clone(), "-o".into(), base_v.clone()]);
        let marked_v = tmp("e_marked.v", "");
        let report = run_ok(
            "embed",
            &[
                base_v.clone(),
                "--seed".into(),
                "7".into(),
                "--verify".into(),
                "sat".into(),
                "-o".into(),
                marked_v.clone(),
            ],
        );
        assert!(report.contains("embedded"));
        let bits_line = run_ok("extract", &[base_v, marked_v]);
        let embedded = report
            .trim()
            .rsplit(' ')
            .next()
            .unwrap()
            .trim();
        assert_eq!(bits_line.trim(), embedded);
    }

    #[test]
    fn constrain_reports_and_writes() {
        let input = tmp("c.blif", BLIF);
        let output = tmp("c.v", "");
        let text = run_ok(
            "constrain",
            &[
                input,
                "--delay-pct".into(),
                "10".into(),
                "-o".into(),
                output.clone(),
            ],
        );
        assert!(text.contains("kept"));
        assert!(fs::read_to_string(&output).unwrap().contains("module"));
    }

    #[test]
    fn report_command() {
        let input = tmp("r.blif", BLIF);
        let text = run_ok("report", &[input]);
        assert!(text.contains("# Design report"));
        assert!(text.contains("## Timing"));
        assert!(text.contains("Fingerprint capacity"));
    }

    #[test]
    fn optimize_command() {
        let input = tmp(
            "o.blif",
            ".model o\n.inputs a\n.outputs y\n.names one\n1\n.names a one y\n11 1\n.end\n",
        );
        let text = run_ok("optimize", &[input]);
        assert!(text.contains("-> "), "{text}");
        assert!(text.contains("module o"));
    }

    #[test]
    fn bench_generation() {
        let output = tmp("b.v", "");
        run_ok("bench", &["c432".into(), "-o".into(), output.clone()]);
        assert!(fs::read_to_string(&output).unwrap().contains("module c432"));
    }

    #[test]
    fn dot_export() {
        let input = tmp("d.blif", BLIF);
        let text = run_ok("dot", &[input]);
        assert!(text.starts_with("digraph"));
    }

    #[test]
    fn errors_are_friendly() {
        let e = run("embed", &["nope.v".into()], &mut Vec::new()).unwrap_err();
        assert!(e.0.contains("cannot read"));
        assert_eq!(e.exit_code(), 1);
        let e2 = run("frobnicate", &[], &mut Vec::new()).unwrap_err();
        assert!(e2.0.contains("unknown command"));
        assert_eq!(e2.exit_code(), 2);
        let input = tmp("err.blif", BLIF);
        let e3 = run("embed", &[input], &mut Vec::new()).unwrap_err();
        assert!(e3.0.contains("--bits or --seed"));
        assert_eq!(e3.exit_code(), 2);
    }

    /// The malformed-input corpus: every entry must produce a formatted
    /// [`CliError`] with the right exit code — no panics, no unwraps.
    #[test]
    fn malformed_input_corpus_yields_clean_errors() {
        let truncated = tmp("trunc.blif", &BLIF[..BLIF.len() / 2]);
        let bad_genlib = tmp("bad.genlib", "GATE\nnot a genlib at all\n");
        let bad_ext = tmp("design.vhdl", "entity e is end;");
        let good = tmp("corpus.blif", BLIF);
        let corpus: Vec<(&str, Vec<String>, i32)> = vec![
            // Runtime errors (exit 1): broken files and inputs.
            ("stats", vec![truncated.clone()], 1),
            ("stats", vec!["/nonexistent/x.blif".into()], 1),
            ("stats", vec![good.clone(), "--genlib".into(), bad_genlib], 1),
            ("stats", vec![bad_ext], 1),
            // A --bits string whose length disagrees with the location
            // count must be a typed error, not an index panic.
            ("embed", vec![good.clone(), "--bits".into(), "0".repeat(64)], 1),
            // Usage errors (exit 2): bad flags and arguments.
            ("embed", vec![good.clone(), "--bits".into(), "01x".into()], 2),
            ("embed", vec![good.clone(), "--seed".into(), "NaN".into()], 2),
            ("embed", vec![good.clone(), "--verify".into(), "psychic".into()], 2),
            ("verify", vec![good.clone()], 2),
            ("verify", vec![good.clone(), good.clone(), "--verify-budget".into(), "-3".into()], 2),
            ("verify", vec![good.clone(), good.clone(), "--verify-timeout".into(), "-1".into()], 2),
            ("extract", vec![good.clone()], 2),
            ("stats", vec![good.clone(), "--frob".into()], 2),
            ("stats", vec![good.clone(), "--threads".into(), "0".into()], 2),
            ("stats", vec![good.clone(), "--threads".into(), "many".into()], 2),
            ("stats", vec![good, "--genlib".into()], 2),
        ];
        for (command, args, want_code) in corpus {
            let e = run(command, &args, &mut Vec::new())
                .expect_err(&format!("{command} {args:?} must fail"));
            assert!(!e.0.is_empty(), "{command} {args:?}: empty message");
            assert_eq!(e.exit_code(), want_code, "{command} {args:?}: {}", e.0);
        }
    }

    #[test]
    fn attack_scorecard_covers_all_adversaries_and_is_thread_invariant() {
        let input = tmp("atk.blif", BLIF);
        let args = |threads: &str| {
            vec![
                input.clone(),
                "--buyers".into(),
                "8".into(),
                "--copies".into(),
                "2".into(),
                "--coalitions".into(),
                "2,4".into(),
                "--resynth-levels".into(),
                "opt,remap".into(),
                "--power-words".into(),
                "16".into(),
                "--threads".into(),
                threads.into(),
            ]
        };
        let sequential = run_ok("attack", &args("1"));
        let parallel = run_ok("attack", &args("4"));
        odcfp_analysis::engine::set_thread_override(None);
        assert_eq!(sequential, parallel, "scorecard must be thread-invariant");
        for key in ["\"resynth\"", "\"collusion\"", "\"side_channel\"", "\"survival\""] {
            assert!(sequential.contains(key), "missing {key}:\n{sequential}");
        }
        assert!(sequential.contains("\"level\": \"remap\""), "{sequential}");
        assert!(sequential.contains("\"strategy\": \"random\""), "{sequential}");
    }

    #[test]
    fn attack_manifest_emits_scorecard_array() {
        let design = tmp("atk_m.blif", BLIF);
        let manifest = tmp("atk.manifest", &format!("# targets\n{design}\n{design}\n"));
        let text = run_ok(
            "attack",
            &[
                "--manifest".into(),
                manifest,
                "--buyers".into(),
                "4".into(),
                "--copies".into(),
                "1".into(),
                "--coalitions".into(),
                "2".into(),
                "--resynth-levels".into(),
                "opt".into(),
                "--power-words".into(),
                "8".into(),
            ],
        );
        assert!(text.trim_start().starts_with('['), "{text}");
        assert!(text.trim_end().ends_with(']'), "{text}");
        assert_eq!(text.matches("\"circuit\"").count(), 2, "{text}");
    }

    #[test]
    fn attack_survival_feeds_robust_constrain() {
        let input = tmp("atk_s.blif", BLIF);
        let survival = tmp("atk_s.survival", "");
        run_ok(
            "attack",
            &[
                input.clone(),
                "--buyers".into(),
                "4".into(),
                "--resynth-levels".into(),
                "opt".into(),
                "--power-words".into(),
                "8".into(),
                "--survival-out".into(),
                survival.clone(),
            ],
        );
        let written = fs::read_to_string(&survival).unwrap();
        assert!(written.contains("# odcfp survival v1"), "{written}");
        let text = run_ok(
            "constrain",
            &[
                input,
                "--delay-pct".into(),
                "10".into(),
                "--robust-locations".into(),
                survival,
            ],
        );
        assert!(text.contains("kept"), "{text}");
    }

    #[test]
    fn attack_trace_feeds_report_summary() {
        let input = tmp("atk_t.blif", BLIF);
        let trace = std::env::temp_dir()
            .join("odcfp-cli-tests")
            .join("atk.trace.jsonl");
        let _ = fs::remove_file(&trace);
        let trace_arg = trace.to_string_lossy().into_owned();
        run_ok(
            "attack",
            &[
                input,
                "--buyers".into(),
                "4".into(),
                "--coalitions".into(),
                "2".into(),
                "--resynth-levels".into(),
                "opt".into(),
                "--power-words".into(),
                "8".into(),
                "--trace-out".into(),
                trace_arg.clone(),
            ],
        );
        let report = run_ok("report", &[trace_arg]);
        assert!(report.contains("attack resynthesis survival"), "{report}");
        assert!(report.contains("attack collusion verdicts"), "{report}");
        assert!(report.contains("attack side-channel:"), "{report}");
        assert!(report.contains("attack.battery"), "span listed:\n{report}");
    }

    #[test]
    fn attack_rejects_bad_flags() {
        let input = tmp("atk_e.blif", BLIF);
        for (args, code) in [
            (vec![input.clone(), "--resynth-levels".into(), "psychic".into()], 2),
            (vec![input.clone(), "--coalitions".into(), "2,x".into()], 2),
            (vec![input.clone(), "--coalitions".into(), "0".into()], 2),
            (vec![input.clone(), "--buyers".into(), "0".into()], 2),
            (vec!["no_such_benchmark".into()], 1),
            (
                vec![input, "--manifest".into(), "/nonexistent/m.txt".into()],
                1,
            ),
        ] {
            let e = run("attack", &args, &mut Vec::new())
                .expect_err(&format!("attack {args:?} must fail"));
            assert_eq!(e.exit_code(), code, "attack {args:?}: {}", e.0);
        }
    }

    #[test]
    fn threads_flag_does_not_change_results() {
        let input = tmp("t.blif", BLIF);
        let sequential = run_ok("locations", &[input.clone(), "--threads".into(), "1".into()]);
        let parallel = run_ok("locations", &[input, "--threads".into(), "4".into()]);
        odcfp_analysis::engine::set_thread_override(None);
        assert_eq!(sequential, parallel);
        assert!(sequential.contains("locations"));
    }

    #[test]
    fn verify_subcommand_reports_verdicts() {
        let golden = tmp("ver_a.blif", BLIF);
        // Same function, different association of the AND tree.
        let same = tmp(
            "ver_b.blif",
            "\
.model tiny2
.inputs a b c d
.outputs f
.names c d y
1- 1
-1 1
.names a y t
11 1
.names t b f
11 1
.end
",
        );
        // Differs on exactly one row (x y = 10 also asserts f).
        let different = tmp(
            "ver_c.blif",
            "\
.model tiny3
.inputs a b c d
.outputs f
.names a b x
11 1
.names c d y
1- 1
-1 1
.names x y f
11 1
10 1
.end
",
        );
        let mut out = Vec::new();
        let code = run("verify", &[golden.clone(), same], &mut out).unwrap();
        assert_eq!(code, 0, "{}", String::from_utf8_lossy(&out));
        assert!(String::from_utf8_lossy(&out).contains("proven equivalent"));

        let mut out = Vec::new();
        let code = run("verify", &[golden, different], &mut out).unwrap();
        assert_eq!(code, 3, "{}", String::from_utf8_lossy(&out));
        assert!(String::from_utf8_lossy(&out).contains("refuted"));
    }

    #[test]
    fn verify_stats_flag_prints_effort_accounting() {
        let golden = tmp("vstats_a.blif", BLIF);
        let copy = tmp("vstats_b.blif", BLIF);
        let mut out = Vec::new();
        let code = run(
            "verify",
            &[golden.clone(), copy.clone(), "--stats".into()],
            &mut out,
        )
        .unwrap();
        let text = String::from_utf8_lossy(&out);
        assert_eq!(code, 0, "{text}");
        assert!(text.contains("proven equivalent"), "{text}");
        assert!(text.contains("stats: path="), "{text}");
        assert!(text.contains("patterns="), "{text}");
        // Without the flag, the accounting block is absent.
        let mut out = Vec::new();
        run("verify", &[golden, copy], &mut out).unwrap();
        let text = String::from_utf8_lossy(&out);
        assert!(!text.contains("stats:"), "{text}");
    }

    #[test]
    fn verify_stats_fast_path_reports_sweep_not_zero_solver() {
        // c432 (36 inputs) cannot be settled by exhaustive simulation, so
        // verifying it against itself exercises the sweep fast path: the
        // strash proves every output with zero SAT conflicts — exactly
        // the case that used to print an all-zero solver block.
        let design = tmp("fp_c432.v", "");
        run_ok("bench", &["c432".into(), "-o".into(), design.clone()]);
        let mut out = Vec::new();
        let code = run(
            "verify",
            &[design.clone(), design, "--stats".into()],
            &mut out,
        )
        .unwrap();
        let text = String::from_utf8_lossy(&out);
        assert_eq!(code, 0, "{text}");
        assert!(text.contains("path=fast"), "{text}");
        assert!(text.contains("sweep: strash-proven="), "{text}");
        assert!(
            !text.contains("conflicts=0 decisions=0"),
            "all-zero solver block must be suppressed:\n{text}"
        );
    }

    /// An unsatisfiable xor-chain miter in DIMACS: the forward and
    /// reversed association of an XOR chain over `width` inputs, with the
    /// difference bit asserted. Refuting it needs genuine CDCL search.
    fn xor_miter_dimacs(width: i32) -> String {
        let mut clauses: Vec<String> = Vec::new();
        let mut next = width + 1;
        let mut xor2 = |a: i32, b: i32, clauses: &mut Vec<String>| {
            let t = next;
            next += 1;
            clauses.push(format!("{} {} {} 0", -t, a, b));
            clauses.push(format!("{} {} {} 0", -t, -a, -b));
            clauses.push(format!("{} {} {} 0", t, -a, b));
            clauses.push(format!("{} {} {} 0", t, a, -b));
            t
        };
        let mut acc = 1;
        for i in 2..=width {
            acc = xor2(acc, i, &mut clauses);
        }
        let mut rev = width;
        for i in (1..width).rev() {
            rev = xor2(rev, i, &mut clauses);
        }
        let diff = xor2(acc, rev, &mut clauses);
        clauses.push(format!("{diff} 0"));
        format!("p cnf {} {}\n{}\n", next - 1, clauses.len(), clauses.join("\n"))
    }

    #[test]
    fn solve_subcommand_uses_sat_competition_exit_codes() {
        let sat = tmp("solve_sat.dimacs", "p cnf 2 2\n1 -2 0\n2 0\n");
        let unsat = tmp("solve_unsat.dimacs", "p cnf 1 2\n1 0\n-1 0\n");
        let mut out = Vec::new();
        assert_eq!(run("solve", &[sat], &mut out).unwrap(), 0);
        let text = String::from_utf8_lossy(&out);
        assert!(text.contains("s SATISFIABLE"), "{text}");
        assert!(text.contains("v 1 2 0"), "model line:\n{text}");

        let mut out = Vec::new();
        assert_eq!(run("solve", std::slice::from_ref(&unsat), &mut out).unwrap(), 1);
        assert!(String::from_utf8_lossy(&out).contains("s UNSATISFIABLE"));

        // A zero-conflict budget cannot refute a miter that needs search.
        let hard = tmp("solve_hard.dimacs", &xor_miter_dimacs(16));
        let mut out = Vec::new();
        let code = run(
            "solve",
            &[hard, "--verify-budget".into(), "0".into()],
            &mut out,
        )
        .unwrap();
        assert_eq!(code, 2, "{}", String::from_utf8_lossy(&out));
        assert!(String::from_utf8_lossy(&out).contains("s UNKNOWN"));

        // Unknown profiles are usage errors.
        let e = run(
            "solve",
            &[unsat, "--solver-profile".into(), "psychic".into()],
            &mut Vec::new(),
        )
        .expect_err("unknown profile must fail");
        assert_eq!(e.exit_code(), 2, "{}", e.0);
    }

    #[test]
    fn solve_portfolio_agrees_with_single_backend_and_prints_race_stats() {
        let path = tmp("solve_race.dimacs", &xor_miter_dimacs(8));
        let mut out = Vec::new();
        assert_eq!(run("solve", std::slice::from_ref(&path), &mut out).unwrap(), 1);
        let mut out = Vec::new();
        let code = run(
            "solve",
            &[
                path,
                "--portfolio".into(),
                "3".into(),
                "--stats".into(),
            ],
            &mut out,
        )
        .unwrap();
        let text = String::from_utf8_lossy(&out);
        assert_eq!(code, 1, "{text}");
        assert!(text.contains("s UNSATISFIABLE"), "{text}");
        assert!(text.contains("race: winner=#"), "{text}");
        assert!(text.contains("race[2]: backend="), "three racers:\n{text}");
        assert!(text.contains("heuristics: avg-lbd="), "{text}");
    }

    #[test]
    fn verify_solver_profile_and_portfolio_flags_are_accepted() {
        let golden = tmp("vprof_a.blif", BLIF);
        let copy = tmp("vprof_b.blif", BLIF);
        for profile in ["legacy", "modern", "glucose", "phased", "chrono"] {
            let mut out = Vec::new();
            let code = run(
                "verify",
                &[
                    golden.clone(),
                    copy.clone(),
                    "--solver-profile".into(),
                    profile.into(),
                    "--portfolio".into(),
                    "2".into(),
                ],
                &mut out,
            )
            .unwrap();
            assert_eq!(code, 0, "{profile}: {}", String::from_utf8_lossy(&out));
        }
        let e = run(
            "verify",
            &[golden, copy, "--solver-profile".into(), "warp".into()],
            &mut Vec::new(),
        )
        .expect_err("unknown profile must fail");
        assert_eq!(e.exit_code(), 2, "{}", e.0);
    }

    #[test]
    fn trace_out_records_and_report_summarizes() {
        let input = tmp("tr.blif", BLIF);
        let trace = std::env::temp_dir()
            .join("odcfp-cli-tests")
            .join("tr.trace.jsonl");
        let _ = fs::remove_file(&trace);
        let trace_arg = trace.to_string_lossy().into_owned();
        run_ok("locations", &[input, "--trace-out".into(), trace_arg.clone()]);
        let text = fs::read_to_string(&trace).unwrap();
        assert!(
            text.lines().any(|l| l.contains("\"core.locate\"")),
            "trace records the locate span:\n{text}"
        );
        let report = run_ok("report", &[trace_arg]);
        assert!(report.contains("spans (by self time)"), "{report}");
        assert!(report.contains("core.locate"), "{report}");
    }

    #[test]
    fn report_on_empty_or_torn_trace_exits_zero() {
        let empty = tmp("empty.trace.jsonl", "");
        let mut out = Vec::new();
        assert_eq!(run("report", &[empty], &mut out).unwrap(), 0);
        assert!(String::from_utf8_lossy(&out).contains("warning: no events"));
        let torn = tmp("torn.trace.jsonl", "{\"seq\":0,\"t_us\":1,\"ki");
        let mut out = Vec::new();
        assert_eq!(run("report", &[torn], &mut out).unwrap(), 0);
        assert!(String::from_utf8_lossy(&out).contains("1 unparseable line"));
    }

    #[test]
    fn verdict_exit_codes_are_distinct_and_documented() {
        use std::time::Duration;
        let verdicts = [
            (Verdict::Proven, 0),
            (Verdict::Refuted { counterexample: vec![true] }, 3),
            (
                Verdict::Undecided {
                    conflicts_spent: 1,
                    elapsed: Duration::from_millis(1),
                },
                4,
            ),
            (Verdict::ProbablyEquivalent { patterns: 1024 }, 5),
        ];
        for (verdict, want) in verdicts {
            assert_eq!(verdict_exit_code(&verdict), want, "{verdict}");
        }
    }

    #[test]
    fn custom_genlib_flows_through() {
        let lib = tmp(
            "mini.genlib",
            "\
GATE INV  928  Y=!A;    PIN * INV 1 999 0.9 0.12 0.9 0.12
GATE NAND2 1392 Y=!(A*B); PIN * INV 1 999 1.0 0.12 1.0 0.12
GATE NAND3 1856 Y=!(A*B*C); PIN * INV 1 999 1.1 0.12 1.1 0.12
GATE AND2 1856 Y=A*B;   PIN * NONINV 2 999 1.8 0.12 1.8 0.12
GATE AND3 2320 Y=A*B*C; PIN * NONINV 2 999 1.9 0.12 1.9 0.12
GATE OR2  1856 Y=A+B;   PIN * NONINV 2 999 2.0 0.12 2.0 0.12
GATE OR3  2320 Y=A+B+C; PIN * NONINV 2 999 2.2 0.12 2.2 0.12
GATE NOR2 1392 Y=!(A+B); PIN * INV 1 999 1.3 0.12 1.3 0.12
",
        );
        let input = tmp("g.blif", BLIF);
        let text = run_ok("stats", &[input, "--genlib".into(), lib]);
        assert!(text.contains("gates:"));
    }
}
