//! The `odcfp` binary entry point.

use std::io::Write as _;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some((command, rest)) = args.split_first() else {
        eprintln!("{}", odcfp_cli::USAGE);
        std::process::exit(2);
    };
    let mut stdout = std::io::stdout();
    match odcfp_cli::run(command, rest, &mut stdout) {
        Ok(code) => std::process::exit(code),
        Err(e) => {
            // A closed stdout (`odcfp ... | head`) is a clean exit, and
            // stderr may be gone too — never panic while reporting.
            if !e.is_broken_pipe() {
                let _ = writeln!(std::io::stderr(), "error: {e}");
            }
            std::process::exit(e.exit_code());
        }
    }
}
