//! The `odcfp` binary entry point.

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some((command, rest)) = args.split_first() else {
        eprintln!("{}", odcfp_cli::USAGE);
        std::process::exit(2);
    };
    let mut stdout = std::io::stdout();
    match odcfp_cli::run(command, rest, &mut stdout) {
        Ok(code) => std::process::exit(code),
        Err(e) => {
            eprintln!("error: {e}");
            std::process::exit(e.exit_code());
        }
    }
}
