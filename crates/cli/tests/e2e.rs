//! True end-to-end tests: spawn the compiled `odcfp` binary as a child
//! process and drive it through files, exactly as a user would.

use std::fs;
use std::path::PathBuf;
use std::process::{Command, Output};

fn workdir() -> PathBuf {
    let dir = std::env::temp_dir().join("odcfp-e2e");
    fs::create_dir_all(&dir).expect("temp dir");
    dir
}

fn odcfp(args: &[&str]) -> Output {
    Command::new(env!("CARGO_BIN_EXE_odcfp"))
        .args(args)
        .output()
        .expect("binary runs")
}

fn stdout_of(out: &Output) -> String {
    assert!(
        out.status.success(),
        "odcfp failed: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    String::from_utf8_lossy(&out.stdout).into_owned()
}

const BLIF: &str = "\
.model e2e
.inputs a b c d
.outputs f g
.names a b x
11 1
.names c d y
1- 1
-1 1
.names x y f
11 1
.names x c g
10 1
.end
";

#[test]
fn no_arguments_prints_usage_and_exits_nonzero() {
    let out = odcfp(&[]);
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("usage: odcfp"));
}

#[test]
fn unknown_command_fails_cleanly() {
    let out = odcfp(&["transmogrify"]);
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("unknown command"));
}

#[test]
fn full_designer_flow_through_files() {
    let dir = workdir();
    let blif = dir.join("e2e.blif");
    fs::write(&blif, BLIF).unwrap();
    let blif = blif.to_str().unwrap();
    let base_v = dir.join("e2e_base.v");
    let base_v = base_v.to_str().unwrap();
    let marked_v = dir.join("e2e_marked.v");
    let marked_v = marked_v.to_str().unwrap();

    // map: BLIF -> Verilog.
    stdout_of(&odcfp(&["map", blif, "-o", base_v]));
    let v = fs::read_to_string(base_v).unwrap();
    assert!(v.contains("module e2e"));

    // stats + locations on the mapped design.
    let stats = stdout_of(&odcfp(&["stats", base_v]));
    assert!(stats.contains("gates:"));
    assert!(stats.contains("circuit delay"));
    let locs = stdout_of(&odcfp(&["locations", base_v]));
    assert!(locs.contains("locations"));

    // embed with SAT verification, then extract and compare.
    let embed_report = stdout_of(&odcfp(&[
        "embed", base_v, "--seed", "5", "--verify", "sat", "-o", marked_v,
    ]));
    let embedded_bits = embed_report
        .trim()
        .rsplit(' ')
        .next()
        .expect("bits at end of report")
        .to_owned();
    let extracted = stdout_of(&odcfp(&["extract", base_v, marked_v]));
    assert_eq!(extracted.trim(), embedded_bits);

    // report renders markdown.
    let report = stdout_of(&odcfp(&["report", base_v]));
    assert!(report.contains("# Design report"));

    // constrain respects the budget and writes a netlist.
    let constrained_v = dir.join("e2e_con.v");
    let constrained_v = constrained_v.to_str().unwrap();
    let con = stdout_of(&odcfp(&[
        "constrain", base_v, "--delay-pct", "10", "-o", constrained_v,
    ]));
    assert!(con.contains("kept"));
    assert!(fs::read_to_string(constrained_v).unwrap().contains("module"));

    // optimize is a no-op on a constant-free design but must succeed.
    let opt = stdout_of(&odcfp(&["optimize", base_v]));
    assert!(opt.contains("-> "));
}

#[test]
fn benchmark_generation_and_dot() {
    let dir = workdir();
    let v = dir.join("c432_e2e.v");
    let v = v.to_str().unwrap();
    stdout_of(&odcfp(&["bench", "c432", "-o", v]));
    assert!(fs::read_to_string(v).unwrap().contains("module c432"));
    let dot = stdout_of(&odcfp(&["dot", v]));
    assert!(dot.starts_with("digraph"));
}

#[test]
fn missing_file_reports_error() {
    let out = odcfp(&["stats", "/nonexistent/x.v"]);
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("cannot read"));
}

/// Asserts a clean failure: the requested exit code, a formatted `error:`
/// message, and no panic / backtrace leaking to the user.
fn assert_clean_failure(args: &[&str], want_code: i32) {
    let out = odcfp(args);
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert_eq!(out.status.code(), Some(want_code), "{args:?}: {stderr}");
    assert!(stderr.contains("error:") || stderr.contains("usage:"), "{args:?}: {stderr}");
    assert!(!stderr.contains("panicked"), "{args:?} panicked: {stderr}");
    assert!(!stderr.contains("RUST_BACKTRACE"), "{args:?}: {stderr}");
}

#[test]
fn malformed_input_corpus_fails_cleanly() {
    let dir = workdir();
    let truncated = dir.join("corpus_trunc.blif");
    fs::write(&truncated, &BLIF[..BLIF.len() / 2]).unwrap();
    let truncated = truncated.to_str().unwrap();
    let bad_genlib = dir.join("corpus_bad.genlib");
    fs::write(&bad_genlib, "GATE\nnot a genlib\n").unwrap();
    let bad_genlib = bad_genlib.to_str().unwrap();
    let good = dir.join("corpus_good.blif");
    fs::write(&good, BLIF).unwrap();
    let good = good.to_str().unwrap();

    assert_clean_failure(&["stats", truncated], 1);
    assert_clean_failure(&["stats", "/nonexistent/x.blif"], 1);
    assert_clean_failure(&["stats", good, "--genlib", bad_genlib], 1);
    assert_clean_failure(&["embed", good, "--bits", "0101"], 1); // length mismatch
    assert_clean_failure(&["embed", good, "--bits", "01x"], 2);
    assert_clean_failure(&["embed", good], 2);
    assert_clean_failure(&["verify", good], 2);
    assert_clean_failure(&["verify", good, good, "--verify-timeout", "oops"], 2);
    assert_clean_failure(&["transmogrify"], 2);
}

/// The adversarial fixture corpus, driven through the binary: every
/// entry must exit 1 with a formatted `error:` line — the API-level twin
/// lives in `tests/malformed_corpus.rs`.
#[test]
fn adversarial_fixture_corpus_fails_cleanly_via_cli() {
    const GOOD_V: &str =
        "module m (a, y);\ninput a;\noutput y;\nINV u1 (.A(a), .Y(y));\nendmodule\n";
    let fixtures: Vec<(&str, String)> = vec![
        (
            "cut.blif", // truncated mid-cube
            ".model t\n.inputs a b\n.outputs y\n.names a b y\n11".into(),
        ),
        (
            "cycle.blif", // combinational cycle through x/y
            ".model c\n.inputs a\n.outputs y\n.names a x y\n11 1\n.names y x\n1 1\n.end\n".into(),
        ),
        (
            "dupmodel.blif",
            ".model m\n.inputs a\n.outputs y\n.names a y\n1 1\n.end\n\
             .model m\n.inputs b\n.outputs z\n.names b z\n1 1\n.end\n"
                .into(),
        ),
        (
            "nul.blif", // NUL byte inside a cover row
            ".model n\n.inputs a\n.outputs y\n.names a y\n1\u{0} 1\n.end\n".into(),
        ),
        (
            "latch.blif",
            ".model l\n.inputs a\n.outputs y\n.latch a y re clk 0\n.end\n".into(),
        ),
        (
            "undriven.blif",
            ".model u\n.inputs a\n.outputs y z\n.names a y\n1 1\n.end\n".into(),
        ),
        (
            "longline.blif", // multi-megabyte single line (100 MB twin in the API corpus)
            format!(
                ".model big\n.inputs a\n.outputs y\n.names a y\n{} 1\n.end\n",
                "1".repeat(4 * 1024 * 1024)
            ),
        ),
        (
            "comment.v", // unterminated block comment
            "module m (a, y); input a; output y; /* oops".into(),
        ),
        (
            "twomods.v", // concatenated modules must not half-parse
            format!("{GOOD_V}module m2 (b, z);\ninput b;\noutput z;\nINV u2 (.A(b), .Y(z));\nendmodule\n"),
        ),
        (
            "cutinst.v", // truncated mid-instance
            "module m (a, y); input a; output y; INV u1 (.A(a), .Y".into(),
        ),
        (
            "twodrivers.v",
            "module m (a, y); input a; output y; INV u1 (.A(a), .Y(y)); \
             INV u2 (.A(a), .Y(y)); endmodule"
                .into(),
        ),
    ];
    let dir = workdir().join("adversarial");
    fs::create_dir_all(&dir).expect("corpus dir");
    for (name, src) in fixtures {
        let path = dir.join(name);
        fs::write(&path, src).expect("fixture write");
        assert_clean_failure(&["stats", path.to_str().expect("utf8")], 1);
    }
}

#[test]
fn verify_exit_codes_by_verdict() {
    let dir = workdir();
    let golden = dir.join("verdict_a.blif");
    fs::write(&golden, BLIF).unwrap();
    let golden = golden.to_str().unwrap();
    // g gains an extra cover row: differs whenever x=0, c=1.
    let different = dir.join("verdict_b.blif");
    fs::write(&different, BLIF.replace(".names x c g\n10 1\n", ".names x c g\n10 1\n01 1\n"))
        .unwrap();
    let different = different.to_str().unwrap();

    // Equivalent (identical sources): proven, exit 0.
    let out = odcfp(&["verify", golden, golden]);
    assert_eq!(out.status.code(), Some(0));
    assert!(String::from_utf8_lossy(&out.stdout).contains("proven equivalent"));

    // Function changed: refuted, exit 3, concrete counterexample shown.
    let out = odcfp(&["verify", golden, different]);
    assert_eq!(out.status.code(), Some(3));
    assert!(String::from_utf8_lossy(&out.stdout).contains("refuted"));

    // A design too wide for exhaustive proof plus an expired deadline:
    // the ladder degrades to undecided, exit 4 — never a false claim.
    let big = dir.join("verdict_c432.v");
    let big = big.to_str().unwrap();
    stdout_of(&odcfp(&["bench", "c432", "-o", big]));
    let out = odcfp(&["verify", big, big, "--verify-timeout", "0"]);
    assert_eq!(
        out.status.code(),
        Some(4),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    assert!(String::from_utf8_lossy(&out.stdout).contains("undecided"));
}

#[test]
fn broken_stdout_pipe_exits_cleanly() {
    use std::io::Read;
    use std::process::Stdio;
    // c6288 renders to ~230 KB — far past the OS pipe buffer, so the
    // child's stdout writes hit EPIPE once we close our end early.
    let mut child = Command::new(env!("CARGO_BIN_EXE_odcfp"))
        .args(["bench", "c6288"])
        .stdout(Stdio::piped())
        .stderr(Stdio::piped())
        .spawn()
        .expect("spawn");
    let mut head = [0u8; 512];
    child
        .stdout
        .take()
        .expect("stdout piped")
        .read_exact(&mut head)
        .expect("read a prefix");
    // Dropping the handle above closed the read end; the child must wind
    // down like `odcfp ... | head`: exit 0, no error, no panic.
    let out = child.wait_with_output().expect("wait");
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert_eq!(out.status.code(), Some(0), "{stderr}");
    assert!(!stderr.contains("panicked"), "{stderr}");
    assert!(!stderr.contains("error:"), "{stderr}");
}

/// Writes the standard campaign fixture into `dir`: a mapped design plus
/// a manifest, returning the manifest path.
fn campaign_fixture(dir: &std::path::Path, manifest: &str) -> String {
    fs::create_dir_all(dir).expect("fixture dir");
    let blif = dir.join("design.blif");
    fs::write(&blif, BLIF).expect("blif");
    let base_v = dir.join("design.v");
    stdout_of(&odcfp(&["map", blif.to_str().expect("utf8"), "-o", base_v.to_str().expect("utf8")]));
    let path = dir.join("campaign.manifest");
    fs::write(&path, manifest).expect("manifest");
    path.to_str().expect("utf8").to_owned()
}

#[test]
fn campaign_end_to_end_with_resume_and_quarantine() {
    let dir = workdir().join("campaign-e2e");
    let _ = fs::remove_dir_all(&dir);
    let manifest = campaign_fixture(
        &dir,
        "circuit good path:design.v\ncircuit bomb probe:panic\nbuyers 2\nseed 9\nretries 0\n",
    );
    let out_dir = dir.join("out");
    let out_dir = out_dir.to_str().expect("utf8");

    // A campaign with a poisoned circuit completes its healthy jobs and
    // exits with the dedicated code 6.
    let out = odcfp(&["campaign", &manifest, "--out-dir", out_dir]);
    let stderr = String::from_utf8_lossy(&out.stderr);
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert_eq!(out.status.code(), Some(6), "{stderr}");
    assert!(stdout.contains("4 jobs"), "{stdout}");
    assert!(stdout.contains("2 completed"), "{stdout}");
    assert!(stdout.contains("poisoned bomb#0"), "{stdout}");
    assert!(stderr.contains("QUARANTINED"), "{stderr}");
    for buyer in 0..2 {
        assert!(dir.join(format!("out/artifacts/good_b{buyer}.v")).exists());
    }

    // Re-running without --resume must refuse to clobber the journal.
    let out = odcfp(&["campaign", &manifest, "--out-dir", out_dir]);
    assert_eq!(out.status.code(), Some(2), "{}", String::from_utf8_lossy(&out.stderr));
    assert!(String::from_utf8_lossy(&out.stderr).contains("--resume"));

    // Resume skips completed jobs and keeps the quarantine.
    let out = odcfp(&["campaign", &manifest, "--out-dir", out_dir, "--resume"]);
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert_eq!(out.status.code(), Some(6), "{stderr}");
    assert!(stderr.contains("already complete (resumed)"), "{stderr}");
    assert!(stderr.contains("quarantined by a previous run"), "{stderr}");
}

/// Traces from the kill-and-resume drill land here (not in the temp
/// dir) so CI can upload them as artifacts.
fn trace_dir() -> PathBuf {
    let dir = PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../../target/e2e-traces");
    fs::create_dir_all(&dir).expect("trace dir");
    dir
}

/// The replay-stable projection of a trace: `campaign.job.outcome` and
/// `campaign.summary` payload lines, in emission order. A resumed leg
/// re-emits journalled outcomes for the jobs it skips, so this stream
/// must equal an uninterrupted run's byte for byte.
fn replay_stable_payload(path: &std::path::Path) -> Vec<String> {
    let trace = odcfp_obs::read_trace(path).expect("trace readable");
    trace
        .events
        .iter()
        .filter(|e| {
            e.det && matches!(e.name.as_str(), "campaign.job.outcome" | "campaign.summary")
        })
        .map(odcfp_obs::Event::payload_line)
        .collect()
}

/// The crash-safety drill: SIGKILL a campaign mid-run, resume it, and
/// require the final state to be bit-identical to an uninterrupted run —
/// with the jobs finished before the kill *not* re-executed.
#[test]
fn campaign_kill_and_resume_matches_uninterrupted_run() {
    use std::io::{BufRead, BufReader};
    use std::process::Stdio;

    // The spin probe (800 ms deadline) sits mid-list so the kill lands
    // while a job is provably in-flight; fast jobs bracket it.
    const MANIFEST: &str = "\
circuit early path:design.v
circuit slow probe:spin
circuit late path:design.v
buyers 2
seed 1234
deadline-ms 800
retries 0
";
    let dir = workdir().join("campaign-kill");
    let _ = fs::remove_dir_all(&dir);
    let manifest = campaign_fixture(&dir, MANIFEST);

    // Reference: the same campaign, uninterrupted, traced.
    let traces = trace_dir();
    let ref_trace = traces.join("campaign-ref.trace.jsonl");
    let ref_out = dir.join("ref");
    let ref_run = odcfp(&[
        "campaign",
        &manifest,
        "--out-dir",
        ref_out.to_str().expect("utf8"),
        "--trace-out",
        ref_trace.to_str().expect("utf8"),
    ]);
    assert_eq!(ref_run.status.code(), Some(6)); // spin jobs quarantine

    // Victim: kill once the first job has completed (the spin probe is
    // then running or about to). Its trace may end mid-line — reading
    // it back must tolerate the tear.
    let victim_trace = traces.join("campaign-killed.trace.jsonl");
    let victim_out = dir.join("victim");
    let mut child = Command::new(env!("CARGO_BIN_EXE_odcfp"))
        .args([
            "campaign",
            &manifest,
            "--out-dir",
            victim_out.to_str().expect("utf8"),
            "--trace-out",
            victim_trace.to_str().expect("utf8"),
        ])
        .stdout(Stdio::null())
        .stderr(Stdio::piped())
        .spawn()
        .expect("spawn victim");
    let mut lines = BufReader::new(child.stderr.take().expect("stderr piped")).lines();
    let first = loop {
        let line = lines.next().expect("stderr open").expect("stderr line");
        if line.contains(" ms)") {
            break line;
        }
    };
    assert!(first.contains("job early#0"), "unexpected first completion: {first}");
    std::thread::sleep(std::time::Duration::from_millis(150));
    child.kill().expect("SIGKILL");
    let _ = child.wait();

    // Resume (with its own trace) and require convergence with the
    // reference run.
    let resume_trace = traces.join("campaign-resumed.trace.jsonl");
    let _ = fs::remove_file(&resume_trace);
    let resumed = odcfp(&[
        "campaign",
        &manifest,
        "--out-dir",
        victim_out.to_str().expect("utf8"),
        "--resume",
        "--trace-out",
        resume_trace.to_str().expect("utf8"),
    ]);
    let stderr = String::from_utf8_lossy(&resumed.stderr);
    assert_eq!(resumed.status.code(), Some(6), "{stderr}");
    assert!(
        stderr.contains("already complete (resumed)"),
        "pre-kill jobs must not re-execute: {stderr}"
    );

    // Same summary (same totals, verdicts, quarantine set)...
    assert_eq!(
        String::from_utf8_lossy(&resumed.stdout)
            .lines()
            .filter(|l| !l.contains("poisoned slow#")) // diagnostics embed timings
            .map(|l| l.split(" (").next().expect("prefix").to_owned())
            .collect::<Vec<_>>(),
        String::from_utf8_lossy(&ref_run.stdout)
            .lines()
            .filter(|l| !l.contains("poisoned slow#"))
            .map(|l| l.split(" (").next().expect("prefix").to_owned())
            .collect::<Vec<_>>(),
    );
    // ...and bit-identical artifacts.
    for name in ["early_b0.v", "early_b1.v", "late_b0.v", "late_b1.v"] {
        assert_eq!(
            fs::read(ref_out.join("artifacts").join(name)).expect("ref artifact"),
            fs::read(victim_out.join("artifacts").join(name)).expect("resumed artifact"),
            "{name}"
        );
    }

    // The killed leg's trace reads back (tolerating a torn tail) and
    // records at least the campaign start.
    let killed = odcfp_obs::read_trace(&victim_trace).expect("killed trace readable");
    assert!(
        killed.events.iter().any(|e| e.name == "campaign.start"),
        "killed trace records the start"
    );

    // Replay stability: the resumed leg's outcome/summary payload equals
    // the uninterrupted run's exactly (timestamps excluded by design).
    let reference = replay_stable_payload(&ref_trace);
    assert!(
        reference.iter().any(|l| l.contains("campaign.job.outcome")),
        "reference trace has outcomes:\n{}",
        reference.join("\n")
    );
    assert_eq!(
        replay_stable_payload(&resume_trace),
        reference,
        "resumed trace must replay the uninterrupted outcome stream"
    );
}

/// Population-scale crash drill for delta artifact mode: SIGKILL a
/// 20 000-buyer codebook campaign between durable windows, resume it,
/// and require the final codebook, golden artifact, and summary to be
/// bit-identical to an uninterrupted run's. This is the satellite
/// regression for the window journal (`bstart`/`bdone` + codebook
/// truncate-to-offset): pre-kill windows must not re-execute, the torn
/// window must re-mint deterministically, and nothing downstream can
/// tell the difference.
#[test]
fn campaign_delta_kill_and_resume_at_scale() {
    use std::io::{BufRead, BufReader};
    use std::process::Stdio;

    const MANIFEST: &str = "\
circuit pop path:design.v
buyers 20000
seed 77
retries 0
verify strict
artifacts delta
window 128
";
    let dir = workdir().join("campaign-delta-kill");
    let _ = fs::remove_dir_all(&dir);
    let manifest = campaign_fixture(&dir, MANIFEST);

    // Reference: uninterrupted.
    let ref_out = dir.join("ref");
    let ref_run = odcfp(&["campaign", &manifest, "--out-dir", ref_out.to_str().expect("utf8")]);
    let ref_stderr = String::from_utf8_lossy(&ref_run.stderr);
    assert_eq!(ref_run.status.code(), Some(0), "{ref_stderr}");
    assert!(
        ref_stderr.contains("code space proven in one solve"),
        "delta campaign must batch-verify: {ref_stderr}"
    );
    let codebook = "codebook.pop.jsonl";
    let golden = "artifacts/pop.golden.v";
    assert!(ref_out.join(codebook).exists());
    assert!(ref_out.join(golden).exists());
    // One codebook, no per-buyer artifact files.
    assert!(!ref_out.join("artifacts/pop_b0.v").exists());

    // Victim: kill after the first durable window (well before the last
    // of the ~39 windows on a single-threaded runner).
    let victim_out = dir.join("victim");
    let mut child = Command::new(env!("CARGO_BIN_EXE_odcfp"))
        .args(["campaign", &manifest, "--out-dir", victim_out.to_str().expect("utf8")])
        .stdout(Stdio::null())
        .stderr(Stdio::piped())
        .spawn()
        .expect("spawn victim");
    let mut lines = BufReader::new(child.stderr.take().expect("stderr piped")).lines();
    loop {
        let line = lines.next().expect("stderr open").expect("stderr line");
        if line.contains("durable") {
            break;
        }
    }
    child.kill().expect("SIGKILL");
    let _ = child.wait();

    // The kill must land mid-campaign: with ~155 windows of runway
    // after the first durable line, the victim's codebook is still
    // short of the reference when the SIGKILL arrives.
    let torn_len = fs::metadata(victim_out.join("codebook.pop.jsonl"))
        .expect("victim codebook")
        .len();
    let ref_len = fs::metadata(ref_out.join(codebook)).expect("ref codebook").len();
    assert!(
        torn_len < ref_len,
        "SIGKILL landed after completion ({torn_len} >= {ref_len} bytes); \
         shrink the window size to restore the drill"
    );

    // Resume and require convergence.
    let resumed = odcfp(&[
        "campaign",
        &manifest,
        "--out-dir",
        victim_out.to_str().expect("utf8"),
        "--resume",
    ]);
    let stderr = String::from_utf8_lossy(&resumed.stderr);
    assert_eq!(resumed.status.code(), Some(0), "{stderr}");
    assert_eq!(
        String::from_utf8_lossy(&resumed.stdout)
            .lines()
            .map(|l| l.split(" (").next().expect("prefix").to_owned())
            .collect::<Vec<_>>(),
        String::from_utf8_lossy(&ref_run.stdout)
            .lines()
            .map(|l| l.split(" (").next().expect("prefix").to_owned())
            .collect::<Vec<_>>(),
        "resumed summary must match the uninterrupted run"
    );
    for name in [codebook, golden] {
        assert_eq!(
            fs::read(ref_out.join(name)).expect("ref file"),
            fs::read(victim_out.join(name)).expect("resumed file"),
            "{name} must be bit-identical after kill + resume"
        );
    }
}

#[test]
fn embed_respects_verify_budget_flags() {
    let dir = workdir();
    let blif = dir.join("budget.blif");
    fs::write(&blif, BLIF).unwrap();
    let blif = blif.to_str().unwrap();
    // A generous budget verifies fine (small design: exhaustive proof).
    let out = odcfp(&[
        "embed", blif, "--seed", "3", "--verify", "sat", "--verify-budget", "100000",
    ]);
    assert_eq!(out.status.code(), Some(0), "{}", String::from_utf8_lossy(&out.stderr));
    assert!(String::from_utf8_lossy(&out.stdout).contains("embedded"));
}
