//! True end-to-end tests: spawn the compiled `odcfp` binary as a child
//! process and drive it through files, exactly as a user would.

use std::fs;
use std::path::PathBuf;
use std::process::{Command, Output};

fn workdir() -> PathBuf {
    let dir = std::env::temp_dir().join("odcfp-e2e");
    fs::create_dir_all(&dir).expect("temp dir");
    dir
}

fn odcfp(args: &[&str]) -> Output {
    Command::new(env!("CARGO_BIN_EXE_odcfp"))
        .args(args)
        .output()
        .expect("binary runs")
}

fn stdout_of(out: &Output) -> String {
    assert!(
        out.status.success(),
        "odcfp failed: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    String::from_utf8_lossy(&out.stdout).into_owned()
}

const BLIF: &str = "\
.model e2e
.inputs a b c d
.outputs f g
.names a b x
11 1
.names c d y
1- 1
-1 1
.names x y f
11 1
.names x c g
10 1
.end
";

#[test]
fn no_arguments_prints_usage_and_exits_nonzero() {
    let out = odcfp(&[]);
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("usage: odcfp"));
}

#[test]
fn unknown_command_fails_cleanly() {
    let out = odcfp(&["transmogrify"]);
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("unknown command"));
}

#[test]
fn full_designer_flow_through_files() {
    let dir = workdir();
    let blif = dir.join("e2e.blif");
    fs::write(&blif, BLIF).unwrap();
    let blif = blif.to_str().unwrap();
    let base_v = dir.join("e2e_base.v");
    let base_v = base_v.to_str().unwrap();
    let marked_v = dir.join("e2e_marked.v");
    let marked_v = marked_v.to_str().unwrap();

    // map: BLIF -> Verilog.
    stdout_of(&odcfp(&["map", blif, "-o", base_v]));
    let v = fs::read_to_string(base_v).unwrap();
    assert!(v.contains("module e2e"));

    // stats + locations on the mapped design.
    let stats = stdout_of(&odcfp(&["stats", base_v]));
    assert!(stats.contains("gates:"));
    assert!(stats.contains("circuit delay"));
    let locs = stdout_of(&odcfp(&["locations", base_v]));
    assert!(locs.contains("locations"));

    // embed with SAT verification, then extract and compare.
    let embed_report = stdout_of(&odcfp(&[
        "embed", base_v, "--seed", "5", "--verify", "sat", "-o", marked_v,
    ]));
    let embedded_bits = embed_report
        .trim()
        .rsplit(' ')
        .next()
        .expect("bits at end of report")
        .to_owned();
    let extracted = stdout_of(&odcfp(&["extract", base_v, marked_v]));
    assert_eq!(extracted.trim(), embedded_bits);

    // report renders markdown.
    let report = stdout_of(&odcfp(&["report", base_v]));
    assert!(report.contains("# Design report"));

    // constrain respects the budget and writes a netlist.
    let constrained_v = dir.join("e2e_con.v");
    let constrained_v = constrained_v.to_str().unwrap();
    let con = stdout_of(&odcfp(&[
        "constrain", base_v, "--delay-pct", "10", "-o", constrained_v,
    ]));
    assert!(con.contains("kept"));
    assert!(fs::read_to_string(constrained_v).unwrap().contains("module"));

    // optimize is a no-op on a constant-free design but must succeed.
    let opt = stdout_of(&odcfp(&["optimize", base_v]));
    assert!(opt.contains("-> "));
}

#[test]
fn benchmark_generation_and_dot() {
    let dir = workdir();
    let v = dir.join("c432_e2e.v");
    let v = v.to_str().unwrap();
    stdout_of(&odcfp(&["bench", "c432", "-o", v]));
    assert!(fs::read_to_string(v).unwrap().contains("module c432"));
    let dot = stdout_of(&odcfp(&["dot", v]));
    assert!(dot.starts_with("digraph"));
}

#[test]
fn missing_file_reports_error() {
    let out = odcfp(&["stats", "/nonexistent/x.v"]);
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("cannot read"));
}

/// Asserts a clean failure: the requested exit code, a formatted `error:`
/// message, and no panic / backtrace leaking to the user.
fn assert_clean_failure(args: &[&str], want_code: i32) {
    let out = odcfp(args);
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert_eq!(out.status.code(), Some(want_code), "{args:?}: {stderr}");
    assert!(stderr.contains("error:") || stderr.contains("usage:"), "{args:?}: {stderr}");
    assert!(!stderr.contains("panicked"), "{args:?} panicked: {stderr}");
    assert!(!stderr.contains("RUST_BACKTRACE"), "{args:?}: {stderr}");
}

#[test]
fn malformed_input_corpus_fails_cleanly() {
    let dir = workdir();
    let truncated = dir.join("corpus_trunc.blif");
    fs::write(&truncated, &BLIF[..BLIF.len() / 2]).unwrap();
    let truncated = truncated.to_str().unwrap();
    let bad_genlib = dir.join("corpus_bad.genlib");
    fs::write(&bad_genlib, "GATE\nnot a genlib\n").unwrap();
    let bad_genlib = bad_genlib.to_str().unwrap();
    let good = dir.join("corpus_good.blif");
    fs::write(&good, BLIF).unwrap();
    let good = good.to_str().unwrap();

    assert_clean_failure(&["stats", truncated], 1);
    assert_clean_failure(&["stats", "/nonexistent/x.blif"], 1);
    assert_clean_failure(&["stats", good, "--genlib", bad_genlib], 1);
    assert_clean_failure(&["embed", good, "--bits", "0101"], 1); // length mismatch
    assert_clean_failure(&["embed", good, "--bits", "01x"], 2);
    assert_clean_failure(&["embed", good], 2);
    assert_clean_failure(&["verify", good], 2);
    assert_clean_failure(&["verify", good, good, "--verify-timeout", "oops"], 2);
    assert_clean_failure(&["transmogrify"], 2);
}

#[test]
fn verify_exit_codes_by_verdict() {
    let dir = workdir();
    let golden = dir.join("verdict_a.blif");
    fs::write(&golden, BLIF).unwrap();
    let golden = golden.to_str().unwrap();
    // g gains an extra cover row: differs whenever x=0, c=1.
    let different = dir.join("verdict_b.blif");
    fs::write(&different, BLIF.replace(".names x c g\n10 1\n", ".names x c g\n10 1\n01 1\n"))
        .unwrap();
    let different = different.to_str().unwrap();

    // Equivalent (identical sources): proven, exit 0.
    let out = odcfp(&["verify", golden, golden]);
    assert_eq!(out.status.code(), Some(0));
    assert!(String::from_utf8_lossy(&out.stdout).contains("proven equivalent"));

    // Function changed: refuted, exit 3, concrete counterexample shown.
    let out = odcfp(&["verify", golden, different]);
    assert_eq!(out.status.code(), Some(3));
    assert!(String::from_utf8_lossy(&out.stdout).contains("refuted"));

    // A design too wide for exhaustive proof plus an expired deadline:
    // the ladder degrades to undecided, exit 4 — never a false claim.
    let big = dir.join("verdict_c432.v");
    let big = big.to_str().unwrap();
    stdout_of(&odcfp(&["bench", "c432", "-o", big]));
    let out = odcfp(&["verify", big, big, "--verify-timeout", "0"]);
    assert_eq!(
        out.status.code(),
        Some(4),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    assert!(String::from_utf8_lossy(&out.stdout).contains("undecided"));
}

#[test]
fn embed_respects_verify_budget_flags() {
    let dir = workdir();
    let blif = dir.join("budget.blif");
    fs::write(&blif, BLIF).unwrap();
    let blif = blif.to_str().unwrap();
    // A generous budget verifies fine (small design: exhaustive proof).
    let out = odcfp(&[
        "embed", blif, "--seed", "3", "--verify", "sat", "--verify-budget", "100000",
    ]);
    assert_eq!(out.status.code(), Some(0), "{}", String::from_utf8_lossy(&out.stderr));
    assert!(String::from_utf8_lossy(&out.stdout).contains("embedded"));
}
