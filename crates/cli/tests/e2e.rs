//! True end-to-end tests: spawn the compiled `odcfp` binary as a child
//! process and drive it through files, exactly as a user would.

use std::fs;
use std::path::PathBuf;
use std::process::{Command, Output};

fn workdir() -> PathBuf {
    let dir = std::env::temp_dir().join("odcfp-e2e");
    fs::create_dir_all(&dir).expect("temp dir");
    dir
}

fn odcfp(args: &[&str]) -> Output {
    Command::new(env!("CARGO_BIN_EXE_odcfp"))
        .args(args)
        .output()
        .expect("binary runs")
}

fn stdout_of(out: &Output) -> String {
    assert!(
        out.status.success(),
        "odcfp failed: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    String::from_utf8_lossy(&out.stdout).into_owned()
}

const BLIF: &str = "\
.model e2e
.inputs a b c d
.outputs f g
.names a b x
11 1
.names c d y
1- 1
-1 1
.names x y f
11 1
.names x c g
10 1
.end
";

#[test]
fn no_arguments_prints_usage_and_exits_nonzero() {
    let out = odcfp(&[]);
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("usage: odcfp"));
}

#[test]
fn unknown_command_fails_cleanly() {
    let out = odcfp(&["transmogrify"]);
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("unknown command"));
}

#[test]
fn full_designer_flow_through_files() {
    let dir = workdir();
    let blif = dir.join("e2e.blif");
    fs::write(&blif, BLIF).unwrap();
    let blif = blif.to_str().unwrap();
    let base_v = dir.join("e2e_base.v");
    let base_v = base_v.to_str().unwrap();
    let marked_v = dir.join("e2e_marked.v");
    let marked_v = marked_v.to_str().unwrap();

    // map: BLIF -> Verilog.
    stdout_of(&odcfp(&["map", blif, "-o", base_v]));
    let v = fs::read_to_string(base_v).unwrap();
    assert!(v.contains("module e2e"));

    // stats + locations on the mapped design.
    let stats = stdout_of(&odcfp(&["stats", base_v]));
    assert!(stats.contains("gates:"));
    assert!(stats.contains("circuit delay"));
    let locs = stdout_of(&odcfp(&["locations", base_v]));
    assert!(locs.contains("locations"));

    // embed with SAT verification, then extract and compare.
    let embed_report = stdout_of(&odcfp(&[
        "embed", base_v, "--seed", "5", "--verify", "sat", "-o", marked_v,
    ]));
    let embedded_bits = embed_report
        .trim()
        .rsplit(' ')
        .next()
        .expect("bits at end of report")
        .to_owned();
    let extracted = stdout_of(&odcfp(&["extract", base_v, marked_v]));
    assert_eq!(extracted.trim(), embedded_bits);

    // report renders markdown.
    let report = stdout_of(&odcfp(&["report", base_v]));
    assert!(report.contains("# Design report"));

    // constrain respects the budget and writes a netlist.
    let constrained_v = dir.join("e2e_con.v");
    let constrained_v = constrained_v.to_str().unwrap();
    let con = stdout_of(&odcfp(&[
        "constrain", base_v, "--delay-pct", "10", "-o", constrained_v,
    ]));
    assert!(con.contains("kept"));
    assert!(fs::read_to_string(constrained_v).unwrap().contains("module"));

    // optimize is a no-op on a constant-free design but must succeed.
    let opt = stdout_of(&odcfp(&["optimize", base_v]));
    assert!(opt.contains("-> "));
}

#[test]
fn benchmark_generation_and_dot() {
    let dir = workdir();
    let v = dir.join("c432_e2e.v");
    let v = v.to_str().unwrap();
    stdout_of(&odcfp(&["bench", "c432", "-o", v]));
    assert!(fs::read_to_string(v).unwrap().contains("module c432"));
    let dot = stdout_of(&odcfp(&["dot", v]));
    assert!(dot.starts_with("digraph"));
}

#[test]
fn missing_file_reports_error() {
    let out = odcfp(&["stats", "/nonexistent/x.v"]);
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("cannot read"));
}
