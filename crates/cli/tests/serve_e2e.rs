//! End-to-end acceptance drill for `odcfp serve`: spawn the compiled
//! binary as a resident server and attack it the way a hostile day
//! would — mixed tenants, a panic probe, a deadline miss, overload,
//! SIGTERM mid-flight, SIGKILL mid-campaign — while demanding that
//! every well-formed answer stays bit-identical to the batch CLI.
//!
//! Signals are delivered with `/bin/kill`, so the whole file is
//! Unix-only (matching the CI runners).

#![cfg(unix)]

use std::fs;
use std::io::{BufRead, BufReader, Read as _};
use std::path::{Path, PathBuf};
use std::process::{Child, ChildStdout, Command, Output, Stdio};
use std::time::{Duration, Instant};

const BLIF: &str = "\
.model e2e
.inputs a b c d
.outputs f g
.names a b x
11 1
.names c d y
1- 1
-1 1
.names x y f
11 1
.names x c g
10 1
.end
";

fn odcfp(args: &[&str]) -> Output {
    Command::new(env!("CARGO_BIN_EXE_odcfp"))
        .args(args)
        .output()
        .expect("binary runs")
}

fn stdout_of(out: &Output) -> String {
    assert!(
        out.status.success(),
        "odcfp failed: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    String::from_utf8_lossy(&out.stdout).into_owned()
}

/// A fresh, empty working directory for one test.
fn workdir(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join("odcfp-serve-e2e").join(name);
    let _ = fs::remove_dir_all(&dir);
    fs::create_dir_all(&dir).expect("workdir");
    dir
}

/// Serve traces land under `target/` (not the temp dir) so CI can
/// upload them as artifacts after a chaos run.
fn trace_dir() -> PathBuf {
    let dir = PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../../target/serve-traces");
    fs::create_dir_all(&dir).expect("trace dir");
    dir
}

/// A spawned `odcfp serve` child plus its parsed listen address.
struct Serve {
    child: Child,
    addr: String,
    stdout: BufReader<ChildStdout>,
}

impl Serve {
    /// Spawns `odcfp serve --listen 127.0.0.1:0 --root <root> <extra>`
    /// and blocks until the parseable banner line announces the port.
    fn start(root: &Path, extra: &[&str]) -> Serve {
        let mut child = Command::new(env!("CARGO_BIN_EXE_odcfp"))
            .args(["serve", "--listen", "127.0.0.1:0", "--root"])
            .arg(root)
            .args(extra)
            .stdout(Stdio::piped())
            .stderr(Stdio::inherit())
            .spawn()
            .expect("spawn serve");
        let mut stdout = BufReader::new(child.stdout.take().expect("stdout piped"));
        let mut banner = String::new();
        stdout.read_line(&mut banner).expect("banner line");
        let addr = banner
            .trim()
            .strip_prefix("odcfp serve listening on ")
            .unwrap_or_else(|| panic!("unexpected banner: {banner:?}"))
            .to_owned();
        Serve { child, addr, stdout }
    }

    /// One synchronous `odcfp client` invocation against this server.
    fn client(&self, args: &[&str]) -> Output {
        let mut cmd = Command::new(env!("CARGO_BIN_EXE_odcfp"));
        cmd.args(["client", &self.addr]).args(args);
        cmd.output().expect("client runs")
    }

    /// A concurrent client: spawned, not awaited.
    fn client_spawn(&self, args: &[&str]) -> Child {
        let mut cmd = Command::new(env!("CARGO_BIN_EXE_odcfp"));
        cmd.args(["client", &self.addr])
            .args(args)
            .stdout(Stdio::piped())
            .stderr(Stdio::piped());
        cmd.spawn().expect("client spawns")
    }

    /// SIGTERM, then wait for a clean exit and return the remaining
    /// stdout (the `drained:` summary line).
    fn sigterm_and_drain(mut self) -> String {
        let pid = self.child.id().to_string();
        let status = Command::new("kill")
            .args(["-TERM", &pid])
            .status()
            .expect("kill runs");
        assert!(status.success(), "kill -TERM failed");
        let status = wait_timeout(&mut self.child, Duration::from_secs(30));
        assert_eq!(status.code(), Some(0), "drain must exit cleanly");
        let mut rest = String::new();
        self.stdout.read_to_string(&mut rest).expect("stdout tail");
        rest
    }

    /// SIGKILL: the crash being drilled. No cleanup runs in the child.
    fn sigkill(mut self) {
        self.child.kill().expect("SIGKILL");
        let _ = self.child.wait();
    }
}

impl Drop for Serve {
    fn drop(&mut self) {
        // Best effort: don't leak a resident server if a test panics.
        let _ = self.child.kill();
        let _ = self.child.wait();
    }
}

/// `Child::wait` with a deadline; panics (after killing) on timeout so
/// a wedged drain fails the test instead of hanging the harness.
fn wait_timeout(child: &mut Child, limit: Duration) -> std::process::ExitStatus {
    let start = Instant::now();
    loop {
        if let Some(status) = child.try_wait().expect("try_wait") {
            return status;
        }
        if start.elapsed() > limit {
            let _ = child.kill();
            let _ = child.wait();
            panic!("child did not exit within {limit:?}");
        }
        std::thread::sleep(Duration::from_millis(25));
    }
}

/// Writes the mapped design fixture into `root` and returns the
/// absolute path of the Verilog file as a string.
fn design_fixture(root: &Path) -> String {
    let blif = root.join("design.blif");
    fs::write(&blif, BLIF).expect("blif fixture");
    let design_v = root.join("design.v");
    stdout_of(&odcfp(&[
        "map",
        blif.to_str().expect("utf8"),
        "-o",
        design_v.to_str().expect("utf8"),
    ]));
    design_v.to_str().expect("utf8").to_owned()
}

/// The acceptance chaos drill, part 1: parity, overload shedding,
/// fault isolation, deadline cancellation, and a graceful SIGTERM
/// drain — one server, many tenants.
#[test]
fn serve_parity_overload_isolation_and_sigterm_drain() {
    let root = workdir("chaos");
    let design_v = design_fixture(&root);

    // Reference: the batch CLI's embed of the same design and seed.
    let batch_marked = root.join("marked_batch.v");
    let batch_marked = batch_marked.to_str().expect("utf8");
    let report = stdout_of(&odcfp(&["embed", &design_v, "--seed", "7", "-o", batch_marked]));
    let batch_bits = report
        .trim()
        .rsplit(' ')
        .next()
        .expect("bits at end of report")
        .to_owned();
    let batch_verify = odcfp(&["verify", &design_v, batch_marked]);
    assert_eq!(batch_verify.status.code(), Some(0), "batch verify proves");

    // The server runs with the cache budget below the working set
    // (0 MiB: nothing fits) and a deliberately tiny worker pool/queue
    // so overload is reachable from a handful of clients.
    let trace = trace_dir().join("serve-chaos.trace.jsonl");
    let _ = fs::remove_file(&trace);
    let srv = Serve::start(
        &root,
        &[
            "--workers", "1",
            "--queue-depth", "1",
            "--cache-budget-mb", "0",
            "--trace-out", trace.to_str().expect("utf8"),
        ],
    );

    // (a) Served embed is bit-identical to the batch CLI: same bits,
    // same emitted netlist, proven verdict — and, with the budget below
    // the working set, every request degrades to a cold rebuild rather
    // than a wrong answer.
    let served_marked = root.join("marked_served.v");
    let served_marked = served_marked.to_str().expect("utf8");
    for round in 0..2 {
        let out = srv.client(&[
            "embed", &design_v, "--seed", "7", "--tenant", "alice", "-o", served_marked,
        ]);
        let stdout = String::from_utf8_lossy(&out.stdout);
        let stderr = String::from_utf8_lossy(&out.stderr);
        assert_eq!(out.status.code(), Some(0), "round {round}: {stderr}");
        assert!(stdout.contains(&format!("bits={batch_bits}")), "round {round}: {stdout}");
        assert!(stdout.contains("verdict=proven"), "round {round}: {stdout}");
        assert!(stdout.contains("cache=uncached"), "round {round}: {stdout}");
        assert_eq!(
            fs::read(batch_marked).expect("batch netlist"),
            fs::read(served_marked).expect("served netlist"),
            "round {round}: served embed must be bit-identical to batch"
        );
    }
    let out = srv.client(&["verify", &design_v, served_marked, "--tenant", "alice"]);
    assert_eq!(out.status.code(), Some(0), "{}", String::from_utf8_lossy(&out.stderr));
    assert!(String::from_utf8_lossy(&out.stdout).contains("verdict=proven"));

    // (b) Overload: two spin probes occupy the lone worker and the
    // one-slot queue; the next request is shed with a structured
    // `overloaded` reply instead of hanging or disconnecting.
    let spin_a = srv.client_spawn(&["probe", "spin", "--tenant", "bob", "--deadline-ms", "900"]);
    std::thread::sleep(Duration::from_millis(200));
    let spin_b = srv.client_spawn(&["probe", "spin", "--tenant", "carol", "--deadline-ms", "900"]);
    std::thread::sleep(Duration::from_millis(200));
    let shed = srv.client(&["verify", &design_v, served_marked, "--tenant", "dave"]);
    let shed_err = String::from_utf8_lossy(&shed.stderr).into_owned();
    assert_eq!(shed.status.code(), Some(1), "{shed_err}");
    assert!(shed_err.contains("overloaded"), "{shed_err}");

    // (c) The deadline-miss tenants get structured `deadline` errors
    // (client maps them onto the batch `undecided` exit code 4)...
    for (name, spin) in [("bob", spin_a), ("carol", spin_b)] {
        let out = spin.wait_with_output().expect("spin client");
        let stderr = String::from_utf8_lossy(&out.stderr).into_owned();
        assert_eq!(out.status.code(), Some(4), "{name}: {stderr}");
        assert!(stderr.contains("deadline"), "{name}: {stderr}");
    }
    // ...and the panic probe is answered, counted, and isolated: the
    // process survives to serve the next tenant.
    let out = srv.client(&["probe", "panic", "--tenant", "mallory"]);
    let stderr = String::from_utf8_lossy(&out.stderr).into_owned();
    assert_eq!(out.status.code(), Some(1), "{stderr}");
    assert!(stderr.contains("panic"), "{stderr}");

    let out = srv.client(&["ping", "--tenant", "alice"]);
    assert_eq!(out.status.code(), Some(0), "server must survive the panic");
    let out = srv.client(&["verify", &design_v, served_marked, "--tenant", "alice"]);
    assert_eq!(out.status.code(), Some(0), "still proving after the chaos");

    // Graceful drain: SIGTERM, clean exit, truthful summary.
    let drained = srv.sigterm_and_drain();
    assert!(drained.contains("odcfp serve drained:"), "{drained}");
    assert!(drained.contains("1 panics"), "{drained}");

    // The trace artifact survives the drain intact: no torn lines, and
    // both per-request and summary events present.
    let trace = odcfp_obs::read_trace(&trace).expect("trace readable");
    assert_eq!(trace.skipped_lines, 0, "drain must flush the trace cleanly");
    assert!(trace.events.iter().any(|e| e.name == "serve.request"));
    assert!(trace.events.iter().any(|e| e.name == "serve.summary"));
}

/// The campaign manifest used for the kill drill: fast jobs bracket a
/// spin probe so SIGKILL lands while work is provably in flight.
const MANIFEST: &str = "\
circuit early path:design.v
circuit slow probe:spin
circuit late path:design.v
buyers 2
seed 1234
deadline-ms 800
retries 0
";

/// `campaign.job.outcome` payload lines (replay-stable projection),
/// deduplicated to first occurrence: a resumed or chunked leg re-emits
/// journalled outcomes, so the first-occurrence order reconstructs the
/// execution order.
fn outcome_stream(path: &Path) -> Vec<String> {
    let trace = odcfp_obs::read_trace(path).expect("trace readable");
    let mut seen = std::collections::HashSet::new();
    trace
        .events
        .iter()
        .filter(|e| e.det && e.name == "campaign.job.outcome")
        .map(odcfp_obs::Event::payload_line)
        .filter(|line| seen.insert(line.clone()))
        .collect()
}

/// The acceptance chaos drill, part 2: SIGKILL the server mid-campaign,
/// restart it, resume over the protocol, and require the journal-
/// verified end state to equal an uninterrupted batch run's.
#[test]
fn serve_sigkill_restart_resumes_campaign_to_batch_identical_state() {
    let root = workdir("kill");
    design_fixture(&root);
    let manifest_path = root.join("campaign.manifest");
    fs::write(&manifest_path, MANIFEST).expect("manifest");
    let manifest_path = manifest_path.to_str().expect("utf8").to_owned();

    // Reference: the same campaign, uninterrupted, via the batch CLI.
    let traces = trace_dir();
    let ref_trace = traces.join("serve-campaign-ref.trace.jsonl");
    let _ = fs::remove_file(&ref_trace);
    let ref_out = root.join("ref");
    let ref_run = odcfp(&[
        "campaign",
        &manifest_path,
        "--out-dir",
        ref_out.to_str().expect("utf8"),
        "--trace-out",
        ref_trace.to_str().expect("utf8"),
    ]);
    assert_eq!(ref_run.status.code(), Some(6)); // spin jobs quarantine

    // Victim server: start the campaign over the protocol, then SIGKILL
    // the server once the first artifact proves a job completed.
    let victim_trace = traces.join("serve-campaign-killed.trace.jsonl");
    let _ = fs::remove_file(&victim_trace);
    let srv = Serve::start(&root, &["--trace-out", victim_trace.to_str().expect("utf8")]);
    let campaign_client = srv.client_spawn(&[
        "campaign", &manifest_path, "--out-dir", "out", "--tenant", "alice",
    ]);
    let first_artifact = root.join("out/artifacts/early_b0.v");
    let started = Instant::now();
    while !first_artifact.exists() {
        assert!(
            started.elapsed() < Duration::from_secs(30),
            "campaign never produced its first artifact"
        );
        std::thread::sleep(Duration::from_millis(25));
    }
    std::thread::sleep(Duration::from_millis(150));
    srv.sigkill();
    // The client loses its connection; it must fail, not hang.
    let out = campaign_client
        .wait_with_output()
        .expect("client observes the crash");
    assert!(!out.status.success(), "client must report the lost server");

    // The torn trace still reads back (lossy) and shows the campaign
    // was genuinely in flight when the kill landed.
    let killed = odcfp_obs::read_trace(&victim_trace).expect("killed trace readable");
    assert!(killed.events.iter().any(|e| e.name == "campaign.start"));

    // Restart and resume over the protocol. The journal carries the
    // pre-kill progress; the reply's totals must match the manifest.
    let resume_trace = traces.join("serve-campaign-resumed.trace.jsonl");
    let _ = fs::remove_file(&resume_trace);
    let srv = Serve::start(&root, &["--trace-out", resume_trace.to_str().expect("utf8")]);
    let out = srv.client(&[
        "campaign", &manifest_path, "--out-dir", "out", "--resume", "--tenant", "alice",
    ]);
    let stdout = String::from_utf8_lossy(&out.stdout).into_owned();
    let stderr = String::from_utf8_lossy(&out.stderr).into_owned();
    assert_eq!(out.status.code(), Some(0), "{stderr}");
    assert!(stdout.contains("total=6"), "{stdout}");
    assert!(stdout.contains("completed=4"), "{stdout}");
    assert!(stdout.contains("poisoned=2"), "{stdout}");
    assert!(stdout.contains("clean=false"), "{stdout}");
    let drained = srv.sigterm_and_drain();
    assert!(drained.contains("odcfp serve drained:"), "{drained}");

    // Journal verification: a batch `--resume` over the server's output
    // directory replays the journal, re-verifies every artifact digest,
    // and finds nothing left to execute.
    let resumed = odcfp(&[
        "campaign",
        &manifest_path,
        "--out-dir",
        root.join("out").to_str().expect("utf8"),
        "--resume",
    ]);
    let stderr = String::from_utf8_lossy(&resumed.stderr).into_owned();
    assert_eq!(resumed.status.code(), Some(6), "{stderr}");
    assert!(
        stderr.contains("already complete (resumed)"),
        "no job may re-execute after the served resume: {stderr}"
    );

    // Bit-identical artifacts versus the uninterrupted batch run...
    for name in ["early_b0.v", "early_b1.v", "late_b0.v", "late_b1.v"] {
        assert_eq!(
            fs::read(ref_out.join("artifacts").join(name)).expect("ref artifact"),
            fs::read(root.join("out/artifacts").join(name)).expect("served artifact"),
            "{name}"
        );
    }
    // ...and an identical replay-stable outcome stream: what the killed
    // and resumed legs journalled folds to exactly what one clean run
    // produces.
    let reference = outcome_stream(&ref_trace);
    assert!(!reference.is_empty(), "reference trace has outcomes");
    let mut served = outcome_stream(&victim_trace);
    for line in outcome_stream(&resume_trace) {
        if !served.contains(&line) {
            served.push(line);
        }
    }
    assert_eq!(served, reference, "served campaign must converge to the batch run");
}

use odcfp_serve::proto::{escape_json, payload_digest, request_line, Frame, Reply};
use std::io::Write as _;
use std::net::{TcpListener, TcpStream};

/// A raw protocol connection to a spawned server, for conformance
/// checks below the `odcfp client` abstraction.
struct Wire {
    stream: TcpStream,
    reader: BufReader<TcpStream>,
}

impl Wire {
    fn connect(addr: &str) -> Wire {
        let stream = TcpStream::connect(addr).expect("connect");
        stream.set_read_timeout(Some(Duration::from_secs(30))).unwrap();
        Wire {
            reader: BufReader::new(stream.try_clone().expect("clone")),
            stream,
        }
    }

    fn send(&mut self, line: &str) {
        self.stream.write_all(line.as_bytes()).expect("send");
        self.stream.write_all(b"\n").expect("send nl");
        self.stream.flush().expect("flush");
    }

    fn read_reply(&mut self) -> Reply {
        let mut line = String::new();
        self.reader.read_line(&mut line).expect("read reply");
        Reply::parse_line(line.trim_end())
            .unwrap_or_else(|| panic!("parseable reply: {line:?}"))
    }

    fn roundtrip(&mut self, line: &str) -> Reply {
        self.send(line);
        self.read_reply()
    }

    fn expect_error(&mut self, line: &str, code: &str) -> Reply {
        let reply = self.roundtrip(line);
        assert!(!reply.ok, "expected {code}: {reply:?}");
        assert_eq!(reply.error.as_deref(), Some(code), "{reply:?}");
        reply
    }
}

/// PROTOCOL.md conformance against the real binary: every structured
/// error code is reachable and correctly shaped, and a chunked reply
/// reassembles with an intact digest.
#[test]
fn protocol_conformance_every_error_code_and_chunked_reply() {
    let root = workdir("conformance");
    fs::write(root.join("design.blif"), BLIF).expect("fixture");
    // Tiny pool/queue so overload is reachable; threshold 1 so every
    // netlist payload streams; an occupied path for the internal error.
    fs::write(root.join("occupied"), b"not a directory").expect("fixture");
    let srv = Serve::start(
        &root,
        &["--workers", "1", "--queue-depth", "1", "--stream-threshold", "1"],
    );
    let mut w = Wire::connect(&srv.addr);

    // bad_request — three shapes: not JSON, unknown op, missing field.
    w.expect_error("not json at all", "bad_request");
    w.expect_error("{\"v\":2,\"id\":\"x\",\"op\":\"frobnicate\"}", "bad_request");
    w.expect_error("{\"v\":2,\"id\":\"x\",\"op\":\"embed\"}", "bad_request");

    // unsupported_version — replies stamp the safe common denominator.
    let e = w.expect_error("{\"v\":99,\"id\":\"x\",\"op\":\"ping\"}", "unsupported_version");
    assert_eq!(e.v, 1, "error replies to unknown versions speak v1");

    // deadline — a spin probe cancelled by its own deadline.
    w.expect_error(
        &request_line("dl", "t", Some(150), "probe", &[("mode", "spin".into())]),
        "deadline",
    );

    // panic — isolated, answered, diagnostic preserved.
    let e = w.expect_error(
        &request_line("pp", "t", None, "probe", &[("mode", "panic".into())]),
        "panic",
    );
    assert!(e.message.as_deref().unwrap().contains("deliberate panic"), "{e:?}");

    // quarantined — three attributed panics strike the circuit out;
    // the next request against it is refused without execution.
    let probe_args: Vec<(&str, odcfp_serve::proto::FieldValue)> = vec![
        ("mode", "panic".into()),
        ("design_path", "design.blif".into()),
    ];
    for i in 0..3 {
        let line = request_line(&format!("q{i}"), "t", None, "probe", &probe_args);
        let e = w.expect_error(&line, "panic");
        assert!(
            e.message.as_deref().unwrap().contains(&format!("strike {}/3", i + 1)),
            "{e:?}"
        );
    }
    let e = w.expect_error(
        &request_line(
            "q3",
            "t",
            None,
            "verify",
            &[
                ("golden_path", "design.blif".into()),
                ("candidate_path", "design.blif".into()),
            ],
        ),
        "quarantined",
    );
    assert!(e.message.as_deref().unwrap().contains("quarantined"), "{e:?}");

    // internal — the campaign journal cannot land on an occupied path.
    w.expect_error(
        &request_line(
            "io",
            "t",
            None,
            "campaign",
            &[
                ("manifest", "circuit one path:design.blif\nbuyers 1\nseed 1\n".into()),
                ("out_dir", "occupied".into()),
            ],
        ),
        "internal",
    );

    // Chunked reply — embed streams its netlist as chunk…done; the
    // reassembled payload passes the digest in the trailer. The design
    // text rides inline so no fresh digest is touched (the path-based
    // fixture above is quarantined, the text-based one is distinct).
    let design_text = format!("{BLIF}\n");
    w.send(&request_line(
        "ch",
        "t",
        None,
        "embed",
        &[
            ("design_text", design_text.as_str().into()),
            ("design_format", "blif".into()),
            ("seed", 7u64.into()),
        ],
    ));
    let mut assembled = String::new();
    let mut chunks_seen = 0u64;
    let done = loop {
        let mut line = String::new();
        w.reader.read_line(&mut line).expect("frame");
        match Frame::parse_line(line.trim_end()).expect("parseable frame") {
            Frame::Chunk { seq, data, .. } => {
                assert_eq!(seq, chunks_seen);
                chunks_seen += 1;
                assembled.push_str(&data);
            }
            Frame::Done { reply, stream, chunks, bytes, digest } => {
                assert_eq!(stream, "netlist");
                assert_eq!(chunks, chunks_seen);
                assert_eq!(bytes as usize, assembled.len());
                assert_eq!(digest, payload_digest(assembled.as_bytes()));
                break reply;
            }
            Frame::Reply(r) => panic!("threshold 1 must stream: {r:?}"),
        }
    };
    assert!(done.ok, "{done:?}");
    assert!(chunks_seen >= 1);
    assert!(done.field_str("bits").is_some(), "scalars ride the done frame");

    // overloaded — pin the worker and fill the one-slot queue, then the
    // next queued op sheds. Separate connections so replies don't race.
    let mut pin = Wire::connect(&srv.addr);
    pin.send(&request_line("pin", "p", Some(1200), "probe", &[("mode", "spin".into())]));
    std::thread::sleep(Duration::from_millis(250));
    let mut fill = Wire::connect(&srv.addr);
    fill.send(&request_line("fill", "f", Some(1200), "probe", &[("mode", "spin".into())]));
    std::thread::sleep(Duration::from_millis(150));
    let e = w.expect_error(
        &request_line(
            "shed",
            "s",
            None,
            "embed",
            &[
                ("design_text", design_text.as_str().into()),
                ("design_format", "blif".into()),
                ("seed", 1u64.into()),
            ],
        ),
        "overloaded",
    );
    assert!(e.message.as_deref().unwrap().contains("queue full"), "{e:?}");
    assert_eq!(pin.read_reply().error.as_deref(), Some("deadline"));
    assert_eq!(fill.read_reply().error.as_deref(), Some("deadline"));

    // draining — in-flight work keeps the server alive while drain
    // closes the queue; a request arriving after the transition is
    // refused with `draining` (work admitted *before* it still drains).
    let mut holder = Wire::connect(&srv.addr);
    holder.send(&request_line("hold", "h", Some(1500), "probe", &[("mode", "spin".into())]));
    std::thread::sleep(Duration::from_millis(250));
    let bye = w.roundtrip(&request_line("bye", "admin", None, "shutdown", &[]));
    assert!(bye.ok, "{bye:?}");
    std::thread::sleep(Duration::from_millis(250));
    let late = w.roundtrip(&request_line(
        "late",
        "t",
        None,
        "embed",
        &[
            ("design_text", design_text.as_str().into()),
            ("design_format", "blif".into()),
            ("seed", 2u64.into()),
        ],
    ));
    assert_eq!(late.error.as_deref(), Some("draining"), "{late:?}");
    assert_eq!(holder.read_reply().error.as_deref(), Some("deadline"));

    let status = wait_timeout(&mut { srv }.child, Duration::from_secs(30));
    assert_eq!(status.code(), Some(0), "shutdown drains cleanly");
}

/// Regression: a server that hangs up before completing a reply must
/// produce a structured `connection-closed` error and a nonzero exit —
/// never a hang, never a success.
#[test]
fn client_reports_connection_closed_when_server_drops_mid_reply() {
    // Scenario 1: the "server" accepts and closes without replying.
    let listener = TcpListener::bind("127.0.0.1:0").expect("bind");
    let addr = listener.local_addr().expect("addr").to_string();
    let silent = std::thread::spawn(move || {
        let (stream, _) = listener.accept().expect("accept");
        let mut reader = BufReader::new(stream);
        let mut line = String::new();
        reader.read_line(&mut line).expect("request read");
        // Drop: connection closes with zero reply bytes.
    });
    let out = odcfp(&["client", &addr, "ping"]);
    silent.join().expect("fake server");
    assert_eq!(out.status.code(), Some(1), "hangup is a failure, not a hang");
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("connection-closed"), "{stderr}");

    // Scenario 2: the stream dies mid-chunk — a chunk frame arrives,
    // the `done` trailer never does.
    let listener = TcpListener::bind("127.0.0.1:0").expect("bind");
    let addr = listener.local_addr().expect("addr").to_string();
    let truncating = std::thread::spawn(move || {
        let (mut stream, _) = listener.accept().expect("accept");
        let mut reader = BufReader::new(stream.try_clone().expect("clone"));
        let mut line = String::new();
        reader.read_line(&mut line).expect("request read");
        let chunk = format!(
            "{{\"v\":2,\"id\":\"cli-1\",\"ok\":true,\"frame\":\"chunk\",\"seq\":0,\"data\":\"{}\"}}\n",
            escape_json("module truncated")
        );
        stream.write_all(chunk.as_bytes()).expect("chunk write");
        stream.flush().expect("flush");
        // Drop mid-stream.
    });
    let out = odcfp(&["client", &addr, "ping"]);
    truncating.join().expect("fake server");
    assert_eq!(out.status.code(), Some(1), "truncated stream is a failure");
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("connection-closed"), "{stderr}");
}
