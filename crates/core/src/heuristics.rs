//! Overhead-reduction heuristics under a delay constraint (§III-D, §IV-B;
//! Table III).
//!
//! Two methods are provided, mirroring the paper:
//!
//! * **Reactive** ([`reactive_delay_reduction`]): start from the fully
//!   fingerprinted circuit and remove one modification at a time until the
//!   delay constraint is met. The paper evaluates each removal by
//!   re-measuring the whole circuit; [`ReactiveOptions::exhaustive`]
//!   reproduces that exactly, while the default *slack-guided* mode removes
//!   the modification sitting on the most critical path (one STA per round)
//!   and scales to the large benchmarks. Both fall back to seeded random
//!   removals when no single removal improves the delay, exactly as §IV-B
//!   describes.
//! * **Proactive** ([`proactive_delay_embedding`]): add modifications most
//!   slack-rich first, keeping each only if the constraint still holds.

use odcfp_analysis::{sta, DesignMetrics};
use odcfp_logic::rng::Xoshiro256;
use odcfp_netlist::Netlist;

use crate::attack::SurvivalStats;
use crate::{apply_modification, FingerprintError, Fingerprinter, FingerprintedCopy, VerifyLevel};

/// Options for [`reactive_delay_reduction`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ReactiveOptions {
    /// Evaluate every candidate removal with a full re-measurement (the
    /// paper's exact procedure, `O(n²)` timing runs) instead of the
    /// slack-guided approximation.
    pub exhaustive: bool,
    /// Seed for the random-removal fallback.
    pub seed: u64,
    /// Rounds without delay improvement before a random removal is tried.
    pub patience: usize,
}

impl Default for ReactiveOptions {
    fn default() -> Self {
        ReactiveOptions {
            exhaustive: false,
            seed: 0x0DC,
            patience: 3,
        }
    }
}

/// The result of a delay-constrained fingerprinting run.
#[derive(Debug, Clone)]
pub struct ConstrainedEmbedding {
    /// The surviving fingerprinted copy (its bits mark kept locations).
    pub copy: FingerprintedCopy,
    /// Metrics of the base design.
    pub base_metrics: DesignMetrics,
    /// Metrics of the surviving copy.
    pub metrics: DesignMetrics,
    /// Percentage of fingerprint locations removed (Table III column 1).
    pub fingerprint_reduction_pct: f64,
}

impl ConstrainedEmbedding {
    /// Number of locations that survived.
    pub fn kept_locations(&self) -> usize {
        self.copy.bits().iter().filter(|&&b| b).count()
    }
}

fn delay_of(netlist: &Netlist) -> f64 {
    sta::analyze(netlist).expect("validated netlist").max_delay()
}

fn build(
    fp: &Fingerprinter,
    kept: &[bool],
    verify: VerifyLevel,
) -> Result<FingerprintedCopy, FingerprintError> {
    fp.embed_verified(kept, verify)
}

/// The paper's reactive method: remove modifications from the fully
/// fingerprinted design until its delay is within
/// `max_delay_overhead_pct` percent of the base delay.
///
/// # Errors
///
/// Propagates embedding errors (none are expected for locations produced
/// by the same engine).
pub fn reactive_delay_reduction(
    fp: &Fingerprinter,
    max_delay_overhead_pct: f64,
    opts: ReactiveOptions,
) -> Result<ConstrainedEmbedding, FingerprintError> {
    let n = fp.locations().len();
    let base_metrics = DesignMetrics::measure(fp.base());
    let limit = base_metrics.delay * (1.0 + max_delay_overhead_pct / 100.0);
    let mut kept = vec![true; n];
    let mut rng = Xoshiro256::seed_from_u64(opts.seed);

    let mut current = build(fp, &kept, VerifyLevel::None)?;
    let mut current_delay = delay_of(current.netlist());
    let mut stale_rounds = 0usize;

    while current_delay > limit && kept.iter().any(|&k| k) {
        let removal = if opts.exhaustive {
            // Try every removal; keep the one with minimum resulting delay.
            let mut best: Option<(usize, f64)> = None;
            for i in 0..n {
                if !kept[i] {
                    continue;
                }
                kept[i] = false;
                let trial = build(fp, &kept, VerifyLevel::None)?;
                let d = delay_of(trial.netlist());
                kept[i] = true;
                if best.is_none_or(|(_, bd)| d < bd) {
                    best = Some((i, d));
                }
            }
            best.map(|(i, _)| i)
        } else if stale_rounds < opts.patience {
            // Slack-guided: drop the kept modification whose target gate is
            // most timing-critical in the current circuit.
            let timing = sta::analyze(current.netlist()).expect("valid");
            (0..n)
                .filter(|&i| kept[i])
                .min_by(|&a, &b| {
                    let sa = timing.slack(fp.selected_modifications()[a].target());
                    let sb = timing.slack(fp.selected_modifications()[b].target());
                    sa.partial_cmp(&sb).expect("finite slack")
                })
        } else {
            None
        };
        // §IV-B fallback: no productive removal found — remove at random.
        let removal = removal.or_else(|| {
            let alive: Vec<usize> = (0..n).filter(|&i| kept[i]).collect();
            rng.choose(&alive).copied()
        });
        let Some(i) = removal else { break };
        kept[i] = false;
        let next = build(fp, &kept, VerifyLevel::None)?;
        let next_delay = delay_of(next.netlist());
        if next_delay < current_delay - 1e-12 {
            stale_rounds = 0;
        } else {
            stale_rounds += 1;
        }
        current = next;
        current_delay = next_delay;
    }

    let copy = build(fp, &kept, VerifyLevel::Simulation)?;
    let metrics = DesignMetrics::measure(copy.netlist());
    let removed = n - kept.iter().filter(|&&k| k).count();
    Ok(ConstrainedEmbedding {
        copy,
        base_metrics,
        metrics,
        fingerprint_reduction_pct: if n == 0 {
            0.0
        } else {
            removed as f64 / n as f64 * 100.0
        },
    })
}

/// The paper's proactive method: add modifications one at a time —
/// slack-rich targets first — keeping each only if the delay constraint
/// still holds afterwards.
///
/// # Errors
///
/// Propagates embedding errors.
pub fn proactive_delay_embedding(
    fp: &Fingerprinter,
    max_delay_overhead_pct: f64,
) -> Result<ConstrainedEmbedding, FingerprintError> {
    // Order locations by target slack in the base design, descending.
    let timing = sta::analyze(fp.base()).expect("valid base");
    let mut order: Vec<usize> = (0..fp.locations().len()).collect();
    order.sort_by(|&a, &b| {
        let sa = timing.slack(fp.selected_modifications()[a].target());
        let sb = timing.slack(fp.selected_modifications()[b].target());
        sb.partial_cmp(&sa).expect("finite slack")
    });
    proactive_with_order(fp, max_delay_overhead_pct, &order)
}

/// Location indices ordered most-attack-survivable first (ties broken by
/// slack-free index order, so the result is deterministic).
///
/// Scores come from [`SurvivalStats`] measured by an attack battery
/// ([`crate::attack::run_battery`]); a location that was never embedded
/// during the battery, or whose widened shape is structurally
/// unidentifiable, scores `0` — the battery produced no evidence it can
/// survive anything.
pub fn robust_location_order(stats: &SurvivalStats) -> Vec<usize> {
    let mut order: Vec<usize> = (0..stats.len()).collect();
    order.sort_by(|&a, &b| {
        stats
            .score(b)
            .partial_cmp(&stats.score(a))
            .expect("scores are finite")
            .then(a.cmp(&b))
    });
    order
}

/// The proactive method with attack-survival feedback — the
/// `--robust-locations` CLI path.
///
/// Two rules close the loop from attack evidence to embedding policy:
///
/// * **Skip proven-fragile wires.** A location whose widened shape is
///   structurally unidentifiable, or that was attacked and never
///   survived, is never embedded — delay budget spent there buys
///   evidence an attacker demonstrably erases. Locations the battery
///   never exercised are kept with a neutral `0.5` prior (absence of
///   evidence is not evidence of fragility).
/// * **Try survivors first.** Remaining locations are ordered by
///   measured survival rate, slack-rich first among equals, so a tight
///   budget goes to the wires most likely to outlive resynthesis.
///
/// `stats` must describe the same location list as `fp` (same circuit,
/// same engine).
///
/// # Errors
///
/// Propagates embedding errors.
///
/// # Panics
///
/// Panics if `stats` has a different location count than `fp`.
pub fn proactive_robust_embedding(
    fp: &Fingerprinter,
    max_delay_overhead_pct: f64,
    stats: &SurvivalStats,
) -> Result<ConstrainedEmbedding, FingerprintError> {
    let n = fp.locations().len();
    assert_eq!(
        stats.len(),
        n,
        "survival statistics describe a different location list"
    );
    let rank = |i: usize| -> Option<f64> {
        if !stats.identifiable.get(i).copied().unwrap_or(false) {
            return None; // structurally invisible: useless as evidence
        }
        if stats.tested[i] == 0 {
            return Some(0.5); // untested: neutral prior
        }
        if stats.survived[i] == 0 {
            return None; // attacked and always stripped: proven fragile
        }
        Some(f64::from(stats.survived[i]) / f64::from(stats.tested[i]))
    };
    let timing = sta::analyze(fp.base()).expect("valid base");
    let mut order: Vec<(usize, f64)> =
        (0..n).filter_map(|i| rank(i).map(|s| (i, s))).collect();
    order.sort_by(|&(a, score_a), &(b, score_b)| {
        let slack_a = timing.slack(fp.selected_modifications()[a].target());
        let slack_b = timing.slack(fp.selected_modifications()[b].target());
        score_b
            .partial_cmp(&score_a)
            .expect("finite score")
            .then(slack_b.partial_cmp(&slack_a).expect("finite slack"))
            .then(a.cmp(&b))
    });
    let order: Vec<usize> = order.into_iter().map(|(i, _)| i).collect();
    proactive_with_order(fp, max_delay_overhead_pct, &order)
}

fn proactive_with_order(
    fp: &Fingerprinter,
    max_delay_overhead_pct: f64,
    order: &[usize],
) -> Result<ConstrainedEmbedding, FingerprintError> {
    let n = fp.locations().len();
    let base_metrics = DesignMetrics::measure(fp.base());
    let limit = base_metrics.delay * (1.0 + max_delay_overhead_pct / 100.0);

    // Grow one netlist through an incremental session instead of rebuilding
    // the whole embedding for every trial: each candidate is tried on a
    // clone of the current state and committed only if the constraint still
    // holds. The selected modifications are conflict-free, so the result is
    // order-independent and matches the batch rebuild below.
    let mut kept = vec![false; n];
    let mut session = fp.embed_session()?;
    for &i in order {
        let mut trial = session.netlist().clone();
        apply_modification(&mut trial, &fp.selected_modifications()[i])?;
        if delay_of(&trial) <= limit {
            session.set_bit(i)?;
            kept[i] = true;
        }
    }

    let copy = build(fp, &kept, VerifyLevel::Simulation)?;
    let metrics = DesignMetrics::measure(copy.netlist());
    let removed = n - kept.iter().filter(|&&k| k).count();
    Ok(ConstrainedEmbedding {
        copy,
        base_metrics,
        metrics,
        fingerprint_reduction_pct: if n == 0 {
            0.0
        } else {
            removed as f64 / n as f64 * 100.0
        },
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use odcfp_netlist::CellLibrary;
    use odcfp_synth::benchmarks::random::{random_dag, DagParams};

    fn engine(seed: u64) -> Fingerprinter {
        let lib = CellLibrary::standard();
        let base = random_dag(lib, DagParams::small(seed));
        Fingerprinter::new(base).unwrap()
    }

    fn overhead_pct(base: &DesignMetrics, m: &DesignMetrics) -> f64 {
        (m.delay - base.delay) / base.delay * 100.0
    }

    #[test]
    fn reactive_meets_constraint() {
        let fp = engine(100);
        assert!(!fp.locations().is_empty());
        for pct in [10.0, 5.0, 1.0] {
            let r =
                reactive_delay_reduction(&fp, pct, ReactiveOptions::default()).unwrap();
            let oh = overhead_pct(&r.base_metrics, &r.metrics);
            assert!(oh <= pct + 1e-9, "constraint {pct}%: got {oh}%");
            assert!(r.fingerprint_reduction_pct >= 0.0);
            assert!(r.fingerprint_reduction_pct <= 100.0);
        }
    }

    #[test]
    fn exhaustive_mode_meets_constraint() {
        let fp = engine(101);
        let r = reactive_delay_reduction(
            &fp,
            5.0,
            ReactiveOptions {
                exhaustive: true,
                ..ReactiveOptions::default()
            },
        )
        .unwrap();
        let oh = overhead_pct(&r.base_metrics, &r.metrics);
        assert!(oh <= 5.0 + 1e-9, "got {oh}%");
    }

    #[test]
    fn tighter_constraints_keep_fewer_locations() {
        let fp = engine(102);
        let loose =
            reactive_delay_reduction(&fp, 20.0, ReactiveOptions::default()).unwrap();
        let tight =
            reactive_delay_reduction(&fp, 1.0, ReactiveOptions::default()).unwrap();
        assert!(
            tight.kept_locations() <= loose.kept_locations(),
            "{} > {}",
            tight.kept_locations(),
            loose.kept_locations()
        );
    }

    #[test]
    fn proactive_meets_constraint() {
        let fp = engine(103);
        for pct in [10.0, 1.0] {
            let r = proactive_delay_embedding(&fp, pct).unwrap();
            let oh = overhead_pct(&r.base_metrics, &r.metrics);
            assert!(oh <= pct + 1e-9, "constraint {pct}%: got {oh}%");
        }
    }

    #[test]
    fn surviving_copy_is_equivalent() {
        // build() verifies by simulation; additionally prove it by SAT on a
        // small circuit.
        let fp = engine(104);
        let r = reactive_delay_reduction(&fp, 5.0, ReactiveOptions::default()).unwrap();
        let verdict =
            odcfp_sat::check_equivalence(fp.base(), r.copy.netlist(), None).unwrap();
        assert_eq!(verdict, odcfp_sat::EquivResult::Equivalent);
    }

    #[test]
    fn robust_order_ranks_by_survival_score() {
        let stats = SurvivalStats {
            attacks: 2,
            survived: vec![0, 2, 1, 0],
            tested: vec![2, 2, 2, 0],
            identifiable: vec![true, true, true, true],
        };
        assert_eq!(robust_location_order(&stats), vec![1, 2, 0, 3]);
    }

    #[test]
    fn robust_feedback_shifts_selection_toward_surviving_wires() {
        let fp = engine(106);
        let n = fp.locations().len();
        assert!(n >= 4, "need a few locations, got {n}");

        // Baseline: plain proactive under a moderate budget, keeping at
        // least two locations so there is a set to poison.
        let (pct, plain) = [10.0, 5.0, 2.0, 1.0]
            .into_iter()
            .find_map(|pct| {
                let r = proactive_delay_embedding(&fp, pct).unwrap();
                (r.kept_locations() >= 2).then_some((pct, r))
            })
            .expect("some budget keeps at least two locations");
        let plain_kept: Vec<usize> = plain
            .copy
            .bits()
            .iter()
            .enumerate()
            .filter_map(|(i, &k)| k.then_some(i))
            .collect();

        // Feedback: every other wire the plain method embedded turns out
        // to be strippable (attacked once, never survived); everything
        // else survived its attack.
        let mut survived = vec![1u32; n];
        for (j, &i) in plain_kept.iter().enumerate() {
            if j % 2 == 0 {
                survived[i] = 0;
            }
        }
        let stats = SurvivalStats {
            attacks: 1,
            survived,
            tested: vec![1; n],
            identifiable: vec![true; n],
        };
        let robust = proactive_robust_embedding(&fp, pct, &stats).unwrap();
        let robust_kept: Vec<usize> = robust
            .copy
            .bits()
            .iter()
            .enumerate()
            .filter_map(|(i, &k)| k.then_some(i))
            .collect();
        assert!(!robust_kept.is_empty(), "robust mode kept nothing");
        for &i in &robust_kept {
            assert_eq!(
                stats.score(i),
                1.0,
                "robust mode embedded proven-strippable location {i}"
            );
        }

        let mean = |kept: &[usize]| {
            kept.iter().map(|&i| stats.score(i)).sum::<f64>() / kept.len() as f64
        };
        assert!(
            mean(&robust_kept) > mean(&plain_kept),
            "robust selection must shift toward surviving wires \
             (robust mean {}, plain mean {})",
            mean(&robust_kept),
            mean(&plain_kept)
        );
    }

    #[test]
    fn zero_constraint_strips_everything_critical() {
        let fp = engine(105);
        let r = reactive_delay_reduction(&fp, 0.0, ReactiveOptions::default()).unwrap();
        let oh = overhead_pct(&r.base_metrics, &r.metrics);
        assert!(oh <= 1e-9, "zero budget: got {oh}%");
    }
}
