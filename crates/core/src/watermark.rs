//! The combined watermark + fingerprint protection flow of §III-E.
//!
//! *"An IP will be protected by both watermark (to establish the IP's
//! authorship) and fingerprint (to identify each IP buyer). When a
//! suspicious IP is found, the watermark will be first verified to confirm
//! that IP piracy has occurred. Next, the fingerprint needs to be
//! discovered to trace the IP buyer."*
//!
//! Implementation: the engine's locations are split deterministically by a
//! keyed hash — a fixed fraction carry the **watermark** (identical bits in
//! every copy, derived from the designer's key) and the rest carry the
//! per-buyer **fingerprint**. Both ride the same ODC mechanism, so a copy
//! carries authorship proof and buyer identity simultaneously.

use odcfp_netlist::Netlist;

use crate::{FingerprintError, Fingerprinter, FingerprintedCopy};

/// Fraction of locations reserved for the watermark, in percent.
const WATERMARK_SHARE_PCT: usize = 25;

/// A combined watermark + fingerprint engine over one base design.
#[derive(Debug, Clone)]
pub struct ProtectedIp {
    engine: Fingerprinter,
    key: u64,
    /// Indices of watermark locations (sorted).
    watermark_slots: Vec<usize>,
    /// Indices of fingerprint locations (sorted).
    fingerprint_slots: Vec<usize>,
    /// The watermark bit carried by each watermark slot.
    watermark_bits: Vec<bool>,
}

/// The §III-E verification verdict for a suspect netlist.
#[derive(Debug, Clone, PartialEq)]
pub struct ProtectionVerdict {
    /// Fraction of watermark bits found intact, in `[0, 1]`.
    pub watermark_match: f64,
    /// True if the watermark clears the authorship threshold (90%).
    pub authorship_established: bool,
    /// The extracted buyer fingerprint bits (meaningful when authorship is
    /// established).
    pub buyer_bits: Vec<bool>,
}

/// SplitMix64 — keyed slot assignment must not depend on `rng`'s stream
/// position, so hash directly.
fn mix(key: u64, i: u64) -> u64 {
    let mut z = key ^ i.wrapping_mul(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

impl ProtectedIp {
    /// Splits an engine's locations between watermark and fingerprint using
    /// the designer's secret `key`.
    pub fn new(engine: Fingerprinter, key: u64) -> Self {
        let n = engine.locations().len();
        let mut watermark_slots = Vec::new();
        let mut fingerprint_slots = Vec::new();
        let mut watermark_bits = Vec::new();
        for i in 0..n {
            let h = mix(key, i as u64);
            if (h % 100) < WATERMARK_SHARE_PCT as u64 {
                watermark_slots.push(i);
                watermark_bits.push(h & (1 << 32) != 0);
            } else {
                fingerprint_slots.push(i);
            }
        }
        ProtectedIp {
            engine,
            key,
            watermark_slots,
            fingerprint_slots,
            watermark_bits,
        }
    }

    /// The underlying fingerprinting engine.
    pub fn engine(&self) -> &Fingerprinter {
        &self.engine
    }

    /// The designer key this protection was derived from.
    pub fn key(&self) -> u64 {
        self.key
    }

    /// Number of watermark bits every copy carries.
    pub fn watermark_len(&self) -> usize {
        self.watermark_slots.len()
    }

    /// Number of per-buyer fingerprint bits.
    pub fn fingerprint_len(&self) -> usize {
        self.fingerprint_slots.len()
    }

    /// Mints a protected copy: watermark bits fixed by the key, fingerprint
    /// bits from `buyer_bits`.
    ///
    /// # Errors
    ///
    /// Returns a length-mismatch error when `buyer_bits` does not match
    /// [`ProtectedIp::fingerprint_len`], and propagates embedding errors.
    pub fn mint(&self, buyer_bits: &[bool]) -> Result<FingerprintedCopy, FingerprintError> {
        if buyer_bits.len() != self.fingerprint_slots.len() {
            return Err(FingerprintError::BitLengthMismatch {
                expected: self.fingerprint_slots.len(),
                found: buyer_bits.len(),
            });
        }
        let mut bits = vec![false; self.engine.locations().len()];
        for (slot, &b) in self.watermark_slots.iter().zip(&self.watermark_bits) {
            bits[*slot] = b;
        }
        for (slot, &b) in self.fingerprint_slots.iter().zip(buyer_bits) {
            bits[*slot] = b;
        }
        self.engine.embed(&bits)
    }

    /// Mints a copy with seeded random buyer bits.
    ///
    /// # Errors
    ///
    /// Propagates embedding errors.
    pub fn mint_seeded(&self, buyer_seed: u64) -> Result<FingerprintedCopy, FingerprintError> {
        let mut rng = odcfp_logic::rng::Xoshiro256::seed_from_u64(buyer_seed);
        let bits: Vec<bool> = (0..self.fingerprint_len()).map(|_| rng.next_bool()).collect();
        self.mint(&bits)
    }

    /// The §III-E two-step check: verify authorship from the watermark,
    /// then extract the buyer fingerprint.
    pub fn verify(&self, suspect: &Netlist) -> ProtectionVerdict {
        let all = self.engine.extract(suspect);
        let matches = self
            .watermark_slots
            .iter()
            .zip(&self.watermark_bits)
            .filter(|(slot, &expect)| all[**slot] == expect)
            .count();
        let watermark_match = if self.watermark_slots.is_empty() {
            0.0
        } else {
            matches as f64 / self.watermark_slots.len() as f64
        };
        let buyer_bits = self.fingerprint_slots.iter().map(|&s| all[s]).collect();
        ProtectionVerdict {
            watermark_match,
            authorship_established: watermark_match >= 0.9,
            buyer_bits,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use odcfp_netlist::CellLibrary;
    use odcfp_synth::benchmarks::random::{random_dag, DagParams};

    fn protected(key: u64) -> ProtectedIp {
        let base = random_dag(
            CellLibrary::standard(),
            DagParams {
                inputs: 12,
                gates: 160,
                outputs: 8,
                window: 32,
                seed: 3000,
            },
        );
        ProtectedIp::new(Fingerprinter::new(base).unwrap(), key)
    }

    #[test]
    fn slots_partition_all_locations() {
        let p = protected(0x5EC7);
        let n = p.engine().locations().len();
        assert_eq!(p.watermark_len() + p.fingerprint_len(), n);
        assert!(p.watermark_len() > 0, "some watermark slots expected");
        assert!(p.fingerprint_len() > 0);
    }

    #[test]
    fn minted_copies_share_watermark_differ_in_fingerprint() {
        let p = protected(0xABCD);
        let a = p.mint_seeded(1).unwrap();
        let b = p.mint_seeded(2).unwrap();
        let va = p.verify(a.netlist());
        let vb = p.verify(b.netlist());
        assert!(va.authorship_established);
        assert!(vb.authorship_established);
        assert_eq!(va.watermark_match, 1.0);
        assert_ne!(va.buyer_bits, vb.buyer_bits, "buyers must differ");
    }

    #[test]
    fn unmarked_design_fails_authorship() {
        let p = protected(0xABCD);
        let verdict = p.verify(p.engine().base());
        // The base carries no modifications: only watermark bits that
        // happen to be 0 match.
        assert!(
            !verdict.authorship_established || p.watermark_bits.iter().all(|&b| !b),
            "unmarked design should not establish authorship: {verdict:?}"
        );
    }

    #[test]
    fn wrong_key_sees_no_watermark() {
        let p = protected(0xABCD);
        let copy = p.mint_seeded(7).unwrap();
        let wrong = ProtectedIp::new(p.engine().clone(), 0xBEEF);
        let verdict = wrong.verify(copy.netlist());
        assert!(
            verdict.watermark_match < 0.9,
            "a different key must not validate: {}",
            verdict.watermark_match
        );
    }

    #[test]
    fn buyer_bits_roundtrip() {
        let p = protected(0x1234);
        let bits: Vec<bool> = (0..p.fingerprint_len()).map(|i| i % 3 == 0).collect();
        let copy = p.mint(&bits).unwrap();
        let verdict = p.verify(copy.netlist());
        assert!(verdict.authorship_established);
        assert_eq!(verdict.buyer_bits, bits);
    }

    #[test]
    fn length_mismatch_rejected() {
        let p = protected(0x1234);
        assert!(matches!(
            p.mint(&[]),
            Err(FingerprintError::BitLengthMismatch { .. })
        ));
    }
}
