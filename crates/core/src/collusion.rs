//! The collusion attack of §III-E and designer-side tracing.
//!
//! An attacker holding several fingerprinted copies can diff their layouts:
//! every location where the copies disagree is *exposed* (the attacker sees
//! the optional wire present in one copy and absent in another) and can be
//! set arbitrarily in a forged copy. Locations where all held copies agree
//! stay *hidden* — the attacker cannot distinguish them from ordinary
//! structure, so the forged copy necessarily inherits those bits. Tracing
//! exploits exactly that residue.

use odcfp_logic::rng::Xoshiro256;
use odcfp_netlist::Netlist;

use crate::{FingerprintError, Fingerprinter, FingerprintedCopy};

/// What a collusion of copies reveals.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CollusionReport {
    /// Location indices where the colluders' bits differ (attacker-visible).
    pub exposed: Vec<usize>,
    /// Location indices where every colluder agrees (attacker-blind); the
    /// shared bit value is attached.
    pub hidden: Vec<(usize, bool)>,
}

impl CollusionReport {
    /// Fraction of locations exposed by this collusion, in `[0, 1]`.
    pub fn exposure_rate(&self) -> f64 {
        let total = self.exposed.len() + self.hidden.len();
        if total == 0 {
            0.0
        } else {
            self.exposed.len() as f64 / total as f64
        }
    }
}

/// Diffs the colluders' copies (by extracting each one's bits against the
/// base) and reports which locations their comparison exposes.
///
/// # Panics
///
/// Panics if `copies` is empty or bit lengths disagree (copies from a
/// different engine).
pub fn analyze_collusion(fp: &Fingerprinter, copies: &[&Netlist]) -> CollusionReport {
    assert!(!copies.is_empty(), "collusion needs at least one copy");
    let bit_sets: Vec<Vec<bool>> = copies.iter().map(|c| fp.extract(c)).collect();
    let n = bit_sets[0].len();
    assert!(
        bit_sets.iter().all(|b| b.len() == n),
        "copies disagree on location count"
    );
    let mut exposed = Vec::new();
    let mut hidden = Vec::new();
    for i in 0..n {
        let first = bit_sets[0][i];
        if bit_sets.iter().all(|b| b[i] == first) {
            hidden.push((i, first));
        } else {
            exposed.push(i);
        }
    }
    CollusionReport { exposed, hidden }
}

/// How the attacker sets the bits they exposed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ForgeStrategy {
    /// Disconnect every exposed wire (remove what fingerprint they can see).
    ClearExposed,
    /// Majority vote of the held copies per exposed location.
    Majority,
    /// Random choice per exposed location, seeded.
    Random(u64),
}

/// Forges the copy a colluding attacker would produce: hidden bits are
/// inherited (the attacker cannot see them), exposed bits are set per
/// `strategy`.
///
/// # Errors
///
/// Propagates embedding errors.
///
/// # Panics
///
/// Panics if `copies` is empty.
pub fn forge(
    fp: &Fingerprinter,
    copies: &[&Netlist],
    strategy: ForgeStrategy,
) -> Result<FingerprintedCopy, FingerprintError> {
    let report = analyze_collusion(fp, copies);
    let bit_sets: Vec<Vec<bool>> = copies.iter().map(|c| fp.extract(c)).collect();
    let n = fp.locations().len();
    let mut bits = vec![false; n];
    for &(i, v) in &report.hidden {
        bits[i] = v;
    }
    let mut rng = match strategy {
        ForgeStrategy::Random(seed) => Some(Xoshiro256::seed_from_u64(seed)),
        _ => None,
    };
    for &i in &report.exposed {
        bits[i] = match strategy {
            ForgeStrategy::ClearExposed => false,
            ForgeStrategy::Majority => {
                let ones = bit_sets.iter().filter(|b| b[i]).count();
                ones * 2 > bit_sets.len()
            }
            ForgeStrategy::Random(_) => rng.as_mut().expect("seeded").next_bool(),
        };
    }
    fp.embed(&bits)
}

/// Agreement score between a forged bit string and one buyer's registered
/// bits: the fraction of locations on which they match.
///
/// # Example
///
/// ```
/// use odcfp_core::collusion::agreement;
/// assert_eq!(agreement(&[true, false, true], &[true, true, true]), 2.0 / 3.0);
/// ```
pub fn agreement(forged: &[bool], buyer: &[bool]) -> f64 {
    assert_eq!(forged.len(), buyer.len(), "bit length mismatch");
    if forged.is_empty() {
        return 0.0;
    }
    let matches = forged.iter().zip(buyer).filter(|(a, b)| a == b).count();
    matches as f64 / forged.len() as f64
}

/// Containment score: the fraction of the forged copy's *set* bits (wires
/// present) that the buyer's registered copy also carries.
///
/// This is the sharp tracing signal: an extra wire in a forged copy is
/// either a hidden bit (shared by **every** colluder) or an exposed bit at
/// least one colluder carried, so true colluders score at or near 1.0 while
/// innocent buyers match each surviving wire only by coincidence. A forged
/// copy with no set bits scores 1.0 for everyone (no information — the
/// attackers destroyed the whole fingerprint, which §III-E concedes).
///
/// # Example
///
/// ```
/// use odcfp_core::collusion::containment;
/// // The buyer carries both surviving wires: fully contained.
/// assert_eq!(containment(&[true, false, true], &[true, true, true]), 1.0);
/// // Missing one of the two surviving wires.
/// assert_eq!(containment(&[true, false, true], &[true, false, false]), 0.5);
/// ```
pub fn containment(forged: &[bool], buyer: &[bool]) -> f64 {
    assert_eq!(forged.len(), buyer.len(), "bit length mismatch");
    let total = forged.iter().filter(|&&f| f).count();
    if total == 0 {
        return 1.0;
    }
    let covered = forged
        .iter()
        .zip(buyer)
        .filter(|&(&f, &b)| f && b)
        .count();
    covered as f64 / total as f64
}

/// One buyer's tracing score.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SuspectScore {
    /// Index into the registry.
    pub buyer: usize,
    /// Set-bit containment (primary ranking key).
    pub containment: f64,
    /// Whole-string agreement (tie breaker).
    pub agreement: f64,
}

/// Ranks registered buyers against a recovered (possibly forged) bit
/// string, most suspicious first — the designer's tracing step. Primary
/// key is [`containment`] of the surviving wires, with [`agreement`] as
/// the tie breaker.
pub fn trace_suspects(forged: &[bool], registry: &[Vec<bool>]) -> Vec<(usize, f64)> {
    let mut scored = score_suspects(forged, registry);
    scored.sort_by(|a, b| {
        (b.containment, b.agreement)
            .partial_cmp(&(a.containment, a.agreement))
            .expect("finite scores")
    });
    scored
        .into_iter()
        .map(|s| (s.buyer, s.containment))
        .collect()
}

/// Computes both tracing metrics for every registered buyer, in registry
/// order.
pub fn score_suspects(forged: &[bool], registry: &[Vec<bool>]) -> Vec<SuspectScore> {
    registry
        .iter()
        .enumerate()
        .map(|(i, bits)| SuspectScore {
            buyer: i,
            containment: containment(forged, bits),
            agreement: agreement(forged, bits),
        })
        .collect()
}

/// A bit-packed tracing index over a registered buyer population.
///
/// [`trace_suspects`] compares the forged string against every buyer
/// bit-by-bit — `O(N·L)` boolean operations and one heap-allocated
/// `Vec<bool>` per buyer, which at `N = 10^6` codebooks is both slow and
/// 8× larger than the information content. The index stores one
/// *position plane* per location (a bitmap over buyers: bit `b` of plane
/// `ℓ` = buyer `b`'s bit at location `ℓ`) plus each buyer's popcount.
/// Tracing then never touches individual buyers: the forged string's set
/// positions select ≤ `L` planes, which a carry-save bit-sliced adder
/// folds into per-buyer overlap counts at 64 buyers per word —
/// `O(L · N/64 · log L)` word operations, a ~`64/log L`-fold cut in work
/// with sequential memory access.
///
/// Both tracing metrics are then recovered from the same integers the
/// pairwise scorer divides:
///
/// * `containment = |f ∧ b| / |f|` — `|f ∧ b|` is the accumulated count;
/// * `agreement = (L - |f| - |b| + 2·|f ∧ b|) / L` — since matches =
///   both-ones + both-zeros.
///
/// Because the operands are bit-for-bit the integers the scalar path
/// counts, every score — and therefore every ranking, including
/// tie-breaks — is **identical** to [`trace_suspects`], not merely
/// close. The tests enforce this verdict-for-verdict.
#[derive(Debug, Clone)]
pub struct TracerIndex {
    locations: usize,
    buyers: usize,
    /// `planes[l][w]`: bit `b` of word `w` = buyer `64w+b`'s bit at `l`.
    planes: Vec<Vec<u64>>,
    /// Per-buyer popcount (`|b|`), for the agreement reconstruction.
    pop: Vec<u32>,
}

impl TracerIndex {
    /// An empty index over codes of `locations` bits.
    pub fn new(locations: usize) -> TracerIndex {
        TracerIndex {
            locations,
            buyers: 0,
            planes: vec![Vec::new(); locations],
            pop: Vec::new(),
        }
    }

    /// Builds an index from a materialized registry (compatibility with
    /// the [`trace_suspects`] calling convention).
    ///
    /// # Panics
    ///
    /// Panics if registry rows disagree on bit length.
    pub fn from_registry(registry: &[Vec<bool>]) -> TracerIndex {
        let locations = registry.first().map_or(0, Vec::len);
        let mut index = TracerIndex::new(locations);
        for bits in registry {
            index.push(bits);
        }
        index
    }

    /// Registers one buyer's bits; returns their index (= push order, so
    /// feeding codebook records in buyer order makes indices buyer ids).
    ///
    /// # Panics
    ///
    /// Panics on a bit-length mismatch.
    pub fn push(&mut self, bits: &[bool]) -> usize {
        assert_eq!(bits.len(), self.locations, "bit length mismatch");
        let buyer = self.buyers;
        let (word, bit) = (buyer / 64, buyer % 64);
        let mut pop = 0u32;
        for (l, &v) in bits.iter().enumerate() {
            if v {
                let plane = &mut self.planes[l];
                if plane.len() <= word {
                    plane.resize(word + 1, 0);
                }
                plane[word] |= 1u64 << bit;
                pop += 1;
            }
        }
        self.pop.push(pop);
        self.buyers += 1;
        buyer
    }

    /// Registered buyers.
    pub fn len(&self) -> usize {
        self.buyers
    }

    /// `true` when no buyer is registered.
    pub fn is_empty(&self) -> bool {
        self.buyers == 0
    }

    /// Bits per code.
    pub fn locations(&self) -> usize {
        self.locations
    }

    /// Per-buyer `|f ∧ b|` via the carry-save bit-sliced adder.
    fn overlap_counts(&self, forged: &[bool]) -> Vec<u32> {
        let words = self.buyers.div_ceil(64);
        // `acc[i]` holds bit `i` of every buyer's running count.
        let mut acc: Vec<Vec<u64>> = Vec::new();
        let mut carry = vec![0u64; words];
        for (l, &f) in forged.iter().enumerate() {
            if !f {
                continue;
            }
            let plane = &self.planes[l];
            carry[..plane.len()].copy_from_slice(plane);
            carry[plane.len()..].fill(0);
            let mut live = carry.iter().any(|&w| w != 0);
            for level in &mut acc {
                if !live {
                    break;
                }
                live = false;
                for (a, c) in level.iter_mut().zip(carry.iter_mut()) {
                    let t = *a & *c;
                    *a ^= *c;
                    *c = t;
                    live |= t != 0;
                }
            }
            if live {
                acc.push(carry.clone());
            }
        }
        let mut counts = vec![0u32; self.buyers];
        for (i, level) in acc.iter().enumerate() {
            for (w, &word) in level.iter().enumerate() {
                let mut rest = word;
                while rest != 0 {
                    let b = w * 64 + rest.trailing_zeros() as usize;
                    counts[b] += 1 << i;
                    rest &= rest - 1;
                }
            }
        }
        counts
    }

    /// Scores every buyer, in registry order — value-identical to
    /// [`score_suspects`] over the same population.
    ///
    /// # Panics
    ///
    /// Panics on a bit-length mismatch.
    pub fn score(&self, forged: &[bool]) -> Vec<SuspectScore> {
        assert_eq!(forged.len(), self.locations, "bit length mismatch");
        let total = forged.iter().filter(|&&f| f).count();
        let counts = self.overlap_counts(forged);
        let len = self.locations;
        counts
            .iter()
            .enumerate()
            .map(|(buyer, &covered)| {
                // Same integer operands, same divisions, as the scalar
                // `containment`/`agreement` — results are bit-identical.
                let containment = if total == 0 {
                    1.0
                } else {
                    f64::from(covered) / total as f64
                };
                let agreement = if len == 0 {
                    0.0
                } else {
                    // Additions first: the final value (= match count)
                    // is non-negative, but `len - total - pop` alone
                    // can underflow usize.
                    let matches =
                        (len + 2 * covered as usize) - total - self.pop[buyer] as usize;
                    matches as f64 / len as f64
                };
                SuspectScore {
                    buyer,
                    containment,
                    agreement,
                }
            })
            .collect()
    }

    /// Ranks the population, most suspicious first — order-identical to
    /// [`trace_suspects`] over the same registry.
    ///
    /// # Panics
    ///
    /// Panics on a bit-length mismatch.
    pub fn trace(&self, forged: &[bool]) -> Vec<(usize, f64)> {
        let mut scored = self.score(forged);
        scored.sort_by(|a, b| {
            (b.containment, b.agreement)
                .partial_cmp(&(a.containment, a.agreement))
                .expect("finite scores")
        });
        scored
            .into_iter()
            .map(|s| (s.buyer, s.containment))
            .collect()
    }

    /// The `k` most suspicious buyers with both metrics — what a
    /// million-buyer tracing report actually wants (the full ranking is
    /// a megabyte of innocents).
    ///
    /// # Panics
    ///
    /// Panics on a bit-length mismatch.
    pub fn trace_top(&self, forged: &[bool], k: usize) -> Vec<SuspectScore> {
        let mut scored = self.score(forged);
        scored.sort_by(|a, b| {
            (b.containment, b.agreement)
                .partial_cmp(&(a.containment, a.agreement))
                .expect("finite scores")
        });
        scored.truncate(k);
        scored
    }

    /// Traces a recovered bit string to a structured [`TraceVerdict`]
    /// instead of a bare ranking.
    ///
    /// A ranking alone invites misreading: *someone* is always ranked
    /// first, even when the recovered string carries no evidence at all
    /// (every wire stripped) or matches half the population (averaged
    /// into noise). The verdict makes the statistical decision explicit —
    /// see [`TraceParams`] for the threshold construction — and
    /// classifies the trace as [`Convicted`](TraceOutcome::Convicted),
    /// [`Inconclusive`](TraceOutcome::Inconclusive), or
    /// [`InnocentRisk`](TraceOutcome::InnocentRisk).
    ///
    /// The ranking inside the verdict is produced by the same scoring and
    /// sort as [`TracerIndex::trace_top`], so it stays bit-identical to
    /// the pairwise oracle ([`score_suspects`] + the containment/agreement
    /// sort); the verdict only *interprets* it.
    ///
    /// # Panics
    ///
    /// Panics on a bit-length mismatch.
    pub fn verdict(&self, recovered: &[bool], params: &TraceParams) -> TraceVerdict {
        let mut scored = self.score(recovered);
        scored.sort_by(|a, b| {
            (b.containment, b.agreement)
                .partial_cmp(&(a.containment, a.agreement))
                .expect("finite scores")
        });
        let evidence_wires = recovered.iter().filter(|&&f| f).count();
        let threshold = params.containment_threshold(evidence_wires);
        let agreement_threshold = params.agreement_threshold(self.locations);
        // The accusation count sweeps the whole population, not just the
        // reported top-k — a flooded threshold must not look clean.
        let cleared: Vec<SuspectScore> = scored
            .iter()
            .filter(|s| s.containment >= threshold || s.agreement >= agreement_threshold)
            .copied()
            .collect();
        let limit = (params.max_convicted_fraction * self.buyers as f64).ceil() as usize;
        let outcome = if evidence_wires < params.min_evidence || cleared.is_empty() {
            TraceOutcome::Inconclusive
        } else if cleared.len() > limit.max(1) {
            TraceOutcome::InnocentRisk
        } else {
            TraceOutcome::Convicted
        };
        scored.truncate(params.top_k.max(1));
        TraceVerdict {
            outcome,
            convicted: if outcome == TraceOutcome::Convicted {
                cleared
            } else {
                Vec::new()
            },
            ranking: scored,
            evidence_wires,
            threshold,
            agreement_threshold,
        }
    }
}

/// Tuning knobs for [`TracerIndex::verdict`].
///
/// Both conviction thresholds are derived from the innocent-buyer
/// baseline: an innocent's bit at any location is an independent coin
/// flip, so over `s` surviving evidence wires their containment is
/// `Binomial(s, ½)/s` — mean `½`, standard deviation `½/√s` — and over
/// all `L` locations their agreement is `Binomial(L, ½)/L`. A buyer
/// convicts when **either** statistic sits `sigma` innocent standard
/// deviations above chance:
///
/// * containment ≥ `½ + sigma·½/√s` — sharp against AND-style mixing,
///   where every surviving wire is carried by every colluder;
/// * agreement ≥ `½ + sigma·½/√L` — sharp against averaging mixes, whose
///   per-wire signal is diluted to `≈ 1/(2n)` but present at *every*
///   location, set or clear, so the wider evidence base wins.
///
/// With the default `sigma = 3.5` each test's per-innocent
/// false-accusation probability is ≈ 2·10⁻⁴; callers tracing very large
/// populations should raise `sigma` (≈ `√(2·ln N)` keeps the *expected*
/// number of false accusations below one).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TraceParams {
    /// Minimum surviving evidence wires for any conviction; below this
    /// the verdict is [`TraceOutcome::Inconclusive`]. Default 16.
    pub min_evidence: usize,
    /// Innocent standard deviations above chance required to convict.
    /// Default 3.5.
    pub sigma: f64,
    /// If more than this fraction of the population clears a threshold
    /// (at least one buyer is always tolerated), the verdict degrades to
    /// [`TraceOutcome::InnocentRisk`]: the evidence accuses so broadly it
    /// cannot be trusted. Default 0.25.
    pub max_convicted_fraction: f64,
    /// Length of the reported ranking (the accusation *count* always
    /// considers the whole population). Default 8.
    pub top_k: usize,
}

impl Default for TraceParams {
    fn default() -> Self {
        TraceParams {
            min_evidence: 16,
            sigma: 3.5,
            max_convicted_fraction: 0.25,
            top_k: 8,
        }
    }
}

impl TraceParams {
    /// The containment a buyer must reach to convict, given `s` surviving
    /// evidence wires. Infinite when `s = 0` (no evidence convicts no
    /// one).
    pub fn containment_threshold(&self, evidence_wires: usize) -> f64 {
        if evidence_wires == 0 {
            f64::INFINITY
        } else {
            0.5 + self.sigma * 0.5 / (evidence_wires as f64).sqrt()
        }
    }

    /// The agreement a buyer must reach to convict, given `locations`
    /// bits per code.
    pub fn agreement_threshold(&self, locations: usize) -> f64 {
        if locations == 0 {
            f64::INFINITY
        } else {
            0.5 + self.sigma * 0.5 / (locations as f64).sqrt()
        }
    }
}

/// The statistical outcome of a trace — see [`TracerIndex::verdict`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum TraceOutcome {
    /// At least one buyer sits provably above the innocent baseline.
    Convicted,
    /// Nobody clears the threshold, or the evidence is too thin to
    /// support any accusation.
    Inconclusive,
    /// The threshold accuses an implausibly large share of the
    /// population; treating the ranking as convictions would accuse
    /// innocents.
    InnocentRisk,
}

impl TraceOutcome {
    /// Stable lowercase name (used in traces and scorecards).
    pub fn name(self) -> &'static str {
        match self {
            TraceOutcome::Convicted => "convicted",
            TraceOutcome::Inconclusive => "inconclusive",
            TraceOutcome::InnocentRisk => "innocent-risk",
        }
    }
}

/// A structured tracing decision: the interpreted outcome plus the
/// bit-identical ranking it interprets.
#[derive(Debug, Clone, PartialEq)]
pub struct TraceVerdict {
    /// The statistical decision.
    pub outcome: TraceOutcome,
    /// Buyers above the conviction threshold, most suspicious first.
    /// Empty unless `outcome` is [`TraceOutcome::Convicted`].
    pub convicted: Vec<SuspectScore>,
    /// The top of the underlying ranking (identical to
    /// [`TracerIndex::trace_top`]), reported regardless of outcome.
    pub ranking: Vec<SuspectScore>,
    /// Surviving evidence wires (set bits in the recovered string).
    pub evidence_wires: usize,
    /// The containment threshold that was applied.
    pub threshold: f64,
    /// The agreement threshold that was applied.
    pub agreement_threshold: f64,
}

#[cfg(test)]
mod tests {
    use super::*;
    use odcfp_netlist::CellLibrary;
    use odcfp_synth::benchmarks::random::{random_dag, DagParams};

    fn engine() -> Fingerprinter {
        let lib = CellLibrary::standard();
        let base = random_dag(
            lib,
            DagParams {
                inputs: 12,
                gates: 120,
                outputs: 8,
                window: 30,
                seed: 777,
            },
        );
        Fingerprinter::new(base).unwrap()
    }

    #[test]
    fn collusion_exposes_exactly_differing_locations() {
        let fp = engine();
        let n = fp.locations().len();
        assert!(n >= 4, "need a few locations, got {n}");
        let a = fp.embed_seeded(1).unwrap();
        let b = fp.embed_seeded(2).unwrap();
        let report = analyze_collusion(&fp, &[a.netlist(), b.netlist()]);
        for &i in &report.exposed {
            assert_ne!(a.bits()[i], b.bits()[i]);
        }
        for &(i, v) in &report.hidden {
            assert_eq!(a.bits()[i], b.bits()[i]);
            assert_eq!(a.bits()[i], v);
        }
        assert_eq!(report.exposed.len() + report.hidden.len(), n);
        assert!(report.exposure_rate() > 0.0 && report.exposure_rate() < 1.0);
    }

    #[test]
    fn single_copy_exposes_nothing() {
        let fp = engine();
        let a = fp.embed_seeded(3).unwrap();
        let report = analyze_collusion(&fp, &[a.netlist()]);
        assert!(report.exposed.is_empty());
        assert_eq!(report.exposure_rate(), 0.0);
    }

    #[test]
    fn more_colluders_expose_more() {
        let fp = engine();
        let copies: Vec<_> = (0..5).map(|s| fp.embed_seeded(s).unwrap()).collect();
        let two = analyze_collusion(&fp, &[copies[0].netlist(), copies[1].netlist()]);
        let all: Vec<&Netlist> = copies.iter().map(|c| c.netlist()).collect();
        let five = analyze_collusion(&fp, &all);
        assert!(five.exposed.len() >= two.exposed.len());
    }

    #[test]
    fn forged_copy_keeps_hidden_bits_and_stays_functional() {
        let fp = engine();
        let a = fp.embed_seeded(10).unwrap();
        let b = fp.embed_seeded(11).unwrap();
        let report = analyze_collusion(&fp, &[a.netlist(), b.netlist()]);
        for strategy in [
            ForgeStrategy::ClearExposed,
            ForgeStrategy::Majority,
            ForgeStrategy::Random(9),
        ] {
            let forged = forge(&fp, &[a.netlist(), b.netlist()], strategy).unwrap();
            // Hidden bits survive in the forged copy.
            for &(i, v) in &report.hidden {
                assert_eq!(forged.bits()[i], v, "{strategy:?} hidden bit {i}");
            }
            // The forgery is still a functional copy (embed verified it).
            assert_eq!(forged.bits().len(), fp.locations().len());
        }
    }

    #[test]
    fn tracing_ranks_colluders_first() {
        let fp = engine();
        let n_buyers = 8;
        let copies: Vec<_> = (0..n_buyers)
            .map(|s| fp.embed_seeded(s as u64 * 31 + 5).unwrap())
            .collect();
        let registry: Vec<Vec<bool>> =
            copies.iter().map(|c| c.bits().to_vec()).collect();
        // Buyers 2 and 5 collude and clear what they can see.
        let forged = forge(
            &fp,
            &[copies[2].netlist(), copies[5].netlist()],
            ForgeStrategy::ClearExposed,
        )
        .unwrap();
        let recovered = fp.extract(forged.netlist());
        let ranking = trace_suspects(&recovered, &registry);
        let top2: Vec<usize> = ranking.iter().take(2).map(|&(i, _)| i).collect();
        assert!(
            top2.contains(&2) && top2.contains(&5),
            "colluders should rank first: {ranking:?}"
        );
    }

    #[test]
    fn agreement_bounds() {
        assert_eq!(agreement(&[true, false], &[true, false]), 1.0);
        assert_eq!(agreement(&[true, false], &[false, true]), 0.0);
        assert_eq!(agreement(&[true, true], &[true, false]), 0.5);
        assert_eq!(agreement(&[], &[]), 0.0);
    }

    #[test]
    fn containment_bounds() {
        assert_eq!(containment(&[true, true], &[true, true]), 1.0);
        assert_eq!(containment(&[true, true], &[true, false]), 0.5);
        assert_eq!(containment(&[false, false], &[true, false]), 1.0, "no wires, no info");
        // Buyer's extra wires do not hurt containment.
        assert_eq!(containment(&[true, false], &[true, true]), 1.0);
    }

    /// Random registry of `n` buyers × `l` locations plus a forged
    /// string, deterministically seeded.
    fn random_population(seed: u64, n: usize, l: usize) -> (Vec<Vec<bool>>, Vec<bool>) {
        let mut rng = Xoshiro256::seed_from_u64(seed);
        let registry: Vec<Vec<bool>> = (0..n)
            .map(|_| (0..l).map(|_| rng.next_bool()).collect())
            .collect();
        let forged: Vec<bool> = (0..l).map(|_| rng.next_bool()).collect();
        (registry, forged)
    }

    #[test]
    fn index_scores_are_bit_identical_to_pairwise() {
        // Sweep populations crossing the 64-buyer word boundary and odd
        // code lengths; every score must equal the pairwise oracle's
        // f64 exactly (same integers, same divisions).
        for (seed, n, l) in [
            (1u64, 1usize, 1usize),
            (2, 7, 3),
            (3, 63, 17),
            (4, 64, 33),
            (5, 65, 64),
            (6, 200, 71),
        ] {
            let (registry, forged) = random_population(seed, n, l);
            let oracle = score_suspects(&forged, &registry);
            let index = TracerIndex::from_registry(&registry);
            assert_eq!(index.len(), n);
            let fast = index.score(&forged);
            assert_eq!(fast.len(), oracle.len());
            for (f, o) in fast.iter().zip(&oracle) {
                assert_eq!(f.buyer, o.buyer);
                assert_eq!(
                    f.containment.to_bits(),
                    o.containment.to_bits(),
                    "containment n={n} l={l} buyer {}",
                    f.buyer
                );
                assert_eq!(
                    f.agreement.to_bits(),
                    o.agreement.to_bits(),
                    "agreement n={n} l={l} buyer {}",
                    f.buyer
                );
            }
            // Full rankings agree element-for-element (ties included,
            // since both sorts are stable over identical keys).
            assert_eq!(index.trace(&forged), trace_suspects(&forged, &registry));
        }
    }

    #[test]
    fn index_handles_empty_forged_string_like_the_oracle() {
        let (registry, _) = random_population(9, 50, 12);
        let forged = vec![false; 12];
        let index = TracerIndex::from_registry(&registry);
        for s in index.score(&forged) {
            assert_eq!(s.containment, 1.0, "no surviving wires → no information");
        }
        assert_eq!(index.trace(&forged), trace_suspects(&forged, &registry));
    }

    #[test]
    fn index_traces_real_coalitions_identically_to_pairwise() {
        // The guard the CI job relies on: random coalitions up to n = 8,
        // all forge strategies, index ranking == pairwise oracle.
        let fp = engine();
        let copies: Vec<_> = (0..12u64).map(|s| fp.embed_seeded(s * 13 + 3).unwrap()).collect();
        let registry: Vec<Vec<bool>> = copies.iter().map(|c| c.bits().to_vec()).collect();
        let index = TracerIndex::from_registry(&registry);
        let mut rng = Xoshiro256::seed_from_u64(0xC0A1);
        for round in 0..6 {
            let size = 2 + (rng.next_u64() % 7) as usize; // 2..=8
            let mut members: Vec<usize> = (0..registry.len()).collect();
            for i in (1..members.len()).rev() {
                members.swap(i, (rng.next_u64() % (i as u64 + 1)) as usize);
            }
            members.truncate(size);
            let held: Vec<&Netlist> = members.iter().map(|&i| copies[i].netlist()).collect();
            for strategy in [
                ForgeStrategy::ClearExposed,
                ForgeStrategy::Majority,
                ForgeStrategy::Random(round as u64),
            ] {
                let forged = forge(&fp, &held, strategy).unwrap();
                let recovered = fp.extract(forged.netlist());
                assert_eq!(
                    index.trace(&recovered),
                    trace_suspects(&recovered, &registry),
                    "round {round} coalition {members:?} {strategy:?}"
                );
                let top = index.trace_top(&recovered, 3);
                let full = index.trace(&recovered);
                for (t, f) in top.iter().zip(&full) {
                    assert_eq!((t.buyer, t.containment), *f);
                }
            }
        }
    }

    #[test]
    fn verdict_ranking_is_bit_identical_to_pairwise_oracle() {
        // The structured verdict interprets the ranking, it must not
        // perturb it: element-for-element equality with the pairwise
        // oracle's sort, f64 bits included.
        for (seed, n, l) in [(11u64, 40usize, 33usize), (12, 65, 80), (13, 129, 129)] {
            let (registry, forged) = random_population(seed, n, l);
            let index = TracerIndex::from_registry(&registry);
            let params = TraceParams { top_k: n, ..TraceParams::default() };
            let verdict = index.verdict(&forged, &params);
            let mut oracle = score_suspects(&forged, &registry);
            oracle.sort_by(|a, b| {
                (b.containment, b.agreement)
                    .partial_cmp(&(a.containment, a.agreement))
                    .expect("finite scores")
            });
            assert_eq!(verdict.ranking.len(), oracle.len());
            for (v, o) in verdict.ranking.iter().zip(&oracle) {
                assert_eq!(v.buyer, o.buyer);
                assert_eq!(v.containment.to_bits(), o.containment.to_bits());
                assert_eq!(v.agreement.to_bits(), o.agreement.to_bits());
            }
            assert_eq!(verdict.ranking, index.trace_top(&forged, n));
        }
    }

    #[test]
    fn verdict_convicts_clear_exposed_coalition_without_innocents() {
        // Needs enough locations that the coalition's hidden-one residue
        // clears `min_evidence`; the default 120-gate DAG is too small.
        let lib = CellLibrary::standard();
        let base = random_dag(
            lib,
            DagParams {
                inputs: 16,
                gates: 1400,
                outputs: 12,
                window: 40,
                seed: 778,
            },
        );
        let fp = Fingerprinter::new(base).unwrap();
        assert!(
            fp.locations().len() >= 100,
            "need a realistic code length, got {}",
            fp.locations().len()
        );
        let copies: Vec<_> = (0..10u64).map(|s| fp.embed_seeded(s * 17 + 2).unwrap()).collect();
        let registry: Vec<Vec<bool>> = copies.iter().map(|c| c.bits().to_vec()).collect();
        let index = TracerIndex::from_registry(&registry);
        let colluders = [1usize, 4];
        let held: Vec<&Netlist> = colluders.iter().map(|&i| copies[i].netlist()).collect();
        let forged = forge(&fp, &held, ForgeStrategy::ClearExposed).unwrap();
        let recovered = fp.extract(forged.netlist());
        let verdict = index.verdict(&recovered, &TraceParams::default());
        assert_eq!(verdict.outcome, TraceOutcome::Convicted, "{verdict:?}");
        let accused: Vec<usize> = verdict.convicted.iter().map(|s| s.buyer).collect();
        for b in &accused {
            assert!(colluders.contains(b), "innocent buyer {b} accused: {verdict:?}");
        }
        assert!(!accused.is_empty());
    }

    #[test]
    fn verdict_is_inconclusive_on_stripped_fingerprint() {
        let (registry, _) = random_population(21, 30, 100);
        let index = TracerIndex::from_registry(&registry);
        let stripped = vec![false; 100];
        let verdict = index.verdict(&stripped, &TraceParams::default());
        assert_eq!(verdict.outcome, TraceOutcome::Inconclusive);
        assert!(verdict.convicted.is_empty());
        assert_eq!(verdict.evidence_wires, 0);
        // The ranking is still reported (everyone at containment 1.0),
        // which is exactly the misreading the outcome guards against.
        assert!(!verdict.ranking.is_empty());
    }

    #[test]
    fn verdict_flags_innocent_risk_when_threshold_floods() {
        // Every buyer carries every wire: the evidence "convicts" the
        // whole population, which must be reported as innocent risk.
        let registry: Vec<Vec<bool>> = vec![vec![true; 64]; 12];
        let index = TracerIndex::from_registry(&registry);
        let mut forged = vec![false; 64];
        for b in forged.iter_mut().take(32) {
            *b = true;
        }
        let verdict = index.verdict(&forged, &TraceParams::default());
        assert_eq!(verdict.outcome, TraceOutcome::InnocentRisk);
        assert!(verdict.convicted.is_empty());
    }

    #[test]
    fn index_scales_to_large_populations() {
        // 10^4 buyers is the in-tree smoke (the bench binary pushes
        // 10^5+); correctness against the oracle stays exact.
        let (registry, forged) = random_population(77, 10_000, 64);
        let index = TracerIndex::from_registry(&registry);
        assert_eq!(index.trace(&forged), trace_suspects(&forged, &registry));
    }

    #[test]
    fn clear_exposed_colluders_have_full_containment() {
        let fp = engine();
        let copies: Vec<_> = (0..6).map(|s| fp.embed_seeded(s * 7 + 1).unwrap()).collect();
        let held: Vec<&Netlist> = copies[..3].iter().map(|c| c.netlist()).collect();
        let forged = forge(&fp, &held, ForgeStrategy::ClearExposed).unwrap();
        let recovered = fp.extract(forged.netlist());
        for colluder in copies[..3].iter() {
            assert_eq!(
                containment(&recovered, colluder.bits()),
                1.0,
                "every surviving wire is carried by every colluder"
            );
        }
    }
}
