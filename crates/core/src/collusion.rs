//! The collusion attack of §III-E and designer-side tracing.
//!
//! An attacker holding several fingerprinted copies can diff their layouts:
//! every location where the copies disagree is *exposed* (the attacker sees
//! the optional wire present in one copy and absent in another) and can be
//! set arbitrarily in a forged copy. Locations where all held copies agree
//! stay *hidden* — the attacker cannot distinguish them from ordinary
//! structure, so the forged copy necessarily inherits those bits. Tracing
//! exploits exactly that residue.

use odcfp_logic::rng::Xoshiro256;
use odcfp_netlist::Netlist;

use crate::{FingerprintError, Fingerprinter, FingerprintedCopy};

/// What a collusion of copies reveals.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CollusionReport {
    /// Location indices where the colluders' bits differ (attacker-visible).
    pub exposed: Vec<usize>,
    /// Location indices where every colluder agrees (attacker-blind); the
    /// shared bit value is attached.
    pub hidden: Vec<(usize, bool)>,
}

impl CollusionReport {
    /// Fraction of locations exposed by this collusion, in `[0, 1]`.
    pub fn exposure_rate(&self) -> f64 {
        let total = self.exposed.len() + self.hidden.len();
        if total == 0 {
            0.0
        } else {
            self.exposed.len() as f64 / total as f64
        }
    }
}

/// Diffs the colluders' copies (by extracting each one's bits against the
/// base) and reports which locations their comparison exposes.
///
/// # Panics
///
/// Panics if `copies` is empty or bit lengths disagree (copies from a
/// different engine).
pub fn analyze_collusion(fp: &Fingerprinter, copies: &[&Netlist]) -> CollusionReport {
    assert!(!copies.is_empty(), "collusion needs at least one copy");
    let bit_sets: Vec<Vec<bool>> = copies.iter().map(|c| fp.extract(c)).collect();
    let n = bit_sets[0].len();
    assert!(
        bit_sets.iter().all(|b| b.len() == n),
        "copies disagree on location count"
    );
    let mut exposed = Vec::new();
    let mut hidden = Vec::new();
    for i in 0..n {
        let first = bit_sets[0][i];
        if bit_sets.iter().all(|b| b[i] == first) {
            hidden.push((i, first));
        } else {
            exposed.push(i);
        }
    }
    CollusionReport { exposed, hidden }
}

/// How the attacker sets the bits they exposed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ForgeStrategy {
    /// Disconnect every exposed wire (remove what fingerprint they can see).
    ClearExposed,
    /// Majority vote of the held copies per exposed location.
    Majority,
    /// Random choice per exposed location, seeded.
    Random(u64),
}

/// Forges the copy a colluding attacker would produce: hidden bits are
/// inherited (the attacker cannot see them), exposed bits are set per
/// `strategy`.
///
/// # Errors
///
/// Propagates embedding errors.
///
/// # Panics
///
/// Panics if `copies` is empty.
pub fn forge(
    fp: &Fingerprinter,
    copies: &[&Netlist],
    strategy: ForgeStrategy,
) -> Result<FingerprintedCopy, FingerprintError> {
    let report = analyze_collusion(fp, copies);
    let bit_sets: Vec<Vec<bool>> = copies.iter().map(|c| fp.extract(c)).collect();
    let n = fp.locations().len();
    let mut bits = vec![false; n];
    for &(i, v) in &report.hidden {
        bits[i] = v;
    }
    let mut rng = match strategy {
        ForgeStrategy::Random(seed) => Some(Xoshiro256::seed_from_u64(seed)),
        _ => None,
    };
    for &i in &report.exposed {
        bits[i] = match strategy {
            ForgeStrategy::ClearExposed => false,
            ForgeStrategy::Majority => {
                let ones = bit_sets.iter().filter(|b| b[i]).count();
                ones * 2 > bit_sets.len()
            }
            ForgeStrategy::Random(_) => rng.as_mut().expect("seeded").next_bool(),
        };
    }
    fp.embed(&bits)
}

/// Agreement score between a forged bit string and one buyer's registered
/// bits: the fraction of locations on which they match.
///
/// # Example
///
/// ```
/// use odcfp_core::collusion::agreement;
/// assert_eq!(agreement(&[true, false, true], &[true, true, true]), 2.0 / 3.0);
/// ```
pub fn agreement(forged: &[bool], buyer: &[bool]) -> f64 {
    assert_eq!(forged.len(), buyer.len(), "bit length mismatch");
    if forged.is_empty() {
        return 0.0;
    }
    let matches = forged.iter().zip(buyer).filter(|(a, b)| a == b).count();
    matches as f64 / forged.len() as f64
}

/// Containment score: the fraction of the forged copy's *set* bits (wires
/// present) that the buyer's registered copy also carries.
///
/// This is the sharp tracing signal: an extra wire in a forged copy is
/// either a hidden bit (shared by **every** colluder) or an exposed bit at
/// least one colluder carried, so true colluders score at or near 1.0 while
/// innocent buyers match each surviving wire only by coincidence. A forged
/// copy with no set bits scores 1.0 for everyone (no information — the
/// attackers destroyed the whole fingerprint, which §III-E concedes).
///
/// # Example
///
/// ```
/// use odcfp_core::collusion::containment;
/// // The buyer carries both surviving wires: fully contained.
/// assert_eq!(containment(&[true, false, true], &[true, true, true]), 1.0);
/// // Missing one of the two surviving wires.
/// assert_eq!(containment(&[true, false, true], &[true, false, false]), 0.5);
/// ```
pub fn containment(forged: &[bool], buyer: &[bool]) -> f64 {
    assert_eq!(forged.len(), buyer.len(), "bit length mismatch");
    let total = forged.iter().filter(|&&f| f).count();
    if total == 0 {
        return 1.0;
    }
    let covered = forged
        .iter()
        .zip(buyer)
        .filter(|&(&f, &b)| f && b)
        .count();
    covered as f64 / total as f64
}

/// One buyer's tracing score.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SuspectScore {
    /// Index into the registry.
    pub buyer: usize,
    /// Set-bit containment (primary ranking key).
    pub containment: f64,
    /// Whole-string agreement (tie breaker).
    pub agreement: f64,
}

/// Ranks registered buyers against a recovered (possibly forged) bit
/// string, most suspicious first — the designer's tracing step. Primary
/// key is [`containment`] of the surviving wires, with [`agreement`] as
/// the tie breaker.
pub fn trace_suspects(forged: &[bool], registry: &[Vec<bool>]) -> Vec<(usize, f64)> {
    let mut scored = score_suspects(forged, registry);
    scored.sort_by(|a, b| {
        (b.containment, b.agreement)
            .partial_cmp(&(a.containment, a.agreement))
            .expect("finite scores")
    });
    scored
        .into_iter()
        .map(|s| (s.buyer, s.containment))
        .collect()
}

/// Computes both tracing metrics for every registered buyer, in registry
/// order.
pub fn score_suspects(forged: &[bool], registry: &[Vec<bool>]) -> Vec<SuspectScore> {
    registry
        .iter()
        .enumerate()
        .map(|(i, bits)| SuspectScore {
            buyer: i,
            containment: containment(forged, bits),
            agreement: agreement(forged, bits),
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use odcfp_netlist::CellLibrary;
    use odcfp_synth::benchmarks::random::{random_dag, DagParams};

    fn engine() -> Fingerprinter {
        let lib = CellLibrary::standard();
        let base = random_dag(
            lib,
            DagParams {
                inputs: 12,
                gates: 120,
                outputs: 8,
                window: 30,
                seed: 777,
            },
        );
        Fingerprinter::new(base).unwrap()
    }

    #[test]
    fn collusion_exposes_exactly_differing_locations() {
        let fp = engine();
        let n = fp.locations().len();
        assert!(n >= 4, "need a few locations, got {n}");
        let a = fp.embed_seeded(1).unwrap();
        let b = fp.embed_seeded(2).unwrap();
        let report = analyze_collusion(&fp, &[a.netlist(), b.netlist()]);
        for &i in &report.exposed {
            assert_ne!(a.bits()[i], b.bits()[i]);
        }
        for &(i, v) in &report.hidden {
            assert_eq!(a.bits()[i], b.bits()[i]);
            assert_eq!(a.bits()[i], v);
        }
        assert_eq!(report.exposed.len() + report.hidden.len(), n);
        assert!(report.exposure_rate() > 0.0 && report.exposure_rate() < 1.0);
    }

    #[test]
    fn single_copy_exposes_nothing() {
        let fp = engine();
        let a = fp.embed_seeded(3).unwrap();
        let report = analyze_collusion(&fp, &[a.netlist()]);
        assert!(report.exposed.is_empty());
        assert_eq!(report.exposure_rate(), 0.0);
    }

    #[test]
    fn more_colluders_expose_more() {
        let fp = engine();
        let copies: Vec<_> = (0..5).map(|s| fp.embed_seeded(s).unwrap()).collect();
        let two = analyze_collusion(&fp, &[copies[0].netlist(), copies[1].netlist()]);
        let all: Vec<&Netlist> = copies.iter().map(|c| c.netlist()).collect();
        let five = analyze_collusion(&fp, &all);
        assert!(five.exposed.len() >= two.exposed.len());
    }

    #[test]
    fn forged_copy_keeps_hidden_bits_and_stays_functional() {
        let fp = engine();
        let a = fp.embed_seeded(10).unwrap();
        let b = fp.embed_seeded(11).unwrap();
        let report = analyze_collusion(&fp, &[a.netlist(), b.netlist()]);
        for strategy in [
            ForgeStrategy::ClearExposed,
            ForgeStrategy::Majority,
            ForgeStrategy::Random(9),
        ] {
            let forged = forge(&fp, &[a.netlist(), b.netlist()], strategy).unwrap();
            // Hidden bits survive in the forged copy.
            for &(i, v) in &report.hidden {
                assert_eq!(forged.bits()[i], v, "{strategy:?} hidden bit {i}");
            }
            // The forgery is still a functional copy (embed verified it).
            assert_eq!(forged.bits().len(), fp.locations().len());
        }
    }

    #[test]
    fn tracing_ranks_colluders_first() {
        let fp = engine();
        let n_buyers = 8;
        let copies: Vec<_> = (0..n_buyers)
            .map(|s| fp.embed_seeded(s as u64 * 31 + 5).unwrap())
            .collect();
        let registry: Vec<Vec<bool>> =
            copies.iter().map(|c| c.bits().to_vec()).collect();
        // Buyers 2 and 5 collude and clear what they can see.
        let forged = forge(
            &fp,
            &[copies[2].netlist(), copies[5].netlist()],
            ForgeStrategy::ClearExposed,
        )
        .unwrap();
        let recovered = fp.extract(forged.netlist());
        let ranking = trace_suspects(&recovered, &registry);
        let top2: Vec<usize> = ranking.iter().take(2).map(|&(i, _)| i).collect();
        assert!(
            top2.contains(&2) && top2.contains(&5),
            "colluders should rank first: {ranking:?}"
        );
    }

    #[test]
    fn agreement_bounds() {
        assert_eq!(agreement(&[true, false], &[true, false]), 1.0);
        assert_eq!(agreement(&[true, false], &[false, true]), 0.0);
        assert_eq!(agreement(&[true, true], &[true, false]), 0.5);
        assert_eq!(agreement(&[], &[]), 0.0);
    }

    #[test]
    fn containment_bounds() {
        assert_eq!(containment(&[true, true], &[true, true]), 1.0);
        assert_eq!(containment(&[true, true], &[true, false]), 0.5);
        assert_eq!(containment(&[false, false], &[true, false]), 1.0, "no wires, no info");
        // Buyer's extra wires do not hurt containment.
        assert_eq!(containment(&[true, false], &[true, true]), 1.0);
    }

    #[test]
    fn clear_exposed_colluders_have_full_containment() {
        let fp = engine();
        let copies: Vec<_> = (0..6).map(|s| fp.embed_seeded(s * 7 + 1).unwrap()).collect();
        let held: Vec<&Netlist> = copies[..3].iter().map(|c| c.netlist()).collect();
        let forged = forge(&fp, &held, ForgeStrategy::ClearExposed).unwrap();
        let recovered = fp.extract(forged.netlist());
        for colluder in copies[..3].iter() {
            assert_eq!(
                containment(&recovered, colluder.bits()),
                1.0,
                "every surviving wire is carried by every colluder"
            );
        }
    }
}
