//! The post-silicon solidification model of §I-A and §VI.
//!
//! The paper's two-step process: *"First, an IC is designed with a number
//! of flexibilities so every IC fabricated is identical. Second, in the
//! post-silicon stage, the flexibilities are solidified such that each IC
//! has an individual fingerprint"* — with fuses suggested as the
//! connection mechanism in §VI.
//!
//! [`FlexibleDesign`] realizes that: one mask-level netlist in which every
//! fingerprint wire is already routed but passes through a *fuse literal*
//! — the added trigger literal is OR-ed (AND-plane targets) or AND-ed
//! (OR/XOR-plane targets) with a per-location fuse net, so that a blown
//! fuse (0) forces the literal to its neutral value and the gate behaves
//! exactly like the unmodified base. Programming the fuse map yields a
//! netlist provably equivalent to [`Fingerprinter::embed`] of the same
//! bits.

use odcfp_logic::PrimitiveFn;
use odcfp_netlist::{GateId, NetId, Netlist};

use crate::modify::widened_cell;
use crate::verify::{verify_equivalent, Verdict, VerifyPolicy};
use crate::{FingerprintError, Fingerprinter, Modification};

/// The single mask-level design that every buyer's IC is fabricated from:
/// all fingerprint wires present, each guarded by a fuse input.
#[derive(Debug, Clone)]
pub struct FlexibleDesign {
    netlist: Netlist,
    /// The unfingerprinted base, kept so programmed ICs can be verified
    /// against the golden function before shipping.
    base: Netlist,
    /// One fuse net per fingerprint location, in location order.
    fuse_nets: Vec<NetId>,
    /// The gate that combines each location's trigger literal with its
    /// fuse, so tests can inspect the structure.
    fuse_gates: Vec<GateId>,
}

impl FlexibleDesign {
    /// Builds the flexible design for an engine's selected modifications.
    ///
    /// Every fuse appears as an additional primary input named
    /// `fuse<i>`; fabricated silicon would tie these to fuse cells, and
    /// simulation/verification drive them like ordinary inputs.
    ///
    /// # Errors
    ///
    /// Returns [`FingerprintError::CannotApply`] if the library cannot
    /// widen a target gate (cannot happen for locations produced by the
    /// same engine).
    pub fn build(fp: &Fingerprinter) -> Result<Self, FingerprintError> {
        let mut netlist = fp.base().clone();
        let mut fuse_nets = Vec::with_capacity(fp.locations().len());
        let mut fuse_gates = Vec::with_capacity(fp.locations().len());
        for (i, m) in fp.selected_modifications().iter().enumerate() {
            let fuse = netlist.add_primary_input(format!("fuse{i}"));
            let gate = attach_fused_literal(&mut netlist, m, fuse)?;
            fuse_nets.push(fuse);
            fuse_gates.push(gate);
        }
        netlist.validate()?;
        Ok(FlexibleDesign {
            netlist,
            base: fp.base().clone(),
            fuse_nets,
            fuse_gates,
        })
    }

    /// The mask-level netlist (fuses are primary inputs).
    pub fn netlist(&self) -> &Netlist {
        &self.netlist
    }

    /// The fuse nets, one per fingerprint location.
    pub fn fuse_nets(&self) -> &[NetId] {
        &self.fuse_nets
    }

    /// The fuse-combining gates, one per fingerprint location.
    pub fn fuse_gates(&self) -> &[GateId] {
        &self.fuse_gates
    }

    /// Solidifies one IC: ties every fuse to its programmed value,
    /// returning the buyer's netlist. `bits[i] = true` keeps location
    /// `i`'s wire connected.
    ///
    /// # Errors
    ///
    /// Returns [`FingerprintError::BitLengthMismatch`] if `bits` does not
    /// match the fuse count.
    pub fn program(&self, bits: &[bool]) -> Result<Netlist, FingerprintError> {
        if bits.len() != self.fuse_nets.len() {
            return Err(FingerprintError::BitLengthMismatch {
                expected: self.fuse_nets.len(),
                found: bits.len(),
            });
        }
        let mut programmed = Netlist::new(
            format!("{}_programmed", self.netlist.name()),
            self.netlist.library().clone(),
        );
        // Rebuild with fuses as constants instead of primary inputs. Net
        // and gate indices shift, so rebuild by traversal in original
        // order: nets first (same order), then gates (same order).
        let mut net_map: Vec<Option<NetId>> = vec![None; self.netlist.num_nets()];
        for (id, net) in self.netlist.nets() {
            let fuse_index = self.fuse_nets.iter().position(|&f| f == id);
            let new = match (net.driver(), fuse_index) {
                (_, Some(k)) => programmed.add_constant(net.name(), bits[k]),
                (odcfp_netlist::NetDriver::PrimaryInput, None) => {
                    programmed.add_primary_input(net.name())
                }
                (odcfp_netlist::NetDriver::Const(v), None) => {
                    programmed.add_constant(net.name(), v)
                }
                _ => programmed.add_net(net.name()),
            };
            net_map[id.index()] = Some(new);
        }
        for (_, gate) in self.netlist.gates() {
            let inputs: Vec<NetId> = gate
                .inputs()
                .iter()
                .map(|&n| net_map[n.index()].expect("mapped"))
                .collect();
            let output = net_map[gate.output().index()].expect("mapped");
            programmed.add_gate_driving(gate.name(), gate.cell(), &inputs, output);
        }
        for &po in self.netlist.primary_outputs() {
            programmed.set_primary_output(net_map[po.index()].expect("mapped"));
        }
        programmed.validate()?;
        Ok(programmed)
    }

    /// Solidifies one IC and verifies the result against the base design
    /// under `policy` — the production sign-off path: fuse programming is
    /// exactly where manufacturing defects (stuck fuses, bridged wires)
    /// would silently corrupt a shipped part.
    ///
    /// [`Verdict::Refuted`] is promoted to an error; [`Verdict::Undecided`]
    /// is returned as data for the caller to judge.
    ///
    /// # Errors
    ///
    /// Returns [`FingerprintError::BitLengthMismatch`] on a wrong-length
    /// fuse map, validation errors, or [`FingerprintError::NotEquivalent`]
    /// when the programmed netlist provably differs from the base.
    pub fn program_verified(
        &self,
        bits: &[bool],
        policy: &VerifyPolicy,
    ) -> Result<(Netlist, Verdict), FingerprintError> {
        let programmed = self.program(bits)?;
        let verdict = verify_equivalent(&self.base, &programmed, policy)?;
        if let Verdict::Refuted { counterexample } = verdict {
            return Err(FingerprintError::NotEquivalent {
                counterexample: Some(counterexample),
            });
        }
        Ok((programmed, verdict))
    }
}

/// Wires one modification's literal through a fuse: the target gate gets
/// the combined literal instead of the raw one.
///
/// For an AND-plane target (neutral 1) the combined literal is
/// `lit OR !fuse` (blown fuse ⇒ 1 ⇒ neutral); for an OR/XOR-plane target
/// (neutral 0) it is `lit AND fuse` (blown fuse ⇒ 0 ⇒ neutral). Complements
/// fold into the fuse gate: `!lit OR !fuse = NAND(lit, fuse)` and
/// `!lit AND fuse = NOR(lit, !fuse)` — realized as `NOR(lit, inv_fuse)`.
fn attach_fused_literal(
    netlist: &mut Netlist,
    m: &Modification,
    fuse: NetId,
) -> Result<GateId, FingerprintError> {
    let target = m.target();
    let added = m.added_nets().to_vec();
    let (cell, _) = widened_cell(netlist, target, added.len()).ok_or_else(|| {
        FingerprintError::CannotApply {
            gate: target,
            reason: "no wide-enough cell in library".into(),
        }
    })?;
    let neutral = netlist
        .gate_fn(target)
        .widened()
        .neutral_input_value()
        .expect("widened functions have a neutral value");
    let complement = m.complemented();

    let mut new_inputs = netlist.gate(target).inputs().to_vec();
    let mut last_gate = None;
    for net in added {
        // Choose the fuse-combining function so that fuse=0 yields the
        // neutral value and fuse=1 yields the (possibly complemented)
        // literal.
        let (f, ins): (PrimitiveFn, Vec<NetId>) = match (neutral, complement) {
            // neutral 1, literal lit:  lit OR !fuse  == NAND(!lit, fuse).
            (true, false) => {
                let inv = add_inv(netlist, net)?;
                (PrimitiveFn::Nand, vec![inv, fuse])
            }
            // neutral 1, literal !lit: !lit OR !fuse == NAND(lit, fuse).
            (true, true) => (PrimitiveFn::Nand, vec![net, fuse]),
            // neutral 0, literal lit:  lit AND fuse.
            (false, false) => (PrimitiveFn::And, vec![net, fuse]),
            // neutral 0, literal !lit: !lit AND fuse == NOR(lit, !fuse).
            (false, true) => {
                let inv = add_inv(netlist, fuse)?;
                (PrimitiveFn::Nor, vec![net, inv])
            }
        };
        let cell2 = netlist.library().cell_for(f, 2).ok_or_else(|| {
            FingerprintError::CannotApply {
                gate: target,
                reason: format!("library lacks {f}2 for fuse gating"),
            }
        })?;
        let name = format!("fuse_mix_{}", netlist.num_gates());
        let g = netlist.add_gate(name, cell2, &ins);
        new_inputs.push(netlist.gate_output(g));
        last_gate = Some(g);
    }
    netlist.replace_gate(target, cell, &new_inputs);
    Ok(last_gate.expect("modifications add at least one literal"))
}

fn add_inv(netlist: &mut Netlist, net: NetId) -> Result<NetId, FingerprintError> {
    let inv = netlist
        .library()
        .cell_for(PrimitiveFn::Inv, 1)
        .ok_or_else(|| FingerprintError::CannotApply {
            gate: GateId::from_index(0),
            reason: "library has no inverter".into(),
        })?;
    let name = format!("fuse_inv_{}", netlist.num_gates());
    let g = netlist.add_gate(name, inv, &[net]);
    Ok(netlist.gate_output(g))
}

#[cfg(test)]
mod tests {
    use super::*;
    use odcfp_netlist::CellLibrary;
    use odcfp_sat::{check_equivalence, EquivResult};
    use odcfp_synth::benchmarks::random::{random_dag, DagParams};

    fn engine(seed: u64) -> Fingerprinter {
        let base = random_dag(CellLibrary::standard(), DagParams::small(seed));
        Fingerprinter::new(base).unwrap()
    }

    #[test]
    fn programmed_matches_embedded_for_exhaustive_patterns() {
        let fp = engine(60);
        let flexible = FlexibleDesign::build(&fp).unwrap();
        let n = fp.locations().len().min(6);
        // Exhaust bit patterns over the first few locations (rest zero).
        for pattern in 0..(1usize << n) {
            let mut bits = vec![false; fp.locations().len()];
            for (i, bit) in bits.iter_mut().take(n).enumerate() {
                *bit = (pattern >> i) & 1 == 1;
            }
            let programmed = flexible.program(&bits).unwrap();
            let embedded = fp.embed(&bits).unwrap();
            assert_eq!(
                check_equivalence(&programmed, embedded.netlist(), Some(500_000)).unwrap(),
                EquivResult::Equivalent,
                "pattern {pattern:b}"
            );
        }
    }

    #[test]
    fn all_blown_fuses_give_the_base_function() {
        let fp = engine(61);
        let flexible = FlexibleDesign::build(&fp).unwrap();
        let programmed = flexible
            .program(&vec![false; fp.locations().len()])
            .unwrap();
        assert_eq!(
            check_equivalence(fp.base(), &programmed, None).unwrap(),
            EquivResult::Equivalent
        );
    }

    #[test]
    fn all_connected_fuses_match_embed_all() {
        let fp = engine(62);
        let flexible = FlexibleDesign::build(&fp).unwrap();
        let programmed = flexible
            .program(&vec![true; fp.locations().len()])
            .unwrap();
        let embedded = fp.embed_all().unwrap();
        assert_eq!(
            check_equivalence(&programmed, embedded.netlist(), None).unwrap(),
            EquivResult::Equivalent
        );
    }

    #[test]
    fn every_fabricated_ic_is_identical() {
        // The whole point of §I-A: the mask-level design is one netlist;
        // only fuse programming differs.
        let fp = engine(63);
        let a = FlexibleDesign::build(&fp).unwrap();
        let b = FlexibleDesign::build(&fp).unwrap();
        assert_eq!(a.netlist().num_gates(), b.netlist().num_gates());
        assert_eq!(
            a.netlist().primary_inputs().len(),
            b.netlist().primary_inputs().len()
        );
    }

    #[test]
    fn fuse_count_matches_locations() {
        let fp = engine(64);
        let flexible = FlexibleDesign::build(&fp).unwrap();
        assert_eq!(flexible.fuse_nets().len(), fp.locations().len());
        assert_eq!(flexible.fuse_gates().len(), fp.locations().len());
        assert!(matches!(
            flexible.program(&[]),
            Err(FingerprintError::BitLengthMismatch { .. })
        ));
    }

    #[test]
    fn program_verified_signs_off_good_fuse_maps() {
        let fp = engine(66);
        let flexible = FlexibleDesign::build(&fp).unwrap();
        let mut bits = vec![false; fp.locations().len()];
        bits[0] = true;
        let (programmed, verdict) = flexible
            .program_verified(&bits, &VerifyPolicy::strict())
            .unwrap();
        assert!(verdict.is_pass(), "got {verdict}");
        assert_eq!(fp.extract(&programmed).len(), fp.locations().len());
    }

    #[test]
    fn flexible_design_extraction_via_simulation_of_fuses() {
        // Driving the fuse inputs like signals lets the designer probe a
        // flexible die before solidification: with all fuses at 0 it
        // behaves as the base on random vectors.
        let fp = engine(65);
        let flexible = FlexibleDesign::build(&fp).unwrap();
        let k_base = fp.base().primary_inputs().len();
        let total = flexible.netlist().primary_inputs().len();
        assert_eq!(total, k_base + fp.locations().len());
        let mut rng = odcfp_logic::rng::Xoshiro256::seed_from_u64(3);
        for _ in 0..32 {
            let inputs: Vec<bool> = (0..k_base).map(|_| rng.next_bool()).collect();
            let mut full = inputs.clone();
            full.extend(std::iter::repeat_n(false, fp.locations().len()));
            assert_eq!(flexible.netlist().eval(&full), fp.base().eval(&inputs));
        }
    }
}
