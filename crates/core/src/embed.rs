//! The fingerprinting engine: selection, embedding, extraction.

use odcfp_analysis::cancel::CancelToken;
use odcfp_logic::rng::Xoshiro256;
use odcfp_netlist::{NetDriver, NetId, Netlist};

use crate::location::{find_locations, Candidate, FingerprintLocation};
use crate::modify::{applicable, apply_modification, modification_present, Modification};
use crate::verify::{verify_equivalent, Verdict, VerifyPolicy, VerifySession};
use crate::{CapacityReport, FingerprintError};

/// How the default modification is chosen at each location.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SelectionPolicy {
    /// The paper's Fig. 6 policy: modify the deepest eligible gate of the
    /// deepest fanout-free cone, wired from the earliest-arriving trigger
    /// signal, preferring the Fig. 5 early reroute when available — all to
    /// minimize added delay.
    DeepTargetEarlyTrigger,
    /// Uniformly random candidate per location (seeded); the ablation
    /// baseline showing what the depth-aware policy buys.
    Random(u64),
}

/// How much verification each embedded copy receives.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum VerifyLevel {
    /// Structural validation only.
    None,
    /// The simulation rungs of the ladder ([`VerifyPolicy::quick`]):
    /// random smoke test plus exhaustive proof for small designs.
    Simulation,
    /// The full ladder ([`VerifyPolicy::strict`]): simulation plus an
    /// unbounded SAT miter proof.
    Sat,
}

impl VerifyLevel {
    /// The verification policy this level stands for (`None` ⇒ no
    /// verification at all).
    pub fn policy(self) -> Option<VerifyPolicy> {
        match self {
            VerifyLevel::None => None,
            VerifyLevel::Simulation => Some(VerifyPolicy::quick()),
            VerifyLevel::Sat => Some(VerifyPolicy::strict()),
        }
    }
}

/// A fingerprinted copy of the base design.
#[derive(Debug, Clone)]
pub struct FingerprintedCopy {
    netlist: Netlist,
    bits: Vec<bool>,
}

impl FingerprintedCopy {
    /// Assembles a copy from an already-verified netlist and its bits.
    pub(crate) fn from_parts(netlist: Netlist, bits: Vec<bool>) -> FingerprintedCopy {
        FingerprintedCopy { netlist, bits }
    }

    /// The fingerprinted netlist.
    pub fn netlist(&self) -> &Netlist {
        &self.netlist
    }

    /// Consumes the copy, returning the netlist.
    pub fn into_netlist(self) -> Netlist {
        self.netlist
    }

    /// The embedded bit string (one bit per fingerprint location).
    pub fn bits(&self) -> &[bool] {
        &self.bits
    }

    /// The bit string rendered as `0`/`1` characters.
    pub fn bit_string(&self) -> String {
        self.bits.iter().map(|&b| if b { '1' } else { '0' }).collect()
    }
}

/// The fingerprinting engine for one base design.
///
/// Construction scans the netlist for locations, fixes a default
/// [`Modification`] per location under the chosen [`SelectionPolicy`]
/// (resolving inter-location conflicts greedily so that *any* subset of
/// locations can be applied together), and then mints copies on demand.
///
/// See the [crate documentation](crate) for an end-to-end example.
#[derive(Debug, Clone)]
pub struct Fingerprinter {
    base: Netlist,
    locations: Vec<FingerprintLocation>,
    selected: Vec<Modification>,
}

impl Fingerprinter {
    /// Builds an engine with the paper's default selection policy.
    ///
    /// # Errors
    ///
    /// Returns an error if the netlist fails validation.
    pub fn new(base: Netlist) -> Result<Self, FingerprintError> {
        Fingerprinter::with_policy(base, SelectionPolicy::DeepTargetEarlyTrigger)
    }

    /// Builds an engine with an explicit selection policy.
    ///
    /// # Errors
    ///
    /// Returns an error if the netlist fails validation.
    pub fn with_policy(
        base: Netlist,
        policy: SelectionPolicy,
    ) -> Result<Self, FingerprintError> {
        base.validate()?;
        let all = find_locations(&base);
        let depths = base.gate_depths()?;
        let net_depth = |netlist: &Netlist, net: NetId| -> usize {
            match netlist.net(net).driver() {
                NetDriver::Gate(g) => depths.get(g.index()).copied().unwrap_or(0),
                _ => 0,
            }
        };

        // Greedy conflict-free selection on a scratch copy carrying every
        // chosen modification; any subset then also applies cleanly
        // (removing modifications only relaxes arity/duplication limits).
        let mut scratch = base.clone();
        let mut rng = match policy {
            SelectionPolicy::Random(seed) => Some(Xoshiro256::seed_from_u64(seed)),
            SelectionPolicy::DeepTargetEarlyTrigger => None,
        };
        let mut locations = Vec::new();
        let mut selected = Vec::new();
        for loc in all {
            let mut order: Vec<&Candidate> = loc.candidates.iter().collect();
            match &mut rng {
                Some(rng) => {
                    // Fisher–Yates over candidate references.
                    for i in (1..order.len()).rev() {
                        let j = rng.next_below(i + 1);
                        order.swap(i, j);
                    }
                }
                None => {
                    order.sort_by_key(|c| {
                        let target_depth = depths[c.modification.target().index()];
                        // Effective arrival of the added literal: the
                        // latest of the added source nets.
                        let signal_depth = c
                            .modification
                            .added_nets()
                            .iter()
                            .map(|&n| net_depth(&base, n))
                            .max()
                            .unwrap_or(0);
                        // The paper's base flow applies the Fig. 4 trigger
                        // insertion; Fig. 5 reroutes stay available as
                        // alternate configurations (capacity) and fallbacks.
                        let reroute_penalty =
                            usize::from(matches!(c.modification, Modification::RerouteEarly { .. }));
                        (
                            usize::MAX - target_depth, // deepest target first
                            reroute_penalty,           // Fig. 4 insertion first
                            signal_depth,              // earliest signal first
                        )
                    });
                }
            }
            if let Some(cand) = order.into_iter().find(|c| applicable(&scratch, &c.modification))
            {
                apply_modification(&mut scratch, &cand.modification)
                    .expect("applicable modification must apply");
                selected.push(cand.modification.clone());
                locations.push(loc.clone());
            }
        }
        Ok(Fingerprinter {
            base,
            locations,
            selected,
        })
    }

    /// The unfingerprinted base design.
    pub fn base(&self) -> &Netlist {
        &self.base
    }

    /// The usable fingerprint locations, one embedded bit each.
    pub fn locations(&self) -> &[FingerprintLocation] {
        &self.locations
    }

    /// The default modification chosen for each location (parallel to
    /// [`Fingerprinter::locations`]).
    pub fn selected_modifications(&self) -> &[Modification] {
        &self.selected
    }

    /// Capacity accounting over the usable locations.
    pub fn capacity(&self) -> CapacityReport {
        CapacityReport::of(&self.locations)
    }

    /// Embeds a bit string (one bit per location) with simulation-level
    /// verification.
    ///
    /// # Errors
    ///
    /// Returns an error on length mismatch or if verification fails.
    pub fn embed(&self, bits: &[bool]) -> Result<FingerprintedCopy, FingerprintError> {
        self.embed_verified(bits, VerifyLevel::Simulation)
    }

    /// Embeds a bit string with an explicit verification level.
    ///
    /// # Errors
    ///
    /// Returns an error on length mismatch, inapplicable modifications
    /// (impossible for subsets of the selection), or failed verification.
    pub fn embed_verified(
        &self,
        bits: &[bool],
        verify: VerifyLevel,
    ) -> Result<FingerprintedCopy, FingerprintError> {
        let netlist = self.apply_bits(bits)?;
        if let Some(policy) = verify.policy() {
            check_verdict(verify_equivalent(&self.base, &netlist, &policy)?)?;
        }
        Ok(FingerprintedCopy {
            netlist,
            bits: bits.to_vec(),
        })
    }

    /// Embeds a bit string under an explicit [`VerifyPolicy`], returning
    /// the copy alongside the verdict the policy's budget earned.
    ///
    /// [`Verdict::Refuted`] is promoted to an error (a copy that changes
    /// the function must never ship); [`Verdict::Undecided`] is returned
    /// as data so the caller can decide whether the accumulated evidence
    /// suffices.
    ///
    /// # Errors
    ///
    /// Returns an error on length mismatch, failed validation, or a
    /// refuted equivalence check.
    pub fn embed_with_policy(
        &self,
        bits: &[bool],
        policy: &VerifyPolicy,
    ) -> Result<(FingerprintedCopy, Verdict), FingerprintError> {
        self.embed_with_policy_cancellable(bits, policy, &CancelToken::new())
    }

    /// [`Fingerprinter::embed_with_policy`] under a cooperative
    /// [`CancelToken`] — the minting entry point batch runners use, so a
    /// per-job deadline or an operator abort stops the verification
    /// workers instead of merely being noticed afterwards.
    ///
    /// A fired token surfaces as [`Verdict::Undecided`]; the copy is
    /// still returned (it passed structural validation), and the caller
    /// decides whether an unverified copy is usable.
    ///
    /// # Errors
    ///
    /// As [`Fingerprinter::embed_with_policy`].
    pub fn embed_with_policy_cancellable(
        &self,
        bits: &[bool],
        policy: &VerifyPolicy,
        token: &CancelToken,
    ) -> Result<(FingerprintedCopy, Verdict), FingerprintError> {
        let netlist = self.apply_bits(bits)?;
        let verdict =
            crate::verify::verify_equivalent_cancellable(&self.base, &netlist, policy, token)?;
        if let Verdict::Refuted { counterexample } = verdict {
            return Err(FingerprintError::NotEquivalent {
                counterexample: Some(counterexample),
            });
        }
        Ok((
            FingerprintedCopy {
                netlist,
                bits: bits.to_vec(),
            },
            verdict,
        ))
    }

    /// [`Fingerprinter::embed_with_policy_cancellable`] through a
    /// persistent [`VerifySession`] — the campaign fast path.
    ///
    /// The session must have been built from this engine's base netlist
    /// (e.g. `VerifySession::new(fp.base())`); reusing it across copies
    /// lets the sweep engine's strash store, learnt clauses, and
    /// counterexample-enriched signatures amortize over every buyer.
    ///
    /// # Errors
    ///
    /// As [`Fingerprinter::embed_with_policy`].
    pub fn embed_with_session_cancellable(
        &self,
        session: &mut VerifySession,
        bits: &[bool],
        policy: &VerifyPolicy,
        token: &CancelToken,
    ) -> Result<(FingerprintedCopy, Verdict), FingerprintError> {
        let netlist = self.apply_bits(bits)?;
        let report = session.verify_cancellable(&netlist, policy, token)?;
        if let Verdict::Refuted { counterexample } = report.verdict {
            return Err(FingerprintError::NotEquivalent {
                counterexample: Some(counterexample),
            });
        }
        Ok((
            FingerprintedCopy {
                netlist,
                bits: bits.to_vec(),
            },
            report.verdict,
        ))
    }

    /// Applies the selected modification at every set bit, returning the
    /// validated (but unverified) netlist.
    fn apply_bits(&self, bits: &[bool]) -> Result<Netlist, FingerprintError> {
        if bits.len() != self.locations.len() {
            return Err(FingerprintError::BitLengthMismatch {
                expected: self.locations.len(),
                found: bits.len(),
            });
        }
        let mut span = odcfp_obs::span("core.embed");
        span.field("bits_set", bits.iter().filter(|&&b| b).count());
        let mut netlist = self.base.clone();
        for (&bit, m) in bits.iter().zip(&self.selected) {
            if bit {
                apply_modification(&mut netlist, m)?;
            }
        }
        netlist.validate()?;
        span.field("gates", netlist.num_gates());
        Ok(netlist)
    }

    /// Embeds a **configuration vector**: entry `i` selects which of
    /// location `i`'s candidates to apply — `0` leaves the location
    /// unmodified, `k` applies `candidates[k-1]`.
    ///
    /// This is the operational form of the paper's capacity claim: a
    /// location with `m` candidates stores `log2(m + 1)` bits, so
    /// configuration vectors realize the full `log2(combinations)` space
    /// of Table II column 7, not just the `2^n` on/off subset.
    ///
    /// Configurations are applied in location order; a selection that
    /// conflicts with an earlier one (same literal into the same gate, or
    /// arity exhausted) is rejected rather than silently skipped.
    ///
    /// # Errors
    ///
    /// Returns a length mismatch, an out-of-range selection (reported as
    /// [`FingerprintError::CannotApply`]), a conflict, or a verification
    /// failure.
    pub fn embed_configs(
        &self,
        configs: &[usize],
        verify: VerifyLevel,
    ) -> Result<Netlist, FingerprintError> {
        if configs.len() != self.locations.len() {
            return Err(FingerprintError::BitLengthMismatch {
                expected: self.locations.len(),
                found: configs.len(),
            });
        }
        let mut netlist = self.base.clone();
        for (&cfg, loc) in configs.iter().zip(&self.locations) {
            if cfg == 0 {
                continue;
            }
            let m = loc
                .candidates
                .get(cfg - 1)
                .map(|c| &c.modification)
                .ok_or_else(|| FingerprintError::CannotApply {
                    gate: loc.primary_gate,
                    reason: format!(
                        "configuration {cfg} out of range (location has {} candidates)",
                        loc.candidates.len()
                    ),
                })?;
            if !crate::modify::applicable(&netlist, m) {
                return Err(FingerprintError::CannotApply {
                    gate: m.target(),
                    reason: "configuration conflicts with an earlier selection".into(),
                });
            }
            apply_modification(&mut netlist, m)?;
        }
        netlist.validate()?;
        if let Some(policy) = verify.policy() {
            check_verdict(verify_equivalent(&self.base, &netlist, &policy)?)?;
        }
        Ok(netlist)
    }

    /// Recovers a configuration vector from a suspect copy: for each
    /// location, the 1-based index of the first candidate whose literals
    /// are present, or `0` when none is.
    ///
    /// Candidates at one location can overlap (a two-source reroute
    /// contains a one-source one); discovery order makes the smaller
    /// option win ties, so pair `extract_configs` with vectors produced by
    /// [`Fingerprinter::embed_configs`] of non-overlapping selections for
    /// exact roundtrips.
    pub fn extract_configs(&self, suspect: &Netlist) -> Vec<usize> {
        self.locations
            .iter()
            .map(|loc| {
                loc.candidates
                    .iter()
                    .position(|c| modification_present(suspect, &c.modification))
                    .map_or(0, |k| k + 1)
            })
            .collect()
    }

    /// Embeds the all-ones fingerprint (every location modified) — the
    /// maximal-overhead configuration measured in the paper's Table II.
    ///
    /// # Errors
    ///
    /// Propagates [`Fingerprinter::embed`] errors.
    pub fn embed_all(&self) -> Result<FingerprintedCopy, FingerprintError> {
        self.embed(&vec![true; self.locations.len()])
    }

    /// Embeds a uniformly random fingerprint derived from `seed` — the
    /// per-buyer minting operation.
    ///
    /// # Errors
    ///
    /// Propagates [`Fingerprinter::embed`] errors.
    pub fn embed_seeded(&self, seed: u64) -> Result<FingerprintedCopy, FingerprintError> {
        let mut rng = Xoshiro256::seed_from_u64(seed);
        let bits: Vec<bool> = (0..self.locations.len()).map(|_| rng.next_bool()).collect();
        self.embed(&bits)
    }

    /// Recovers the embedded bit string from a suspect copy by comparing it
    /// with the base design (the designer-side detection of §III-E: the
    /// designer checks "whether and what change has occurred in each
    /// fingerprint location").
    ///
    /// The suspect must be derived from this engine's base netlist (gate
    /// and net identities are compared positionally, which clones
    /// preserve).
    pub fn extract(&self, suspect: &Netlist) -> Vec<bool> {
        self.selected
            .iter()
            .map(|m| modification_present(suspect, m))
            .collect()
    }

    /// Like [`Fingerprinter::extract`], but matches gates and nets **by
    /// name** instead of by arena position — for suspects that passed
    /// through a textual format (written to Verilog and re-parsed), where
    /// ids no longer align but names survive.
    ///
    /// # Errors
    ///
    /// Returns [`FingerprintError::CannotApply`] naming the first location
    /// whose target gate or trigger net is missing from the suspect
    /// (renamed or stripped netlists cannot be compared this way).
    pub fn extract_by_name(&self, suspect: &Netlist) -> Result<Vec<bool>, FingerprintError> {
        self.selected
            .iter()
            .map(|m| {
                crate::modify::modification_present_by_name(&self.base, suspect, m).ok_or_else(
                    || FingerprintError::CannotApply {
                        gate: m.target(),
                        reason: format!(
                            "suspect lacks gate {:?} or its trigger nets",
                            self.base.gate(m.target()).name()
                        ),
                    },
                )
            })
            .collect()
    }
}

/// Maps a verdict onto the pass/fail contract of the [`VerifyLevel`] API:
/// refuted and undecided verdicts become errors (the built-in levels use
/// unbounded policies, so undecided is defensive only).
pub(crate) fn check_verdict(verdict: Verdict) -> Result<(), FingerprintError> {
    match verdict {
        Verdict::Proven | Verdict::ProbablyEquivalent { .. } => Ok(()),
        Verdict::Refuted { counterexample } => Err(FingerprintError::NotEquivalent {
            counterexample: Some(counterexample),
        }),
        Verdict::Undecided { .. } => Err(FingerprintError::Verification(
            odcfp_sat::EquivError::BudgetExhausted,
        )),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use odcfp_logic::PrimitiveFn;
    use odcfp_netlist::CellLibrary;
    use odcfp_synth::benchmarks::random::{random_dag, DagParams};

    fn fig1() -> Netlist {
        let lib = CellLibrary::standard();
        let mut n = Netlist::new("fig1", lib);
        let a = n.add_primary_input("A");
        let b = n.add_primary_input("B");
        let c = n.add_primary_input("C");
        let d = n.add_primary_input("D");
        let and2 = n.library().cell_for(PrimitiveFn::And, 2).unwrap();
        let or2 = n.library().cell_for(PrimitiveFn::Or, 2).unwrap();
        let x = n.add_gate("gx", and2, &[a, b]);
        let y = n.add_gate("gy", or2, &[c, d]);
        let f = n.add_gate("gf", and2, &[n.gate_output(x), n.gate_output(y)]);
        n.set_primary_output(n.gate_output(f));
        n
    }

    #[test]
    fn embed_and_extract_roundtrip() {
        let fp = Fingerprinter::new(fig1()).unwrap();
        let n = fp.locations().len();
        assert!(n >= 1);
        for pattern in 0..(1usize << n) {
            let bits: Vec<bool> = (0..n).map(|i| (pattern >> i) & 1 == 1).collect();
            let copy = fp.embed_verified(&bits, VerifyLevel::Sat).unwrap();
            assert_eq!(fp.extract(copy.netlist()), bits, "pattern {pattern:b}");
        }
    }

    #[test]
    fn distinct_bits_distinct_structure() {
        let fp = Fingerprinter::new(fig1()).unwrap();
        let n = fp.locations().len();
        let zero = fp.embed(&vec![false; n]).unwrap();
        let one = fp.embed(&vec![true; n]).unwrap();
        assert_eq!(zero.netlist().num_gates(), fp.base().num_gates());
        // The all-ones copy differs structurally somewhere.
        let differs = one
            .netlist()
            .gates()
            .zip(zero.netlist().gates())
            .any(|((_, g1), (_, g0))| g1.inputs().len() != g0.inputs().len())
            || one.netlist().num_gates() != zero.netlist().num_gates();
        assert!(differs);
    }

    #[test]
    fn bit_length_checked() {
        let fp = Fingerprinter::new(fig1()).unwrap();
        assert!(matches!(
            fp.embed(&[]),
            Err(FingerprintError::BitLengthMismatch { .. })
        ));
    }

    #[test]
    fn seeded_embedding_deterministic() {
        let fp = Fingerprinter::new(fig1()).unwrap();
        let a = fp.embed_seeded(7).unwrap();
        let b = fp.embed_seeded(7).unwrap();
        assert_eq!(a.bits(), b.bits());
        assert_eq!(a.bit_string(), b.bit_string());
    }

    #[test]
    fn random_dag_all_subsets_equivalent() {
        // The integration-grade invariant: on a generated circuit, the
        // all-ones embedding (every location modified simultaneously) is
        // SAT-equivalent to the base.
        let lib = CellLibrary::standard();
        let base = random_dag(lib, DagParams::small(21));
        let fp = Fingerprinter::new(base).unwrap();
        assert!(
            !fp.locations().is_empty(),
            "expected locations in a 60-gate circuit"
        );
        let copy = fp.embed_verified(
            &vec![true; fp.locations().len()],
            VerifyLevel::Sat,
        );
        copy.unwrap();
    }

    #[test]
    fn random_policy_also_safe() {
        let lib = CellLibrary::standard();
        let base = random_dag(lib, DagParams::small(33));
        let fp = Fingerprinter::with_policy(base, SelectionPolicy::Random(5)).unwrap();
        let copy = fp
            .embed_verified(&vec![true; fp.locations().len()], VerifyLevel::Sat)
            .unwrap();
        assert_eq!(fp.extract(copy.netlist()), copy.bits());
    }

    #[test]
    fn extract_on_base_is_all_zeros() {
        let fp = Fingerprinter::new(fig1()).unwrap();
        let bits = fp.extract(fp.base());
        assert!(bits.iter().all(|&b| !b));
    }

    #[test]
    fn policy_changes_selection() {
        let lib = CellLibrary::standard();
        let base = random_dag(lib, DagParams::small(44));
        let deep = Fingerprinter::new(base.clone()).unwrap();
        let rand = Fingerprinter::with_policy(base, SelectionPolicy::Random(1)).unwrap();
        // Same locations, possibly different selected modifications.
        assert_eq!(deep.locations().len(), rand.locations().len());
        assert_ne!(
            deep.selected_modifications(),
            rand.selected_modifications(),
            "random selection should diverge somewhere on a 60-gate circuit"
        );
    }
}
