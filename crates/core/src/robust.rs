//! Robust (error-correcting) fingerprints — the §V extension.
//!
//! *"For gates with an excessive number of fingerprint combinations, we can
//! ... include additional functionality to our fingerprints, such as error
//! correcting codes or redundancy, so that even if an adversary tampers
//! with the circuit, we can figure out what they have done and what the
//! original fingerprint was."*
//!
//! Two codes are provided over the location bit string:
//!
//! * [`Code::Repetition`] — each payload bit is embedded `r` times and
//!   decoded by majority; tolerates `⌊(r-1)/2⌋` flips per payload bit;
//! * [`Code::Hamming`] — classic Hamming(7,4) blocks; corrects one flip
//!   per 7-location block at much lower redundancy.
//!
//! Both decoders also report *which* locations appear tampered, answering
//! the paper's "figure out what they have done".

use crate::{FingerprintError, Fingerprinter, FingerprintedCopy};

/// The error-correcting code protecting a fingerprint payload.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Code {
    /// Repeat every payload bit `r` times (majority decode). `r` must be
    /// odd and ≥ 3.
    Repetition(usize),
    /// Hamming(7,4): 4 payload bits per 7 locations, single-error
    /// correction per block.
    Hamming,
}

impl Code {
    /// Payload bits representable with `locations` fingerprint locations.
    pub fn payload_capacity(self, locations: usize) -> usize {
        match self {
            Code::Repetition(r) => locations / r,
            Code::Hamming => (locations / 7) * 4,
        }
    }
}

/// The outcome of decoding a (possibly tampered) fingerprint.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DecodedFingerprint {
    /// The recovered payload bits.
    pub payload: Vec<bool>,
    /// Location indices whose extracted bit disagreed with the corrected
    /// codeword — the tamper evidence.
    pub tampered_locations: Vec<usize>,
}

/// Encodes a payload into a location bit string.
///
/// Unused trailing locations are set to parity padding (alternating bits
/// derived from the payload length) so the whole string stays
/// deterministic.
///
/// # Errors
///
/// Returns [`FingerprintError::BitLengthMismatch`] when the payload
/// exceeds the code's capacity for `locations`, and panics if a
/// repetition factor is even or < 3.
pub fn encode(code: Code, payload: &[bool], locations: usize) -> Result<Vec<bool>, FingerprintError> {
    if let Code::Repetition(r) = code {
        assert!(r >= 3 && r % 2 == 1, "repetition factor must be odd and >= 3");
    }
    let capacity = code.payload_capacity(locations);
    if payload.len() > capacity {
        return Err(FingerprintError::BitLengthMismatch {
            expected: capacity,
            found: payload.len(),
        });
    }
    let mut bits = Vec::with_capacity(locations);
    match code {
        Code::Repetition(r) => {
            for &p in payload {
                bits.extend(std::iter::repeat_n(p, r));
            }
        }
        Code::Hamming => {
            for block in payload.chunks(4) {
                let mut d = [false; 4];
                d[..block.len()].copy_from_slice(block);
                bits.extend_from_slice(&hamming74_encode(d));
            }
        }
    }
    while bits.len() < locations {
        bits.push(bits.len() % 2 == 1);
    }
    bits.truncate(locations);
    Ok(bits)
}

/// Decodes a (possibly tampered) location bit string.
///
/// `payload_len` must match what was passed to [`encode`].
///
/// # Example
///
/// ```
/// use odcfp_core::robust::{decode, encode, Code};
///
/// let payload = [true, false, true, true];
/// let mut bits = encode(Code::Hamming, &payload, 7)?;
/// bits[3] = !bits[3]; // adversary flips one wire
/// let recovered = decode(Code::Hamming, &bits, 4);
/// assert_eq!(recovered.payload, payload);
/// assert_eq!(recovered.tampered_locations, vec![3]);
/// # Ok::<(), odcfp_core::FingerprintError>(())
/// ```
pub fn decode(code: Code, bits: &[bool], payload_len: usize) -> DecodedFingerprint {
    let mut payload = Vec::with_capacity(payload_len);
    let mut tampered = Vec::new();
    match code {
        Code::Repetition(r) => {
            for (k, chunk) in bits.chunks(r).take(payload_len).enumerate() {
                let ones = chunk.iter().filter(|&&b| b).count();
                let value = ones * 2 > chunk.len();
                payload.push(value);
                for (j, &b) in chunk.iter().enumerate() {
                    if b != value {
                        tampered.push(k * r + j);
                    }
                }
            }
        }
        Code::Hamming => {
            let blocks_needed = payload_len.div_ceil(4);
            for (k, chunk) in bits.chunks(7).take(blocks_needed).enumerate() {
                let mut block = [false; 7];
                block[..chunk.len()].copy_from_slice(chunk);
                let (data, flipped) = hamming74_decode(block);
                if let Some(j) = flipped {
                    if j < chunk.len() {
                        tampered.push(k * 7 + j);
                    }
                }
                payload.extend_from_slice(&data);
            }
            payload.truncate(payload_len);
        }
    }
    DecodedFingerprint {
        payload,
        tampered_locations: tampered,
    }
}

/// Embeds an error-correction-coded payload through an engine.
///
/// # Errors
///
/// Propagates capacity and embedding errors.
pub fn embed_payload(
    fp: &Fingerprinter,
    code: Code,
    payload: &[bool],
) -> Result<FingerprintedCopy, FingerprintError> {
    let bits = encode(code, payload, fp.locations().len())?;
    fp.embed(&bits)
}

/// Extracts and decodes a payload from a suspect copy.
pub fn extract_payload(
    fp: &Fingerprinter,
    code: Code,
    suspect: &odcfp_netlist::Netlist,
    payload_len: usize,
) -> DecodedFingerprint {
    decode(code, &fp.extract(suspect), payload_len)
}

/// Hamming(7,4) encoder: bits `[d0,d1,d2,d3]` →
/// `[p0,p1,d0,p2,d1,d2,d3]` (parity positions 1,2,4 in 1-based indexing).
fn hamming74_encode(d: [bool; 4]) -> [bool; 7] {
    let p0 = d[0] ^ d[1] ^ d[3];
    let p1 = d[0] ^ d[2] ^ d[3];
    let p2 = d[1] ^ d[2] ^ d[3];
    [p0, p1, d[0], p2, d[1], d[2], d[3]]
}

/// Hamming(7,4) decoder: returns the corrected data bits and the 0-based
/// index of a corrected (flipped) position, if any.
fn hamming74_decode(mut c: [bool; 7]) -> ([bool; 4], Option<usize>) {
    let s0 = c[0] ^ c[2] ^ c[4] ^ c[6];
    let s1 = c[1] ^ c[2] ^ c[5] ^ c[6];
    let s2 = c[3] ^ c[4] ^ c[5] ^ c[6];
    let syndrome = usize::from(s0) | usize::from(s1) << 1 | usize::from(s2) << 2;
    let flipped = if syndrome == 0 {
        None
    } else {
        let idx = syndrome - 1; // 1-based position -> 0-based index
        c[idx] = !c[idx];
        Some(idx)
    };
    ([c[2], c[4], c[5], c[6]], flipped)
}

#[cfg(test)]
mod tests {
    use super::*;
    use odcfp_logic::rng::Xoshiro256;
    use odcfp_netlist::CellLibrary;
    use odcfp_synth::benchmarks::random::{random_dag, DagParams};

    #[test]
    fn hamming74_roundtrip_and_single_error_correction() {
        for d in 0..16usize {
            let data = [d & 1 == 1, d & 2 == 2, d & 4 == 4, d & 8 == 8];
            let code = hamming74_encode(data);
            let (back, flipped) = hamming74_decode(code);
            assert_eq!(back, data);
            assert_eq!(flipped, None);
            for e in 0..7 {
                let mut corrupted = code;
                corrupted[e] = !corrupted[e];
                let (fixed, pos) = hamming74_decode(corrupted);
                assert_eq!(fixed, data, "data {d} error at {e}");
                assert_eq!(pos, Some(e));
            }
        }
    }

    #[test]
    fn repetition_roundtrip_and_majority() {
        let payload = [true, false, true, true];
        let bits = encode(Code::Repetition(5), &payload, 24).unwrap();
        assert_eq!(bits.len(), 24);
        let d = decode(Code::Repetition(5), &bits, 4);
        assert_eq!(d.payload, payload);
        assert!(d.tampered_locations.is_empty());
        // Two flips per group still decode.
        let mut tampered = bits.clone();
        tampered[0] = !tampered[0];
        tampered[3] = !tampered[3];
        tampered[6] = !tampered[6];
        let d2 = decode(Code::Repetition(5), &tampered, 4);
        assert_eq!(d2.payload, payload);
        assert_eq!(d2.tampered_locations, vec![0, 3, 6]);
    }

    #[test]
    fn capacity_checks() {
        assert_eq!(Code::Repetition(3).payload_capacity(10), 3);
        assert_eq!(Code::Hamming.payload_capacity(21), 12);
        assert!(matches!(
            encode(Code::Hamming, &[true; 13], 21),
            Err(FingerprintError::BitLengthMismatch { .. })
        ));
    }

    #[test]
    #[should_panic(expected = "repetition factor")]
    fn even_repetition_rejected() {
        let _ = encode(Code::Repetition(4), &[true], 8);
    }

    #[test]
    fn end_to_end_tamper_recovery() {
        // Embed a coded buyer id, let the adversary flip a few wires
        // (modelled by embedding the tampered bit string), and recover both
        // the id and the tamper locations.
        let base = random_dag(
            CellLibrary::standard(),
            DagParams {
                inputs: 12,
                gates: 220,
                outputs: 10,
                window: 40,
                seed: 99,
            },
        );
        let fp = Fingerprinter::new(base).unwrap();
        let n = fp.locations().len();
        assert!(n >= 14, "need at least two Hamming blocks, got {n}");
        let payload_len = Code::Hamming.payload_capacity(n).min(8);
        let mut rng = Xoshiro256::seed_from_u64(12);
        let payload: Vec<bool> = (0..payload_len).map(|_| rng.next_bool()).collect();

        let copy = embed_payload(&fp, Code::Hamming, &payload).unwrap();
        // Clean extraction.
        let clean = extract_payload(&fp, Code::Hamming, copy.netlist(), payload_len);
        assert_eq!(clean.payload, payload);
        assert!(clean.tampered_locations.is_empty());

        // Adversary flips one location in each of the first two blocks.
        let mut bits = copy.bits().to_vec();
        bits[2] = !bits[2];
        bits[9] = !bits[9];
        let tampered_copy = fp.embed(&bits).unwrap();
        let recovered =
            extract_payload(&fp, Code::Hamming, tampered_copy.netlist(), payload_len);
        assert_eq!(recovered.payload, payload, "payload survives tampering");
        assert_eq!(recovered.tampered_locations, vec![2, 9]);
    }

    #[test]
    fn padding_is_deterministic() {
        let a = encode(Code::Hamming, &[true, false], 20).unwrap();
        let b = encode(Code::Hamming, &[true, false], 20).unwrap();
        assert_eq!(a, b);
        assert_eq!(a.len(), 20);
    }
}
