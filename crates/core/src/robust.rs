//! Robust (error-correcting) fingerprints — the §V extension.
//!
//! *"For gates with an excessive number of fingerprint combinations, we can
//! ... include additional functionality to our fingerprints, such as error
//! correcting codes or redundancy, so that even if an adversary tampers
//! with the circuit, we can figure out what they have done and what the
//! original fingerprint was."*
//!
//! Two codes are provided over the location bit string:
//!
//! * [`Code::Repetition`] — each payload bit is embedded `r` times and
//!   decoded by majority; tolerates `⌊(r-1)/2⌋` flips per payload bit;
//! * [`Code::Hamming`] — SECDED extended Hamming(8,4) blocks: 4 payload
//!   bits per 8 locations, correcting one flip per block and *detecting*
//!   (not mis-correcting) two.
//!
//! Both decoders also report *which* locations appear tampered, answering
//! the paper's "figure out what they have done" — and both report a
//! [`DecodeStatus`]: a decode that exceeded the code's confidence margin
//! comes back [`DecodeStatus::Ambiguous`] rather than silently wrong.
//! (Plain Hamming(7,4) cannot do this — a double error is mathematically
//! indistinguishable from a single one — which is why the Hamming code
//! here carries the SECDED overall-parity bit.)

use crate::verify::{verify_equivalent, Verdict, VerifyPolicy};
use crate::{FingerprintError, Fingerprinter, FingerprintedCopy};

/// The error-correcting code protecting a fingerprint payload.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Code {
    /// Repeat every payload bit `r` times (majority decode). `r` must be
    /// odd and ≥ 3.
    Repetition(usize),
    /// Extended Hamming(8,4) with SECDED: 4 payload bits per 8 locations,
    /// single-error correction and double-error detection per block.
    Hamming,
}

impl Code {
    /// Payload bits representable with `locations` fingerprint locations.
    pub fn payload_capacity(self, locations: usize) -> usize {
        match self {
            Code::Repetition(r) => locations / r,
            Code::Hamming => (locations / 8) * 4,
        }
    }
}

/// How much trust a decode deserves, worst block/group wins.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum DecodeStatus {
    /// Every block matched its codeword exactly.
    Clean,
    /// Errors were found and corrected within the code's margin; the
    /// payload is trustworthy and the flips are localized.
    Corrected,
    /// At least one block exceeded the code's confidence margin (a
    /// SECDED double error, or a repetition majority decided by ≤ 1
    /// vote). The payload is the decoder's best effort and must not be
    /// trusted without independent evidence.
    Ambiguous,
}

/// The outcome of decoding a (possibly tampered) fingerprint.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DecodedFingerprint {
    /// The recovered payload bits.
    pub payload: Vec<bool>,
    /// Location indices whose extracted bit disagreed with the corrected
    /// codeword — the tamper evidence.
    pub tampered_locations: Vec<usize>,
    /// Confidence of the decode; check before trusting `payload`.
    pub status: DecodeStatus,
}

/// Encodes a payload into a location bit string.
///
/// Unused trailing locations are set to parity padding (alternating bits
/// derived from the payload length) so the whole string stays
/// deterministic.
///
/// # Errors
///
/// Returns [`FingerprintError::BitLengthMismatch`] when the payload
/// exceeds the code's capacity for `locations`, and panics if a
/// repetition factor is even or < 3.
pub fn encode(code: Code, payload: &[bool], locations: usize) -> Result<Vec<bool>, FingerprintError> {
    if let Code::Repetition(r) = code {
        assert!(r >= 3 && r % 2 == 1, "repetition factor must be odd and >= 3");
    }
    let capacity = code.payload_capacity(locations);
    if payload.len() > capacity {
        return Err(FingerprintError::BitLengthMismatch {
            expected: capacity,
            found: payload.len(),
        });
    }
    let mut bits = Vec::with_capacity(locations);
    match code {
        Code::Repetition(r) => {
            for &p in payload {
                bits.extend(std::iter::repeat_n(p, r));
            }
        }
        Code::Hamming => {
            for block in payload.chunks(4) {
                let mut d = [false; 4];
                d[..block.len()].copy_from_slice(block);
                bits.extend_from_slice(&hamming84_encode(d));
            }
        }
    }
    while bits.len() < locations {
        bits.push(bits.len() % 2 == 1);
    }
    bits.truncate(locations);
    Ok(bits)
}

/// Decodes a (possibly tampered) location bit string.
///
/// `payload_len` must match what was passed to [`encode`].
///
/// # Example
///
/// ```
/// use odcfp_core::robust::{decode, encode, Code, DecodeStatus};
///
/// let payload = [true, false, true, true];
/// let mut bits = encode(Code::Hamming, &payload, 8)?;
/// bits[3] = !bits[3]; // adversary flips one wire
/// let recovered = decode(Code::Hamming, &bits, 4);
/// assert_eq!(recovered.payload, payload);
/// assert_eq!(recovered.tampered_locations, vec![3]);
/// assert_eq!(recovered.status, DecodeStatus::Corrected);
/// # Ok::<(), odcfp_core::FingerprintError>(())
/// ```
pub fn decode(code: Code, bits: &[bool], payload_len: usize) -> DecodedFingerprint {
    let mut payload = Vec::with_capacity(payload_len);
    let mut tampered = Vec::new();
    let mut status = DecodeStatus::Clean;
    match code {
        Code::Repetition(r) => {
            for (k, chunk) in bits.chunks(r).take(payload_len).enumerate() {
                let ones = chunk.iter().filter(|&&b| b).count();
                let zeros = chunk.len() - ones;
                let value = ones > zeros;
                payload.push(value);
                let group_status = match ones.abs_diff(zeros) {
                    // A majority of one vote (or a tie on a truncated
                    // group) is one flip away from deciding the other
                    // way: the decode is a guess, and says so.
                    0 | 1 => DecodeStatus::Ambiguous,
                    d if d == chunk.len() => DecodeStatus::Clean,
                    _ => DecodeStatus::Corrected,
                };
                status = status.max(group_status);
                for (j, &b) in chunk.iter().enumerate() {
                    if b != value {
                        tampered.push(k * r + j);
                    }
                }
            }
        }
        Code::Hamming => {
            let blocks_needed = payload_len.div_ceil(4);
            for (k, chunk) in bits.chunks(8).take(blocks_needed).enumerate() {
                let mut block = [false; 8];
                block[..chunk.len()].copy_from_slice(chunk);
                let (data, outcome) = hamming84_decode(block);
                let block_status = match outcome {
                    BlockOutcome::Clean => DecodeStatus::Clean,
                    BlockOutcome::CorrectedAt(j) => {
                        if j < chunk.len() {
                            tampered.push(k * 8 + j);
                        }
                        DecodeStatus::Corrected
                    }
                    // Two flips: detected but not localizable — the data
                    // bits are reported raw and flagged.
                    BlockOutcome::DoubleError => DecodeStatus::Ambiguous,
                };
                status = status.max(block_status);
                payload.extend_from_slice(&data);
            }
            payload.truncate(payload_len);
        }
    }
    DecodedFingerprint {
        payload,
        tampered_locations: tampered,
        status,
    }
}

/// Embeds an error-correction-coded payload through an engine.
///
/// # Errors
///
/// Propagates capacity and embedding errors.
pub fn embed_payload(
    fp: &Fingerprinter,
    code: Code,
    payload: &[bool],
) -> Result<FingerprintedCopy, FingerprintError> {
    let bits = encode(code, payload, fp.locations().len())?;
    fp.embed(&bits)
}

/// Embeds an error-correction-coded payload under an explicit
/// [`VerifyPolicy`], returning the copy alongside the earned verdict.
///
/// # Errors
///
/// Propagates capacity and embedding errors; a refuted equivalence check
/// is promoted to [`FingerprintError::NotEquivalent`].
pub fn embed_payload_with_policy(
    fp: &Fingerprinter,
    code: Code,
    payload: &[bool],
    policy: &VerifyPolicy,
) -> Result<(FingerprintedCopy, Verdict), FingerprintError> {
    let bits = encode(code, payload, fp.locations().len())?;
    fp.embed_with_policy(&bits, policy)
}

/// Extracts and decodes a payload from a suspect copy.
pub fn extract_payload(
    fp: &Fingerprinter,
    code: Code,
    suspect: &odcfp_netlist::Netlist,
    payload_len: usize,
) -> DecodedFingerprint {
    decode(code, &fp.extract(suspect), payload_len)
}

/// Extracts and decodes a payload *and* checks that the suspect still
/// computes the base function.
///
/// Fingerprint modifications never change the function, so an
/// inequivalent suspect means the adversary edited more than fingerprint
/// wires — evidence worth having next to the decoded payload. The verdict
/// is returned as data (including [`Verdict::Refuted`]): a tampered
/// suspect is precisely the input this decoder exists for.
///
/// # Errors
///
/// Returns an error only when the comparison itself is impossible
/// (invalid netlist, mismatched interface).
pub fn extract_payload_verified(
    fp: &Fingerprinter,
    code: Code,
    suspect: &odcfp_netlist::Netlist,
    payload_len: usize,
    policy: &VerifyPolicy,
) -> Result<(DecodedFingerprint, Verdict), FingerprintError> {
    let verdict = verify_equivalent(fp.base(), suspect, policy)?;
    Ok((extract_payload(fp, code, suspect, payload_len), verdict))
}

/// What a SECDED block decode concluded.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum BlockOutcome {
    /// Codeword intact.
    Clean,
    /// Exactly one flip, corrected at this 0-based position.
    CorrectedAt(usize),
    /// Two flips detected; correction impossible, data reported raw.
    DoubleError,
}

/// Extended Hamming(8,4) encoder: bits `[d0,d1,d2,d3]` →
/// `[p0,p1,d0,p2,d1,d2,d3,P]` — Hamming(7,4) with parity positions
/// 1,2,4 (1-based) plus an overall even-parity bit `P` for SECDED.
fn hamming84_encode(d: [bool; 4]) -> [bool; 8] {
    let p0 = d[0] ^ d[1] ^ d[3];
    let p1 = d[0] ^ d[2] ^ d[3];
    let p2 = d[1] ^ d[2] ^ d[3];
    let c = [p0, p1, d[0], p2, d[1], d[2], d[3]];
    let overall = c.iter().fold(false, |acc, &b| acc ^ b);
    [c[0], c[1], c[2], c[3], c[4], c[5], c[6], overall]
}

/// Extended Hamming(8,4) SECDED decoder.
///
/// Syndrome × overall-parity cases: both clear ⇒ clean; parity violated ⇒
/// a single flip (at the syndrome position, or the parity bit itself),
/// corrected; syndrome set with parity intact ⇒ an even number of flips —
/// detected, reported uncorrected.
fn hamming84_decode(mut c: [bool; 8]) -> ([bool; 4], BlockOutcome) {
    let s0 = c[0] ^ c[2] ^ c[4] ^ c[6];
    let s1 = c[1] ^ c[2] ^ c[5] ^ c[6];
    let s2 = c[3] ^ c[4] ^ c[5] ^ c[6];
    let syndrome = usize::from(s0) | usize::from(s1) << 1 | usize::from(s2) << 2;
    let parity_violated = c.iter().fold(false, |acc, &b| acc ^ b);
    let outcome = match (syndrome, parity_violated) {
        (0, false) => BlockOutcome::Clean,
        (0, true) => BlockOutcome::CorrectedAt(7), // the parity bit itself
        (s, true) => {
            let idx = s - 1; // 1-based position -> 0-based index
            c[idx] = !c[idx];
            BlockOutcome::CorrectedAt(idx)
        }
        (_, false) => BlockOutcome::DoubleError,
    };
    ([c[2], c[4], c[5], c[6]], outcome)
}

#[cfg(test)]
mod tests {
    use super::*;
    use odcfp_logic::rng::Xoshiro256;
    use odcfp_netlist::CellLibrary;
    use odcfp_synth::benchmarks::random::{random_dag, DagParams};

    #[test]
    fn hamming84_roundtrip_and_single_error_correction() {
        for d in 0..16usize {
            let data = [d & 1 == 1, d & 2 == 2, d & 4 == 4, d & 8 == 8];
            let code = hamming84_encode(data);
            let (back, outcome) = hamming84_decode(code);
            assert_eq!(back, data);
            assert_eq!(outcome, BlockOutcome::Clean);
            for e in 0..8 {
                let mut corrupted = code;
                corrupted[e] = !corrupted[e];
                let (fixed, outcome) = hamming84_decode(corrupted);
                assert_eq!(fixed, data, "data {d} error at {e}");
                assert_eq!(outcome, BlockOutcome::CorrectedAt(e));
            }
        }
    }

    #[test]
    fn hamming84_detects_every_double_error() {
        for d in 0..16usize {
            let data = [d & 1 == 1, d & 2 == 2, d & 4 == 4, d & 8 == 8];
            let code = hamming84_encode(data);
            for e1 in 0..8 {
                for e2 in (e1 + 1)..8 {
                    let mut corrupted = code;
                    corrupted[e1] = !corrupted[e1];
                    corrupted[e2] = !corrupted[e2];
                    let (_, outcome) = hamming84_decode(corrupted);
                    assert_eq!(
                        outcome,
                        BlockOutcome::DoubleError,
                        "data {d} flips at {e1},{e2} must be detected, not mis-corrected"
                    );
                }
            }
        }
    }

    #[test]
    fn repetition_roundtrip_and_majority() {
        let payload = [true, false, true, true];
        let bits = encode(Code::Repetition(5), &payload, 24).unwrap();
        assert_eq!(bits.len(), 24);
        let d = decode(Code::Repetition(5), &bits, 4);
        assert_eq!(d.payload, payload);
        assert!(d.tampered_locations.is_empty());
        // Two flips per group still decode.
        let mut tampered = bits.clone();
        tampered[0] = !tampered[0];
        tampered[3] = !tampered[3];
        tampered[6] = !tampered[6];
        let d2 = decode(Code::Repetition(5), &tampered, 4);
        assert_eq!(d2.payload, payload);
        assert_eq!(d2.tampered_locations, vec![0, 3, 6]);
    }

    #[test]
    fn capacity_checks() {
        assert_eq!(Code::Repetition(3).payload_capacity(10), 3);
        assert_eq!(Code::Hamming.payload_capacity(24), 12);
        assert_eq!(Code::Hamming.payload_capacity(23), 8);
        assert!(matches!(
            encode(Code::Hamming, &[true; 13], 24),
            Err(FingerprintError::BitLengthMismatch { .. })
        ));
    }

    #[test]
    fn double_flip_in_a_hamming_block_is_flagged_not_mislead() {
        let payload = [true, false, true, true, false, true, false, false];
        let bits = encode(Code::Hamming, &payload, 16).unwrap();
        // Two flips inside the first block.
        let mut tampered = bits.clone();
        tampered[1] = !tampered[1];
        tampered[5] = !tampered[5];
        let d = decode(Code::Hamming, &tampered, 8);
        assert_eq!(d.status, DecodeStatus::Ambiguous);
        // The untouched second block still decodes its half correctly.
        assert_eq!(&d.payload[4..], &payload[4..]);
    }

    #[test]
    fn repetition_beyond_tolerance_is_flagged_not_mislead() {
        let payload = [true, false];
        let bits = encode(Code::Repetition(3), &payload, 6).unwrap();
        // Two flips in the first 3-bit group: beyond ⌊(3-1)/2⌋ = 1, the
        // majority now reads the wrong value — the decode must say so.
        let mut tampered = bits.clone();
        tampered[0] = !tampered[0];
        tampered[1] = !tampered[1];
        let d = decode(Code::Repetition(3), &tampered, 2);
        assert_eq!(d.status, DecodeStatus::Ambiguous);
        // Sanity: clean decode is Clean and within-tolerance r=5 decodes
        // with a confident margin.
        assert_eq!(decode(Code::Repetition(3), &bits, 2).status, DecodeStatus::Clean);
        let wide = encode(Code::Repetition(5), &payload, 10).unwrap();
        let mut one_flip = wide.clone();
        one_flip[2] = !one_flip[2];
        let d5 = decode(Code::Repetition(5), &one_flip, 2);
        assert_eq!(d5.payload, payload);
        assert_eq!(d5.status, DecodeStatus::Corrected);
        assert_eq!(d5.tampered_locations, vec![2]);
    }

    #[test]
    #[should_panic(expected = "repetition factor")]
    fn even_repetition_rejected() {
        let _ = encode(Code::Repetition(4), &[true], 8);
    }

    #[test]
    fn end_to_end_tamper_recovery() {
        // Embed a coded buyer id, let the adversary flip a few wires
        // (modelled by embedding the tampered bit string), and recover both
        // the id and the tamper locations.
        let base = random_dag(
            CellLibrary::standard(),
            DagParams {
                inputs: 12,
                gates: 220,
                outputs: 10,
                window: 40,
                seed: 99,
            },
        );
        let fp = Fingerprinter::new(base).unwrap();
        let n = fp.locations().len();
        assert!(n >= 16, "need at least two Hamming blocks, got {n}");
        let payload_len = Code::Hamming.payload_capacity(n).min(8);
        let mut rng = Xoshiro256::seed_from_u64(12);
        let payload: Vec<bool> = (0..payload_len).map(|_| rng.next_bool()).collect();

        let copy = embed_payload(&fp, Code::Hamming, &payload).unwrap();
        // Clean extraction.
        let clean = extract_payload(&fp, Code::Hamming, copy.netlist(), payload_len);
        assert_eq!(clean.payload, payload);
        assert!(clean.tampered_locations.is_empty());
        assert_eq!(clean.status, DecodeStatus::Clean);

        // Adversary flips one location in each of the first two blocks.
        let mut bits = copy.bits().to_vec();
        bits[2] = !bits[2];
        bits[10] = !bits[10];
        let tampered_copy = fp.embed(&bits).unwrap();
        let recovered =
            extract_payload(&fp, Code::Hamming, tampered_copy.netlist(), payload_len);
        assert_eq!(recovered.payload, payload, "payload survives tampering");
        assert_eq!(recovered.tampered_locations, vec![2, 10]);
        assert_eq!(recovered.status, DecodeStatus::Corrected);
    }

    #[test]
    fn verified_payload_roundtrip_reports_equivalence() {
        let base = random_dag(
            CellLibrary::standard(),
            DagParams {
                inputs: 12,
                gates: 220,
                outputs: 10,
                window: 40,
                seed: 98,
            },
        );
        let fp = Fingerprinter::new(base).unwrap();
        let payload_len = Code::Hamming.payload_capacity(fp.locations().len()).min(4);
        let payload: Vec<bool> = (0..payload_len).map(|i| i % 2 == 0).collect();
        let policy = VerifyPolicy::quick();
        let (copy, verdict) =
            embed_payload_with_policy(&fp, Code::Hamming, &payload, &policy).unwrap();
        assert!(verdict.is_pass(), "embed: {verdict}");
        let (decoded, verdict) =
            extract_payload_verified(&fp, Code::Hamming, copy.netlist(), payload_len, &policy)
                .unwrap();
        assert_eq!(decoded.payload, payload);
        assert!(verdict.is_pass(), "extract: {verdict}");
    }

    #[test]
    fn padding_is_deterministic() {
        let a = encode(Code::Hamming, &[true, false], 20).unwrap();
        let b = encode(Code::Hamming, &[true, false], 20).unwrap();
        assert_eq!(a, b);
        assert_eq!(a.len(), 20);
    }
}
