//! Deterministic, seeded fault injection — the adversary/defect model the
//! verification battery is graded against.
//!
//! Defense in depth only means something if every layer is exercised
//! against the failures it claims to catch. This module manufactures
//! those failures on demand, reproducibly:
//!
//! * **silicon defects** — [`stuck_at`] ties any net to a constant;
//!   [`substitute_cell`] swaps a gate for the complementary cell of the
//!   same arity (the classic mask/wrong-via defect);
//! * **fingerprint-wire faults** — dropped or duplicated optional
//!   connections, modelled as bit flips on the embedding vector (the
//!   structural change a missing or extra trigger wire produces);
//! * **fuse faults** — flipped bits in a
//!   [`FlexibleDesign`](crate::FlexibleDesign) programming map;
//! * **source corruption** — truncated netlist text handed to a parser.
//!
//! [`FaultInjector`] wraps a seeded RNG so a battery run is a pure
//! function of its seed: a failure reported by CI reproduces locally
//! bit-for-bit.
//!
//! Which layer catches what: stuck-at and wrong-cell faults that change
//! the function are refuted by [`verify_equivalent`](crate::verify) —
//! while ODC-masked instances are *correctly* proven harmless, not
//! silently mis-accepted. Fingerprint-wire and fuse faults preserve the
//! function by construction (that is the paper's point), so equivalence
//! checking cannot see them; the [`robust`](crate::robust) decoder
//! localizes them instead. Truncated sources never reach a netlist: the
//! parsers report typed errors.

use odcfp_logic::rng::Xoshiro256;
use odcfp_logic::PrimitiveFn;
use odcfp_netlist::{GateId, NetDriver, NetId, Netlist};

/// The fault classes the battery injects, for labelling and reporting.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FaultClass {
    /// A net tied to a constant 0/1 (manufacturing short).
    StuckAtNet,
    /// A fingerprint wire absent though its bit says present.
    DroppedFingerprintWire,
    /// A fingerprint wire present though its bit says absent.
    DuplicatedFingerprintWire,
    /// A flipped bit in a fuse programming map.
    FuseBitFlip,
    /// A gate fabricated as the complementary cell of the same arity.
    WrongCellSubstitution,
    /// Netlist source text cut off mid-stream.
    TruncatedSource,
}

impl FaultClass {
    /// Every class, in a fixed order (for exhaustive batteries).
    pub const ALL: [FaultClass; 6] = [
        FaultClass::StuckAtNet,
        FaultClass::DroppedFingerprintWire,
        FaultClass::DuplicatedFingerprintWire,
        FaultClass::FuseBitFlip,
        FaultClass::WrongCellSubstitution,
        FaultClass::TruncatedSource,
    ];
}

/// Rebuilds `netlist` with every reader of `target` redirected to a fresh
/// constant `value` net — a stuck-at fault.
///
/// The original driver (gate or primary input) is kept, now driving a
/// sink-less net, so the primary interface is unchanged and the faulty
/// netlist still validates: the fault is *functional*, exactly like a
/// short in silicon, not a structurally broken file.
pub fn stuck_at(netlist: &Netlist, target: NetId, value: bool) -> Netlist {
    let mut faulty = Netlist::new(
        format!("{}_stuck", netlist.name()),
        netlist.library().clone(),
    );
    let mut net_map: Vec<NetId> = Vec::with_capacity(netlist.num_nets());
    for (_, net) in netlist.nets() {
        let new = match net.driver() {
            NetDriver::PrimaryInput => faulty.add_primary_input(net.name()),
            NetDriver::Const(v) => faulty.add_constant(net.name(), v),
            _ => faulty.add_net(net.name()),
        };
        net_map.push(new);
    }
    let stuck = faulty.add_constant(
        format!("{}_sa{}", netlist.net(target).name(), u8::from(value)),
        value,
    );
    let remap = |n: NetId| {
        if n == target {
            stuck
        } else {
            net_map[n.index()]
        }
    };
    for (_, gate) in netlist.gates() {
        let inputs: Vec<NetId> = gate.inputs().iter().map(|&n| remap(n)).collect();
        faulty.add_gate_driving(
            gate.name(),
            gate.cell(),
            &inputs,
            net_map[gate.output().index()],
        );
    }
    for &po in netlist.primary_outputs() {
        faulty.set_primary_output(remap(po));
    }
    faulty
}

/// The cell function a defect most plausibly confuses `f` with: its
/// complement (same arity, same pin count, inverted behaviour).
pub fn confused_function(f: PrimitiveFn) -> PrimitiveFn {
    match f {
        PrimitiveFn::Buf => PrimitiveFn::Inv,
        PrimitiveFn::Inv => PrimitiveFn::Buf,
        PrimitiveFn::And => PrimitiveFn::Nand,
        PrimitiveFn::Nand => PrimitiveFn::And,
        PrimitiveFn::Or => PrimitiveFn::Nor,
        PrimitiveFn::Nor => PrimitiveFn::Or,
        PrimitiveFn::Xor => PrimitiveFn::Xnor,
        PrimitiveFn::Xnor => PrimitiveFn::Xor,
    }
}

/// Clones `netlist` with gate `target` swapped for the complementary cell
/// of the same arity — the wrong-cell substitution defect.
///
/// Returns `None` when the library has no complementary cell at that
/// arity (the fault cannot be fabricated from this library).
pub fn substitute_cell(netlist: &Netlist, target: GateId) -> Option<Netlist> {
    let arity = netlist.gate(target).inputs().len();
    let wrong = confused_function(netlist.gate_fn(target));
    let cell = netlist.library().cell_for(wrong, arity)?;
    let mut faulty = netlist.clone();
    let inputs = faulty.gate(target).inputs().to_vec();
    faulty.replace_gate(target, cell, &inputs);
    Some(faulty)
}

/// A deterministic source of randomized faults: every choice is drawn
/// from one seeded RNG, so a battery run replays exactly from its seed.
#[derive(Debug)]
pub struct FaultInjector {
    rng: Xoshiro256,
}

impl FaultInjector {
    /// Creates an injector; the same seed yields the same fault sequence.
    pub fn new(seed: u64) -> Self {
        FaultInjector {
            rng: Xoshiro256::seed_from_u64(seed),
        }
    }

    /// Injects a stuck-at fault on a uniformly chosen gate-driven net.
    /// Returns the faulty netlist with the chosen net and value, or
    /// `None` for a gateless netlist.
    pub fn random_stuck_at(&mut self, netlist: &Netlist) -> Option<(Netlist, NetId, bool)> {
        let internal: Vec<NetId> = netlist
            .nets()
            .filter(|(_, net)| matches!(net.driver(), NetDriver::Gate(_)))
            .map(|(id, _)| id)
            .collect();
        if internal.is_empty() {
            return None;
        }
        let target = internal[self.rng.next_below(internal.len())];
        let value = self.rng.next_bool();
        Some((stuck_at(netlist, target, value), target, value))
    }

    /// Substitutes a wrong cell at a uniformly chosen gate. Returns
    /// `None` when no gate in the netlist has a complementary cell
    /// available in the library.
    pub fn random_wrong_cell(&mut self, netlist: &Netlist) -> Option<(Netlist, GateId)> {
        let mut candidates: Vec<GateId> = netlist.gates().map(|(id, _)| id).collect();
        self.rng.shuffle(&mut candidates);
        candidates
            .into_iter()
            .find_map(|g| substitute_cell(netlist, g).map(|n| (n, g)))
    }

    /// Flips one uniformly chosen bit (fuse-map corruption). Returns the
    /// flipped vector and the index, or `None` for an empty vector.
    pub fn random_bit_flip(&mut self, bits: &[bool]) -> Option<(Vec<bool>, usize)> {
        if bits.is_empty() {
            return None;
        }
        let i = self.rng.next_below(bits.len());
        let mut flipped = bits.to_vec();
        flipped[i] = !flipped[i];
        Some((flipped, i))
    }

    /// Clears one uniformly chosen set bit — a fingerprint wire that was
    /// supposed to be connected but is missing. `None` if no bit is set.
    pub fn drop_random_wire(&mut self, bits: &[bool]) -> Option<(Vec<bool>, usize)> {
        self.flip_with_value(bits, true)
    }

    /// Sets one uniformly chosen clear bit — an extra fingerprint wire
    /// that was never supposed to exist. `None` if every bit is set.
    pub fn duplicate_random_wire(&mut self, bits: &[bool]) -> Option<(Vec<bool>, usize)> {
        self.flip_with_value(bits, false)
    }

    fn flip_with_value(&mut self, bits: &[bool], current: bool) -> Option<(Vec<bool>, usize)> {
        let eligible: Vec<usize> = bits
            .iter()
            .enumerate()
            .filter(|&(_, &b)| b == current)
            .map(|(i, _)| i)
            .collect();
        if eligible.is_empty() {
            return None;
        }
        let i = eligible[self.rng.next_below(eligible.len())];
        let mut flipped = bits.to_vec();
        flipped[i] = !flipped[i];
        Some((flipped, i))
    }

    /// Truncates source text at a uniformly chosen byte offset strictly
    /// inside the text (always cutting something, never everything),
    /// snapped back to a UTF-8 boundary.
    pub fn truncate_source(&mut self, text: &str) -> String {
        if text.len() < 2 {
            return String::new();
        }
        let mut cut = 1 + self.rng.next_below(text.len() - 1);
        while !text.is_char_boundary(cut) {
            cut -= 1;
        }
        text[..cut].to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use odcfp_netlist::CellLibrary;
    use odcfp_synth::benchmarks::random::{random_dag, DagParams};

    fn small() -> Netlist {
        random_dag(CellLibrary::standard(), DagParams::small(7))
    }

    #[test]
    fn stuck_at_preserves_interface_and_validates() {
        let base = small();
        let mut inj = FaultInjector::new(1);
        let (faulty, net, value) = inj.random_stuck_at(&base).unwrap();
        faulty.validate().unwrap();
        assert_eq!(
            faulty.primary_inputs().len(),
            base.primary_inputs().len()
        );
        assert_eq!(
            faulty.primary_outputs().len(),
            base.primary_outputs().len()
        );
        // The stuck constant exists and carries the injected value.
        let name = format!("{}_sa{}", base.net(net).name(), u8::from(value));
        assert!(faulty.net_by_name(&name).is_some());
    }

    #[test]
    fn wrong_cell_changes_exactly_one_gate() {
        let base = small();
        let mut inj = FaultInjector::new(2);
        let (faulty, gate) = inj.random_wrong_cell(&base).unwrap();
        faulty.validate().unwrap();
        assert_eq!(faulty.num_gates(), base.num_gates());
        assert_eq!(
            faulty.gate_fn(gate),
            confused_function(base.gate_fn(gate))
        );
        let changed = base
            .gates()
            .filter(|&(id, g)| g.cell() != faulty.gate(id).cell())
            .count();
        assert_eq!(changed, 1);
    }

    #[test]
    fn confused_function_is_an_involution() {
        for f in PrimitiveFn::ALL {
            assert_ne!(confused_function(f), f);
            assert_eq!(confused_function(confused_function(f)), f);
        }
    }

    #[test]
    fn bit_faults_flip_exactly_one_bit() {
        let bits = [true, false, true, true, false];
        let mut inj = FaultInjector::new(3);
        let (flipped, i) = inj.random_bit_flip(&bits).unwrap();
        assert_eq!(flipped[i], !bits[i]);
        assert_eq!(
            flipped.iter().zip(&bits).filter(|(a, b)| a != b).count(),
            1
        );
        let (dropped, j) = inj.drop_random_wire(&bits).unwrap();
        assert!(bits[j] && !dropped[j]);
        let (duped, k) = inj.duplicate_random_wire(&bits).unwrap();
        assert!(!bits[k] && duped[k]);
        assert!(inj.random_bit_flip(&[]).is_none());
        assert!(inj.drop_random_wire(&[false]).is_none());
        assert!(inj.duplicate_random_wire(&[true]).is_none());
    }

    #[test]
    fn injector_is_deterministic() {
        let base = small();
        let a = FaultInjector::new(9).random_stuck_at(&base).unwrap();
        let b = FaultInjector::new(9).random_stuck_at(&base).unwrap();
        assert_eq!(a.1, b.1);
        assert_eq!(a.2, b.2);
        let mut i1 = FaultInjector::new(10);
        let mut i2 = FaultInjector::new(10);
        assert_eq!(i1.truncate_source("abcdefgh"), i2.truncate_source("abcdefgh"));
    }

    #[test]
    fn truncation_always_shortens() {
        let text = ".model m\n.inputs a\n.outputs y\n.names a y\n1 1\n.end\n";
        let mut inj = FaultInjector::new(4);
        for _ in 0..32 {
            let cut = inj.truncate_source(text);
            assert!(cut.len() < text.len());
        }
        assert_eq!(inj.truncate_source(""), "");
        assert_eq!(inj.truncate_source("x"), "");
    }
}
