//! Delta-encoded buyer artifacts ("codebooks") and one-shot batch
//! verification of the whole code space.
//!
//! A fingerprinted buyer copy is fully determined by the golden netlist,
//! the fingerprinter's selected modifications, and the buyer's bit
//! string — which itself derives from `seed ⊕ buyer` (the PR 3
//! determinism contract). Materializing a full netlist per buyer
//! therefore stores the same `O(gates)` text a million times over. A
//! *codebook* stores the golden artifact once and one ~hundred-byte
//! `code` record per buyer (packed bits + verdict + identity digest),
//! from which the full artifact re-mints bit-identically on demand.
//!
//! Verification gets the same treatment. [`CodeSpace::build`] applies
//! **all** selected modifications to one *superposed* netlist and
//! records, for every added input, which location controls it and the
//! plane-neutral value it takes when that location is unselected. One
//! SAT solve with all selectors free
//! ([`VerifySession::prove_code_space`]) then proves every `2^L` code
//! equivalent to the golden at once — the "location-delta algebra" — and
//! each buyer's verification collapses to a combination check. Soundness
//! does not rest on any compositionality assumption about ODCs: the
//! selectable encoding is *exact* (a neutral literal is the identity of
//! its plane, so pinning the selectors to a code yields precisely that
//! code's netlist), so the free-selector UNSAT is a real proof for every
//! buyer. If the solve refutes or runs out of budget, callers fall back
//! to the existing per-buyer path and verdicts stay identical.
//!
//! Codebook files (`codebook.<circuit>.jsonl`) use the campaign
//! journal's checksummed flat-JSON line format, written through a
//! bounded-memory streaming writer and fsynced at window boundaries so
//! SIGKILL recovery can truncate to the last durable offset.

use std::fmt::Write as _;
use std::fs::{File, OpenOptions};
use std::io::{BufRead, BufReader, Seek, SeekFrom, Write};
use std::path::{Path, PathBuf};

use odcfp_analysis::cancel::CancelToken;
use odcfp_netlist::{Digest, Digest128, Digester128, Netlist};
use odcfp_sat::SelectableInput;

use crate::campaign::journal::{escape_json, parse_flat_fields};
use crate::modify::apply_modification;
use crate::verify::CodeSpaceProof;
use crate::{FingerprintError, Fingerprinter, VerifySession};

/// The codebook file name for a circuit, inside a campaign output
/// directory.
pub fn codebook_file(circuit: &str) -> String {
    format!("codebook.{circuit}.jsonl")
}

/// The superposed variant of a fingerprinter: every selected
/// modification applied at once, with each added input mapped to the
/// location (selector group) that controls it.
///
/// This is the object batch verification is proven against; see the
/// module docs for the soundness argument.
#[derive(Debug, Clone)]
pub struct CodeSpace {
    superposed: Netlist,
    selectable: Vec<SelectableInput>,
    groups: usize,
}

impl CodeSpace {
    /// Builds the superposed netlist from `fp`'s base and selected
    /// modifications.
    ///
    /// Modifications are applied in selection order, so a gate widened by
    /// several locations accumulates their literals at successive tail
    /// positions — each muxed to the (shared) plane neutral by its own
    /// selector. The widened planes are all symmetric, so dropping any
    /// subset of literals to neutral yields exactly the netlist
    /// [`Fingerprinter::embed`] builds for that subset, which is what
    /// makes the encoding exact even when locations share a target gate.
    ///
    /// # Errors
    ///
    /// Returns [`FingerprintError::CannotApply`] if a modification no
    /// longer applies (e.g. the library lacks a wide-enough cell for the
    /// accumulated arity); the caller falls back to per-buyer
    /// verification.
    pub fn build(fp: &Fingerprinter) -> Result<CodeSpace, FingerprintError> {
        let mods = fp.selected_modifications();
        let mut superposed = fp.base().clone();
        let mut selectable = Vec::new();
        for (group, m) in mods.iter().enumerate() {
            let target = m.target();
            let original_arity = superposed.gate(target).inputs().len();
            apply_modification(&mut superposed, m)?;
            let neutral = superposed
                .gate_fn(target)
                .neutral_input_value()
                .ok_or_else(|| FingerprintError::CannotApply {
                    gate: target,
                    reason: "widened gate has no neutral input value".into(),
                })?;
            for k in 0..m.added_nets().len() {
                selectable.push(SelectableInput {
                    gate: target,
                    position: original_arity + k,
                    group,
                    neutral,
                });
            }
        }
        superposed.validate()?;
        Ok(CodeSpace {
            superposed,
            selectable,
            groups: mods.len(),
        })
    }

    /// Number of selector groups (= fingerprint locations = code length).
    pub fn num_groups(&self) -> usize {
        self.groups
    }

    /// The superposed netlist (all modifications applied).
    pub fn superposed(&self) -> &Netlist {
        &self.superposed
    }

    /// The selectable-input descriptors, one per added literal, for use
    /// with [`VerifySession::prove_code_space`] directly (e.g. to encode
    /// a tampered superposition in differential tests).
    pub fn selectable(&self) -> &[SelectableInput] {
        &self.selectable
    }

    /// Proves the whole code space through `session` in one solve; see
    /// [`VerifySession::prove_code_space`].
    ///
    /// # Errors
    ///
    /// As [`VerifySession::prove_code_space`].
    pub fn prove(
        &self,
        session: &mut VerifySession,
        budget: Option<u64>,
        token: &CancelToken,
    ) -> Result<CodeSpaceProof, FingerprintError> {
        session.prove_code_space(&self.superposed, &self.selectable, self.groups, budget, token)
    }
}

/// Packs a bit string as lowercase hex, four bits per character,
/// LSB-first within each nibble — ¼ the bytes of the journal's `0`/`1`
/// rendering, which matters at a million buyers.
pub fn pack_bits(bits: &[bool]) -> String {
    let mut out = String::with_capacity(bits.len().div_ceil(4));
    for chunk in bits.chunks(4) {
        let mut nibble = 0u32;
        for (j, &bit) in chunk.iter().enumerate() {
            nibble |= u32::from(bit) << j;
        }
        out.push(char::from_digit(nibble, 16).expect("nibble < 16"));
    }
    out
}

/// Reverses [`pack_bits`]; `None` if `hex` is malformed or does not hold
/// exactly `len` bits (after padding the final nibble with zeros).
pub fn unpack_bits(hex: &str, len: usize) -> Option<Vec<bool>> {
    if hex.len() != len.div_ceil(4) {
        return None;
    }
    let mut bits = Vec::with_capacity(len);
    for c in hex.chars() {
        let nibble = c.to_digit(16)?;
        for j in 0..4 {
            bits.push(nibble >> j & 1 == 1);
        }
    }
    // Padding bits beyond `len` must be zero, or the record is corrupt.
    if bits.drain(len..).any(|b| b) {
        return None;
    }
    Some(bits)
}

/// The identity digest of a delta-encoded artifact: folds the golden
/// artifact's identity with the buyer's packed code. Two buyers (or two
/// campaigns) share an identity digest iff they share golden bytes and
/// bits — without ever materializing the expanded netlist.
pub fn artifact_identity(golden: Digest128, bits: &[bool]) -> Digest128 {
    let mut d = Digester128::new();
    d.update(golden.to_string().as_bytes());
    d.update(b"|");
    d.update(pack_bits(bits).as_bytes());
    d.finish()
}

/// One codebook line.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CodebookRecord {
    /// File header: the golden artifact every code expands against.
    Golden {
        /// Circuit name.
        circuit: String,
        /// Number of fingerprint locations (bits per code).
        locations: u64,
        /// Campaign seed the codes derive from.
        seed: u64,
        /// Golden artifact path relative to the output directory.
        artifact: String,
        /// 128-bit identity digest of the golden artifact bytes.
        digest: Digest128,
    },
    /// One buyer's delta artifact.
    Code {
        /// Buyer index.
        buyer: u64,
        /// Packed bits ([`pack_bits`]).
        bits: String,
        /// Verdict short name (`proven` / `probable` / `undecided`).
        verdict: String,
        /// [`artifact_identity`] of this buyer's expanded artifact.
        digest: Digest128,
    },
}

impl CodebookRecord {
    fn body(&self) -> String {
        let mut b = String::new();
        let push_str = |b: &mut String, k: &str, v: &str| {
            let _ = write!(b, "\"{k}\":\"{}\",", escape_json(v));
        };
        match self {
            CodebookRecord::Golden {
                circuit,
                locations,
                seed,
                artifact,
                digest,
            } => {
                push_str(&mut b, "t", "golden");
                push_str(&mut b, "circuit", circuit);
                let _ = write!(b, "\"locations\":{locations},\"seed\":{seed},");
                push_str(&mut b, "artifact", artifact);
                push_str(&mut b, "digest", &digest.to_string());
            }
            CodebookRecord::Code {
                buyer,
                bits,
                verdict,
                digest,
            } => {
                push_str(&mut b, "t", "code");
                let _ = write!(b, "\"buyer\":{buyer},");
                push_str(&mut b, "bits", bits);
                push_str(&mut b, "verdict", verdict);
                push_str(&mut b, "digest", &digest.to_string());
            }
        }
        b.pop();
        b.push('}');
        b
    }

    /// Serializes to a checksummed line (without the newline), in the
    /// campaign journal's `{"crc":"…", …}` format.
    pub fn to_line(&self) -> String {
        let body = self.body();
        format!(
            "{{\"crc\":\"{:016x}\",{body}",
            Digest::of(body.as_bytes()).0
        )
    }

    /// Parses one codebook line; `None` for malformed, truncated, or
    /// checksum-failing input.
    pub fn parse_line(line: &str) -> Option<CodebookRecord> {
        let rest = line.trim_end().strip_prefix("{\"crc\":\"")?;
        let (crc_hex, body) = (rest.get(..16)?, rest.get(16..)?.strip_prefix("\",")?);
        let crc = u64::from_str_radix(crc_hex, 16).ok()?;
        if Digest::of(body.as_bytes()).0 != crc {
            return None;
        }
        let fields = parse_flat_fields(body)?;
        let get = |k: &str| fields.get(k).map(String::as_str);
        let get_u64 = |k: &str| get(k).and_then(|v| v.parse::<u64>().ok());
        match get("t")? {
            "golden" => Some(CodebookRecord::Golden {
                circuit: get("circuit")?.to_owned(),
                locations: get_u64("locations")?,
                seed: get_u64("seed")?,
                artifact: get("artifact")?.to_owned(),
                digest: Digest128::parse(get("digest")?)?,
            }),
            "code" => Some(CodebookRecord::Code {
                buyer: get_u64("buyer")?,
                bits: get("bits")?.to_owned(),
                verdict: get("verdict")?.to_owned(),
                digest: Digest128::parse(get("digest")?)?,
            }),
            _ => None,
        }
    }
}

/// Bytes the writer buffers before spilling to the OS — the "window" of
/// memory a million-buyer campaign holds for artifact output.
const WRITER_BUF: usize = 256 * 1024;

/// A streaming, bounded-memory codebook writer.
///
/// Records accumulate in a fixed-size buffer and spill to the file as it
/// fills; nothing is durable until [`CodebookWriter::sync`], which the
/// campaign calls once per window, right before journalling the window's
/// `bdone` record. On resume the file is truncated to the last
/// journalled offset, discarding any tail a crash left behind.
#[derive(Debug)]
pub struct CodebookWriter {
    file: File,
    path: PathBuf,
    buf: String,
    /// Logical file length including buffered bytes.
    offset: u64,
}

impl CodebookWriter {
    /// Opens the codebook for `circuit` in `out_dir`, truncating to
    /// `offset` (the last journalled durable length; 0 starts fresh).
    ///
    /// # Errors
    ///
    /// Propagates I/O errors; also fails if the existing file is shorter
    /// than `offset` (the journal promised bytes the codebook lost —
    /// genuine corruption, not a torn tail).
    pub fn open(out_dir: &Path, circuit: &str, offset: u64) -> std::io::Result<CodebookWriter> {
        let path = out_dir.join(codebook_file(circuit));
        // Never truncate on open: an existing file's durable prefix is
        // kept and the torn tail is cut back to `offset` below.
        let mut file = OpenOptions::new()
            .create(true)
            .truncate(false)
            .write(true)
            .read(true)
            .open(&path)?;
        let len = file.metadata()?.len();
        if len < offset {
            return Err(std::io::Error::new(
                std::io::ErrorKind::InvalidData,
                format!(
                    "codebook {} holds {len} bytes but the journal recorded {offset}",
                    path.display()
                ),
            ));
        }
        if len > offset {
            file.set_len(offset)?;
        }
        file.seek(SeekFrom::Start(offset))?;
        Ok(CodebookWriter {
            file,
            path,
            buf: String::with_capacity(WRITER_BUF + 512),
            offset,
        })
    }

    /// The codebook file path.
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// Logical length: durable bytes plus buffered bytes.
    pub fn offset(&self) -> u64 {
        self.offset
    }

    /// Appends one record to the buffer, spilling to the OS when full.
    ///
    /// # Errors
    ///
    /// Propagates I/O errors from a spill.
    pub fn append(&mut self, record: &CodebookRecord) -> std::io::Result<()> {
        let line = record.to_line();
        self.offset += line.len() as u64 + 1;
        self.buf.push_str(&line);
        self.buf.push('\n');
        if self.buf.len() >= WRITER_BUF {
            self.spill()?;
        }
        Ok(())
    }

    fn spill(&mut self) -> std::io::Result<()> {
        if !self.buf.is_empty() {
            self.file.write_all(self.buf.as_bytes())?;
            self.buf.clear();
        }
        Ok(())
    }

    /// Flushes and fsyncs; returns the durable byte length, which the
    /// caller journals in the window's `bdone` record.
    ///
    /// # Errors
    ///
    /// Propagates I/O errors.
    pub fn sync(&mut self) -> std::io::Result<u64> {
        self.spill()?;
        self.file.sync_data()?;
        Ok(self.offset)
    }
}

/// A streaming codebook reader; torn or corrupt lines are counted and
/// skipped, mirroring journal replay.
#[derive(Debug)]
pub struct CodebookReader {
    lines: std::io::Lines<BufReader<File>>,
    discarded: usize,
}

impl CodebookReader {
    /// Opens a codebook file for streaming.
    ///
    /// # Errors
    ///
    /// Propagates I/O errors (including a missing file).
    pub fn open(path: &Path) -> std::io::Result<CodebookReader> {
        Ok(CodebookReader {
            lines: BufReader::new(File::open(path)?).lines(),
            discarded: 0,
        })
    }

    /// The next well-formed record, or `None` at end of file.
    ///
    /// # Errors
    ///
    /// Propagates I/O errors.
    pub fn next_record(&mut self) -> std::io::Result<Option<CodebookRecord>> {
        loop {
            match self.lines.next() {
                None => return Ok(None),
                Some(line) => {
                    let line = line?;
                    if line.is_empty() {
                        continue;
                    }
                    match CodebookRecord::parse_line(&line) {
                        Some(record) => return Ok(Some(record)),
                        None => self.discarded += 1,
                    }
                }
            }
        }
    }

    /// Lines discarded so far (checksum failures, torn tails).
    pub fn discarded(&self) -> usize {
        self.discarded
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Verdict, VerifyPolicy};
    use odcfp_netlist::CellLibrary;
    use odcfp_synth::benchmarks::random::{random_dag, DagParams};

    #[test]
    fn pack_unpack_roundtrip() {
        for len in [0usize, 1, 3, 4, 5, 8, 137] {
            let bits: Vec<bool> = (0..len).map(|i| i % 3 == 0).collect();
            let hex = pack_bits(&bits);
            assert_eq!(hex.len(), len.div_ceil(4));
            assert_eq!(unpack_bits(&hex, len), Some(bits), "len {len}");
        }
        // Wrong length and nonzero padding must be rejected.
        assert_eq!(unpack_bits("ff", 9), None);
        assert_eq!(unpack_bits("f", 2), None);
        assert_eq!(unpack_bits("3", 2), Some(vec![true, true]));
    }

    #[test]
    fn record_roundtrip_and_corruption_rejection() {
        let records = [
            CodebookRecord::Golden {
                circuit: "des".into(),
                locations: 137,
                seed: 0xDEADBEEF,
                artifact: "artifacts/des.golden.v".into(),
                digest: Digest128::of(b"golden"),
            },
            CodebookRecord::Code {
                buyer: 999_999,
                bits: "a3f90".into(),
                verdict: "proven".into(),
                digest: Digest128::of(b"identity"),
            },
        ];
        for r in &records {
            let line = r.to_line();
            assert_eq!(CodebookRecord::parse_line(&line).as_ref(), Some(r));
            let truncated = &line[..line.len() - 3];
            assert_eq!(CodebookRecord::parse_line(truncated), None);
        }
    }

    #[test]
    fn writer_truncates_to_journalled_offset_on_reopen() {
        let dir = std::env::temp_dir().join("odcfp-codebook-tests").join("trunc");
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        let code = |buyer: u64| CodebookRecord::Code {
            buyer,
            bits: "7".into(),
            verdict: "proven".into(),
            digest: Digest128::of(&buyer.to_le_bytes()),
        };
        let mut w = CodebookWriter::open(&dir, "c17", 0).unwrap();
        w.append(&code(0)).unwrap();
        let durable = w.sync().unwrap();
        // A window that never completed: bytes past the durable offset.
        w.append(&code(1)).unwrap();
        w.append(&code(2)).unwrap();
        w.sync().unwrap();
        drop(w);

        // Resume from the journalled offset: the unfinished window's
        // records are gone, and re-appending converges byte-for-byte.
        let mut w = CodebookWriter::open(&dir, "c17", durable).unwrap();
        assert_eq!(w.offset(), durable);
        w.append(&code(1)).unwrap();
        w.sync().unwrap();
        drop(w);
        let mut r = CodebookReader::open(&dir.join(codebook_file("c17"))).unwrap();
        let mut buyers = Vec::new();
        while let Some(rec) = r.next_record().unwrap() {
            if let CodebookRecord::Code { buyer, .. } = rec {
                buyers.push(buyer);
            }
        }
        assert_eq!(buyers, vec![0, 1]);
        assert_eq!(r.discarded(), 0);

        // The journal claiming more bytes than the file holds is
        // corruption, not a torn tail.
        assert!(CodebookWriter::open(&dir, "c17", 1 << 30).is_err());
    }

    #[test]
    fn code_space_proof_agrees_with_per_buyer_verification() {
        // Every code of a random-DAG fingerprinter must be proven by the
        // one-shot code-space solve AND individually by check_code, and
        // both must agree with the per-buyer session path.
        let base = random_dag(CellLibrary::standard(), DagParams::small(23));
        let fp = Fingerprinter::new(base).unwrap();
        let n = fp.locations().len().min(6);
        assert!(n >= 2, "random dag yielded too few locations");
        let space = CodeSpace::build(&fp).unwrap();
        assert_eq!(space.num_groups(), fp.locations().len());

        let mut session = VerifySession::new(fp.base()).unwrap();
        let token = CancelToken::new();
        let proof = space.prove(&mut session, None, &token).unwrap();
        assert_eq!(
            proof.outcome,
            crate::verify::CodeSpaceOutcome::ProvenAll,
            "a fingerprinter's whole code space must verify"
        );

        let policy = VerifyPolicy::strict();
        for code_bits in 0u32..1 << n {
            let mut bits = vec![false; fp.locations().len()];
            for (i, bit) in bits.iter_mut().enumerate().take(n) {
                *bit = code_bits >> i & 1 == 1;
            }
            let verdict = session.check_code(&proof, &bits, None, &token);
            assert_eq!(verdict, Verdict::Proven, "code {code_bits:b}");
            // Differential: the materializing per-buyer path agrees.
            let copy = fp.embed(&bits).unwrap();
            let report = session.verify(copy.netlist(), &policy).unwrap();
            assert_eq!(report.verdict, Verdict::Proven, "code {code_bits:b}");
        }
    }

    #[test]
    fn shared_target_gate_selects_independently() {
        // Two locations widening the SAME gate (des does this at g10):
        // F = AND3(x, y1, y2) with x = AND(a, b) in an FFC; y1 and y2 are
        // both ODC triggers for x, so both modifications target gx. The
        // superposed gx is AND4(a, b, y1, y2) with each tail literal on
        // its own selector, and every one of the 4 codes must match the
        // netlist `apply_modification` builds for that exact subset.
        use crate::modify::{apply_modification, Modification};
        use odcfp_logic::PrimitiveFn;

        let lib = CellLibrary::standard();
        let mut base = Netlist::new("shared", lib);
        let a = base.add_primary_input("a");
        let b = base.add_primary_input("b");
        let c = base.add_primary_input("c");
        let d = base.add_primary_input("d");
        let e = base.add_primary_input("e");
        let f = base.add_primary_input("f");
        let and2 = base.library().cell_for(PrimitiveFn::And, 2).unwrap();
        let and3 = base.library().cell_for(PrimitiveFn::And, 3).unwrap();
        let or2 = base.library().cell_for(PrimitiveFn::Or, 2).unwrap();
        let gx = base.add_gate("gx", and2, &[a, b]);
        let gy1 = base.add_gate("gy1", or2, &[c, d]);
        let gy2 = base.add_gate("gy2", or2, &[e, f]);
        let y1 = base.gate_output(gy1);
        let y2 = base.gate_output(gy2);
        let gf = base.add_gate("gf", and3, &[base.gate_output(gx), y1, y2]);
        base.set_primary_output(base.gate_output(gf));

        let mods = [
            Modification::InsertTrigger { target: gx, trigger: y1, complement: false },
            Modification::InsertTrigger { target: gx, trigger: y2, complement: false },
        ];
        let mut superposed = base.clone();
        let mut selectable = Vec::new();
        for (group, m) in mods.iter().enumerate() {
            let pos = superposed.gate(gx).inputs().len();
            apply_modification(&mut superposed, m).unwrap();
            let neutral = superposed.gate_fn(gx).neutral_input_value().unwrap();
            selectable.push(SelectableInput { gate: gx, position: pos, group, neutral });
        }
        assert_eq!(superposed.gate(gx).inputs().len(), 4);

        let mut session = VerifySession::new(&base).unwrap();
        let token = CancelToken::new();
        let proof = session
            .prove_code_space(&superposed, &selectable, mods.len(), None, &token)
            .unwrap();
        assert_eq!(proof.outcome, crate::verify::CodeSpaceOutcome::ProvenAll);

        let policy = VerifyPolicy::strict();
        for code in 0u32..4 {
            let bits = [code & 1 == 1, code >> 1 & 1 == 1];
            assert_eq!(
                session.check_code(&proof, &bits, None, &token),
                Verdict::Proven,
                "code {code:02b}"
            );
            let mut materialized = base.clone();
            for (m, &sel) in mods.iter().zip(&bits) {
                if sel {
                    apply_modification(&mut materialized, m).unwrap();
                }
            }
            let report = session.verify(&materialized, &policy).unwrap();
            assert_eq!(report.verdict, Verdict::Proven, "code {code:02b}");
        }
    }

    #[test]
    fn identity_digest_separates_buyers_and_goldens() {
        let g1 = Digest128::of(b"golden one");
        let g2 = Digest128::of(b"golden two");
        let bits_a = vec![true, false, true];
        let bits_b = vec![true, true, true];
        assert_eq!(artifact_identity(g1, &bits_a), artifact_identity(g1, &bits_a));
        assert_ne!(artifact_identity(g1, &bits_a), artifact_identity(g1, &bits_b));
        assert_ne!(artifact_identity(g1, &bits_a), artifact_identity(g2, &bits_a));
    }
}
