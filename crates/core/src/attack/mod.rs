//! The adversary suite: an attack battery grading fingerprint survival
//! and traceability.
//!
//! The paper proves embedding is functionally invisible; this module asks
//! the complementary question — what does an *active* adversary do to it?
//! Three attack families are modeled, each deterministic (seeded),
//! cancellable, and traced through `odcfp-obs` under `attack.*` names:
//!
//! 1. **Resynthesis** ([`resynth`]): round-trip a fingerprinted copy
//!    through the `odcfp-synth` optimizer and technology re-mapper at
//!    escalating effort, then re-locate surviving ODC-trigger wires by
//!    structural matching (the [`SweepEngine`](odcfp_sat::SweepEngine)
//!    hash-consing front end). The recovered wire set is traced against
//!    the buyer registry to ask whether conviction survives the rewrite.
//! 2. **Collusion averaging** ([`collude`]): `n`-way coalitions
//!    (`n ∈ {2, 4, 8, 16, 32}` by default) mix their copies bit-wise —
//!    AND, majority vote, or random-member averaging — and the forged
//!    code is judged by [`TracerIndex::verdict`](crate::collusion::TracerIndex::verdict),
//!    reporting conviction and innocent-accusation rates per strategy.
//! 3. **Side-channel detectability** ([`sidechannel`]): the switching-
//!    activity power model compares golden and fingerprinted power
//!    signatures; a copy whose signature distance exceeds a threshold is
//!    flagged as detectable from outside the package.
//!
//! The result is an [`AttackScorecard`] (one JSON document per
//! benchmark, reproduced in EXPERIMENTS.md) whose per-location
//! [`SurvivalStats`] feed back into
//! [`heuristics`](crate::heuristics) location selection — attack
//! evidence closing the loop into embedding policy (`--robust-locations`
//! in the CLI).

pub mod collude;
pub mod resynth;
pub mod sidechannel;

use std::fmt;

use odcfp_analysis::cancel::CancelToken;
use odcfp_netlist::Netlist;
use odcfp_synth::{ResynthError, ResynthLevel};

use crate::collusion::{TraceParams, TracerIndex};
use crate::verify::VerifyPolicy;
use crate::{FingerprintError, Fingerprinter};

pub use collude::{CollusionAttackReport, MixStrategy};
pub use resynth::{ResynthAttackReport, StructuralReference};
pub use sidechannel::{CopyDistance, SideChannelReport};

/// Why an attack battery stopped.
#[derive(Debug)]
#[non_exhaustive]
pub enum AttackError {
    /// The base netlist could not be fingerprinted, or a copy could not
    /// be minted.
    Fingerprint(FingerprintError),
    /// A resynthesis pass failed.
    Resynth(ResynthError),
    /// The cancel token fired.
    Cancelled,
    /// The battery was asked for more buyers than the code space holds
    /// useful information for (no locations at all).
    NoLocations,
}

impl fmt::Display for AttackError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AttackError::Fingerprint(e) => write!(f, "fingerprinting failed: {e}"),
            AttackError::Resynth(e) => write!(f, "resynthesis failed: {e}"),
            AttackError::Cancelled => write!(f, "attack battery cancelled"),
            AttackError::NoLocations => write!(f, "circuit has no fingerprint locations"),
        }
    }
}

impl std::error::Error for AttackError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            AttackError::Fingerprint(e) => Some(e),
            AttackError::Resynth(e) => Some(e),
            _ => None,
        }
    }
}

impl From<FingerprintError> for AttackError {
    fn from(e: FingerprintError) -> Self {
        AttackError::Fingerprint(e)
    }
}

impl From<ResynthError> for AttackError {
    fn from(e: ResynthError) -> Self {
        AttackError::Resynth(e)
    }
}

/// Battery configuration. [`Default`] is the full-strength battery; the
/// CLI's smoke budget trims `resynth_levels` and `coalition_sizes`.
#[derive(Debug, Clone, PartialEq)]
pub struct AttackOptions {
    /// Root seed; every derived RNG (buyer codes, coalition sampling,
    /// random-member mixing, power patterns) is a pure function of it.
    pub seed: u64,
    /// Registered buyer population (bit-string registry). Default 32.
    pub buyers: usize,
    /// Netlist-level copies actually minted (resynthesis victim and
    /// side-channel measurements). Default 4.
    pub minted_copies: usize,
    /// Coalition sizes for the collusion battery; sizes larger than
    /// `buyers` are skipped. Default `[2, 4, 8, 16, 32]`.
    pub coalition_sizes: Vec<usize>,
    /// Resynthesis effort levels to run. Default all three.
    pub resynth_levels: Vec<ResynthLevel>,
    /// Tracing decision parameters.
    pub trace_params: TraceParams,
    /// 64-bit pattern words per net for the power model. Default 64.
    pub power_words: usize,
    /// Relative power-signature distance above which a copy counts as
    /// detectable. Default `0.001` (0.1%).
    pub detectability_threshold: f64,
    /// Verification policy for minting copies.
    pub verify: VerifyPolicy,
}

impl Default for AttackOptions {
    fn default() -> Self {
        AttackOptions {
            seed: 0xA77AC_u64,
            buyers: 32,
            minted_copies: 4,
            coalition_sizes: vec![2, 4, 8, 16, 32],
            resynth_levels: ResynthLevel::ALL.to_vec(),
            trace_params: TraceParams::default(),
            power_words: 64,
            detectability_threshold: 0.001,
            verify: VerifyPolicy::quick(),
        }
    }
}

/// Per-location survival statistics accumulated across every resynthesis
/// attack in a battery — the feedback signal for robust location
/// selection ([`crate::heuristics::robust_location_order`]).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SurvivalStats {
    /// Resynthesis attacks run.
    pub attacks: usize,
    /// Per location: in how many attacks its wire survived (counted only
    /// when the victim copy actually embedded the wire and it was
    /// identifiable pre-attack).
    pub survived: Vec<u32>,
    /// Per location: in how many attacks the wire was embedded and
    /// identifiable pre-attack (the denominator for `survived`).
    pub tested: Vec<u32>,
    /// Per location: whether the wire is structurally identifiable at
    /// all (its modified shape is distinguishable from base logic).
    pub identifiable: Vec<bool>,
}

impl SurvivalStats {
    fn new(locations: usize, identifiable: Vec<bool>) -> SurvivalStats {
        SurvivalStats {
            attacks: 0,
            survived: vec![0; locations],
            tested: vec![0; locations],
            identifiable,
        }
    }

    /// Survival score of location `i` in `[0, 1]`: measured survival
    /// rate, or `0` for never-tested or unidentifiable wires (an
    /// unidentifiable wire is *gone* after any rewrite — the most
    /// fragile kind).
    pub fn score(&self, i: usize) -> f64 {
        if !self.identifiable.get(i).copied().unwrap_or(false) || self.tested[i] == 0 {
            return 0.0;
        }
        f64::from(self.survived[i]) / f64::from(self.tested[i])
    }

    /// Number of locations.
    pub fn len(&self) -> usize {
        self.survived.len()
    }

    /// `true` when there are no locations.
    pub fn is_empty(&self) -> bool {
        self.survived.is_empty()
    }

    /// Renders the statistics as the line-oriented survival file the CLI
    /// passes between `odcfp attack --survival-out` and
    /// `odcfp constrain --robust-locations`.
    pub fn to_text(&self, circuit: &str) -> String {
        let mut s = String::new();
        s.push_str("# odcfp survival v1\n");
        s.push_str(&format!("circuit {circuit}\n"));
        s.push_str(&format!("attacks {}\n", self.attacks));
        s.push_str(&format!("locations {}\n", self.len()));
        for i in 0..self.len() {
            s.push_str(&format!(
                "loc {i} {} {} {}\n",
                self.survived[i],
                self.tested[i],
                u8::from(self.identifiable[i]),
            ));
        }
        s
    }

    /// Parses a survival file written by [`SurvivalStats::to_text`],
    /// returning the circuit name and the statistics.
    ///
    /// # Errors
    ///
    /// A human-readable message naming the malformed line.
    pub fn from_text(text: &str) -> Result<(String, SurvivalStats), String> {
        let mut circuit = String::new();
        let mut attacks = 0usize;
        let mut declared: Option<usize> = None;
        let mut survived = Vec::new();
        let mut tested = Vec::new();
        let mut identifiable = Vec::new();
        for (ln, raw) in text.lines().enumerate() {
            let line = raw.trim();
            if line.is_empty() || line.starts_with('#') {
                continue;
            }
            let bad = || format!("survival file line {}: malformed {line:?}", ln + 1);
            let mut parts = line.split_whitespace();
            match parts.next() {
                Some("circuit") => circuit = parts.next().ok_or_else(bad)?.to_string(),
                Some("attacks") => {
                    attacks = parts.next().and_then(|v| v.parse().ok()).ok_or_else(bad)?;
                }
                Some("locations") => {
                    declared =
                        Some(parts.next().and_then(|v| v.parse().ok()).ok_or_else(bad)?);
                }
                Some("loc") => {
                    let idx: usize =
                        parts.next().and_then(|v| v.parse().ok()).ok_or_else(bad)?;
                    if idx != survived.len() {
                        return Err(format!(
                            "survival file line {}: location {idx} out of order",
                            ln + 1
                        ));
                    }
                    let s: u32 = parts.next().and_then(|v| v.parse().ok()).ok_or_else(bad)?;
                    let t: u32 = parts.next().and_then(|v| v.parse().ok()).ok_or_else(bad)?;
                    let id: u8 = parts.next().and_then(|v| v.parse().ok()).ok_or_else(bad)?;
                    survived.push(s);
                    tested.push(t);
                    identifiable.push(id != 0);
                }
                _ => return Err(bad()),
            }
        }
        if let Some(n) = declared {
            if n != survived.len() {
                return Err(format!(
                    "survival file declares {n} locations but lists {}",
                    survived.len()
                ));
            }
        }
        Ok((
            circuit,
            SurvivalStats {
                attacks,
                survived,
                tested,
                identifiable,
            },
        ))
    }
}

/// The complete result of one benchmark's attack battery.
#[derive(Debug, Clone, PartialEq)]
pub struct AttackScorecard {
    /// Circuit name.
    pub circuit: String,
    /// Root seed the battery ran under.
    pub seed: u64,
    /// Fingerprint locations (code length).
    pub locations: usize,
    /// Registered buyers.
    pub buyers: usize,
    /// One report per resynthesis level, in the order run.
    pub resynth: Vec<ResynthAttackReport>,
    /// One report per (coalition size, strategy) cell, in the order run.
    pub collusion: Vec<CollusionAttackReport>,
    /// Side-channel detectability.
    pub side_channel: SideChannelReport,
    /// Per-location survival feedback.
    pub survival: SurvivalStats,
}

fn json_f(v: f64) -> String {
    // Fixed precision keeps the document byte-stable and readable; the
    // inputs are already deterministic.
    format!("{v:.6}")
}

impl AttackScorecard {
    /// Renders the scorecard as a stable, hand-rolled JSON document:
    /// fixed key order, fixed float precision, no timestamps — equal
    /// batteries produce byte-equal documents at any thread count.
    pub fn to_json(&self) -> String {
        let mut s = String::new();
        s.push_str("{\n");
        s.push_str(&format!("  \"circuit\": \"{}\",\n", self.circuit));
        s.push_str(&format!("  \"seed\": {},\n", self.seed));
        s.push_str(&format!("  \"locations\": {},\n", self.locations));
        s.push_str(&format!("  \"buyers\": {},\n", self.buyers));
        s.push_str("  \"resynth\": [\n");
        for (i, r) in self.resynth.iter().enumerate() {
            s.push_str(&format!(
                "    {{\"level\": \"{}\", \"gates_before\": {}, \"gates_after\": {}, \
                 \"wires_embedded\": {}, \"wires_identifiable\": {}, \"wires_surviving\": {}, \
                 \"phantom_wires\": {}, \"survival_rate\": {}, \"outcome\": \"{}\", \
                 \"victim_convicted\": {}, \"innocents_accused\": {}, \"evidence_wires\": {}}}{}\n",
                r.level.name(),
                r.gates_before,
                r.gates_after,
                r.wires_embedded,
                r.wires_identifiable,
                r.wires_surviving,
                r.phantom_wires,
                json_f(r.survival_rate),
                r.outcome.name(),
                r.victim_convicted,
                r.innocents_accused,
                r.evidence_wires,
                if i + 1 < self.resynth.len() { "," } else { "" },
            ));
        }
        s.push_str("  ],\n");
        s.push_str("  \"collusion\": [\n");
        for (i, c) in self.collusion.iter().enumerate() {
            s.push_str(&format!(
                "    {{\"coalition\": {}, \"strategy\": \"{}\", \"outcome\": \"{}\", \
                 \"colluders_convicted\": {}, \"innocents_accused\": {}, \
                 \"conviction_rate\": {}, \"innocent_rate\": {}, \"evidence_wires\": {}}}{}\n",
                c.coalition,
                c.strategy.name(),
                c.outcome.name(),
                c.colluders_convicted,
                c.innocents_accused,
                json_f(c.conviction_rate),
                json_f(c.innocent_rate),
                c.evidence_wires,
                if i + 1 < self.collusion.len() { "," } else { "" },
            ));
        }
        s.push_str("  ],\n");
        let sc = &self.side_channel;
        s.push_str(&format!(
            "  \"side_channel\": {{\"copies\": {}, \"power_words\": {}, \"golden_total\": {}, \
             \"threshold\": {}, \"mean_distance\": {}, \"max_distance\": {}, \"detectable\": {}, \
             \"per_copy\": [",
            sc.copies,
            sc.power_words,
            json_f(sc.golden_total),
            json_f(sc.threshold),
            json_f(sc.mean_distance),
            json_f(sc.max_distance),
            sc.detectable,
        ));
        for (i, c) in sc.per_copy.iter().enumerate() {
            s.push_str(&format!(
                "{{\"buyer\": {}, \"distance\": {}, \"detectable\": {}}}{}",
                c.buyer,
                json_f(c.distance),
                c.detectable,
                if i + 1 < sc.per_copy.len() { ", " } else { "" },
            ));
        }
        s.push_str("]},\n");
        s.push_str(&format!(
            "  \"survival\": {{\"attacks\": {}, \"identifiable\": {}, \"per_location_survived\": [",
            self.survival.attacks,
            self.survival.identifiable.iter().filter(|&&b| b).count(),
        ));
        for (i, v) in self.survival.survived.iter().enumerate() {
            s.push_str(&format!(
                "{}{}",
                v,
                if i + 1 < self.survival.survived.len() { "," } else { "" }
            ));
        }
        s.push_str("], \"per_location_tested\": [");
        for (i, v) in self.survival.tested.iter().enumerate() {
            s.push_str(&format!(
                "{}{}",
                v,
                if i + 1 < self.survival.tested.len() { "," } else { "" }
            ));
        }
        s.push_str("]}\n}\n");
        s
    }
}

/// Deterministic per-buyer fingerprint codes: buyer `k`'s code depends
/// only on `(seed, k, locations)`, never on the population size, so
/// registries of different sizes share a prefix.
pub fn buyer_codes(seed: u64, buyers: usize, locations: usize) -> Vec<Vec<bool>> {
    (0..buyers)
        .map(|k| {
            let mut rng = odcfp_logic::rng::Xoshiro256::seed_from_u64(
                seed ^ (k as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15),
            );
            (0..locations).map(|_| rng.next_bool()).collect()
        })
        .collect()
}

/// Runs the full battery against `base` and assembles the scorecard.
///
/// Deterministic: the scorecard (and its JSON rendering) is a pure
/// function of `(base, opts)`, bit-identical at any worker-thread count.
/// Cancellable: `token` is polled between attack units; a fired token
/// yields [`AttackError::Cancelled`].
///
/// # Errors
///
/// Propagates fingerprinting and resynthesis failures; returns
/// [`AttackError::NoLocations`] if the circuit offers nowhere to embed.
pub fn run_battery(
    base: &Netlist,
    opts: &AttackOptions,
    token: &CancelToken,
) -> Result<AttackScorecard, AttackError> {
    let mut span = odcfp_obs::span("attack.battery");
    span.field("circuit", base.name().to_string());
    span.field("seed", opts.seed);

    let fp = Fingerprinter::new(base.clone())?;
    let locations = fp.locations().len();
    if locations == 0 {
        return Err(AttackError::NoLocations);
    }
    span.field("locations", locations);
    span.field("buyers", opts.buyers);

    let codes = buyer_codes(opts.seed, opts.buyers, locations);
    let mut index = TracerIndex::new(locations);
    for code in &codes {
        index.push(code);
    }

    // Mint the netlist-level copies (victim first). Verification is the
    // caller's chosen policy; an Undecided verdict is tolerated here —
    // the battery grades robustness, not equivalence (the verify ladder
    // and its tests own that guarantee).
    let minted = opts.minted_copies.min(opts.buyers).max(1);
    let mut copies = Vec::with_capacity(minted);
    for code in codes.iter().take(minted) {
        if token.is_cancelled() {
            return Err(AttackError::Cancelled);
        }
        let (copy, _verdict) = fp.embed_with_policy_cancellable(code, &opts.verify, token)?;
        copies.push(copy);
    }

    // ---- adversary (a): resynthesis ----
    let victim = &copies[0];
    let mut reference = StructuralReference::new(&fp, victim, token)?;
    let mut survival = SurvivalStats::new(locations, reference.identifiable().to_vec());
    let baseline = reference.recover(victim.netlist());
    let mut resynth_reports = Vec::with_capacity(opts.resynth_levels.len());
    for &level in &opts.resynth_levels {
        if token.is_cancelled() {
            return Err(AttackError::Cancelled);
        }
        let report = resynth::attack_once(
            &mut reference,
            &index,
            &opts.trace_params,
            victim,
            &baseline,
            level,
            &mut survival,
        )?;
        resynth_reports.push(report);
    }

    // ---- adversary (b): collusion averaging ----
    let collusion_reports = collude::run_collusion(
        &index,
        &codes,
        &opts.coalition_sizes,
        &opts.trace_params,
        opts.seed,
        token,
    )?;

    // ---- adversary (c): side-channel detectability ----
    let side_channel = sidechannel::measure(
        base,
        &copies,
        opts.power_words,
        opts.seed,
        opts.detectability_threshold,
        token,
    )?;

    Ok(AttackScorecard {
        circuit: base.name().to_string(),
        seed: opts.seed,
        locations,
        buyers: opts.buyers,
        resynth: resynth_reports,
        collusion: collusion_reports,
        side_channel,
        survival,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use odcfp_netlist::CellLibrary;
    use odcfp_synth::benchmarks::random::{random_dag, DagParams};

    fn small_base() -> Netlist {
        random_dag(
            CellLibrary::standard(),
            DagParams {
                inputs: 12,
                gates: 120,
                outputs: 8,
                window: 30,
                seed: 777,
            },
        )
    }

    fn large_base() -> Netlist {
        random_dag(
            CellLibrary::standard(),
            DagParams {
                inputs: 16,
                gates: 1400,
                outputs: 12,
                window: 40,
                seed: 778,
            },
        )
    }

    fn smoke_options() -> AttackOptions {
        AttackOptions {
            buyers: 8,
            minted_copies: 2,
            coalition_sizes: vec![2, 4],
            resynth_levels: vec![ResynthLevel::Opt, ResynthLevel::Remap],
            power_words: 16,
            ..AttackOptions::default()
        }
    }

    #[test]
    fn battery_scorecard_is_deterministic_and_covers_all_adversaries() {
        let base = small_base();
        let opts = smoke_options();
        let token = CancelToken::new();
        let a = run_battery(&base, &opts, &token).unwrap();
        let b = run_battery(&base, &opts, &token).unwrap();
        assert_eq!(a, b);
        assert_eq!(a.to_json(), b.to_json());
        assert_eq!(a.resynth.len(), 2);
        assert_eq!(a.collusion.len(), 2 * MixStrategy::ALL.len());
        assert_eq!(a.side_channel.per_copy.len(), 2);
        assert_eq!(a.survival.attacks, 2);
        assert_eq!(a.survival.len(), a.locations);
    }

    #[test]
    fn structural_reference_reads_single_wires_exactly() {
        let base = small_base();
        let fp = Fingerprinter::new(base).unwrap();
        let n = fp.locations().len();
        assert!(n >= 4, "need a few locations, got {n}");
        let token = CancelToken::new();
        // Calibrate against a copy carrying a single wire at the first
        // identifiable location.
        let probe = StructuralReference::new(&fp, &fp.embed(&vec![false; n]).unwrap(), &token)
            .unwrap();
        let first = probe
            .identifiable()
            .iter()
            .position(|&b| b)
            .expect("at least one identifiable location");
        let mut code = vec![false; n];
        code[first] = true;
        let copy = fp.embed(&code).unwrap();
        let mut reference = StructuralReference::new(&fp, &copy, &token).unwrap();

        let blank = fp.embed(&vec![false; n]).unwrap();
        let empty = reference.recover(blank.netlist());
        assert!(empty.iter().all(|&b| !b), "blank copy must read all-zero");

        let recovered = reference.recover(copy.netlist());
        assert!(recovered[first], "embedded wire must be recovered");
        for (i, &bit) in recovered.iter().enumerate() {
            if i != first {
                assert!(!bit, "location {i} recovered but never embedded");
            }
        }
    }

    #[test]
    fn survival_text_round_trips() {
        let stats = SurvivalStats {
            attacks: 3,
            survived: vec![3, 0, 2],
            tested: vec![3, 3, 2],
            identifiable: vec![true, true, false],
        };
        let text = stats.to_text("des");
        let (circuit, parsed) = SurvivalStats::from_text(&text).unwrap();
        assert_eq!(circuit, "des");
        assert_eq!(parsed, stats);
        assert!(SurvivalStats::from_text("loc zero nope").is_err());
        assert!(SurvivalStats::from_text("locations 2\nloc 0 1 1 1\n").is_err());
    }

    #[test]
    fn battery_convicts_and_coalitions_without_innocents() {
        let base = large_base();
        let opts = AttackOptions {
            buyers: 16,
            minted_copies: 1,
            coalition_sizes: vec![2, 4, 8],
            resynth_levels: vec![ResynthLevel::Opt],
            power_words: 16,
            ..AttackOptions::default()
        };
        let token = CancelToken::new();
        let card = run_battery(&base, &opts, &token).unwrap();
        assert!(card.locations >= 100, "want ≥100 locations, got {}", card.locations);

        // Nobody innocent is ever framed, whatever the coalition does.
        for cell in &card.collusion {
            assert_eq!(
                cell.innocents_accused, 0,
                "{} coalition of {} framed an innocent",
                cell.strategy.name(),
                cell.coalition
            );
        }
        // A pair AND-ing their copies leaves ~L/4 shared wires — plenty of
        // evidence, and both colluders contain all of it: conviction.
        // (Larger AND coalitions strip evidence below `min_evidence`,
        // where Inconclusive is the honest verdict.)
        let and_pair = card
            .collusion
            .iter()
            .find(|c| c.strategy == MixStrategy::BitwiseAnd && c.coalition == 2)
            .expect("n=2 AND cell present");
        assert!(
            and_pair.colluders_convicted >= 1,
            "AND pair escaped conviction (outcome {:?}, {} evidence wires)",
            and_pair.outcome,
            and_pair.evidence_wires
        );

        let opt = &card.resynth[0];
        assert!(opt.wires_identifiable > 0, "nothing identifiable pre-attack");
        assert!(opt.survival_rate > 0.5, "optimizer wiped the fingerprint");
        assert!(opt.victim_convicted, "victim escaped after plain optimize");
    }
}
