//! Adversary (b): n-way collusion averaging at the bit level.
//!
//! [`crate::collusion::forge`] models a coalition at the netlist level —
//! faithful, but each forged copy costs an embed + verification, which
//! caps studies at a handful of coalitions. This module mixes the
//! registered bit strings directly (what the netlist diffing would
//! recover anyway, per `analyze_collusion`), so a full
//! `sizes × strategies` grid over a 32-buyer registry runs in
//! microseconds and the interesting question — *whom does the tracer
//! convict?* — is answered by [`TracerIndex::verdict`] per cell.

use odcfp_analysis::cancel::CancelToken;
use odcfp_logic::rng::Xoshiro256;

use crate::collusion::{TraceOutcome, TraceParams, TracerIndex};

use super::AttackError;

/// How the coalition combines its copies bit-wise.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum MixStrategy {
    /// Keep a wire only if **every** colluder carries it (equivalent to
    /// the netlist-level `ClearExposed`: remove everything you can see).
    BitwiseAnd,
    /// Majority vote per location (strict: ties drop the wire).
    Majority,
    /// Random-member averaging: each location inherits a uniformly
    /// chosen colluder's bit — the "average of our copies" chimera.
    RandomMember,
}

impl MixStrategy {
    /// All strategies, in the order the battery runs them.
    pub const ALL: [MixStrategy; 3] = [
        MixStrategy::BitwiseAnd,
        MixStrategy::Majority,
        MixStrategy::RandomMember,
    ];

    /// Stable lowercase name (used in traces, scorecards, and the CLI).
    pub fn name(self) -> &'static str {
        match self {
            MixStrategy::BitwiseAnd => "and",
            MixStrategy::Majority => "majority",
            MixStrategy::RandomMember => "random",
        }
    }
}

/// One `(coalition size, strategy)` cell of the collusion grid.
#[derive(Debug, Clone, PartialEq)]
pub struct CollusionAttackReport {
    /// Coalition size `n`.
    pub coalition: usize,
    /// Mixing strategy.
    pub strategy: MixStrategy,
    /// Tracing outcome.
    pub outcome: TraceOutcome,
    /// Convicted buyers who really were in the coalition.
    pub colluders_convicted: usize,
    /// Convicted buyers who were **not** in the coalition.
    pub innocents_accused: usize,
    /// `colluders_convicted / n`.
    pub conviction_rate: f64,
    /// `innocents_accused / (buyers - n)` (0 when every buyer colluded).
    pub innocent_rate: f64,
    /// Surviving evidence wires the tracer saw.
    pub evidence_wires: usize,
}

/// Mixes the coalition members' codes under `strategy`. `rng` drives
/// random-member choices only.
pub fn mix(
    codes: &[Vec<bool>],
    members: &[usize],
    strategy: MixStrategy,
    rng: &mut Xoshiro256,
) -> Vec<bool> {
    let locations = codes.first().map_or(0, Vec::len);
    (0..locations)
        .map(|l| match strategy {
            MixStrategy::BitwiseAnd => members.iter().all(|&m| codes[m][l]),
            MixStrategy::Majority => {
                let ones = members.iter().filter(|&&m| codes[m][l]).count();
                ones * 2 > members.len()
            }
            MixStrategy::RandomMember => {
                let pick = members[(rng.next_u64() % members.len() as u64) as usize];
                codes[pick][l]
            }
        })
        .collect()
}

/// Deterministically samples a coalition of `n` distinct buyers for the
/// given grid cell (Fisher–Yates over the registry, seeded per cell).
fn sample_coalition(buyers: usize, n: usize, seed: u64) -> Vec<usize> {
    let mut rng = Xoshiro256::seed_from_u64(seed);
    let mut all: Vec<usize> = (0..buyers).collect();
    for i in (1..all.len()).rev() {
        all.swap(i, (rng.next_u64() % (i as u64 + 1)) as usize);
    }
    all.truncate(n);
    all.sort_unstable();
    all
}

/// Runs the full `sizes × strategies` grid against the registry.
pub(super) fn run_collusion(
    index: &TracerIndex,
    codes: &[Vec<bool>],
    sizes: &[usize],
    trace_params: &TraceParams,
    seed: u64,
    token: &CancelToken,
) -> Result<Vec<CollusionAttackReport>, AttackError> {
    let mut span = odcfp_obs::span("attack.collusion");
    let buyers = codes.len();
    let mut reports = Vec::new();
    for (ni, &n) in sizes.iter().enumerate() {
        if n < 2 || n > buyers {
            continue;
        }
        for (si, &strategy) in MixStrategy::ALL.iter().enumerate() {
            if token.is_cancelled() {
                return Err(AttackError::Cancelled);
            }
            let cell_seed = seed
                .wrapping_mul(0x2545_F491_4F6C_DD1D)
                .wrapping_add((ni as u64) << 8 | si as u64);
            let members = sample_coalition(buyers, n, cell_seed);
            let mut rng = Xoshiro256::seed_from_u64(cell_seed ^ 0xC011_0DE5);
            let forged = mix(codes, &members, strategy, &mut rng);
            let verdict = index.verdict(&forged, trace_params);
            let colluders_convicted = verdict
                .convicted
                .iter()
                .filter(|s| members.binary_search(&s.buyer).is_ok())
                .count();
            let innocents_accused = verdict.convicted.len() - colluders_convicted;
            let innocents = buyers - n;
            let report = CollusionAttackReport {
                coalition: n,
                strategy,
                outcome: verdict.outcome,
                colluders_convicted,
                innocents_accused,
                conviction_rate: colluders_convicted as f64 / n as f64,
                innocent_rate: if innocents == 0 {
                    0.0
                } else {
                    innocents_accused as f64 / innocents as f64
                },
                evidence_wires: verdict.evidence_wires,
            };
            odcfp_obs::point("attack.collusion.verdict")
                .field("coalition", n as u64)
                .field("strategy", strategy.name())
                .field("outcome", verdict.outcome.name())
                .field("colluders_convicted", colluders_convicted as u64)
                .field("innocents_accused", innocents_accused as u64)
                .field("evidence_wires", verdict.evidence_wires as u64)
                .emit();
            reports.push(report);
        }
    }
    span.field("cells", reports.len());
    Ok(reports)
}
