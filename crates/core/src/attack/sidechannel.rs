//! Adversary (c): side-channel detectability of the embedding itself.
//!
//! A fingerprint that is functionally invisible can still betray its
//! presence physically: every optional wire adds load capacitance and
//! toggling, shifting the chip's power signature. An adversary with an
//! oscilloscope and a golden reference (or another buyer's chip) could
//! in principle *detect* that a copy is fingerprinted — and two buyers
//! comparing signatures is a collusion channel that needs no netlist.
//!
//! The measurement: drive golden and fingerprinted netlists with the
//! same seeded patterns through the switching-activity model, take the
//! per-net power vectors as signatures, and compute a relative L2
//! distance (aligned on the shared net ids; nets the embedding added
//! contribute their full power). A copy above the threshold counts as
//! detectable.

use odcfp_analysis::cancel::CancelToken;
use odcfp_analysis::power::estimate_power;
use odcfp_netlist::Netlist;

use crate::FingerprintedCopy;

use super::AttackError;

/// One copy's signature distance.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CopyDistance {
    /// Buyer index of the measured copy.
    pub buyer: usize,
    /// Relative power-signature distance from golden.
    pub distance: f64,
    /// Whether it exceeds the detectability threshold.
    pub detectable: bool,
}

/// Side-channel detectability over the minted copies.
#[derive(Debug, Clone, PartialEq)]
pub struct SideChannelReport {
    /// Copies measured.
    pub copies: usize,
    /// Pattern words driven per net.
    pub power_words: usize,
    /// Golden total power (model units).
    pub golden_total: f64,
    /// The detectability threshold applied (relative distance).
    pub threshold: f64,
    /// Mean relative distance over the copies.
    pub mean_distance: f64,
    /// Largest relative distance.
    pub max_distance: f64,
    /// Copies above the threshold.
    pub detectable: usize,
    /// Per-copy measurements, in buyer order.
    pub per_copy: Vec<CopyDistance>,
}

/// Relative L2 distance between golden and copy per-net power vectors.
///
/// Copies are minted by cloning the base netlist, so net id `i` in the
/// copy is net id `i` in golden for `i < golden.num_nets()`; embedding
/// only appends (fresh inverters) and re-loads existing nets. Added nets
/// have no golden counterpart — their whole power is signature delta.
fn signature_distance(golden: &[f64], copy: &[f64]) -> f64 {
    let shared = golden.len().min(copy.len());
    let mut num = 0.0f64;
    for i in 0..shared {
        let d = copy[i] - golden[i];
        num += d * d;
    }
    for &p in &copy[shared..] {
        num += p * p;
    }
    for &p in &golden[shared..] {
        num += p * p;
    }
    let den: f64 = golden.iter().map(|p| p * p).sum();
    if den == 0.0 {
        return 0.0;
    }
    (num / den).sqrt()
}

/// Measures every minted copy against the golden power signature.
pub(super) fn measure(
    base: &Netlist,
    copies: &[FingerprintedCopy],
    power_words: usize,
    seed: u64,
    threshold: f64,
    token: &CancelToken,
) -> Result<SideChannelReport, AttackError> {
    let mut span = odcfp_obs::span("attack.sidechannel");
    let power_seed = seed ^ 0x5105_C8A7;
    let golden = estimate_power(base, power_words, power_seed);
    let mut per_copy = Vec::with_capacity(copies.len());
    let mut sum = 0.0f64;
    let mut max = 0.0f64;
    let mut detectable = 0usize;
    for (buyer, copy) in copies.iter().enumerate() {
        if token.is_cancelled() {
            return Err(AttackError::Cancelled);
        }
        let p = estimate_power(copy.netlist(), power_words, power_seed);
        let distance = signature_distance(golden.per_net(), p.per_net());
        let hit = distance > threshold;
        if hit {
            detectable += 1;
        }
        sum += distance;
        if distance > max {
            max = distance;
        }
        odcfp_obs::point("attack.sidechannel.copy")
            .field("buyer", buyer as u64)
            .field("distance_ppm", (distance * 1_000_000.0).round() as u64)
            .field("detectable", hit)
            .emit();
        per_copy.push(CopyDistance {
            buyer,
            distance,
            detectable: hit,
        });
    }
    span.field("copies", copies.len());
    span.field("detectable", detectable);
    Ok(SideChannelReport {
        copies: copies.len(),
        power_words,
        golden_total: golden.total(),
        threshold,
        mean_distance: if per_copy.is_empty() {
            0.0
        } else {
            sum / per_copy.len() as f64
        },
        max_distance: max,
        detectable,
        per_copy,
    })
}
