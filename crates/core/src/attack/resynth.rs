//! Adversary (a): resynthesis round-trips and structural wire recovery.
//!
//! The attacker re-runs synthesis over a fingerprinted copy hoping the
//! tool rewrites the redundant ODC wires away. The designer's counter is
//! *structural re-location*: every fingerprint wire widens exactly one
//! FFC gate, so the widened gate's output computes a structure that
//! appears **nowhere** in the base netlist. Hash-consing the base, the
//! victim copy, and the attacked netlist into one [`SweepEngine`] gives
//! every net a class id; a wire survives an attack iff its widened class
//! is still present among the attacked netlist's classes. No SAT is
//! involved — recovery is a deterministic set
//! intersection, which is what lets the battery run on every benchmark
//! in seconds.
//!
//! Name-based extraction ([`Fingerprinter::extract`]) is useless here by
//! design: resynthesis rebuilds every gate, so gate ids and names do not
//! survive even when the logic does.

use std::collections::HashSet;

use odcfp_analysis::cancel::CancelToken;
use odcfp_netlist::Netlist;
use odcfp_sat::{SweepEngine, SweepOptions};
use odcfp_synth::{resynthesize, ResynthLevel};

use crate::collusion::{TraceOutcome, TraceParams, TracerIndex};
use crate::{apply_modification, Fingerprinter};

use super::{AttackError, SurvivalStats};

/// One resynthesis level's graded outcome.
#[derive(Debug, Clone, PartialEq)]
pub struct ResynthAttackReport {
    /// Effort level.
    pub level: ResynthLevel,
    /// Gates in the fingerprinted copy before the attack.
    pub gates_before: usize,
    /// Gates after the attack.
    pub gates_after: usize,
    /// Wires the victim copy embedded (set bits).
    pub wires_embedded: usize,
    /// Embedded wires identifiable before the attack (the survival
    /// denominator).
    pub wires_identifiable: usize,
    /// Identifiable wires still recovered after the attack.
    pub wires_surviving: usize,
    /// Locations recovered as present although the victim never embedded
    /// them (structural aliasing introduced by the rewrite).
    pub phantom_wires: usize,
    /// `wires_surviving / wires_identifiable` (1.0 when nothing was
    /// identifiable — no evidence, nothing destroyed).
    pub survival_rate: f64,
    /// Tracing outcome over the recovered wire set.
    pub outcome: TraceOutcome,
    /// Whether the victim buyer (buyer 0) is among the convicted.
    pub victim_convicted: bool,
    /// Convicted buyers other than the victim.
    pub innocents_accused: usize,
    /// Surviving evidence wires the tracer saw.
    pub evidence_wires: usize,
}

/// The designer's structural matcher: per-location widened-shape classes
/// over a persistent hash-consing engine, calibrated against one victim
/// copy.
///
/// Classes are full-cone structural hashes, so a widened gate's class
/// depends on everything upstream of it — including *other* fingerprint
/// modifications. Reading each embedded wire's class out of the victim
/// netlist itself (rather than out of an isolated single-bit variant)
/// keeps the reference aligned with what the attacked netlist can
/// actually still contain.
#[derive(Debug)]
pub struct StructuralReference {
    engine: SweepEngine,
    /// Classes present in the base netlist (wires matching these carry
    /// no fingerprint information).
    base_classes: HashSet<u32>,
    /// Per location: the distinguishing class to look for — the victim's
    /// widened target-gate output for embedded wires, the single-bit
    /// variant's for absent wires (phantom detection). `None` when the
    /// class collides with base logic or another location
    /// (unidentifiable).
    class_of: Vec<Option<u32>>,
    identifiable: Vec<bool>,
}

impl StructuralReference {
    /// Interns the base netlist, the victim copy, and the single-bit
    /// variants of every wire the victim did *not* embed, recording each
    /// location's distinguishing class.
    ///
    /// # Errors
    ///
    /// [`AttackError::Cancelled`] if the token fires mid-build;
    /// modification application errors surface as
    /// [`AttackError::Fingerprint`].
    pub fn new(
        fp: &Fingerprinter,
        victim: &crate::FingerprintedCopy,
        token: &CancelToken,
    ) -> Result<StructuralReference, AttackError> {
        let mut span = odcfp_obs::span("attack.reference");
        let base = fp.base();
        let mut engine = SweepEngine::new(base, SweepOptions::default());
        let base_classes: HashSet<u32> = engine.net_classes(base).into_iter().collect();
        let mods = fp.selected_modifications();
        let bits = victim.bits();
        let mut class_of = vec![None; mods.len()];
        let mut identifiable = vec![false; mods.len()];
        let mut taken: HashSet<u32> = HashSet::new();
        // Embedded wires first: their class in the victim's own context
        // is the exact shape a rewrite has to destroy.
        let victim_classes = engine.net_classes(victim.netlist());
        for (i, m) in mods.iter().enumerate() {
            if !bits[i] {
                continue;
            }
            let cls = victim_classes[victim.netlist().gate(m.target()).output().index()];
            if cls != u32::MAX && !base_classes.contains(&cls) && taken.insert(cls) {
                class_of[i] = Some(cls);
                identifiable[i] = true;
            }
        }
        // Absent wires: the shape each would take alone. Seeing one of
        // these in an attacked netlist is a phantom — structural aliasing
        // fabricating a bit the victim never carried.
        for (i, m) in mods.iter().enumerate() {
            if bits[i] {
                continue;
            }
            if i % 64 == 0 && token.is_cancelled() {
                return Err(AttackError::Cancelled);
            }
            let mut variant = base.clone();
            apply_modification(&mut variant, m)?;
            let classes = engine.net_classes(&variant);
            let cls = classes[variant.gate(m.target()).output().index()];
            if cls != u32::MAX && !base_classes.contains(&cls) && taken.insert(cls) {
                class_of[i] = Some(cls);
                identifiable[i] = true;
            }
        }
        span.field("locations", mods.len());
        span.field(
            "identifiable",
            identifiable.iter().filter(|&&b| b).count(),
        );
        Ok(StructuralReference {
            engine,
            base_classes,
            class_of,
            identifiable,
        })
    }

    /// Per-location identifiability mask.
    pub fn identifiable(&self) -> &[bool] {
        &self.identifiable
    }

    /// Recovers the per-location wire-presence string from any netlist
    /// with the same primary inputs: location `i` reads `true` iff its
    /// widened class occurs among the netlist's structural classes.
    pub fn recover(&mut self, suspect: &Netlist) -> Vec<bool> {
        let present: HashSet<u32> = self
            .engine
            .net_classes(suspect)
            .into_iter()
            .filter(|&c| c != u32::MAX && !self.base_classes.contains(&c))
            .collect();
        self.class_of
            .iter()
            .map(|c| c.is_some_and(|cls| present.contains(&cls)))
            .collect()
    }
}

/// Runs one resynthesis level against the victim copy, grades survival
/// against the pre-attack `baseline` recovery, traces the recovered wire
/// set, and folds the per-location outcome into `survival`.
#[allow(clippy::too_many_arguments)]
pub(super) fn attack_once(
    reference: &mut StructuralReference,
    index: &TracerIndex,
    trace_params: &TraceParams,
    victim: &crate::FingerprintedCopy,
    baseline: &[bool],
    level: ResynthLevel,
    survival: &mut SurvivalStats,
) -> Result<ResynthAttackReport, AttackError> {
    let mut span = odcfp_obs::span("attack.resynth");
    span.field("level", level.name());
    let (attacked, stats) = resynthesize(victim.netlist(), level)?;
    let recovered = reference.recover(&attacked);

    let bits = victim.bits();
    let mut wires_embedded = 0usize;
    let mut wires_identifiable = 0usize;
    let mut wires_surviving = 0usize;
    let mut phantom_wires = 0usize;
    survival.attacks += 1;
    for i in 0..bits.len() {
        if bits[i] {
            wires_embedded += 1;
            if baseline[i] {
                wires_identifiable += 1;
                survival.tested[i] += 1;
                if recovered[i] {
                    wires_surviving += 1;
                    survival.survived[i] += 1;
                }
            }
        } else if recovered[i] {
            phantom_wires += 1;
        }
    }
    let survival_rate = if wires_identifiable == 0 {
        1.0
    } else {
        wires_surviving as f64 / wires_identifiable as f64
    };

    let verdict = index.verdict(&recovered, trace_params);
    let victim_convicted = verdict.convicted.iter().any(|s| s.buyer == 0);
    let innocents_accused = verdict
        .convicted
        .iter()
        .filter(|s| s.buyer != 0)
        .count();

    let report = ResynthAttackReport {
        level,
        gates_before: stats.gates_before,
        gates_after: stats.gates_after,
        wires_embedded,
        wires_identifiable,
        wires_surviving,
        phantom_wires,
        survival_rate,
        outcome: verdict.outcome,
        victim_convicted,
        innocents_accused,
        evidence_wires: verdict.evidence_wires,
    };
    odcfp_obs::point("attack.resynth.survival")
        .field("level", level.name())
        .field("embedded", wires_embedded as u64)
        .field("identifiable", wires_identifiable as u64)
        .field("surviving", wires_surviving as u64)
        .field("phantom", phantom_wires as u64)
        .field("survival_bp", (survival_rate * 10_000.0).round() as u64)
        .field("outcome", verdict.outcome.name())
        .field("victim_convicted", victim_convicted)
        .field("innocents_accused", innocents_accused as u64)
        .emit();
    span.field("gates_after", stats.gates_after);
    Ok(report)
}
