//! Budgeted, degrading equivalence verification — defense in depth for
//! every netlist the pipeline emits.
//!
//! Fingerprinting's safety claim ("the modification never changes the
//! function") is only as strong as the checker that enforces it, and a
//! checker that falls over on large designs gets disabled in practice.
//! This module provides a *degradation ladder* instead of a single
//! all-or-nothing SAT call:
//!
//! 1. **Random-simulation smoke test** — 64-way bit-parallel patterns;
//!    catches gross corruption in microseconds and yields a concrete
//!    counterexample when it fires.
//! 2. **Exhaustive simulation** — when the design has few enough primary
//!    inputs, all `2^n` assignments are simulated, which *is* a proof.
//! 3. **SAT** — by default through the structural-hashing sweep engine
//!    ([`SweepEngine`]): both netlists hash-cons into one shared node
//!    store, outputs with structurally identical cones are proven without
//!    any SAT call, and only the changed region plus its fanout is ever
//!    encoded, with signature-matched interior cut points validated
//!    innermost-first. [`VerifyPolicy::use_fast_path`] `= false` pins the
//!    cold baseline instead: a whole-circuit [`Miter`] solved under a
//!    conflict budget that grows geometrically across attempts (learnt
//!    clauses carry over), bounded by an overall conflict cap and
//!    wall-clock deadline.
//!
//! Every rung reports honestly: the pipeline never claims more certainty
//! than it earned. The possible outcomes form the [`Verdict`] enum —
//! `Proven`, `ProbablyEquivalent`, `Refuted` (with witness), or
//! `Undecided` (with spent-budget accounting). The report-returning
//! entry points ([`verify_equivalent_report`]) pair the verdict with
//! [`VerifyStats`] accounting (patterns simulated, outputs proven
//! structurally, SAT effort).
//!
//! For campaigns checking many copies of one base design,
//! [`VerifySession`] keeps the sweep engine and a [`SharedMiter`] (base
//! encoded once, per-variant activation literals) alive across checks,
//! so each buyer pays only the marginal cost of its own delta.

use std::fmt;
use std::time::{Duration, Instant};

use odcfp_analysis::cancel::CancelToken;
use odcfp_analysis::engine;
use odcfp_logic::rng::Xoshiro256;
use odcfp_logic::sim;
use odcfp_netlist::Netlist;
use odcfp_sat::{
    EquivError, Miter, MiterOutcome, RaceReport, SelectableInput, SelectableVariant, SharedMiter,
    SolverConfig, SolverStats, SweepEngine, SweepOptions, VariantId,
};

use crate::FingerprintError;

/// Resource policy for the staged verification ladder.
///
/// The defaults ([`VerifyPolicy::strict`]) always reach a definitive
/// verdict; [`VerifyPolicy::quick`] stops after simulation;
/// [`VerifyPolicy::budgeted`] bounds the SAT effort so verification can
/// be embedded in latency-sensitive flows without being switched off.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct VerifyPolicy {
    /// 64-bit pattern words for the random-simulation smoke test
    /// (`sim_words * 64` vectors). `0` skips the stage.
    pub sim_words: usize,
    /// Seed for the random patterns (fixed by default so failures
    /// reproduce).
    pub sim_seed: u64,
    /// Run exhaustive simulation when the primary-input count is at most
    /// this (clamped to 16 internally; `0` disables the stage).
    pub exhaustive_max_inputs: usize,
    /// Conflict budget for the first SAT attempt. `None` means a single
    /// unbounded attempt (subject only to the deadline).
    pub sat_initial_conflicts: Option<u64>,
    /// Geometric growth factor applied to the conflict budget between
    /// SAT attempts (values < 2 are treated as 2).
    pub sat_escalation: u32,
    /// Maximum number of SAT attempts. `0` skips SAT entirely, so the
    /// ladder tops out at [`Verdict::ProbablyEquivalent`].
    pub sat_max_attempts: u32,
    /// Hard cap on total conflicts across all SAT attempts.
    pub sat_conflict_cap: Option<u64>,
    /// Wall-clock limit for the whole verification run.
    pub time_limit: Option<Duration>,
    /// Route the SAT rung through the structural-hashing sweep engine
    /// (strash + cone-of-influence reduction + cut-point sweeping)
    /// instead of a cold whole-circuit miter. The verdicts are identical
    /// either way — the flag exists so benchmarks and differential tests
    /// can pin the cold baseline.
    pub use_fast_path: bool,
    /// Backend configuration for every SAT engine the ladder builds (cold
    /// miter, sweep engine, session shared miter). Verdicts are identical
    /// for every profile; the knob only trades search heuristics.
    pub solver: SolverConfig,
    /// When ≥ 2 and a cold-miter attempt comes back undecided, race this
    /// many differently-configured backends on the miter CNF — the first
    /// definitive verdict wins, deterministically (see
    /// [`odcfp_sat::portfolio`]). `0`/`1` disables racing, which keeps
    /// campaign and attack scorecards byte-identical with earlier
    /// releases. Each racer gets the remaining conflict cap, so a width-N
    /// race may spend up to N× the leftover budget.
    pub portfolio: usize,
}

impl VerifyPolicy {
    /// Full-strength verification: simulation smoke test, exhaustive
    /// proof for small designs, then unbounded SAT. Always returns
    /// [`Verdict::Proven`] or [`Verdict::Refuted`].
    pub fn strict() -> Self {
        VerifyPolicy {
            sim_words: 16,
            sim_seed: 0xF1A9,
            exhaustive_max_inputs: 12,
            sat_initial_conflicts: None,
            sat_escalation: 2,
            sat_max_attempts: 1,
            sat_conflict_cap: None,
            time_limit: None,
            use_fast_path: true,
            solver: SolverConfig::default(),
            portfolio: 0,
        }
    }

    /// Simulation-only verification: the smoke test plus the exhaustive
    /// stage, no SAT. Cheap enough to run on every mint; large designs
    /// top out at [`Verdict::ProbablyEquivalent`].
    pub fn quick() -> Self {
        VerifyPolicy {
            sat_max_attempts: 0,
            ..VerifyPolicy::strict()
        }
    }

    /// Bounded verification: SAT effort is capped at roughly
    /// `total_conflicts`, spread over four geometrically growing
    /// attempts. Exceeding the cap yields [`Verdict::Undecided`] rather
    /// than blocking.
    pub fn budgeted(total_conflicts: u64) -> Self {
        VerifyPolicy {
            sat_initial_conflicts: Some((total_conflicts / 15).max(64)),
            sat_escalation: 2,
            sat_max_attempts: 4,
            sat_conflict_cap: Some(total_conflicts),
            ..VerifyPolicy::strict()
        }
    }

    /// Adds a wall-clock limit to the policy.
    pub fn with_time_limit(mut self, limit: Duration) -> Self {
        self.time_limit = Some(limit);
        self
    }
}

impl Default for VerifyPolicy {
    fn default() -> Self {
        VerifyPolicy::strict()
    }
}

/// The outcome of a [`verify_equivalent`] run — exactly as much certainty
/// as the policy's budget bought, never more.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Verdict {
    /// Equivalence was proven (UNSAT miter, or exhaustive simulation of
    /// every input assignment).
    Proven,
    /// Every simulated pattern agreed, but no proof was attempted or
    /// completed; `patterns` counts the vectors that were checked.
    ProbablyEquivalent {
        /// Number of input vectors simulated without a mismatch.
        patterns: u64,
    },
    /// The designs differ; `counterexample` is a primary-input
    /// assignment (in input order) on which the outputs disagree.
    Refuted {
        /// Witness input assignment, one bool per primary input.
        counterexample: Vec<bool>,
    },
    /// The budget or deadline ran out before a decision.
    Undecided {
        /// Total SAT conflicts spent across all attempts.
        conflicts_spent: u64,
        /// Wall-clock time the verification run took.
        elapsed: Duration,
    },
}

impl Verdict {
    /// `true` for verdicts that justify shipping the candidate
    /// ([`Verdict::Proven`] or [`Verdict::ProbablyEquivalent`]).
    pub fn is_pass(&self) -> bool {
        matches!(self, Verdict::Proven | Verdict::ProbablyEquivalent { .. })
    }

    /// Stable snake_case identifier of the verdict variant, used in trace
    /// events, campaign journals, and bench output.
    pub fn name(&self) -> &'static str {
        match self {
            Verdict::Proven => "proven",
            Verdict::ProbablyEquivalent { .. } => "probably_equivalent",
            Verdict::Refuted { .. } => "refuted",
            Verdict::Undecided { .. } => "undecided",
        }
    }
}

impl fmt::Display for Verdict {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Verdict::Proven => write!(f, "proven equivalent"),
            Verdict::ProbablyEquivalent { patterns } => {
                write!(f, "probably equivalent ({patterns} patterns agreed)")
            }
            Verdict::Refuted { counterexample } => {
                let bits: String = counterexample
                    .iter()
                    .map(|&b| if b { '1' } else { '0' })
                    .collect();
                write!(f, "refuted (counterexample inputs: {bits})")
            }
            Verdict::Undecided {
                conflicts_spent,
                elapsed,
            } => write!(
                f,
                "undecided ({conflicts_spent} conflicts spent in {elapsed:.2?})"
            ),
        }
    }
}

/// Effort accounting for one verification run — what each rung of the
/// ladder actually did, alongside the [`Verdict`] in a [`VerifyReport`].
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct VerifyStats {
    /// Input vectors simulated across the random and exhaustive stages.
    pub patterns_simulated: u64,
    /// Primary-output pairs the sweep engine proved by structural hashing
    /// alone, with no SAT call (fast path only).
    pub strash_proven_outputs: usize,
    /// Interior cut-point pairs proven equal and merged (fast path only).
    pub cut_points_proven: usize,
    /// Candidate cut-point pairs refuted by a simulation-fed SAT model
    /// (fast path only).
    pub cut_points_refuted: usize,
    /// Candidate cut-point pairs skipped on a per-pair conflict budget
    /// (fast path only).
    pub cut_points_skipped: usize,
    /// SAT conflicts this run spent.
    pub sat_conflicts: u64,
    /// Statistics of the SAT engine that ran, when one did. For
    /// [`VerifySession`] these are cumulative over the session's life —
    /// the persistent solver is the point.
    pub solver: Option<SolverStats>,
    /// Whether the SAT rung went through the sweep engine.
    pub used_fast_path: bool,
    /// Report of the portfolio race, when the cold-miter ladder escalated
    /// into one ([`VerifyPolicy::portfolio`] ≥ 2 and an attempt came back
    /// undecided).
    pub race: Option<RaceReport>,
    /// Wall-clock time of the whole run.
    pub elapsed: Duration,
}

/// A [`Verdict`] paired with the [`VerifyStats`] effort accounting.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct VerifyReport {
    /// The equivalence verdict.
    pub verdict: Verdict,
    /// What it cost to reach.
    pub stats: VerifyStats,
}

/// Runs the staged verification ladder comparing `candidate` against
/// `golden` under `policy`.
///
/// Primary inputs and outputs are matched by position, as everywhere in
/// this crate (candidates are derived from clones of the golden design).
///
/// # Errors
///
/// Returns [`FingerprintError::InvalidNetlist`] when either netlist fails
/// structural validation and [`FingerprintError::Verification`] when the
/// interfaces don't match. Budget exhaustion is **not** an error — it is
/// the [`Verdict::Undecided`] outcome, with accounting.
pub fn verify_equivalent(
    golden: &Netlist,
    candidate: &Netlist,
    policy: &VerifyPolicy,
) -> Result<Verdict, FingerprintError> {
    verify_equivalent_cancellable(golden, candidate, policy, &CancelToken::new())
}

/// [`verify_equivalent`] returning the full [`VerifyReport`] (verdict plus
/// effort accounting).
///
/// # Errors
///
/// As [`verify_equivalent`].
pub fn verify_equivalent_report(
    golden: &Netlist,
    candidate: &Netlist,
    policy: &VerifyPolicy,
) -> Result<VerifyReport, FingerprintError> {
    verify_equivalent_report_cancellable(golden, candidate, policy, &CancelToken::new())
}

/// [`verify_equivalent`] under a cooperative [`CancelToken`].
///
/// Every rung of the ladder observes the token *and* the policy's
/// `time_limit` (composed via [`CancelToken::bounded_by`]): the random
/// and exhaustive simulation stages poll between bounded pattern
/// batches, and the SAT stage arms the solver's conflict-point interrupt
/// in addition to its deadline. A fired token yields
/// [`Verdict::Undecided`] with whatever accounting was accrued — exactly
/// the degradation contract budget exhaustion already follows — so
/// callers cannot tell cancellation apart from a slow proof by verdict
/// alone; batch runners check the token they handed in.
///
/// # Errors
///
/// As [`verify_equivalent`].
pub fn verify_equivalent_cancellable(
    golden: &Netlist,
    candidate: &Netlist,
    policy: &VerifyPolicy,
    token: &CancelToken,
) -> Result<Verdict, FingerprintError> {
    Ok(verify_equivalent_report_cancellable(golden, candidate, policy, token)?.verdict)
}

/// [`verify_equivalent_report`] under a cooperative [`CancelToken`] —
/// the full-fidelity entry point the other three delegate to.
///
/// # Errors
///
/// As [`verify_equivalent`].
pub fn verify_equivalent_report_cancellable(
    golden: &Netlist,
    candidate: &Netlist,
    policy: &VerifyPolicy,
    token: &CancelToken,
) -> Result<VerifyReport, FingerprintError> {
    let start = Instant::now();
    golden.validate()?;
    candidate.validate()?;
    check_interfaces(golden, candidate)?;

    // Compose the caller's token with the policy's wall-clock limit; all
    // three stages observe the combined handle.
    let token = token.bounded_by(policy.time_limit.map(|limit| start + limit));
    let mut stats = VerifyStats::default();
    if let Some(verdict) = sim_stages(golden, candidate, policy, &token, &mut stats, start) {
        stats.elapsed = start.elapsed();
        trace_verdict(&verdict, &stats);
        return Ok(VerifyReport { verdict, stats });
    }
    let verdict = {
        let mut span = odcfp_obs::span("verify.sat");
        span.field("fast_path", policy.use_fast_path);
        let verdict = if policy.use_fast_path {
            sat_stage_sweep(golden, candidate, policy, &token, &mut stats, start)?
        } else {
            sat_stage_cold(golden, candidate, policy, &token, &mut stats, start)?
        };
        span.field("verdict", verdict.name());
        verdict
    };
    stats.elapsed = start.elapsed();
    trace_verdict(&verdict, &stats);
    Ok(VerifyReport { verdict, stats })
}

/// Deterministic payload event closing one verification run. The counts
/// are thread-invariant (chunk-ordered simulation, sequential SAT), so
/// this event is safe for the payload contract at any worker count.
fn trace_verdict(verdict: &Verdict, stats: &VerifyStats) {
    if !odcfp_obs::enabled() {
        return;
    }
    odcfp_obs::point("verify.verdict")
        .field("verdict", verdict.name())
        .field("patterns", stats.patterns_simulated)
        .field("conflicts", stats.sat_conflicts)
        .field("fast_path", stats.used_fast_path)
        .emit();
}

/// Positional interface comparison shared by every entry point.
fn check_interfaces(golden: &Netlist, candidate: &Netlist) -> Result<(), FingerprintError> {
    if golden.primary_inputs().len() != candidate.primary_inputs().len() {
        return Err(FingerprintError::Verification(EquivError::InputCountMismatch {
            left: golden.primary_inputs().len(),
            right: candidate.primary_inputs().len(),
        }));
    }
    if golden.primary_outputs().len() != candidate.primary_outputs().len() {
        return Err(FingerprintError::Verification(EquivError::OutputCountMismatch {
            left: golden.primary_outputs().len(),
            right: candidate.primary_outputs().len(),
        }));
    }
    Ok(())
}

/// Stages 1 and 2 of the ladder (plus the closed-circuit and no-SAT
/// short-circuits). `Some(verdict)` ends the run; `None` hands over to
/// the SAT rung.
fn sim_stages(
    golden: &Netlist,
    candidate: &Netlist,
    policy: &VerifyPolicy,
    token: &CancelToken,
    stats: &mut VerifyStats,
    start: Instant,
) -> Option<Verdict> {
    let num_inputs = golden.primary_inputs().len();
    let undecided = || Verdict::Undecided {
        conflicts_spent: 0,
        elapsed: start.elapsed(),
    };

    // Closed circuits (no inputs) have exactly one behaviour; compare it.
    if num_inputs == 0 {
        return Some(if golden.eval(&[]) == candidate.eval(&[]) {
            Verdict::Proven
        } else {
            Verdict::Refuted {
                counterexample: Vec::new(),
            }
        });
    }

    // Stage 1: random-simulation smoke test.
    if policy.sim_words > 0 {
        let mut span = odcfp_obs::span("verify.sim");
        let mut rng = Xoshiro256::seed_from_u64(policy.sim_seed);
        let patterns: Vec<Vec<u64>> = (0..num_inputs)
            .map(|_| sim::random_words(&mut rng, policy.sim_words))
            .collect();
        let scan = sim_scan(golden, candidate, &patterns, token);
        span.field("patterns", (policy.sim_words as u64) * 64);
        span.field("outcome", scan.trace_name());
        drop(span);
        match scan {
            SimScan::Mismatch(counterexample) => {
                return Some(Verdict::Refuted { counterexample })
            }
            SimScan::Clean => stats.patterns_simulated = (policy.sim_words as u64) * 64,
            SimScan::Cancelled => return Some(undecided()),
        }
    }

    // Stage 2: exhaustive simulation — a proof when the input space fits.
    if num_inputs <= policy.exhaustive_max_inputs.min(16) {
        let mut span = odcfp_obs::span("verify.exhaustive");
        let patterns = sim::exhaustive_patterns(num_inputs);
        let scan = sim_scan(golden, candidate, &patterns, token);
        span.field("patterns", 1u64 << num_inputs);
        span.field("outcome", scan.trace_name());
        drop(span);
        // Padding bits beyond 2^n replicate the all-zeros assignment, so
        // any mismatch here is a genuine counterexample.
        return Some(match scan {
            SimScan::Mismatch(counterexample) => Verdict::Refuted { counterexample },
            SimScan::Clean => {
                stats.patterns_simulated += 1 << num_inputs;
                Verdict::Proven
            }
            SimScan::Cancelled => undecided(),
        });
    }

    if policy.sat_max_attempts == 0 {
        return Some(Verdict::ProbablyEquivalent {
            patterns: stats.patterns_simulated,
        });
    }
    None
}

/// The total conflict allowance the policy grants the SAT rung: the
/// explicit cap when set, otherwise the sum of the geometric attempt
/// budgets the cold ladder would spend. `None` means unbounded.
fn total_sat_budget(policy: &VerifyPolicy) -> Option<u64> {
    if let Some(cap) = policy.sat_conflict_cap {
        return Some(cap);
    }
    let initial = policy.sat_initial_conflicts?;
    let escalation = u64::from(policy.sat_escalation.max(2));
    let mut total = 0u64;
    let mut attempt = initial.max(1);
    for _ in 0..policy.sat_max_attempts {
        total = total.saturating_add(attempt);
        attempt = attempt.saturating_mul(escalation);
    }
    Some(total)
}

/// Stage 3, fast path: one-shot SAT sweeping (strash + cone-local cut
/// points) on a fresh engine. Campaigns reuse the engine across copies
/// through [`VerifySession`] instead.
fn sat_stage_sweep(
    golden: &Netlist,
    candidate: &Netlist,
    policy: &VerifyPolicy,
    token: &CancelToken,
    stats: &mut VerifyStats,
    start: Instant,
) -> Result<Verdict, FingerprintError> {
    let mut engine = SweepEngine::new(
        golden,
        SweepOptions {
            solver: policy.solver,
            ..SweepOptions::default()
        },
    );
    engine.set_interrupt(token.flag());
    let report = engine
        .check(candidate, total_sat_budget(policy), token.deadline())
        .map_err(FingerprintError::Verification)?;
    stats.used_fast_path = true;
    stats.strash_proven_outputs = report.strash_proven;
    stats.cut_points_proven = report.cut_points_proven;
    stats.cut_points_refuted = report.cut_points_refuted;
    stats.cut_points_skipped = report.cut_points_skipped;
    stats.sat_conflicts = report.conflicts;
    stats.solver = Some(engine.solver_stats());
    trace_fastpath(&report);
    Ok(match report.outcome {
        MiterOutcome::Equivalent => Verdict::Proven,
        MiterOutcome::Counterexample(counterexample) => Verdict::Refuted { counterexample },
        MiterOutcome::Undecided => Verdict::Undecided {
            conflicts_spent: report.conflicts,
            elapsed: start.elapsed(),
        },
    })
}

/// Deterministic payload event classifying how the sweep settled (or
/// failed to settle) a candidate: `strash` = structurally identical with
/// zero SAT, `cutpoint` = interior merges collapsed the outputs, `sat` =
/// a direct output query decided it, `refuted` / `undecided` as named.
/// Sessions emit `shared_fallback` instead of `undecided` when the
/// leftover budget is handed to the [`SharedMiter`].
fn trace_fastpath(report: &odcfp_sat::SweepReport) {
    if !odcfp_obs::enabled() {
        return;
    }
    let reason = match &report.outcome {
        MiterOutcome::Equivalent => {
            if report.cut_points_proven > 0 {
                "cutpoint"
            } else if report.conflicts == 0 {
                "strash"
            } else {
                "sat"
            }
        }
        MiterOutcome::Counterexample(_) => "refuted",
        MiterOutcome::Undecided => "undecided",
    };
    odcfp_obs::point("verify.fastpath").field("reason", reason).emit();
}

/// Stage 3, cold baseline: SAT with geometric budget escalation on one
/// incremental whole-circuit miter (learnt clauses persist across
/// attempts).
fn sat_stage_cold(
    golden: &Netlist,
    candidate: &Netlist,
    policy: &VerifyPolicy,
    token: &CancelToken,
    stats: &mut VerifyStats,
    start: Instant,
) -> Result<Verdict, FingerprintError> {
    let deadline = token.deadline();
    let mut miter =
        Miter::build_with(golden, candidate, policy.solver).map_err(FingerprintError::Verification)?;
    // An explicit cancel() must stop the solver at its next conflict
    // point, not only between attempts.
    miter.set_interrupt(token.flag());
    let escalation = u64::from(policy.sat_escalation.max(2));
    let mut attempt_budget = policy.sat_initial_conflicts;
    let mut verdict = None;
    for _ in 0..policy.sat_max_attempts {
        if token.is_cancelled() {
            break;
        }
        // Clip this attempt to whatever remains of the overall cap.
        let effective = match (attempt_budget, policy.sat_conflict_cap) {
            (b, None) => b,
            (b, Some(cap)) => {
                let left = cap.saturating_sub(miter.conflicts_spent());
                Some(b.map_or(left, |b| b.min(left)))
            }
        };
        match miter.solve(effective, deadline) {
            MiterOutcome::Equivalent => {
                verdict = Some(Verdict::Proven);
                break;
            }
            MiterOutcome::Counterexample(counterexample) => {
                verdict = Some(Verdict::Refuted { counterexample });
                break;
            }
            MiterOutcome::Undecided => {
                // Once the incremental solver has burned its first budget,
                // a wide portfolio often decides faster than escalating the
                // same search — race fresh backends once, on the same CNF.
                if policy.portfolio >= 2 && stats.race.is_none() && !token.is_cancelled() {
                    let per_racer = policy
                        .sat_conflict_cap
                        .map(|cap| cap.saturating_sub(miter.conflicts_spent()));
                    let outcome =
                        miter.race(policy.portfolio, per_racer, deadline, Some(token.flag()));
                    stats.race = miter.last_race().cloned();
                    match outcome {
                        MiterOutcome::Equivalent => {
                            verdict = Some(Verdict::Proven);
                            break;
                        }
                        MiterOutcome::Counterexample(counterexample) => {
                            verdict = Some(Verdict::Refuted { counterexample });
                            break;
                        }
                        MiterOutcome::Undecided => {}
                    }
                }
                if policy
                    .sat_conflict_cap
                    .is_some_and(|cap| miter.conflicts_spent() >= cap)
                {
                    break;
                }
                attempt_budget = attempt_budget.map(|b| b.saturating_mul(escalation).max(1));
            }
        }
    }
    stats.sat_conflicts = miter.conflicts_spent();
    stats.solver = Some(miter.stats());
    Ok(verdict.unwrap_or(Verdict::Undecided {
        conflicts_spent: miter.conflicts_spent(),
        elapsed: start.elapsed(),
    }))
}

/// The outcome of one cancellable simulation sweep.
enum SimScan {
    /// A differing output bit was found; the decoded input assignment.
    Mismatch(Vec<bool>),
    /// Every pattern agreed.
    Clean,
    /// The token fired (deadline or explicit cancel) before the sweep
    /// finished; partial agreement proves nothing, so the result is
    /// discarded.
    Cancelled,
}

impl SimScan {
    fn trace_name(&self) -> &'static str {
        match self {
            SimScan::Mismatch(_) => "mismatch",
            SimScan::Clean => "clean",
            SimScan::Cancelled => "cancelled",
        }
    }
}

/// Simulates both netlists on `patterns` and, on the first differing
/// output bit, decodes the corresponding input assignment. Polls `token`
/// between bounded word batches.
fn sim_scan(
    left: &Netlist,
    right: &Netlist,
    patterns: &[Vec<u64>],
    token: &CancelToken,
) -> SimScan {
    let num_words = patterns.first().map_or(0, Vec::len);
    // Word chunks fan out across workers; each chunk's sequential scan is
    // outputs-major, so its hit is the chunk's lexicographic minimum over
    // `(output, word)`, and the global minimum across chunks reproduces the
    // sequential scan's answer at any thread count (batch boundaries only
    // refine the partition; min-merge is associative). Short pattern sets
    // stay sequential — slicing costs more than it saves.
    let threads = if num_words < 64 {
        1
    } else {
        engine::configured_threads()
    };
    let hits = engine::parallel_chunks_cancellable(num_words, threads, token, |range| {
        let slice: Vec<Vec<u64>> = patterns
            .iter()
            .map(|signal| signal[range.clone()].to_vec())
            .collect();
        let vl = left.simulate(&slice);
        let vr = right.simulate(&slice);
        let mut hit: Option<(usize, usize, u32)> = None;
        'outputs: for (o, (&ol, &or)) in left
            .primary_outputs()
            .iter()
            .zip(right.primary_outputs())
            .enumerate()
        {
            for (w, (&a, &b)) in vl[ol.index()].iter().zip(&vr[or.index()]).enumerate() {
                let diff = a ^ b;
                if diff != 0 {
                    hit = Some((o, range.start + w, diff.trailing_zeros()));
                    break 'outputs;
                }
            }
        }
        hit
    });
    let Some(hits) = hits else {
        return SimScan::Cancelled;
    };
    match hits.into_iter().flatten().min() {
        Some((_, w, bit)) => SimScan::Mismatch(
            patterns
                .iter()
                .map(|signal| (signal[w] >> bit) & 1 == 1)
                .collect(),
        ),
        None => SimScan::Clean,
    }
}

/// A persistent verification context for checking many fingerprinted
/// copies against one golden netlist.
///
/// A campaign verifies dozens of buyer copies of the *same* base
/// circuit; building the proof machinery from scratch per copy throws
/// away everything the previous copy taught the solver. A session keeps
/// two incremental engines alive across calls:
///
/// * a [`SweepEngine`] whose strash store, signature pool (including
///   counterexample patterns learned from earlier copies), proven
///   equivalence classes, and learnt clauses all persist — a second
///   copy touching the same region usually proves structurally with
///   zero SAT;
/// * a [`SharedMiter`] fallback that Tseitin-encodes the base once and
///   checks each copy's delta under a per-variant activation literal,
///   used when the sweep leaves outputs undecided within budget.
///
/// Both engines are built lazily on first use, so a session whose
/// copies all fall to simulation costs nothing extra.
///
/// Sessions always take the fast path; the cold baseline for benchmarks
/// is the free function with [`VerifyPolicy::use_fast_path`] unset.
/// Verdict-wise the two agree: definitive outcomes (`Proven`/`Refuted`)
/// are canonical, and reuse only changes how fast they are reached (see
/// DESIGN.md §11 for the determinism argument).
///
/// `stats.solver` in returned reports is cumulative over the session's
/// sweep engine, not per-call.
///
/// # Example
///
/// Verify two buyer copies through one session; the second check reuses
/// the strash store and learnt clauses the first one built:
///
/// ```
/// use odcfp_core::{Fingerprinter, Verdict, VerifyPolicy, VerifySession};
/// use odcfp_netlist::CellLibrary;
/// use odcfp_synth::benchmarks::random::{random_dag, DagParams};
///
/// let base = random_dag(CellLibrary::standard(), DagParams::small(11));
/// let fp = Fingerprinter::new(base)?;
/// let mut session = VerifySession::new(fp.base())?;
/// for seed in [1u64, 2] {
///     let copy = fp.embed_seeded(seed)?;
///     let report = session.verify(copy.netlist(), &VerifyPolicy::strict())?;
///     assert!(matches!(report.verdict, Verdict::Proven));
/// }
/// # Ok::<(), odcfp_core::FingerprintError>(())
/// ```
#[derive(Debug)]
pub struct VerifySession {
    golden: Netlist,
    solver: SolverConfig,
    sweep: Option<SweepEngine>,
    shared: Option<SharedMiter>,
}

/// Result of [`VerifySession::prove_code_space`]: the handle to the
/// selectable variant plus what one solve established about the whole
/// code space.
#[derive(Debug, Clone)]
pub struct CodeSpaceProof {
    handle: SelectableVariant,
    /// What the free-selector solve established.
    pub outcome: CodeSpaceOutcome,
    /// Conflicts spent by the free-selector solve.
    pub conflicts: u64,
}

impl CodeSpaceProof {
    /// Number of fingerprint locations (selector groups) covered.
    pub fn num_groups(&self) -> usize {
        self.handle.num_groups()
    }
}

/// Outcome of the one-shot code-space solve.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CodeSpaceOutcome {
    /// UNSAT with all selectors free: **every** code in the space is
    /// equivalent to the golden netlist — individual buyers need no
    /// further solving.
    ProvenAll,
    /// Some code differs; the witness assigns the primary inputs. Buyers
    /// must be decided individually (or through the per-buyer fallback).
    SomeCodeDiffers {
        /// Primary-input assignment exhibiting the difference.
        counterexample: Vec<bool>,
    },
    /// Budget or deadline exhausted before a verdict.
    Undecided,
}

impl CodeSpaceOutcome {
    /// Stable lowercase name for traces and journals.
    pub fn name(&self) -> &'static str {
        match self {
            CodeSpaceOutcome::ProvenAll => "proven_all",
            CodeSpaceOutcome::SomeCodeDiffers { .. } => "some_code_differs",
            CodeSpaceOutcome::Undecided => "undecided",
        }
    }
}

impl VerifySession {
    /// Creates a session bound to `golden`.
    ///
    /// # Errors
    ///
    /// Returns an error if `golden` fails validation.
    pub fn new(golden: &Netlist) -> Result<Self, FingerprintError> {
        Self::with_solver(golden, SolverConfig::default())
    }

    /// Creates a session whose persistent SAT engines (sweep engine and
    /// shared miter) use `solver`. The engines live for the session's
    /// lifetime, so the configuration is fixed at construction rather
    /// than taken from each [`VerifyPolicy`].
    ///
    /// # Errors
    ///
    /// Returns an error if `golden` fails validation.
    pub fn with_solver(golden: &Netlist, solver: SolverConfig) -> Result<Self, FingerprintError> {
        golden.validate()?;
        Ok(Self {
            golden: golden.clone(),
            solver,
            sweep: None,
            shared: None,
        })
    }

    /// The golden netlist this session verifies against.
    pub fn golden(&self) -> &Netlist {
        &self.golden
    }

    /// Verifies `candidate` against the session's golden netlist.
    ///
    /// # Errors
    ///
    /// As [`verify_equivalent`].
    pub fn verify(
        &mut self,
        candidate: &Netlist,
        policy: &VerifyPolicy,
    ) -> Result<VerifyReport, FingerprintError> {
        self.verify_cancellable(candidate, policy, &CancelToken::new())
    }

    /// [`VerifySession::verify`] under a cooperative [`CancelToken`].
    ///
    /// # Errors
    ///
    /// As [`verify_equivalent`].
    pub fn verify_cancellable(
        &mut self,
        candidate: &Netlist,
        policy: &VerifyPolicy,
        token: &CancelToken,
    ) -> Result<VerifyReport, FingerprintError> {
        let start = Instant::now();
        candidate.validate()?;
        check_interfaces(&self.golden, candidate)?;
        let token = token.bounded_by(policy.time_limit.map(|limit| start + limit));
        let mut stats = VerifyStats::default();
        if let Some(verdict) =
            sim_stages(&self.golden, candidate, policy, &token, &mut stats, start)
        {
            stats.elapsed = start.elapsed();
            trace_verdict(&verdict, &stats);
            return Ok(VerifyReport { verdict, stats });
        }

        let mut sat_span = odcfp_obs::span("verify.sat");
        sat_span.field("fast_path", true);
        let budget = total_sat_budget(policy);
        let golden = &self.golden;
        let solver = self.solver;
        let engine = self.sweep.get_or_insert_with(|| {
            SweepEngine::new(
                golden,
                SweepOptions {
                    solver,
                    ..SweepOptions::default()
                },
            )
        });
        engine.set_interrupt(token.flag());
        let report = engine
            .check(candidate, budget, token.deadline())
            .map_err(FingerprintError::Verification)?;
        stats.used_fast_path = true;
        stats.strash_proven_outputs = report.strash_proven;
        stats.cut_points_proven = report.cut_points_proven;
        stats.cut_points_refuted = report.cut_points_refuted;
        stats.cut_points_skipped = report.cut_points_skipped;
        stats.sat_conflicts = report.conflicts;
        stats.solver = Some(engine.solver_stats());

        if matches!(report.outcome, MiterOutcome::Undecided) {
            odcfp_obs::point("verify.fastpath")
                .field("reason", "shared_fallback")
                .emit();
        } else {
            trace_fastpath(&report);
        }
        let verdict = match report.outcome {
            MiterOutcome::Equivalent => Verdict::Proven,
            MiterOutcome::Counterexample(counterexample) => Verdict::Refuted { counterexample },
            MiterOutcome::Undecided => {
                // The sweep ran out of budget (or cut points); hand the
                // leftover conflict allowance to the shared miter, which
                // attacks the whole circuit rather than cone-by-cone.
                let remaining = budget.map(|b| b.saturating_sub(report.conflicts));
                self.shared_fallback(candidate, remaining, &token, &mut stats, start)?
            }
        };
        sat_span.field("verdict", verdict.name());
        drop(sat_span);
        stats.elapsed = start.elapsed();
        trace_verdict(&verdict, &stats);
        Ok(VerifyReport { verdict, stats })
    }

    /// Verifies a batch of candidates against the session's golden
    /// netlist through **one** warm [`SharedMiter`] probe pass, each
    /// candidate under its own [`CancelToken`].
    ///
    /// The per-candidate ladder is preserved: every candidate first runs
    /// the same simulation stages as [`VerifySession::verify_cancellable`]
    /// (closed-circuit, random smoke test, exhaustive proof), and only
    /// the survivors reach SAT. Those survivors are then all encoded
    /// into the session's shared miter in one pass — Tseitin clauses,
    /// learnt clauses, and the base encoding amortize across the whole
    /// batch — and probed one activation literal at a time, each probe
    /// limited by the policy's total SAT budget and its own token.
    /// Variants retire after their probe, so a refuted candidate never
    /// slows later queries.
    ///
    /// Definitive verdicts (`Proven` / `Refuted`) are identical to the
    /// per-request path — both procedures are sound and complete given
    /// budget — which is what lets `odcfp serve` coalesce concurrent
    /// verify requests without changing a single answer (the serve-side
    /// differential test pins this). Under exhausted budgets the two
    /// paths may differ only in *which* requests degrade to `Undecided`,
    /// because the batch path probes the whole miter instead of running
    /// the sweep engine's cone-by-cone pass.
    ///
    /// Returns one `Result` per candidate, in input order. Per-candidate
    /// validation or interface errors fail only that slot.
    pub fn verify_many_cancellable(
        &mut self,
        candidates: &[(&Netlist, &CancelToken)],
        policy: &VerifyPolicy,
    ) -> Vec<Result<VerifyReport, FingerprintError>> {
        let mut batch_span = odcfp_obs::span("verify.batch");
        batch_span.field("size", candidates.len());
        let start = Instant::now();
        let mut results: Vec<Option<Result<VerifyReport, FingerprintError>>> =
            (0..candidates.len()).map(|_| None).collect();
        // Index, composed token, and accrued stats of candidates that
        // survive simulation and need the shared SAT probe.
        let mut pending: Vec<(usize, CancelToken, VerifyStats)> = Vec::new();
        for (i, (candidate, token)) in candidates.iter().enumerate() {
            if let Err(e) = candidate.validate() {
                results[i] = Some(Err(e.into()));
                continue;
            }
            if let Err(e) = check_interfaces(&self.golden, candidate) {
                results[i] = Some(Err(e));
                continue;
            }
            let token = token.bounded_by(policy.time_limit.map(|limit| Instant::now() + limit));
            let mut stats = VerifyStats::default();
            if let Some(verdict) =
                sim_stages(&self.golden, candidate, policy, &token, &mut stats, start)
            {
                stats.elapsed = start.elapsed();
                trace_verdict(&verdict, &stats);
                results[i] = Some(Ok(VerifyReport { verdict, stats }));
                continue;
            }
            pending.push((i, token, stats));
        }
        batch_span.field("sat_probes", pending.len());
        if !pending.is_empty() {
            let budget = total_sat_budget(policy);
            let golden = &self.golden;
            let solver = self.solver;
            let shared = match &mut self.shared {
                Some(shared) => shared,
                None => self.shared.insert(SharedMiter::build_with(golden, solver)),
            };
            // Encode the whole batch before the first probe: one pass
            // over the base, all deltas guarded by activation literals.
            let mut probes: Vec<(usize, CancelToken, VerifyStats, Option<VariantId>)> = pending
                .into_iter()
                .map(|(i, token, stats)| {
                    let id = match shared.add_variant(candidates[i].0) {
                        Ok(id) => Some(id),
                        Err(e) => {
                            results[i] = Some(Err(FingerprintError::Verification(e)));
                            None
                        }
                    };
                    (i, token, stats, id)
                })
                .collect();
            for (i, token, stats, id) in probes.drain(..) {
                let Some(id) = id else { continue };
                shared.set_interrupt(token.flag());
                let before = shared.stats().conflicts;
                let outcome = if token.is_cancelled() {
                    MiterOutcome::Undecided
                } else {
                    shared.check(id, budget, token.deadline())
                };
                shared.retire(id);
                let mut stats = stats;
                stats.sat_conflicts += shared.stats().conflicts.saturating_sub(before);
                let verdict = match outcome {
                    MiterOutcome::Equivalent => Verdict::Proven,
                    MiterOutcome::Counterexample(counterexample) => {
                        Verdict::Refuted { counterexample }
                    }
                    MiterOutcome::Undecided => Verdict::Undecided {
                        conflicts_spent: stats.sat_conflicts,
                        elapsed: start.elapsed(),
                    },
                };
                stats.elapsed = start.elapsed();
                trace_verdict(&verdict, &stats);
                results[i] = Some(Ok(VerifyReport { verdict, stats }));
            }
        }
        results
            .into_iter()
            .map(|r| r.expect("every candidate slot was decided"))
            .collect()
    }

    /// Proves the *code space* of a fingerprinter in one SAT call: given
    /// the superposed variant (every modification applied) and the
    /// selectable-input map produced by
    /// [`CodeSpace::build`](crate::codebook::CodeSpace::build), solves the
    /// miter with all selectors free. UNSAT proves every `2^groups` buyer
    /// code equivalent to the golden at once; afterwards
    /// [`VerifySession::check_code`] decides individual codes by
    /// assumption, with no per-buyer netlist ever materialized.
    ///
    /// The selectable variant's clauses stay active in the session's
    /// shared solver for the session's lifetime (they are guarded, so
    /// other queries only pay propagation on them).
    ///
    /// # Errors
    ///
    /// Returns an error if `superposed` fails validation or its interface
    /// doesn't match the golden netlist.
    pub fn prove_code_space(
        &mut self,
        superposed: &Netlist,
        selectable: &[SelectableInput],
        groups: usize,
        budget: Option<u64>,
        token: &CancelToken,
    ) -> Result<CodeSpaceProof, FingerprintError> {
        superposed.validate()?;
        check_interfaces(&self.golden, superposed)?;
        let mut span = odcfp_obs::span("verify.codespace");
        span.field("groups", groups);
        let golden = &self.golden;
        let shared = match &mut self.shared {
            Some(shared) => shared,
            None => self.shared.insert(SharedMiter::build_with(golden, self.solver)),
        };
        shared.set_interrupt(token.flag());
        let before = shared.stats().conflicts;
        let handle = shared
            .add_selectable_variant(superposed, selectable, groups)
            .map_err(FingerprintError::Verification)?;
        let outcome = if token.is_cancelled() {
            MiterOutcome::Undecided
        } else {
            shared.check(handle.id(), budget, token.deadline())
        };
        let conflicts = shared.stats().conflicts.saturating_sub(before);
        let outcome = match outcome {
            MiterOutcome::Equivalent => CodeSpaceOutcome::ProvenAll,
            MiterOutcome::Counterexample(counterexample) => {
                CodeSpaceOutcome::SomeCodeDiffers { counterexample }
            }
            MiterOutcome::Undecided => CodeSpaceOutcome::Undecided,
        };
        span.field("outcome", outcome.name());
        span.field("conflicts", conflicts);
        Ok(CodeSpaceProof {
            handle,
            outcome,
            conflicts,
        })
    }

    /// Decides one buyer code against a [`CodeSpaceProof`] from this
    /// session, as a combination check on the already-encoded selectable
    /// variant (no netlist is built).
    ///
    /// After [`CodeSpaceOutcome::ProvenAll`] this is a pure consistency
    /// check and returns [`Verdict::Proven`] without touching the solver;
    /// otherwise it solves under the code's assumption literals.
    ///
    /// # Panics
    ///
    /// Panics if `code` length differs from the proof's group count or if
    /// the proof belongs to a different session.
    pub fn check_code(
        &mut self,
        proof: &CodeSpaceProof,
        code: &[bool],
        budget: Option<u64>,
        token: &CancelToken,
    ) -> Verdict {
        assert_eq!(
            code.len(),
            proof.handle.num_groups(),
            "code length must match the proof's group count"
        );
        let start = Instant::now();
        if matches!(proof.outcome, CodeSpaceOutcome::ProvenAll) {
            return Verdict::Proven;
        }
        let shared = self
            .shared
            .as_mut()
            .expect("a CodeSpaceProof implies the shared miter exists");
        shared.set_interrupt(token.flag());
        let before = shared.stats().conflicts;
        match shared.check_code(&proof.handle, code, budget, token.deadline()) {
            MiterOutcome::Equivalent => Verdict::Proven,
            MiterOutcome::Counterexample(counterexample) => Verdict::Refuted { counterexample },
            MiterOutcome::Undecided => Verdict::Undecided {
                conflicts_spent: shared.stats().conflicts.saturating_sub(before),
                elapsed: start.elapsed(),
            },
        }
    }

    /// Checks `candidate` as a retired-on-exit variant of the session's
    /// persistent [`SharedMiter`].
    fn shared_fallback(
        &mut self,
        candidate: &Netlist,
        remaining: Option<u64>,
        token: &CancelToken,
        stats: &mut VerifyStats,
        start: Instant,
    ) -> Result<Verdict, FingerprintError> {
        let undecided = |stats: &VerifyStats| Verdict::Undecided {
            conflicts_spent: stats.sat_conflicts,
            elapsed: start.elapsed(),
        };
        if token.is_cancelled() || remaining == Some(0) {
            return Ok(undecided(stats));
        }
        let golden = &self.golden;
        let shared = match &mut self.shared {
            Some(shared) => shared,
            None => self.shared.insert(SharedMiter::build_with(golden, self.solver)),
        };
        shared.set_interrupt(token.flag());
        let before = shared.stats().conflicts;
        let id = shared
            .add_variant(candidate)
            .map_err(FingerprintError::Verification)?;
        let outcome = shared.check(id, remaining, token.deadline());
        // Retire unconditionally: a variant is checked exactly once per
        // call, and keeping refuted/undecided deltas active would slow
        // every later query.
        shared.retire(id);
        stats.sat_conflicts += shared.stats().conflicts.saturating_sub(before);
        Ok(match outcome {
            MiterOutcome::Equivalent => Verdict::Proven,
            MiterOutcome::Counterexample(counterexample) => Verdict::Refuted { counterexample },
            MiterOutcome::Undecided => undecided(stats),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use odcfp_logic::PrimitiveFn;
    use odcfp_netlist::CellLibrary;
    use odcfp_synth::benchmarks::random::{random_dag, DagParams};

    /// XOR chain over `width` inputs in either association order: the two
    /// are equivalent, but the proof needs real SAT search, and `width`
    /// above the exhaustive limit forces the ladder onto the SAT rung.
    fn xor_chain(width: usize, reversed: bool) -> Netlist {
        let lib = CellLibrary::standard();
        let mut n = Netlist::new("xors", lib);
        let mut pis: Vec<_> = (0..width)
            .map(|i| n.add_primary_input(format!("i{i}")))
            .collect();
        if reversed {
            pis.reverse();
        }
        let xor2 = n.library().cell_for(PrimitiveFn::Xor, 2).unwrap();
        let mut acc = pis[0];
        for (k, &pi) in pis.iter().enumerate().skip(1) {
            let g = n.add_gate(format!("x{k}"), xor2, &[acc, pi]);
            acc = n.gate_output(g);
        }
        n.set_primary_output(acc);
        n
    }

    #[test]
    fn small_equivalent_pair_is_proven_by_exhaustion() {
        let left = xor_chain(6, false);
        let right = xor_chain(6, true);
        // No SAT attempts allowed: the proof must come from stage 2.
        let policy = VerifyPolicy::quick();
        assert_eq!(
            verify_equivalent(&left, &right, &policy).unwrap(),
            Verdict::Proven
        );
    }

    #[test]
    fn large_equivalent_pair_without_sat_is_only_probable() {
        let left = xor_chain(20, false);
        let right = xor_chain(20, true);
        let policy = VerifyPolicy::quick();
        assert_eq!(
            verify_equivalent(&left, &right, &policy).unwrap(),
            Verdict::ProbablyEquivalent { patterns: 16 * 64 }
        );
    }

    #[test]
    fn large_equivalent_pair_with_sat_is_proven() {
        let left = xor_chain(20, false);
        let right = xor_chain(20, true);
        assert_eq!(
            verify_equivalent(&left, &right, &VerifyPolicy::strict()).unwrap(),
            Verdict::Proven
        );
    }

    #[test]
    fn refuted_carries_a_real_counterexample() {
        let left = xor_chain(20, false);
        let lib = left.library().clone();
        // Same interface, different function: AND instead of XOR at the top.
        let mut right = Netlist::new("w", lib);
        let pis: Vec<_> = (0..20)
            .map(|i| right.add_primary_input(format!("i{i}")))
            .collect();
        let xor2 = right.library().cell_for(PrimitiveFn::Xor, 2).unwrap();
        let and2 = right.library().cell_for(PrimitiveFn::And, 2).unwrap();
        let mut acc = pis[0];
        for (k, &pi) in pis.iter().enumerate().skip(1) {
            let cell = if k == 19 { and2 } else { xor2 };
            let g = right.add_gate(format!("x{k}"), cell, &[acc, pi]);
            acc = right.gate_output(g);
        }
        right.set_primary_output(acc);

        match verify_equivalent(&left, &right, &VerifyPolicy::strict()).unwrap() {
            Verdict::Refuted { counterexample } => {
                assert_eq!(counterexample.len(), 20);
                assert_ne!(left.eval(&counterexample), right.eval(&counterexample));
            }
            other => panic!("expected refuted, got {other}"),
        }
    }

    #[test]
    fn starved_policy_reports_undecided_with_accounting() {
        let left = xor_chain(20, false);
        let right = xor_chain(20, true);
        // Simulation passes, exhaustive is disabled by width, and the SAT
        // rung gets a conflict cap far too small for a 20-bit XOR proof.
        let policy = VerifyPolicy {
            sat_initial_conflicts: Some(1),
            sat_escalation: 2,
            sat_max_attempts: 2,
            sat_conflict_cap: Some(2),
            ..VerifyPolicy::strict()
        };
        match verify_equivalent(&left, &right, &policy).unwrap() {
            Verdict::Undecided {
                conflicts_spent,
                elapsed,
            } => {
                assert!(conflicts_spent <= 2 + 1, "cap respected: {conflicts_spent}");
                assert!(elapsed > Duration::ZERO);
            }
            other => panic!("expected undecided, got {other}"),
        }
        // The same pair under a real budget is decidable.
        assert_eq!(
            verify_equivalent(&left, &right, &VerifyPolicy::strict()).unwrap(),
            Verdict::Proven
        );
    }

    /// A cold miter starved down to a one-conflict budget cannot decide a
    /// 20-bit XOR pair — but with `portfolio ≥ 2` the Undecided attempt
    /// escalates into a race of fresh backends, which proves it.
    #[test]
    fn portfolio_rescues_a_starved_cold_miter() {
        let left = xor_chain(20, false);
        let right = xor_chain(20, true);
        let starved = VerifyPolicy {
            use_fast_path: false,
            sat_initial_conflicts: Some(1),
            sat_max_attempts: 1,
            ..VerifyPolicy::strict()
        };
        // Without a portfolio the starved ladder gives up...
        assert!(matches!(
            verify_equivalent(&left, &right, &starved).unwrap(),
            Verdict::Undecided { .. }
        ));
        // ...and with one it must reach the proof and report the race.
        let policy = VerifyPolicy {
            portfolio: 3,
            ..starved
        };
        let report = verify_equivalent_report(&left, &right, &policy).unwrap();
        assert_eq!(report.verdict, Verdict::Proven);
        let race = report.stats.race.expect("race report recorded");
        assert!(race.winner.is_some(), "a racer won: {race:?}");
        assert_eq!(race.racers.len(), 3);
    }

    /// Regression: losing racers are cancelled through *private* per-racer
    /// flags. The shared [`CancelToken`] handed to the verify call must
    /// never be raised by the race, or every subsequent obligation on the
    /// same token would be silently cancelled.
    #[test]
    fn portfolio_race_cannot_poison_the_shared_cancel_token() {
        let left = xor_chain(20, false);
        let right = xor_chain(20, true);
        let policy = VerifyPolicy {
            use_fast_path: false,
            sat_initial_conflicts: Some(1),
            sat_max_attempts: 1,
            portfolio: 4,
            ..VerifyPolicy::strict()
        };
        let token = CancelToken::new();
        let report =
            verify_equivalent_report_cancellable(&left, &right, &policy, &token).unwrap();
        assert_eq!(report.verdict, Verdict::Proven);
        assert!(
            !token.is_cancelled(),
            "losing racers must not raise the shared token"
        );
        // A second obligation on the same token still verifies normally.
        assert_eq!(
            verify_equivalent_cancellable(&left, &right, &policy, &token).unwrap(),
            Verdict::Proven
        );
    }

    #[test]
    fn expired_deadline_reports_undecided() {
        let left = xor_chain(20, false);
        let right = xor_chain(20, true);
        let policy = VerifyPolicy::strict().with_time_limit(Duration::ZERO);
        assert!(matches!(
            verify_equivalent(&left, &right, &policy).unwrap(),
            Verdict::Undecided { .. }
        ));
    }

    /// Regression (deadline granularity): a near-zero deadline must stop
    /// the *random-simulation* stage, not just the SAT rung. With SAT
    /// disabled, the old ladder ran the full sweep and reported
    /// `ProbablyEquivalent` no matter the time limit.
    #[test]
    fn random_sim_stage_observes_the_deadline() {
        let left = xor_chain(20, false);
        let right = xor_chain(20, true);
        let policy = VerifyPolicy {
            sim_words: 4096,
            sat_max_attempts: 0,
            ..VerifyPolicy::strict()
        }
        .with_time_limit(Duration::ZERO);
        match verify_equivalent(&left, &right, &policy).unwrap() {
            Verdict::Undecided {
                conflicts_spent, ..
            } => assert_eq!(conflicts_spent, 0, "no SAT ran"),
            other => panic!("expected undecided under a zero deadline, got {other}"),
        }
    }

    /// Regression (deadline granularity): the *exhaustive* stage must
    /// observe the deadline too — previously it would run all 2^n
    /// assignments and claim `Proven` under an already-expired limit.
    #[test]
    fn exhaustive_stage_observes_the_deadline() {
        let left = xor_chain(10, false);
        let right = xor_chain(10, true);
        // Skip stage 1 so the exhaustive stage is the one on the clock.
        let policy = VerifyPolicy {
            sim_words: 0,
            sat_max_attempts: 0,
            ..VerifyPolicy::strict()
        }
        .with_time_limit(Duration::ZERO);
        assert!(matches!(
            verify_equivalent(&left, &right, &policy).unwrap(),
            Verdict::Undecided { .. }
        ));
        // The same pair with time is proven by exhaustion.
        let policy = VerifyPolicy {
            sim_words: 0,
            sat_max_attempts: 0,
            ..VerifyPolicy::strict()
        };
        assert_eq!(
            verify_equivalent(&left, &right, &policy).unwrap(),
            Verdict::Proven
        );
    }

    /// An explicitly fired token degrades every rung to `Undecided`, even
    /// under the unbounded strict policy.
    #[test]
    fn fired_token_short_circuits_the_whole_ladder() {
        let left = xor_chain(20, false);
        let right = xor_chain(20, true);
        let token = CancelToken::new();
        token.cancel();
        match verify_equivalent_cancellable(&left, &right, &VerifyPolicy::strict(), &token)
            .unwrap()
        {
            Verdict::Undecided { .. } => {}
            other => panic!("expected undecided after cancel, got {other}"),
        }
        // A quiet token changes nothing.
        assert_eq!(
            verify_equivalent_cancellable(
                &left,
                &right,
                &VerifyPolicy::strict(),
                &CancelToken::new()
            )
            .unwrap(),
            Verdict::Proven
        );
    }

    #[test]
    fn sim_smoke_test_refutes_grossly_broken_copies() {
        let left = xor_chain(20, false);
        let lib = left.library().clone();
        let mut right = Netlist::new("stuck", lib);
        for i in 0..20 {
            right.add_primary_input(format!("i{i}"));
        }
        let zero = right.add_constant("zero", false);
        right.set_primary_output(zero);
        // Exhaustive and SAT disabled: only the smoke test can catch it.
        let policy = VerifyPolicy {
            exhaustive_max_inputs: 0,
            sat_max_attempts: 0,
            ..VerifyPolicy::strict()
        };
        match verify_equivalent(&left, &right, &policy).unwrap() {
            Verdict::Refuted { counterexample } => {
                assert_ne!(left.eval(&counterexample), right.eval(&counterexample));
            }
            other => panic!("expected refuted, got {other}"),
        }
    }

    #[test]
    fn simulation_witness_is_identical_at_any_thread_count() {
        // Inequivalent pair: the top gate differs (AND vs XOR).
        let left = xor_chain(20, false);
        let lib = left.library().clone();
        let mut right = Netlist::new("w", lib);
        let pis: Vec<_> = (0..20)
            .map(|i| right.add_primary_input(format!("i{i}")))
            .collect();
        let xor2 = right.library().cell_for(PrimitiveFn::Xor, 2).unwrap();
        let and2 = right.library().cell_for(PrimitiveFn::And, 2).unwrap();
        let mut acc = pis[0];
        for (k, &pi) in pis.iter().enumerate().skip(1) {
            let cell = if k == 19 { and2 } else { xor2 };
            let g = right.add_gate(format!("x{k}"), cell, &[acc, pi]);
            acc = right.gate_output(g);
        }
        right.set_primary_output(acc);

        // Enough words that the chunked scan actually engages, sim only.
        let policy = VerifyPolicy {
            sim_words: 256,
            exhaustive_max_inputs: 0,
            sat_max_attempts: 0,
            ..VerifyPolicy::strict()
        };
        let mut witnesses = Vec::new();
        for threads in [1usize, 2, 8] {
            engine::set_thread_override(Some(threads));
            witnesses.push(verify_equivalent(&left, &right, &policy).unwrap());
        }
        engine::set_thread_override(None);
        assert!(matches!(witnesses[0], Verdict::Refuted { .. }));
        assert_eq!(witnesses[0], witnesses[1]);
        assert_eq!(witnesses[0], witnesses[2]);
    }

    #[test]
    fn interface_mismatch_is_an_error_not_a_verdict() {
        let left = xor_chain(6, false);
        let right = xor_chain(7, false);
        assert!(matches!(
            verify_equivalent(&left, &right, &VerifyPolicy::quick()),
            Err(FingerprintError::Verification(
                EquivError::InputCountMismatch { .. }
            ))
        ));
    }

    #[test]
    fn fingerprinted_random_dag_verifies_under_budget() {
        let lib = CellLibrary::standard();
        let base = random_dag(lib, DagParams::small(77));
        let fp = crate::Fingerprinter::new(base).unwrap();
        let copy = fp.embed(&vec![true; fp.locations().len()]).unwrap();
        let verdict =
            verify_equivalent(fp.base(), copy.netlist(), &VerifyPolicy::budgeted(100_000))
                .unwrap();
        assert!(verdict.is_pass(), "got {verdict}");
    }

    /// The miter-free (`use_fast_path = false`) and sweeping rungs must
    /// return the same verdicts — the fast path is an optimization, not
    /// a different decision procedure.
    #[test]
    fn fast_and_cold_sat_rungs_agree() {
        let left = xor_chain(20, false);
        let equivalent = xor_chain(20, true);
        let lib = left.library().clone();
        let mut broken = Netlist::new("w", lib);
        let pis: Vec<_> = (0..20)
            .map(|i| broken.add_primary_input(format!("i{i}")))
            .collect();
        let xor2 = broken.library().cell_for(PrimitiveFn::Xor, 2).unwrap();
        let and2 = broken.library().cell_for(PrimitiveFn::And, 2).unwrap();
        let mut acc = pis[0];
        for (k, &pi) in pis.iter().enumerate().skip(1) {
            let cell = if k == 19 { and2 } else { xor2 };
            let g = broken.add_gate(format!("x{k}"), cell, &[acc, pi]);
            acc = broken.gate_output(g);
        }
        broken.set_primary_output(acc);

        // Skip simulation so the SAT rung alone decides both cases.
        let base = VerifyPolicy {
            sim_words: 0,
            exhaustive_max_inputs: 0,
            ..VerifyPolicy::strict()
        };
        let cold = VerifyPolicy {
            use_fast_path: false,
            ..base.clone()
        };
        assert_eq!(
            verify_equivalent(&left, &equivalent, &base).unwrap(),
            verify_equivalent(&left, &equivalent, &cold).unwrap(),
        );
        let fast = verify_equivalent(&left, &broken, &base).unwrap();
        assert!(matches!(fast, Verdict::Refuted { .. }));
        let Verdict::Refuted { counterexample } = fast else {
            unreachable!()
        };
        assert_ne!(left.eval(&counterexample), broken.eval(&counterexample));
        assert!(matches!(
            verify_equivalent(&left, &broken, &cold).unwrap(),
            Verdict::Refuted { .. }
        ));
    }

    #[test]
    fn report_accounts_for_the_fast_path() {
        let lib = CellLibrary::standard();
        let base = random_dag(lib, DagParams::small(78));
        let fp = crate::Fingerprinter::new(base).unwrap();
        let copy = fp.embed(&vec![true; fp.locations().len()]).unwrap();
        // Force the SAT rung so the sweep actually runs.
        let policy = VerifyPolicy {
            sim_words: 1,
            exhaustive_max_inputs: 0,
            ..VerifyPolicy::strict()
        };
        let report = verify_equivalent_report(fp.base(), copy.netlist(), &policy).unwrap();
        assert_eq!(report.verdict, Verdict::Proven);
        assert!(report.stats.used_fast_path);
        assert!(report.stats.solver.is_some());
        assert_eq!(report.stats.patterns_simulated, 64);
        assert!(report.stats.elapsed > Duration::ZERO);
        // A cold run proves the same thing without touching the sweep.
        let cold = VerifyPolicy {
            use_fast_path: false,
            ..policy
        };
        let report = verify_equivalent_report(fp.base(), copy.netlist(), &cold).unwrap();
        assert_eq!(report.verdict, Verdict::Proven);
        assert!(!report.stats.used_fast_path);
        assert_eq!(report.stats.strash_proven_outputs, 0);
    }

    #[test]
    fn session_verifies_many_copies_and_matches_one_shot_verdicts() {
        let lib = CellLibrary::standard();
        let base = random_dag(lib, DagParams::small(79));
        let fp = crate::Fingerprinter::new(base).unwrap();
        let n = fp.locations().len();
        assert!(n >= 2);
        let policy = VerifyPolicy {
            sim_words: 1,
            exhaustive_max_inputs: 0,
            ..VerifyPolicy::strict()
        };
        let mut session = VerifySession::new(fp.base()).unwrap();
        for pattern in [0usize, 1, 3, usize::MAX] {
            let bits: Vec<bool> = (0..n).map(|i| (pattern >> i.min(63)) & 1 == 1).collect();
            let copy = fp.embed(&bits).unwrap();
            let report = session.verify(copy.netlist(), &policy).unwrap();
            assert_eq!(
                report.verdict,
                verify_equivalent(fp.base(), copy.netlist(), &policy).unwrap(),
                "pattern {pattern:b}"
            );
            assert_eq!(report.verdict, Verdict::Proven);
            assert!(report.stats.used_fast_path);
        }
        // The unmodified base is pure strash: zero conflicts spent.
        let report = session.verify(fp.base(), &policy).unwrap();
        assert_eq!(report.verdict, Verdict::Proven);
        assert_eq!(report.stats.sat_conflicts, 0);
    }

    #[test]
    fn session_refutes_with_a_genuine_counterexample() {
        let left = xor_chain(20, false);
        let lib = left.library().clone();
        let mut broken = Netlist::new("stuck", lib);
        for i in 0..20 {
            broken.add_primary_input(format!("i{i}"));
        }
        let zero = broken.add_constant("zero", false);
        broken.set_primary_output(zero);
        let policy = VerifyPolicy {
            sim_words: 0,
            exhaustive_max_inputs: 0,
            ..VerifyPolicy::strict()
        };
        let mut session = VerifySession::new(&left).unwrap();
        match session.verify(&broken, &policy).unwrap().verdict {
            Verdict::Refuted { counterexample } => {
                assert_eq!(counterexample.len(), 20);
                assert_ne!(left.eval(&counterexample), broken.eval(&counterexample));
            }
            other => panic!("expected refuted, got {other}"),
        }
        // The session survives a refutation and still proves the good pair.
        let good = xor_chain(20, true);
        assert_eq!(
            session.verify(&good, &policy).unwrap().verdict,
            Verdict::Proven
        );
    }

    #[test]
    fn starved_session_is_honestly_undecided_and_recovers() {
        let left = xor_chain(20, false);
        let right = xor_chain(20, true);
        let mut session = VerifySession::new(&left).unwrap();
        let starved = VerifyPolicy {
            sim_words: 0,
            exhaustive_max_inputs: 0,
            sat_conflict_cap: Some(1),
            ..VerifyPolicy::strict()
        };
        assert!(matches!(
            session.verify(&right, &starved).unwrap().verdict,
            Verdict::Undecided { .. }
        ));
        let generous = VerifyPolicy {
            sim_words: 0,
            exhaustive_max_inputs: 0,
            ..VerifyPolicy::strict()
        };
        assert_eq!(
            session.verify(&right, &generous).unwrap().verdict,
            Verdict::Proven
        );
    }

    #[test]
    fn session_rejects_interface_mismatches() {
        let left = xor_chain(6, false);
        let mut session = VerifySession::new(&left).unwrap();
        assert!(matches!(
            session.verify(&xor_chain(7, false), &VerifyPolicy::quick()),
            Err(FingerprintError::Verification(
                EquivError::InputCountMismatch { .. }
            ))
        ));
    }

    #[test]
    fn verdict_display_is_human_readable() {
        assert_eq!(Verdict::Proven.to_string(), "proven equivalent");
        assert!(Verdict::ProbablyEquivalent { patterns: 1024 }
            .to_string()
            .contains("1024 patterns"));
        assert!(Verdict::Refuted {
            counterexample: vec![true, false, true]
        }
        .to_string()
        .contains("101"));
        assert!(Verdict::Undecided {
            conflicts_spent: 7,
            elapsed: Duration::from_millis(3)
        }
        .to_string()
        .contains("7 conflicts"));
    }
}
