//! Error type for fingerprinting operations.

use std::fmt;

use odcfp_netlist::{GateId, NetlistError};
use odcfp_sat::EquivError;

/// Why a fingerprinting operation failed.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum FingerprintError {
    /// The input netlist is structurally invalid.
    InvalidNetlist(NetlistError),
    /// The bit string length does not match the number of locations.
    BitLengthMismatch {
        /// Locations available.
        expected: usize,
        /// Bits supplied.
        found: usize,
    },
    /// A modification could not be applied (e.g. no wide-enough cell).
    CannotApply {
        /// The gate that was to be modified.
        gate: GateId,
        /// Human-readable reason.
        reason: String,
    },
    /// The fingerprinted copy failed functional verification — this
    /// indicates a bug and should never occur for locations produced by
    /// [`crate::find_locations`].
    NotEquivalent {
        /// A primary-input assignment exposing the difference, when the
        /// checker produced one.
        counterexample: Option<Vec<bool>>,
    },
    /// The SAT equivalence check ran out of budget.
    Verification(EquivError),
}

impl fmt::Display for FingerprintError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FingerprintError::InvalidNetlist(e) => write!(f, "invalid netlist: {e}"),
            FingerprintError::BitLengthMismatch { expected, found } => write!(
                f,
                "bit string length {found} does not match {expected} fingerprint locations"
            ),
            FingerprintError::CannotApply { gate, reason } => {
                write!(f, "cannot modify gate {gate}: {reason}")
            }
            FingerprintError::NotEquivalent { .. } => {
                write!(f, "fingerprinted copy is not functionally equivalent")
            }
            FingerprintError::Verification(e) => write!(f, "verification failed: {e}"),
        }
    }
}

impl std::error::Error for FingerprintError {}

impl From<NetlistError> for FingerprintError {
    fn from(e: NetlistError) -> Self {
        FingerprintError::InvalidNetlist(e)
    }
}

impl From<EquivError> for FingerprintError {
    fn from(e: EquivError) -> Self {
        FingerprintError::Verification(e)
    }
}
