//! ODC-based circuit fingerprinting — the method of Dunbar & Qu,
//! *"A Practical Circuit Fingerprinting Method Utilizing Observability
//! Don't Care Conditions"*, DAC 2015.
//!
//! The idea: at a **fingerprint location** — a *primary gate* with a
//! non-zero ODC, fed through a fanout-free cone (FFC) — an **ODC trigger
//! signal** (another input of the primary gate) can be wired into a gate of
//! the FFC without changing the circuit function. Each location then
//! encodes fingerprint bits: connection present = 1, absent = 0. Because
//! the change is a single optional connection, it can be solidified
//! post-silicon (fuses / engineering-change orders), so every buyer's copy
//! carries a distinct mark at near-zero redesign cost.
//!
//! # Pipeline
//!
//! 1. [`Fingerprinter::new`] scans a mapped netlist for locations
//!    (Definition 1 of the paper) and enumerates every legal
//!    [`Modification`] at each.
//! 2. [`Fingerprinter::capacity`] reports how many distinct fingerprints
//!    the design supports (Table II columns 6–7).
//! 3. [`Fingerprinter::embed`] produces a fingerprinted copy for a bit
//!    string; every copy is proven functionally equivalent to the base via
//!    random simulation and (optionally) a SAT miter.
//! 4. [`Fingerprinter::extract`] recovers the bit string from a suspect
//!    copy (the designer-side detection of §III-E).
//! 5. [`heuristics`] implements the paper's reactive and proactive
//!    overhead-reduction methods under a delay constraint (Table III).
//! 6. [`collusion`] models the multi-copy comparison attack of §III-E.
//!
//! # Example
//!
//! Fingerprinting the paper's Figure 1 circuit:
//!
//! ```
//! use odcfp_core::Fingerprinter;
//! use odcfp_netlist::{CellLibrary, Netlist};
//! use odcfp_logic::PrimitiveFn;
//!
//! // F = (A & B) & (C | D).
//! let lib = CellLibrary::standard();
//! let mut n = Netlist::new("fig1", lib);
//! let a = n.add_primary_input("A");
//! let b = n.add_primary_input("B");
//! let c = n.add_primary_input("C");
//! let d = n.add_primary_input("D");
//! let and2 = n.library().cell_for(PrimitiveFn::And, 2).unwrap();
//! let or2 = n.library().cell_for(PrimitiveFn::Or, 2).unwrap();
//! let x = n.add_gate("gx", and2, &[a, b]);
//! let y = n.add_gate("gy", or2, &[c, d]);
//! let f = n.add_gate("gf", and2, &[n.gate_output(x), n.gate_output(y)]);
//! n.set_primary_output(n.gate_output(f));
//!
//! let fp = Fingerprinter::new(n)?;
//! assert!(!fp.locations().is_empty());
//! let copy = fp.embed(&vec![true; fp.locations().len()])?;
//! assert_eq!(fp.extract(copy.netlist()), copy.bits());
//! # Ok::<(), odcfp_core::FingerprintError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod attack;
pub mod campaign;
mod capacity;
pub mod codebook;
pub mod collusion;
mod embed;
mod error;
pub mod faults;
pub mod heuristics;
mod incremental;
mod location;
mod modify;
pub mod robust;
pub mod sdc;
pub mod silicon;
pub mod verify;
pub mod watermark;

pub use capacity::CapacityReport;
pub use codebook::{
    artifact_identity, codebook_file, pack_bits, unpack_bits, CodeSpace, CodebookReader,
    CodebookRecord, CodebookWriter,
};
pub use embed::{Fingerprinter, FingerprintedCopy, SelectionPolicy, VerifyLevel};
pub use error::FingerprintError;
pub use odcfp_analysis::cancel::CancelToken;
pub use incremental::{EmbedSession, IncrementalLocations};
pub use location::{
    find_locations, find_locations_naive, find_locations_with, Candidate, FingerprintLocation,
};
pub use silicon::FlexibleDesign;
pub use modify::{apply_modification, Modification};
pub use verify::{
    verify_equivalent, verify_equivalent_cancellable, verify_equivalent_report,
    verify_equivalent_report_cancellable, CodeSpaceOutcome, CodeSpaceProof, Verdict, VerifyPolicy,
    VerifyReport, VerifySession, VerifyStats,
};
