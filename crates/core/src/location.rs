//! Fingerprint-location discovery (Definition 1 of the paper).

use odcfp_analysis::cones;
use odcfp_analysis::engine::{self, AnalysisEngine};
use odcfp_analysis::odc::{trigger_candidates, trigger_candidates_into, TriggerCandidate};
use odcfp_logic::PrimitiveFn;
use odcfp_netlist::{GateId, NetDriver, NetId, Netlist};

use crate::modify::{applicable, widened_cell, Modification};

/// One legal modification choice at a location, together with the
/// structural context it came from.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Candidate {
    /// The primary-gate input pin fed by the fanout-free cone.
    pub ffc_pin: usize,
    /// The root gate of that cone (its output feeds only the primary gate).
    pub ffc_root: GateId,
    /// The primary-gate input pin carrying the ODC trigger signal.
    pub trigger_pin: usize,
    /// The concrete rewiring.
    pub modification: Modification,
}

/// A fingerprint location: a primary gate satisfying all four criteria of
/// Definition 1, with every legal modification enumerated.
///
/// Each location stores at least one [`Candidate`]; embedding picks one per
/// location (or none, encoding a 0 bit), while capacity accounting counts
/// them all.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FingerprintLocation {
    /// The primary gate (criterion 4: it has a non-zero ODC).
    pub primary_gate: GateId,
    /// All legal modifications, in deterministic discovery order.
    pub candidates: Vec<Candidate>,
}

impl FingerprintLocation {
    /// The number of distinct configurations this location supports,
    /// including "leave unmodified".
    pub fn num_configurations(&self) -> usize {
        self.candidates.len() + 1
    }
}

/// Scans a validated netlist for fingerprint locations.
///
/// A gate `P` becomes a location when (criteria of Definition 1):
///
/// 1. `P` has an input that is not a primary input of the circuit;
/// 2. that input is the output of a fanout-free cone — the driving gate
///    feeds *only* `P`;
/// 3. the cone contains a gate with a non-zero ODC or a single-input gate
///    that the library can widen by one pin;
/// 4. `P` has a non-zero ODC with respect to at least one input other than
///    the cone's output — i.e. `P` has a controlling value and another pin
///    to carry the trigger.
///
/// For every location, all [`Modification`]s are enumerated: the direct
/// trigger insertion (regular or complemented as correctness dictates,
/// Fig. 4) and, when the trigger is produced by a compatible gate, the
/// early-signal reroutes of Fig. 5 (`n(n+1)/2` source subsets of size one
/// and two).
///
/// # Panics
///
/// Panics if the netlist is cyclic (validate first).
pub fn find_locations(netlist: &Netlist) -> Vec<FingerprintLocation> {
    let eng = AnalysisEngine::new(netlist).expect("cyclic netlist");
    find_locations_with(netlist, &eng, engine::configured_threads())
}

/// [`find_locations`] against a prebuilt engine, fanned out over `threads`
/// scoped workers. Gates are probed in id order and worker results are
/// merged in chunk order, so the output is bit-identical to the sequential
/// (and to the [`find_locations_naive`]) result at any thread count.
///
/// # Panics
///
/// Panics if `engine` was built from a different netlist snapshot.
pub fn find_locations_with(
    netlist: &Netlist,
    engine: &AnalysisEngine,
    threads: usize,
) -> Vec<FingerprintLocation> {
    assert_eq!(
        engine.csr().num_gates(),
        netlist.num_gates(),
        "engine built from a different netlist"
    );
    let mut span = odcfp_obs::span("core.locate");
    span.field("gates", netlist.num_gates());
    let chunks = engine::parallel_chunks(netlist.num_gates(), threads, |range| {
        let mut probe = LocationProbe::default();
        range
            .filter_map(|i| probe.location_of(netlist, engine, GateId::from_index(i)))
            .collect::<Vec<FingerprintLocation>>()
    });
    let locations: Vec<FingerprintLocation> = chunks.into_iter().flatten().collect();
    span.field("locations", locations.len());
    locations
}

/// Reusable scratch buffers for probing one gate at a time, so a sweep over
/// the whole netlist performs no per-probe allocations. One probe per
/// worker thread.
#[derive(Debug, Default)]
pub(crate) struct LocationProbe {
    cone: Vec<GateId>,
    targets: Vec<GateId>,
    triggers: Vec<TriggerCandidate>,
    reroutes: Vec<Modification>,
}

impl LocationProbe {
    /// Probes a single gate against Definition 1, returning its location
    /// (if any) with candidates in the canonical discovery order: pins
    /// ascending, triggers in [`trigger_candidates`] order, targets in cone
    /// topological order, direct insertion before the Fig. 5 reroutes.
    pub(crate) fn location_of(
        &mut self,
        netlist: &Netlist,
        engine: &AnalysisEngine,
        p_id: GateId,
    ) -> Option<FingerprintLocation> {
        let p_gate = netlist.gate(p_id);
        let p_fn = netlist.gate_fn(p_id);
        let arity = p_gate.inputs().len();
        // Criterion 4 precondition: P can make other inputs unobservable.
        if !p_fn.has_nonzero_odc(arity) {
            return None;
        }
        let mut candidates = Vec::new();
        for (ffc_pin, &y_net) in p_gate.inputs().iter().enumerate() {
            // Criteria 1 + 2: the pin is driven by a gate that feeds only P.
            let root = match netlist.net(y_net).driver() {
                NetDriver::Gate(g) => g,
                _ => continue,
            };
            if !engine.feeds_only(root, p_id) {
                continue;
            }
            // Criterion 4: trigger pins with their controlling values.
            trigger_candidates_into(p_fn, arity, ffc_pin, &mut self.triggers);
            if self.triggers.is_empty() {
                continue;
            }
            // Criterion 3: eligible target gates inside the cone.
            engine.ffc_of_into(root, &mut self.cone);
            self.targets.clear();
            self.targets.extend(self.cone.iter().copied().filter(|&g| {
                let f = netlist.gate_fn(g);
                (f.has_nonzero_odc(netlist.gate(g).inputs().len()) || f.is_single_input())
                    && widened_cell(netlist, g, 1).is_some()
            }));
            for trig in &self.triggers {
                let trigger_net = p_gate.inputs()[trig.pin];
                // The value of the trigger when Y is observable.
                let non_controlling = !trig.value;
                for &target in &self.targets {
                    let plane_neutral = netlist
                        .gate_fn(target)
                        .widened()
                        .neutral_input_value()
                        .expect("widened functions always have a neutral value");
                    let complement = non_controlling != plane_neutral;
                    let insert = Modification::InsertTrigger {
                        target,
                        trigger: trigger_net,
                        complement,
                    };
                    if applicable(netlist, &insert) {
                        candidates.push(Candidate {
                            ffc_pin,
                            ffc_root: root,
                            trigger_pin: trig.pin,
                            modification: insert,
                        });
                    }
                    // Fig. 5 reroutes via the trigger-generating gate.
                    reroute_options_into(
                        netlist,
                        trigger_net,
                        non_controlling,
                        target,
                        plane_neutral,
                        &mut self.reroutes,
                    );
                    for reroute in self.reroutes.drain(..) {
                        if applicable(netlist, &reroute) {
                            candidates.push(Candidate {
                                ffc_pin,
                                ffc_root: root,
                                trigger_pin: trig.pin,
                                modification: reroute,
                            });
                        }
                    }
                }
            }
        }
        if candidates.is_empty() {
            None
        } else {
            Some(FingerprintLocation {
                primary_gate: p_id,
                candidates,
            })
        }
    }
}

/// The pre-engine reference implementation of [`find_locations`]: per-root
/// DFS cone queries via [`cones`], sequential, one allocation set per
/// probe. Kept as the oracle for equivalence property tests and as the
/// baseline side of the engine-vs-naive benchmarks.
///
/// # Panics
///
/// Panics if the netlist is cyclic (validate first).
pub fn find_locations_naive(netlist: &Netlist) -> Vec<FingerprintLocation> {
    let mut locations = Vec::new();
    for (p_id, p_gate) in netlist.gates() {
        let p_fn = netlist.gate_fn(p_id);
        let arity = p_gate.inputs().len();
        // Criterion 4 precondition: P can make other inputs unobservable.
        if !p_fn.has_nonzero_odc(arity) {
            continue;
        }
        let mut candidates = Vec::new();
        for (ffc_pin, &y_net) in p_gate.inputs().iter().enumerate() {
            // Criteria 1 + 2: the pin is driven by a gate that feeds only P.
            let root = match netlist.net(y_net).driver() {
                NetDriver::Gate(g) => g,
                _ => continue,
            };
            if !cones::feeds_only(netlist, root, p_id) {
                continue;
            }
            // Criterion 4: trigger pins with their controlling values.
            let triggers = trigger_candidates(p_fn, arity, ffc_pin);
            if triggers.is_empty() {
                continue;
            }
            // Criterion 3: eligible target gates inside the cone.
            let cone = cones::ffc_of(netlist, root);
            let targets: Vec<GateId> = cone
                .into_iter()
                .filter(|&g| {
                    let f = netlist.gate_fn(g);
                    (f.has_nonzero_odc(netlist.gate(g).inputs().len()) || f.is_single_input())
                        && widened_cell(netlist, g, 1).is_some()
                })
                .collect();
            for trig in &triggers {
                let trigger_net = p_gate.inputs()[trig.pin];
                // The value of the trigger when Y is observable.
                let non_controlling = !trig.value;
                for &target in &targets {
                    let plane_neutral = netlist
                        .gate_fn(target)
                        .widened()
                        .neutral_input_value()
                        .expect("widened functions always have a neutral value");
                    let complement = non_controlling != plane_neutral;
                    let insert = Modification::InsertTrigger {
                        target,
                        trigger: trigger_net,
                        complement,
                    };
                    if applicable(netlist, &insert) {
                        candidates.push(Candidate {
                            ffc_pin,
                            ffc_root: root,
                            trigger_pin: trig.pin,
                            modification: insert,
                        });
                    }
                    // Fig. 5 reroutes via the trigger-generating gate.
                    let mut reroutes = Vec::new();
                    reroute_options_into(
                        netlist,
                        trigger_net,
                        non_controlling,
                        target,
                        plane_neutral,
                        &mut reroutes,
                    );
                    for reroute in reroutes {
                        if applicable(netlist, &reroute) {
                            candidates.push(Candidate {
                                ffc_pin,
                                ffc_root: root,
                                trigger_pin: trig.pin,
                                modification: reroute,
                            });
                        }
                    }
                }
            }
        }
        if !candidates.is_empty() {
            locations.push(FingerprintLocation {
                primary_gate: p_id,
                candidates,
            });
        }
    }
    locations
}

/// The known value every input of gate function `f` takes when its output
/// is `out`, if `out` pins them all (AND=1 ⇒ inputs 1; NOR=1 ⇒ inputs 0;
/// OR=0 ⇒ inputs 0; NAND=0 ⇒ inputs 1).
fn pinned_input_value(f: PrimitiveFn, out: bool) -> Option<bool> {
    match (f, out) {
        (PrimitiveFn::And, true) | (PrimitiveFn::Nand, false) => Some(true),
        (PrimitiveFn::Or, false) | (PrimitiveFn::Nor, true) => Some(false),
        _ => None,
    }
}

/// Enumerates the Fig. 5 early-reroute modifications for one
/// (trigger, target) pair into `out` (cleared first): subsets of size 1 and
/// 2 of the trigger gate's inputs (`n(n+1)/2` options for an n-input
/// trigger gate).
fn reroute_options_into(
    netlist: &Netlist,
    trigger_net: NetId,
    non_controlling: bool,
    target: GateId,
    plane_neutral: bool,
    out: &mut Vec<Modification>,
) {
    out.clear();
    let trigger_gate = match netlist.net(trigger_net).driver() {
        NetDriver::Gate(g) => g,
        _ => return,
    };
    let t_fn = netlist.gate_fn(trigger_gate);
    let Some(pinned) = pinned_input_value(t_fn, non_controlling) else {
        return;
    };
    let complement = pinned != plane_neutral;
    let inputs = netlist.gate(trigger_gate).inputs();
    for i in 0..inputs.len() {
        out.push(Modification::RerouteEarly {
            target,
            sources: vec![inputs[i]],
            complement,
        });
        for j in (i + 1)..inputs.len() {
            if inputs[i] == inputs[j] {
                continue;
            }
            out.push(Modification::RerouteEarly {
                target,
                sources: vec![inputs[i], inputs[j]],
                complement,
            });
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use odcfp_netlist::CellLibrary;

    /// The paper's Figure 1: F = (A & B) & (C | D).
    fn fig1() -> Netlist {
        let lib = CellLibrary::standard();
        let mut n = Netlist::new("fig1", lib);
        let a = n.add_primary_input("A");
        let b = n.add_primary_input("B");
        let c = n.add_primary_input("C");
        let d = n.add_primary_input("D");
        let and2 = n.library().cell_for(PrimitiveFn::And, 2).unwrap();
        let or2 = n.library().cell_for(PrimitiveFn::Or, 2).unwrap();
        let x = n.add_gate("gx", and2, &[a, b]);
        let y = n.add_gate("gy", or2, &[c, d]);
        let f = n.add_gate("gf", and2, &[n.gate_output(x), n.gate_output(y)]);
        n.set_primary_output(n.gate_output(f));
        n
    }

    #[test]
    fn fig1_has_one_location_at_the_final_and() {
        let n = fig1();
        let locs = find_locations(&n);
        assert_eq!(locs.len(), 1);
        let gf = n.gate_by_name("gf").unwrap();
        assert_eq!(locs[0].primary_gate, gf);
        // Both pins of gf are FFC-fed, so both directions are enumerated:
        // trigger Y into gx (Fig. 1 right) and trigger X into gy, plus
        // Fig. 5 reroutes from the trigger gates.
        let pins: std::collections::HashSet<usize> =
            locs[0].candidates.iter().map(|c| c.ffc_pin).collect();
        assert_eq!(pins.len(), 2);
        // The classic Fig. 1 modification exists: insert Y into gx,
        // regular form (AND primary: nc = 1, AND target neutral = 1).
        let gx = n.gate_by_name("gx").unwrap();
        let gy = n.gate_by_name("gy").unwrap();
        let y_net = n.gate_output(gy);
        assert!(locs[0].candidates.iter().any(|c| c.modification
            == Modification::InsertTrigger {
                target: gx,
                trigger: y_net,
                complement: false
            }));
    }

    #[test]
    fn fig5_reroutes_enumerated() {
        let n = fig1();
        let locs = find_locations(&n);
        let gy = n.gate_by_name("gy").unwrap();
        let a = n.net_by_name("A").unwrap();
        let b = n.net_by_name("B").unwrap();
        // Trigger X = AND(A, B) has 2 inputs -> n(n+1)/2 = 3 reroute options
        // into gy (complemented, since X=1 pins A=B=1 and OR needs 0).
        let reroutes: Vec<&Modification> = locs[0]
            .candidates
            .iter()
            .filter(|c| {
                matches!(c.modification, Modification::RerouteEarly { target, .. } if target == gy)
            })
            .map(|c| &c.modification)
            .collect();
        assert_eq!(reroutes.len(), 3);
        for m in &reroutes {
            assert!(m.complemented());
        }
        let sources: std::collections::HashSet<Vec<NetId>> = reroutes
            .iter()
            .map(|m| m.added_nets().to_vec())
            .collect();
        assert!(sources.contains(&vec![a]));
        assert!(sources.contains(&vec![b]));
        assert!(sources.contains(&vec![a, b]));
    }

    #[test]
    fn every_candidate_preserves_function() {
        let n = fig1();
        let locs = find_locations(&n);
        for loc in &locs {
            for cand in &loc.candidates {
                let mut copy = n.clone();
                crate::modify::apply_modification(&mut copy, &cand.modification).unwrap();
                copy.validate().unwrap();
                for i in 0..16usize {
                    let bits: Vec<bool> = (0..4).map(|v| (i >> v) & 1 == 1).collect();
                    assert_eq!(
                        copy.eval(&bits),
                        n.eval(&bits),
                        "candidate {cand:?} assignment {i:b}"
                    );
                }
            }
        }
    }

    #[test]
    fn xor_primary_gates_are_not_locations() {
        let lib = CellLibrary::standard();
        let mut n = Netlist::new("x", lib);
        let a = n.add_primary_input("a");
        let b = n.add_primary_input("b");
        let c = n.add_primary_input("c");
        let and2 = n.library().cell_for(PrimitiveFn::And, 2).unwrap();
        let xor2 = n.library().cell_for(PrimitiveFn::Xor, 2).unwrap();
        let g1 = n.add_gate("g1", and2, &[a, b]);
        let g2 = n.add_gate("g2", xor2, &[n.gate_output(g1), c]);
        n.set_primary_output(n.gate_output(g2));
        assert!(find_locations(&n).is_empty());
    }

    #[test]
    fn pi_fed_pins_are_not_ffc_roots() {
        // P = AND(a, b) with both inputs primary: criterion 1/2 fail.
        let lib = CellLibrary::standard();
        let mut n = Netlist::new("pi", lib);
        let a = n.add_primary_input("a");
        let b = n.add_primary_input("b");
        let and2 = n.library().cell_for(PrimitiveFn::And, 2).unwrap();
        let g = n.add_gate("g", and2, &[a, b]);
        n.set_primary_output(n.gate_output(g));
        assert!(find_locations(&n).is_empty());
    }

    #[test]
    fn shared_fanout_root_rejected() {
        // gx feeds both gf and another gate: criterion 2 fails for gf's pin.
        let lib = CellLibrary::standard();
        let mut n = Netlist::new("sf", lib);
        let a = n.add_primary_input("a");
        let b = n.add_primary_input("b");
        let y = n.add_primary_input("y");
        let and2 = n.library().cell_for(PrimitiveFn::And, 2).unwrap();
        let inv = n.library().cell_for(PrimitiveFn::Inv, 1).unwrap();
        let gx = n.add_gate("gx", and2, &[a, b]);
        let gf = n.add_gate("gf", and2, &[n.gate_output(gx), y]);
        let side = n.add_gate("side", inv, &[n.gate_output(gx)]);
        n.set_primary_output(n.gate_output(gf));
        n.set_primary_output(n.gate_output(side));
        assert!(find_locations(&n).is_empty());
    }

    #[test]
    fn xor_gates_inside_ffc_are_not_targets() {
        // FFC root is an XOR: criterion 3 excludes it; no other target.
        let lib = CellLibrary::standard();
        let mut n = Netlist::new("xt", lib);
        let a = n.add_primary_input("a");
        let b = n.add_primary_input("b");
        let y = n.add_primary_input("y");
        let xor2 = n.library().cell_for(PrimitiveFn::Xor, 2).unwrap();
        let and2 = n.library().cell_for(PrimitiveFn::And, 2).unwrap();
        let gx = n.add_gate("gx", xor2, &[a, b]);
        let gf = n.add_gate("gf", and2, &[n.gate_output(gx), y]);
        n.set_primary_output(n.gate_output(gf));
        assert!(find_locations(&n).is_empty());
    }

    #[test]
    fn inverter_in_ffc_is_a_target() {
        let lib = CellLibrary::standard();
        let mut n = Netlist::new("it", lib);
        let a = n.add_primary_input("a");
        let y = n.add_primary_input("y");
        let inv = n.library().cell_for(PrimitiveFn::Inv, 1).unwrap();
        let and2 = n.library().cell_for(PrimitiveFn::And, 2).unwrap();
        let gx = n.add_gate("gx", inv, &[a]);
        let gf = n.add_gate("gf", and2, &[n.gate_output(gx), y]);
        n.set_primary_output(n.gate_output(gf));
        let locs = find_locations(&n);
        assert_eq!(locs.len(), 1);
        assert!(locs[0]
            .candidates
            .iter()
            .any(|c| c.modification.target() == gx));
    }

    #[test]
    fn deterministic_discovery_order() {
        let n = fig1();
        assert_eq!(find_locations(&n), find_locations(&n));
        // Stability across worker counts: the engine path must produce the
        // same list at any thread count, and match the naive oracle.
        let eng = AnalysisEngine::new(&n).unwrap();
        let naive = find_locations_naive(&n);
        for threads in [1, 2, 8] {
            assert_eq!(
                find_locations_with(&n, &eng, threads),
                naive,
                "threads={threads}"
            );
        }
    }
}
