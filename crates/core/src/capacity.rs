//! Fingerprint capacity accounting (Table II, columns 6–7).

use std::fmt;

use crate::FingerprintLocation;

/// How much fingerprint information a design can carry.
///
/// The paper counts a minimum of `2^n` fingerprints for `n` locations (one
/// bit per location: modified or not) and reports
/// `log2(possible combinations)` when every configuration choice at every
/// location is counted; both views are provided here.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CapacityReport {
    /// The number of fingerprint locations (`n` of the paper's `2^n`).
    pub num_locations: usize,
    /// `log2` of the total number of distinct fingerprinted copies:
    /// `Σ_loc log2(configurations(loc))`, configurations including "leave
    /// unmodified".
    pub log2_combinations: f64,
    /// The total number of enumerated modification options across all
    /// locations.
    pub num_candidates: usize,
}

impl CapacityReport {
    /// Computes the report for a set of locations.
    pub fn of(locations: &[FingerprintLocation]) -> Self {
        let num_candidates = locations.iter().map(|l| l.candidates.len()).sum();
        let log2_combinations = locations
            .iter()
            .map(|l| (l.num_configurations() as f64).log2())
            .sum();
        CapacityReport {
            num_locations: locations.len(),
            log2_combinations,
            num_candidates,
        }
    }

    /// The guaranteed minimum fingerprint bits (one per location).
    pub fn min_bits(&self) -> usize {
        self.num_locations
    }
}

impl fmt::Display for CapacityReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} locations, {} options, log2(combinations) = {:.2}",
            self.num_locations, self.num_candidates, self.log2_combinations
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::location::Candidate;
    use crate::Modification;
    use odcfp_netlist::{GateId, NetId};

    fn loc(primary: usize, n_candidates: usize) -> FingerprintLocation {
        FingerprintLocation {
            primary_gate: GateId::from_index(primary),
            candidates: (0..n_candidates)
                .map(|i| Candidate {
                    ffc_pin: 0,
                    ffc_root: GateId::from_index(primary + 1),
                    trigger_pin: 1,
                    modification: Modification::InsertTrigger {
                        target: GateId::from_index(primary + 1),
                        trigger: NetId::from_index(i),
                        complement: false,
                    },
                })
                .collect(),
        }
    }

    #[test]
    fn capacity_math() {
        // Two locations: one with 1 option (2 configs), one with 3 options
        // (4 configs): log2(2*4) = 3 bits.
        let locs = vec![loc(0, 1), loc(5, 3)];
        let r = CapacityReport::of(&locs);
        assert_eq!(r.num_locations, 2);
        assert_eq!(r.num_candidates, 4);
        assert!((r.log2_combinations - 3.0).abs() < 1e-12);
        assert_eq!(r.min_bits(), 2);
        assert!(r.to_string().contains("2 locations"));
    }

    #[test]
    fn empty_capacity() {
        let r = CapacityReport::of(&[]);
        assert_eq!(r.num_locations, 0);
        assert_eq!(r.log2_combinations, 0.0);
    }

    #[test]
    fn log2_exceeds_location_count_with_options() {
        // With >1 option per location, log2(combinations) > n — the
        // paper's "far larger than 2^n" observation.
        let locs = vec![loc(0, 3), loc(5, 3), loc(9, 3)];
        let r = CapacityReport::of(&locs);
        assert!(r.log2_combinations > r.num_locations as f64);
    }
}
