//! Satisfiability Don't Care (SDC) fingerprinting — the authors' companion
//! technique (Dunbar & Qu, ASP-DAC 2015, reference \[9\] of the paper),
//! which this paper's §II positions its contribution alongside.
//!
//! Where the ODC method exploits value combinations that cannot be
//! *observed*, the SDC method exploits input combinations that can never
//! *occur*: if a gate's inputs provably never take some pattern, the gate
//! may be swapped for any other gate that differs **only on that pattern**
//! — an even quieter mark (no wiring changes at all, just a different cell
//! in the same socket).
//!
//! The standard-cell function pairs differing in exactly one input row:
//!
//! | pair | differing row |
//! |---|---|
//! | `AND` ↔ `XNOR` | `00` |
//! | `NAND` ↔ `XOR` | `00` |
//! | `OR` ↔ `XOR`   | `11` |
//! | `NOR` ↔ `XNOR` | `11` |
//!
//! Reachability of the row is *proved* unreachable with the SAT solver
//! (random simulation only pre-filters candidates).

use odcfp_logic::rng::Xoshiro256;
use odcfp_logic::{sim, PrimitiveFn};
use odcfp_netlist::{GateId, Netlist};
use odcfp_sat::tseitin::encode_netlist;
use odcfp_sat::{CnfBuilder, Lit, SolveResult, Solver};

use crate::FingerprintError;

/// One SDC fingerprint location: a 2-input gate whose
/// `row`-pattern is unreachable, allowing a cell swap to `alternate`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SdcLocation {
    /// The swappable gate.
    pub gate: GateId,
    /// The provably unreachable input pattern `(pin0, pin1)`.
    pub row: (bool, bool),
    /// The function the gate may be swapped to (and back from).
    pub alternate: PrimitiveFn,
}

/// The function pair and differing row for a swap candidate, if the
/// function participates in one.
fn swap_partner(f: PrimitiveFn) -> Option<(PrimitiveFn, (bool, bool))> {
    match f {
        PrimitiveFn::And => Some((PrimitiveFn::Xnor, (false, false))),
        PrimitiveFn::Xnor => Some((PrimitiveFn::And, (false, false))),
        PrimitiveFn::Nand => Some((PrimitiveFn::Xor, (false, false))),
        PrimitiveFn::Xor => Some((PrimitiveFn::Nand, (false, false))),
        PrimitiveFn::Or => Some((PrimitiveFn::Xor, (true, true))),
        PrimitiveFn::Nor => Some((PrimitiveFn::Xnor, (true, true))),
        _ => None,
    }
}

// Note the asymmetry: OR↔XOR and NOR↔XNOR are listed one-directionally
// above for XOR/XNOR because XOR's partner at row (0,0) is NAND; a gate
// can only be a location for the row its *current* pairing defines.

/// Number of 64-bit simulation words used for the reachability pre-filter.
const PREFILTER_WORDS: usize = 32;

/// Scans a validated netlist for SDC fingerprint locations.
///
/// Each candidate 2-input gate is first screened with seeded random
/// simulation (a pattern seen at the inputs is certainly reachable); the
/// survivors' rows are then proved unreachable by SAT. `conflict_budget`
/// bounds each proof; gates whose proof exhausts the budget are skipped
/// (sound: only *proved* SDCs become locations).
///
/// # Panics
///
/// Panics if the netlist is invalid (validate first).
pub fn find_sdc_locations(netlist: &Netlist, conflict_budget: u64) -> Vec<SdcLocation> {
    // Pre-filter by simulation.
    let mut rng = Xoshiro256::seed_from_u64(0x5DC);
    let patterns: Vec<Vec<u64>> = (0..netlist.primary_inputs().len())
        .map(|_| sim::random_words(&mut rng, PREFILTER_WORDS))
        .collect();
    let values = netlist.simulate(&patterns);

    let mut candidates = Vec::new();
    for (id, gate) in netlist.gates() {
        if gate.inputs().len() != 2 {
            continue;
        }
        let f = netlist.gate_fn(id);
        let Some((alternate, row)) = swap_partner(f) else {
            continue;
        };
        // Same net on both pins: row (v,v) reachable iff net can be v; for
        // distinct-value rows unreachable, but our rows are (0,0)/(1,1) —
        // leave to SAT like everything else.
        let a = &values[gate.inputs()[0].index()];
        let b = &values[gate.inputs()[1].index()];
        let seen = a.iter().zip(b).any(|(&wa, &wb)| {
            let pa = if row.0 { wa } else { !wa };
            let pb = if row.1 { wb } else { !wb };
            pa & pb != 0
        });
        if !seen {
            candidates.push(SdcLocation {
                gate: id,
                row,
                alternate,
            });
        }
    }
    if candidates.is_empty() {
        return candidates;
    }

    // Prove the survivors with SAT: one shared encoding, one reusable
    // solver, each row queried under assumptions (clauses learnt on one
    // gate's query speed up the next).
    let mut base_cnf = CnfBuilder::new();
    let enc = encode_netlist(&mut base_cnf, netlist);
    let mut solver = Solver::from_cnf(&base_cnf);
    solver.set_conflict_budget(conflict_budget);
    candidates.retain(|cand| {
        let gate = netlist.gate(cand.gate);
        let va = enc.var(gate.inputs()[0]);
        let vb = enc.var(gate.inputs()[1]);
        let assumptions = [
            Lit::with_polarity(va, cand.row.0),
            Lit::with_polarity(vb, cand.row.1),
        ];
        matches!(solver.solve_under(&assumptions), SolveResult::Unsat)
    });
    candidates
}

/// The SDC fingerprinting engine, mirroring the shape of
/// [`crate::Fingerprinter`] for the companion technique.
#[derive(Debug, Clone)]
pub struct SdcFingerprinter {
    base: Netlist,
    locations: Vec<SdcLocation>,
}

impl SdcFingerprinter {
    /// Scans `base` for SDC locations (default per-proof conflict budget).
    ///
    /// # Errors
    ///
    /// Returns an error if the netlist fails validation.
    pub fn new(base: Netlist) -> Result<Self, FingerprintError> {
        base.validate()?;
        let locations = find_sdc_locations(&base, 200_000);
        Ok(SdcFingerprinter { base, locations })
    }

    /// The unmarked base design.
    pub fn base(&self) -> &Netlist {
        &self.base
    }

    /// The usable swap locations, one bit each.
    pub fn locations(&self) -> &[SdcLocation] {
        &self.locations
    }

    /// Embeds a bit string: bit `i` = 1 swaps location `i`'s gate to its
    /// alternate function.
    ///
    /// # Errors
    ///
    /// Returns an error on length mismatch or when the library lacks the
    /// alternate cell at arity 2.
    pub fn embed(&self, bits: &[bool]) -> Result<Netlist, FingerprintError> {
        if bits.len() != self.locations.len() {
            return Err(FingerprintError::BitLengthMismatch {
                expected: self.locations.len(),
                found: bits.len(),
            });
        }
        let mut netlist = self.base.clone();
        for (&bit, loc) in bits.iter().zip(&self.locations) {
            if !bit {
                continue;
            }
            let cell = netlist
                .library()
                .cell_for(loc.alternate, 2)
                .ok_or_else(|| FingerprintError::CannotApply {
                    gate: loc.gate,
                    reason: format!("library lacks {}2", loc.alternate),
                })?;
            let inputs = netlist.gate(loc.gate).inputs().to_vec();
            netlist.replace_gate(loc.gate, cell, &inputs);
        }
        netlist.validate()?;
        Ok(netlist)
    }

    /// Recovers the embedded bits from a suspect copy derived from this
    /// base (positional identity, as with [`crate::Fingerprinter::extract`]).
    pub fn extract(&self, suspect: &Netlist) -> Vec<bool> {
        self.locations
            .iter()
            .map(|loc| suspect.gate_fn(loc.gate) == loc.alternate)
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use odcfp_netlist::CellLibrary;
    use odcfp_sat::{check_equivalence, EquivResult};

    /// A circuit where OR(a, !a) and NAND(a, !a) have unreachable rows.
    fn contradictory() -> Netlist {
        let lib = CellLibrary::standard();
        let mut n = Netlist::new("sdc", lib);
        let a = n.add_primary_input("a");
        let b = n.add_primary_input("b");
        let inv = n.library().cell_for(PrimitiveFn::Inv, 1).unwrap();
        let or2 = n.library().cell_for(PrimitiveFn::Or, 2).unwrap();
        let nand2 = n.library().cell_for(PrimitiveFn::Nand, 2).unwrap();
        let and2 = n.library().cell_for(PrimitiveFn::And, 2).unwrap();
        let na = n.add_gate("na", inv, &[a]);
        // OR(a, !a): row (1,1) needs a = 1 and !a = 1 — unreachable.
        let g_or = n.add_gate("g_or", or2, &[a, n.gate_output(na)]);
        // NAND(a, !a): row (0,0) unreachable.
        let g_nand = n.add_gate("g_nand", nand2, &[a, n.gate_output(na)]);
        // AND(a, b): row (0,0) very reachable — not a location.
        let g_and = n.add_gate("g_and", and2, &[a, b]);
        let top = n.add_gate(
            "top",
            and2,
            &[n.gate_output(g_or), n.gate_output(g_nand)],
        );
        n.set_primary_output(n.gate_output(top));
        n.set_primary_output(n.gate_output(g_and));
        n
    }

    #[test]
    fn finds_exactly_the_unreachable_rows() {
        let n = contradictory();
        let locs = find_sdc_locations(&n, 100_000);
        let names: Vec<&str> = locs.iter().map(|l| n.gate(l.gate).name()).collect();
        assert!(names.contains(&"g_or"), "{names:?}");
        assert!(names.contains(&"g_nand"), "{names:?}");
        assert!(!names.contains(&"g_and"), "{names:?}");
        for l in &locs {
            match (n.gate(l.gate).name(), n.gate_fn(l.gate)) {
                ("g_or", PrimitiveFn::Or) => {
                    assert_eq!(l.row, (true, true));
                    assert_eq!(l.alternate, PrimitiveFn::Xor);
                }
                ("g_nand", PrimitiveFn::Nand) => {
                    assert_eq!(l.row, (false, false));
                    assert_eq!(l.alternate, PrimitiveFn::Xor);
                }
                // top = AND(g_or, g_nand) where g_or ≡ 1: its (0,0) row is
                // genuinely unreachable too, so it is a valid location.
                ("top", PrimitiveFn::And) => {
                    assert_eq!(l.row, (false, false));
                    assert_eq!(l.alternate, PrimitiveFn::Xnor);
                }
                other => panic!("unexpected location {other:?}"),
            }
        }
    }

    #[test]
    fn swaps_are_sat_equivalent() {
        let n = contradictory();
        let fp = SdcFingerprinter::new(n).unwrap();
        let k = fp.locations().len();
        assert!(k >= 2);
        for pattern in 0..(1usize << k) {
            let bits: Vec<bool> = (0..k).map(|i| (pattern >> i) & 1 == 1).collect();
            let copy = fp.embed(&bits).unwrap();
            assert_eq!(
                check_equivalence(fp.base(), &copy, None).unwrap(),
                EquivResult::Equivalent,
                "pattern {pattern:b}"
            );
            assert_eq!(fp.extract(&copy), bits);
        }
    }

    #[test]
    fn swap_partners_differ_in_exactly_one_row() {
        for f in [
            PrimitiveFn::And,
            PrimitiveFn::Nand,
            PrimitiveFn::Or,
            PrimitiveFn::Nor,
            PrimitiveFn::Xor,
            PrimitiveFn::Xnor,
        ] {
            let (alt, row) = swap_partner(f).unwrap();
            let mut diffs = Vec::new();
            for i in 0..4usize {
                let ins = [i & 1 == 1, i & 2 == 2];
                if f.eval(&ins) != alt.eval(&ins) {
                    diffs.push((ins[0], ins[1]));
                }
            }
            assert_eq!(diffs, vec![row], "{f} vs {alt}");
        }
        assert!(swap_partner(PrimitiveFn::Inv).is_none());
    }

    #[test]
    fn reachable_rows_yield_no_locations() {
        // A plain AND of two free inputs: (0,0) is reachable.
        let lib = CellLibrary::standard();
        let mut n = Netlist::new("free", lib);
        let a = n.add_primary_input("a");
        let b = n.add_primary_input("b");
        let and2 = n.library().cell_for(PrimitiveFn::And, 2).unwrap();
        let g = n.add_gate("g", and2, &[a, b]);
        n.set_primary_output(n.gate_output(g));
        assert!(find_sdc_locations(&n, 100_000).is_empty());
    }

    #[test]
    fn sdc_and_odc_methods_compose() {
        // Run the ODC engine on an SDC-swapped copy: both marks coexist
        // and both remain extractable.
        let n = contradictory();
        let sdc = SdcFingerprinter::new(n).unwrap();
        let k = sdc.locations().len();
        let sdc_bits = vec![true; k];
        let swapped = sdc.embed(&sdc_bits).unwrap();

        let odc = crate::Fingerprinter::new(swapped.clone()).unwrap();
        if odc.locations().is_empty() {
            // Tiny circuit may offer no ODC site after swapping; the
            // composition claim is then vacuous here.
            return;
        }
        let copy = odc.embed_all().unwrap();
        assert_eq!(
            check_equivalence(sdc.base(), copy.netlist(), None).unwrap(),
            EquivResult::Equivalent
        );
        assert_eq!(sdc.extract(copy.netlist()), sdc_bits);
        assert_eq!(odc.extract(copy.netlist()), vec![true; odc.locations().len()]);
    }

    #[test]
    fn bit_length_checked() {
        let fp = SdcFingerprinter::new(contradictory()).unwrap();
        assert!(matches!(
            fp.embed(&[]),
            Err(FingerprintError::BitLengthMismatch { .. })
        ));
    }
}
