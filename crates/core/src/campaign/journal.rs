//! The campaign write-ahead journal: `campaign.journal.jsonl`.
//!
//! Every state transition of a campaign — start, job start, job done,
//! attempt failed, job quarantined — is appended as one JSON line
//! *before* the runner acts on it (write-ahead), fsynced, and protected
//! by a checksum so a resume can trust what it replays:
//!
//! ```text
//! {"crc":"85944171f73967e8","t":"done","job":"c432#3",...}
//! ```
//!
//! `crc` is the FNV-1a 64 digest of every byte after the `"crc":"…",`
//! prefix (i.e. of `"t":"done",...}`). A line whose checksum fails — the
//! classic torn final line of a SIGKILLed process, or later bit rot — is
//! treated as absent: the job it described re-runs, which is always
//! safe, never wrong. Records are flat (string and integer fields only)
//! so the parser stays small enough to audit.
//!
//! Replay folds lines in order into a [`JournalState`]; later records
//! win, so a resumed campaign simply keeps appending to the same file.

use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::fs::{File, OpenOptions};
use std::io::{BufRead, BufReader, Write};
use std::path::{Path, PathBuf};

use odcfp_netlist::{Digest, Digest128};

/// The journal file name inside a campaign output directory.
pub const JOURNAL_FILE: &str = "campaign.journal.jsonl";

/// One journal record. Field names are kept short — journals are written
/// once per job attempt and read back whole on every resume.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Record {
    /// A campaign (or a resumed leg of one) began.
    Start {
        /// Digest of the manifest text, so a resume refuses to mix
        /// incompatible job lists into one journal.
        manifest: Digest,
        /// Total number of jobs the manifest expands to.
        jobs: u64,
    },
    /// A job attempt was claimed (write-ahead: logged before work).
    JobStart {
        /// Job id, `"{circuit}#{buyer}"`.
        job: String,
        /// 1-based attempt number.
        attempt: u32,
    },
    /// A job completed; its artifact is on disk under the recorded
    /// digest.
    JobDone {
        /// Job id.
        job: String,
        /// Attempt that succeeded.
        attempt: u32,
        /// Verdict short name (`proven` / `probable` / `undecided`).
        verdict: String,
        /// Artifact path relative to the output directory.
        artifact: String,
        /// Content digest of the artifact file bytes.
        digest: Digest,
        /// The embedded bit string (`0`/`1` per location).
        bits: String,
        /// Wall-clock milliseconds the successful attempt took.
        millis: u64,
    },
    /// A job attempt failed and will be retried (or poisoned).
    JobFailed {
        /// Job id.
        job: String,
        /// The attempt that failed.
        attempt: u32,
        /// What happened, formatted for humans.
        error: String,
    },
    /// A job exhausted its retry budget and is quarantined.
    JobPoisoned {
        /// Job id.
        job: String,
        /// Attempts consumed.
        attempts: u32,
        /// Structured diagnostic: panic payload, timeout, or error chain.
        diagnostic: String,
    },
    /// Delta mode: the golden artifact for a circuit is on disk.
    Golden {
        /// Circuit name.
        circuit: String,
        /// Golden artifact path relative to the output directory.
        artifact: String,
        /// 128-bit identity digest of the golden artifact bytes.
        digest: Digest128,
        /// Number of fingerprint locations (code length).
        locations: u64,
    },
    /// Delta mode, write-ahead: a window of buyers `[from, to)` is about
    /// to be minted; `offset` is the codebook byte length before it, the
    /// truncation point if the window never completes.
    BatchStart {
        /// Circuit name.
        circuit: String,
        /// First buyer of the window (inclusive).
        from: u64,
        /// One past the last buyer of the window.
        to: u64,
        /// Codebook byte offset at window start.
        offset: u64,
    },
    /// Delta mode: a window of buyers `[from, to)` is fully minted and
    /// its code records are fsynced in the codebook up to `offset`.
    ///
    /// One line stands in for up to a whole window of per-job records —
    /// this is what keeps a million-buyer journal replayable in seconds.
    BatchDone {
        /// Circuit name.
        circuit: String,
        /// First buyer of the window (inclusive).
        from: u64,
        /// One past the last buyer of the window.
        to: u64,
        /// Codebook byte length after the window's records.
        offset: u64,
        /// Verdict histogram, `"proven:1024"` style.
        verdicts: String,
    },
}

impl Record {
    /// The flat `"key":value,...}` body this record serializes to (the
    /// part the checksum covers).
    fn body(&self) -> String {
        let mut b = String::new();
        let push_str = |b: &mut String, k: &str, v: &str| {
            let _ = write!(b, "\"{k}\":\"{}\",", escape_json(v));
        };
        match self {
            Record::Start { manifest, jobs } => {
                push_str(&mut b, "t", "start");
                push_str(&mut b, "manifest", &manifest.to_string());
                let _ = write!(b, "\"jobs\":{jobs},");
            }
            Record::JobStart { job, attempt } => {
                push_str(&mut b, "t", "jstart");
                push_str(&mut b, "job", job);
                let _ = write!(b, "\"attempt\":{attempt},");
            }
            Record::JobDone {
                job,
                attempt,
                verdict,
                artifact,
                digest,
                bits,
                millis,
            } => {
                push_str(&mut b, "t", "done");
                push_str(&mut b, "job", job);
                let _ = write!(b, "\"attempt\":{attempt},");
                push_str(&mut b, "verdict", verdict);
                push_str(&mut b, "artifact", artifact);
                push_str(&mut b, "digest", &digest.to_string());
                push_str(&mut b, "bits", bits);
                let _ = write!(b, "\"millis\":{millis},");
            }
            Record::JobFailed { job, attempt, error } => {
                push_str(&mut b, "t", "fail");
                push_str(&mut b, "job", job);
                let _ = write!(b, "\"attempt\":{attempt},");
                push_str(&mut b, "error", error);
            }
            Record::JobPoisoned {
                job,
                attempts,
                diagnostic,
            } => {
                push_str(&mut b, "t", "poison");
                push_str(&mut b, "job", job);
                let _ = write!(b, "\"attempts\":{attempts},");
                push_str(&mut b, "diagnostic", diagnostic);
            }
            Record::Golden {
                circuit,
                artifact,
                digest,
                locations,
            } => {
                push_str(&mut b, "t", "golden");
                push_str(&mut b, "circuit", circuit);
                push_str(&mut b, "artifact", artifact);
                push_str(&mut b, "digest", &digest.to_string());
                let _ = write!(b, "\"locations\":{locations},");
            }
            Record::BatchStart {
                circuit,
                from,
                to,
                offset,
            } => {
                push_str(&mut b, "t", "bstart");
                push_str(&mut b, "circuit", circuit);
                let _ = write!(b, "\"from\":{from},\"to\":{to},\"offset\":{offset},");
            }
            Record::BatchDone {
                circuit,
                from,
                to,
                offset,
                verdicts,
            } => {
                push_str(&mut b, "t", "bdone");
                push_str(&mut b, "circuit", circuit);
                let _ = write!(b, "\"from\":{from},\"to\":{to},\"offset\":{offset},");
                push_str(&mut b, "verdicts", verdicts);
            }
        }
        // Replace the trailing comma with the closing brace.
        b.pop();
        b.push('}');
        b
    }

    /// Serializes to a full journal line (without the newline).
    pub fn to_line(&self) -> String {
        let body = self.body();
        format!(
            "{{\"crc\":\"{:016x}\",{body}",
            Digest::of(body.as_bytes()).0
        )
    }

    /// Parses one journal line; `None` for any malformed, truncated, or
    /// checksum-failing input (the caller treats such lines as absent).
    pub fn parse_line(line: &str) -> Option<Record> {
        let rest = line.trim_end().strip_prefix("{\"crc\":\"")?;
        let (crc_hex, body) = (rest.get(..16)?, rest.get(16..)?.strip_prefix("\",")?);
        let crc = u64::from_str_radix(crc_hex, 16).ok()?;
        if Digest::of(body.as_bytes()).0 != crc {
            return None;
        }
        let fields = parse_flat_fields(body)?;
        let get = |k: &str| fields.get(k).map(String::as_str);
        let get_u64 = |k: &str| get(k).and_then(|v| v.parse::<u64>().ok());
        let get_u32 = |k: &str| get(k).and_then(|v| v.parse::<u32>().ok());
        match get("t")? {
            "start" => Some(Record::Start {
                manifest: Digest::parse(get("manifest")?)?,
                jobs: get_u64("jobs")?,
            }),
            "jstart" => Some(Record::JobStart {
                job: get("job")?.to_owned(),
                attempt: get_u32("attempt")?,
            }),
            "done" => Some(Record::JobDone {
                job: get("job")?.to_owned(),
                attempt: get_u32("attempt")?,
                verdict: get("verdict")?.to_owned(),
                artifact: get("artifact")?.to_owned(),
                digest: Digest::parse(get("digest")?)?,
                bits: get("bits")?.to_owned(),
                millis: get_u64("millis")?,
            }),
            "fail" => Some(Record::JobFailed {
                job: get("job")?.to_owned(),
                attempt: get_u32("attempt")?,
                error: get("error")?.to_owned(),
            }),
            "poison" => Some(Record::JobPoisoned {
                job: get("job")?.to_owned(),
                attempts: get_u32("attempts")?,
                diagnostic: get("diagnostic")?.to_owned(),
            }),
            "golden" => Some(Record::Golden {
                circuit: get("circuit")?.to_owned(),
                artifact: get("artifact")?.to_owned(),
                digest: Digest128::parse(get("digest")?)?,
                locations: get_u64("locations")?,
            }),
            "bstart" => Some(Record::BatchStart {
                circuit: get("circuit")?.to_owned(),
                from: get_u64("from")?,
                to: get_u64("to")?,
                offset: get_u64("offset")?,
            }),
            "bdone" => Some(Record::BatchDone {
                circuit: get("circuit")?.to_owned(),
                from: get_u64("from")?,
                to: get_u64("to")?,
                offset: get_u64("offset")?,
                verdicts: get("verdicts")?.to_owned(),
            }),
            _ => None,
        }
    }
}

/// Escapes a string for embedding in a JSON string literal.
pub(crate) fn escape_json(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

/// Parses the flat `"key":value,...}` body of a record: values are JSON
/// strings or unsigned integers (returned as their text). Rejects
/// anything else — nested values, duplicate keys, trailing garbage.
pub(crate) fn parse_flat_fields(body: &str) -> Option<BTreeMap<String, String>> {
    let mut fields = BTreeMap::new();
    let mut rest = body;
    loop {
        let (key, after) = parse_json_string(rest)?;
        rest = after.strip_prefix(':')?;
        let (value, after) = if rest.starts_with('"') {
            parse_json_string(rest)?
        } else {
            let end = rest.find(|c: char| !c.is_ascii_digit())?;
            if end == 0 {
                return None;
            }
            (rest[..end].to_owned(), &rest[end..])
        };
        if fields.insert(key, value).is_some() {
            return None;
        }
        match after.strip_prefix(',') {
            Some(r) => rest = r,
            None => return (after == "}").then_some(fields),
        }
    }
}

/// Parses one JSON string literal at the start of `s`; returns the
/// decoded value and the remainder after the closing quote.
fn parse_json_string(s: &str) -> Option<(String, &str)> {
    let mut chars = s.strip_prefix('"')?.char_indices();
    let inner = &s[1..];
    let mut out = String::new();
    while let Some((i, c)) = chars.next() {
        match c {
            '"' => return Some((out, &inner[i + 1..])),
            '\\' => match chars.next()?.1 {
                '"' => out.push('"'),
                '\\' => out.push('\\'),
                '/' => out.push('/'),
                'n' => out.push('\n'),
                'r' => out.push('\r'),
                't' => out.push('\t'),
                'u' => {
                    let mut code = 0u32;
                    for _ in 0..4 {
                        code = code * 16 + chars.next()?.1.to_digit(16)?;
                    }
                    out.push(char::from_u32(code)?);
                }
                _ => return None,
            },
            c => out.push(c),
        }
    }
    None
}

/// An append-only journal handle; every [`Journal::append`] is flushed
/// and fsynced before returning, so an acknowledged record survives a
/// SIGKILL in the very next instruction.
#[derive(Debug)]
pub struct Journal {
    file: File,
    path: PathBuf,
}

impl Journal {
    /// Opens (creating if needed) the journal inside `out_dir` for
    /// appending.
    pub fn open(out_dir: &Path) -> std::io::Result<Journal> {
        let path = out_dir.join(JOURNAL_FILE);
        let file = OpenOptions::new().create(true).append(true).open(&path)?;
        Ok(Journal { file, path })
    }

    /// The journal file path.
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// Appends one checksummed record and fsyncs.
    pub fn append(&mut self, record: &Record) -> std::io::Result<()> {
        let mut line = record.to_line();
        line.push('\n');
        self.file.write_all(line.as_bytes())?;
        self.file.sync_data()
    }
}

/// What a job is known to be, after replaying the journal.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum JobState {
    /// Completed; the artifact (relative path) should exist under the
    /// recorded digest.
    Done {
        /// Verdict short name from the done record.
        verdict: String,
        /// Artifact path relative to the output directory.
        artifact: String,
        /// Recorded artifact digest.
        digest: Digest,
        /// The embedded bit string.
        bits: String,
    },
    /// Quarantined with a diagnostic; not retried on resume.
    Poisoned {
        /// The recorded diagnostic.
        diagnostic: String,
    },
    /// Started (possibly failed some attempts) but never finished — the
    /// in-flight state a crash leaves behind; re-run on resume.
    InFlight,
}

/// What a circuit's golden artifact is known to be (delta mode).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct GoldenState {
    /// Golden artifact path relative to the output directory.
    pub artifact: String,
    /// 128-bit identity digest of the golden artifact bytes.
    pub digest: Digest128,
    /// Number of fingerprint locations (code length).
    pub locations: u64,
}

/// Delta-mode minting progress of one circuit, folded from batch records.
///
/// Windows are minted in order, so progress is a single watermark: buyers
/// `[0, done)` are safely in the codebook up to byte `offset`. A
/// `BatchStart` without a matching `BatchDone` is the in-flight window a
/// crash left behind; resume truncates the codebook to its recorded
/// offset and re-mints it (deterministically, so the result is
/// bit-identical to an uninterrupted run).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct BatchState {
    /// Buyers `[0, done)` are durably minted.
    pub done: u64,
    /// Codebook byte length covering those buyers.
    pub offset: u64,
    /// Unfinished window: `(from, codebook offset at its start)`.
    pub in_flight: Option<(u64, u64)>,
    /// Accumulated verdict histogram.
    pub verdicts: BTreeMap<String, u64>,
}

/// The fold of a journal: last-writer-wins state per job, plus
/// bookkeeping replay statistics.
#[derive(Debug, Default)]
pub struct JournalState {
    /// Manifest digest from the most recent start record.
    pub manifest: Option<Digest>,
    /// Total jobs from the most recent start record.
    pub total_jobs: Option<u64>,
    /// Per-job state, keyed by job id.
    pub jobs: BTreeMap<String, JobState>,
    /// Delta-mode golden artifacts, keyed by circuit name.
    pub golden: BTreeMap<String, GoldenState>,
    /// Delta-mode minting progress, keyed by circuit name.
    pub batches: BTreeMap<String, BatchState>,
    /// Lines that failed the checksum or did not parse (torn writes).
    pub discarded_lines: usize,
    /// Total well-formed records replayed.
    pub records: usize,
}

impl JournalState {
    /// Replays the journal in `out_dir`; a missing file is an empty
    /// state, any unreadable *line* is counted and skipped.
    pub fn replay(out_dir: &Path) -> std::io::Result<JournalState> {
        let path = out_dir.join(JOURNAL_FILE);
        let mut state = JournalState::default();
        let file = match File::open(&path) {
            Ok(f) => f,
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok(state),
            Err(e) => return Err(e),
        };
        for line in BufReader::new(file).lines() {
            let line = line?;
            if line.is_empty() {
                continue;
            }
            match Record::parse_line(&line) {
                Some(record) => {
                    state.records += 1;
                    state.apply(record);
                }
                None => state.discarded_lines += 1,
            }
        }
        Ok(state)
    }

    fn apply(&mut self, record: Record) {
        match record {
            Record::Start { manifest, jobs } => {
                self.manifest = Some(manifest);
                self.total_jobs = Some(jobs);
            }
            Record::JobStart { job, .. } => {
                // Only a terminal record upgrades a job out of InFlight.
                self.jobs.entry(job).or_insert(JobState::InFlight);
            }
            Record::JobFailed { job, .. } => {
                self.jobs.insert(job, JobState::InFlight);
            }
            Record::JobDone {
                job,
                verdict,
                artifact,
                digest,
                bits,
                ..
            } => {
                self.jobs.insert(
                    job,
                    JobState::Done {
                        verdict,
                        artifact,
                        digest,
                        bits,
                    },
                );
            }
            Record::JobPoisoned {
                job, diagnostic, ..
            } => {
                self.jobs.insert(job, JobState::Poisoned { diagnostic });
            }
            Record::Golden {
                circuit,
                artifact,
                digest,
                locations,
            } => {
                self.golden.insert(
                    circuit,
                    GoldenState {
                        artifact,
                        digest,
                        locations,
                    },
                );
            }
            Record::BatchStart {
                circuit,
                from,
                offset,
                ..
            } => {
                let batch = self.batches.entry(circuit).or_default();
                if from >= batch.done {
                    batch.in_flight = Some((from, offset));
                }
            }
            Record::BatchDone {
                circuit,
                to,
                offset,
                verdicts,
                ..
            } => {
                let batch = self.batches.entry(circuit).or_default();
                if to > batch.done {
                    batch.done = to;
                    batch.offset = offset;
                }
                batch.in_flight = None;
                for (verdict, count) in parse_histogram(&verdicts) {
                    *batch.verdicts.entry(verdict).or_insert(0) += count;
                }
            }
        }
    }
}

/// Renders a verdict histogram as the compact `"proven:1024,probable:3"`
/// form batch records carry.
pub(crate) fn render_histogram(hist: &BTreeMap<String, u64>) -> String {
    let mut out = String::new();
    for (verdict, count) in hist {
        if !out.is_empty() {
            out.push(',');
        }
        let _ = write!(out, "{verdict}:{count}");
    }
    out
}

/// Parses the `"proven:1024,probable:3"` histogram form; malformed
/// entries are skipped (the histogram is informational, not load-bearing).
pub(crate) fn parse_histogram(text: &str) -> Vec<(String, u64)> {
    text.split(',')
        .filter_map(|entry| {
            let (verdict, count) = entry.split_once(':')?;
            Some((verdict.to_owned(), count.parse::<u64>().ok()?))
        })
        .collect()
}

/// Statistics from one [`compact`] pass.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CompactionStats {
    /// Well-formed records before compaction.
    pub records_before: usize,
    /// Records after compaction.
    pub records_after: usize,
    /// Journal bytes before compaction.
    pub bytes_before: u64,
    /// Journal bytes after compaction.
    pub bytes_after: u64,
}

/// Rewrites the journal in `out_dir` down to its folded state: one
/// `start` record, one `golden` + `bdone` pair per delta-mode circuit,
/// and one terminal record per finished job. Superseded attempts, torn
/// lines, and in-flight markers (whose jobs re-run anyway) are dropped.
///
/// A replay of the compacted journal yields the same resume decisions as
/// a replay of the original. Synthesized `done` records carry
/// `attempt: 1` and `millis: 0` — attempt counts and timings of past legs
/// are bookkeeping, not resume inputs. The rewrite is atomic
/// (tmp + fsync + rename), so a crash mid-compaction leaves the original
/// journal in place.
pub fn compact(out_dir: &Path) -> std::io::Result<CompactionStats> {
    let path = out_dir.join(JOURNAL_FILE);
    let bytes_before = std::fs::metadata(&path).map(|m| m.len()).unwrap_or(0);
    let state = JournalState::replay(out_dir)?;
    let Some(manifest) = state.manifest else {
        // Nothing meaningful journalled yet; leave the file alone.
        return Ok(CompactionStats {
            records_before: state.records,
            records_after: state.records,
            bytes_before,
            bytes_after: bytes_before,
        });
    };
    let mut records: Vec<Record> = Vec::new();
    records.push(Record::Start {
        manifest,
        jobs: state.total_jobs.unwrap_or(0),
    });
    for (circuit, golden) in &state.golden {
        records.push(Record::Golden {
            circuit: circuit.clone(),
            artifact: golden.artifact.clone(),
            digest: golden.digest,
            locations: golden.locations,
        });
    }
    for (circuit, batch) in &state.batches {
        if batch.done > 0 {
            records.push(Record::BatchDone {
                circuit: circuit.clone(),
                from: 0,
                to: batch.done,
                offset: batch.offset,
                verdicts: render_histogram(&batch.verdicts),
            });
        }
    }
    for (job, jstate) in &state.jobs {
        match jstate {
            JobState::Done {
                verdict,
                artifact,
                digest,
                bits,
            } => records.push(Record::JobDone {
                job: job.clone(),
                attempt: 1,
                verdict: verdict.clone(),
                artifact: artifact.clone(),
                digest: *digest,
                bits: bits.clone(),
                millis: 0,
            }),
            JobState::Poisoned { diagnostic } => records.push(Record::JobPoisoned {
                job: job.clone(),
                attempts: 1,
                diagnostic: diagnostic.clone(),
            }),
            JobState::InFlight => {}
        }
    }
    let tmp = out_dir.join(format!("{JOURNAL_FILE}.compact.tmp"));
    {
        let mut file = File::create(&tmp)?;
        let mut buf = String::new();
        for record in &records {
            buf.push_str(&record.to_line());
            buf.push('\n');
        }
        file.write_all(buf.as_bytes())?;
        file.sync_data()?;
    }
    std::fs::rename(&tmp, &path)?;
    if let Ok(dir) = File::open(out_dir) {
        let _ = dir.sync_data();
    }
    let bytes_after = std::fs::metadata(&path).map(|m| m.len()).unwrap_or(0);
    Ok(CompactionStats {
        records_before: state.records,
        records_after: records.len(),
        bytes_before,
        bytes_after,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmpdir(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join("odcfp-journal-tests").join(name);
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).expect("temp dir");
        dir
    }

    fn sample_records() -> Vec<Record> {
        vec![
            Record::Start {
                manifest: Digest::of(b"manifest"),
                jobs: 2,
            },
            Record::JobStart {
                job: "c17#0".into(),
                attempt: 1,
            },
            Record::JobDone {
                job: "c17#0".into(),
                attempt: 1,
                verdict: "proven".into(),
                artifact: "artifacts/c17_b0.v".into(),
                digest: Digest::of(b"module"),
                bits: "0101".into(),
                millis: 12,
            },
            Record::JobStart {
                job: "c17#1".into(),
                attempt: 1,
            },
            Record::JobFailed {
                job: "c17#1".into(),
                attempt: 1,
                error: "deadline exceeded \"mid\" stage\nline2".into(),
            },
            Record::JobPoisoned {
                job: "c17#1".into(),
                attempts: 3,
                diagnostic: "panicked: boom \\ {\"quote\"}".into(),
            },
        ]
    }

    #[test]
    fn record_line_roundtrip_exactly() {
        for record in sample_records() {
            let line = record.to_line();
            assert_eq!(
                Record::parse_line(&line).as_ref(),
                Some(&record),
                "{line}"
            );
            // The line must also survive a trailing newline.
            assert_eq!(Record::parse_line(&format!("{line}\n")), Some(record));
        }
    }

    #[test]
    fn corruption_anywhere_is_detected() {
        let line = sample_records()[2].to_line();
        // Flip every byte position in turn: the parse must never return a
        // *different* record than the one written, and in virtually all
        // cases must return None outright.
        let original = Record::parse_line(&line);
        for i in 0..line.len() {
            let mut bytes = line.clone().into_bytes();
            bytes[i] ^= 0x01;
            let Ok(corrupt) = String::from_utf8(bytes) else {
                continue;
            };
            let parsed = Record::parse_line(&corrupt);
            assert!(
                parsed.is_none() || parsed == original,
                "byte {i}: corruption accepted as a different record: {corrupt}"
            );
        }
    }

    #[test]
    fn truncated_tail_is_discarded_not_fatal() {
        let dir = tmpdir("torn");
        let mut journal = Journal::open(&dir).unwrap();
        for r in sample_records() {
            journal.append(&r).unwrap();
        }
        // Simulate a torn final write: append half a record.
        let torn = &sample_records()[2].to_line()[..20];
        let mut raw = OpenOptions::new()
            .append(true)
            .open(dir.join(JOURNAL_FILE))
            .unwrap();
        raw.write_all(torn.as_bytes()).unwrap();
        drop(raw);

        let state = JournalState::replay(&dir).unwrap();
        assert_eq!(state.discarded_lines, 1);
        assert_eq!(state.records, sample_records().len());
        assert_eq!(
            state.jobs["c17#0"],
            JobState::Done {
                verdict: "proven".into(),
                artifact: "artifacts/c17_b0.v".into(),
                digest: Digest::of(b"module"),
                bits: "0101".into(),
            }
        );
        assert!(matches!(state.jobs["c17#1"], JobState::Poisoned { .. }));
    }

    #[test]
    fn replay_of_missing_journal_is_empty() {
        let dir = tmpdir("missing");
        let state = JournalState::replay(&dir).unwrap();
        assert!(state.jobs.is_empty());
        assert_eq!(state.records, 0);
    }

    #[test]
    fn in_flight_job_stays_in_flight_until_terminal_record() {
        let dir = tmpdir("inflight");
        let mut journal = Journal::open(&dir).unwrap();
        journal
            .append(&Record::JobStart {
                job: "x#0".into(),
                attempt: 1,
            })
            .unwrap();
        let state = JournalState::replay(&dir).unwrap();
        assert_eq!(state.jobs["x#0"], JobState::InFlight);
    }

    #[test]
    fn later_records_win_on_resume_appends() {
        let dir = tmpdir("later");
        let mut journal = Journal::open(&dir).unwrap();
        journal
            .append(&Record::JobPoisoned {
                job: "x#0".into(),
                attempts: 2,
                diagnostic: "first leg".into(),
            })
            .unwrap();
        journal
            .append(&Record::JobDone {
                job: "x#0".into(),
                attempt: 1,
                verdict: "proven".into(),
                artifact: "artifacts/x_b0.v".into(),
                digest: Digest::of(b"x"),
                bits: "1".into(),
                millis: 1,
            })
            .unwrap();
        let state = JournalState::replay(&dir).unwrap();
        assert!(matches!(state.jobs["x#0"], JobState::Done { .. }));
    }

    fn batch_records() -> Vec<Record> {
        vec![
            Record::Start {
                manifest: Digest::of(b"manifest"),
                jobs: 4096,
            },
            Record::Golden {
                circuit: "des".into(),
                artifact: "artifacts/des.golden.v".into(),
                digest: Digest128::of(b"golden bytes"),
                locations: 137,
            },
            Record::BatchStart {
                circuit: "des".into(),
                from: 0,
                to: 1024,
                offset: 0,
            },
            Record::BatchDone {
                circuit: "des".into(),
                from: 0,
                to: 1024,
                offset: 99_000,
                verdicts: "proven:1024".into(),
            },
            Record::BatchStart {
                circuit: "des".into(),
                from: 1024,
                to: 2048,
                offset: 99_000,
            },
        ]
    }

    #[test]
    fn batch_record_roundtrip_and_fold() {
        let dir = tmpdir("batch");
        let mut journal = Journal::open(&dir).unwrap();
        for r in batch_records() {
            assert_eq!(Record::parse_line(&r.to_line()), Some(r.clone()));
            journal.append(&r).unwrap();
        }
        let state = JournalState::replay(&dir).unwrap();
        assert_eq!(state.total_jobs, Some(4096));
        let golden = &state.golden["des"];
        assert_eq!(golden.locations, 137);
        assert_eq!(golden.digest, Digest128::of(b"golden bytes"));
        let batch = &state.batches["des"];
        assert_eq!(batch.done, 1024);
        assert_eq!(batch.offset, 99_000);
        assert_eq!(batch.in_flight, Some((1024, 99_000)));
        assert_eq!(batch.verdicts["proven"], 1024);
    }

    #[test]
    fn completed_window_clears_in_flight() {
        let dir = tmpdir("bdone");
        let mut journal = Journal::open(&dir).unwrap();
        for r in batch_records() {
            journal.append(&r).unwrap();
        }
        journal
            .append(&Record::BatchDone {
                circuit: "des".into(),
                from: 1024,
                to: 2048,
                offset: 198_000,
                verdicts: "proven:1023,undecided:1".into(),
            })
            .unwrap();
        let state = JournalState::replay(&dir).unwrap();
        let batch = &state.batches["des"];
        assert_eq!(batch.done, 2048);
        assert_eq!(batch.offset, 198_000);
        assert_eq!(batch.in_flight, None);
        assert_eq!(batch.verdicts["proven"], 2047);
        assert_eq!(batch.verdicts["undecided"], 1);
    }

    #[test]
    fn histogram_roundtrip() {
        let mut hist = BTreeMap::new();
        hist.insert("proven".to_owned(), 1024u64);
        hist.insert("undecided".to_owned(), 3u64);
        let text = render_histogram(&hist);
        assert_eq!(text, "proven:1024,undecided:3");
        let back: BTreeMap<String, u64> = parse_histogram(&text).into_iter().collect();
        assert_eq!(back, hist);
        assert!(parse_histogram("").is_empty());
        assert_eq!(parse_histogram("junk,proven:2").len(), 1);
    }

    #[test]
    fn compaction_preserves_folded_state_and_shrinks() {
        let dir = tmpdir("compact");
        let mut journal = Journal::open(&dir).unwrap();
        for r in sample_records() {
            journal.append(&r).unwrap();
        }
        // Many superseded attempts for one job: all must fold away.
        for attempt in 1..=50u32 {
            journal
                .append(&Record::JobStart {
                    job: "c17#2".into(),
                    attempt,
                })
                .unwrap();
            journal
                .append(&Record::JobFailed {
                    job: "c17#2".into(),
                    attempt,
                    error: "flaky".into(),
                })
                .unwrap();
        }
        journal
            .append(&Record::JobDone {
                job: "c17#2".into(),
                attempt: 51,
                verdict: "proven".into(),
                artifact: "artifacts/c17_b2.v".into(),
                digest: Digest::of(b"m2"),
                bits: "1100".into(),
                millis: 7,
            })
            .unwrap();
        for r in batch_records() {
            journal.append(&r).unwrap();
        }
        drop(journal);

        let before = JournalState::replay(&dir).unwrap();
        let stats = compact(&dir).unwrap();
        assert!(stats.records_after < stats.records_before);
        assert!(stats.bytes_after < stats.bytes_before);

        let after = JournalState::replay(&dir).unwrap();
        assert_eq!(after.manifest, before.manifest);
        assert_eq!(after.total_jobs, before.total_jobs);
        assert_eq!(after.golden, before.golden);
        assert_eq!(after.discarded_lines, 0);
        // Terminal job states survive exactly; in-flight entries (which
        // re-run on resume either way) are dropped.
        for (job, state) in &before.jobs {
            match state {
                JobState::InFlight => assert!(!after.jobs.contains_key(job)),
                terminal => assert_eq!(after.jobs.get(job), Some(terminal), "{job}"),
            }
        }
        // Batch progress folds to one record with the same watermark; the
        // in-flight window marker is dropped (its buyers re-run).
        let b_before = &before.batches["des"];
        let b_after = &after.batches["des"];
        assert_eq!(b_after.done, b_before.done);
        assert_eq!(b_after.offset, b_before.offset);
        assert_eq!(b_after.verdicts, b_before.verdicts);
        assert_eq!(b_after.in_flight, None);
        assert_eq!(after.records, stats.records_after);
    }

    #[test]
    fn compaction_of_empty_journal_is_a_noop() {
        let dir = tmpdir("compact-empty");
        let stats = compact(&dir).unwrap();
        assert_eq!(stats.records_before, 0);
        assert_eq!(stats.records_after, 0);
        assert!(!dir.join(JOURNAL_FILE).exists());
    }

    #[test]
    fn flat_parser_rejects_structural_garbage() {
        for bad in [
            "\"t\":\"done\"",                      // no closing brace
            "\"t\":\"done\",}",                    // trailing comma
            "\"t\":{\"nested\":1}}",               // nested value
            "\"t\":\"a\",\"t\":\"b\"}",            // duplicate key
            "\"t\":-3}",                           // negative number
            "\"t\":\"done\"}garbage",              // trailing garbage
        ] {
            assert!(parse_flat_fields(bad).is_none(), "{bad}");
        }
    }
}
